//! A minimal self-contained timing harness.
//!
//! The build environment has no crates.io access, so the benches cannot
//! use Criterion; this module provides the small subset they need —
//! warmed-up, multi-sample wall-clock timing with a median report — on
//! `std` alone. Benchmarks are ordinary `harness = false` binaries.
//!
//! # Example
//!
//! ```
//! use pbqp_dnn_bench::harness::Bench;
//!
//! let mut bench = Bench::new("demo").samples(5);
//! bench.run("add", || std::hint::black_box(1 + 1));
//! let report = bench.report();
//! assert!(report.contains("add"));
//! ```

use std::time::{Duration, Instant};

/// One benchmark's timing summary.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Benchmark name.
    pub name: String,
    /// Median wall-clock time per iteration.
    pub median: Duration,
    /// Fastest observed iteration.
    pub min: Duration,
    /// Slowest observed iteration.
    pub max: Duration,
}

/// A named group of benchmarks with a shared sample count.
#[derive(Debug)]
pub struct Bench {
    title: String,
    samples: usize,
    results: Vec<Sample>,
}

impl Bench {
    /// Creates a benchmark group. The default is 15 samples per benchmark
    /// after one warm-up iteration.
    pub fn new(title: &str) -> Bench {
        Bench { title: title.to_owned(), samples: 15, results: Vec::new() }
    }

    /// Sets the number of timed samples per benchmark (minimum 3).
    pub fn samples(mut self, samples: usize) -> Bench {
        self.samples = samples.max(3);
        self
    }

    /// Times `f`: one untimed warm-up, then `samples` timed iterations.
    /// Returns the median duration and records it for [`Bench::report`].
    pub fn run<T>(&mut self, name: &str, mut f: impl FnMut() -> T) -> Duration {
        std::hint::black_box(f());
        let mut times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                std::hint::black_box(f());
                start.elapsed()
            })
            .collect();
        times.sort();
        let sample = Sample {
            name: name.to_owned(),
            median: times[times.len() / 2],
            min: times[0],
            max: times[times.len() - 1],
        };
        let median = sample.median;
        self.results.push(sample);
        median
    }

    /// The recorded samples, in run order.
    pub fn results(&self) -> &[Sample] {
        &self.results
    }

    /// Renders the group as an aligned text table.
    pub fn report(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{}\n{}\n", self.title, "-".repeat(self.title.len())));
        for s in &self.results {
            out.push_str(&format!(
                "  {:44} {:>12} (min {:>12}, max {:>12})\n",
                s.name,
                fmt_duration(s.median),
                fmt_duration(s.min),
                fmt_duration(s.max),
            ));
        }
        out
    }
}

/// Writes a machine-readable benchmark artifact (`BENCH_*.json`) at the
/// repository root, returning the path written. The benches use this to
/// leave a perf trajectory the PR log can track.
pub fn write_repo_artifact(file_name: &str, contents: &str) -> std::io::Result<std::path::PathBuf> {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let path = std::path::Path::new(root).join(file_name);
    std::fs::write(&path, contents)?;
    Ok(path)
}

/// Formats a duration with an adaptive unit, Criterion-style.
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_sorted_samples_is_reported() {
        let mut b = Bench::new("t").samples(3);
        let d = b.run("noop", || 1 + 1);
        assert!(d <= b.results()[0].max);
        assert!(b.results()[0].min <= d);
    }

    #[test]
    fn durations_format_with_adaptive_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(12)), "12.00 s");
    }
}
