//! Figure 6: multithreaded (4-core) whole-network speedups over the
//! single-threaded sum2d baseline on the Intel-Haswell-like machine model.

use pbqp_dnn_bench::{evaluate_network, figure_strategies, intel_models, registry, render_figure};
use pbqp_dnn_cost::MachineModel;

fn main() {
    let reg = registry();
    let machine = MachineModel::intel_haswell_like();
    let strategies = figure_strategies(8);
    let rows: Vec<_> = intel_models()
        .into_iter()
        .map(|(name, net)| {
            (name, evaluate_network(&net, &reg, &machine, machine.cores, &strategies))
        })
        .collect();
    let rows: Vec<(&str, _)> = rows.iter().map(|(n, r)| (*n, r.clone())).collect();
    println!(
        "{}",
        render_figure("Figure 6: Whole Network Benchmarking (x86_64), multithreaded", &rows)
    );
}
