//! Table 3: absolute single-inference times (ms) on the ARM-like machine
//! model, single- and multi-threaded, for SUM2D / L.OPT / PBQP / CAFFE.

use pbqp_dnn_bench::{arm_models, registry};
use pbqp_dnn_cost::{AnalyticCost, MachineModel};
use pbqp_dnn_select::{Optimizer, Strategy};

fn main() {
    let machine = MachineModel::arm_a57_like();
    let reg = registry();
    let models = arm_models();
    let strategies =
        [Strategy::Sum2d, Strategy::LocalOptimalChw, Strategy::Pbqp, Strategy::CaffeLike];
    println!("Table 3: ARM-like: single inference time (ms)");
    println!("{:16} {:>10} {:>10} {:>10} {:>10}", "Network", "SUM2D", "L.OPT", "PBQP", "CAFFE");
    for (threads, tag) in [(1usize, "S"), (machine.cores, "M")] {
        let cost = AnalyticCost::new(machine.clone(), threads);
        let opt = Optimizer::new(&reg, &cost);
        for (name, net) in &models {
            let mut cells = Vec::new();
            for s in strategies {
                let plan = opt.plan(net, s).expect("evaluation model plans");
                cells.push(plan.predicted_us / 1000.0);
            }
            println!(
                "({tag}) {:12} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
                name, cells[0], cells[1], cells[2], cells[3]
            );
        }
    }
}
