//! Figure 4: the PBQP primitive selections for multithreaded AlexNet on
//! the Intel-like and ARM-like machine models, side by side.

use pbqp_dnn_bench::registry;
use pbqp_dnn_cost::{AnalyticCost, MachineModel};
use pbqp_dnn_graph::models;
use pbqp_dnn_select::{AssignmentKind, ExecutionPlan, Optimizer, Strategy};

fn main() {
    let reg = registry();
    let net = models::alexnet();
    let machines = [MachineModel::intel_haswell_like(), MachineModel::arm_a57_like()];
    let plans: Vec<ExecutionPlan> = machines
        .iter()
        .map(|m| {
            let cost = AnalyticCost::new(m.clone(), m.cores);
            Optimizer::new(&reg, &cost).plan(&net, Strategy::Pbqp).expect("AlexNet plans")
        })
        .collect();

    println!("Figure 4: PBQP selections for multithreaded AlexNet");
    println!("{:8} | {:34} | {:34}", "layer", machines[0].name, machines[1].name);
    println!("{}", "-".repeat(84));
    for node in net.conv_nodes() {
        let cell = |p: &ExecutionPlan| match p.assignment(node) {
            AssignmentKind::Conv { primitive, input_repr, output_repr, .. } => {
                format!("{primitive} [{input_repr}->{output_repr}]")
            }
            _ => unreachable!("conv node"),
        };
        println!("{:8} | {:34} | {:34}", net.layer(node).name, cell(&plans[0]), cell(&plans[1]));
    }
    for (m, p) in machines.iter().zip(&plans) {
        let wino1d =
            p.selected_primitives().iter().filter(|(_, n)| n.starts_with("wino1d")).count();
        let wino2d =
            p.selected_primitives().iter().filter(|(_, n)| n.starts_with("wino2d")).count();
        println!(
            "{}: {} 1-D / {} 2-D winograd selections, {} layout transforms, optimal = {:?}",
            m.name,
            wino1d,
            wino2d,
            p.transform_count(),
            p.optimal
        );
    }
}
