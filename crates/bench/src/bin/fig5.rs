//! Figure 5: single-threaded whole-network speedups over sum2d on the
//! Intel-Haswell-like machine model, for AlexNet, VGG-B/C/E and GoogleNet
//! across all nine strategies.

use pbqp_dnn_bench::{evaluate_network, figure_strategies, intel_models, registry, render_figure};
use pbqp_dnn_cost::MachineModel;

fn main() {
    let reg = registry();
    let machine = MachineModel::intel_haswell_like();
    let strategies = figure_strategies(8);
    let rows: Vec<_> = intel_models()
        .into_iter()
        .map(|(name, net)| (name, evaluate_network(&net, &reg, &machine, 1, &strategies)))
        .collect();
    let rows: Vec<(&str, _)> = rows.iter().map(|(n, r)| (*n, r.clone())).collect();
    println!(
        "{}",
        render_figure("Figure 5: Whole Network Benchmarking (x86_64), single-threaded", &rows)
    );
}
