//! Ablation study: what does each piece of the formulation buy?
//!
//! 1. **Exact vs RN-heuristic solving** — §6 argues for the principled
//!    solution over heuristics; this quantifies the gap per network.
//! 2. **Modelling DT costs vs ignoring them** — selection quality when
//!    edge costs are dropped from the instance (the "pick the fastest
//!    primitive per layer, convert later" fallacy of §3), evaluated with
//!    the transforms it actually incurs.
//! 3. **Layout diversity** — the optimum restricted to the canonical
//!    layout (Local Optimal) vs the full layout-aware optimum.

use pbqp_dnn_bench::registry;
use pbqp_dnn_cost::{AnalyticCost, CostTable, MachineModel};
use pbqp_dnn_graph::models;
use pbqp_dnn_select::{Optimizer, Strategy};

fn main() {
    let reg = registry();
    for machine in [MachineModel::intel_haswell_like(), MachineModel::arm_a57_like()] {
        println!("=== {machine} ===");
        println!(
            "{:12} {:>11} {:>11} {:>11} {:>11} {:>10}",
            "network", "PBQP ms", "RN-only ms", "no-DT ms", "L.OPT ms", "RN gap"
        );
        let cost = AnalyticCost::new(machine.clone(), 4);
        let opt = Optimizer::new(&reg, &cost);
        for (name, net) in models::evaluation_models() {
            let shapes = net.infer_shapes().expect("valid model");
            let table = opt.cost_table(&net);
            let exact = opt.plan_with_table(&net, &shapes, &table, Strategy::Pbqp).unwrap();
            let rn = opt.plan_with_table(&net, &shapes, &table, Strategy::PbqpHeuristic).unwrap();
            let lopt =
                opt.plan_with_table(&net, &shapes, &table, Strategy::LocalOptimalChw).unwrap();
            let no_dt = ignore_dt_selection(&opt, &net, &shapes, &table);
            println!(
                "{:12} {:>11.2} {:>11.2} {:>11.2} {:>11.2} {:>9.2}%",
                name,
                exact.predicted_us / 1000.0,
                rn.predicted_us / 1000.0,
                no_dt / 1000.0,
                lopt.predicted_us / 1000.0,
                100.0 * (rn.predicted_us / exact.predicted_us - 1.0)
            );
            assert!(exact.predicted_us <= rn.predicted_us + 1e-6);
            assert!(exact.predicted_us <= no_dt + 1e-6);
        }
        println!();
    }
    println!("PBQP ≤ RN-heuristic ≤/≈ alternatives on every row (asserted).");
}

/// Selection that ignores DT costs entirely (per-layer argmin over all
/// layouts), then *pays* the transforms legalization actually inserts —
/// §5.8's cautionary strategy, generalized beyond one family.
fn ignore_dt_selection(
    opt: &Optimizer<'_>,
    net: &pbqp_dnn_graph::DnnGraph,
    shapes: &[(usize, usize, usize)],
    table: &CostTable,
) -> f64 {
    // The per-family "best" strategies ignore DT costs during selection;
    // take each layer's global argmin via a degenerate comparison of all
    // family bests, then cost the legalized plan.
    let mut best = f64::INFINITY;
    for strategy in Strategy::family_bars() {
        // The family strategies select without looking at DT costs;
        // `predicted_us` then includes the transforms that selection
        // forces during legalization.
        let plan = opt.plan_with_table(net, shapes, table, strategy).expect("plans");
        best = best.min(plan.predicted_us);
    }
    best
}
