//! E11: the paper's actual methodology on the build host — per-layer
//! wall-clock profiling of every candidate primitive (§3.1), PBQP
//! selection over the measured cost table, then **real execution** of the
//! competing plans with wall-clock timing.
//!
//! Profiling runs at reduced spatial scale (costs are Θ(H·W) per family
//! and are scaled back up); the final network executions are full size.
//! Run with `--quick` to profile at a coarser scale.

use std::time::Instant;

use pbqp_dnn_bench::registry;
use pbqp_dnn_cost::MeasuredCost;
use pbqp_dnn_graph::models;
use pbqp_dnn_runtime::{Executor, Weights};
use pbqp_dnn_select::{Optimizer, Strategy};
use pbqp_dnn_tensor::{Layout, Tensor};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick { 8 } else { 4 };
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get().min(4));

    let reg = registry();
    let profiler = MeasuredCost::new(threads, 2).with_scale(scale);
    let net = models::alexnet();

    println!("profiling AlexNet x {} primitives at 1/{scale} spatial scale...", reg.len());
    let start = Instant::now();
    let opt = Optimizer::new(&reg, &profiler);
    let table = opt.cost_table(&net);
    println!("profiled in {:.1} s", start.elapsed().as_secs_f64());
    for layer in table.layers() {
        let (best, cost) = layer.best();
        println!("  {}: best measured = {best} ({:.0} µs extrapolated)", layer.scenario, cost);
    }

    let shapes = net.infer_shapes().expect("alexnet is valid");
    let weights = Weights::random(&net, 1);
    let input = Tensor::random(3, 227, 227, Layout::Chw, 2);

    println!("\nexecuting competing plans (full-size AlexNet, {threads} threads):");
    println!("{:22} {:>14} {:>14}", "strategy", "predicted ms", "measured ms");
    let mut rows = Vec::new();
    for strategy in
        [Strategy::Pbqp, Strategy::LocalOptimalChw, Strategy::CaffeLike, Strategy::Sum2d]
    {
        let plan = opt.plan_with_table(&net, &shapes, &table, strategy).expect("alexnet plans");
        let exec = Executor::new(&net, &plan, &reg, &weights);
        // Warm-up pass, then the timed pass (the paper averages five; one
        // timed pass keeps the sum2d row tolerable).
        let out = exec.run(&input, threads).expect("plan executes");
        let start = Instant::now();
        let out2 = exec.run(&input, threads).expect("plan executes");
        let ms = start.elapsed().as_secs_f64() * 1000.0;
        assert!(out.allclose(&out2, 1e-5).unwrap());
        println!("{:22} {:>14.1} {:>14.1}", strategy.label(), plan.predicted_us / 1000.0, ms);
        rows.push((strategy, ms));
    }
    let pbqp = rows[0].1;
    let sum2d = rows[3].1;
    println!("\nmeasured speedup, PBQP vs sum2d: {:.1}x", sum2d / pbqp);
    assert!(pbqp < sum2d, "PBQP must beat the baseline in real execution");
}
