//! Table 1: qualitative strengths and weaknesses of the convolution
//! families, derived empirically from the cost model over a scenario
//! sweep — the paper's hand-written `+`/`-` grades, regenerated from data.
//!
//! Grades: per scenario, each family's best variant is ranked by time and
//! by workspace; mean ranks are quantized to `++`/`+`/`-`/`--`. The
//! "Strided" column reports whether the family supports strided scenarios
//! at all; "Bad cases" names the scenario where the family ranked worst.

use std::collections::BTreeMap;

use pbqp_dnn_bench::registry;
use pbqp_dnn_cost::{AnalyticCost, CostSource, MachineModel};
use pbqp_dnn_graph::ConvScenario;
use pbqp_dnn_primitives::Family;

fn main() {
    let reg = registry();
    let cost = AnalyticCost::new(MachineModel::intel_haswell_like(), 1);
    let sweeps: Vec<(&str, ConvScenario)> = vec![
        ("large image", ConvScenario::new(3, 227, 227, 1, 3, 32)),
        ("few channels", ConvScenario::new(3, 56, 56, 1, 3, 64)),
        ("mid layer k3", ConvScenario::new(128, 28, 28, 1, 3, 128)),
        ("deep layer k3", ConvScenario::new(512, 14, 14, 1, 3, 512)),
        ("k5 layer", ConvScenario::new(96, 27, 27, 1, 5, 256)),
        ("k1 pointwise", ConvScenario::new(192, 28, 28, 1, 1, 64).with_pad(0)),
        ("small kernel k3", ConvScenario::new(64, 56, 56, 1, 3, 64)),
    ];
    let strided = ConvScenario::new(3, 227, 227, 4, 11, 96).with_pad(0);

    let families = [Family::Direct, Family::Im2, Family::Kn2, Family::Winograd, Family::Fft];
    let mut time_rank: BTreeMap<Family, Vec<f64>> = BTreeMap::new();
    let mut mem_rank: BTreeMap<Family, Vec<f64>> = BTreeMap::new();
    let mut worst: BTreeMap<Family, (&str, f64)> = BTreeMap::new();

    for (label, s) in &sweeps {
        // Best (time, workspace) per family on this scenario.
        let mut best: Vec<(Family, f64, f64)> = Vec::new();
        for &fam in &families {
            let cands: Vec<_> = reg.family(fam).into_iter().filter(|p| p.supports(s)).collect();
            if cands.is_empty() {
                continue;
            }
            let t =
                cands.iter().map(|p| cost.layer_cost(p.as_ref(), s)).fold(f64::INFINITY, f64::min);
            let w = cands.iter().map(|p| p.workspace_elems(s) as f64).fold(f64::INFINITY, f64::min);
            best.push((fam, t, w));
        }
        let rank_of = |values: Vec<(Family, f64)>| -> BTreeMap<Family, f64> {
            let mut sorted = values;
            sorted.sort_by(|a, b| a.1.total_cmp(&b.1));
            sorted.iter().enumerate().map(|(i, &(f, _))| (f, i as f64)).collect()
        };
        let tr = rank_of(best.iter().map(|&(f, t, _)| (f, t)).collect());
        let wr = rank_of(best.iter().map(|&(f, _, w)| (f, w)).collect());
        for &(fam, t, _) in &best {
            time_rank.entry(fam).or_default().push(tr[&fam]);
            mem_rank.entry(fam).or_default().push(wr[&fam]);
            let slow = t / best.iter().map(|b| b.1).fold(f64::INFINITY, f64::min);
            if worst.get(&fam).is_none_or(|&(_, s0)| slow > s0) {
                worst.insert(fam, (label, slow));
            }
        }
    }

    let grade = |ranks: &[f64]| -> &'static str {
        let mean = ranks.iter().sum::<f64>() / ranks.len() as f64;
        match mean {
            m if m < 1.0 => "++",
            m if m < 2.0 => "+",
            m if m < 3.0 => "-",
            _ => "--",
        }
    };

    println!("Table 1: strengths and weaknesses of the convolution families");
    println!(
        "{:10} {:>6} {:>8} {:>9}  Bad cases (worst relative scenario)",
        "Algorithm", "Time", "Memory", "Strided"
    );
    for &fam in &families {
        let strided_ok = reg.family(fam).iter().any(|p| p.supports(&strided));
        let (bad_label, bad_ratio) = worst[&fam];
        println!(
            "{:10} {:>6} {:>8} {:>9}  {} ({:.1}x slower than the best family)",
            fam.name(),
            grade(&time_rank[&fam]),
            grade(&mem_rank[&fam]),
            if strided_ok { "++" } else { "--" },
            bad_label,
            bad_ratio
        );
    }
}
