//! Figure 7: whole-network speedups on the ARM-Cortex-A57-like machine
//! model — (a) single-threaded and (b) multithreaded. The VGG models are
//! omitted, as on the paper's physical board they do not fit (§5.7).

use pbqp_dnn_bench::{arm_models, evaluate_network, figure_strategies, registry, render_figure};
use pbqp_dnn_cost::MachineModel;

fn main() {
    let reg = registry();
    let machine = MachineModel::arm_a57_like();
    let strategies = figure_strategies(4);
    for (threads, tag) in [(1usize, "(a) single-threaded"), (machine.cores, "(b) multithreaded")] {
        let rows: Vec<_> = arm_models()
            .into_iter()
            .map(|(name, net)| (name, evaluate_network(&net, &reg, &machine, threads, &strategies)))
            .collect();
        let rows: Vec<(&str, _)> = rows.iter().map(|(n, r)| (*n, r.clone())).collect();
        println!(
            "{}",
            render_figure(&format!("Figure 7{tag}: Whole Network Benchmarking (aarch64)"), &rows)
        );
    }
}
