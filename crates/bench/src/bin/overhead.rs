//! §5.4 optimization overheads: wall-clock PBQP construction + solve time
//! per network. The paper reports under one second per network with the
//! optimum found in every case.

use std::time::Instant;

use pbqp_dnn_bench::{intel_models, registry};
use pbqp_dnn_cost::{AnalyticCost, MachineModel};
use pbqp_dnn_select::{Optimizer, Strategy};

fn main() {
    let reg = registry();
    let cost = AnalyticCost::new(MachineModel::intel_haswell_like(), 4);
    let opt = Optimizer::new(&reg, &cost);
    println!("§5.4 optimization overheads (exact PBQP back-end)");
    println!(
        "{:12} {:>10} {:>12} {:>9} {:>7} {:>7} {:>7} {:>6}",
        "network", "solve ms", "total ms", "optimal", "R0", "RI", "RII", "core"
    );
    for (name, net) in intel_models() {
        let start = Instant::now();
        let plan = opt.plan(&net, Strategy::Pbqp).expect("evaluation model plans");
        let total_ms = start.elapsed().as_secs_f64() * 1000.0;
        let stats = plan.solve_stats.expect("pbqp strategy records stats");
        println!(
            "{:12} {:>10.2} {:>12.2} {:>9} {:>7} {:>7} {:>7} {:>6}",
            name,
            plan.solve_time_us / 1000.0,
            total_ms,
            plan.optimal == Some(true),
            stats.r0,
            stats.r1,
            stats.r2,
            stats.core_nodes
        );
        assert!(plan.solve_time_us < 1_000_000.0, "{name}: solve exceeded one second");
        assert_eq!(plan.optimal, Some(true), "{name}: optimum not proved");
    }
    println!("\nall networks solved to proven optimality in under one second (§5.4 reproduced)");
}
