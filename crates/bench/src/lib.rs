//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (§5). Each artifact has a dedicated binary:
//!
//! | artifact | binary | contents |
//! |---|---|---|
//! | Figure 4 | `fig4` | per-layer PBQP selections, Intel-like vs ARM-like |
//! | Figure 5 | `fig5` | single-threaded whole-network speedups, Intel-like |
//! | Figure 6 | `fig6` | multithreaded whole-network speedups, Intel-like |
//! | Figure 7 | `fig7` | single- and multithreaded speedups, ARM-like |
//! | Table 1 | `table1` | qualitative family strengths/weaknesses |
//! | Table 2 | `table2` | absolute inference times, Intel-like |
//! | Table 3 | `table3` | absolute inference times, ARM-like |
//! | §5.4 | `overhead` | PBQP solve times per network |
//! | §3.1/E11 | `measured` | wall-clock profiled selection on the build host |
//!
//! The headline figures use the deterministic analytic machine models
//! (the documented substitution for the paper's physical hardware); the
//! `measured` binary exercises the paper's actual methodology — per-layer
//! wall-clock profiling — on the build machine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;

use pbqp_dnn_cost::{AnalyticCost, MachineModel};
use pbqp_dnn_graph::DnnGraph;
use pbqp_dnn_primitives::registry::{full_library, Registry};
use pbqp_dnn_select::{Optimizer, Strategy};

/// One evaluated configuration: strategy plus its predicted latency.
#[derive(Debug, Clone)]
pub struct StrategyResult {
    /// The strategy evaluated.
    pub strategy: Strategy,
    /// Predicted whole-network latency in µs.
    pub predicted_us: f64,
    /// Speedup relative to the single-threaded sum2d baseline (the paper's
    /// common reference for all bars).
    pub speedup: f64,
}

/// The fixed strategy lineup of Figures 5–7, in legend order.
pub fn figure_strategies(vendor_vector_width: usize) -> Vec<Strategy> {
    let mut v = Strategy::family_bars();
    v.push(Strategy::LocalOptimalChw);
    v.push(Strategy::Pbqp);
    v.push(Strategy::VendorLike { vector_width: vendor_vector_width });
    v.push(Strategy::CaffeLike);
    v
}

/// Evaluates `strategies` on one network under one machine model.
///
/// `threads` applies to every strategy; the speedup denominator is always
/// the **single-threaded** sum2d baseline, matching §5.2 ("all bars
/// represent a speedup over a common baseline … with single-threaded
/// execution").
pub fn evaluate_network(
    net: &DnnGraph,
    registry: &Registry,
    machine: &MachineModel,
    threads: usize,
    strategies: &[Strategy],
) -> Vec<StrategyResult> {
    let st_cost = AnalyticCost::new(machine.clone(), 1);
    let baseline = Optimizer::new(registry, &st_cost)
        .plan(net, Strategy::Sum2d)
        .expect("sum2d always plans")
        .predicted_us;

    let cost = AnalyticCost::new(machine.clone(), threads);
    let optimizer = Optimizer::new(registry, &cost);
    let shapes = net.infer_shapes().expect("valid model");
    let table = optimizer.cost_table(net);
    strategies
        .iter()
        .map(|&strategy| {
            let plan = optimizer
                .plan_with_table(net, &shapes, &table, strategy)
                .expect("evaluation strategies always plan");
            StrategyResult {
                strategy,
                predicted_us: plan.predicted_us,
                speedup: baseline / plan.predicted_us,
            }
        })
        .collect()
}

/// Renders a figure as aligned text columns plus ASCII bars (one block per
/// 0.5x of speedup), the closest a terminal gets to the paper's charts.
pub fn render_figure(title: &str, networks: &[(&str, Vec<StrategyResult>)]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!("{}\n", "=".repeat(title.len())));
    for (name, results) in networks {
        out.push_str(&format!("\n{name}\n"));
        for r in results {
            let bar = "#".repeat((r.speedup * 2.0).round().max(0.0) as usize);
            out.push_str(&format!(
                "  {:22} {:7.2}x  {:10.1} µs  {bar}\n",
                r.strategy.label(),
                r.speedup,
                r.predicted_us
            ));
        }
    }
    out
}

/// The default registry used by every benchmark binary.
pub fn registry() -> Registry {
    Registry::new(full_library())
}

/// The evaluation model list for the Intel figures (§5.2).
pub fn intel_models() -> Vec<(&'static str, DnnGraph)> {
    pbqp_dnn_graph::models::evaluation_models()
}

/// The evaluation model list for the ARM figures: the VGG models "are too
/// large to fit on this platform" (§5.7).
pub fn arm_models() -> Vec<(&'static str, DnnGraph)> {
    pbqp_dnn_graph::models::evaluation_models()
        .into_iter()
        .filter(|(name, _)| *name == "AlexNet" || *name == "GoogleNet")
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_lineup_matches_the_paper_legend() {
        let s = figure_strategies(8);
        let labels: Vec<String> = s.iter().map(|x| x.label()).collect();
        assert_eq!(
            labels,
            [
                "direct",
                "im2",
                "kn2",
                "winograd",
                "fft",
                "Local Optimal (CHW)",
                "PBQP",
                "mkldnn",
                "caffe"
            ]
        );
    }

    #[test]
    fn arm_lineup_excludes_vgg() {
        let names: Vec<&str> = arm_models().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, ["AlexNet", "GoogleNet"]);
    }

    #[test]
    fn pbqp_tops_every_figure_cell_on_a_small_model() {
        let reg = registry();
        let net = pbqp_dnn_graph::models::alexnet();
        let machine = MachineModel::intel_haswell_like();
        let results = evaluate_network(&net, &reg, &machine, 1, &figure_strategies(8));
        let pbqp = results.iter().find(|r| r.strategy == Strategy::Pbqp).unwrap().speedup;
        for r in &results {
            assert!(pbqp + 1e-9 >= r.speedup, "{} beat PBQP", r.strategy.label());
        }
        assert!(pbqp > 5.0, "PBQP should deliver a large speedup over sum2d");
    }
}
