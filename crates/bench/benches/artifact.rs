//! Compiled-artifact benchmark: cold compile vs `load` latency, and
//! artifact size per model — the numbers behind the "solve once, ship
//! the plan" story. Emits `BENCH_PR4.json` at the repo root.
//!
//! ```sh
//! cargo bench -p pbqp-dnn-bench --bench artifact
//! ```
//!
//! Two cold-compile flavours are timed. With **analytic** costs the
//! solve is nearly free, so on micro models loading is merely
//! comparable — reported honestly, not asserted. With **measured**
//! costs (the paper's §3.1 methodology: wall-clock profile every
//! candidate on every layer), compiling pays for real kernel
//! executions, and `CompiledModel::load` — decode + checksum + schedule
//! recompile, no profiling, no solver — must win. That gap is what
//! shipping the artifact buys an edge deployment. Set
//! `ARTIFACT_NO_ASSERT=1` (CI smoke) to report without asserting.

use pbqp_dnn::prelude::*;
use pbqp_dnn_bench::harness::{fmt_duration, write_repo_artifact, Bench};

struct Case {
    name: &'static str,
    graph: DnnGraph,
    mixed: bool,
}

fn main() {
    let cases = [
        Case { name: "micro_alexnet", graph: models::micro_alexnet(), mixed: false },
        Case { name: "micro_inception", graph: models::micro_inception(), mixed: false },
        Case { name: "micro_mixed", graph: models::micro_mixed(), mixed: true },
    ];

    let mut bench = Bench::new("compiled artifacts: cold compile vs load").samples(9);
    let mut rows = Vec::new();
    for case in &cases {
        let weights = Weights::random(&case.graph, 0x5EED);
        let options =
            CompileOptions::new().machine(MachineModel::arm_a57_like()).mixed_precision(case.mixed);

        // Cold compiles: a fresh Compiler each iteration so the plan
        // cache never hides the profile + solve. Analytic costs model
        // the machine; measured costs execute every candidate kernel
        // (the paper's methodology — what a real build host pays).
        let analytic = bench.run(&format!("{}: cold compile (analytic)", case.name), || {
            Compiler::new(options.clone()).compile(&case.graph, &weights).expect("compiles")
        });
        let measured_options = options.clone().measured_costs(1, 1);
        let measured = bench.run(&format!("{}: cold compile (measured)", case.name), || {
            Compiler::new(measured_options.clone())
                .compile(&case.graph, &weights)
                .expect("compiles")
        });

        let model = Compiler::new(options.clone()).compile(&case.graph, &weights).unwrap();
        let mut bytes = Vec::new();
        model.save(&mut bytes).expect("saves");

        let load = bench.run(&format!("{}: load artifact", case.name), || {
            CompiledModel::load(&mut bytes.as_slice()).expect("loads")
        });

        // The loaded model must serve bit-identically to the fresh one.
        let loaded = CompiledModel::load(&mut bytes.as_slice()).unwrap();
        let (c, h, w) = case.graph.infer_shapes().unwrap()[0];
        let input = Tensor::random(c, h, w, Layout::Chw, 7);
        let a = model.engine().infer(&input).unwrap();
        let b = loaded.engine().infer(&input).unwrap();
        assert_eq!(a.data(), b.data(), "{}: loaded model must match", case.name);

        let speedup = measured.as_secs_f64() / load.as_secs_f64().max(1e-9);
        println!(
            "{:16} artifact {:>8} bytes  analytic {:>11}  measured {:>11}  load {:>11}  ({speedup:.1}x vs measured)",
            case.name,
            bytes.len(),
            fmt_duration(analytic),
            fmt_duration(measured),
            fmt_duration(load),
        );
        rows.push(format!(
            concat!(
                "    {{\"model\": \"{}\", \"mixed_precision\": {}, ",
                "\"artifact_bytes\": {}, \"analytic_compile_ns\": {}, ",
                "\"measured_compile_ns\": {}, \"load_ns\": {}, ",
                "\"load_speedup_vs_measured\": {:.2}}}"
            ),
            case.name,
            case.mixed,
            bytes.len(),
            analytic.as_nanos(),
            measured.as_nanos(),
            load.as_nanos(),
            speedup,
        ));

        if std::env::var("ARTIFACT_NO_ASSERT").is_err() {
            assert!(
                load < measured,
                "{}: loading ({}) should beat a measured-cost cold compile ({})",
                case.name,
                fmt_duration(load),
                fmt_duration(measured),
            );
        }
    }

    println!("\n{}", bench.report());
    let json =
        format!("{{\n  \"bench\": \"artifact\",\n  \"models\": [\n{}\n  ]\n}}\n", rows.join(",\n"));
    match write_repo_artifact("BENCH_PR4.json", &json) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_PR4.json: {e}"),
    }
}
