//! The steady-state serving benchmark: allocations/run and ns/run for
//! the three execution APIs on micro-AlexNet, proving the memory half of
//! the engine's amortization story (PR 1 amortized *planning* via the
//! plan cache; the workspace subsystem amortizes *memory*).
//!
//! Tiers, all computing identical outputs:
//!
//! 1. **cold run** — a fresh executor per request: schedule compilation,
//!    pooled-buffer construction and every scratch allocation on the hot
//!    path;
//! 2. **steady `run`** — one warmed executor; the only remaining heap
//!    traffic is the returned output tensor;
//! 3. **steady `run_into`** — the serving loop: caller-recycled output,
//!    **zero** heap allocations per pass.
//!
//! Emits machine-readable `BENCH_PR2.json` at the repo root so the perf
//! trajectory is tracked across PRs. Run with
//! `cargo bench -p pbqp-dnn-bench --bench steady_state`. The allocation
//! assertions are deterministic; set `STEADY_STATE_NO_ASSERT=1` (as the
//! CI smoke step does, mirroring `BATCH_ENGINE_NO_ASSERT`) to print the
//! numbers without asserting.

use std::alloc::{GlobalAlloc, Layout as AllocLayout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use pbqp_dnn_bench::harness::fmt_duration;
use pbqp_dnn_bench::registry;
use pbqp_dnn_cost::{AnalyticCost, MachineModel};
use pbqp_dnn_graph::models::micro_alexnet;
use pbqp_dnn_runtime::{Executor, Parallelism, Weights};
use pbqp_dnn_select::{Optimizer, Strategy};
use pbqp_dnn_tensor::{Layout, Tensor};

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: AllocLayout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: AllocLayout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: AllocLayout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: AllocLayout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const REPS: usize = 20;

fn allocs() -> usize {
    ALLOCS.load(Ordering::SeqCst)
}

/// `(allocations per call, best ns per call)` over `REPS` calls.
fn measure(reps: usize, mut f: impl FnMut()) -> (f64, u128) {
    let before = allocs();
    let mut best = u128::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_nanos());
    }
    ((allocs() - before) as f64 / reps as f64, best)
}

fn main() {
    let net = micro_alexnet();
    let reg = registry();
    let cost = AnalyticCost::new(MachineModel::intel_haswell_like(), 1);
    let opt = Optimizer::new(&reg, &cost);
    let weights = Weights::random(&net, 0xBA7C);
    let (c, h, w) = net.infer_shapes().expect("valid model")[0];
    let input = Tensor::random(c, h, w, Layout::Chw, 7);
    let plan = opt.plan(&net, Strategy::Pbqp).expect("plans");

    // Tier 1: cold — fresh executor (schedule + buffers) per request.
    let (cold_allocs, cold_ns) = measure(REPS, || {
        let exec = Executor::new(&net, &plan, &reg, &weights);
        std::hint::black_box(exec.run(&input, 1).expect("runs"));
    });

    // Warmed executor shared by the steady tiers.
    let exec = Executor::new(&net, &plan, &reg, &weights);
    let mut out = Tensor::empty();
    exec.run_into(&input, &mut out, 1).expect("warmup");

    // Tier 2: steady `run` — allocates only the returned output.
    let (run_allocs, run_ns) = measure(REPS, || {
        std::hint::black_box(exec.run(&input, 1).expect("runs"));
    });

    // Tier 3: steady `run_into` — the zero-allocation serving loop.
    let (into_allocs, into_ns) = measure(REPS, || {
        exec.run_into(&input, &mut out, 1).expect("runs");
        std::hint::black_box(&out);
    });

    // Batch serving, serial mode, recycled outputs.
    let inputs: Vec<Tensor> =
        (0..8).map(|i| Tensor::random(c, h, w, Layout::Chw, 40 + i)).collect();
    let mut outs = Vec::new();
    exec.run_batch_into(&inputs, &mut outs, Parallelism::serial()).expect("warmup");
    let (batch_allocs, batch_ns) = measure(REPS, || {
        exec.run_batch_into(&inputs, &mut outs, Parallelism::serial()).expect("runs");
        std::hint::black_box(&outs);
    });

    println!("steady_state: micro-AlexNet serving, allocations/run and ns/run");
    println!(
        "  cold (new executor per request)    {:>12}  {:>8.1} allocs/run",
        fmt_duration(std::time::Duration::from_nanos(cold_ns as u64)),
        cold_allocs
    );
    println!(
        "  steady run (output alloc only)     {:>12}  {:>8.1} allocs/run",
        fmt_duration(std::time::Duration::from_nanos(run_ns as u64)),
        run_allocs
    );
    println!(
        "  steady run_into (serving loop)     {:>12}  {:>8.1} allocs/run",
        fmt_duration(std::time::Duration::from_nanos(into_ns as u64)),
        into_allocs
    );
    println!(
        "  steady run_batch_into (8 items)    {:>12}  {:>8.1} allocs/run",
        fmt_duration(std::time::Duration::from_nanos(batch_ns as u64)),
        batch_allocs
    );
    println!(
        "  cold-run speedup from warmed serving loop: {:.2}x",
        cold_ns as f64 / into_ns as f64
    );

    // Machine-readable trajectory artifact at the repo root.
    let json = format!(
        "{{\n  \"bench\": \"steady_state\",\n  \"model\": \"micro_alexnet\",\n  \"strategy\": \"pbqp\",\n  \"reps\": {REPS},\n  \"cold_allocs_per_run\": {cold_allocs:.1},\n  \"cold_ns_per_run\": {cold_ns},\n  \"steady_run_allocs_per_run\": {run_allocs:.1},\n  \"steady_run_ns_per_run\": {run_ns},\n  \"steady_run_into_allocs_per_run\": {into_allocs:.1},\n  \"steady_run_into_ns_per_run\": {into_ns},\n  \"steady_batch8_allocs_per_run\": {batch_allocs:.1},\n  \"steady_batch8_ns_per_run\": {batch_ns}\n}}\n"
    );
    match pbqp_dnn_bench::harness::write_repo_artifact("BENCH_PR2.json", &json) {
        Ok(path) => println!("  wrote {}", path.display()),
        Err(e) => println!("  could not write BENCH_PR2.json: {e}"),
    }

    // The allocation counts are deterministic, so assert them even in
    // benchmark context; wall-clock is never asserted here.
    if std::env::var_os("STEADY_STATE_NO_ASSERT").is_none() {
        assert_eq!(into_allocs, 0.0, "steady-state run_into must not touch the heap");
        assert_eq!(batch_allocs, 0.0, "steady-state run_batch_into must not touch the heap");
        assert!(run_allocs <= 2.0, "steady-state run should only allocate its output");
        assert!(
            cold_allocs > 10.0,
            "cold tier should show the per-request schedule/buffer allocation tax"
        );
    }
}
