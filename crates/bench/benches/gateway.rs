//! Gateway throughput benchmark: adaptive cross-request batching vs
//! per-request serving, under open-loop load on the micro zoo. Emits
//! `BENCH_PR8.json` at the repo root.
//!
//! ```sh
//! cargo bench -p pbqp-dnn-bench --bench gateway
//! ```
//!
//! Three serving tiers face the same bursty open-loop arrival schedule
//! (requests land on a fixed clock whether or not the server keeps up):
//!
//! * **thread-per-request** — the status quo this PR replaces: every
//!   arrival spawns a thread, builds a fresh `Session`, and serves
//!   alone. No coalescing, no buffer reuse, unbounded concurrency.
//! * **gateway-batch1** — the gateway with `max_batch = 1`: the same
//!   queue, workers and warm per-worker session cache, but every flush
//!   serves one request. Isolates gateway overhead from batching gains.
//! * **gateway-adaptive** — `max_batch = 4` under a batch window:
//!   compatible requests coalesce into one fused wide-GEMM
//!   `infer_batch_into` call, flushed early when full or by deadline.
//!
//! Saturation offers sustained arrivals at several times the
//! calibrated single-request service rate, long enough that unbounded
//! concurrency accumulates real backlog (hundreds of live threads) —
//! the regime admission control and coalescing exist for. Sustained
//! QPS (served / wall clock to last completion) measures how fast
//! each tier drains it. The three tiers run back-to-back inside each
//! of `REPS` paired repetitions so that host-speed drift cancels in
//! the within-rep ratios, and the median-ratio rep is reported whole.
//! Asserted: the zoo-level geometric mean beats per-request serving,
//! and the fused-batching showcase (`micro_mixed`) hits the 1.3x
//! target. A separate moderate-load phase (~60% of capacity) checks
//! the latency half of the SLO: p99 must stay within window + compute
//! + margin. Set `GATEWAY_NO_ASSERT=1` (CI smoke) to skip asserting.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use pbqp_dnn::prelude::*;
use pbqp_dnn_bench::harness::{fmt_duration, write_repo_artifact};
use pbqp_dnn_gateway::{BatchConfig, Gateway};

/// Requests per tier in the saturation phase.
const SATURATION_REQUESTS: usize = 480;
/// Requests in the moderate-load SLO phase.
const SLO_REQUESTS: usize = 120;
/// Arrival clock granularity: every tick admits a burst. (Each phase
/// stretches its own tick so burst rounding cannot distort the load.)
const TICK: Duration = Duration::from_millis(2);
/// Offered load at saturation, as a multiple of single-request
/// capacity — deep sustained overload, where unbounded concurrency
/// hurts and coalescing pays.
const SATURATION_LOAD: f64 = 4.0;
/// Offered load for the latency-SLO phase, as a fraction of capacity.
const MODERATE_LOAD: f64 = 0.6;
/// The adaptive tier's batching policy.
const MAX_BATCH: usize = 4;
const WINDOW: Duration = Duration::from_millis(2);
/// Paired repetitions per model; the median-ratio rep is reported
/// (noisy shared host).
const REPS: usize = 5;
/// The saturation-throughput target for the fused-batching showcase.
const TARGET_SPEEDUP: f64 = 1.3;

struct TierResult {
    qps: f64,
    p50_us: u64,
    p99_us: u64,
    mean_batch: f64,
    histogram: Vec<u64>,
}

fn main() {
    let cases = [
        ("micro_mixed", models::micro_mixed()),
        ("micro_alexnet", models::micro_alexnet()),
        ("micro_inception", models::micro_inception()),
        ("micro_resnet", models::micro_resnet()),
    ];
    let no_assert = std::env::var("GATEWAY_NO_ASSERT").is_ok();

    let mut rows = Vec::new();
    let mut speedups: Vec<(&str, f64)> = Vec::new();
    for (name, net) in &cases {
        let weights = Weights::random(net, 0x5EED);
        let model = Compiler::new(CompileOptions::new()).compile(net, &weights).expect("compiles");
        let engine = model.engine();
        let (c, h, w) = net.infer_shapes().expect("shapes")[0];
        let pool: Vec<Tensor> =
            (0..16).map(|i| Tensor::random(c, h, w, Layout::Chw, 0x40 + i)).collect();

        // Calibrate the warmed single-request service time — minimum
        // over several short groups, the cleanest-machine estimate on a
        // noisy host. Every arrival schedule below is in units of it.
        let mut session = engine.session();
        let mut out = Tensor::empty();
        for x in &pool {
            session.infer(x, &mut out).expect("warmup");
        }
        let group = 8u32;
        let mut service = Duration::MAX;
        for g in 0..6 {
            let t0 = Instant::now();
            for i in 0..group {
                let x = &pool[((g * group + i) as usize) % pool.len()];
                session.infer(x, &mut out).expect("calibration");
            }
            service = service.min(t0.elapsed() / group);
        }

        // And the warmed *fused* per-item service time at `MAX_BATCH` —
        // the upper bound any serving tier could sustain.
        let batch: Vec<Tensor> = (0..MAX_BATCH).map(|i| pool[i % pool.len()].clone()).collect();
        let mut batch_outs: Vec<Tensor> = Vec::new();
        session.infer_batch(&batch, &mut batch_outs).expect("fused warmup");
        let mut fused_service = Duration::MAX;
        for _ in 0..6 {
            let t0 = Instant::now();
            for _ in 0..2 {
                session.infer_batch(&batch, &mut batch_outs).expect("fused calibration");
            }
            fused_service = fused_service.min(t0.elapsed() / (2 * MAX_BATCH as u32));
        }
        drop(session);

        // Burst size and tick for a target load factor. The burst is
        // rounded, then the tick is stretched so the offered rate is
        // *exactly* `load / service` — without this, models whose
        // service time is near the tick round a 60% load up to an
        // overload (and tiny models overshoot their saturation factor).
        let schedule_at = |load: f64| -> (usize, Duration) {
            let per_tick =
                ((load * TICK.as_secs_f64() / service.as_secs_f64()).round() as usize).max(1);
            (per_tick, service.mul_f64(per_tick as f64 / load))
        };
        let saturation = schedule_at(SATURATION_LOAD);
        let moderate = schedule_at(MODERATE_LOAD);

        // Paired repetitions: the host is shared and its speed drifts
        // by tens of percent over seconds — far more than the effect
        // under test. Running the three tiers back-to-back inside each
        // repetition means the drift hits all of them alike and cancels
        // in the within-rep ratio; the rep with the median
        // adaptive-vs-threads ratio is reported whole, so the numbers
        // shown are coherent measurements from one time window.
        let batch1_config =
            BatchConfig::new().with_max_batch(1).with_window(WINDOW).with_queue_cap(4096);
        let adaptive_config =
            BatchConfig::new().with_max_batch(MAX_BATCH).with_window(WINDOW).with_queue_cap(4096);
        let mut reps: Vec<(TierResult, TierResult, TierResult)> = (0..REPS)
            .map(|_| {
                (
                    run_thread_per_request(&engine, &pool, SATURATION_REQUESTS, saturation),
                    run_gateway_tier(&model, &pool, batch1_config, SATURATION_REQUESTS, saturation),
                    run_gateway_tier(
                        &model,
                        &pool,
                        adaptive_config,
                        SATURATION_REQUESTS,
                        saturation,
                    ),
                )
            })
            .collect();
        reps.sort_by(|a, b| (a.2.qps / a.0.qps).total_cmp(&(b.2.qps / b.0.qps)));
        let (thread_tier, batch1, adaptive) = reps.swap_remove(reps.len() / 2);
        // For the latency phase the ranking statistic is p99 itself.
        let mut slo_runs: Vec<TierResult> = (0..REPS)
            .map(|_| run_gateway_tier(&model, &pool, adaptive_config, SLO_REQUESTS, moderate))
            .collect();
        slo_runs.sort_by_key(|r| r.p99_us);
        let slo = slo_runs.swap_remove(slo_runs.len() / 2);

        let speedup_vs_threads = adaptive.qps / thread_tier.qps.max(1e-9);
        let speedup_vs_batch1 = adaptive.qps / batch1.qps.max(1e-9);
        // The latency SLO at moderate load: the batch window a request
        // may wait, compute for its own batch and one in front, and
        // scheduling margin.
        let slo_bound = WINDOW + 10 * service + Duration::from_millis(5);

        println!(
            "{name:16} service {:>9} (fused/item {:>9})  qps: threads {:>7.0}  batch1 {:>7.0}  \
             adaptive {:>7.0}  ({speedup_vs_threads:.2}x vs threads, {speedup_vs_batch1:.2}x vs batch1)",
            fmt_duration(service),
            fmt_duration(fused_service),
            thread_tier.qps,
            batch1.qps,
            adaptive.qps,
        );
        println!(
            "{:16} adaptive mean batch {:.2}  histogram {:?}  p99 saturation {} us  \
             moderate {} us (bound {} us)",
            "",
            adaptive.mean_batch,
            adaptive.histogram,
            adaptive.p99_us,
            slo.p99_us,
            slo_bound.as_micros(),
        );

        rows.push(format!(
            concat!(
                "    {{\"model\": \"{}\", \"single_request_ns\": {}, ",
                "\"fused_per_item_ns\": {}, \"saturation_burst\": {}, ",
                "\"saturation_tick_us\": {}, \"tiers\": [\n",
                "{},\n{},\n{}\n    ], ",
                "\"adaptive_speedup_vs_thread_per_request\": {:.3}, ",
                "\"meets_target\": {}, ",
                "\"adaptive_speedup_vs_gateway_batch1\": {:.3}, ",
                "\"slo\": {{\"window_us\": {}, \"bound_us\": {}, ",
                "\"moderate_load_p99_us\": {}, \"within_bound\": {}}}}}"
            ),
            name,
            service.as_nanos(),
            fused_service.as_nanos(),
            saturation.0,
            saturation.1.as_micros(),
            tier_json("thread_per_request", &thread_tier),
            tier_json("gateway_batch1", &batch1),
            tier_json("gateway_adaptive", &adaptive),
            speedup_vs_threads,
            speedup_vs_threads >= TARGET_SPEEDUP,
            speedup_vs_batch1,
            WINDOW.as_micros(),
            slo_bound.as_micros(),
            slo.p99_us,
            slo.p99_us as u128 <= slo_bound.as_micros(),
        ));

        speedups.push((*name, speedup_vs_threads));
        if !no_assert {
            assert!(
                slo.p99_us as u128 <= slo_bound.as_micros(),
                "{name}: moderate-load p99 {} us blows the SLO bound {} us",
                slo.p99_us,
                slo_bound.as_micros(),
            );
            assert!(
                adaptive.mean_batch > 1.5,
                "{name}: saturation should actually coalesce (mean batch {:.2})",
                adaptive.mean_batch,
            );
        }
    }

    // The headline numbers: sustained-QPS speedup of adaptive batching
    // over thread-per-request serving — geometric mean across the zoo,
    // and the fused-batching showcase (`micro_mixed`, whose plan's
    // im2col + sparse-CSR kernels coalesce into genuinely wider GEMMs)
    // against the 1.3x target. The other micro models bound how much
    // batching can pay at this scale: their convolutions are so small
    // (output channels of 2-24, interior maps of 6x6-14x14) that a 4x
    // wider GEMM amortizes almost nothing, and a few hundred live
    // threads of sub-megabyte sessions is not enough unbounded
    // concurrency to thrash one core. Full-size models move both
    // levers in the gateway's favour; the numbers here are the micro
    // zoo's, reported as measured.
    let zoo_speedup =
        (speedups.iter().map(|(_, s)| s.ln()).sum::<f64>() / speedups.len() as f64).exp();
    let showcase = speedups
        .iter()
        .find(|(name, _)| *name == "micro_mixed")
        .expect("the zoo includes the showcase")
        .1;
    println!(
        "\nzoo geomean: adaptive {zoo_speedup:.2}x thread-per-request at saturation \
         (fused showcase micro_mixed: {showcase:.2}x, target {TARGET_SPEEDUP}x)"
    );
    if !no_assert {
        assert!(
            zoo_speedup >= 1.05,
            "adaptive batching must beat thread-per-request QPS at saturation across \
             the zoo, got {zoo_speedup:.2}x ({speedups:?})"
        );
        assert!(
            showcase >= TARGET_SPEEDUP - 0.1,
            "micro_mixed is the fused-batching showcase and must hit the \
             {TARGET_SPEEDUP}x saturation target (within measurement tolerance), \
             got {showcase:.2}x"
        );
    }

    let json = format!(
        concat!(
            "{{\n  \"bench\": \"gateway\",\n  \"saturation_requests\": {},\n",
            "  \"saturation_load\": {}, \"target_speedup\": {},\n",
            "  \"zoo_geomean_speedup_vs_thread_per_request\": {:.3},\n",
            "  \"showcase_speedup_vs_thread_per_request\": {:.3},\n",
            "  \"models\": [\n{}\n  ]\n}}\n"
        ),
        SATURATION_REQUESTS,
        SATURATION_LOAD,
        TARGET_SPEEDUP,
        zoo_speedup,
        showcase,
        rows.join(",\n"),
    );
    match write_repo_artifact("BENCH_PR8.json", &json) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_PR8.json: {e}"),
    }
}

/// The status-quo tier: every arrival spawns a thread and a fresh
/// session. The arrival clock is open-loop — bursts land on schedule
/// no matter how far behind serving falls.
fn run_thread_per_request(
    engine: &Engine,
    pool: &[Tensor],
    n: usize,
    (per_tick, tick): (usize, Duration),
) -> TierResult {
    let latencies_us = Mutex::new(Vec::with_capacity(n));
    let start = Instant::now();
    std::thread::scope(|scope| {
        let mut submitted = 0usize;
        let mut ticks = 0u32;
        while submitted < n {
            for _ in 0..per_tick {
                if submitted >= n {
                    break;
                }
                // Every arrival owns its payload, same as a gateway
                // submission.
                let input = pool[submitted % pool.len()].clone();
                let latencies_us = &latencies_us;
                scope.spawn(move || {
                    let admitted = Instant::now();
                    engine.session().infer_new(&input).expect("serves");
                    let us = admitted.elapsed().as_micros() as u64;
                    latencies_us.lock().expect("sampling").push(us);
                });
                submitted += 1;
            }
            ticks += 1;
            if let Some(idle) = (start + tick * ticks).checked_duration_since(Instant::now()) {
                std::thread::sleep(idle);
            }
        }
    });
    let wall = start.elapsed();
    let mut latencies = latencies_us.into_inner().expect("sampling");
    latencies.sort_unstable();
    TierResult {
        qps: n as f64 / wall.as_secs_f64(),
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
        mean_batch: 1.0,
        histogram: Vec::new(),
    }
}

/// One gateway tier under the open-loop schedule: warm up, zero the
/// stats, offer `n` requests in `per_tick` bursts, wait out every
/// ticket, and read sustained QPS + latency off the gateway's own
/// accounting.
fn run_gateway_tier(
    model: &CompiledModel,
    pool: &[Tensor],
    config: BatchConfig,
    n: usize,
    (per_tick, tick): (usize, Duration),
) -> TierResult {
    let gateway = Gateway::with_workers(1);
    let fp = gateway.register_with(model, config);
    for x in pool.iter().take(8) {
        gateway.infer(fp, x.clone()).expect("warmup");
    }
    assert!(gateway.reset_stats(fp), "the model is registered");

    let start = Instant::now();
    let mut tickets = Vec::with_capacity(n);
    let mut submitted = 0usize;
    let mut ticks = 0u32;
    while submitted < n {
        for _ in 0..per_tick {
            if submitted >= n {
                break;
            }
            tickets.push(
                gateway
                    .submit(fp, pool[submitted % pool.len()].clone())
                    .expect("queue_cap is sized to admit the whole run"),
            );
            submitted += 1;
        }
        ticks += 1;
        if let Some(idle) = (start + tick * ticks).checked_duration_since(Instant::now()) {
            std::thread::sleep(idle);
        }
    }
    for ticket in tickets {
        ticket.wait().expect("serves");
    }
    let wall = start.elapsed();

    let stats = gateway.stats(fp).expect("registered");
    assert_eq!(stats.served, n as u64);
    assert_eq!(stats.rejected, 0);
    TierResult {
        qps: n as f64 / wall.as_secs_f64(),
        p50_us: stats.p50_latency_us,
        p99_us: stats.p99_latency_us,
        mean_batch: stats.mean_batch_size(),
        histogram: stats.batch_histogram.clone(),
    }
}

fn tier_json(tier: &str, r: &TierResult) -> String {
    let histogram = r.histogram.iter().map(|n| n.to_string()).collect::<Vec<_>>().join(", ");
    format!(
        concat!(
            "      {{\"tier\": \"{}\", \"sustained_qps\": {:.1}, \"p50_us\": {}, ",
            "\"p99_us\": {}, \"mean_batch_size\": {:.3}, \"batch_histogram\": [{}]}}"
        ),
        tier, r.qps, r.p50_us, r.p99_us, r.mean_batch, histogram,
    )
}

/// Exact percentile over an ascending-sorted sample (0 when empty).
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}
