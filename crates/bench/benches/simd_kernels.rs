//! Runtime-dispatch microbenchmarks: every ISA the host can execute vs
//! the scalar reference, at three levels —
//!
//! * **panel kernels** — packed f32 GEMM and the quantized int8 GEMM on
//!   a conv-shaped product, pinned per ISA via the `.isa()` builders;
//! * **conv primitive** — `qint8_im2col_chw` under a forced-scalar
//!   override vs automatic dispatch;
//! * **end to end** — micro_resnet served with its f32-only optimum vs
//!   its int8-island plan (the measured version of the plan comparison
//!   the mixed-precision solve makes analytically).
//!
//! Also records the one-shot host calibration
//! (`pbqp_dnn_cost::host_calibration`) next to the machine-model presets'
//! *assumed* `int8_speedup` figures — the honest-caveat ledger for
//! README/ROADMAP.
//!
//! Emits machine-readable `BENCH_PR6.json` at the repo root. Run with
//! `cargo bench -p pbqp-dnn-bench --bench simd_kernels`; set
//! `SIMD_KERNELS_NO_ASSERT=1` (as CI smoke steps do) to print without
//! asserting. `PBQP_DNN_FORCE_ISA` pins the *dispatched* rows without
//! touching the per-ISA ones.

use std::hint::black_box;

use pbqp_dnn_bench::harness::{fmt_duration, write_repo_artifact, Bench};
use pbqp_dnn_cost::{host_calibration, AnalyticCost, MachineModel};
use pbqp_dnn_gemm::arch::{self, Isa};
use pbqp_dnn_gemm::{Gemm, GemmKind, QuantGemm, Trans};
use pbqp_dnn_graph::models::micro_resnet;
use pbqp_dnn_graph::ConvScenario;
use pbqp_dnn_primitives::registry::{full_library, mixed_precision_library, Registry};
use pbqp_dnn_runtime::{Executor, Weights};
use pbqp_dnn_select::{Optimizer, Strategy};
use pbqp_dnn_tensor::transform::quantize_dynamic_into;
use pbqp_dnn_tensor::{DType, KernelTensor, Layout, Tensor};

const REPS: usize = 25;

/// Conv-shaped probe product: 32 filters over a 24×24 map, 4·6·6 patch.
const M: usize = 32;
const N: usize = 576;
const K: usize = 144;

struct GemmRow {
    isa: &'static str,
    f32_ns: u128,
    int8_ns: u128,
}

fn gemm_rows(timer: &mut Bench) -> Vec<GemmRow> {
    let mut rng = 1u64;
    let mut next = move || {
        rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        rng >> 33
    };
    let af: Vec<f32> = (0..M * K).map(|_| (next() % 255) as f32 / 127.0 - 1.0).collect();
    let bf: Vec<f32> = (0..K * N).map(|_| (next() % 255) as f32 / 127.0 - 1.0).collect();
    let aq: Vec<i8> = (0..M * K).map(|_| (next() % 255) as i8).collect();
    let bq: Vec<i8> = (0..K * N).map(|_| (next() % 255) as i8).collect();

    // Pinned per-ISA rows first, then the dispatched row (which also
    // reflects a PBQP_DNN_FORCE_ISA env override if one is set).
    let mut pins: Vec<(&'static str, Option<Isa>)> =
        arch::available_kernels().iter().map(|k| (k.isa().name(), Some(k.isa()))).collect();
    pins.push(("dispatched", None));

    let mut rows = Vec::new();
    for (label, pin) in pins {
        let gemm = Gemm::new(GemmKind::Packed).isa(pin);
        let mut cf = vec![0.0f32; M * N];
        let mut sf = vec![0.0f32; gemm.scratch_elems(Trans::N, Trans::N, M, N, K)];
        let f32_ns = timer
            .run(&format!("f32 gemm {M}x{N}x{K} [{label}]"), || {
                gemm.run_with_scratch(Trans::N, Trans::N, M, N, K, &af, &bf, 0.0, &mut cf, &mut sf);
            })
            .as_nanos();
        let qgemm = QuantGemm::new().isa(pin);
        let mut cq = vec![0i32; M * N];
        let mut sq = vec![0i32; qgemm.scratch_elems(M, N, K)];
        let int8_ns = timer
            .run(&format!("int8 gemm {M}x{N}x{K} [{label}]"), || {
                qgemm.run_with_scratch(M, N, K, &aq, 3, &bq, -7, &mut cq, &mut sq);
            })
            .as_nanos();
        rows.push(GemmRow { isa: label, f32_ns, int8_ns });
    }
    rows
}

/// `qint8_im2col_chw` under a forced-scalar override vs automatic
/// dispatch: the conv primitive whose inner product is the quantized
/// panel kernel.
fn im2col_conv_rows(timer: &mut Bench) -> (u128, u128) {
    let reg = Registry::new(mixed_precision_library());
    let prim = reg.by_name("qint8_im2col_chw").expect("int8 im2col is registered");
    let s = ConvScenario::new(16, 24, 24, 1, 3, 32);
    let f32_input = Tensor::random(s.c, s.h, s.w, prim.descriptor().input_layout, 0xA11CE);
    let mut input = Tensor::empty_dtype(DType::I8);
    quantize_dynamic_into(&f32_input, &mut input);
    let kernel = KernelTensor::random(s.m, s.c, s.k, s.k, 0xB0B);

    arch::set_override(Some(Isa::Scalar));
    let scalar_ns = timer
        .run("qint8_im2col_chw 16c 24x24 k3 m32 [scalar]", || {
            black_box(prim.execute(&input, &kernel, &s, 1).expect("runs"));
        })
        .as_nanos();
    arch::set_override(None);
    let auto_ns = timer
        .run("qint8_im2col_chw 16c 24x24 k3 m32 [dispatched]", || {
            black_box(prim.execute(&input, &kernel, &s, 1).expect("runs"));
        })
        .as_nanos();
    (scalar_ns, auto_ns)
}

/// micro_resnet end to end: the f32-only optimum vs the int8-island
/// plan, both served on this host through `run_into`.
fn end_to_end_rows(timer: &mut Bench) -> (u128, u128) {
    let net = micro_resnet();
    let cost = AnalyticCost::new(MachineModel::arm_a57_like(), 1);
    let f32_reg = Registry::new(full_library());
    let island_reg = Registry::new(mixed_precision_library());
    let f32_plan = Optimizer::new(&f32_reg, &cost).plan(&net, Strategy::Pbqp).expect("plans");
    let island_plan = Optimizer::new(&island_reg, &cost).plan(&net, Strategy::Pbqp).expect("plans");
    assert!(!island_plan.int8_layers().is_empty(), "island fixture must select int8");

    let weights = Weights::random(&net, 0x0DD5);
    let (c, h, w) = net.infer_shapes().expect("valid model")[0];
    let input = Tensor::random(c, h, w, Layout::Chw, 9);
    let mut out = Tensor::empty();

    let f32_exec = Executor::new(&net, &f32_plan, &f32_reg, &weights);
    let island_exec = Executor::new(&net, &island_plan, &island_reg, &weights);
    let f32_ns = timer
        .run("micro_resnet f32-only plan run_into", || {
            f32_exec.run_into(&input, &mut out, 1).expect("runs");
        })
        .as_nanos();
    let island_ns = timer
        .run("micro_resnet int8-island plan run_into", || {
            island_exec.run_into(&input, &mut out, 1).expect("runs");
        })
        .as_nanos();
    (f32_ns, island_ns)
}

fn main() {
    let mut timer = Bench::new("simd_kernels").samples(REPS);
    let gemm = gemm_rows(&mut timer);
    let (im2col_scalar_ns, im2col_auto_ns) = im2col_conv_rows(&mut timer);
    let (e2e_f32_ns, e2e_island_ns) = end_to_end_rows(&mut timer);
    let cal = host_calibration();
    print!("{}", timer.report());

    let active = arch::active_isa();
    println!(
        "  dispatch: active {active} (host best {}), calibrated int8_speedup {:.2} \
         (presets assume {:.1} intel / {:.1} arm)",
        arch::features().best(),
        cal.int8_speedup,
        MachineModel::intel_haswell_like().int8_speedup,
        MachineModel::arm_a57_like().int8_speedup,
    );
    println!(
        "  end to end: f32-only {} vs int8-island {}",
        fmt_duration(std::time::Duration::from_nanos(e2e_f32_ns as u64)),
        fmt_duration(std::time::Duration::from_nanos(e2e_island_ns as u64)),
    );

    let mut json = String::from("{\n  \"bench\": \"simd_kernels\",\n");
    json.push_str(&format!(
        "  \"reps\": {REPS},\n  \"active_isa\": \"{active}\",\n  \"gemm_shape\": \"{M}x{N}x{K}\",\n"
    ));
    json.push_str("  \"gemm\": [\n");
    for (i, r) in gemm.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"isa\": \"{}\", \"f32_ns_per_run\": {}, \"int8_ns_per_run\": {}}}{}\n",
            r.isa,
            r.f32_ns,
            r.int8_ns,
            if i + 1 == gemm.len() { "" } else { "," },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"qint8_im2col_chw\": {{\"scalar_ns_per_run\": {im2col_scalar_ns}, \"dispatched_ns_per_run\": {im2col_auto_ns}}},\n"
    ));
    json.push_str(&format!(
        "  \"micro_resnet\": {{\"f32_plan_ns_per_run\": {e2e_f32_ns}, \"int8_island_plan_ns_per_run\": {e2e_island_ns}}},\n"
    ));
    json.push_str(&format!(
        "  \"int8_speedup\": {{\"calibrated\": {:.4}, \"calibration_isa\": \"{}\", \"assumed_intel_haswell_like\": {:.1}, \"assumed_arm_a57_like\": {:.1}}}\n",
        cal.int8_speedup,
        cal.isa,
        MachineModel::intel_haswell_like().int8_speedup,
        MachineModel::arm_a57_like().int8_speedup,
    ));
    json.push_str("}\n");
    match write_repo_artifact("BENCH_PR6.json", &json) {
        Ok(path) => println!("  wrote {}", path.display()),
        Err(e) => println!("  could not write BENCH_PR6.json: {e}"),
    }

    // Wall-clock assertions only make sense with real SIMD dispatched;
    // CI smoke (forced scalar / shared runners) sets the no-assert gate.
    if std::env::var_os("SIMD_KERNELS_NO_ASSERT").is_none() && active == Isa::Avx2 {
        let auto = gemm.iter().find(|r| r.isa == "dispatched").expect("dispatched row");
        let scalar = gemm.iter().find(|r| r.isa == "scalar").expect("scalar row");
        assert!(
            auto.f32_ns < scalar.f32_ns,
            "dispatched f32 must beat scalar: {} vs {}",
            auto.f32_ns,
            scalar.f32_ns
        );
        assert!(
            auto.int8_ns < scalar.int8_ns,
            "dispatched int8 must beat scalar: {} vs {}",
            auto.int8_ns,
            scalar.int8_ns
        );
        assert!(
            auto.int8_ns < auto.f32_ns,
            "SIMD int8 must beat SIMD f32 on the conv-shaped product: {} vs {}",
            auto.int8_ns,
            auto.f32_ns
        );
        assert!(
            im2col_auto_ns < im2col_scalar_ns,
            "dispatched int8 conv must beat forced-scalar: {im2col_auto_ns} vs {im2col_scalar_ns}"
        );
        assert!(
            e2e_island_ns < e2e_f32_ns,
            "measured int8-island plan must beat the measured f32-only plan: \
             {e2e_island_ns} vs {e2e_f32_ns}"
        );
    }
}
