//! Microbenchmarks of the real primitive kernels (one representative per
//! family) and of the layout-transformation routines — the measured
//! counterparts of the analytic model's per-primitive costs.

use std::hint::black_box;

use pbqp_dnn_bench::harness::Bench;
use pbqp_dnn_bench::registry;
use pbqp_dnn_graph::ConvScenario;
use pbqp_dnn_tensor::transform::{apply_direct, DIRECT_TRANSFORMS};
use pbqp_dnn_tensor::{KernelTensor, Tensor};

fn family_kernels() {
    let reg = registry();
    // Small representative layer: 16 channels of 24x24, 3x3, 16 filters.
    let s = ConvScenario::new(16, 24, 24, 1, 3, 16);
    let kernel = KernelTensor::random(s.m, s.c, s.k, s.k, 1);
    let mut group = Bench::new("primitive_kernels").samples(15);
    for name in [
        "sum2d",
        "direct_mhwckk",
        "direct_tile16",
        "im2col_packed_nn",
        "im2row_packed_kt",
        "kn2row_packed",
        "wino2d_f43_vf8",
        "wino1d_f23_vf4",
        "fft_row_radix2",
        "pointwise_gemm_chw",
        "sparse_im2col_csr",
    ] {
        let Some(prim) = reg.by_name(name) else { continue };
        // pointwise supports only k=1: give it its own scenario.
        let s_eff = if !prim.supports(&s) {
            ConvScenario::new(16, 24, 24, 1, 1, 16).with_pad(0)
        } else {
            s
        };
        let k_eff = if s_eff == s { kernel.clone() } else { KernelTensor::random(16, 16, 1, 1, 2) };
        let input = Tensor::random(s_eff.c, s_eff.h, s_eff.w, prim.descriptor().input_layout, 3);
        group.run(name, || black_box(prim.execute(&input, &k_eff, &s_eff, 1).expect("runs")));
    }
    print!("{}", group.report());
}

fn layout_transforms() {
    let mut group = Bench::new("dt_transforms").samples(15);
    for t in DIRECT_TRANSFORMS
        .iter()
        .filter(|t| ["chw_to_hwc", "hwc_to_chw", "pack_c8"].contains(&t.name))
    {
        let input = Tensor::random(64, 56, 56, t.from, 9);
        group.run(t.name, || black_box(apply_direct(&input, t.to).expect("registered pair")));
    }
    print!("{}", group.report());
}

fn main() {
    family_kernels();
    layout_transforms();
}
