//! The batched execution engine benchmark: serving N requests for the
//! same model, the scenario the plan cache and `Executor::run_batch`
//! exist for.
//!
//! Three tiers, all computing identical outputs (bit-for-bit — see
//! `tests/parallel_equivalence.rs`):
//!
//! 1. **naive serving** — every request re-profiles the cost table,
//!    re-solves the PBQP instance, rebinds an executor and runs serially
//!    (the seed's only mode of operation);
//! 2. **serial runs** — one plan, one executor, N independent
//!    `Executor::run` calls;
//! 3. **batched engine** — one `PlanCache` hit plus one
//!    `Executor::run_batch` call: the schedule is compiled once and the
//!    batch fans out over `Parallelism::available()` workers.
//!
//! Run with `cargo bench -p pbqp-dnn-bench --bench batch_engine`.
//! Set `BATCH_ENGINE_NO_ASSERT=1` to skip the speedup assertions (CI
//! smoke runs on noisy shared runners print the numbers only).

use std::time::Instant;

use pbqp_dnn_bench::harness::fmt_duration;
use pbqp_dnn_bench::registry;
use pbqp_dnn_cost::{AnalyticCost, MachineModel};
use pbqp_dnn_graph::models::micro_alexnet;
use pbqp_dnn_runtime::{Executor, Parallelism, Weights};
use pbqp_dnn_select::{Optimizer, PlanCache, Strategy};
use pbqp_dnn_tensor::{Layout, Tensor};

const BATCH: usize = 16;
const REPS: usize = 5;

fn main() {
    let net = micro_alexnet();
    let reg = registry();
    let cost = AnalyticCost::new(MachineModel::intel_haswell_like(), 1);
    let opt = Optimizer::new(&reg, &cost);
    let weights = Weights::random(&net, 0xBA7C);
    let (c, h, w) = net.infer_shapes().expect("valid model")[0];
    let inputs: Vec<Tensor> =
        (0..BATCH).map(|i| Tensor::random(c, h, w, Layout::Chw, 7 + i as u64)).collect();
    let par = Parallelism::available();

    // Tier 1: naive serving — plan from scratch for every request.
    let naive = best_of(REPS, || {
        for input in &inputs {
            let plan = opt.plan(&net, Strategy::Pbqp).expect("plans");
            let exec = Executor::new(&net, &plan, &reg, &weights);
            std::hint::black_box(exec.run(input, 1).expect("runs"));
        }
    });

    // Tier 2: one plan, N serial runs.
    let plan = opt.plan(&net, Strategy::Pbqp).expect("plans");
    let exec = Executor::new(&net, &plan, &reg, &weights);
    let serial = best_of(REPS, || {
        for input in &inputs {
            std::hint::black_box(exec.run(input, 1).expect("runs"));
        }
    });

    // Tier 3: plan cache + run_batch.
    let cache = PlanCache::new();
    cache.plan(&opt, &net, Strategy::Pbqp).expect("warm the cache");
    let batched = best_of(REPS, || {
        let plan = cache.plan(&opt, &net, Strategy::Pbqp).expect("cache hit");
        let exec = Executor::new(&net, &plan, &reg, &weights);
        std::hint::black_box(exec.run_batch(&inputs, par).expect("runs"));
    });

    println!("batch_engine: micro-AlexNet × {BATCH} requests ({par})");
    println!("  naive serving (plan per request)   {:>12}", fmt_duration(naive));
    println!("  serial runs (one plan, N × run)    {:>12}", fmt_duration(serial));
    println!("  batched engine (cache + run_batch) {:>12}", fmt_duration(batched));
    let vs_naive = naive.as_secs_f64() / batched.as_secs_f64();
    let vs_serial = serial.as_secs_f64() / batched.as_secs_f64();
    println!("  speedup vs naive serving: {vs_naive:.2}x");
    println!("  speedup vs serial runs:   {vs_serial:.2}x");

    // The engine must measurably beat per-request planning (the margin
    // grows with solver cost — micro-AlexNet has only three convs — and
    // with cores: this assertion holds even on a single-core host, where
    // inter-op fan-out cannot help and the win is pure amortization).
    // Wall-clock assertions are skippable for noisy shared CI runners.
    if std::env::var_os("BATCH_ENGINE_NO_ASSERT").is_none() {
        assert!(vs_naive > 1.15, "batched engine should measurably beat per-request planning");
        assert!(vs_serial > 0.9, "batched engine must not regress plain serial execution");
    }
}

/// Minimum wall-clock time over `reps` runs of `f` (after one warm-up).
fn best_of(reps: usize, mut f: impl FnMut()) -> std::time::Duration {
    f();
    (0..reps)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .min()
        .expect("reps >= 1")
}
