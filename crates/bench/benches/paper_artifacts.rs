//! Benches regenerating every table and figure of the paper: one
//! benchmark group per artifact. Each iteration recomputes the artifact's
//! underlying data (cost tables, PBQP solutions, strategy evaluations) on
//! the analytic machine models.

use std::hint::black_box;

use pbqp_dnn_bench::harness::Bench;
use pbqp_dnn_bench::{arm_models, evaluate_network, figure_strategies, intel_models, registry};
use pbqp_dnn_cost::{AnalyticCost, CostSource, MachineModel};
use pbqp_dnn_graph::{models, ConvScenario};
use pbqp_dnn_select::{Optimizer, Strategy};

/// Figure 4: PBQP selection for AlexNet on both machine models.
fn fig4_selection(bench: &mut Bench) {
    let reg = registry();
    let net = models::alexnet();
    bench.run("fig4_alexnet_selection_both_machines", || {
        for machine in [MachineModel::intel_haswell_like(), MachineModel::arm_a57_like()] {
            let cost = AnalyticCost::new(machine, 4);
            let plan = Optimizer::new(&reg, &cost).plan(&net, Strategy::Pbqp).expect("plans");
            black_box(plan.predicted_us);
        }
    });
}

/// Figures 5 and 6: the full Intel strategy sweep, single- and
/// multi-threaded (AlexNet cell; the binaries sweep all five networks).
fn fig5_fig6_intel(bench: &mut Bench) {
    let reg = registry();
    let machine = MachineModel::intel_haswell_like();
    let strategies = figure_strategies(8);
    let net = models::alexnet();
    bench.run("fig5_intel_st_alexnet_all_strategies", || {
        black_box(evaluate_network(&net, &reg, &machine, 1, &strategies))
    });
    bench.run("fig6_intel_mt_alexnet_all_strategies", || {
        black_box(evaluate_network(&net, &reg, &machine, 4, &strategies))
    });
}

/// Figure 7: the ARM sweep on both thread counts (GoogleNet cell — the
/// largest instance, exercising the DAG-shaped PBQP problem).
fn fig7_arm(bench: &mut Bench) {
    let reg = registry();
    let machine = MachineModel::arm_a57_like();
    let strategies = figure_strategies(4);
    let (_, net) = arm_models().pop().expect("GoogleNet");
    bench.run("fig7_arm_googlenet_st_and_mt", || {
        black_box(evaluate_network(&net, &reg, &machine, 1, &strategies));
        black_box(evaluate_network(&net, &reg, &machine, 4, &strategies));
    });
}

/// Table 1: the family strengths sweep (best time/workspace per family
/// over the scenario grid).
fn table1_families(bench: &mut Bench) {
    let reg = registry();
    let cost = AnalyticCost::new(MachineModel::intel_haswell_like(), 1);
    let sweeps = [
        ConvScenario::new(3, 227, 227, 1, 3, 32),
        ConvScenario::new(128, 28, 28, 1, 3, 128),
        ConvScenario::new(96, 27, 27, 1, 5, 256),
        ConvScenario::new(192, 28, 28, 1, 1, 64).with_pad(0),
    ];
    bench.run("table1_family_grades", || {
        let mut acc = 0.0;
        for s in &sweeps {
            for p in reg.candidates(s) {
                acc += cost.layer_cost(p.as_ref(), s);
            }
        }
        black_box(acc)
    });
}

/// Tables 2 and 3: the four tabulated strategies on both machines.
fn table2_table3_absolute(bench: &mut Bench) {
    let reg = registry();
    let strategies =
        [Strategy::Sum2d, Strategy::LocalOptimalChw, Strategy::Pbqp, Strategy::CaffeLike];
    for (machine, tag) in [
        (MachineModel::intel_haswell_like(), "table2_intel_absolute_times"),
        (MachineModel::arm_a57_like(), "table3_arm_absolute_times"),
    ] {
        bench.run(tag, || {
            for (_, net) in intel_models().iter().take(1).chain(arm_models().iter().skip(1)) {
                let cost = AnalyticCost::new(machine.clone(), 1);
                let opt = Optimizer::new(&reg, &cost);
                for s in strategies {
                    black_box(opt.plan(net, s).expect("plans").predicted_us);
                }
            }
        });
    }
}

/// §5.4: raw PBQP solve time per network (construction + solve), the
/// paper's sub-second claim.
fn overhead_solver(bench: &mut Bench) {
    let reg = registry();
    let cost = AnalyticCost::new(MachineModel::intel_haswell_like(), 4);
    let opt = Optimizer::new(&reg, &cost);
    for (name, net) in [("alexnet", models::alexnet()), ("googlenet", models::googlenet())] {
        let shapes = net.infer_shapes().expect("valid");
        let table = opt.cost_table(&net);
        bench.run(&format!("overhead_pbqp_solve_{name}"), || {
            black_box(
                opt.plan_with_table(&net, &shapes, &table, Strategy::Pbqp)
                    .expect("plans")
                    .predicted_us,
            )
        });
    }
}

fn main() {
    let mut bench = Bench::new("paper_artifacts").samples(20);
    fig4_selection(&mut bench);
    fig5_fig6_intel(&mut bench);
    fig7_arm(&mut bench);
    table1_families(&mut bench);
    table2_table3_absolute(&mut bench);
    overhead_solver(&mut bench);
    print!("{}", bench.report());
}
