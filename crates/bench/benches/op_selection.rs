//! The operator-selection benchmark: PR 3-style plans (conv-only
//! decisions — non-conv candidates restricted to f32, the retired
//! "dummy nodes force f32" behavior) vs full operator-selection plans
//! where ReLU/pool/concat/add carry int8 kernel candidates of their own —
//! the per-PR perf artifact for retiring the dummy-node API.
//!
//! Reports, per micro-zoo model on the ARM machine model (the platform
//! whose int8 advantage forms the islands):
//!
//! * **quant edges** — quantize/dequantize hops legalization inserted:
//!   with int8 op kernels an island spans conv → relu → pool → conv and
//!   interior round trips disappear;
//! * **predicted µs** — the solver's objective (asserted: the superset
//!   space can never be predicted slower);
//! * **measured ns/run** — warmed `run_into` serving on this host,
//!   reported honestly (scalar int8 kernels; see ROADMAP's SIMD item).
//!
//! Emits machine-readable `BENCH_PR5.json` at the repo root. Run with
//! `cargo bench -p pbqp-dnn-bench --bench op_selection`; set
//! `OP_SELECTION_NO_ASSERT=1` (as the CI smoke step does) to print
//! without asserting.

use pbqp_dnn_bench::harness::{fmt_duration, write_repo_artifact, Bench};
use pbqp_dnn_cost::{AnalyticCost, MachineModel};
use pbqp_dnn_graph::models::{micro_mixed, micro_resnet};
use pbqp_dnn_graph::DnnGraph;
use pbqp_dnn_primitives::registry::{mixed_precision_library, op_library, Registry};
use pbqp_dnn_runtime::{Executor, Weights};
use pbqp_dnn_select::Strategy;
use pbqp_dnn_tensor::{Layout, Tensor};

const REPS: usize = 30;

struct Row {
    model: &'static str,
    pr3_quant_edges: usize,
    island_quant_edges: usize,
    pr3_predicted_us: f64,
    island_predicted_us: f64,
    pr3_ns: u128,
    island_ns: u128,
    int8_op_nodes: usize,
}

fn evaluate(name: &'static str, net: &DnnGraph, timer: &mut Bench) -> Row {
    let cost = AnalyticCost::new(MachineModel::arm_a57_like(), 1);
    // PR 3-style registry: the full mixed conv library, but non-conv
    // candidates restricted to the f32 op kernels — every island boundary
    // pays a dequant/requant round trip through activations.
    let pr3_reg = Registry::with_op_kernels(mixed_precision_library(), op_library());
    // The operator-selection registry: the same convs plus int8 op
    // kernels, so whole subgraphs stay quantized.
    let island_reg = Registry::new(mixed_precision_library());

    let pr3_plan =
        pbqp_dnn_select::Optimizer::new(&pr3_reg, &cost).plan(net, Strategy::Pbqp).expect("plans");
    let island_plan = pbqp_dnn_select::Optimizer::new(&island_reg, &cost)
        .plan(net, Strategy::Pbqp)
        .expect("plans");

    let weights = Weights::random(net, 0x0DD5);
    let (c, h, w) = net.infer_shapes().expect("valid model")[0];
    let input = Tensor::random(c, h, w, Layout::Chw, 9);
    let mut out = Tensor::empty();

    let pr3_exec = Executor::new(net, &pr3_plan, &pr3_reg, &weights);
    let island_exec = Executor::new(net, &island_plan, &island_reg, &weights);
    let pr3_ns = timer
        .run(&format!("{name} PR3-style run_into"), || {
            pr3_exec.run_into(&input, &mut out, 1).expect("runs");
        })
        .as_nanos();
    let island_ns = timer
        .run(&format!("{name} int8-island run_into"), || {
            island_exec.run_into(&input, &mut out, 1).expect("runs");
        })
        .as_nanos();

    Row {
        model: name,
        pr3_quant_edges: pr3_plan.quant_edge_count(),
        island_quant_edges: island_plan.quant_edge_count(),
        pr3_predicted_us: pr3_plan.predicted_us,
        island_predicted_us: island_plan.predicted_us,
        pr3_ns,
        island_ns,
        int8_op_nodes: island_plan.int8_op_nodes().len(),
    }
}

fn main() {
    let mut timer = Bench::new("op_selection").samples(REPS);
    let models: [(&'static str, DnnGraph); 2] =
        [("micro_mixed", micro_mixed()), ("micro_resnet", micro_resnet())];
    let rows: Vec<Row> = models.iter().map(|(name, net)| evaluate(name, net, &mut timer)).collect();

    println!("op_selection: PR 3-style (f32 dummies) vs int8-island plans (arm-a57-like model)");
    for r in &rows {
        println!(
            "  {:12} quant edges {:2} -> {:2}   predicted {:9.1} -> {:9.1} µs   measured {:>10} -> {:>10}   ({} int8 op nodes)",
            r.model,
            r.pr3_quant_edges,
            r.island_quant_edges,
            r.pr3_predicted_us,
            r.island_predicted_us,
            fmt_duration(std::time::Duration::from_nanos(r.pr3_ns as u64)),
            fmt_duration(std::time::Duration::from_nanos(r.island_ns as u64)),
            r.int8_op_nodes,
        );
    }

    let mut json =
        String::from("{\n  \"bench\": \"op_selection\",\n  \"machine\": \"arm-a57-like\",\n");
    json.push_str(&format!("  \"reps\": {REPS},\n  \"models\": [\n"));
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"model\": \"{}\", \"pr3_quant_edges\": {}, \"island_quant_edges\": {}, \"pr3_predicted_us\": {:.1}, \"island_predicted_us\": {:.1}, \"pr3_ns_per_run\": {}, \"island_ns_per_run\": {}, \"int8_op_nodes\": {}}}{}\n",
            r.model,
            r.pr3_quant_edges,
            r.island_quant_edges,
            r.pr3_predicted_us,
            r.island_predicted_us,
            r.pr3_ns,
            r.island_ns,
            r.int8_op_nodes,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    json.push_str("  ]\n}\n");
    match write_repo_artifact("BENCH_PR5.json", &json) {
        Ok(path) => println!("  wrote {}", path.display()),
        Err(e) => println!("  could not write BENCH_PR5.json: {e}"),
    }

    // The predicted comparison and the quant-edge drop are deterministic
    // properties of the solve; measured wall-clock is reported, not
    // asserted.
    if std::env::var_os("OP_SELECTION_NO_ASSERT").is_none() {
        for r in &rows {
            assert!(
                r.island_predicted_us <= r.pr3_predicted_us + 1e-6,
                "{}: the op-selecting superset must never be predicted slower",
                r.model
            );
        }
        let resnet = rows.iter().find(|r| r.model == "micro_resnet").expect("evaluated");
        assert!(
            resnet.island_quant_edges < resnet.pr3_quant_edges,
            "micro_resnet: int8 op kernels must shed quantize/dequantize edges ({} vs {})",
            resnet.island_quant_edges,
            resnet.pr3_quant_edges
        );
        assert!(resnet.int8_op_nodes > 0, "micro_resnet: relu/pool should join the island");
    }
}
