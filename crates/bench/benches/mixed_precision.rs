//! The mixed-precision benchmark: f32-only vs mixed (f32 + int8) PBQP
//! plans on the same model and machine model — the per-PR perf artifact
//! for the precision axis of the selection space.
//!
//! Reports, for both plans:
//!
//! * **predicted µs** — the cost model's whole-network latency (this is
//!   what the solver optimizes, and what the assertion compares: the
//!   superset search can never be predicted slower);
//! * **measured ns/run** — warmed `run_into` serving on this host;
//! * **activation bytes moved** — bytes crossing layer boundaries, where
//!   int8 edges move a quarter of the f32 bytes.
//!
//! Emits machine-readable `BENCH_PR3.json` at the repo root. Run with
//! `cargo bench -p pbqp-dnn-bench --bench mixed_precision`; set
//! `MIXED_PRECISION_NO_ASSERT=1` (as the CI smoke step does) to print
//! without asserting.

use pbqp_dnn_bench::harness::{fmt_duration, write_repo_artifact, Bench};
use pbqp_dnn_cost::{AnalyticCost, MachineModel};
use pbqp_dnn_graph::models::micro_mixed;
use pbqp_dnn_graph::DnnGraph;
use pbqp_dnn_primitives::registry::{full_library, mixed_precision_library, Registry};
use pbqp_dnn_runtime::{Executor, Weights};
use pbqp_dnn_select::{ExecutionPlan, Optimizer, Strategy};
use pbqp_dnn_tensor::{Layout, Tensor};

const REPS: usize = 30;

/// Activation bytes crossing layer boundaries under a plan: every graph
/// edge moves the producer's output tensor once, in the producer's
/// output representation (int8 = 1 byte/elem, f32 = 4).
fn activation_bytes(net: &DnnGraph, plan: &ExecutionPlan) -> usize {
    let shapes = net.infer_shapes().expect("valid model");
    plan.edges
        .iter()
        .map(|e| {
            let (c, h, w) = shapes[e.from.index()];
            let repr = plan.assignment(e.from).output_repr();
            repr.layout.storage_len(c, h, w) * repr.dtype.bytes()
        })
        .sum()
}

fn main() {
    // The shared mixed-precision fixture: a big strided conv
    // (int8-friendly) feeding a pointwise tail (stays f32).
    let net = micro_mixed();
    let cost = AnalyticCost::new(MachineModel::intel_haswell_like(), 1);
    let weights = Weights::random(&net, 0xBEEF);
    let input = Tensor::random(16, 20, 20, Layout::Chw, 5);

    let f32_reg = Registry::new(full_library());
    let mixed_reg = Registry::new(mixed_precision_library());
    let f32_plan = Optimizer::new(&f32_reg, &cost).plan(&net, Strategy::Pbqp).expect("plans");
    let mixed_plan = Optimizer::new(&mixed_reg, &cost).plan(&net, Strategy::Pbqp).expect("plans");

    let f32_exec = Executor::new(&net, &f32_plan, &f32_reg, &weights);
    let mixed_exec = Executor::new(&net, &mixed_plan, &mixed_reg, &weights);
    let mut out = Tensor::empty();
    let mut timer = Bench::new("mixed_precision").samples(REPS);
    let f32_ns = timer
        .run("f32-only run_into", || {
            f32_exec.run_into(&input, &mut out, 1).expect("runs");
        })
        .as_nanos();
    let mixed_ns = timer
        .run("mixed run_into", || {
            mixed_exec.run_into(&input, &mut out, 1).expect("runs");
        })
        .as_nanos();

    let f32_bytes = activation_bytes(&net, &f32_plan);
    let mixed_bytes = activation_bytes(&net, &mixed_plan);
    let int8_layers = mixed_plan.int8_layers().len();

    println!("mixed_precision: f32-only vs mixed PBQP plan ({})", cost.machine());
    println!(
        "  f32-only : {:9.1} µs predicted  {:>12} measured  {:>8} activation bytes",
        f32_plan.predicted_us,
        fmt_duration(std::time::Duration::from_nanos(f32_ns as u64)),
        f32_bytes,
    );
    println!(
        "  mixed    : {:9.1} µs predicted  {:>12} measured  {:>8} activation bytes  ({} int8 layers, {} quant edges)",
        mixed_plan.predicted_us,
        fmt_duration(std::time::Duration::from_nanos(mixed_ns as u64)),
        mixed_bytes,
        int8_layers,
        mixed_plan.quant_edge_count(),
    );
    println!(
        "  predicted speedup {:.2}x, activation bytes {:.2}x",
        f32_plan.predicted_us / mixed_plan.predicted_us,
        f32_bytes as f64 / mixed_bytes as f64,
    );

    let json = format!(
        "{{\n  \"bench\": \"mixed_precision\",\n  \"machine\": \"{}\",\n  \"reps\": {REPS},\n  \"f32_predicted_us\": {:.1},\n  \"mixed_predicted_us\": {:.1},\n  \"f32_ns_per_run\": {f32_ns},\n  \"mixed_ns_per_run\": {mixed_ns},\n  \"f32_activation_bytes\": {f32_bytes},\n  \"mixed_activation_bytes\": {mixed_bytes},\n  \"int8_layers\": {int8_layers},\n  \"quant_edges\": {},\n  \"mixed_plan_is_mixed\": {}\n}}\n",
        cost.machine().name,
        f32_plan.predicted_us,
        mixed_plan.predicted_us,
        mixed_plan.quant_edge_count(),
        mixed_plan.is_mixed_precision(),
    );
    match write_repo_artifact("BENCH_PR3.json", &json) {
        Ok(path) => println!("  wrote {}", path.display()),
        Err(e) => println!("  could not write BENCH_PR3.json: {e}"),
    }

    // The predicted comparison is deterministic (the solver optimizes
    // exactly this quantity over a superset space), so assert it even in
    // benchmark context; measured wall-clock is reported, not asserted.
    if std::env::var_os("MIXED_PRECISION_NO_ASSERT").is_none() {
        assert!(
            mixed_plan.predicted_us <= f32_plan.predicted_us + 1e-6,
            "mixed plan must never be predicted slower than f32-only"
        );
        assert!(mixed_plan.is_mixed_precision(), "plan should mix precisions on this network");
        assert!(mixed_bytes < f32_bytes, "int8 edges should cut activation bytes moved");
    }
}
