//! Online re-optimization benchmark: a deliberately mis-modeled engine
//! converges under live traffic, and serving latency is tracked through
//! every background re-solve and hot-swap along the way. Emits
//! `BENCH_PR9.json` at the repo root.
//!
//! ```sh
//! cargo bench -p pbqp-dnn-bench --bench autotune
//! ```
//!
//! Three questions, one run:
//!
//! * **Convergence trajectory** — the engine compiles against a machine
//!   model that overstates the int8 speedup 30x, then serves traffic
//!   with the sampler armed. Every plan generation along the way is
//!   priced under the *offline* measured-cost table (the paper's
//!   methodology run on this host — the ground truth the online loop
//!   should rediscover), so the trajectory reads as "how far from the
//!   offline optimum was each generation". Time-to-converged is the
//!   wall clock from `enable_autotune` to the last hot-swap.
//! * **Latency under re-solve** — request latencies are split into the
//!   converging phase (background probes + PBQP re-solves in flight)
//!   and the steady phase (plan settled, sampler still armed). The
//!   converging-phase p99 bounds what a hot-swap costs in-flight
//!   traffic: the swap is an `RwLock` write of two `Arc`s, never a
//!   blocked request.
//! * **Sampling overhead** — two fresh engines on the same plan, one
//!   with the sampler armed (divergence threshold ∞ so it never swaps)
//!   and one without, give the per-request cost of the always-on gate:
//!   one relaxed atomic load when disabled, one timestamp pair per
//!   sampled step when armed.
//!
//! Asserted (skip with `AUTOTUNE_NO_ASSERT=1`): the loop actually
//! re-optimizes (unless the mis-modeled plan was already near-optimal
//! on this host), the settled plan prices within 1.5x of the offline
//! optimum, and the converging-phase p99 stays within a generous
//! multiple of steady — re-solves share cores with serving but must
//! never block it.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use pbqp_dnn::cost::CostTable;
use pbqp_dnn::prelude::*;
use pbqp_dnn::select::Optimizer;
use pbqp_dnn_bench::harness::{fmt_duration, write_repo_artifact};

/// Settle when the plan generation has been stable this long.
const STABLE_FOR: Duration = Duration::from_millis(800);
/// Give up on convergence after this long (asserted unless opted out).
const CONVERGE_DEADLINE: Duration = Duration::from_secs(180);
/// Requests timed in the steady phase and in each overhead engine.
const STEADY_REQUESTS: usize = 300;
/// The settled plan must price within this factor of the offline
/// optimum under the offline measured table (near-ties between two
/// independent wall-clock profiles are legitimate).
const PRICE_TOLERANCE: f64 = 1.5;
/// Converging-phase p99 may exceed steady p99 by at most this factor:
/// background probes steal cycles, but a request must never block on a
/// re-solve or a swap.
const RESOLVE_P99_FACTOR: f64 = 50.0;

fn main() {
    let no_assert = std::env::var("AUTOTUNE_NO_ASSERT").is_ok();

    let net = models::micro_resnet();
    let weights = Weights::random(&net, 0x77);
    let mut wrong = MachineModel::intel_haswell_like();
    wrong.int8_speedup = 30.0;
    wrong.int8_pointwise_speedup = 30.0;
    let model = Compiler::new(CompileOptions::new().machine(wrong).mixed_precision(true))
        .compile(&net, &weights)
        .expect("compiles");

    // Offline ground truth: measured costs, PBQP, priced once.
    let probe = MeasuredCost::new(1, 3).with_scale(4);
    let offline_table = CostTable::profile(&net, model.registry(), &probe);
    let shapes = net.infer_shapes().expect("shapes");
    let optimizer = Optimizer::new(model.registry(), &probe);
    let offline_plan =
        optimizer.plan_with_table(&net, &shapes, &offline_table, Strategy::Pbqp).expect("plans");
    let offline_us = optimizer.price_plan(&net, &shapes, &offline_table, &offline_plan);
    let price = |plan: &pbqp_dnn::select::ExecutionPlan| {
        optimizer.price_plan(&net, &shapes, &offline_table, plan)
    };

    let engine = model.engine();
    let initial_us = price(&engine.active_plan());
    let initially_close = initial_us <= offline_us * 1.30;

    let enabled_at = Instant::now();
    assert!(engine.enable_autotune(
        AutotuneConfig::new()
            .with_sample_rate(1)
            .with_min_samples(40)
            .with_min_node_samples(3)
            .with_divergence_threshold(0.25)
            .with_cooldown(Duration::from_millis(100))
            .with_poll_interval(Duration::from_millis(10))
            .with_fill(CandidateFill::Probe { reps: 3, scale: 4 }),
    ));

    let (c, h, w) = shapes[0];
    let input = Tensor::random(c, h, w, Layout::Chw, 0xC0);

    // Converging phase: serve until the plan generation goes quiet.
    // Each request records its latency keyed by the generation it was
    // unambiguously served under; each new stable generation's plan is
    // priced under the offline table as it appears.
    let mut session = engine.session();
    let mut by_generation: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    let mut price_of: BTreeMap<u64, f64> = BTreeMap::new();
    let mut converging_ns: Vec<u64> = Vec::new();
    let mut last_swap: Option<Instant> = None;
    let mut stable_since = Instant::now();
    let mut last_gen = engine.health().plan_generation;
    loop {
        let before = engine.health().plan_generation;
        let t0 = Instant::now();
        session.infer_new(&input).expect("no request is ever dropped across swaps");
        let ns = t0.elapsed().as_nanos() as u64;
        converging_ns.push(ns);
        let after = engine.health().plan_generation;
        if before == after {
            by_generation.entry(before).or_default().push(ns);
            if let std::collections::btree_map::Entry::Vacant(e) = price_of.entry(before) {
                let plan = engine.active_plan();
                if engine.health().plan_generation == before {
                    e.insert(price(&plan));
                }
            }
        }

        let health = engine.health();
        if health.plan_generation != last_gen {
            last_gen = health.plan_generation;
            last_swap = Some(Instant::now());
            stable_since = Instant::now();
        }
        let settled = health.samples >= 40
            && stable_since.elapsed() > STABLE_FOR
            && (initially_close || health.reoptimizations >= 1);
        if settled {
            break;
        }
        if enabled_at.elapsed() > CONVERGE_DEADLINE {
            assert!(no_assert, "autotune did not settle within the deadline: {health:?}");
            break;
        }
    }
    let time_to_converged = last_swap.map(|at| at - enabled_at).unwrap_or_default();

    // Steady phase: same session, settled plan, sampler still armed.
    let mut steady_ns: Vec<u64> = Vec::with_capacity(STEADY_REQUESTS);
    for _ in 0..STEADY_REQUESTS {
        let t0 = Instant::now();
        session.infer_new(&input).expect("steady serve");
        steady_ns.push(t0.elapsed().as_nanos() as u64);
    }
    drop(session);

    let health = engine.health();
    let final_us = price(&engine.active_plan());
    converging_ns.sort_unstable();
    steady_ns.sort_unstable();
    let converging_p99 = percentile(&converging_ns, 0.99);
    let steady_p50 = percentile(&steady_ns, 0.50);
    let steady_p99 = percentile(&steady_ns, 0.99);

    // Sampling overhead: fresh engines on the identical generation-1
    // plan — armed-but-never-swapping vs no autotune at all.
    let sampled_p50 = {
        let armed = model.engine();
        assert!(armed.enable_autotune(
            AutotuneConfig::new()
                .with_sample_rate(1)
                .with_divergence_threshold(f64::INFINITY)
                .with_poll_interval(Duration::from_millis(50)),
        ));
        steady_p50_of(&armed, &input)
    };
    let plain_p50 = steady_p50_of(&model.engine(), &input);

    println!(
        "autotune: offline optimum {:.1} µs; plan priced {:.1} µs at generation 1, {:.1} µs \
         settled ({} re-optimizations, generation {}, {} samples, converged in {})",
        offline_us,
        initial_us,
        final_us,
        health.reoptimizations,
        health.plan_generation,
        health.samples,
        fmt_duration(time_to_converged),
    );
    println!(
        "latency: p99 {} during re-solves vs {} steady (p50 {}); sampler armed p50 {} vs \
         unsampled {}",
        fmt_duration(Duration::from_nanos(converging_p99)),
        fmt_duration(Duration::from_nanos(steady_p99)),
        fmt_duration(Duration::from_nanos(steady_p50)),
        fmt_duration(Duration::from_nanos(sampled_p50)),
        fmt_duration(Duration::from_nanos(plain_p50)),
    );
    for (generation, ns) in &by_generation {
        let mut sorted = ns.clone();
        sorted.sort_unstable();
        println!(
            "  generation {generation}: {} requests, p50 {}, priced {} µs offline",
            ns.len(),
            fmt_duration(Duration::from_nanos(percentile(&sorted, 0.50))),
            price_of.get(generation).map(|p| format!("{p:.1}")).unwrap_or_else(|| "?".into()),
        );
    }

    if !no_assert {
        if !initially_close {
            assert!(
                health.reoptimizations >= 1,
                "the mis-modeled plan was never corrected: {health:?}"
            );
        }
        assert!(
            final_us <= offline_us * PRICE_TOLERANCE,
            "settled plan prices at {final_us:.1} µs vs offline optimum {offline_us:.1} µs"
        );
        assert!(
            (converging_p99 as f64) <= steady_p99 as f64 * RESOLVE_P99_FACTOR,
            "p99 during in-flight re-solves ({converging_p99} ns) blows the never-blocks bound \
             ({RESOLVE_P99_FACTOR}x steady p99 {steady_p99} ns)"
        );
    }

    let trajectory: Vec<String> = by_generation
        .iter()
        .map(|(generation, ns)| {
            let mut sorted = ns.clone();
            sorted.sort_unstable();
            format!(
                concat!(
                    "    {{\"generation\": {}, \"requests\": {}, \"p50_ns\": {}, ",
                    "\"offline_price_us\": {}}}"
                ),
                generation,
                ns.len(),
                percentile(&sorted, 0.50),
                price_of
                    .get(generation)
                    .map(|p| format!("{p:.3}"))
                    .unwrap_or_else(|| "null".into()),
            )
        })
        .collect();
    let json = format!(
        concat!(
            "{{\n  \"bench\": \"autotune\",\n  \"model\": \"micro_resnet\",\n",
            "  \"offline_price_us\": {:.3}, \"initial_price_us\": {:.3}, ",
            "\"final_price_us\": {:.3},\n",
            "  \"final_vs_offline\": {:.3}, \"price_tolerance\": {}, \"within_tolerance\": {},\n",
            "  \"reoptimizations\": {}, \"plan_generation\": {}, \"samples\": {}, ",
            "\"divergence\": {},\n",
            "  \"time_to_converged_ms\": {},\n",
            "  \"p99_during_resolve_ns\": {}, \"p99_steady_ns\": {}, \"p50_steady_ns\": {},\n",
            "  \"sampler_overhead\": {{\"armed_p50_ns\": {}, \"unsampled_p50_ns\": {}}},\n",
            "  \"trajectory\": [\n{}\n  ]\n}}\n"
        ),
        offline_us,
        initial_us,
        final_us,
        final_us / offline_us.max(1e-9),
        PRICE_TOLERANCE,
        final_us <= offline_us * PRICE_TOLERANCE,
        health.reoptimizations,
        health.plan_generation,
        health.samples,
        health.divergence.map(|d| format!("{d:.4}")).unwrap_or_else(|| "null".into()),
        time_to_converged.as_millis(),
        converging_p99,
        steady_p99,
        steady_p50,
        sampled_p50,
        plain_p50,
        trajectory.join(",\n"),
    );
    match write_repo_artifact("BENCH_PR9.json", &json) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_PR9.json: {e}"),
    }
}

/// Warmed steady-state p50 of one engine on one input.
fn steady_p50_of(engine: &Engine, input: &Tensor) -> u64 {
    let mut session = engine.session();
    let mut out = Tensor::empty();
    for _ in 0..8 {
        session.infer(input, &mut out).expect("warmup");
    }
    let mut ns: Vec<u64> = (0..STEADY_REQUESTS)
        .map(|_| {
            let t0 = Instant::now();
            session.infer(input, &mut out).expect("serves");
            t0.elapsed().as_nanos() as u64
        })
        .collect();
    ns.sort_unstable();
    percentile(&ns, 0.50)
}

/// Exact percentile over an ascending-sorted sample (0 when empty).
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}
