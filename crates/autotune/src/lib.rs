//! Online re-optimization: re-solve PBQP primitive selection against
//! costs observed from live traffic.
//!
//! The paper selects primitives from *measured* per-node costs, profiled
//! offline on the build host (§3.1). But a measured-cost compile is
//! orders of magnitude slower than loading a shipped artifact, and a
//! profile taken on one host goes stale on another — so a serving host
//! starts from the shipped (possibly analytic, possibly mis-modeled)
//! plan and corrects it online:
//!
//! 1. the executor's live profiler (`pbqp_dnn_runtime::sampler`) samples
//!    per-step kernel latencies from production requests;
//! 2. the summaries are folded into an
//!    [`ObservedTable`] (engine-lifetime,
//!    keyed by `(node, kernel)`);
//! 3. when the [trigger policy](AutotuneConfig::should_trigger) fires —
//!    observed costs diverge from the plan's predictions, enough samples
//!    exist, the cooldown elapsed — [`resolve`] re-runs the PBQP solve
//!    on a background thread against a fill table (probed or analytic)
//!    overridden by the observed costs;
//! 4. the candidate is validated (legalized by construction, quarantined
//!    kernels excluded, predicted win over the re-priced serving plan)
//!    and the engine hot-swaps it through the same generation-counted
//!    serving state fault quarantine uses.
//!
//! The loop is a *damped* fixed-point iteration on the cost table: EMA
//! smoothing, per-pair minimum-sample gates, the cooldown, and the
//! win margin are the guards that make it settle on a plan instead of
//! oscillating between near-ties.
//!
//! This crate is the policy/solve layer; the thread, the sampler wiring
//! and the swap itself live in the `pbqp-dnn` facade
//! (`Engine::enable_autotune`).
//!
//! # Example
//!
//! A host whose machine model wildly overstates the int8 speedup serves
//! a mis-modeled plan; one background resolve against an honest fill
//! table produces a validated replacement:
//!
//! ```
//! use pbqp_dnn_autotune::{resolve, AutotuneConfig, CandidateFill};
//! use pbqp_dnn_cost::{AnalyticCost, CostTable, MachineModel, ObservedTable};
//! use pbqp_dnn_graph::models;
//! use pbqp_dnn_primitives::registry::{mixed_precision_library, Registry};
//! use pbqp_dnn_select::{Optimizer, Strategy};
//!
//! let graph = models::micro_alexnet();
//! let registry = Registry::new(mixed_precision_library());
//!
//! // The shipped plan came from a model asserting int8 is 40× faster.
//! let mut wrong = MachineModel::intel_haswell_like();
//! wrong.int8_speedup = 40.0;
//! let shipped = Optimizer::new(&registry, &AnalyticCost::new(wrong, 1))
//!     .plan(&graph, Strategy::Pbqp)
//!     .unwrap();
//!
//! // Background resolve against an honest analytic fill (a real engine
//! // would also fold observed live costs in).
//! let config = AutotuneConfig::new()
//!     .with_fill(CandidateFill::Analytic(MachineModel::intel_haswell_like()));
//! let resolution =
//!     resolve(&graph, &registry, &ObservedTable::new(), &shipped, &[], &config).unwrap();
//! assert!(resolution.changed, "the honest table prices the int8 sweep out");
//! assert!(resolution.improves && resolution.candidate_us < resolution.current_us);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use pbqp_dnn_cost::{
    AnalyticCost, CostSource, CostTable, MachineModel, MeasuredCost, ObservedStat, ObservedTable,
};
use pbqp_dnn_graph::{DnnGraph, NodeId};
use pbqp_dnn_primitives::registry::Registry;
use pbqp_dnn_runtime::faults;
use pbqp_dnn_runtime::sampler::StepSummary;
use pbqp_dnn_runtime::StepMeta;
use pbqp_dnn_select::{ExecutionPlan, Optimizer, PlanError, Strategy};

/// The cost written over quarantined `(node, kernel)` table entries so
/// the solver never selects them. Large but finite — PBQP matrix
/// reductions stay numerically sane where an infinity would not.
const QUARANTINE_PENALTY_US: f64 = 1e12;

/// How a background re-solve prices the candidates live traffic has
/// never run. Observed costs can only cover the kernels the serving
/// plan selected; every other candidate needs a *fill* cost.
#[derive(Debug, Clone)]
pub enum CandidateFill {
    /// Probe candidates with the paper's wall-clock profiler
    /// ([`MeasuredCost`]) on the background thread — the honest default:
    /// fill and observed costs share wall-clock units.
    Probe {
        /// Best-of-`reps` repetitions per probe.
        reps: usize,
        /// Spatial down-scale factor for the probe (Θ(H·W)
        /// extrapolation), 1 = full size.
        scale: usize,
    },
    /// Price unobserved candidates with the deterministic analytic model
    /// — instant, but analytic µs and observed wall-clock µs mix units,
    /// so prefer this only for tests and deterministic policy checks.
    Analytic(MachineModel),
}

/// Configuration for the online re-optimization loop: sampling, trigger
/// policy, candidate validation, and fill source.
#[derive(Debug, Clone)]
pub struct AutotuneConfig {
    /// Record every `sample_rate`-th step evaluation (1 = every step).
    pub sample_rate: u32,
    /// Total observed samples required before any re-solve triggers.
    pub min_samples: u64,
    /// Per-`(node, kernel)` samples required before an observation
    /// overrides the fill cost or counts toward divergence.
    pub min_node_samples: u64,
    /// Mean relative divergence (observed vs. predicted per-node costs)
    /// at which a re-solve triggers.
    pub divergence_threshold: f64,
    /// Minimum time between re-solve attempts.
    pub cooldown: Duration,
    /// How often the background thread folds samples and evaluates the
    /// trigger.
    pub poll_interval: Duration,
    /// Fractional predicted win a candidate must show over the re-priced
    /// serving plan to be swapped in (hysteresis against near-ties).
    pub min_win: f64,
    /// How unobserved candidates are priced.
    pub fill: CandidateFill,
}

impl Default for AutotuneConfig {
    fn default() -> AutotuneConfig {
        AutotuneConfig {
            sample_rate: 4,
            min_samples: 64,
            min_node_samples: 8,
            divergence_threshold: 0.25,
            cooldown: Duration::from_millis(500),
            poll_interval: Duration::from_millis(25),
            min_win: 0.02,
            fill: CandidateFill::Probe { reps: 3, scale: 1 },
        }
    }
}

impl AutotuneConfig {
    /// The default configuration (probe fill, 1-in-4 sampling).
    pub fn new() -> AutotuneConfig {
        AutotuneConfig::default()
    }

    /// Sets the step-sampling rate (1 = every step evaluation).
    pub fn with_sample_rate(mut self, rate: u32) -> AutotuneConfig {
        self.sample_rate = rate.max(1);
        self
    }

    /// Sets the total-sample trigger gate.
    pub fn with_min_samples(mut self, samples: u64) -> AutotuneConfig {
        self.min_samples = samples;
        self
    }

    /// Sets the per-pair sample gate for overrides and divergence.
    pub fn with_min_node_samples(mut self, samples: u64) -> AutotuneConfig {
        self.min_node_samples = samples;
        self
    }

    /// Sets the divergence trigger threshold.
    pub fn with_divergence_threshold(mut self, threshold: f64) -> AutotuneConfig {
        self.divergence_threshold = threshold;
        self
    }

    /// Sets the minimum time between re-solve attempts.
    pub fn with_cooldown(mut self, cooldown: Duration) -> AutotuneConfig {
        self.cooldown = cooldown;
        self
    }

    /// Sets the background thread's polling interval.
    pub fn with_poll_interval(mut self, interval: Duration) -> AutotuneConfig {
        self.poll_interval = interval;
        self
    }

    /// Sets the predicted-win margin a swap must clear.
    pub fn with_min_win(mut self, win: f64) -> AutotuneConfig {
        self.min_win = win;
        self
    }

    /// Sets how unobserved candidates are priced.
    pub fn with_fill(mut self, fill: CandidateFill) -> AutotuneConfig {
        self.fill = fill;
        self
    }

    /// The trigger policy: re-solve only when enough samples exist, the
    /// observed/predicted divergence is measurable and over threshold,
    /// and the cooldown since the last attempt has elapsed.
    pub fn should_trigger(
        &self,
        samples: u64,
        divergence: Option<f64>,
        since_last: Option<Duration>,
    ) -> bool {
        if samples < self.min_samples {
            return false;
        }
        let Some(d) = divergence else { return false };
        if d < self.divergence_threshold {
            return false;
        }
        match since_last {
            Some(elapsed) => elapsed >= self.cooldown,
            None => true,
        }
    }
}

/// Errors from a background re-solve.
#[derive(Debug)]
pub enum AutotuneError {
    /// The `autotune.resolve` failpoint surfaced an injected error.
    Injected(String),
    /// The re-solve panicked (real or injected); the unwind was
    /// contained here — the serving engine keeps its current generation.
    Panicked(String),
    /// The PBQP re-solve or re-legalization failed.
    Plan(PlanError),
}

impl fmt::Display for AutotuneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AutotuneError::Injected(msg) => {
                write!(f, "injected fault at `autotune.resolve`: {msg}")
            }
            AutotuneError::Panicked(msg) => write!(f, "re-solve panicked (contained): {msg}"),
            AutotuneError::Plan(e) => write!(f, "re-solve failed: {e}"),
        }
    }
}

impl Error for AutotuneError {}

impl From<PlanError> for AutotuneError {
    fn from(e: PlanError) -> Self {
        AutotuneError::Plan(e)
    }
}

/// The outcome of one background re-solve: the candidate plan plus the
/// comparison that decides whether it is worth swapping in.
#[derive(Debug)]
pub struct Resolution {
    /// The re-solved candidate plan (legalized, quarantine-clean).
    pub plan: ExecutionPlan,
    /// The candidate priced under the resolve table (µs).
    pub candidate_us: f64,
    /// The *serving* plan re-priced under the same table (µs) — the
    /// honest comparison basis; its original `predicted_us` may be in
    /// different units entirely.
    pub current_us: f64,
    /// Whether the candidate's selected kernels differ from the serving
    /// plan's (if not, the loop has converged).
    pub changed: bool,
    /// Whether the candidate clears the configured win margin.
    pub improves: bool,
}

/// The `(node, kernel, predicted µs)` entries of a plan's conv and
/// operator selections — the divergence comparison basis.
pub fn predicted_selections(plan: &ExecutionPlan) -> Vec<(NodeId, String, f64)> {
    use pbqp_dnn_select::AssignmentKind;
    plan.assignments
        .iter()
        .filter_map(|a| match &a.kind {
            AssignmentKind::Conv { primitive, cost_us, .. } => {
                Some((a.node, primitive.clone(), *cost_us))
            }
            AssignmentKind::Op { kernel, cost_us, .. } => Some((a.node, kernel.clone(), *cost_us)),
            AssignmentKind::Source { .. } => None,
        })
        .collect()
}

/// Folds a sampler snapshot into an observed table using the schedule's
/// step metadata for `(node, kernel)` attribution. The input step (no
/// selectable kernel) and unsampled steps are skipped; re-folding the
/// same sampler is idempotent because summaries are cumulative.
pub fn fold_observations(
    observed: &mut ObservedTable,
    meta: &[StepMeta],
    summaries: &[StepSummary],
) {
    for (m, s) in meta.iter().zip(summaries) {
        if s.count > 0 && m.kernel != "input" {
            observed.record(
                m.node,
                &m.kernel,
                ObservedStat { samples: s.count, ema_us: s.ema_us, p50_us: s.p50_us },
            );
        }
    }
}

/// Runs one background re-solve: build the resolve table (fill +
/// observed overrides + quarantine penalties), re-run the PBQP solve,
/// route around any quarantined selection the penalties could not
/// exclude (operator kernels are priced by the source, not the table),
/// and price both the candidate and the serving plan on the same basis.
///
/// Evaluates the [`faults::AUTOTUNE_RESOLVE`] failpoint first and
/// contains any panic (real or injected): a failed re-solve returns a
/// typed error and the caller keeps serving its current generation.
///
/// # Errors
///
/// [`AutotuneError::Injected`]/[`AutotuneError::Panicked`] for injected
/// or contained faults, [`AutotuneError::Plan`] if the solve or
/// re-legalization fails.
pub fn resolve(
    graph: &DnnGraph,
    registry: &Registry,
    observed: &ObservedTable,
    current: &ExecutionPlan,
    quarantined: &[(NodeId, String)],
    config: &AutotuneConfig,
) -> Result<Resolution, AutotuneError> {
    let contained = catch_unwind(AssertUnwindSafe(|| {
        if let Some(faults::Injected::Error(msg)) = faults::hit(faults::AUTOTUNE_RESOLVE) {
            return Err(AutotuneError::Injected(msg));
        }
        resolve_inner(graph, registry, observed, current, quarantined, config)
    }));
    match contained {
        Ok(r) => r,
        Err(p) => Err(AutotuneError::Panicked(faults::panic_message(p))),
    }
}

fn resolve_inner(
    graph: &DnnGraph,
    registry: &Registry,
    observed: &ObservedTable,
    current: &ExecutionPlan,
    quarantined: &[(NodeId, String)],
    config: &AutotuneConfig,
) -> Result<Resolution, AutotuneError> {
    let shapes = graph.infer_shapes().map_err(PlanError::from)?;
    let source: Box<dyn CostSource> = match &config.fill {
        CandidateFill::Probe { reps, scale } => {
            Box::new(MeasuredCost::new(1, (*reps).max(1)).with_scale((*scale).max(1)))
        }
        CandidateFill::Analytic(machine) => Box::new(AnalyticCost::new(machine.clone(), 1)),
    };
    let optimizer = Optimizer::new(registry, source.as_ref());

    let fill = CostTable::profile(graph, registry, source.as_ref());
    let mut table = observed.fold_into(&fill, config.min_node_samples);
    for (node, kernel) in quarantined {
        // Conv candidates are priced out of selection here; operator
        // kernels are priced by the source and handled below.
        table.set_cost(*node, kernel, QUARANTINE_PENALTY_US);
    }

    let mut candidate = optimizer.plan_with_table(graph, &shapes, &table, Strategy::Pbqp)?;
    if selects_any(&candidate, quarantined) {
        candidate = optimizer.reroute(graph, &candidate, quarantined)?;
        debug_assert!(!selects_any(&candidate, quarantined));
    }

    let candidate_us = optimizer.price_plan(graph, &shapes, &table, &candidate);
    let current_us = optimizer.price_plan(graph, &shapes, &table, current);
    let changed = selections(&candidate) != selections(current);
    let improves = changed && candidate_us < current_us * (1.0 - config.min_win);
    Ok(Resolution { plan: candidate, candidate_us, current_us, changed, improves })
}

/// A plan's selected `(node, kernel)` pairs, convs and ops together.
fn selections(plan: &ExecutionPlan) -> Vec<(NodeId, String)> {
    plan.selected_primitives()
        .into_iter()
        .chain(plan.selected_op_kernels())
        .map(|(n, k)| (n, k.to_owned()))
        .collect()
}

/// Whether `plan` selects any of the given `(node, kernel)` pairs.
fn selects_any(plan: &ExecutionPlan, pairs: &[(NodeId, String)]) -> bool {
    if pairs.is_empty() {
        return false;
    }
    selections(plan).iter().any(|(n, k)| pairs.iter().any(|(qn, qk)| qn == n && qk == k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbqp_dnn_graph::models;
    use pbqp_dnn_primitives::registry::mixed_precision_library;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// Failpoints are process-global; every test that calls `resolve`
    /// serializes on this so an armed site never leaks across tests.
    fn guard() -> MutexGuard<'static, ()> {
        static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
        let g = GUARD.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|e| e.into_inner());
        faults::disarm_all();
        g
    }

    fn setup() -> (DnnGraph, Registry) {
        (models::micro_alexnet(), Registry::new(mixed_precision_library()))
    }

    fn shipped(graph: &DnnGraph, registry: &Registry, int8_speedup: f64) -> ExecutionPlan {
        let mut machine = MachineModel::intel_haswell_like();
        machine.int8_speedup = int8_speedup;
        let cost = AnalyticCost::new(machine, 1);
        Optimizer::new(registry, &cost).plan(graph, Strategy::Pbqp).unwrap()
    }

    fn analytic_config() -> AutotuneConfig {
        AutotuneConfig::new().with_fill(CandidateFill::Analytic(MachineModel::intel_haswell_like()))
    }

    #[test]
    fn trigger_policy_gates_on_samples_divergence_and_cooldown() {
        let c = AutotuneConfig::new()
            .with_min_samples(10)
            .with_divergence_threshold(0.5)
            .with_cooldown(Duration::from_secs(1));
        assert!(!c.should_trigger(9, Some(9.0), None), "sample gate");
        assert!(!c.should_trigger(100, None, None), "no measurable divergence");
        assert!(!c.should_trigger(100, Some(0.4), None), "under threshold");
        assert!(c.should_trigger(100, Some(0.6), None), "first attempt has no cooldown");
        assert!(!c.should_trigger(100, Some(0.6), Some(Duration::from_millis(10))), "cooldown");
        assert!(c.should_trigger(100, Some(0.6), Some(Duration::from_secs(2))));
    }

    #[test]
    fn resolve_corrects_a_mis_modeled_plan_and_converges() {
        let _g = guard();
        let (graph, registry) = setup();
        let wrong = shipped(&graph, &registry, 40.0);
        let config = analytic_config();

        let r = resolve(&graph, &registry, &ObservedTable::new(), &wrong, &[], &config).unwrap();
        assert!(r.changed && r.improves, "{} vs {}", r.candidate_us, r.current_us);
        assert!(r.candidate_us < r.current_us);

        // Resolving again from the corrected plan is a fixed point.
        let again =
            resolve(&graph, &registry, &ObservedTable::new(), &r.plan, &[], &config).unwrap();
        assert!(!again.changed, "the corrected plan is stable under the same table");
        assert!(!again.improves);
    }

    #[test]
    fn resolve_refuses_quarantined_kernels() {
        let _g = guard();
        let (graph, registry) = setup();
        let honest = shipped(&graph, &registry, 2.2);
        let config = analytic_config();
        let r = resolve(&graph, &registry, &ObservedTable::new(), &honest, &[], &config).unwrap();

        // Quarantine everything the candidate selected; the next resolve
        // must route around all of it.
        let banned = selections(&r.plan);
        assert!(!banned.is_empty());
        let r2 =
            resolve(&graph, &registry, &ObservedTable::new(), &r.plan, &banned, &config).unwrap();
        assert!(!selects_any(&r2.plan, &banned));
    }

    #[test]
    fn observed_overrides_steer_the_solve() {
        let _g = guard();
        let (graph, registry) = setup();
        let honest = shipped(&graph, &registry, 2.2);
        let config = analytic_config().with_min_node_samples(1);

        // Claim every currently selected conv kernel is catastrophically
        // slow; the re-solve must move off all of them.
        let mut observed = ObservedTable::new();
        for (node, name) in honest.selected_primitives() {
            observed.record(node, name, ObservedStat { samples: 100, ema_us: 5e8, p50_us: 5e8 });
        }
        let r = resolve(&graph, &registry, &observed, &honest, &[], &config).unwrap();
        assert!(r.changed);
        let before: Vec<_> = honest.selected_primitives();
        for (node, name) in r.plan.selected_primitives() {
            assert!(
                !before.iter().any(|(n, k)| *n == node && *k == name),
                "conv {node:?} still on poisoned kernel {name}"
            );
        }
    }

    #[test]
    fn injected_resolve_faults_are_typed_and_contained() {
        let _g = guard();
        let (graph, registry) = setup();
        let plan = shipped(&graph, &registry, 2.2);
        let config = analytic_config();

        faults::arm(faults::AUTOTUNE_RESOLVE, "every:error(boom)").unwrap();
        let err =
            resolve(&graph, &registry, &ObservedTable::new(), &plan, &[], &config).unwrap_err();
        assert!(matches!(err, AutotuneError::Injected(ref m) if m == "boom"), "{err}");

        faults::arm(faults::AUTOTUNE_RESOLVE, "every:panic(kaboom)").unwrap();
        let err =
            resolve(&graph, &registry, &ObservedTable::new(), &plan, &[], &config).unwrap_err();
        assert!(matches!(err, AutotuneError::Panicked(ref m) if m.contains("kaboom")), "{err}");
        faults::disarm(faults::AUTOTUNE_RESOLVE);
    }
}
