use std::time::Instant;

use pbqp_dnn_graph::ConvScenario;
use pbqp_dnn_primitives::{ConvAlgorithm, OpInputs, OpKernel, OpSpec};
use pbqp_dnn_tensor::transform::{apply_repr_into, quantize_dynamic_into, ReprTransform};
use pbqp_dnn_tensor::{DType, KernelTensor, Tensor};

use crate::table::CostSource;

/// Wall-clock profiler: the paper's methodology (§3.1).
///
/// "The cost of execution of most DNN layers depends primarily on the
/// dimensions of the input rather than on the actual input values" — so
/// each candidate primitive is run on deterministic pseudo-random tensors
/// of the layer's true dimensions and the best of `reps` timings is
/// recorded.
///
/// Profiling a full network against the whole library takes real time;
/// [`MeasuredCost::with_scale`] optionally shrinks the spatial dimensions
/// by an integer factor for quick calibration runs (costs scale
/// predictably with `H × W` for every family).
///
/// The profiled kernels go through the runtime ISA dispatch in
/// `pbqp_dnn_gemm::arch`, so measured costs automatically reflect
/// whichever micro-kernel (AVX2 / SSE2 / scalar) the serving host will
/// actually run — including under a `PBQP_DNN_FORCE_ISA` override.
#[derive(Debug, Clone)]
pub struct MeasuredCost {
    threads: usize,
    reps: usize,
    scale: usize,
}

impl MeasuredCost {
    /// Creates a profiler running each primitive `reps` times with the
    /// given thread count, keeping the minimum.
    pub fn new(threads: usize, reps: usize) -> MeasuredCost {
        MeasuredCost { threads: threads.max(1), reps: reps.max(1), scale: 1 }
    }

    /// Divides profiled spatial dimensions by `scale` (≥ 1).
    pub fn with_scale(mut self, scale: usize) -> MeasuredCost {
        self.scale = scale.max(1);
        self
    }

    fn scaled(&self, s: &ConvScenario) -> ConvScenario {
        if self.scale == 1 {
            return *s;
        }
        let mut t = *s;
        // Keep the scenario executable: never shrink below the kernel.
        t.h = (t.h / self.scale).max(t.k);
        t.w = (t.w / self.scale).max(t.k);
        t
    }

    /// The op-spec analogue of [`MeasuredCost::scaled`]: operand spatial
    /// dims shrink by the scale (never below the pool window), and the
    /// output geometry is re-derived per class so the kernels' shape
    /// checks still hold.
    fn scaled_spec(&self, spec: &OpSpec) -> OpSpec {
        if self.scale == 1 {
            return spec.clone();
        }
        let (k, stride, pad) = spec.window;
        let mut t = spec.clone();
        for (_, h, w) in &mut t.inputs {
            *h = (*h / self.scale).max(k.max(1));
            *w = (*w / self.scale).max(k.max(1));
        }
        let (_, h0, w0) = t.inputs[0];
        t.out = match t.class {
            pbqp_dnn_graph::OpClass::MaxPool | pbqp_dnn_graph::OpClass::AvgPool => (
                t.out.0,
                (h0 + 2 * pad - k).div_ceil(stride) + 1,
                (w0 + 2 * pad - k).div_ceil(stride) + 1,
            ),
            // Every other costed class is shape-preserving spatially
            // (concat sums channels, add/relu are elementwise).
            _ => (t.out.0, h0, w0),
        };
        t
    }
}

impl CostSource for MeasuredCost {
    fn layer_cost(&self, prim: &dyn ConvAlgorithm, scenario: &ConvScenario) -> f64 {
        let s = self.scaled(scenario);
        let f32_input = Tensor::random(s.c, s.h, s.w, prim.descriptor().input_layout, 0xA11CE);
        // Quantized primitives are profiled on quantized activations,
        // matching what the executor feeds them at run time.
        let input = if prim.descriptor().input_dtype == DType::I8 {
            let mut q = Tensor::empty_dtype(DType::I8);
            quantize_dynamic_into(&f32_input, &mut q);
            q
        } else {
            f32_input
        };
        let mut kernel = KernelTensor::random(s.m, s.c, s.k, s.k, 0xB0B);
        if s.sparsity_pm > 0 {
            kernel.sparsify(s.sparsity(), 0xC0FFEE);
        }
        let mut best = f64::INFINITY;
        for _ in 0..self.reps {
            let start = Instant::now();
            let out = prim.execute(&input, &kernel, &s, self.threads);
            let dt = start.elapsed().as_secs_f64() * 1e6;
            assert!(out.is_ok(), "profiled primitive failed: {:?}", out.err());
            best = best.min(dt);
        }
        // Scale measured time back up: every family is Θ(H·W) in the
        // spatial dimensions for fixed C, K, M.
        best * (self.scale * self.scale) as f64
    }

    /// Wall-clock profiling of non-conv op kernels, matching the conv
    /// methodology: deterministic pseudo-random operands (quantized for
    /// int8 kernels), spatial dims shrunk by `with_scale` and the timing
    /// extrapolated back up (every costed op class is Θ(H·W)), best of
    /// `reps` kept. The single-precision classes both sources treat as
    /// free (see [`pbqp_dnn_graph::OpClass::is_costed`]) stay at zero
    /// here too — none of the costed classes carries `aux` parameters —
    /// so analytic and measured plans decompose the same way.
    fn op_cost(&self, kernel: &dyn OpKernel, spec: &OpSpec) -> f64 {
        let d = kernel.descriptor();
        if !d.class.is_costed() {
            return 0.0;
        }
        let spec = self.scaled_spec(spec);
        let operands: Vec<Tensor> = spec
            .inputs
            .iter()
            .enumerate()
            .map(|(i, &(c, h, w))| {
                let f = Tensor::random(c, h, w, d.input_layout, 0xA11CE ^ i as u64);
                if d.input_dtype == DType::I8 {
                    let mut q = Tensor::empty_dtype(DType::I8);
                    quantize_dynamic_into(&f, &mut q);
                    q
                } else {
                    f
                }
            })
            .collect();
        let refs: Vec<&Tensor> = operands.iter().collect();
        let mut best = f64::INFINITY;
        for _ in 0..self.reps {
            let start = Instant::now();
            let out = kernel.execute(OpInputs::Slice(&refs), None, &spec);
            let dt = start.elapsed().as_secs_f64() * 1e6;
            assert!(out.is_ok(), "profiled op kernel failed: {:?}", out.err());
            best = best.min(dt);
        }
        best * (self.scale * self.scale) as f64
    }

    fn transform_cost(&self, transform: ReprTransform, dims: (usize, usize, usize)) -> f64 {
        let (c, h, w) = dims;
        let (h, w) = ((h / self.scale).max(1), (w / self.scale).max(1));
        let from = transform.from();
        let f32_input = Tensor::random(c, h, w, from.layout, 0xDA7A);
        let input = if from.dtype == DType::I8 {
            let mut q = Tensor::empty_dtype(DType::I8);
            quantize_dynamic_into(&f32_input, &mut q);
            q
        } else {
            f32_input
        };
        let mut dst = Tensor::empty_dtype(transform.to().dtype);
        let mut best = f64::INFINITY;
        for _ in 0..self.reps {
            let start = Instant::now();
            let out = apply_repr_into(&input, transform, &mut dst);
            let dt = start.elapsed().as_secs_f64() * 1e6;
            assert!(out.is_ok(), "transform failed: {:?}", out.err());
            best = best.min(dt);
        }
        best * (self.scale * self.scale) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbqp_dnn_primitives::registry::{full_library, Registry};
    use pbqp_dnn_tensor::transform::DIRECT_TRANSFORMS;

    #[test]
    fn measures_positive_times_and_ranks_obvious_pairs() {
        let reg = Registry::new(full_library());
        // Best-of-6 timings: when the whole workspace test suite runs in
        // parallel, a 2-rep minimum still occasionally catches a
        // descheduled iteration on both samples and inverts the ranking.
        let prof = MeasuredCost::new(1, 6);
        let s = ConvScenario::new(8, 24, 24, 1, 3, 16);
        let naive = prof.layer_cost(reg.by_name("im2col_naive_nn").unwrap().as_ref(), &s);
        let packed = prof.layer_cost(reg.by_name("im2col_packed_nn").unwrap().as_ref(), &s);
        assert!(naive > 0.0 && packed > 0.0);
        // Packed GEMM should never lose to naive GEMM by much; on real
        // hardware it usually wins outright. Allow slack for CI noise.
        assert!(packed < naive * 3.0, "packed {packed} vs naive {naive}");
    }

    #[test]
    fn scaled_profiling_extrapolates() {
        let reg = Registry::new(full_library());
        let prof = MeasuredCost::new(1, 2).with_scale(2);
        let s = ConvScenario::new(4, 32, 32, 1, 3, 8);
        let cost = prof.layer_cost(reg.by_name("sum2d").unwrap().as_ref(), &s);
        assert!(cost > 0.0);
        // Op kernels honour the same spatial downscale — a scale-4 pool
        // profile runs on shrunken tensors (and still prices > 0), with
        // geometry re-derived so the kernel's shape checks hold.
        use pbqp_dnn_graph::{LayerKind, PoolKind};
        let pool = LayerKind::Pool { kind: PoolKind::Max, k: 3, stride: 2, pad: 0 };
        let spec = OpSpec::for_layer(&pool, vec![(8, 64, 64)], (8, 31, 31)).unwrap();
        let quick = MeasuredCost::new(1, 1).with_scale(4);
        let kernel = reg.op_by_name("maxpool_chw").unwrap();
        assert!(quick.op_cost(kernel.as_ref(), &spec) > 0.0);
    }

    #[test]
    fn transform_cost_is_measurable() {
        let prof = MeasuredCost::new(1, 2);
        let t = ReprTransform::Layout(DIRECT_TRANSFORMS[0]);
        assert!(prof.transform_cost(t, (16, 32, 32)) > 0.0);
        // Quantize/dequantize edges are measurable too.
        use pbqp_dnn_tensor::Layout;
        assert!(prof.transform_cost(ReprTransform::Quantize(Layout::Chw), (8, 16, 16)) > 0.0);
        assert!(prof.transform_cost(ReprTransform::Dequantize(Layout::Hwc), (8, 16, 16)) > 0.0);
    }

    #[test]
    fn quantized_primitives_are_profiled_on_quantized_inputs() {
        use pbqp_dnn_primitives::registry::mixed_precision_library;
        let reg = Registry::new(mixed_precision_library());
        let prof = MeasuredCost::new(1, 1);
        let s = ConvScenario::new(4, 12, 12, 1, 3, 4);
        let q = prof.layer_cost(reg.by_name("qint8_im2col_chw").unwrap().as_ref(), &s);
        assert!(q > 0.0);
    }
}
