use std::fmt;

/// An analytic machine model: the handful of architectural parameters the
/// cost model needs to reproduce the paper's cross-platform effects.
///
/// Two presets mirror the paper's evaluation platforms:
/// [`MachineModel::intel_haswell_like`] (8-wide AVX2-class vectors, large
/// last-level cache) and [`MachineModel::arm_a57_like`] (4-wide NEON-class
/// vectors, small last-level cache). Both have four cores, like the
/// physical machines in §5.1.
///
/// # Example
///
/// ```
/// use pbqp_dnn_cost::MachineModel;
///
/// let intel = MachineModel::intel_haswell_like();
/// let arm = MachineModel::arm_a57_like();
/// assert_eq!(intel.vector_width, 8);
/// assert_eq!(arm.vector_width, 4);
/// assert!(intel.llc_bytes > arm.llc_bytes);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MachineModel {
    /// Display name used in benchmark output.
    pub name: &'static str,
    /// FP32 SIMD lanes (8 for AVX2, 4 for NEON).
    pub vector_width: usize,
    /// Physical cores available for multithreaded execution.
    pub cores: usize,
    /// Clock frequency in GHz.
    pub freq_ghz: f64,
    /// Last-level cache capacity in bytes (6 MiB Haswell, 2 MiB A57).
    pub llc_bytes: usize,
    /// Sustained memory bandwidth in GB/s.
    pub bandwidth_gbs: f64,
    /// Fused multiply-add issue per lane per cycle (2 on Haswell, 1 on A57).
    pub fma_per_cycle: f64,
    /// Fraction of its nominal efficiency the platform BLAS achieves
    /// (vendor GEMMs are far better tuned on x86 than on embedded parts).
    pub blas_efficiency: f64,
    /// Throughput multiplier of int8 arithmetic over f32.
    ///
    /// In the presets this is an **assumed** architectural figure (8-bit
    /// multiply-accumulate packs more lanes per vector: ~2× via
    /// `pmaddubsw`-style pairs on AVX2-class parts, more on NEON where
    /// `smlal` quadruples the lane count), chosen to mirror the paper's
    /// platforms rather than measured on the build host.
    /// [`MachineModel::with_calibrated_int8`] replaces it with the ratio
    /// actually measured for this repo's dispatched kernels.
    pub int8_speedup: f64,
    /// Elements per cycle a streaming f32 pointwise/pooling loop sustains
    /// (clamps, window maxima, elementwise adds — the non-conv operator
    /// kernels, which are bandwidth-bound far more often than
    /// compute-bound).
    pub pointwise_elems_per_cycle: f64,
    /// Throughput multiplier of int8 pointwise/pool loops over their f32
    /// forms: byte-wide compares/adds pack 4× the lanes, and the memory
    /// half of the roofline moves a quarter of the bytes automatically.
    pub int8_pointwise_speedup: f64,
}

impl MachineModel {
    /// The desktop platform of §5.1: Intel Core i5-4570 class.
    pub fn intel_haswell_like() -> MachineModel {
        MachineModel {
            name: "intel-haswell-like",
            vector_width: 8,
            cores: 4,
            freq_ghz: 3.2,
            llc_bytes: 6 * 1024 * 1024,
            bandwidth_gbs: 25.0,
            fma_per_cycle: 2.0,
            blas_efficiency: 1.0,
            int8_speedup: 2.2,
            pointwise_elems_per_cycle: 4.0,
            int8_pointwise_speedup: 2.0,
        }
    }

    /// The embedded platform of §5.1: ARM Cortex-A57 (NVIDIA TX1) class.
    pub fn arm_a57_like() -> MachineModel {
        MachineModel {
            name: "arm-a57-like",
            vector_width: 4,
            cores: 4,
            freq_ghz: 1.9,
            llc_bytes: 2 * 1024 * 1024,
            // Effective streaming bandwidth under the strided access DNN
            // kernels generate; the TX1's LPDDR4 peak is higher but its
            // achieved bandwidth on non-sequential traffic is far lower.
            bandwidth_gbs: 1.6,
            fma_per_cycle: 1.0,
            blas_efficiency: 0.55,
            int8_speedup: 3.0,
            pointwise_elems_per_cycle: 2.0,
            int8_pointwise_speedup: 3.0,
        }
    }

    /// Replaces the preset's **assumed** [`int8_speedup`] with the ratio
    /// **measured** on the build host by the one-shot kernel probe
    /// ([`crate::host_calibration`]): dispatched packed f32 GEMM vs
    /// dispatched quantized GEMM on a representative conv-shaped
    /// product. Opt-in, because a calibrated model describes *this*
    /// machine, not the paper's platform the preset names — tests that
    /// assert platform-specific plans keep the preset figures.
    ///
    /// The first call runs the probe (a few milliseconds); later calls
    /// reuse the cached measurement.
    ///
    /// [`int8_speedup`]: MachineModel::int8_speedup
    pub fn with_calibrated_int8(mut self) -> MachineModel {
        self.int8_speedup = crate::calibrate::host_calibration().int8_speedup;
        self
    }

    /// Peak single-core scalar FLOP/s (multiply and add counted
    /// separately).
    pub fn scalar_peak_flops(&self) -> f64 {
        self.freq_ghz * 1e9 * 2.0 * self.fma_per_cycle
    }

    /// Peak FLOP/s using `threads` cores and `lanes` effective SIMD lanes.
    pub fn peak_flops(&self, threads: usize, lanes: usize) -> f64 {
        self.scalar_peak_flops()
            * threads.clamp(1, self.cores) as f64
            * lanes.clamp(1, self.vector_width) as f64
    }
}

impl fmt::Display for MachineModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} cores, {}-wide, {:.1} GHz, {} KiB LLC)",
            self.name,
            self.cores,
            self.vector_width,
            self.freq_ghz,
            self.llc_bytes / 1024
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_reflect_the_papers_platforms() {
        let intel = MachineModel::intel_haswell_like();
        let arm = MachineModel::arm_a57_like();
        assert!(intel.scalar_peak_flops() > arm.scalar_peak_flops());
        assert_eq!(intel.cores, 4);
        assert_eq!(arm.cores, 4);
    }

    #[test]
    fn peak_flops_clamps_to_hardware() {
        let m = MachineModel::arm_a57_like();
        assert_eq!(m.peak_flops(16, 16), m.peak_flops(4, 4));
        assert_eq!(m.peak_flops(1, 1), m.scalar_peak_flops());
    }
}
