//! One-shot int8-vs-f32 calibration probe for the analytic machine model.
//!
//! The presets in [`MachineModel`](crate::MachineModel) carry *assumed*
//! `int8_speedup` figures taken from the paper's platforms. On the build
//! host we can do better: time the dispatched packed f32 GEMM against the
//! dispatched quantized GEMM once (both run whatever micro-kernel
//! [`pbqp_dnn_gemm::arch`] selects — AVX2, SSE2, or scalar) and derive
//! the ratio that actually holds on this machine. The probe result is
//! cached in a `OnceLock`, so every model built with
//! [`MachineModel::with_calibrated_int8`](crate::MachineModel::with_calibrated_int8)
//! after the first pays nothing.
//!
//! The probe shape (32×576 output, depth 144) is a mid-network
//! convolution lowered through im2col — the kind of scenario whose f32/
//! int8 choice the optimizer actually has to rank.

use std::sync::OnceLock;
use std::time::Instant;

use pbqp_dnn_gemm::{arch, Gemm, GemmKind, QuantGemm, Trans};

/// Probe GEMM shape: `m × n` output with depth `k`, sized like a
/// mid-network conv lowered through im2col (32 filters over a 24×24
/// spatial map with a 4·6·6 patch).
const M: usize = 32;
const N: usize = 576;
const K: usize = 144;

/// Result of the one-shot kernel probe: best-of-N wall times for the
/// dispatched f32 and int8 GEMMs on the probe shape, plus the derived
/// throughput ratio.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// Name of the instruction set the dispatcher selected for the probe
    /// (`"avx2"`, `"sse2"`, or `"scalar"`).
    pub isa: &'static str,
    /// Best-of-N wall time of the packed f32 GEMM, in nanoseconds.
    pub f32_gemm_ns: f64,
    /// Best-of-N wall time of the quantized int8 GEMM, in nanoseconds.
    pub int8_gemm_ns: f64,
    /// Measured throughput multiplier of int8 over f32
    /// (`f32_gemm_ns / int8_gemm_ns`). May be below 1.0 when the int8
    /// path loses on this host.
    pub int8_speedup: f64,
}

/// The cached host calibration; the first call runs the probe
/// (a few milliseconds), later calls return the cached result.
pub fn host_calibration() -> &'static Calibration {
    static CAL: OnceLock<Calibration> = OnceLock::new();
    CAL.get_or_init(probe)
}

fn probe() -> Calibration {
    // Deterministic pseudo-random operands (splitmix64) — value content
    // does not change GEMM timing, but zeros would let a future
    // sparsity-aware kernel cheat.
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut next = move || {
        state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    };
    let af: Vec<f32> = (0..M * K).map(|_| (next() % 255) as f32 / 127.0 - 1.0).collect();
    let bf: Vec<f32> = (0..K * N).map(|_| (next() % 255) as f32 / 127.0 - 1.0).collect();
    let aq: Vec<i8> = (0..M * K).map(|_| (next() % 255) as i8).collect();
    let bq: Vec<i8> = (0..K * N).map(|_| (next() % 255) as i8).collect();

    let gemm = Gemm::new(GemmKind::Packed);
    let mut cf = vec![0.0f32; M * N];
    let mut sf = vec![0.0f32; gemm.scratch_elems(Trans::N, Trans::N, M, N, K)];
    let f32_ns = best_of(3, 5, || {
        gemm.run_with_scratch(Trans::N, Trans::N, M, N, K, &af, &bf, 0.0, &mut cf, &mut sf);
    });

    let qgemm = QuantGemm::new();
    let mut cq = vec![0i32; M * N];
    let mut sq = vec![0i32; qgemm.scratch_elems(M, N, K)];
    let int8_ns = best_of(3, 5, || {
        qgemm.run_with_scratch(M, N, K, &aq, 3, &bq, -7, &mut cq, &mut sq);
    });

    Calibration {
        isa: arch::active_isa().name(),
        f32_gemm_ns: f32_ns,
        int8_gemm_ns: int8_ns,
        int8_speedup: f32_ns / int8_ns,
    }
}

/// Best (minimum) wall time of `timed` runs in nanoseconds, after
/// `warmup` discarded runs.
fn best_of(warmup: usize, timed: usize, mut f: impl FnMut()) -> f64 {
    for _ in 0..warmup {
        f();
    }
    let mut best = f64::INFINITY;
    for _ in 0..timed {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_nanos() as f64);
    }
    best.max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_is_cached_and_sane() {
        let a = host_calibration();
        let b = host_calibration();
        eprintln!("calibration: {a:?}");
        assert!(std::ptr::eq(a, b), "probe must run once");
        assert!(a.f32_gemm_ns > 0.0 && a.int8_gemm_ns > 0.0);
        assert!(a.int8_speedup.is_finite() && a.int8_speedup > 0.0);
        assert!(["avx2", "sse2", "scalar"].contains(&a.isa));
    }

    #[test]
    fn calibrated_model_swaps_only_the_int8_ratio() {
        let base = crate::MachineModel::intel_haswell_like();
        let cal = base.clone().with_calibrated_int8();
        assert_eq!(cal.int8_speedup, host_calibration().int8_speedup);
        assert_eq!(cal.vector_width, base.vector_width);
        assert_eq!(cal.llc_bytes, base.llc_bytes);
    }
}
