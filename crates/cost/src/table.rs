use std::collections::HashMap;
use std::fmt;

use pbqp_dnn_graph::{ConvScenario, DnnGraph, NodeId};
use pbqp_dnn_primitives::registry::Registry;
use pbqp_dnn_primitives::{ConvAlgorithm, OpKernel, OpSpec};
use pbqp_dnn_tensor::transform::ReprTransform;

/// Source of layer and data-transformation costs.
///
/// Implemented by the deterministic [`crate::AnalyticCost`] machine model
/// and the wall-clock [`crate::MeasuredCost`] profiler. All costs are in
/// microseconds.
pub trait CostSource {
    /// Estimated/measured execution time of `prim` on `scenario`.
    fn layer_cost(&self, prim: &dyn ConvAlgorithm, scenario: &ConvScenario) -> f64;

    /// Estimated/measured execution time of one non-conv operator kernel
    /// on `spec` — what prices the per-node `Repr` option vectors of
    /// ReLU/pool/concat/add selection nodes.
    ///
    /// The default keeps the paper's §5.2 behavior (non-conv layers cost
    /// nothing); the shipped sources override it for the
    /// multi-precision operator classes (see
    /// [`pbqp_dnn_graph::OpClass::is_costed`]).
    fn op_cost(&self, kernel: &dyn OpKernel, spec: &OpSpec) -> f64 {
        let _ = (kernel, spec);
        0.0
    }

    /// Estimated/measured execution time of one direct representation
    /// transformation (layout conversion, quantize or dequantize) on a
    /// tensor of logical dimensions `dims`.
    fn transform_cost(&self, transform: ReprTransform, dims: (usize, usize, usize)) -> f64;

    /// A key identifying this source's cost function for plan caching:
    /// two sources with the same key must assign the same cost to every
    /// (primitive, scenario) and (transform, dims) pair.
    ///
    /// The default is deliberately pessimistic — a process-unique sentinel
    /// per call site would defeat caching, so unknown sources share the
    /// `"uncacheable"` key and plan caches treat it as never matching.
    fn cache_key(&self) -> String {
        "uncacheable".into()
    }
}

/// Profiled costs for one convolution layer: the scenario plus the cost of
/// every supporting primitive (§3.1's `S × P` product space, one row).
#[derive(Debug, Clone)]
pub struct LayerCosts {
    /// Graph node this row belongs to.
    pub node: NodeId,
    /// The layer's convolutional scenario.
    pub scenario: ConvScenario,
    /// `(primitive name, cost µs)` for every candidate primitive.
    pub costs: Vec<(String, f64)>,
}

impl LayerCosts {
    /// Cost of a specific primitive, if it is a candidate.
    pub fn cost_of(&self, name: &str) -> Option<f64> {
        self.costs.iter().find(|(n, _)| n == name).map(|&(_, c)| c)
    }

    /// The cheapest `(name, cost)` entry.
    ///
    /// # Panics
    ///
    /// Panics if the layer has no candidates (cannot happen for tables
    /// built by [`CostTable::profile`]: `sum2d` supports everything).
    pub fn best(&self) -> (&str, f64) {
        let (n, c) = self
            .costs
            .iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("layer has at least one candidate");
        (n.as_str(), *c)
    }
}

/// The per-network cost table of §3.1: for every conv layer, the cost of
/// every candidate primitive. The paper notes these tables are tiny
/// compared to model weights and can ship with the trained model; the
/// text round-trip ([`CostTable::to_text`]/[`CostTable::parse`]) mirrors
/// that deployment story.
#[derive(Debug, Clone, Default)]
pub struct CostTable {
    layers: Vec<LayerCosts>,
    by_node: HashMap<usize, usize>,
}

impl CostTable {
    /// Profiles (or models) every candidate primitive for every conv layer
    /// of `graph` under `source`.
    pub fn profile(graph: &DnnGraph, registry: &Registry, source: &dyn CostSource) -> CostTable {
        let mut table = CostTable::default();
        for (node, scenario) in graph.conv_scenarios() {
            let costs = registry
                .candidates(&scenario)
                .into_iter()
                .map(|p| (p.descriptor().name.clone(), source.layer_cost(p.as_ref(), &scenario)))
                .collect();
            table.push(LayerCosts { node, scenario, costs });
        }
        table
    }

    fn push(&mut self, layer: LayerCosts) {
        self.by_node.insert(layer.node.index(), self.layers.len());
        self.layers.push(layer);
    }

    /// Rows in graph order.
    pub fn layers(&self) -> &[LayerCosts] {
        &self.layers
    }

    /// The row for a graph node, if it is a profiled conv layer.
    pub fn for_node(&self, node: NodeId) -> Option<&LayerCosts> {
        self.by_node.get(&node.index()).map(|&ix| &self.layers[ix])
    }

    /// Overrides the cost of candidate `name` on `node`'s row, returning
    /// whether both existed. This is how *observed* costs (live traffic)
    /// and policy penalties (quarantined kernels) are folded into a
    /// profiled fill table before a re-solve — the table stays a plain
    /// §3.1 cost table, only its numbers change.
    pub fn set_cost(&mut self, node: NodeId, name: &str, cost: f64) -> bool {
        let Some(&ix) = self.by_node.get(&node.index()) else { return false };
        match self.layers[ix].costs.iter_mut().find(|(n, _)| n == name) {
            Some(entry) => {
                entry.1 = cost;
                true
            }
            None => false,
        }
    }

    /// Serializes to the simple line-oriented text format:
    /// `layer <node> <scenario>` then `  <prim> <µs>` lines.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for l in &self.layers {
            out.push_str(&format!("layer {} {}\n", l.node.index(), l.scenario));
            for (name, cost) in &l.costs {
                out.push_str(&format!("  {name} {cost:.4}\n"));
            }
        }
        out
    }

    /// Parses the format produced by [`CostTable::to_text`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn parse(text: &str) -> Result<CostTable, String> {
        let mut table = CostTable::default();
        let mut current: Option<LayerCosts> = None;
        for (lno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("layer ") {
                if let Some(l) = current.take() {
                    table.push(l);
                }
                let mut parts = rest.split_whitespace();
                let node: usize = parts
                    .next()
                    .ok_or_else(|| format!("line {}: missing node id", lno + 1))?
                    .parse()
                    .map_err(|e| format!("line {}: bad node id ({e})", lno + 1))?;
                let scenario = parse_scenario(&parts.collect::<Vec<_>>().join(" "))
                    .ok_or_else(|| format!("line {}: bad scenario", lno + 1))?;
                current = Some(LayerCosts { node: node_id(node), scenario, costs: Vec::new() });
            } else {
                let l = current
                    .as_mut()
                    .ok_or_else(|| format!("line {}: cost before any layer", lno + 1))?;
                let mut parts = line.split_whitespace();
                let name = parts
                    .next()
                    .ok_or_else(|| format!("line {}: missing primitive", lno + 1))?
                    .to_owned();
                let cost: f64 = parts
                    .next()
                    .ok_or_else(|| format!("line {}: missing cost", lno + 1))?
                    .parse()
                    .map_err(|e| format!("line {}: bad cost ({e})", lno + 1))?;
                l.costs.push((name, cost));
            }
        }
        if let Some(l) = current.take() {
            table.push(l);
        }
        Ok(table)
    }
}

impl fmt::Display for CostTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text())
    }
}

/// Reconstructs a `NodeId` from its dense index. `NodeId` construction is
/// crate-private in the graph crate; round-tripping through a throwaway
/// graph keeps that encapsulation intact.
fn node_id(index: usize) -> NodeId {
    let mut g = DnnGraph::new();
    for i in 0..=index {
        let id =
            g.add(pbqp_dnn_graph::Layer::new(format!("n{i}"), pbqp_dnn_graph::LayerKind::Relu));
        if i == index {
            return id;
        }
    }
    unreachable!("loop returns at index")
}

/// Parses the `Display` form of [`ConvScenario`]:
/// `C3xH227xW227 K11 s4 p0 M96 [spNNN] [NB]`.
fn parse_scenario(text: &str) -> Option<ConvScenario> {
    let mut c = None;
    let mut h = None;
    let mut w = None;
    let mut k = None;
    let mut stride = None;
    let mut pad = None;
    let mut m = None;
    let mut sp = 0u16;
    let mut batch = 1usize;
    for tok in text.split_whitespace() {
        if let Some(dims) = tok.strip_prefix('C').filter(|t| t.contains('x')) {
            for part in dims.split('x') {
                if let Some(v) = part.strip_prefix('H') {
                    h = v.parse().ok();
                } else if let Some(v) = part.strip_prefix('W') {
                    w = v.parse().ok();
                } else {
                    c = part.parse().ok();
                }
            }
        } else if let Some(v) = tok.strip_prefix("sp") {
            sp = v.parse().ok()?;
        } else if let Some(v) = tok.strip_prefix('K') {
            k = v.parse().ok();
        } else if let Some(v) = tok.strip_prefix('s') {
            stride = v.parse().ok();
        } else if let Some(v) = tok.strip_prefix('p') {
            pad = v.parse().ok();
        } else if let Some(v) = tok.strip_prefix('M') {
            m = v.parse().ok();
        } else if let Some(v) = tok.strip_prefix('N') {
            batch = v.parse().ok()?;
        }
    }
    Some(
        ConvScenario::new(c?, h?, w?, stride?, k?, m?)
            .with_pad(pad?)
            .with_sparsity_pm(sp)
            .with_batch(batch),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AnalyticCost, MachineModel};
    use pbqp_dnn_graph::models;
    use pbqp_dnn_primitives::registry::full_library;

    fn table() -> CostTable {
        let graph = models::alexnet();
        let reg = Registry::new(full_library());
        let cost = AnalyticCost::new(MachineModel::intel_haswell_like(), 1);
        CostTable::profile(&graph, &reg, &cost)
    }

    #[test]
    fn profiles_every_conv_layer_with_many_candidates() {
        let t = table();
        assert_eq!(t.layers().len(), 5);
        for l in t.layers() {
            assert!(l.costs.len() >= 20, "{}: {}", l.scenario, l.costs.len());
            assert!(l.cost_of("sum2d").is_some());
            let (_, best) = l.best();
            assert!(best < l.cost_of("sum2d").unwrap());
        }
    }

    #[test]
    fn text_round_trip_preserves_everything() {
        let t = table();
        let text = t.to_text();
        let back = CostTable::parse(&text).unwrap();
        assert_eq!(back.layers().len(), t.layers().len());
        for (a, b) in t.layers().iter().zip(back.layers()) {
            assert_eq!(a.node, b.node);
            assert_eq!(a.scenario, b.scenario);
            assert_eq!(a.costs.len(), b.costs.len());
            for ((n1, c1), (n2, c2)) in a.costs.iter().zip(&b.costs) {
                assert_eq!(n1, n2);
                assert!((c1 - c2).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(CostTable::parse("  sum2d 5.0\n").is_err());
        assert!(CostTable::parse("layer x C3xH4xW4 K1 s1 p0 M1\n").is_err());
        assert!(CostTable::parse("layer 0 C3xH4xW4 K1 s1 p0 M1\n  sum2d nope\n").is_err());
    }

    #[test]
    fn scenario_display_round_trips_through_parser() {
        let s = ConvScenario::new(3, 227, 227, 4, 11, 96).with_pad(0).with_sparsity_pm(250);
        assert_eq!(parse_scenario(&s.to_string()), Some(s));
        let plain = ConvScenario::new(64, 56, 56, 1, 3, 64);
        assert_eq!(parse_scenario(&plain.to_string()), Some(plain));
    }
}
