//! Cost modelling for primitive selection (§3.1 of the paper).
//!
//! The optimizer needs two kinds of costs:
//!
//! 1. **layer costs** — the execution time of every candidate primitive on
//!    every convolutional scenario in the network;
//! 2. **data-layout transformation (DT) costs** — the time to convert a
//!    tensor between any pair of layouts, including multi-step chains,
//!    obtained as all-pairs shortest paths over the DT graph.
//!
//! Both can come from **measured profiling** on the build host
//! ([`MeasuredCost`], the paper's methodology) or from a deterministic
//! **analytic machine model** ([`AnalyticCost`]) parameterized like the
//! paper's two platforms — an 8-wide-vector large-cache desktop
//! ("Haswell-like") and a 4-wide-vector small-cache embedded core
//! ("Cortex-A57-like"). The machine models are the documented substitution
//! for the paper's physical Intel i5-4570 and NVIDIA TX1 boards; §3.1
//! explicitly allows heuristic costs in place of measurements.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibrate;
pub mod dt;
mod machine;
mod model;
mod observed;
mod profile;
mod table;

pub use calibrate::{host_calibration, Calibration};
pub use dt::{DtGraph, DtPathTable};
pub use machine::MachineModel;
pub use model::AnalyticCost;
pub use observed::{ObservedStat, ObservedTable};
pub use profile::MeasuredCost;
pub use table::{CostSource, CostTable, LayerCosts};
