//! The data-transformation (DT) graph and its all-pairs shortest paths
//! (§3.1 of the paper), extended along the precision axis.
//!
//! Nodes are the supported tensor [`Repr`]s — every layout at f32 plus the
//! quantized int8 layouts; directed edges are the library's direct
//! conversion routines: layout transforms, quantize and dequantize. The
//! edge set is incomplete, so some conversions require chains; the
//! optimizer needs both the least cost of every pair (for PBQP edge
//! matrices) and the realizing chain (for legalization). Where no path
//! exists the cost is infinite.

use pbqp_dnn_tensor::transform::{repr_transforms, DirectTransform, ReprTransform};
use pbqp_dnn_tensor::{DType, Repr};

/// The DT graph: a set of direct transformation routines over [`Repr`]s.
///
/// # Example
///
/// ```
/// use pbqp_dnn_cost::DtGraph;
/// use pbqp_dnn_tensor::{Layout, Repr};
///
/// let dt = DtGraph::standard();
/// let table = dt.shortest_paths(|_t| 1.0); // unit edge costs
/// // WCH → CHW has no direct routine but a 3-hop chain exists.
/// let (wch, chw) = (Repr::f32(Layout::Wch), Repr::f32(Layout::Chw));
/// assert_eq!(table.cost(wch, chw), 3.0);
/// assert_eq!(table.path(wch, chw).unwrap().len(), 3);
/// // Entering the int8 subgraph is one quantize edge.
/// assert_eq!(table.cost(chw, Repr::i8(Layout::Chw)), 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct DtGraph {
    edges: Vec<ReprTransform>,
}

impl DtGraph {
    /// The DT graph induced by the tensor crate's shipped routines:
    /// every f32 layout transform plus the quantize/dequantize and int8
    /// layout edges.
    pub fn standard() -> DtGraph {
        DtGraph { edges: repr_transforms() }
    }

    /// A DT graph over an explicit f32 layout edge set (used in tests and
    /// for the §8 multi-library ensembles; no quantized edges).
    pub fn with_edges(edges: Vec<DirectTransform>) -> DtGraph {
        DtGraph { edges: edges.into_iter().map(ReprTransform::Layout).collect() }
    }

    /// A DT graph over an explicit representation edge set.
    pub fn with_repr_edges(edges: Vec<ReprTransform>) -> DtGraph {
        DtGraph { edges }
    }

    /// The direct routines (edges).
    pub fn edges(&self) -> &[ReprTransform] {
        &self.edges
    }

    /// Floyd–Warshall all-pairs shortest paths under a per-edge cost
    /// function (typically a [`crate::CostSource`] evaluated at one tensor
    /// size). Unreachable pairs get infinite cost.
    ///
    /// Layout conversions are exact but quantization is lossy, so routes
    /// between two **f32** representations are structurally forbidden
    /// from detouring through the int8 subgraph — even if a cost source
    /// prices a quantize → i8-hop → dequantize round trip below the f32
    /// permutation (plausible for measured costs on bandwidth-bound
    /// machines, since the i8 hop moves a quarter of the bytes). A plan
    /// never loses precision on an edge unless one of its endpoints
    /// chose an int8 primitive.
    pub fn shortest_paths<F>(&self, mut edge_cost: F) -> DtPathTable
    where
        F: FnMut(ReprTransform) -> f64,
    {
        let n = Repr::ALL.len();
        let lossy: Vec<bool> = Repr::ALL.iter().map(|r| r.dtype != DType::F32).collect();
        let mut cost = vec![vec![f64::INFINITY; n]; n];
        let mut via: Vec<Vec<Option<ReprTransform>>> = vec![vec![None; n]; n];
        for (i, row) in cost.iter_mut().enumerate() {
            row[i] = 0.0;
        }
        for &t in &self.edges {
            let (i, j) = (t.from().index(), t.to().index());
            let c = edge_cost(t);
            if c < cost[i][j] {
                cost[i][j] = c;
                via[i][j] = Some(t);
            }
        }
        // via[i][j] holds the FIRST hop on the best i→j path. Skipping
        // int8 intermediates for f32→f32 pairs inside the relaxation
        // keeps the table self-consistent: any f32→f32 sub-leg of a
        // longer route composes the already-restricted entry.
        for k in 0..n {
            for i in 0..n {
                if cost[i][k] == f64::INFINITY {
                    continue;
                }
                for j in 0..n {
                    if lossy[k] && !lossy[i] && !lossy[j] {
                        continue;
                    }
                    let through = cost[i][k] + cost[k][j];
                    if through < cost[i][j] {
                        cost[i][j] = through;
                        via[i][j] = via[i][k];
                    }
                }
            }
        }
        DtPathTable { cost, via }
    }
}

impl Default for DtGraph {
    fn default() -> Self {
        DtGraph::standard()
    }
}

/// All-pairs shortest-path result over the DT graph: costs for PBQP edge
/// matrices and first-hop pointers for chain reconstruction.
#[derive(Debug, Clone)]
pub struct DtPathTable {
    cost: Vec<Vec<f64>>,
    via: Vec<Vec<Option<ReprTransform>>>,
}

impl DtPathTable {
    /// Least-cost conversion from `from` to `to` (0 for identity, infinite
    /// when unreachable).
    pub fn cost(&self, from: Repr, to: Repr) -> f64 {
        self.cost[from.index()][to.index()]
    }

    /// The chain of direct routines realizing the least-cost conversion.
    /// Empty for the identity; `None` when unreachable.
    pub fn path(&self, from: Repr, to: Repr) -> Option<Vec<ReprTransform>> {
        if from == to {
            return Some(Vec::new());
        }
        if self.cost(from, to) == f64::INFINITY {
            return None;
        }
        let mut chain = Vec::new();
        let mut cur = from;
        while cur != to {
            let hop = self.via[cur.index()][to.index()]?;
            chain.push(hop);
            cur = hop.to();
            if chain.len() > Repr::ALL.len() {
                return None; // corrupt table; avoid looping forever
            }
        }
        Some(chain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbqp_dnn_tensor::transform::DIRECT_TRANSFORMS;
    use pbqp_dnn_tensor::Layout;

    fn f(l: Layout) -> Repr {
        Repr::f32(l)
    }

    #[test]
    fn identity_is_free_and_direct_edges_cost_their_edge() {
        let dt = DtGraph::standard();
        let t = dt.shortest_paths(|_| 2.0);
        for &r in &Repr::ALL {
            assert_eq!(t.cost(r, r), 0.0);
            assert_eq!(t.path(r, r).unwrap().len(), 0);
        }
        assert_eq!(t.cost(f(Layout::Chw), f(Layout::Hwc)), 2.0);
        assert_eq!(t.path(f(Layout::Chw), f(Layout::Hwc)).unwrap().len(), 1);
        assert_eq!(t.cost(f(Layout::Chw), Repr::i8(Layout::Chw)), 2.0);
    }

    #[test]
    fn standard_graph_is_strongly_connected_over_reprs() {
        let dt = DtGraph::standard();
        let t = dt.shortest_paths(|_| 1.0);
        for &a in &Repr::ALL {
            for &b in &Repr::ALL {
                assert!(t.cost(a, b).is_finite(), "{a} -> {b} unreachable");
            }
        }
    }

    #[test]
    fn chains_are_consistent_with_costs() {
        let dt = DtGraph::standard();
        let weight = |tr: ReprTransform| (tr.from().index() + 2 * tr.to().index() + 1) as f64;
        let t = dt.shortest_paths(weight);
        for &a in &Repr::ALL {
            for &b in &Repr::ALL {
                let chain = t.path(a, b).unwrap();
                let sum: f64 = chain.iter().map(|&tr| weight(tr)).sum();
                assert!((sum - t.cost(a, b)).abs() < 1e-9, "{a}->{b}");
                // Chain endpoints must line up.
                let mut cur = a;
                for hop in &chain {
                    assert_eq!(hop.from(), cur);
                    cur = hop.to();
                }
                assert_eq!(cur, b);
            }
        }
    }

    #[test]
    fn missing_routes_are_infinite() {
        // A graph with a single edge: most pairs unreachable.
        let only = DIRECT_TRANSFORMS[0];
        let dt = DtGraph::with_edges(vec![only]);
        let t = dt.shortest_paths(|_| 1.0);
        assert!(t.cost(f(only.from), f(only.to)).is_finite());
        assert_eq!(t.cost(f(only.to), f(only.from)), f64::INFINITY);
        assert!(t.path(f(only.to), f(only.from)).is_none());
        // Without quantize edges the int8 subgraph is unreachable.
        assert_eq!(t.cost(f(only.from), Repr::i8(Layout::Chw)), f64::INFINITY);
    }

    #[test]
    fn indirect_paths_beat_expensive_direct_edges() {
        // Make the direct CHW→HWC routine absurdly expensive: the solver
        // should route CHW→HCW→HWC instead.
        let dt = DtGraph::standard();
        let t = dt.shortest_paths(|tr| {
            if matches!(tr, ReprTransform::Layout(d) if d.name == "chw_to_hwc") {
                100.0
            } else {
                1.0
            }
        });
        assert_eq!(t.cost(f(Layout::Chw), f(Layout::Hwc)), 2.0);
        let chain = t.path(f(Layout::Chw), f(Layout::Hwc)).unwrap();
        assert_eq!(chain.len(), 2);
    }

    #[test]
    fn f32_routes_never_detour_through_the_lossy_int8_subgraph() {
        // Quantize→dequantize is lossy, so the exclusion is structural —
        // it must hold even under an adversarial cost source that prices
        // the int8 round trip far below any f32 permutation (plausible
        // for measured costs: the i8 hop moves a quarter of the bytes).
        let dt = DtGraph::standard();
        let adversarial = |tr: ReprTransform| match tr {
            ReprTransform::Layout(_) => 100.0,
            _ => 0.01, // quantize/dequantize/i8 hops nearly free
        };
        for t in [dt.shortest_paths(|_| 1.0), dt.shortest_paths(adversarial)] {
            for &a in &Repr::ALL {
                for &b in &Repr::ALL {
                    if a.dtype != DType::F32 || b.dtype != DType::F32 {
                        continue;
                    }
                    let chain = t.path(a, b).unwrap();
                    for hop in &chain {
                        assert_eq!(
                            hop.to().dtype,
                            DType::F32,
                            "f32 route {a}->{b} detours through {}",
                            hop.to()
                        );
                    }
                }
            }
        }
        // Mixed-endpoint routes still work and chains still sum to costs
        // under the adversarial pricing.
        let t = dt.shortest_paths(adversarial);
        for &a in &Repr::ALL {
            for &b in &Repr::ALL {
                let chain = t.path(a, b).unwrap();
                let sum: f64 = chain.iter().map(|&h| adversarial(h)).sum();
                assert!((sum - t.cost(a, b)).abs() < 1e-9, "{a}->{b}");
            }
        }
    }
}
