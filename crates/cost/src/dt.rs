//! The data-layout transformation (DT) graph and its all-pairs shortest
//! paths (§3.1 of the paper).
//!
//! Nodes are the supported [`Layout`]s; directed edges are the library's
//! direct transformation routines. The edge set is incomplete, so some
//! conversions require chains; the optimizer needs both the least cost of
//! every pair (for PBQP edge matrices) and the realizing chain (for
//! legalization). Where no path exists the cost is infinite.

use pbqp_dnn_tensor::transform::{DirectTransform, DIRECT_TRANSFORMS};
use pbqp_dnn_tensor::Layout;

/// The DT graph: a set of direct transformation routines.
///
/// # Example
///
/// ```
/// use pbqp_dnn_cost::DtGraph;
/// use pbqp_dnn_tensor::Layout;
///
/// let dt = DtGraph::standard();
/// let table = dt.shortest_paths(|_t| 1.0); // unit edge costs
/// // WCH → CHW has no direct routine but a 3-hop chain exists.
/// assert_eq!(table.cost(Layout::Wch, Layout::Chw), 3.0);
/// assert_eq!(table.path(Layout::Wch, Layout::Chw).unwrap().len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct DtGraph {
    edges: Vec<DirectTransform>,
}

impl DtGraph {
    /// The DT graph induced by the tensor crate's shipped routines.
    pub fn standard() -> DtGraph {
        DtGraph { edges: DIRECT_TRANSFORMS.to_vec() }
    }

    /// A DT graph over an explicit edge set (used in tests and for the §8
    /// multi-library ensembles).
    pub fn with_edges(edges: Vec<DirectTransform>) -> DtGraph {
        DtGraph { edges }
    }

    /// The direct routines (edges).
    pub fn edges(&self) -> &[DirectTransform] {
        &self.edges
    }

    /// Floyd–Warshall all-pairs shortest paths under a per-edge cost
    /// function (typically a [`crate::CostSource`] evaluated at one tensor
    /// size). Unreachable pairs get infinite cost.
    pub fn shortest_paths<F>(&self, mut edge_cost: F) -> DtPathTable
    where
        F: FnMut(DirectTransform) -> f64,
    {
        let n = Layout::ALL.len();
        let mut cost = vec![vec![f64::INFINITY; n]; n];
        let mut via: Vec<Vec<Option<DirectTransform>>> = vec![vec![None; n]; n];
        for (i, row) in cost.iter_mut().enumerate() {
            row[i] = 0.0;
        }
        for &t in &self.edges {
            let (i, j) = (t.from.index(), t.to.index());
            let c = edge_cost(t);
            if c < cost[i][j] {
                cost[i][j] = c;
                via[i][j] = Some(t);
            }
        }
        // via[i][j] holds the FIRST hop on the best i→j path.
        for k in 0..n {
            for i in 0..n {
                if cost[i][k] == f64::INFINITY {
                    continue;
                }
                for j in 0..n {
                    let through = cost[i][k] + cost[k][j];
                    if through < cost[i][j] {
                        cost[i][j] = through;
                        via[i][j] = via[i][k];
                    }
                }
            }
        }
        DtPathTable { cost, via }
    }
}

impl Default for DtGraph {
    fn default() -> Self {
        DtGraph::standard()
    }
}

/// All-pairs shortest-path result over the DT graph: costs for PBQP edge
/// matrices and first-hop pointers for chain reconstruction.
#[derive(Debug, Clone)]
pub struct DtPathTable {
    cost: Vec<Vec<f64>>,
    via: Vec<Vec<Option<DirectTransform>>>,
}

impl DtPathTable {
    /// Least-cost conversion from `from` to `to` (0 for identity, infinite
    /// when unreachable).
    pub fn cost(&self, from: Layout, to: Layout) -> f64 {
        self.cost[from.index()][to.index()]
    }

    /// The chain of direct routines realizing the least-cost conversion.
    /// Empty for the identity; `None` when unreachable.
    pub fn path(&self, from: Layout, to: Layout) -> Option<Vec<DirectTransform>> {
        if from == to {
            return Some(Vec::new());
        }
        if self.cost(from, to) == f64::INFINITY {
            return None;
        }
        let mut chain = Vec::new();
        let mut cur = from;
        while cur != to {
            let hop = self.via[cur.index()][to.index()]?;
            chain.push(hop);
            cur = hop.to;
            if chain.len() > Layout::ALL.len() {
                return None; // corrupt table; avoid looping forever
            }
        }
        Some(chain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_free_and_direct_edges_cost_their_edge() {
        let dt = DtGraph::standard();
        let t = dt.shortest_paths(|_| 2.0);
        for &l in &Layout::ALL {
            assert_eq!(t.cost(l, l), 0.0);
            assert_eq!(t.path(l, l).unwrap().len(), 0);
        }
        assert_eq!(t.cost(Layout::Chw, Layout::Hwc), 2.0);
        assert_eq!(t.path(Layout::Chw, Layout::Hwc).unwrap().len(), 1);
    }

    #[test]
    fn standard_graph_is_strongly_connected() {
        let dt = DtGraph::standard();
        let t = dt.shortest_paths(|_| 1.0);
        for &a in &Layout::ALL {
            for &b in &Layout::ALL {
                assert!(t.cost(a, b).is_finite(), "{a} -> {b} unreachable");
            }
        }
    }

    #[test]
    fn chains_are_consistent_with_costs() {
        let dt = DtGraph::standard();
        let t = dt.shortest_paths(|tr| (tr.from.index() + 2 * tr.to.index() + 1) as f64);
        for &a in &Layout::ALL {
            for &b in &Layout::ALL {
                let chain = t.path(a, b).unwrap();
                let sum: f64 =
                    chain.iter().map(|tr| (tr.from.index() + 2 * tr.to.index() + 1) as f64).sum();
                assert!((sum - t.cost(a, b)).abs() < 1e-9, "{a}->{b}");
                // Chain endpoints must line up.
                let mut cur = a;
                for hop in &chain {
                    assert_eq!(hop.from, cur);
                    cur = hop.to;
                }
                assert_eq!(cur, b);
            }
        }
    }

    #[test]
    fn missing_routes_are_infinite() {
        // A graph with a single edge: most pairs unreachable.
        let only = DIRECT_TRANSFORMS[0];
        let dt = DtGraph::with_edges(vec![only]);
        let t = dt.shortest_paths(|_| 1.0);
        assert!(t.cost(only.from, only.to).is_finite());
        assert_eq!(t.cost(only.to, only.from), f64::INFINITY);
        assert!(t.path(only.to, only.from).is_none());
    }

    #[test]
    fn indirect_paths_beat_expensive_direct_edges() {
        // Make the direct CHW→HWC routine absurdly expensive: the solver
        // should route CHW→HCW→HWC instead.
        let dt = DtGraph::standard();
        let t = dt.shortest_paths(|tr| if tr.name == "chw_to_hwc" { 100.0 } else { 1.0 });
        assert_eq!(t.cost(Layout::Chw, Layout::Hwc), 2.0);
        let chain = t.path(Layout::Chw, Layout::Hwc).unwrap();
        assert_eq!(chain.len(), 2);
    }
}
