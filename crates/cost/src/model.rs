use pbqp_dnn_graph::{ConvScenario, OpClass};
use pbqp_dnn_primitives::{AlgoHint, ConvAlgorithm, OpKernel, OpSpec};
use pbqp_dnn_tensor::transform::ReprTransform;
use pbqp_dnn_tensor::DType;

use crate::table::CostSource;
use crate::MachineModel;

/// Deterministic analytic cost model.
///
/// Estimates the execution time of a primitive on a scenario from the
/// primitive's [`AlgoHint`] and a [`MachineModel`] using a roofline-style
/// `max(compute, memory)` formulation:
///
/// * **compute** — algorithm-adjusted FLOPs (Winograd/FFT multiplication
///   reduction, sparse density scaling, transform overheads) divided by the
///   machine's attainable throughput for the primitive's vector factor and
///   locality quality;
/// * **memory** — bytes streamed through the hierarchy, inflated when the
///   working set spills the last-level cache — this term is what makes the
///   small-cache machine prefer the paper's 1-D Winograd variants while the
///   large-cache machine picks the 2-D ones (§4).
///
/// A ±3 % deterministic jitter (hashed from machine, primitive and
/// scenario) stands in for measurement noise so ties break stably.
///
/// # Example
///
/// ```
/// use pbqp_dnn_cost::{AnalyticCost, CostSource, MachineModel};
/// use pbqp_dnn_graph::ConvScenario;
/// use pbqp_dnn_primitives::registry::{full_library, Registry};
///
/// let reg = Registry::new(full_library());
/// let cost = AnalyticCost::new(MachineModel::intel_haswell_like(), 1);
/// let s = ConvScenario::new(64, 56, 56, 1, 3, 64);
/// let sum2d = cost.layer_cost(reg.by_name("sum2d").unwrap().as_ref(), &s);
/// let wino = cost.layer_cost(reg.by_name("wino2d_f43_vf8").unwrap().as_ref(), &s);
/// assert!(wino < sum2d / 4.0, "winograd must beat the baseline easily");
/// ```
#[derive(Debug, Clone)]
pub struct AnalyticCost {
    machine: MachineModel,
    threads: usize,
}

impl AnalyticCost {
    /// Creates a model for `machine` with a fixed thread count.
    pub fn new(machine: MachineModel, threads: usize) -> AnalyticCost {
        AnalyticCost { machine, threads: threads.max(1) }
    }

    /// The modelled machine.
    pub fn machine(&self) -> &MachineModel {
        &self.machine
    }

    /// The modelled thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Effective FLOPs and "quality × lanes" throughput fraction for one
    /// primitive/scenario pair.
    fn compute_terms(&self, prim: &dyn ConvAlgorithm, s: &ConvScenario) -> (f64, f64) {
        let d = prim.descriptor();
        let vw = self.machine.vector_width;
        let base = s.flops() as f64;
        // Lane efficiency: matching the machine's width is ideal; narrower
        // vectors waste lanes; wider-than-machine vectors spill registers.
        // Calibrated so that absolute times land near the paper's
        // Tables 2/3: vectorization buys ~2x on a well-matched width
        // (real conv kernels sustain nowhere near lane-count scaling).
        let lane_eff = |vf: usize| -> f64 {
            let vf = vf.max(1);
            if vf == 1 {
                1.0
            } else if vf == vw {
                0.30 * vw as f64
            } else if vf < vw {
                0.28 * vf as f64
            } else {
                0.12 * vw as f64
            }
        };
        // Int8 arithmetic packs more lanes per vector: the machine's
        // measured speedup applies on top of the algorithm's f32 quality
        // (requantization overhead is folded into the factor).
        let dtype_boost = if d.input_dtype == DType::I8 { self.machine.int8_speedup } else { 1.0 };
        match d.hint {
            AlgoHint::Plain => (base, 0.25 * dtype_boost),
            AlgoHint::Loops { quality } => {
                (base, quality * lane_eff(d.vector_factor as usize) * dtype_boost)
            }
            AlgoHint::Gemm { efficiency, calls: _ } => {
                // GEMM kernels vectorize for whatever machine they run on
                // (the paper's OpenBLAS role).
                let patch_overhead = 1.0 + (s.k * s.k) as f64 * 0.002;
                // Interleaved-layout patch construction (im2row over HWC)
                // streams channel runs contiguously, while planar im2col
                // gathers K² strided rows per channel — the reason the
                // paper's Figure 4 selects im2row for AlexNet conv1.
                let gather =
                    if d.input_layout == pbqp_dnn_tensor::Layout::Hwc { 1.08 } else { 1.0 };
                (
                    base * patch_overhead,
                    efficiency
                        * gather
                        * 0.4
                        * self.machine.blas_efficiency
                        * vw as f64
                        * dtype_boost,
                )
            }
            AlgoHint::Winograd { m, r, two_d } => {
                let n = (m + r - 1) as f64;
                let (mf, rf) = (m as f64, r as f64);
                let (oh, ow) = (s.out_h() as f64, s.out_w() as f64);
                let (cc, mm) = (s.c as f64, s.m as f64);
                let flops = if two_d {
                    let tiles = (oh / mf).ceil() * (ow / mf).ceil();
                    let mult = base * (n * n) / (mf * mf * rf * rf);
                    let data_tf = tiles * cc * 4.0 * n * n * n;
                    let inv_tf = tiles * mm * 4.0 * mf * n * n;
                    mult + data_tf + inv_tf
                } else {
                    let tiles = oh * (ow / mf).ceil();
                    let mult = base * n / (mf * rf);
                    let data_tf = tiles * cc * rf * 2.0 * n * n;
                    let inv_tf = tiles * mm * 2.0 * mf * n;
                    mult + data_tf + inv_tf
                };
                // Larger tiles have worse constants (more adds per mult).
                let mut quality = if m >= 6 { 0.48 } else { 0.62 };
                // Channel-blocked inputs give the tile transforms aligned,
                // unit-stride vector loads; planar CHW gathers K strided
                // rows per channel.
                if d.input_layout.is_blocked()
                    && d.input_layout.channel_block() == d.vector_factor as usize
                {
                    quality *= 1.2;
                }
                (flops, quality * lane_eff(d.vector_factor as usize))
            }
            AlgoHint::Fft { two_d, bluestein } => {
                let (oh, _ow) = (s.out_h() as f64, s.out_w() as f64);
                let (cc, mm, kk) = (s.c as f64, s.m as f64, s.k as f64);
                let flops = if two_d {
                    let n = ((s.h + s.k - 1).max(s.w + s.k - 1).next_power_of_two()) as f64;
                    let lg = n.log2().max(1.0) * 2.0;
                    let transforms = (cc + cc * mm.min(8.0) + mm) * 5.0 * n * n * lg;
                    let acc = mm * cc * n * n * 8.0;
                    transforms + acc
                } else {
                    let n = if bluestein {
                        3.0 * (s.w + s.k - 1) as f64
                    } else {
                        ((s.w + s.k - 1).next_power_of_two()) as f64
                    };
                    let lg = (s.w as f64).log2().max(1.0);
                    let rows = cc * s.h as f64 + cc * mm * kk + mm * oh;
                    let transforms = rows * 5.0 * n * lg;
                    let acc = mm * cc * kk * oh * n * 8.0;
                    transforms + acc
                };
                (flops, 0.35 * 0.25 * vw as f64)
            }
            AlgoHint::Sparse => {
                let density = (1.0 - s.sparsity()).max(0.05);
                // CSR traversal is irregular: scalar-ish throughput plus a
                // build pass over the kernel.
                (base * density + s.kernel_len() as f64 * 2.0, 0.30)
            }
        }
    }

    /// Bytes streamed for one execution, including cache-spill inflation.
    /// Element sizes follow the primitive's dtypes: int8 layers move a
    /// quarter of the activation and weight bytes — the "bytes moved"
    /// half of the mixed-precision win.
    fn memory_bytes(&self, prim: &dyn ConvAlgorithm, s: &ConvScenario) -> f64 {
        let d = prim.descriptor();
        let ws = prim.workspace_elems(s) as f64 * 4.0;
        let io = s.input_len() as f64 * d.input_dtype.bytes() as f64
            + s.output_len() as f64 * d.output_dtype.bytes() as f64
            + s.kernel_len() as f64 * d.input_dtype.bytes() as f64;
        let working_set = ws + io;
        let llc = self.machine.llc_bytes as f64;
        // Workspace is written once and read back at least once; when the
        // working set spills the LLC every reuse pass re-fetches from DRAM,
        // so traffic grows with the spill ratio. This term is what makes
        // the 2-D Winograd variants (M·C·n² transformed kernels) lose to
        // the 1-D ones on the small-cache machine for big layers (§4).
        let spill = (working_set / llc).min(8.0);
        io * (1.0 + 0.1 * spill) + 2.5 * ws * (1.0 + spill)
    }

    /// Deterministic ±3 % jitter.
    fn jitter(&self, name: &str, s: &ConvScenario) -> f64 {
        let mut h = 0xcbf29ce484222325u64;
        for b in self.machine.name.bytes().chain(name.bytes()).chain(format!("{s}").bytes()) {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        1.0 + ((h % 6000) as f64 / 100_000.0) - 0.03
    }
}

impl CostSource for AnalyticCost {
    fn layer_cost(&self, prim: &dyn ConvAlgorithm, s: &ConvScenario) -> f64 {
        let d = prim.descriptor();
        let (flops, qual_lanes) = self.compute_terms(prim, s);
        let t = self.threads.clamp(1, self.machine.cores) as f64;
        let par_eff = 1.0 / (1.0 + 0.08 * (t - 1.0));
        let throughput = self.machine.scalar_peak_flops() * qual_lanes * t * par_eff;
        let compute_us = flops / throughput * 1e6;

        let bytes = self.memory_bytes(prim, s);
        // Bandwidth scales sublinearly with threads.
        let bw = self.machine.bandwidth_gbs * 1e9 * t.sqrt().min(2.0);
        let memory_us = bytes / bw * 1e6;

        let calls = match d.hint {
            AlgoHint::Gemm { calls, .. } => calls.max(1) as f64,
            _ => 1.0,
        };
        let overhead_us = 3.0 + 1.5 * (calls - 1.0);

        (compute_us.max(memory_us) + overhead_us) * self.jitter(&d.name, s)
    }

    /// Roofline pricing for the non-conv operator kernels: streamed bytes
    /// against the machine bandwidth vs per-element work against the
    /// pointwise throughput, whichever binds. Deliberately
    /// layout-independent — these loops stream whatever permutation they
    /// are given — so for a single-precision registry every candidate of
    /// an op node ties and selection behaves exactly like the paper's
    /// zero-cost dummies; with int8 kernels in the registry the 4× byte
    /// saving (plus the packed-compare speedup) is what lets a quantized
    /// island cross ReLU and pooling layers instead of paying a
    /// dequant/requant round trip.
    fn op_cost(&self, kernel: &dyn OpKernel, spec: &OpSpec) -> f64 {
        let d = kernel.descriptor();
        if !d.class.is_costed() {
            // Single-precision parameterized layers (LRN, FC, softmax,
            // dropout) have no alternative to weigh; see
            // `OpClass::is_costed`.
            return 0.0;
        }
        let work_per_out_elem = match d.class {
            OpClass::MaxPool | OpClass::AvgPool => (spec.window.0 * spec.window.0) as f64,
            OpClass::Add => spec.inputs.len() as f64,
            _ => 1.0,
        };
        let int8 =
            if d.input_dtype == DType::I8 { self.machine.int8_pointwise_speedup } else { 1.0 };
        let elems_out = spec.out_elems() as f64;
        let compute_us = elems_out * work_per_out_elem
            / (self.machine.freq_ghz * 1e9 * self.machine.pointwise_elems_per_cycle * int8)
            * 1e6;
        let bytes = spec.in_elems() as f64 * d.input_dtype.bytes() as f64
            + elems_out * d.output_dtype.bytes() as f64;
        let memory_us = bytes / (self.machine.bandwidth_gbs * 1e9) * 1e6;
        compute_us.max(memory_us) + 0.5
    }

    fn transform_cost(&self, t: ReprTransform, dims: (usize, usize, usize)) -> f64 {
        let elems = (dims.0 * dims.1 * dims.2) as f64;
        // Throughput class and bytes moved per element, by edge kind:
        // specialized f32 loops (planar↔interleaved, pack/unpack) stream
        // well, generic permutations stride badly on one side; quantize
        // pays a range-calibration scan on top of the convert pass;
        // int8 permutations move a quarter of the bytes.
        let (elems_per_cycle, bytes_per_elem) = match t {
            ReprTransform::Layout(d) => match d.name {
                "chw_to_hwc" | "hwc_to_chw" | "pack_c4" | "unpack_c4" | "pack_c8" | "unpack_c8" => {
                    (2.0, 8.0)
                }
                _ => (0.75, 8.0),
            },
            ReprTransform::LayoutI8(_) => (0.75, 2.0),
            ReprTransform::Quantize(_) => (0.8, 6.0),
            ReprTransform::Dequantize(_) => (1.5, 5.0),
        };
        let compute_us = elems / (self.machine.freq_ghz * 1e9 * elems_per_cycle) * 1e6;
        let memory_us = elems * bytes_per_elem / (self.machine.bandwidth_gbs * 1e9) * 1e6;
        compute_us.max(memory_us) + 2.0
    }

    /// The analytic model is a pure function of the machine parameters and
    /// thread count, so those spell the whole key. All fields participate:
    /// a custom model reusing a preset's name must not collide with it.
    fn cache_key(&self) -> String {
        let m = &self.machine;
        format!(
            "analytic:{}:v{}c{}f{}l{}b{}fma{}e{}q{}pw{}qpw{}:t{}",
            m.name,
            m.vector_width,
            m.cores,
            m.freq_ghz,
            m.llc_bytes,
            m.bandwidth_gbs,
            m.fma_per_cycle,
            m.blas_efficiency,
            m.int8_speedup,
            m.pointwise_elems_per_cycle,
            m.int8_pointwise_speedup,
            self.threads,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbqp_dnn_primitives::registry::{full_library, Registry};
    use pbqp_dnn_tensor::transform::DIRECT_TRANSFORMS;

    fn reg() -> Registry {
        Registry::new(full_library())
    }

    fn cost_of(reg: &Registry, cost: &AnalyticCost, name: &str, s: &ConvScenario) -> f64 {
        cost.layer_cost(reg.by_name(name).unwrap().as_ref(), s)
    }

    #[test]
    fn costs_are_positive_finite_and_deterministic() {
        let reg = reg();
        let cost = AnalyticCost::new(MachineModel::intel_haswell_like(), 1);
        let s = ConvScenario::new(64, 56, 56, 1, 3, 64);
        for p in reg.candidates(&s) {
            let a = cost.layer_cost(p.as_ref(), &s);
            let b = cost.layer_cost(p.as_ref(), &s);
            assert!(a.is_finite() && a > 0.0, "{}", p.descriptor().name);
            assert_eq!(a, b, "{}", p.descriptor().name);
        }
    }

    #[test]
    fn packed_gemm_beats_naive_gemm() {
        let reg = reg();
        let cost = AnalyticCost::new(MachineModel::intel_haswell_like(), 1);
        let s = ConvScenario::new(96, 27, 27, 1, 5, 256);
        assert!(
            cost_of(&reg, &cost, "im2col_packed_nn", &s)
                < cost_of(&reg, &cost, "im2col_naive_nn", &s) / 3.0
        );
    }

    #[test]
    fn winograd_wins_k3_on_the_wide_machine() {
        let reg = reg();
        let cost = AnalyticCost::new(MachineModel::intel_haswell_like(), 1);
        let s = ConvScenario::new(256, 13, 13, 1, 3, 384); // AlexNet conv3
        let best_wino = cost_of(&reg, &cost, "wino2d_f23_vf8", &s);
        let best_im2 = cost_of(&reg, &cost, "im2col_packed_nn", &s);
        assert!(best_wino < best_im2, "wino {best_wino} vs im2 {best_im2}");
    }

    #[test]
    fn small_cache_machine_prefers_one_d_winograd_on_large_layers() {
        let reg = reg();
        let arm = AnalyticCost::new(MachineModel::arm_a57_like(), 4);
        // AlexNet conv3: the F(4,3) 2-D transformed kernels are ~14 MiB and
        // spill the 2 MiB LLC badly; the 1-D form stays compute-bound.
        let s = ConvScenario::new(256, 13, 13, 1, 3, 384);
        let two_d = cost_of(&reg, &arm, "wino2d_f43_vf4", &s);
        let one_d = cost_of(&reg, &arm, "wino1d_f43_vf4", &s);
        assert!(one_d < two_d, "1d {one_d} vs 2d {two_d}");

        // On the big-cache machine, on a layer whose transformed kernels
        // fit, the 2-D form wins (fewer multiplications).
        let fits = ConvScenario::new(64, 56, 56, 1, 3, 64);
        let intel = AnalyticCost::new(MachineModel::intel_haswell_like(), 4);
        let two_d_i = cost_of(&reg, &intel, "wino2d_f43_vf8", &fits);
        let one_d_i = cost_of(&reg, &intel, "wino1d_f43_vf8", &fits);
        assert!(two_d_i < one_d_i, "intel: 2d {two_d_i} vs 1d {one_d_i}");
    }

    #[test]
    fn matching_vector_factor_wins() {
        let reg = reg();
        let s = ConvScenario::new(64, 28, 28, 1, 3, 64);
        let intel = AnalyticCost::new(MachineModel::intel_haswell_like(), 1);
        assert!(
            cost_of(&reg, &intel, "wino2d_f23_vf8", &s)
                < cost_of(&reg, &intel, "wino2d_f23_vf4", &s)
        );
        let arm = AnalyticCost::new(MachineModel::arm_a57_like(), 1);
        assert!(
            cost_of(&reg, &arm, "wino2d_f23_vf4", &s) < cost_of(&reg, &arm, "wino2d_f23_vf8", &s)
        );
    }

    #[test]
    fn sparsity_makes_sparse_routines_competitive() {
        let reg = reg();
        let cost = AnalyticCost::new(MachineModel::intel_haswell_like(), 1);
        let dense = ConvScenario::new(128, 28, 28, 1, 3, 128);
        let sparse = dense.with_sparsity_pm(950);
        let sparse_dense_kernel = cost_of(&reg, &cost, "sparse_im2col_csr", &dense);
        let sparse_sparse_kernel = cost_of(&reg, &cost, "sparse_im2col_csr", &sparse);
        assert!(sparse_sparse_kernel < sparse_dense_kernel / 3.0);
        // At 95% sparsity the sparse routine should beat packed dense GEMM.
        assert!(sparse_sparse_kernel < cost_of(&reg, &cost, "im2col_packed_nn", &sparse));
    }

    #[test]
    fn minibatch_extension_scales_costs_linearly() {
        // §8: minibatching "can be encoded with another integer parameter
        // to the model" — a batch-N scenario costs ~N times batch-1.
        let reg = reg();
        let cost = AnalyticCost::new(MachineModel::intel_haswell_like(), 1);
        let one = ConvScenario::new(64, 28, 28, 1, 3, 64);
        let four = one.with_batch(4);
        let c1 = cost_of(&reg, &cost, "im2col_packed_nn", &one);
        let c4 = cost_of(&reg, &cost, "im2col_packed_nn", &four);
        assert!((3.0..5.0).contains(&(c4 / c1)), "ratio {}", c4 / c1);
    }

    #[test]
    fn multithreading_speeds_things_up_sublinearly() {
        let reg = reg();
        let s = ConvScenario::new(96, 27, 27, 1, 5, 256);
        let one = AnalyticCost::new(MachineModel::intel_haswell_like(), 1);
        let four = AnalyticCost::new(MachineModel::intel_haswell_like(), 4);
        let c1 = cost_of(&reg, &one, "im2col_packed_nn", &s);
        let c4 = cost_of(&reg, &four, "im2col_packed_nn", &s);
        assert!(c4 < c1, "multithreading must help");
        assert!(c4 > c1 / 4.0, "speedup must be sublinear");
    }

    #[test]
    fn transform_costs_scale_with_size_and_favour_specialized_loops() {
        let cost = AnalyticCost::new(MachineModel::intel_haswell_like(), 1);
        let hot = ReprTransform::Layout(
            *DIRECT_TRANSFORMS.iter().find(|t| t.name == "chw_to_hwc").unwrap(),
        );
        let cold = ReprTransform::Layout(
            *DIRECT_TRANSFORMS.iter().find(|t| t.name == "chw_to_hcw").unwrap(),
        );
        let small = cost.transform_cost(hot, (64, 28, 28));
        let big = cost.transform_cost(hot, (256, 56, 56));
        assert!(big > small);
        assert!(cost.transform_cost(cold, (256, 56, 56)) > big);
    }

    #[test]
    fn quantize_edges_are_priced_like_conversions_not_convolutions() {
        use pbqp_dnn_tensor::Layout;
        let cost = AnalyticCost::new(MachineModel::intel_haswell_like(), 1);
        let dims = (96, 27, 27);
        let q = cost.transform_cost(ReprTransform::Quantize(Layout::Chw), dims);
        let dq = cost.transform_cost(ReprTransform::Dequantize(Layout::Chw), dims);
        let layout = cost.transform_cost(
            ReprTransform::Layout(
                *DIRECT_TRANSFORMS.iter().find(|t| t.name == "chw_to_hwc").unwrap(),
            ),
            dims,
        );
        assert!(q > 0.0 && dq > 0.0);
        // Same order of magnitude as a layout pass — cheap relative to a
        // large convolution, so big layers can afford the round trip.
        assert!(q < layout * 20.0 && dq < layout * 20.0);
        let reg = reg();
        let s = ConvScenario::new(96, 27, 27, 1, 5, 256);
        let conv = cost_of(&reg, &cost, "im2col_packed_nn", &s);
        assert!(q + dq < conv / 10.0, "edges {q}+{dq} vs conv {conv}");
    }

    #[test]
    fn op_costs_favour_int8_and_ignore_layout() {
        use pbqp_dnn_graph::{LayerKind, PoolKind};
        use pbqp_dnn_primitives::registry::mixed_precision_library;
        let reg = Registry::new(mixed_precision_library());
        let cost = AnalyticCost::new(MachineModel::arm_a57_like(), 1);
        let relu_spec = pbqp_dnn_primitives::OpSpec::for_layer(
            &LayerKind::Relu,
            vec![(32, 22, 22)],
            (32, 22, 22),
        )
        .unwrap();
        // f32 candidates tie across layouts (so a single-precision
        // registry behaves exactly like the old zero-cost dummies)…
        let chw = cost.op_cost(reg.op_by_name("relu_chw").unwrap().as_ref(), &relu_spec);
        let hwc = cost.op_cost(reg.op_by_name("relu_hwc").unwrap().as_ref(), &relu_spec);
        assert!(chw > 0.0);
        assert_eq!(chw, hwc);
        // …and the int8 kernel undercuts them (4× fewer bytes).
        let q = cost.op_cost(reg.op_by_name("qint8_relu_chw").unwrap().as_ref(), &relu_spec);
        assert!(q < chw, "int8 relu {q} vs f32 {chw}");
        // Pool work scales with the window.
        let pool = LayerKind::Pool { kind: PoolKind::Max, k: 3, stride: 2, pad: 0 };
        let pool_spec =
            pbqp_dnn_primitives::OpSpec::for_layer(&pool, vec![(32, 22, 22)], (32, 11, 11))
                .unwrap();
        let qp = cost.op_cost(reg.op_by_name("qint8_maxpool_chw").unwrap().as_ref(), &pool_spec);
        let fp = cost.op_cost(reg.op_by_name("maxpool_chw").unwrap().as_ref(), &pool_spec);
        assert!(qp > 0.0 && qp < fp);
        // Single-precision parameterized classes stay free in both
        // sources — they have no alternative to weigh.
        let fc_spec = pbqp_dnn_primitives::OpSpec::for_layer(
            &LayerKind::FullyConnected { out: 10 },
            vec![(32, 11, 11)],
            (10, 1, 1),
        )
        .unwrap();
        assert_eq!(cost.op_cost(reg.op_by_name("fc_chw").unwrap().as_ref(), &fc_spec), 0.0);
    }

    #[test]
    fn int8_candidates_undercut_their_f32_counterparts_on_big_layers() {
        use pbqp_dnn_primitives::registry::mixed_precision_library;
        let reg = Registry::new(mixed_precision_library());
        for machine in [MachineModel::intel_haswell_like(), MachineModel::arm_a57_like()] {
            let cost = AnalyticCost::new(machine, 1);
            // A large strided layer (no Winograd/FFT competition).
            let s = ConvScenario::new(96, 27, 27, 1, 5, 256);
            let q = cost_of(&reg, &cost, "qint8_im2col_chw", &s);
            let f = cost_of(&reg, &cost, "im2col_packed_nn", &s);
            assert!(q < f, "{}: int8 {q} vs f32 {f}", cost.machine().name);
        }
    }
}
