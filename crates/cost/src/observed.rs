//! Observed costs from live traffic.
//!
//! The paper's cost tables come from offline profiling on the build
//! host; an [`ObservedTable`] is the *online* equivalent — per
//! `(node, kernel)` latency summaries sampled from production requests
//! (see `pbqp_dnn_runtime::sampler`), accumulated across serving
//! generations so knowledge about a kernel survives the plan that
//! selected it being swapped out.
//!
//! Two consumers:
//!
//! * [`ObservedTable::divergence`] — how far live reality has drifted
//!   from the serving plan's predicted per-node costs, the re-solve
//!   trigger signal;
//! * [`ObservedTable::fold_into`] — overriding a profiled fill table's
//!   entries with observed medians (minimum-sample gated) to build the
//!   table a background PBQP re-solve prices against. Only *seen*
//!   `(node, kernel)` pairs are overridden: live traffic can only
//!   observe the kernels the current plan runs, so unseen candidates
//!   keep their fill costs — the damped half of the
//!   profile→re-solve→swap fixed-point iteration.

use std::collections::HashMap;

use pbqp_dnn_graph::NodeId;

use crate::CostTable;

/// Observed costs never fold in below this (µs): a zero cost would let
/// the solver treat a kernel as free and destabilize the iteration.
const MIN_COST_US: f64 = 1e-6;

/// One `(node, kernel)` pair's live latency summary — cumulative sample
/// count, exponentially-smoothed mean, and median of recent samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObservedStat {
    /// Samples behind this summary.
    pub samples: u64,
    /// Exponentially-smoothed latency, µs.
    pub ema_us: f64,
    /// Median of the most recent samples, µs.
    pub p50_us: f64,
}

impl ObservedStat {
    /// The cost this observation contributes to a table: the median
    /// (robust against scheduler pauses inflating a mean), floored away
    /// from zero.
    pub fn cost_us(&self) -> f64 {
        self.p50_us.max(MIN_COST_US)
    }
}

/// Live latency summaries keyed by `(node, kernel)`, engine-lifetime:
/// re-recording a pair replaces its summary (sampler summaries are
/// cumulative), and pairs from retired serving generations persist
/// until the same pair is observed again.
#[derive(Debug, Clone, Default)]
pub struct ObservedTable {
    entries: HashMap<(usize, String), ObservedStat>,
}

impl ObservedTable {
    /// An empty table.
    pub fn new() -> ObservedTable {
        ObservedTable::default()
    }

    /// Replaces the summary for `(node, kernel)` — summaries are
    /// cumulative, so folding the same sampler repeatedly is idempotent.
    /// Zero-sample summaries are ignored.
    pub fn record(&mut self, node: NodeId, kernel: &str, stat: ObservedStat) {
        if stat.samples == 0 {
            return;
        }
        self.entries.insert((node.index(), kernel.to_owned()), stat);
    }

    /// The summary for `(node, kernel)`, if observed.
    pub fn get(&self, node: NodeId, kernel: &str) -> Option<&ObservedStat> {
        self.entries.get(&(node.index(), kernel.to_owned()))
    }

    /// Number of observed `(node, kernel)` pairs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total samples across all pairs — the autotuner's minimum-sample
    /// trigger gate reads this.
    pub fn total_samples(&self) -> u64 {
        self.entries.values().map(|s| s.samples).sum()
    }

    /// A copy of `base` with every observed `(node, kernel)` entry that
    /// has at least `min_samples` samples overridden by its observed
    /// cost. Unseen candidates keep their fill costs.
    pub fn fold_into(&self, base: &CostTable, min_samples: u64) -> CostTable {
        let mut out = base.clone();
        for layer in base.layers() {
            let node = layer.node;
            for (name, _) in layer.costs.clone() {
                if let Some(stat) = self.entries.get(&(node.index(), name.clone())) {
                    if stat.samples >= min_samples.max(1) {
                        out.set_cost(node, &name, stat.cost_us());
                    }
                }
            }
        }
        out
    }

    /// Mean relative divergence between observed costs and the plan's
    /// predictions, over the plan's selected `(node, kernel, predicted
    /// µs)` entries with at least `min_samples` observations (entries
    /// predicted free are skipped — a relative error against zero is
    /// meaningless). `None` until at least one entry qualifies.
    ///
    /// This is the trigger signal: an analytic plan on a host the model
    /// mis-describes shows large divergence immediately; a plan solved
    /// from observed costs converges toward zero.
    pub fn divergence(&self, predicted: &[(NodeId, String, f64)], min_samples: u64) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0usize;
        for (node, kernel, predicted_us) in predicted {
            if *predicted_us <= 0.0 {
                continue;
            }
            let Some(stat) = self.entries.get(&(node.index(), kernel.clone())) else { continue };
            if stat.samples < min_samples.max(1) {
                continue;
            }
            sum += (stat.cost_us() - predicted_us).abs() / predicted_us;
            n += 1;
        }
        (n > 0).then(|| sum / n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AnalyticCost, MachineModel};
    use pbqp_dnn_graph::models;
    use pbqp_dnn_primitives::registry::{full_library, Registry};

    fn fill() -> (CostTable, Vec<NodeId>) {
        let graph = models::micro_alexnet();
        let reg = Registry::new(full_library());
        let cost = AnalyticCost::new(MachineModel::intel_haswell_like(), 1);
        let table = CostTable::profile(&graph, &reg, &cost);
        let nodes = table.layers().iter().map(|l| l.node).collect();
        (table, nodes)
    }

    fn stat(samples: u64, us: f64) -> ObservedStat {
        ObservedStat { samples, ema_us: us, p50_us: us }
    }

    #[test]
    fn record_replaces_cumulative_summaries() {
        let (_, nodes) = fill();
        let mut obs = ObservedTable::new();
        obs.record(nodes[0], "sum2d", stat(4, 10.0));
        obs.record(nodes[0], "sum2d", stat(9, 12.0));
        assert_eq!(obs.len(), 1);
        assert_eq!(obs.total_samples(), 9);
        assert_eq!(obs.get(nodes[0], "sum2d").unwrap().p50_us, 12.0);
        obs.record(nodes[0], "other", stat(0, 1.0));
        assert_eq!(obs.len(), 1, "zero-sample summaries are ignored");
    }

    #[test]
    fn fold_overrides_only_seen_pairs_past_the_sample_gate() {
        let (base, nodes) = fill();
        let mut obs = ObservedTable::new();
        obs.record(nodes[0], "sum2d", stat(3, 777.0));
        obs.record(nodes[1], "sum2d", stat(100, 555.0));

        let folded = obs.fold_into(&base, 10);
        let row0 = folded.for_node(nodes[0]).unwrap();
        let row1 = folded.for_node(nodes[1]).unwrap();
        let base0 = base.for_node(nodes[0]).unwrap();
        assert_eq!(
            row0.cost_of("sum2d"),
            base0.cost_of("sum2d"),
            "under the sample gate the fill cost survives"
        );
        assert_eq!(row1.cost_of("sum2d"), Some(555.0));
        // Unseen candidates keep their fill costs.
        let (best, _) = base.for_node(nodes[1]).unwrap().best();
        if best != "sum2d" {
            assert_eq!(row1.cost_of(best), base.for_node(nodes[1]).unwrap().cost_of(best));
        }
    }

    #[test]
    fn divergence_measures_relative_drift_over_covered_selections() {
        let (_, nodes) = fill();
        let mut obs = ObservedTable::new();
        assert_eq!(obs.divergence(&[(nodes[0], "sum2d".into(), 10.0)], 1), None);

        obs.record(nodes[0], "sum2d", stat(50, 20.0));
        obs.record(nodes[1], "sum2d", stat(50, 10.0));
        let predicted = vec![
            (nodes[0], String::from("sum2d"), 10.0),  // 100% off
            (nodes[1], String::from("sum2d"), 10.0),  // exact
            (nodes[1], String::from("unseen"), 10.0), // not covered
        ];
        let d = obs.divergence(&predicted, 1).unwrap();
        assert!((d - 0.5).abs() < 1e-9, "mean of 1.0 and 0.0: {d}");
        assert_eq!(obs.divergence(&predicted, 51), None, "sample gate applies per pair");
    }

    #[test]
    fn observed_costs_never_fold_in_at_zero() {
        assert!(stat(5, 0.0).cost_us() > 0.0);
    }
}
