//! Per-model batching knobs.

use std::time::Duration;

/// Per-model batching policy: how long a request may wait for company,
/// how much company it may get, and how deep the admission queue runs.
///
/// The three knobs express one SLO trade: a larger
/// [`window`](BatchConfig::window) or [`max_batch`](BatchConfig::max_batch)
/// buys throughput (wider fused GEMMs, fewer per-request overheads) at
/// the price of queuing latency, bounded by the window; a smaller
/// [`queue_cap`](BatchConfig::queue_cap) sheds load earlier instead of
/// letting latency grow without bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Most requests one flush coalesces into a single fused
    /// `infer_batch_into` call. `1` disables batching — every request
    /// flushes alone (the gateway-overhead baseline tier).
    pub max_batch: usize,
    /// How long the first request of a batch waits for more before the
    /// deadline flush fires — the queuing-latency half of the SLO. A
    /// full batch flushes early without waiting the window out.
    pub window: Duration,
    /// Admission bound: requests beyond this many waiting are rejected
    /// with [`GatewayError::Overloaded`](crate::GatewayError::Overloaded)
    /// instead of queued (backpressure, not buffering).
    pub queue_cap: usize,
}

impl BatchConfig {
    /// The defaults: batches of up to 4, a 500 µs window, 64 queued.
    pub fn new() -> BatchConfig {
        BatchConfig { max_batch: 4, window: Duration::from_micros(500), queue_cap: 64 }
    }

    /// Replaces the batch-size cap (clamped to at least 1).
    pub fn with_max_batch(mut self, n: usize) -> BatchConfig {
        self.max_batch = n.max(1);
        self
    }

    /// Replaces the batch window.
    pub fn with_window(mut self, window: Duration) -> BatchConfig {
        self.window = window;
        self
    }

    /// Replaces the admission bound (clamped to at least 1). A cap
    /// below `max_batch` simply means batches never fill — deadline
    /// flushes still drain the queue.
    pub fn with_queue_cap(mut self, n: usize) -> BatchConfig {
        self.queue_cap = n.max(1);
        self
    }
}

impl Default for BatchConfig {
    fn default() -> BatchConfig {
        BatchConfig::new()
    }
}
