//! Adaptive cross-request batching gateway: multi-tenant serving with
//! SLO-bounded dynamic batches.
//!
//! A [`Gateway`] owns a fleet of serving engines behind a model registry
//! keyed by artifact fingerprint. Callers [`submit`](Gateway::submit)
//! single requests and the gateway **coalesces compatible requests into
//! dynamic batches**, flushed through the fused batch execution path
//! (`Session::infer_batch_into` — all items' im2col patch matrices
//! stacked into one wide GEMM), which is where cross-request batching
//! beats per-request serving on throughput. Coalescing is bounded by a
//! per-model SLO ([`BatchConfig`]): a batch flushes **early** the moment
//! it reaches `max_batch`, and **by deadline** when the first request's
//! batch window expires, so no request waits longer than the window for
//! company. Admission is bounded too: past `queue_cap` waiting requests,
//! submits are rejected with [`GatewayError::Overloaded`] — backpressure,
//! not unbounded buffering.
//!
//! Everything is built on std threads (no async runtime): a worker pool
//! parks on a condvar'd job queue, and a dedicated timer thread drains a
//! monotonic-clock deadline wheel. The timer thread only *enqueues*
//! flush jobs — inference never runs on it, so a slow flush blocks one
//! worker, never the wheel.
//!
//! # Hot swap
//!
//! Re-registering a model under an existing fingerprint atomically
//! replaces the serving engine and bumps the model's **generation**.
//! Every request is stamped with the generation current at admission and
//! holds its version alive; a flush drains a maximal same-generation run,
//! so batches never mix generations and in-flight requests are served —
//! bit-exactly — by the engine that admitted them. Zero requests are
//! dropped or double-served across a swap.
//!
//! # Observability
//!
//! [`Gateway::stats`] reports per-model admission/rejection/serve
//! counters, flush-cause attribution, an honest batch-size histogram and
//! exact p50/p99 latency; [`Gateway::health`] passes through the serving
//! engine's fault-containment vitals. The `gateway.flush` failpoint
//! ([`pbqp_dnn::faults`]) injects delays/errors/panics into the flush
//! path for chaos testing.
//!
//! # Example
//!
//! ```
//! use pbqp_dnn::prelude::*;
//! use pbqp_dnn_gateway::{BatchConfig, Gateway};
//! use std::time::Duration;
//!
//! let net = models::micro_alexnet();
//! let weights = Weights::random(&net, 42);
//! let model = Compiler::new(CompileOptions::new()).compile(&net, &weights).unwrap();
//!
//! let gateway = Gateway::new();
//! let fp = gateway.register_with(
//!     &model,
//!     BatchConfig::new().with_max_batch(4).with_window(Duration::from_micros(200)),
//! );
//!
//! // Submit a burst; the gateway coalesces them into fused batches.
//! let (c, h, w) = net.infer_shapes().unwrap()[0];
//! let inputs: Vec<Tensor> =
//!     (0..4).map(|i| Tensor::random(c, h, w, Layout::Chw, 7 + i)).collect();
//! let tickets: Vec<_> =
//!     inputs.iter().map(|x| gateway.submit(fp, x.clone()).unwrap()).collect();
//!
//! // Await each response: bit-identical to serving the input alone.
//! let engine = model.engine();
//! for (input, ticket) in inputs.iter().zip(tickets) {
//!     let response = ticket.wait().unwrap();
//!     assert_eq!(response.output.data(), engine.infer(input).unwrap().data());
//!     assert_eq!(response.generation, 0);
//! }
//!
//! let stats = gateway.stats(fp).unwrap();
//! assert_eq!(stats.served, 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod error;
mod stats;
mod ticket;
mod timer;

pub use config::BatchConfig;
pub use error::GatewayError;
pub use stats::ModelStats;
pub use ticket::{Response, Ticket};

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock};
use std::thread::JoinHandle;
use std::time::Instant;

use pbqp_dnn::faults;
use pbqp_dnn::tensor::Tensor;
use pbqp_dnn::{CompiledModel, Engine, Health, Session};

use stats::StatsInner;
use ticket::TicketCell;
use timer::Deadlines;

/// One registered engine generation. Requests hold their admitted
/// version alive across a hot-swap, so the swap never drops them.
struct ModelVersion {
    engine: Engine,
    generation: u64,
}

/// A queued request: its input, its completion handle, the version that
/// admitted it, and when — the latency clock starts at admission.
struct PendingRequest {
    input: Tensor,
    cell: Arc<TicketCell>,
    version: Arc<ModelVersion>,
    admitted: Instant,
}

/// One model's admission queue plus the deadline arming sequence. A
/// fired deadline whose seq no longer matches `armed_seq` is stale (its
/// batch already flushed) and is dropped.
struct PendingQueue {
    items: VecDeque<PendingRequest>,
    armed_seq: u64,
}

/// Everything the gateway holds per registered fingerprint.
struct ModelEntry {
    config: BatchConfig,
    pending: Mutex<PendingQueue>,
    current: RwLock<Arc<ModelVersion>>,
    stats: StatsInner,
}

impl ModelEntry {
    fn current_version(&self) -> Arc<ModelVersion> {
        Arc::clone(&self.current.read().unwrap_or_else(|e| e.into_inner()))
    }
}

/// Why a flush job was enqueued — attributed in the stats.
#[derive(Debug, Clone, Copy)]
enum FlushCause {
    Size,
    Deadline,
}

struct Job {
    fingerprint: u64,
    cause: FlushCause,
}

/// State shared by the gateway handle, the worker pool and the timer
/// thread.
struct Inner {
    registry: RwLock<HashMap<u64, Arc<ModelEntry>>>,
    jobs: Mutex<VecDeque<Job>>,
    jobs_cv: Condvar,
    deadlines: Deadlines,
    shutdown: AtomicBool,
}

impl Inner {
    fn new() -> Inner {
        Inner {
            registry: RwLock::new(HashMap::new()),
            jobs: Mutex::new(VecDeque::new()),
            jobs_cv: Condvar::new(),
            deadlines: Deadlines::new(),
            shutdown: AtomicBool::new(false),
        }
    }

    fn entry(&self, fingerprint: u64) -> Option<Arc<ModelEntry>> {
        self.registry.read().unwrap_or_else(|e| e.into_inner()).get(&fingerprint).cloned()
    }

    fn enqueue(&self, job: Job) {
        let mut jobs = lock_recover(&self.jobs);
        jobs.push_back(job);
        self.jobs_cv.notify_one();
    }
}

fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// The adaptive batching gateway — see the [crate docs](self) for the
/// serving model and the [example](self#example) for the submit/await
/// flow.
pub struct Gateway {
    inner: Arc<Inner>,
    threads: Vec<JoinHandle<()>>,
}

impl Gateway {
    /// A gateway with the default worker pool (2 flush workers + the
    /// timer thread).
    pub fn new() -> Gateway {
        Gateway::with_workers(2)
    }

    /// A gateway with `workers` flush workers (clamped to at least 1)
    /// plus the timer thread. Workers are where batches execute; more
    /// workers overlap flushes of different models on multi-core hosts.
    pub fn with_workers(workers: usize) -> Gateway {
        let inner = Arc::new(Inner::new());
        let mut threads = Vec::new();
        for i in 0..workers.max(1) {
            let worker_inner = Arc::clone(&inner);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("gateway-worker-{i}"))
                    .spawn(move || worker_loop(&worker_inner))
                    .expect("spawn gateway worker"),
            );
        }
        let timer_inner = Arc::clone(&inner);
        threads.push(
            std::thread::Builder::new()
                .name("gateway-timer".to_owned())
                .spawn(move || timer_loop(&timer_inner))
                .expect("spawn gateway timer"),
        );
        Gateway { inner, threads }
    }

    /// Registers `model` under its artifact fingerprint with the default
    /// [`BatchConfig`], or **hot-swaps** it in if the fingerprint is
    /// already registered. Returns the fingerprint (the submit key).
    ///
    /// A hot-swap atomically replaces the serving engine and bumps the
    /// model's generation. Requests already admitted keep their
    /// generation's engine (no drops, no mixed batches); requests
    /// admitted after the swap are served by the new engine. The
    /// original registration's `BatchConfig` stays in force.
    pub fn register(&self, model: &CompiledModel) -> u64 {
        self.register_with(model, BatchConfig::new())
    }

    /// [`Gateway::register`] with an explicit batching policy (ignored
    /// on hot-swap — the first registration's policy stays).
    pub fn register_with(&self, model: &CompiledModel, config: BatchConfig) -> u64 {
        let fingerprint = model.fingerprint();
        let engine = model.engine();
        let mut registry = self.inner.registry.write().unwrap_or_else(|e| e.into_inner());
        match registry.get(&fingerprint) {
            Some(entry) => {
                let mut current = entry.current.write().unwrap_or_else(|e| e.into_inner());
                let generation = current.generation + 1;
                *current = Arc::new(ModelVersion { engine, generation });
            }
            None => {
                registry.insert(
                    fingerprint,
                    Arc::new(ModelEntry {
                        config,
                        pending: Mutex::new(PendingQueue { items: VecDeque::new(), armed_seq: 0 }),
                        current: RwLock::new(Arc::new(ModelVersion { engine, generation: 0 })),
                        stats: StatsInner::new(),
                    }),
                );
            }
        }
        fingerprint
    }

    /// Submits one request for the model registered under `fingerprint`
    /// and returns its completion [`Ticket`]. The request is validated
    /// at the door, stamped with the current generation, and coalesced
    /// with compatible requests into the next batch flush (early at
    /// `max_batch`, by deadline at the batch window).
    ///
    /// # Errors
    ///
    /// [`GatewayError::UnknownModel`] for an unregistered fingerprint,
    /// [`GatewayError::BadRequest`] when the input fails the model's
    /// admission check, [`GatewayError::Overloaded`] when the model's
    /// queue is at capacity, [`GatewayError::ShuttingDown`] after
    /// shutdown began.
    pub fn submit(&self, fingerprint: u64, input: Tensor) -> Result<Ticket, GatewayError> {
        if self.inner.shutdown.load(Ordering::Relaxed) {
            return Err(GatewayError::ShuttingDown);
        }
        let entry = self.inner.entry(fingerprint).ok_or(GatewayError::UnknownModel(fingerprint))?;
        let version = entry.current_version();
        version
            .engine
            .validate_input(&input)
            .map_err(|e| GatewayError::BadRequest(e.to_string()))?;
        let cell = TicketCell::new();
        let (flush_now, arm) = {
            let mut pending = lock_recover(&entry.pending);
            if pending.items.len() >= entry.config.queue_cap {
                entry.stats.reject();
                return Err(GatewayError::Overloaded {
                    fingerprint,
                    queued: pending.items.len(),
                    limit: entry.config.queue_cap,
                });
            }
            pending.items.push_back(PendingRequest {
                input,
                cell: Arc::clone(&cell),
                version,
                admitted: Instant::now(),
            });
            entry.stats.admit();
            let len = pending.items.len();
            if len % entry.config.max_batch == 0 {
                // A full batch is ready (or another multiple of one is
                // backed up behind a busy worker): flush now. No
                // deadline to arm — the batch is already leaving, and
                // any leftover run re-arms its own window when drained.
                (true, None)
            } else if len == 1 {
                // First of a new batch: open its SLO window.
                pending.armed_seq += 1;
                (false, Some((Instant::now() + entry.config.window, pending.armed_seq)))
            } else {
                (false, None)
            }
        };
        if flush_now {
            self.inner.enqueue(Job { fingerprint, cause: FlushCause::Size });
        }
        if let Some((at, seq)) = arm {
            self.inner.deadlines.arm(at, fingerprint, seq);
        }
        Ok(Ticket { cell })
    }

    /// Submit-and-wait convenience: blocks the calling thread until the
    /// request's batch flushes.
    ///
    /// # Errors
    ///
    /// Same contract as [`Gateway::submit`] plus anything the serving
    /// side reports through the ticket.
    pub fn infer(&self, fingerprint: u64, input: Tensor) -> Result<Response, GatewayError> {
        self.submit(fingerprint, input)?.wait()
    }

    /// A point-in-time statistics snapshot for one model, or `None` if
    /// the fingerprint is unregistered.
    pub fn stats(&self, fingerprint: u64) -> Option<ModelStats> {
        let entry = self.inner.entry(fingerprint)?;
        let version = entry.current_version();
        let generation = version.generation;
        let engine_plan_generation = version.engine.health().plan_generation;
        Some(entry.stats.snapshot(generation, engine_plan_generation))
    }

    /// Zeroes one model's statistics counters and latency samples —
    /// registration, pending requests and the generation counter are
    /// untouched. Returns `false` if the fingerprint is unregistered.
    /// Useful for separating a warmup phase from a measured one.
    pub fn reset_stats(&self, fingerprint: u64) -> bool {
        match self.inner.entry(fingerprint) {
            Some(entry) => {
                entry.stats.reset();
                true
            }
            None => false,
        }
    }

    /// The serving engine's fault-containment vitals for one model (the
    /// current generation's engine), next to the gateway's own
    /// [`stats`](Gateway::stats).
    pub fn health(&self, fingerprint: u64) -> Option<Health> {
        Some(self.inner.entry(fingerprint)?.current_version().engine.health())
    }

    /// The generation currently serving `fingerprint` (0 until the
    /// first hot-swap).
    pub fn generation(&self, fingerprint: u64) -> Option<u64> {
        Some(self.inner.entry(fingerprint)?.current_version().generation)
    }

    /// The registered model fingerprints (unordered).
    pub fn models(&self) -> Vec<u64> {
        self.inner.registry.read().unwrap_or_else(|e| e.into_inner()).keys().copied().collect()
    }

    /// Stops the worker pool and the timer thread, waits for in-flight
    /// flushes to complete, and answers every still-queued request with
    /// [`GatewayError::ShuttingDown`] — nothing is dropped silently.
    /// Dropping the gateway does the same.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.jobs_cv.notify_all();
        self.inner.deadlines.interrupt();
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
        let registry = self.inner.registry.read().unwrap_or_else(|e| e.into_inner());
        for entry in registry.values() {
            let mut pending = lock_recover(&entry.pending);
            for request in pending.items.drain(..) {
                request.cell.fulfill(Err(GatewayError::ShuttingDown));
            }
        }
    }
}

impl Default for Gateway {
    fn default() -> Gateway {
        Gateway::new()
    }
}

impl Drop for Gateway {
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for Gateway {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gateway")
            .field("models", &self.models().len())
            .field("threads", &self.threads.len())
            .finish()
    }
}

/// Per-worker session cache: one warmed session per model, rebuilt when
/// the generation it was warmed for is superseded (or when a contained
/// panic may have dirtied it).
#[derive(Default)]
struct SessionCache {
    sessions: HashMap<u64, (u64, Session)>,
}

impl SessionCache {
    fn session_for(&mut self, fingerprint: u64, version: &Arc<ModelVersion>) -> &mut Session {
        let slot = self
            .sessions
            .entry(fingerprint)
            .or_insert_with(|| (version.generation, version.engine.session()));
        if slot.0 != version.generation {
            *slot = (version.generation, version.engine.session());
        }
        &mut slot.1
    }

    fn evict(&mut self, fingerprint: u64) {
        self.sessions.remove(&fingerprint);
    }
}

/// Flush workers: park on the job queue, drain and serve batches.
fn worker_loop(inner: &Inner) {
    let mut cache = SessionCache::default();
    loop {
        let job = {
            let mut jobs = lock_recover(&inner.jobs);
            loop {
                if inner.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                if let Some(job) = jobs.pop_front() {
                    break job;
                }
                jobs = inner.jobs_cv.wait(jobs).unwrap_or_else(|e| e.into_inner());
            }
        };
        flush(inner, &job, &mut cache);
    }
}

/// The timer thread: fires due batch windows by **enqueuing** flush
/// jobs. Inference never runs here — see the [`timer`] module docs.
fn timer_loop(inner: &Inner) {
    while let Some((fingerprint, seq)) = inner.deadlines.next_due(&inner.shutdown) {
        let Some(entry) = inner.entry(fingerprint) else { continue };
        let due = {
            let pending = lock_recover(&entry.pending);
            pending.armed_seq == seq && !pending.items.is_empty()
        };
        if due {
            inner.enqueue(Job { fingerprint, cause: FlushCause::Deadline });
        }
    }
}

/// Serves one flush job: drain a maximal same-generation FIFO run (at
/// most `max_batch`), execute it as one fused batch, fulfill the
/// tickets. The `gateway.flush` failpoint sits on the serve side so an
/// injected delay blocks this worker — never the deadline wheel — and
/// an injected panic is contained to this batch's tickets.
fn flush(inner: &Inner, job: &Job, cache: &mut SessionCache) {
    let Some(entry) = inner.entry(job.fingerprint) else { return };
    let (run, rearm, more) = {
        let mut pending = lock_recover(&entry.pending);
        if pending.items.is_empty() {
            return; // a stale job; its batch already flushed
        }
        let generation = pending.items[0].version.generation;
        let n = pending
            .items
            .iter()
            .take_while(|r| r.version.generation == generation)
            .take(entry.config.max_batch)
            .count();
        let run: Vec<PendingRequest> = pending.items.drain(..n).collect();
        let mut rearm = None;
        let mut more = false;
        if !pending.items.is_empty() {
            // Leftovers (later arrivals or a different generation) start
            // a fresh window; bumping the seq cancels any stale deadline
            // still in the wheel for the batch just drained.
            pending.armed_seq += 1;
            rearm = Some((Instant::now() + entry.config.window, pending.armed_seq));
            more = pending.items.len() >= entry.config.max_batch;
        }
        (run, rearm, more)
    };
    if let Some((at, seq)) = rearm {
        inner.deadlines.arm(at, job.fingerprint, seq);
    }
    if more {
        inner.enqueue(Job { fingerprint: job.fingerprint, cause: FlushCause::Size });
    }

    let version = Arc::clone(&run[0].version);
    let batch = run.len();
    let mut inputs = Vec::with_capacity(batch);
    let mut metas = Vec::with_capacity(batch);
    for request in run {
        inputs.push(request.input);
        metas.push((request.cell, request.admitted));
    }
    let mut outs: Vec<Tensor> = (0..batch).map(|_| Tensor::empty()).collect();
    let session = cache.session_for(job.fingerprint, &version);
    let served = catch_unwind(AssertUnwindSafe(|| -> Result<(), GatewayError> {
        if let Some(faults::Injected::Error(msg)) = faults::hit(faults::GATEWAY_FLUSH) {
            return Err(GatewayError::Inference(format!("injected flush fault: {msg}")));
        }
        session
            .infer_batch_into(&inputs, &mut outs)
            .map_err(|e| GatewayError::Inference(e.to_string()))
    }));
    match served {
        Ok(Ok(())) => {
            entry.stats.record_batch(batch, matches!(job.cause, FlushCause::Deadline));
            for ((cell, admitted), output) in metas.into_iter().zip(outs) {
                let latency = admitted.elapsed();
                entry.stats.record_latency_us(latency.as_micros() as u64);
                cell.fulfill(Ok(Response {
                    output,
                    generation: version.generation,
                    batch_size: batch,
                    latency,
                }));
            }
        }
        Ok(Err(err)) => {
            for (cell, _) in metas {
                cell.fulfill(Err(err.clone()));
            }
        }
        Err(panic) => {
            // The session may be mid-mutation: rebuild it next flush.
            cache.evict(job.fingerprint);
            let msg = panic_message(&panic);
            for (cell, _) in metas {
                cell.fulfill(Err(GatewayError::Inference(format!("flush panicked: {msg}"))));
            }
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}
