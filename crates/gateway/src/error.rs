//! The gateway's typed error vocabulary.

use std::fmt;

/// Why the gateway could not (or will not) serve a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GatewayError {
    /// No model with this fingerprint is registered.
    UnknownModel(u64),
    /// Backpressure: the model's admission queue is at capacity. The
    /// caller should shed or retry later — the gateway never buffers
    /// beyond the configured bound.
    Overloaded {
        /// The model whose queue is full.
        fingerprint: u64,
        /// Requests currently waiting.
        queued: usize,
        /// The configured [`queue_cap`](crate::BatchConfig::queue_cap).
        limit: usize,
    },
    /// The input failed the model's admission check (wrong shape,
    /// layout or dtype) — rejected at the door so it cannot fail the
    /// batch it would have been coalesced into.
    BadRequest(String),
    /// The gateway is shutting down; queued requests are answered with
    /// this instead of being dropped silently.
    ShuttingDown,
    /// The batch this request was coalesced into failed to execute
    /// (including injected `gateway.flush` faults).
    Inference(String),
}

impl fmt::Display for GatewayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GatewayError::UnknownModel(fp) => {
                write!(f, "no model registered under fingerprint {fp:#018x}")
            }
            GatewayError::Overloaded { fingerprint, queued, limit } => {
                write!(f, "model {fingerprint:#018x} overloaded: {queued} queued (limit {limit})")
            }
            GatewayError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            GatewayError::ShuttingDown => write!(f, "gateway is shutting down"),
            GatewayError::Inference(msg) => write!(f, "batch execution failed: {msg}"),
        }
    }
}

impl std::error::Error for GatewayError {}
