//! Per-model serving statistics: admission counters, flush-cause
//! attribution, an honest batch-size histogram, and exact latency
//! percentiles.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Latency samples kept for exact percentiles; beyond this the
/// percentile basis stops growing (counters keep counting).
const LATENCY_SAMPLE_CAP: usize = 1 << 20;

/// A point-in-time snapshot of one model's serving statistics — see
/// [`Gateway::stats`](crate::Gateway::stats).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelStats {
    /// Requests admitted into the queue.
    pub admitted: u64,
    /// Requests rejected with `Overloaded` (backpressure).
    pub rejected: u64,
    /// Requests served (fulfilled with a response).
    pub served: u64,
    /// Batches flushed.
    pub batches: u64,
    /// Batches flushed because they reached `max_batch` before the
    /// window expired.
    pub flushed_by_size: u64,
    /// Batches flushed by the window deadline.
    pub flushed_by_deadline: u64,
    /// `batch_histogram[n]` = batches that coalesced exactly `n`
    /// requests (`[0]` is unused). The honest record of how much
    /// coalescing actually happened at the offered load.
    pub batch_histogram: Vec<u64>,
    /// Median admission-to-completion latency, in microseconds.
    pub p50_latency_us: u64,
    /// 99th-percentile admission-to-completion latency, in microseconds.
    pub p99_latency_us: u64,
    /// The model generation currently serving (bumped per hot-swap).
    pub generation: u64,
    /// The serving engine's *plan* generation: bumped whenever the
    /// engine re-plans in place (fault quarantine or an autotune
    /// re-optimization). Orthogonal to `generation`, which tracks
    /// whole-artifact model swaps through the gateway.
    pub engine_plan_generation: u64,
}

impl ModelStats {
    /// Mean served batch size — the one-number coalescing summary.
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        self.served as f64 / self.batches as f64
    }
}

/// The live counters behind a [`ModelStats`] snapshot.
pub(crate) struct StatsInner {
    admitted: AtomicU64,
    rejected: AtomicU64,
    served: AtomicU64,
    batches: AtomicU64,
    flushed_by_size: AtomicU64,
    flushed_by_deadline: AtomicU64,
    histogram: Mutex<Vec<u64>>,
    latencies_us: Mutex<Vec<u64>>,
}

impl StatsInner {
    pub(crate) fn new() -> StatsInner {
        StatsInner {
            admitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            served: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            flushed_by_size: AtomicU64::new(0),
            flushed_by_deadline: AtomicU64::new(0),
            histogram: Mutex::new(Vec::new()),
            latencies_us: Mutex::new(Vec::new()),
        }
    }

    pub(crate) fn admit(&self) {
        self.admitted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn reject(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one flushed batch of `size` requests and its cause.
    pub(crate) fn record_batch(&self, size: usize, by_deadline: bool) {
        self.served.fetch_add(size as u64, Ordering::Relaxed);
        self.batches.fetch_add(1, Ordering::Relaxed);
        if by_deadline {
            self.flushed_by_deadline.fetch_add(1, Ordering::Relaxed);
        } else {
            self.flushed_by_size.fetch_add(1, Ordering::Relaxed);
        }
        let mut histogram = self.histogram.lock().unwrap_or_else(|e| e.into_inner());
        if histogram.len() <= size {
            histogram.resize(size + 1, 0);
        }
        histogram[size] += 1;
    }

    pub(crate) fn record_latency_us(&self, us: u64) {
        let mut lat = self.latencies_us.lock().unwrap_or_else(|e| e.into_inner());
        if lat.len() < LATENCY_SAMPLE_CAP {
            lat.push(us);
        }
    }

    /// Zeroes every counter and sample (the registration itself — and
    /// the generation — are not stats and are untouched).
    pub(crate) fn reset(&self) {
        self.admitted.store(0, Ordering::Relaxed);
        self.rejected.store(0, Ordering::Relaxed);
        self.served.store(0, Ordering::Relaxed);
        self.batches.store(0, Ordering::Relaxed);
        self.flushed_by_size.store(0, Ordering::Relaxed);
        self.flushed_by_deadline.store(0, Ordering::Relaxed);
        self.histogram.lock().unwrap_or_else(|e| e.into_inner()).clear();
        self.latencies_us.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }

    pub(crate) fn snapshot(&self, generation: u64, engine_plan_generation: u64) -> ModelStats {
        let histogram = self.histogram.lock().unwrap_or_else(|e| e.into_inner()).clone();
        let mut lat = self.latencies_us.lock().unwrap_or_else(|e| e.into_inner()).clone();
        lat.sort_unstable();
        ModelStats {
            admitted: self.admitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            served: self.served.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            flushed_by_size: self.flushed_by_size.load(Ordering::Relaxed),
            flushed_by_deadline: self.flushed_by_deadline.load(Ordering::Relaxed),
            batch_histogram: histogram,
            p50_latency_us: percentile(&lat, 0.50),
            p99_latency_us: percentile(&lat, 0.99),
            generation,
            engine_plan_generation,
        }
    }
}

/// Exact percentile over an ascending-sorted sample (0 when empty).
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_exact_over_the_sample() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 0.50), 50);
        assert_eq!(percentile(&sorted, 0.99), 99);
        assert_eq!(percentile(&sorted, 1.0), 100);
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[7], 0.99), 7);
    }

    #[test]
    fn histogram_tracks_batch_sizes_and_causes() {
        let stats = StatsInner::new();
        stats.record_batch(4, false);
        stats.record_batch(4, false);
        stats.record_batch(1, true);
        let snap = stats.snapshot(3, 2);
        assert_eq!(snap.batches, 3);
        assert_eq!(snap.served, 9);
        assert_eq!(snap.flushed_by_size, 2);
        assert_eq!(snap.flushed_by_deadline, 1);
        assert_eq!(snap.batch_histogram[4], 2);
        assert_eq!(snap.batch_histogram[1], 1);
        assert_eq!(snap.generation, 3);
        assert_eq!(snap.engine_plan_generation, 2);
        assert!((snap.mean_batch_size() - 3.0).abs() < 1e-9);
    }
}
