//! Request completion: a submitted request hands back a [`Ticket`];
//! whichever worker flushes its batch fulfills the ticket with a
//! [`Response`] (or a typed error).

use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use pbqp_dnn::tensor::Tensor;

use crate::GatewayError;

/// One served request: the network output plus the serving provenance a
/// multi-tenant caller cares about.
#[derive(Debug)]
pub struct Response {
    /// The network output, in the serving plan's delivery layout.
    pub output: Tensor,
    /// The model generation that served this request — the one current
    /// at admission, even if a hot-swap landed while the request was
    /// queued.
    pub generation: u64,
    /// How many requests the flush coalesced this one with (1 = served
    /// alone).
    pub batch_size: usize,
    /// Admission-to-completion latency.
    pub latency: Duration,
}

/// The one-shot slot a worker fulfills and a caller awaits.
pub(crate) struct TicketCell {
    slot: Mutex<Option<Result<Response, GatewayError>>>,
    cv: Condvar,
}

impl TicketCell {
    pub(crate) fn new() -> Arc<TicketCell> {
        Arc::new(TicketCell { slot: Mutex::new(None), cv: Condvar::new() })
    }

    /// Writes the result, first writer wins; later fulfillments (e.g. a
    /// shutdown sweep racing a completing flush) are dropped.
    pub(crate) fn fulfill(&self, result: Result<Response, GatewayError>) {
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        if slot.is_none() {
            *slot = Some(result);
            self.cv.notify_all();
        }
    }
}

/// A pending request's completion handle. Blocking [`Ticket::wait`]
/// parks the calling thread until a flush worker serves the batch the
/// request was coalesced into.
pub struct Ticket {
    pub(crate) cell: Arc<TicketCell>,
}

impl Ticket {
    /// Blocks until the request completes.
    ///
    /// # Errors
    ///
    /// Whatever the serving side reported: [`GatewayError::Inference`]
    /// when the coalesced batch failed, [`GatewayError::ShuttingDown`]
    /// when the gateway was torn down first.
    pub fn wait(self) -> Result<Response, GatewayError> {
        let mut slot = self.cell.slot.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = self.cell.cv.wait(slot).unwrap_or_else(|e| e.into_inner());
        }
    }
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket").finish_non_exhaustive()
    }
}
