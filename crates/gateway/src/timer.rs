//! The deadline wheel: a monotonic-clock min-heap of pending batch
//! windows, drained by one dedicated timer thread.
//!
//! The timer thread **only enqueues flush jobs** — it never executes
//! inference. A slow (or fault-delayed) flush therefore blocks a worker,
//! never the wheel: other models' deadlines keep firing on time. That
//! invariant is what the `gateway.flush` chaos suite pins down.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// One armed batch window: fires `(fingerprint, seq)` at `at`. The seq
/// lets a fire that arrives after its batch already flushed be
/// recognized as stale and dropped.
type Deadline = Reverse<(Instant, u64, u64)>;

/// The shared wheel state: producers arm deadlines, the timer thread
/// blocks on the earliest one.
pub(crate) struct Deadlines {
    heap: Mutex<BinaryHeap<Deadline>>,
    cv: Condvar,
}

impl Deadlines {
    pub(crate) fn new() -> Deadlines {
        Deadlines { heap: Mutex::new(BinaryHeap::new()), cv: Condvar::new() }
    }

    /// Arms a deadline; wakes the timer thread if this one is now the
    /// earliest.
    pub(crate) fn arm(&self, at: Instant, fingerprint: u64, seq: u64) {
        let mut heap = self.heap.lock().unwrap_or_else(|e| e.into_inner());
        heap.push(Reverse((at, fingerprint, seq)));
        self.cv.notify_one();
    }

    /// Wakes the timer thread so it can observe a shutdown flag.
    pub(crate) fn interrupt(&self) {
        self.cv.notify_all();
    }

    /// Blocks until the earliest deadline is due and returns its
    /// `(fingerprint, seq)`, or `None` once `shutdown` is set.
    pub(crate) fn next_due(&self, shutdown: &AtomicBool) -> Option<(u64, u64)> {
        let mut heap = self.heap.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if shutdown.load(Ordering::Relaxed) {
                return None;
            }
            match heap.peek() {
                None => {
                    heap = self.cv.wait(heap).unwrap_or_else(|e| e.into_inner());
                }
                Some(Reverse((at, _, _))) => {
                    let now = Instant::now();
                    if *at <= now {
                        let Reverse((_, fingerprint, seq)) = heap.pop().expect("peeked");
                        return Some((fingerprint, seq));
                    }
                    let wait = *at - now;
                    let (guard, _) =
                        self.cv.wait_timeout(heap, wait).unwrap_or_else(|e| e.into_inner());
                    heap = guard;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn earliest_deadline_fires_first() {
        let wheel = Deadlines::new();
        let now = Instant::now();
        wheel.arm(now + Duration::from_millis(30), 2, 20);
        wheel.arm(now + Duration::from_millis(5), 1, 10);
        let shutdown = AtomicBool::new(false);
        assert_eq!(wheel.next_due(&shutdown), Some((1, 10)));
        assert_eq!(wheel.next_due(&shutdown), Some((2, 20)));
    }

    #[test]
    fn shutdown_interrupts_an_idle_wheel() {
        let wheel = Deadlines::new();
        let shutdown = AtomicBool::new(true);
        assert_eq!(wheel.next_due(&shutdown), None);
    }
}
