//! Hot-swap under concurrent load: an open loop hammers one model while
//! new generations (same graph and fingerprint, fresh weights) are
//! re-registered underneath it.
//!
//! The contract being drilled:
//!
//! * **zero dropped** — every admitted request is answered exactly once
//!   (tickets are one-shot, so double-serving is structurally counted);
//! * **bit-exact generation matching** — every response is bit-identical
//!   to what the engine of its *admitted* generation produces for that
//!   input, even for requests in flight while the swap landed;
//! * batches never mix generations (implied by the bit-exactness check:
//!   a mixed batch would serve some items with the wrong weights).

use std::time::Duration;

use pbqp_dnn::graph::models;
use pbqp_dnn::prelude::*;
use pbqp_dnn_gateway::{BatchConfig, Gateway};

#[test]
fn responses_stay_bit_exact_to_their_admitted_generation_across_swaps() {
    let net = models::micro_alexnet();
    let (c, h, w) = net.infer_shapes().expect("shapes")[0];

    // Four generations of the same graph: same fingerprint (it hashes
    // the graph/strategy/cost/library, not the weights), different
    // weights — so a response served by the wrong generation is a bit
    // mismatch, not a silent coincidence.
    let generations: Vec<CompiledModel> = (0..4)
        .map(|g| {
            let weights = Weights::random(&net, 0xABC0 + g);
            Compiler::new(CompileOptions::new()).compile(&net, &weights).expect("compiles")
        })
        .collect();
    let fp = generations[0].fingerprint();
    for model in &generations {
        assert_eq!(model.fingerprint(), fp, "weights must not perturb the fingerprint");
    }

    // The input pool and, per generation, each input's expected output.
    let inputs: Vec<Tensor> =
        (0..8).map(|i| Tensor::random(c, h, w, Layout::Chw, 0x900 + i)).collect();
    let expected: Vec<Vec<Tensor>> = generations
        .iter()
        .map(|model| {
            let engine = model.engine();
            inputs.iter().map(|x| engine.infer(x).expect("solo")).collect()
        })
        .collect();

    let gateway = Gateway::with_workers(2);
    gateway.register_with(
        &generations[0],
        BatchConfig::new()
            .with_max_batch(4)
            .with_window(Duration::from_micros(300))
            .with_queue_cap(4096),
    );

    // Open-loop load from a submitter thread; swaps land from this
    // thread at fixed intervals while requests are in flight.
    let total: usize = 240;
    let tickets = std::thread::scope(|scope| {
        let submitter = scope.spawn(|| {
            (0..total)
                .map(|i| {
                    let ticket = gateway
                        .submit(fp, inputs[i % inputs.len()].clone())
                        .expect("queue_cap is sized to admit the whole drill");
                    std::thread::sleep(Duration::from_micros(250));
                    (i, ticket)
                })
                .collect::<Vec<_>>()
        });
        for model in &generations[1..] {
            std::thread::sleep(Duration::from_millis(15));
            gateway.register(model);
        }
        submitter.join().expect("submitter")
    });

    // Swaps are done; late traffic must be served by the final
    // generation.
    assert_eq!(gateway.generation(fp), Some(3));
    let late = gateway.infer(fp, inputs[0].clone()).expect("serves");
    assert_eq!(late.generation, 3);
    assert_eq!(late.output.data(), expected[3][0].data());

    // Every in-flight response: answered exactly once, bit-identical to
    // the engine of the generation that admitted it.
    let mut served_by_generation = [0u64; 4];
    for (i, ticket) in tickets {
        let response = ticket.wait().expect("no request is dropped across swaps");
        let generation = response.generation as usize;
        served_by_generation[generation] += 1;
        assert_eq!(
            response.output.data(),
            expected[generation][i % inputs.len()].data(),
            "request {i}: response does not match its admitted generation {generation}"
        );
    }
    assert_eq!(served_by_generation.iter().sum::<u64>(), total as u64);
    assert!(
        served_by_generation.iter().filter(|&&n| n > 0).count() >= 2,
        "the drill must actually straddle a swap: {served_by_generation:?}"
    );

    let stats = gateway.stats(fp).expect("registered");
    assert_eq!(stats.admitted, total as u64 + 1);
    assert_eq!(stats.served, total as u64 + 1, "zero dropped, zero double-served");
    assert_eq!(stats.rejected, 0);
    assert_eq!(stats.generation, 3);
    assert!(gateway.health(fp).expect("registered").is_pristine());
}
