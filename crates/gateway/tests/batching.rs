//! Gateway batching behavior: coalescing, deadline flushes, typed
//! backpressure, admission checks, multi-tenant isolation and shutdown
//! draining.

use std::time::Duration;

use pbqp_dnn::graph::models;
use pbqp_dnn::prelude::*;
use pbqp_dnn_gateway::{BatchConfig, Gateway, GatewayError};

fn compile(net: &pbqp_dnn::graph::DnnGraph, seed: u64) -> CompiledModel {
    let weights = Weights::random(net, seed);
    Compiler::new(CompileOptions::new()).compile(net, &weights).expect("compiles")
}

fn input_for(net: &pbqp_dnn::graph::DnnGraph, seed: u64) -> Tensor {
    let (c, h, w) = net.infer_shapes().expect("shapes")[0];
    Tensor::random(c, h, w, Layout::Chw, seed)
}

#[test]
fn a_burst_coalesces_into_one_full_fused_batch() {
    let net = models::micro_alexnet();
    let model = compile(&net, 42);
    let engine = model.engine();
    let gateway = Gateway::with_workers(1);
    // A long window so the flush can only be triggered by batch size.
    let fp = gateway.register_with(
        &model,
        BatchConfig::new().with_max_batch(4).with_window(Duration::from_secs(5)),
    );

    let inputs: Vec<Tensor> = (0..4).map(|i| input_for(&net, 100 + i)).collect();
    let tickets: Vec<_> =
        inputs.iter().map(|x| gateway.submit(fp, x.clone()).expect("admits")).collect();
    for (input, ticket) in inputs.iter().zip(tickets) {
        let response = ticket.wait().expect("serves");
        assert_eq!(response.batch_size, 4, "the full burst must flush as one batch");
        assert_eq!(response.generation, 0);
        assert_eq!(
            response.output.data(),
            engine.infer(input).expect("solo").data(),
            "batched response must be bit-identical to solo serving"
        );
    }

    let stats = gateway.stats(fp).expect("registered");
    assert_eq!(stats.admitted, 4);
    assert_eq!(stats.served, 4);
    assert_eq!(stats.batches, 1);
    assert_eq!(stats.flushed_by_size, 1);
    assert_eq!(stats.flushed_by_deadline, 0);
    assert_eq!(stats.batch_histogram[4], 1);
    assert!((stats.mean_batch_size() - 4.0).abs() < 1e-9);
}

#[test]
fn a_lone_request_is_flushed_by_its_deadline() {
    let net = models::micro_alexnet();
    let model = compile(&net, 43);
    let gateway = Gateway::with_workers(1);
    // max_batch far above what one submit can reach: only the window
    // deadline can flush.
    let fp = gateway.register_with(
        &model,
        BatchConfig::new().with_max_batch(64).with_window(Duration::from_millis(2)),
    );

    let response = gateway.infer(fp, input_for(&net, 7)).expect("serves");
    assert_eq!(response.batch_size, 1);
    assert!(
        response.latency >= Duration::from_millis(2),
        "a lone request waits out its window ({:?})",
        response.latency
    );

    let stats = gateway.stats(fp).expect("registered");
    assert_eq!(stats.flushed_by_deadline, 1);
    assert_eq!(stats.flushed_by_size, 0);
    assert_eq!(stats.batch_histogram[1], 1);
}

#[test]
fn unbatched_tier_serves_every_request_alone() {
    let net = models::micro_alexnet();
    let model = compile(&net, 44);
    let gateway = Gateway::with_workers(1);
    let fp = gateway.register_with(&model, BatchConfig::new().with_max_batch(1));

    for i in 0..5 {
        let response = gateway.infer(fp, input_for(&net, 200 + i)).expect("serves");
        assert_eq!(response.batch_size, 1);
    }
    let stats = gateway.stats(fp).expect("registered");
    assert_eq!(stats.batches, 5);
    assert_eq!(stats.flushed_by_size, 5, "max_batch=1 flushes by size on every submit");
}

#[test]
fn overload_is_a_typed_rejection_and_shutdown_answers_the_queue() {
    let net = models::micro_alexnet();
    let model = compile(&net, 45);
    let gateway = Gateway::with_workers(1);
    // An unreachable batch size and a far-future window freeze the
    // queue so admission control is all that can respond.
    let fp = gateway.register_with(
        &model,
        BatchConfig::new()
            .with_max_batch(64)
            .with_window(Duration::from_secs(60))
            .with_queue_cap(4),
    );

    let tickets: Vec<_> = (0..4)
        .map(|i| gateway.submit(fp, input_for(&net, 300 + i)).expect("under the cap"))
        .collect();
    let err = gateway.submit(fp, input_for(&net, 399)).expect_err("queue is full");
    match err {
        GatewayError::Overloaded { fingerprint, queued, limit } => {
            assert_eq!(fingerprint, fp);
            assert_eq!(limit, 4);
            assert!(queued <= limit, "pending never exceeds the cap ({queued} > {limit})");
        }
        other => panic!("expected Overloaded, got {other}"),
    }
    assert_eq!(gateway.stats(fp).expect("registered").rejected, 1);

    // Shutdown answers every still-queued request instead of dropping it.
    gateway.shutdown();
    for ticket in tickets {
        assert_eq!(ticket.wait().expect_err("answered at shutdown"), GatewayError::ShuttingDown);
    }
}

#[test]
fn admission_rejects_malformed_inputs_and_unknown_models() {
    let net = models::micro_alexnet();
    let model = compile(&net, 46);
    let gateway = Gateway::new();
    let fp = gateway.register(&model);

    let err = gateway.submit(0xDEAD_BEEF, input_for(&net, 1)).expect_err("not registered");
    assert!(matches!(err, GatewayError::UnknownModel(0xDEAD_BEEF)), "got {err}");

    let (c, h, w) = net.infer_shapes().expect("shapes")[0];
    let bad = Tensor::random(c, h + 1, w, Layout::Chw, 2);
    let err = gateway.submit(fp, bad).expect_err("wrong shape");
    assert!(matches!(err, GatewayError::BadRequest(_)), "got {err}");

    // The good path still serves after both rejections.
    gateway.infer(fp, input_for(&net, 3)).expect("serves");
}

#[test]
fn tenants_are_isolated_and_each_served_by_its_own_model() {
    let alex = models::micro_alexnet();
    let mixed = models::micro_mixed();
    let model_a = compile(&alex, 47);
    let model_b = compile(&mixed, 48);
    let engine_a = model_a.engine();
    let engine_b = model_b.engine();

    let gateway = Gateway::new();
    let fp_a = gateway.register_with(
        &model_a,
        BatchConfig::new().with_max_batch(4).with_window(Duration::from_micros(300)),
    );
    let fp_b = gateway.register_with(
        &model_b,
        BatchConfig::new().with_max_batch(2).with_window(Duration::from_micros(300)),
    );
    assert_ne!(fp_a, fp_b, "different graphs must fingerprint differently");
    let mut fps = gateway.models();
    fps.sort_unstable();
    let mut want = vec![fp_a, fp_b];
    want.sort_unstable();
    assert_eq!(fps, want);

    // Interleave tenants; every response must come from the right model.
    let submissions: Vec<(u64, Tensor, Tensor)> = (0..6)
        .map(|i| {
            if i % 2 == 0 {
                let x = input_for(&alex, 500 + i);
                let want = engine_a.infer(&x).expect("solo");
                (fp_a, x, want)
            } else {
                let x = input_for(&mixed, 500 + i);
                let want = engine_b.infer(&x).expect("solo");
                (fp_b, x, want)
            }
        })
        .collect();
    let tickets: Vec<_> = submissions
        .iter()
        .map(|(fp, x, _)| gateway.submit(*fp, x.clone()).expect("admits"))
        .collect();
    for ((_, _, want), ticket) in submissions.iter().zip(tickets) {
        let response = ticket.wait().expect("serves");
        assert_eq!(response.output.data(), want.data());
    }

    assert_eq!(gateway.stats(fp_a).expect("a").served, 3);
    assert_eq!(gateway.stats(fp_b).expect("b").served, 3);
    assert!(gateway.health(fp_a).expect("a").is_pristine());
    assert!(gateway.health(fp_b).expect("b").is_pristine());
}
