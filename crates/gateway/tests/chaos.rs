//! Chaos drills for the `gateway.flush` failpoint.
//!
//! The load-bearing invariants under an injected slow flush:
//!
//! 1. **Backpressure bounds hold** — the hammered model's queue never
//!    grows past its cap; excess load is rejected with a typed
//!    `Overloaded`, not buffered.
//! 2. **The timer wheel is never stalled** — the timer thread only
//!    enqueues flush jobs, so while every flush sleeps in a worker, a
//!    *different* model's deadline flushes keep being scheduled and
//!    (eventually) served. Nothing deadlocks; every admitted request
//!    completes.
//!
//! Failpoints are process-global state and libtest runs tests in
//! parallel threads, so every drill serializes on [`FAULT_LOCK`].

use std::sync::Mutex;
use std::time::Duration;

use pbqp_dnn::graph::models;
use pbqp_dnn::prelude::*;
use pbqp_dnn::{faults, CompiledModel};
use pbqp_dnn_gateway::{BatchConfig, Gateway, GatewayError};

/// Serializes the drills: armed failpoints are process-global.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn compile(net: &pbqp_dnn::graph::DnnGraph, seed: u64) -> CompiledModel {
    let weights = Weights::random(net, seed);
    Compiler::new(CompileOptions::new()).compile(net, &weights).expect("compiles")
}

#[test]
fn slow_flushes_keep_backpressure_bounded_and_other_models_flushing() {
    let _serial = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let alex = models::micro_alexnet();
    let mixed = models::micro_mixed();
    let hammered = compile(&alex, 60);
    let bystander = compile(&mixed, 61);
    let (hc, hh, hw) = alex.infer_shapes().expect("shapes")[0];
    let (bc, bh, bw) = mixed.infer_shapes().expect("shapes")[0];

    let gateway = Gateway::with_workers(2);
    let fp_hammered = gateway.register_with(
        &hammered,
        BatchConfig::new()
            .with_max_batch(4)
            .with_window(Duration::from_millis(1))
            .with_queue_cap(8),
    );
    let fp_bystander = gateway.register_with(
        &bystander,
        BatchConfig::new().with_max_batch(4).with_window(Duration::from_millis(2)),
    );

    // Every flush — either model's — sleeps 25 ms in its worker.
    faults::arm(faults::GATEWAY_FLUSH, "every:delay(25)").expect("arms");

    // Open-loop hammer: submit far faster than delayed flushes can
    // drain. Keep every admitted ticket; count the typed rejections.
    let mut tickets = Vec::new();
    let mut rejected = 0u64;
    for i in 0..120u64 {
        match gateway.submit(fp_hammered, Tensor::random(hc, hh, hw, Layout::Chw, 1000 + i)) {
            Ok(ticket) => tickets.push(ticket),
            Err(GatewayError::Overloaded { queued, limit, .. }) => {
                assert!(
                    queued <= limit,
                    "backpressure bound violated under slow flushes: {queued} queued > cap {limit}"
                );
                rejected += 1;
            }
            Err(other) => panic!("unexpected admission error: {other}"),
        }
        // Interleave a bystander request every 12 submits; its window
        // deadline must keep firing even while workers sleep.
        if i % 12 == 0 {
            tickets.push(
                gateway
                    .submit(fp_bystander, Tensor::random(bc, bh, bw, Layout::Chw, 2000 + i))
                    .expect("the bystander's small queue never fills"),
            );
        }
        std::thread::sleep(Duration::from_micros(300));
    }

    // With ≥25 ms per flush, 2 workers and ~36 ms of submission, the
    // 8-deep queue must have overflowed — the drill is vacuous otherwise.
    assert!(rejected > 0, "load was too light to exercise backpressure");

    // Every admitted request completes: flushes are slow, never stuck.
    for ticket in tickets {
        ticket.wait().expect("admitted requests are served despite injected delays");
    }
    faults::disarm_all();

    let hammered_stats = gateway.stats(fp_hammered).expect("registered");
    assert_eq!(hammered_stats.rejected, rejected);
    assert_eq!(
        hammered_stats.served, hammered_stats.admitted,
        "every admitted hammered request was served"
    );

    // The timer wheel stayed live: the bystander's lone requests can
    // only flush by deadline, and they did — while every worker was
    // repeatedly captive in 25 ms injected sleeps.
    let bystander_stats = gateway.stats(fp_bystander).expect("registered");
    assert_eq!(bystander_stats.served, bystander_stats.admitted);
    assert!(bystander_stats.served >= 10);
    assert!(
        bystander_stats.flushed_by_deadline > 0,
        "bystander deadlines must keep firing while flushes sleep"
    );

    // The injected delay is not a fault the engines should have seen.
    assert!(gateway.health(fp_hammered).expect("registered").is_pristine());
    assert!(gateway.health(fp_bystander).expect("registered").is_pristine());
}

#[test]
fn injected_flush_errors_and_panics_fail_only_their_batch() {
    let _serial = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let net = models::micro_alexnet();
    let model = compile(&net, 62);
    let (c, h, w) = net.infer_shapes().expect("shapes")[0];
    let gateway = Gateway::with_workers(1);
    let fp = gateway.register_with(
        &model,
        BatchConfig::new().with_max_batch(2).with_window(Duration::from_millis(1)),
    );

    // First flush fails with an injected error; the gateway stays up.
    faults::arm(faults::GATEWAY_FLUSH, "nth(1):error(injected outage)").expect("arms");
    let err = gateway
        .infer(fp, Tensor::random(c, h, w, Layout::Chw, 70))
        .expect_err("first flush is poisoned");
    assert!(
        matches!(&err, GatewayError::Inference(msg) if msg.contains("injected outage")),
        "got {err}"
    );
    let ok = gateway.infer(fp, Tensor::random(c, h, w, Layout::Chw, 71)).expect("recovered");
    assert_eq!(ok.batch_size, 1);

    // A panicking flush is contained to its batch's tickets too.
    faults::arm(faults::GATEWAY_FLUSH, "nth(1):panic(flush blew up)").expect("arms");
    let err = gateway
        .infer(fp, Tensor::random(c, h, w, Layout::Chw, 72))
        .expect_err("panicked flush fails its batch");
    assert!(matches!(&err, GatewayError::Inference(msg) if msg.contains("panicked")), "got {err}");
    faults::disarm_all();

    // The worker survived the panic and serves on.
    let ok = gateway.infer(fp, Tensor::random(c, h, w, Layout::Chw, 73)).expect("still serving");
    assert_eq!(ok.generation, 0);
    let stats = gateway.stats(fp).expect("registered");
    assert_eq!(stats.admitted, 4);
    assert_eq!(stats.served, 2, "the two poisoned batches failed, the two healthy ones served");
}
