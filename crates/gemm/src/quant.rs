//! Quantized integer GEMM: `C = (A − a_zp)·(B − b_zp)` over `i8` operands
//! with `i32` accumulation — the int8 counterpart of the crate's `SGEMM`
//! family, consumed by the quantized `im2` convolution drivers.
//!
//! Zero points are folded out algebraically instead of widening the
//! operands:
//!
//! ```text
//! (A − a_zp)(B − b_zp) = A·B − a_zp·colsum(B) − b_zp·rowsum(A) + a_zp·b_zp·k
//! ```
//!
//! so the hot loop is a plain `i8 × i8 → i32` product; the row/column
//! sums live in the caller-provided scratch (see
//! [`QuantGemm::scratch_elems`]), preserving the workspace-planner
//! contract of the f32 [`crate::Gemm`].

/// A configured quantized GEMM: thread count only (one kernel flavour —
/// a cache-blocked `i k j` nest).
///
/// # Example
///
/// ```
/// use pbqp_dnn_gemm::QuantGemm;
///
/// // C(2x2) = A(2x3) · B(3x2) with both zero points at 0.
/// let a: [i8; 6] = [1, 2, 3, 4, 5, 6];
/// let b: [i8; 6] = [7, 8, 9, 10, 11, 12];
/// let mut c = [0i32; 4];
/// QuantGemm::new().run(2, 2, 3, &a, 0, &b, 0, &mut c);
/// assert_eq!(c, [58, 64, 139, 154]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QuantGemm {
    threads: usize,
}

/// Block width of the `k` dimension: keeps one A-row strip and the
/// matching B panel rows in cache.
const KC: usize = 256;

impl QuantGemm {
    /// Creates a single-threaded quantized GEMM.
    pub fn new() -> QuantGemm {
        QuantGemm { threads: 1 }
    }

    /// Sets the number of worker threads (minimum 1).
    pub fn threads(mut self, threads: usize) -> QuantGemm {
        self.threads = threads.max(1);
        self
    }

    /// `i32` scratch elements [`QuantGemm::run_with_scratch`] needs for an
    /// `m × n × k` product: the row sums of `A` and the column sums of
    /// `B` used by the zero-point correction.
    pub fn scratch_elems(&self, m: usize, n: usize, _k: usize) -> usize {
        if m == 0 || n == 0 {
            return 0;
        }
        m + n
    }

    /// Computes `C = (A − a_zp)·(B − b_zp)`.
    ///
    /// `A` is `m × k`, `B` is `k × n`, `C` is `m × n`, all row-major; `C`
    /// is overwritten. Allocates its correction scratch internally;
    /// steady-state callers use [`QuantGemm::run_with_scratch`].
    ///
    /// # Panics
    ///
    /// Panics if a slice is smaller than its operand shape requires.
    #[allow(clippy::too_many_arguments)] // BLAS-shaped signature
    pub fn run(
        &self,
        m: usize,
        n: usize,
        k: usize,
        a: &[i8],
        a_zp: i32,
        b: &[i8],
        b_zp: i32,
        c: &mut [i32],
    ) {
        let mut scratch = vec![0i32; self.scratch_elems(m, n, k)];
        self.run_with_scratch(m, n, k, a, a_zp, b, b_zp, c, &mut scratch);
    }

    /// [`QuantGemm::run`] with a caller-provided `i32` workspace of at
    /// least [`QuantGemm::scratch_elems`] elements — the zero-allocation
    /// path. Scratch contents on entry are irrelevant; results are
    /// bit-identical to [`QuantGemm::run`].
    ///
    /// # Panics
    ///
    /// Panics if an operand slice or `scratch` is too small.
    #[allow(clippy::too_many_arguments)] // BLAS-shaped signature
    pub fn run_with_scratch(
        &self,
        m: usize,
        n: usize,
        k: usize,
        a: &[i8],
        a_zp: i32,
        b: &[i8],
        b_zp: i32,
        c: &mut [i32],
        scratch: &mut [i32],
    ) {
        assert!(a.len() >= m * k, "A too small: {} < {}", a.len(), m * k);
        assert!(b.len() >= k * n, "B too small: {} < {}", b.len(), k * n);
        assert!(c.len() >= m * n, "C too small: {} < {}", c.len(), m * n);
        let need = self.scratch_elems(m, n, k);
        assert!(scratch.len() >= need, "scratch too small: {} < {need}", scratch.len());
        if m == 0 || n == 0 {
            return;
        }

        let (rowsum, rest) = scratch.split_at_mut(m);
        let colsum = &mut rest[..n];
        if b_zp != 0 {
            for (i, slot) in rowsum.iter_mut().enumerate() {
                *slot = a[i * k..(i + 1) * k].iter().map(|&v| i32::from(v)).sum();
            }
        } else {
            rowsum.fill(0);
        }
        if a_zp != 0 {
            colsum.fill(0);
            for p in 0..k {
                let row = &b[p * n..(p + 1) * n];
                for (slot, &v) in colsum.iter_mut().zip(row) {
                    *slot += i32::from(v);
                }
            }
        } else {
            colsum.fill(0);
        }
        let zz = a_zp * b_zp * k as i32;

        let c = &mut c[..m * n];
        let threads = self.threads.max(1);
        if threads <= 1 || m < 2 * threads {
            product_rows(0, m, n, k, a, b, c);
            correct_rows(0, n, a_zp, b_zp, zz, rowsum, colsum, c);
            return;
        }
        let rows_per = m.div_ceil(threads);
        std::thread::scope(|scope| {
            let mut c_rest = &mut *c;
            let mut row0 = 0usize;
            while !c_rest.is_empty() {
                let rows = rows_per.min(c_rest.len() / n);
                let (c_slab, next) = c_rest.split_at_mut(rows * n);
                c_rest = next;
                let (rs, cs) = (&*rowsum, &*colsum);
                let start = row0;
                scope.spawn(move || {
                    product_rows(start, rows, n, k, a, b, c_slab);
                    correct_rows(start, n, a_zp, b_zp, zz, rs, cs, c_slab);
                });
                row0 += rows;
            }
        });
    }
}

/// Raw `i8·i8 → i32` product of `rows` rows of `C` starting at absolute
/// row `row0`, blocked over `k` in [`KC`] strips.
fn product_rows(row0: usize, rows: usize, n: usize, k: usize, a: &[i8], b: &[i8], c: &mut [i32]) {
    c.fill(0);
    for i in 0..rows {
        let a_row = &a[(row0 + i) * k..(row0 + i) * k + k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for k0 in (0..k).step_by(KC) {
            let k1 = (k0 + KC).min(k);
            for (p, &av) in a_row[k0..k1].iter().enumerate() {
                if av == 0 {
                    continue;
                }
                let av = i32::from(av);
                let b_row = &b[(k0 + p) * n..(k0 + p) * n + n];
                for (slot, &bv) in c_row.iter_mut().zip(b_row) {
                    *slot += av * i32::from(bv);
                }
            }
        }
    }
}

/// Applies the zero-point correction to a slab of `C` rows whose first
/// absolute row index is `row0`.
#[allow(clippy::too_many_arguments)]
fn correct_rows(
    row0: usize,
    n: usize,
    a_zp: i32,
    b_zp: i32,
    zz: i32,
    rowsum: &[i32],
    colsum: &[i32],
    c: &mut [i32],
) {
    if a_zp == 0 && b_zp == 0 {
        return;
    }
    for (i, c_row) in c.chunks_mut(n).enumerate() {
        let row_term = b_zp * rowsum[row0 + i] - zz;
        for (slot, &cs) in c_row.iter_mut().zip(colsum) {
            *slot -= a_zp * cs + row_term;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill_i8(len: usize, seed: u64) -> Vec<i8> {
        let mut state = seed.max(1);
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 40) as i64 % 255 - 127) as i8
            })
            .collect()
    }

    fn reference(
        m: usize,
        n: usize,
        k: usize,
        a: &[i8],
        a_zp: i32,
        b: &[i8],
        b_zp: i32,
    ) -> Vec<i32> {
        let mut c = vec![0i32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0i64;
                for p in 0..k {
                    acc += i64::from(i32::from(a[i * k + p]) - a_zp)
                        * i64::from(i32::from(b[p * n + j]) - b_zp);
                }
                c[i * n + j] = acc as i32;
            }
        }
        c
    }

    #[test]
    fn matches_reference_across_shapes_zero_points_and_threads() {
        for (m, n, k) in [(1, 1, 1), (2, 3, 4), (5, 7, 3), (13, 17, 9), (33, 5, 300), (8, 64, 1)] {
            let a = fill_i8(m * k, 1);
            let b = fill_i8(k * n, 2);
            for (a_zp, b_zp) in [(0, 0), (-7, 0), (0, 11), (5, -3), (127, -127)] {
                let want = reference(m, n, k, &a, a_zp, &b, b_zp);
                for threads in [1, 3] {
                    let mut c = vec![99i32; m * n];
                    QuantGemm::new().threads(threads).run(m, n, k, &a, a_zp, &b, b_zp, &mut c);
                    assert_eq!(c, want, "m={m} n={n} k={k} zp=({a_zp},{b_zp}) t={threads}");
                }
            }
        }
    }

    #[test]
    fn scratch_path_is_bit_identical_and_reusable() {
        let (m, n, k) = (19, 23, 40);
        let a = fill_i8(m * k, 3);
        let b = fill_i8(k * n, 4);
        let gemm = QuantGemm::new().threads(2);
        let mut scratch = vec![0i32; gemm.scratch_elems(m, n, k)];
        for round in 0..3 {
            scratch.fill(i32::MIN); // contents must not matter
            let mut plain = vec![0i32; m * n];
            gemm.run(m, n, k, &a, 9, &b, -4, &mut plain);
            let mut ws = vec![round; m * n];
            gemm.run_with_scratch(m, n, k, &a, 9, &b, -4, &mut ws, &mut scratch);
            assert_eq!(plain, ws, "round {round}");
        }
    }

    #[test]
    fn empty_dimensions_are_noops() {
        let mut c: Vec<i32> = vec![];
        QuantGemm::new().run(0, 0, 0, &[], 0, &[], 0, &mut c);
        // k = 0 with nonzero m, n zeroes C.
        let mut c2 = vec![5i32; 4];
        QuantGemm::new().run(2, 2, 0, &[], 1, &[], 2, &mut c2);
        assert_eq!(c2, [0; 4]);
    }

    #[test]
    fn scratch_elems_covers_the_correction_sums() {
        let g = QuantGemm::new();
        assert_eq!(g.scratch_elems(4, 6, 100), 10);
        assert_eq!(g.scratch_elems(0, 6, 100), 0);
    }
}
