//! Quantized integer GEMM: `C = (A − a_zp)·(B − b_zp)` over `i8` operands
//! with `i32` accumulation — the int8 counterpart of the crate's `SGEMM`
//! family, consumed by the quantized `im2` convolution drivers.
//!
//! Zero points are folded out algebraically instead of widening the
//! operands:
//!
//! ```text
//! (A − a_zp)(B − b_zp) = A·B − a_zp·colsum(B) − b_zp·rowsum(A) + a_zp·b_zp·k
//! ```
//!
//! so the hot loop is a plain `i8 × i8 → i32` product; the row/column
//! sums and the pair-packed B panels live in the caller-provided scratch
//! (see [`QuantGemm::scratch_elems`]), preserving the workspace-planner
//! contract of the f32 [`crate::Gemm`].
//!
//! The product itself runs through the runtime-dispatched
//! [`Microkernel`] (see [`crate::arch`]): B is packed into depth-pair
//! column panels and the per-ISA panel kernels (`_mm256_madd_epi16` on
//! AVX2, `_mm_madd_epi16` on SSE2, a plain nest on scalar) consume two
//! k-steps per column per step. Integer accumulation is associative, so
//! **every ISA produces bit-identical `i32` results** — enforced by the
//! differential kernel tests.

use crate::arch::{self, pack_b_i8_pairs, packed_b_i8_bytes, Isa, Microkernel, I8_MR, I8_NR};

/// A configured quantized GEMM: thread count plus an optional pinned
/// ISA (the default dispatches to the best kernel the host supports).
///
/// # Example
///
/// ```
/// use pbqp_dnn_gemm::QuantGemm;
///
/// // C(2x2) = A(2x3) · B(3x2) with both zero points at 0.
/// let a: [i8; 6] = [1, 2, 3, 4, 5, 6];
/// let b: [i8; 6] = [7, 8, 9, 10, 11, 12];
/// let mut c = [0i32; 4];
/// QuantGemm::new().run(2, 2, 3, &a, 0, &b, 0, &mut c);
/// assert_eq!(c, [58, 64, 139, 154]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QuantGemm {
    threads: usize,
    isa: Option<Isa>,
}

/// Block width of the `k` dimension: keeps one A-row strip and the
/// matching packed B panel in cache.
const KC: usize = 256;

/// Reinterprets an `i32` scratch region as bytes for the B pack. `i8`
/// has no invalid bit patterns and alignment 1, so this is sound for
/// any `i32` slice; dirty contents are fine — the pack overwrites
/// every byte it reads.
#[allow(unsafe_code)]
fn as_i8_mut(s: &mut [i32]) -> &mut [i8] {
    // SAFETY: i8 is a 1-byte type valid for all bit patterns; the
    // reinterpreted region covers exactly the same memory.
    unsafe { core::slice::from_raw_parts_mut(s.as_mut_ptr().cast::<i8>(), s.len() * 4) }
}

impl QuantGemm {
    /// Creates a single-threaded quantized GEMM with runtime ISA
    /// dispatch.
    pub fn new() -> QuantGemm {
        QuantGemm { threads: 1, isa: None }
    }

    /// Sets the number of worker threads (minimum 1).
    pub fn threads(mut self, threads: usize) -> QuantGemm {
        self.threads = threads.max(1);
        self
    }

    /// Pins the panel kernel to a specific ISA instead of the
    /// dispatched one (`None` restores automatic dispatch) — results
    /// are bit-identical either way; this exists for differential tests
    /// and benches.
    ///
    /// # Panics
    ///
    /// `run`/`run_with_scratch` panic if the host cannot execute the
    /// pinned ISA.
    pub fn isa(mut self, isa: Option<Isa>) -> QuantGemm {
        self.isa = isa;
        self
    }

    fn microkernel(&self) -> &'static dyn Microkernel {
        match self.isa {
            None => arch::active(),
            Some(isa) => arch::kernel_for(isa)
                .unwrap_or_else(|| panic!("ISA {isa} is not executable on this host")),
        }
    }

    /// `i32` scratch elements [`QuantGemm::run_with_scratch`] needs for an
    /// `m × n × k` product: the row sums of `A` and the column sums of
    /// `B` used by the zero-point correction, plus one `KC`-deep
    /// pair-packed B slab for the panel kernels.
    pub fn scratch_elems(&self, m: usize, n: usize, k: usize) -> usize {
        if m == 0 || n == 0 {
            return 0;
        }
        m + n + packed_b_i8_bytes(n, k.min(KC)).div_ceil(4)
    }

    /// Computes `C = (A − a_zp)·(B − b_zp)`.
    ///
    /// `A` is `m × k`, `B` is `k × n`, `C` is `m × n`, all row-major; `C`
    /// is overwritten. Allocates its correction scratch internally;
    /// steady-state callers use [`QuantGemm::run_with_scratch`].
    ///
    /// # Panics
    ///
    /// Panics if a slice is smaller than its operand shape requires.
    #[allow(clippy::too_many_arguments)] // BLAS-shaped signature
    pub fn run(
        &self,
        m: usize,
        n: usize,
        k: usize,
        a: &[i8],
        a_zp: i32,
        b: &[i8],
        b_zp: i32,
        c: &mut [i32],
    ) {
        let mut scratch = vec![0i32; self.scratch_elems(m, n, k)];
        self.run_with_scratch(m, n, k, a, a_zp, b, b_zp, c, &mut scratch);
    }

    /// [`QuantGemm::run`] with a caller-provided `i32` workspace of at
    /// least [`QuantGemm::scratch_elems`] elements — the zero-allocation
    /// path. Scratch contents on entry are irrelevant; results are
    /// bit-identical to [`QuantGemm::run`].
    ///
    /// # Panics
    ///
    /// Panics if an operand slice or `scratch` is too small.
    #[allow(clippy::too_many_arguments)] // BLAS-shaped signature
    pub fn run_with_scratch(
        &self,
        m: usize,
        n: usize,
        k: usize,
        a: &[i8],
        a_zp: i32,
        b: &[i8],
        b_zp: i32,
        c: &mut [i32],
        scratch: &mut [i32],
    ) {
        assert!(a.len() >= m * k, "A too small: {} < {}", a.len(), m * k);
        assert!(b.len() >= k * n, "B too small: {} < {}", b.len(), k * n);
        assert!(c.len() >= m * n, "C too small: {} < {}", c.len(), m * n);
        let need = self.scratch_elems(m, n, k);
        assert!(scratch.len() >= need, "scratch too small: {} < {need}", scratch.len());
        if m == 0 || n == 0 {
            return;
        }

        let (rowsum, rest) = scratch.split_at_mut(m);
        let (colsum, pack_words) = rest.split_at_mut(n);
        if b_zp != 0 {
            for (i, slot) in rowsum.iter_mut().enumerate() {
                *slot = a[i * k..(i + 1) * k].iter().map(|&v| i32::from(v)).sum();
            }
        } else {
            rowsum.fill(0);
        }
        if a_zp != 0 {
            colsum.fill(0);
            for p in 0..k {
                let row = &b[p * n..(p + 1) * n];
                for (slot, &v) in colsum.iter_mut().zip(row) {
                    *slot += i32::from(v);
                }
            }
        } else {
            colsum.fill(0);
        }
        let zz = a_zp * b_zp * k as i32;

        let mk = self.microkernel();
        let c = &mut c[..m * n];
        c.fill(0);
        let pack_len = packed_b_i8_bytes(n, k.min(KC)).div_ceil(4);
        let b_pack = &mut as_i8_mut(&mut pack_words[..pack_len])[..packed_b_i8_bytes(n, k.min(KC))];

        let threads = self.threads.max(1);
        let serial = threads <= 1 || m < 2 * threads;
        for p0 in (0..k).step_by(KC) {
            let pc = KC.min(k - p0);
            pack_b_i8_pairs(b_pack, b, n, p0, pc);
            if serial {
                product_block(mk, a, k, 0, m, p0, pc, b_pack, c, n);
            } else {
                // Fan MR-aligned row slabs over scoped threads; the
                // packed slab is shared read-only. Each element of C
                // still accumulates its k-slabs in ascending order, and
                // integer adds are associative anyway: bit-identical to
                // the serial path by construction.
                let blocks = m.div_ceil(I8_MR);
                let blocks_per = blocks.div_ceil(threads);
                let b_pack = &*b_pack;
                std::thread::scope(|scope| {
                    let mut c_rest = &mut *c;
                    let mut row0 = 0usize;
                    while !c_rest.is_empty() {
                        let rows = (blocks_per * I8_MR).min(c_rest.len() / n);
                        let (c_slab, next) = c_rest.split_at_mut(rows * n);
                        c_rest = next;
                        let start = row0;
                        scope.spawn(move || {
                            product_block(mk, a, k, start, rows, p0, pc, b_pack, c_slab, n);
                        });
                        row0 += rows;
                    }
                });
            }
        }
        correct_rows(0, n, a_zp, b_zp, zz, rowsum, colsum, c);
    }
}

/// Accumulates one `pc`-deep k-slab into `rows` rows of `C` (a slab
/// whose first absolute A row is `row0`; `c` indexes from that row),
/// walking the pair-packed B panels with the dispatched kernel.
#[allow(clippy::too_many_arguments)]
fn product_block(
    mk: &dyn Microkernel,
    a: &[i8],
    lda: usize,
    row0: usize,
    rows: usize,
    p0: usize,
    pc: usize,
    b_pack: &[i8],
    c: &mut [i32],
    n: usize,
) {
    let panel_bytes = pc.div_ceil(2) * I8_NR * 2;
    let col_panels = n.div_ceil(I8_NR);
    // `c` starts at this slab's first row; offset A to match so the
    // kernel's single row index addresses both operands.
    let a_rows = &a[row0 * lda..];
    // The A-side pair-broadcast block is built once per row block and
    // shared by every column panel (it doesn't depend on j0); pc ≤ KC
    // bounds it to a small stack buffer.
    let mut a_pairs = [0i32; (KC / 2 + 1) * I8_MR];
    let a_pairs = &mut a_pairs[..arch::a_i8_pairs_elems(pc)];
    for i0 in (0..rows).step_by(I8_MR) {
        let rh = I8_MR.min(rows - i0);
        arch::pack_a_i8_pairs(a_pairs, a_rows, lda, i0, rh, p0, pc);
        for jp in 0..col_panels {
            let j0 = jp * I8_NR;
            let jw = I8_NR.min(n - j0);
            let b_panel = &b_pack[jp * panel_bytes..(jp + 1) * panel_bytes];
            mk.i8_panel(a_pairs, pc, b_panel, c, n, i0, rh, j0, jw);
        }
    }
}

/// Applies the zero-point correction to a slab of `C` rows whose first
/// absolute row index is `row0`.
#[allow(clippy::too_many_arguments)]
fn correct_rows(
    row0: usize,
    n: usize,
    a_zp: i32,
    b_zp: i32,
    zz: i32,
    rowsum: &[i32],
    colsum: &[i32],
    c: &mut [i32],
) {
    if a_zp == 0 && b_zp == 0 {
        return;
    }
    for (i, c_row) in c.chunks_mut(n).enumerate() {
        let row_term = b_zp * rowsum[row0 + i] - zz;
        for (slot, &cs) in c_row.iter_mut().zip(colsum) {
            *slot -= a_zp * cs + row_term;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill_i8(len: usize, seed: u64) -> Vec<i8> {
        let mut state = seed.max(1);
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 40) as i64 % 255 - 127) as i8
            })
            .collect()
    }

    fn reference(
        m: usize,
        n: usize,
        k: usize,
        a: &[i8],
        a_zp: i32,
        b: &[i8],
        b_zp: i32,
    ) -> Vec<i32> {
        let mut c = vec![0i32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0i64;
                for p in 0..k {
                    acc += i64::from(i32::from(a[i * k + p]) - a_zp)
                        * i64::from(i32::from(b[p * n + j]) - b_zp);
                }
                c[i * n + j] = acc as i32;
            }
        }
        c
    }

    #[test]
    fn matches_reference_across_shapes_zero_points_and_threads() {
        for (m, n, k) in [(1, 1, 1), (2, 3, 4), (5, 7, 3), (13, 17, 9), (33, 5, 300), (8, 64, 1)] {
            let a = fill_i8(m * k, 1);
            let b = fill_i8(k * n, 2);
            for (a_zp, b_zp) in [(0, 0), (-7, 0), (0, 11), (5, -3), (127, -127)] {
                let want = reference(m, n, k, &a, a_zp, &b, b_zp);
                for threads in [1, 3] {
                    let mut c = vec![99i32; m * n];
                    QuantGemm::new().threads(threads).run(m, n, k, &a, a_zp, &b, b_zp, &mut c);
                    assert_eq!(c, want, "m={m} n={n} k={k} zp=({a_zp},{b_zp}) t={threads}");
                }
            }
        }
    }

    #[test]
    fn scratch_path_is_bit_identical_and_reusable() {
        let (m, n, k) = (19, 23, 40);
        let a = fill_i8(m * k, 3);
        let b = fill_i8(k * n, 4);
        let gemm = QuantGemm::new().threads(2);
        let mut scratch = vec![0i32; gemm.scratch_elems(m, n, k)];
        for round in 0..3 {
            scratch.fill(i32::MIN); // contents must not matter
            let mut plain = vec![0i32; m * n];
            gemm.run(m, n, k, &a, 9, &b, -4, &mut plain);
            let mut ws = vec![round; m * n];
            gemm.run_with_scratch(m, n, k, &a, 9, &b, -4, &mut ws, &mut scratch);
            assert_eq!(plain, ws, "round {round}");
        }
    }

    #[test]
    fn empty_dimensions_are_noops() {
        let mut c: Vec<i32> = vec![];
        QuantGemm::new().run(0, 0, 0, &[], 0, &[], 0, &mut c);
        // k = 0 with nonzero m, n zeroes C.
        let mut c2 = vec![5i32; 4];
        QuantGemm::new().run(2, 2, 0, &[], 1, &[], 2, &mut c2);
        assert_eq!(c2, [0; 4]);
    }

    #[test]
    fn scratch_elems_covers_the_sums_and_the_pack_slab() {
        let g = QuantGemm::new();
        // Correction sums (m + n) plus the KC-deep pair-packed B slab
        // in i32 words: ceil(100/2)·2·8·ceil(6/8) bytes = 800 → 200.
        assert_eq!(g.scratch_elems(4, 6, 100), 10 + 200);
        assert_eq!(g.scratch_elems(0, 6, 100), 0);
        // k is clamped to one KC slab (256): deeper products reuse it.
        assert_eq!(g.scratch_elems(4, 6, 10_000), g.scratch_elems(4, 6, 256));
    }

    #[test]
    fn every_available_isa_is_bit_identical() {
        let (m, n, k) = (13, 21, 77);
        let a = fill_i8(m * k, 5);
        let b = fill_i8(k * n, 6);
        let want = reference(m, n, k, &a, 3, &b, -9);
        for kernel in crate::arch::available_kernels() {
            let mut c = vec![0i32; m * n];
            QuantGemm::new().isa(Some(kernel.isa())).run(m, n, k, &a, 3, &b, -9, &mut c);
            assert_eq!(c, want, "isa {}", kernel.isa());
        }
    }
}
