//! Panel-packing GEMM with a 4×8 register micro-kernel.
//!
//! This follows the classic Goto/BLIS structure: B is packed into
//! column panels of width [`NR`], A into row panels of height [`MR`], and
//! the micro-kernel keeps a 4×8 accumulator block entirely in registers.
//! The micro-kernel itself is no longer fixed: the drivers take a
//! [`Microkernel`] selected by runtime CPU-feature dispatch (see
//! [`crate::arch`]), so the same packing and blocking structure runs an
//! AVX2 FMA kernel, an SSE2 kernel, or the portable scalar reference.

use crate::arch::{Microkernel, F32_MR as MR, F32_NR as NR};

const KC: usize = 256;
const MC: usize = 128;

/// Elements of one A row-panel buffer (one per worker).
pub(crate) const fn a_pack_elems() -> usize {
    MC * KC
}

/// Elements of the shared B column-panel buffer for an `n`-wide C.
pub(crate) fn b_pack_elems(n: usize) -> usize {
    KC * n.div_ceil(NR) * NR
}

/// Worker count the multithreaded driver will actually use.
pub(crate) fn mt_workers(m: usize, threads: usize) -> usize {
    let blocks = m.div_ceil(MC);
    threads.max(1).min(blocks.max(1))
}

/// `C = A·B + β·C` with both operands in N form, using caller-provided
/// pack panels: `a_pack` holds at least [`a_pack_elems`], `b_pack` at
/// least [`b_pack_elems`]`(n)` elements.
#[allow(clippy::too_many_arguments)] // BLAS-shaped signature
pub(crate) fn gemm_nn_ws(
    mk: &dyn Microkernel,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
    a_pack: &mut [f32],
    b_pack: &mut [f32],
) {
    if beta == 0.0 {
        c[..m * n].fill(0.0);
    } else if beta != 1.0 {
        for v in c[..m * n].iter_mut() {
            *v *= beta;
        }
    }

    let a_pack = &mut a_pack[..a_pack_elems()];
    let b_pack = &mut b_pack[..b_pack_elems(n)];

    for p0 in (0..k).step_by(KC) {
        let pc = KC.min(k - p0);
        pack_b(b_pack, b, n, k, p0, pc);
        for i0 in (0..m).step_by(MC) {
            let ic = MC.min(m - i0);
            pack_a(a_pack, a, k, i0, ic, p0, pc);
            macro_kernel(mk, a_pack, b_pack, c, n, i0, ic, pc);
        }
    }
}

/// Multithreaded `C = A·B + β·C`: each k-slab of B is packed **once** and
/// shared read-only by every worker (the row-slab driver would re-pack it
/// per thread), with contiguous row ranges of C fanned out over scoped
/// threads per slab. The packing workspace stays at the serial kernel's
/// `O(KC·n)` — one slab at a time — and each worker keeps a persistent
/// A-panel buffer across slabs.
///
/// The k-slabs advance in the same ascending order as [`gemm_nn_ws`] and
/// worker boundaries fall on `MC` row-block boundaries, so every element
/// of C accumulates its partial products in exactly the serial order —
/// the parallel path is bit-identical to the serial one.
/// The caller provides the packing workspace: `packs` holds at least
/// [`b_pack_elems`]`(n) + `[`mt_workers`]`(m, threads) ·`
/// [`a_pack_elems`] elements (B panel first, then one A panel per
/// worker).
#[allow(clippy::too_many_arguments)] // BLAS-shaped signature
pub(crate) fn gemm_nn_mt_ws(
    mk: &dyn Microkernel,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
    threads: usize,
    packs: &mut [f32],
) {
    // With a single row block there is nothing to fan out.
    let blocks = m.div_ceil(MC);
    let workers = mt_workers(m, threads);
    if workers <= 1 {
        let (b_pack, a_pack) = packs.split_at_mut(b_pack_elems(n));
        return gemm_nn_ws(mk, m, n, k, a, b, beta, c, a_pack, b_pack);
    }

    // Scale C by beta once up front, exactly like the serial kernel.
    if beta == 0.0 {
        c[..m * n].fill(0.0);
    } else if beta != 1.0 {
        for v in c[..m * n].iter_mut() {
            *v *= beta;
        }
    }

    // Pre-split C into per-worker row slabs (on MC block boundaries) and
    // give each worker a persistent A-panel buffer.
    let blocks_per = blocks.div_ceil(workers);
    let mut parts: Vec<(usize, &mut [f32])> = Vec::with_capacity(workers);
    let mut c_rest = &mut c[..m * n];
    let mut row = 0;
    while !c_rest.is_empty() {
        let rows = (blocks_per * MC).min(c_rest.len() / n);
        let (c_slab, c_next) = c_rest.split_at_mut(rows * n);
        c_rest = c_next;
        parts.push((row, c_slab));
        row += rows;
    }

    let (b_pack, a_packs) = packs.split_at_mut(b_pack_elems(n));
    for p0 in (0..k).step_by(KC) {
        let pc = KC.min(k - p0);
        pack_b(b_pack, b, n, k, p0, pc);
        let b_pack = &*b_pack;
        std::thread::scope(|scope| {
            for ((row0, c_slab), a_pack) in parts.iter_mut().zip(a_packs.chunks_mut(a_pack_elems()))
            {
                let row0 = *row0;
                scope.spawn(move || {
                    let rows = c_slab.len() / n;
                    for i0 in (0..rows).step_by(MC) {
                        let ic = MC.min(rows - i0);
                        pack_a(a_pack, a, k, row0 + i0, ic, p0, pc);
                        macro_kernel(mk, a_pack, b_pack, c_slab, n, i0, ic, pc);
                    }
                });
            }
        });
    }
}

/// Packs a `pc × n` horizontal slab of B into `NR`-wide column panels,
/// zero-padding the final partial panel.
fn pack_b(dst: &mut [f32], b: &[f32], n: usize, _k: usize, p0: usize, pc: usize) {
    let panels = n.div_ceil(NR);
    for jp in 0..panels {
        let j0 = jp * NR;
        let jw = NR.min(n - j0);
        let base = jp * pc * NR;
        for p in 0..pc {
            let src = &b[(p0 + p) * n + j0..(p0 + p) * n + j0 + jw];
            let out = &mut dst[base + p * NR..base + p * NR + NR];
            out[..jw].copy_from_slice(src);
            out[jw..].fill(0.0);
        }
    }
}

/// Packs an `ic × pc` block of A into `MR`-tall row panels, zero-padding the
/// final partial panel.
fn pack_a(dst: &mut [f32], a: &[f32], k: usize, i0: usize, ic: usize, p0: usize, pc: usize) {
    let panels = ic.div_ceil(MR);
    for ip in 0..panels {
        let r0 = ip * MR;
        let rh = MR.min(ic - r0);
        let base = ip * pc * MR;
        for p in 0..pc {
            for r in 0..MR {
                dst[base + p * MR + r] = if r < rh { a[(i0 + r0 + r) * k + p0 + p] } else { 0.0 };
            }
        }
    }
}

/// Runs the dispatched micro-kernel over every (row panel, column
/// panel) pair.
#[allow(clippy::too_many_arguments)]
fn macro_kernel(
    mk: &dyn Microkernel,
    a_pack: &[f32],
    b_pack: &[f32],
    c: &mut [f32],
    n: usize,
    i0: usize,
    ic: usize,
    pc: usize,
) {
    let row_panels = ic.div_ceil(MR);
    let col_panels = n.div_ceil(NR);
    for ip in 0..row_panels {
        let a_panel = &a_pack[ip * pc * MR..(ip + 1) * pc * MR];
        let r0 = i0 + ip * MR;
        let rh = MR.min(i0 + ic - r0);
        for jp in 0..col_panels {
            let b_panel = &b_pack[jp * pc * NR..(jp + 1) * pc * NR];
            let j0 = jp * NR;
            let jw = NR.min(n - j0);
            mk.f32_panel(a_panel, b_panel, c, n, pc, r0, rh, j0, jw);
        }
    }
}
