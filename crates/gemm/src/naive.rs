//! Textbook triple-loop GEMM; the correctness reference for the other
//! kernels and the model of "unoptimized BLAS" used by cost-model ablations.

use crate::Trans;

/// `C = op(A)·op(B) + β·C`, straightforward `i j p` loop order.
#[allow(clippy::too_many_arguments)] // BLAS-shaped signature
pub(crate) fn gemm(
    ta: Trans,
    tb: Trans,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
) {
    match (ta, tb) {
        (Trans::N, Trans::N) => {
            for i in 0..m {
                let a_row = &a[i * k..(i + 1) * k];
                let c_row = &mut c[i * n..(i + 1) * n];
                if beta == 0.0 {
                    c_row.fill(0.0);
                } else if beta != 1.0 {
                    for v in c_row.iter_mut() {
                        *v *= beta;
                    }
                }
                // `i p j` order keeps the inner loop contiguous over B and C.
                for (p, &av) in a_row.iter().enumerate() {
                    let b_row = &b[p * n..(p + 1) * n];
                    for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                        *cv += av * bv;
                    }
                }
            }
        }
        (Trans::N, Trans::T) => {
            // Dot products of contiguous rows: A row i with B row j.
            for i in 0..m {
                let a_row = &a[i * k..(i + 1) * k];
                for j in 0..n {
                    let b_row = &b[j * k..(j + 1) * k];
                    let mut acc = 0.0f32;
                    for (&av, &bv) in a_row.iter().zip(b_row) {
                        acc += av * bv;
                    }
                    let cv = &mut c[i * n + j];
                    *cv = acc + beta * *cv;
                }
            }
        }
        (Trans::T, _) => {
            // A is stored k×m; index it strided.
            for i in 0..m {
                for j in 0..n {
                    let mut acc = 0.0f32;
                    for p in 0..k {
                        let bv = match tb {
                            Trans::N => b[p * n + j],
                            Trans::T => b[j * k + p],
                        };
                        acc += a[p * m + i] * bv;
                    }
                    let cv = &mut c[i * n + j];
                    *cv = acc + beta * *cv;
                }
            }
        }
    }
}
