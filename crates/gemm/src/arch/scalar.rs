//! Portable scalar microkernels — the correctness reference.
//!
//! Every SIMD kernel in this module's siblings is differentially tested
//! against these loops: int8 paths must match bit for bit, f32 paths
//! within a small ULP bound (the scalar f32 kernel rounds after the
//! multiply and after the add, which SSE2 reproduces exactly and FMA
//! does not).

use super::{Isa, Microkernel, F32_MR, F32_NR, I8_MR, I8_NR};

/// The always-available scalar implementation.
pub(super) struct ScalarKernel;

impl Microkernel for ScalarKernel {
    fn isa(&self) -> Isa {
        Isa::Scalar
    }

    fn f32_panel(
        &self,
        a_panel: &[f32],
        b_panel: &[f32],
        c: &mut [f32],
        n: usize,
        pc: usize,
        r0: usize,
        rh: usize,
        j0: usize,
        jw: usize,
    ) {
        let mut acc = [[0.0f32; F32_NR]; F32_MR];
        for p in 0..pc {
            let bp = &b_panel[p * F32_NR..p * F32_NR + F32_NR];
            let ap = &a_panel[p * F32_MR..p * F32_MR + F32_MR];
            for r in 0..F32_MR {
                let av = ap[r];
                let row = &mut acc[r];
                for j in 0..F32_NR {
                    row[j] += av * bp[j];
                }
            }
        }
        for r in 0..rh {
            let c_row = &mut c[(r0 + r) * n + j0..(r0 + r) * n + j0 + jw];
            for (cv, &av) in c_row.iter_mut().zip(acc[r].iter()) {
                *cv += av;
            }
        }
    }

    fn i8_panel(
        &self,
        a_pairs: &[i32],
        pc: usize,
        b_panel: &[i8],
        c: &mut [i32],
        ldc: usize,
        row0: usize,
        rh: usize,
        j0: usize,
        jw: usize,
    ) {
        let pc2 = pc.div_ceil(2);
        let mut acc = [[0i32; I8_NR]; I8_MR];
        for p2 in 0..pc2 {
            let bp = &b_panel[p2 * I8_NR * 2..(p2 + 1) * I8_NR * 2];
            let ap = &a_pairs[p2 * I8_MR..(p2 + 1) * I8_MR];
            for r in 0..rh {
                // Unpack the [a1:a0] i16-pair word the packer built.
                let pair = ap[r] as u32;
                let a0 = i32::from(pair as u16 as i16);
                let a1 = i32::from((pair >> 16) as u16 as i16);
                let row = &mut acc[r];
                for j in 0..I8_NR {
                    row[j] += a0 * i32::from(bp[2 * j]) + a1 * i32::from(bp[2 * j + 1]);
                }
            }
        }
        for r in 0..rh {
            let c_row = &mut c[(row0 + r) * ldc + j0..(row0 + r) * ldc + j0 + jw];
            for (cv, &av) in c_row.iter_mut().zip(acc[r].iter()) {
                *cv += av;
            }
        }
    }
}
