//! Runtime CPU-architecture dispatch for the hot microkernels.
//!
//! The paper's central claim is that primitive selection over *measured*
//! costs beats any single baseline — which is only credible if the
//! primitives themselves run at hardware speed. This module owns that
//! layer: a small registry of [`Microkernel`] implementations (AVX2,
//! SSE2, portable scalar), one of which is selected **per host at run
//! time** via [`CpuFeatures::detect`] and used by the packed f32 GEMM,
//! the quantized int8 GEMM, and the hot int8 pointwise kernels.
//!
//! Selection order is best-first ([`Isa::Avx2`] → [`Isa::Sse2`] →
//! [`Isa::Scalar`]); the `PBQP_DNN_FORCE_ISA` environment variable (or
//! [`set_override`], its in-process equivalent for tests and benches)
//! pins a specific ISA so fallback paths can be exercised anywhere.
//!
//! # Numerical contract
//!
//! * **int8 kernels are bit-exact across every ISA.** Integer addition is
//!   associative, so any accumulation order yields the same `i32` result;
//!   the AVX2 path widens `i8 → i16` with `_mm256_cvtepi8_epi16` before
//!   `_mm256_madd_epi16` (rather than the saturating `u8 × i8`
//!   `_mm256_maddubs_epi16`) precisely so that *all* `i8` inputs —
//!   including `-128` — produce exact products.
//! * **f32 kernels are ULP-bounded, not bit-identical, across ISAs.** The
//!   AVX2 panel kernel uses fused multiply-add, which rounds once where
//!   the scalar kernel rounds twice; the SSE2 kernel performs the same
//!   mul-then-add sequence as the scalar kernel and matches it bit for
//!   bit. Within one process the dispatch decision is stable, so serial,
//!   wavefront and batched execution remain bit-identical to each other.
//!
//! # Example
//!
//! ```
//! use pbqp_dnn_gemm::arch::{self, CpuFeatures, Isa};
//!
//! let features = CpuFeatures::detect();
//! // The scalar kernel is always available; real hosts usually do better.
//! assert!(features.supports(Isa::Scalar));
//! let kernel = arch::active();
//! println!("dispatching to {}", kernel.isa());
//! // Every compiled-in kernel the host can run, best first.
//! for k in arch::available_kernels() {
//!     println!("  candidate: {}", k.isa());
//! }
//! ```

mod scalar;
#[cfg(target_arch = "x86_64")]
mod x86;

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Row height of the f32 panel microkernel (A panels are packed `MR`
/// tall).
pub const F32_MR: usize = 4;
/// Column width of the f32 panel microkernel (B panels are packed `NR`
/// wide).
pub const F32_NR: usize = 8;
/// Row height of the int8 panel microkernel.
pub const I8_MR: usize = 4;
/// Column width of the int8 panel microkernel; B panels are packed in
/// depth-pairs (see [`pack_b_i8_pairs`]) so `_mm256_madd_epi16`-style
/// instructions consume two k-steps at once.
pub const I8_NR: usize = 8;

/// An instruction-set tier a microkernel can target.
///
/// Ordered best-first: [`Isa::ALL`] is the fallback chain the dispatcher
/// walks. `Scalar` is portable Rust and always available.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Isa {
    /// 256-bit AVX2 + FMA (`_mm256_madd_epi16` int8 dot pairs,
    /// `_mm256_fmadd_ps` f32 panels).
    Avx2,
    /// 128-bit baseline x86-64 SIMD (`_mm_madd_epi16`, mul+add f32).
    Sse2,
    /// Portable scalar Rust — the correctness reference every other
    /// kernel is differentially tested against.
    Scalar,
}

impl Isa {
    /// Every ISA tier, best first — the dispatcher's fallback order.
    pub const ALL: [Isa; 3] = [Isa::Avx2, Isa::Sse2, Isa::Scalar];

    /// Lower-case name, as accepted by `PBQP_DNN_FORCE_ISA`.
    pub fn name(&self) -> &'static str {
        match self {
            Isa::Avx2 => "avx2",
            Isa::Sse2 => "sse2",
            Isa::Scalar => "scalar",
        }
    }

    /// Parses a (case-insensitive) ISA name.
    pub fn parse(s: &str) -> Option<Isa> {
        match s.to_ascii_lowercase().as_str() {
            "avx2" => Some(Isa::Avx2),
            "sse2" => Some(Isa::Sse2),
            "scalar" => Some(Isa::Scalar),
            _ => None,
        }
    }
}

impl fmt::Display for Isa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The CPU features runtime dispatch cares about, probed once per
/// process.
///
/// On non-x86-64 hosts every SIMD flag is `false` and dispatch resolves
/// to the scalar kernel (NEON kernels are future work; see ROADMAP).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuFeatures {
    /// 256-bit integer/float SIMD (Haswell+).
    pub avx2: bool,
    /// Fused multiply-add (ships alongside AVX2 on every mainstream
    /// part; the AVX2 f32 panel kernel requires it).
    pub fma: bool,
    /// Baseline x86-64 SIMD — architecturally guaranteed on x86-64.
    pub sse2: bool,
}

impl CpuFeatures {
    /// Probes the running CPU.
    pub fn detect() -> CpuFeatures {
        #[cfg(target_arch = "x86_64")]
        {
            CpuFeatures {
                avx2: is_x86_feature_detected!("avx2"),
                fma: is_x86_feature_detected!("fma"),
                sse2: is_x86_feature_detected!("sse2"),
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            CpuFeatures { avx2: false, fma: false, sse2: false }
        }
    }

    /// Whether kernels for `isa` can execute on this CPU.
    ///
    /// `Avx2` requires both AVX2 and FMA (they co-ship on all mainstream
    /// parts); `Scalar` is always supported.
    pub fn supports(&self, isa: Isa) -> bool {
        match isa {
            Isa::Avx2 => self.avx2 && self.fma,
            Isa::Sse2 => self.sse2,
            Isa::Scalar => true,
        }
    }

    /// The best ISA tier this CPU supports.
    pub fn best(&self) -> Isa {
        *Isa::ALL.iter().find(|&&isa| self.supports(isa)).expect("scalar is always supported")
    }
}

/// One ISA's implementation of the hot inner kernels.
///
/// All methods are *panel* kernels operating on the pack formats defined
/// by this module, so every ISA (including scalar) runs through the same
/// drivers and differs only in the innermost loops — which is what makes
/// the differential test harness meaningful.
#[allow(clippy::too_many_arguments)] // panel kernels have BLAS-shaped signatures
pub trait Microkernel: Send + Sync {
    /// The ISA tier this kernel targets.
    fn isa(&self) -> Isa;

    /// f32 panel kernel: `C[r0.., j0..] += A_panel · B_panel` for a
    /// [`F32_MR`]`×`[`F32_NR`] register block. `a_panel` is packed `MR`
    /// tall (`pc × MR` elements), `b_panel` `NR` wide (`pc × NR`); `rh ≤
    /// MR` rows and `jw ≤ NR` columns are stored into row-major `c` with
    /// row stride `n`.
    fn f32_panel(
        &self,
        a_panel: &[f32],
        b_panel: &[f32],
        c: &mut [f32],
        n: usize,
        pc: usize,
        r0: usize,
        rh: usize,
        j0: usize,
        jw: usize,
    );

    /// int8 panel kernel: `C[row0.., j0..] += A_pairs · B_panel` with
    /// `i32` accumulation, for up to [`I8_MR`] rows and [`I8_NR`]
    /// columns. `a_pairs` is the pair-broadcast block produced by
    /// [`pack_a_i8_pairs`] (`pc.div_ceil(2) · I8_MR` words, built once
    /// per row block and shared by every column panel — rebuilding the
    /// pair words per panel is pure waste since they don't depend on
    /// `j0`); `b_panel` is one pair-packed column panel produced by
    /// [`pack_b_i8_pairs`] (`pc.div_ceil(2) · 2 · I8_NR` bytes); `c` is
    /// row-major with row stride `ldc`. Results are bit-exact across
    /// ISAs for all `i8` inputs.
    fn i8_panel(
        &self,
        a_pairs: &[i32],
        pc: usize,
        b_panel: &[i8],
        c: &mut [i32],
        ldc: usize,
        row0: usize,
        rh: usize,
        j0: usize,
        jw: usize,
    );

    /// int8 ReLU over quantized codes: `dst[i] = max(src[i], zp)`
    /// (`zp` encodes real `0.0`). Exact on every ISA.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is shorter than `src`.
    fn i8_relu(&self, src: &[i8], zp: i8, dst: &mut [i8]) {
        assert!(dst.len() >= src.len(), "relu dst too small");
        for (d, &q) in dst.iter_mut().zip(src) {
            *d = q.max(zp);
        }
    }

    /// Minimum and maximum code in `src`; `(i8::MAX, i8::MIN)` when
    /// empty (the fold identity, matching a scalar reduction).
    fn i8_minmax(&self, src: &[i8]) -> (i8, i8) {
        src.iter().fold((i8::MAX, i8::MIN), |(lo, hi), &q| (lo.min(q), hi.max(q)))
    }
}

/// Packs a `pc × n` horizontal slab of `B` (row-major, starting at row
/// `p0`) into [`I8_NR`]-wide column panels of **depth pairs**: panel `jp`
/// holds, for each pair index `p2`, the 16 bytes
/// `[b[2p2][j0], b[2p2+1][j0], b[2p2][j0+1], b[2p2+1][j0+1], …]` so a
/// single 16-byte load feeds one `madd`-style instruction with two
/// k-steps for eight columns. Missing depth (odd `pc`) and missing
/// columns (ragged `n`) are zero-padded, which contributes exactly
/// nothing to the integer accumulators.
pub fn pack_b_i8_pairs(dst: &mut [i8], b: &[i8], n: usize, p0: usize, pc: usize) {
    let pc2 = pc.div_ceil(2);
    let panels = n.div_ceil(I8_NR);
    let panel_bytes = pc2 * I8_NR * 2;
    for jp in 0..panels {
        let j0 = jp * I8_NR;
        let jw = I8_NR.min(n - j0);
        let base = jp * panel_bytes;
        for p2 in 0..pc2 {
            let row_a = &b[(p0 + 2 * p2) * n..(p0 + 2 * p2) * n + n];
            let row_b =
                (2 * p2 + 1 < pc).then(|| &b[(p0 + 2 * p2 + 1) * n..(p0 + 2 * p2 + 1) * n + n]);
            let out = &mut dst[base + p2 * I8_NR * 2..base + (p2 + 1) * I8_NR * 2];
            for j in 0..I8_NR {
                if j < jw {
                    out[2 * j] = row_a[j0 + j];
                    out[2 * j + 1] = row_b.map_or(0, |r| r[j0 + j]);
                } else {
                    out[2 * j] = 0;
                    out[2 * j + 1] = 0;
                }
            }
        }
    }
}

/// Bytes [`pack_b_i8_pairs`] writes for a `pc × n` slab.
pub fn packed_b_i8_bytes(n: usize, pc: usize) -> usize {
    pc.div_ceil(2) * 2 * I8_NR * n.div_ceil(I8_NR)
}

/// Builds the A-side **pair-broadcast block** for one [`I8_MR`]-tall row
/// block of `A` (row-major, row stride `lda`): word `p2 · I8_MR + r`
/// holds the two consecutive taps `a[row0+r][p0+2p2]` and
/// `a[row0+r][p0+2p2+1]` as sign-extended `i16`s packed `[a1:a0]` — the
/// exact operand a `madd`-style instruction wants broadcast across its
/// lanes. Rows past `rh` and the odd tail tap of an odd `pc` are zero,
/// which contributes exactly nothing to the accumulators.
pub fn pack_a_i8_pairs(
    dst: &mut [i32],
    a: &[i8],
    lda: usize,
    row0: usize,
    rh: usize,
    p0: usize,
    pc: usize,
) {
    let pc2 = pc.div_ceil(2);
    for p2 in 0..pc2 {
        let out = &mut dst[p2 * I8_MR..(p2 + 1) * I8_MR];
        for (r, slot) in out.iter_mut().enumerate() {
            *slot = if r < rh {
                let base = (row0 + r) * lda + p0 + 2 * p2;
                let a0 = a[base] as i16 as u16 as u32;
                let a1 = if 2 * p2 + 1 < pc { a[base + 1] as i16 as u16 as u32 } else { 0 };
                ((a1 << 16) | a0) as i32
            } else {
                0
            };
        }
    }
}

/// Words [`pack_a_i8_pairs`] writes for a `pc`-deep row block.
pub fn a_i8_pairs_elems(pc: usize) -> usize {
    pc.div_ceil(2) * I8_MR
}

static SCALAR_KERNEL: scalar::ScalarKernel = scalar::ScalarKernel;
#[cfg(target_arch = "x86_64")]
static SSE2_KERNEL: x86::Sse2Kernel = x86::Sse2Kernel;
#[cfg(target_arch = "x86_64")]
static AVX2_KERNEL: x86::Avx2Kernel = x86::Avx2Kernel;

/// The cached CPU-feature probe for this host (detected once per
/// process).
pub fn features() -> &'static CpuFeatures {
    static FEATURES: OnceLock<CpuFeatures> = OnceLock::new();
    FEATURES.get_or_init(CpuFeatures::detect)
}

/// The kernel implementing `isa`, or `None` when this host cannot
/// execute it (missing CPU features, or the ISA is not compiled in on
/// this architecture). `kernel_for(Isa::Scalar)` always succeeds.
pub fn kernel_for(isa: Isa) -> Option<&'static dyn Microkernel> {
    if !features().supports(isa) {
        return None;
    }
    match isa {
        Isa::Scalar => Some(&SCALAR_KERNEL),
        #[cfg(target_arch = "x86_64")]
        Isa::Sse2 => Some(&SSE2_KERNEL),
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => Some(&AVX2_KERNEL),
        #[cfg(not(target_arch = "x86_64"))]
        _ => None,
    }
}

/// Every kernel this host can execute, best-first — the registry the
/// differential tests and benches sweep.
pub fn available_kernels() -> Vec<&'static dyn Microkernel> {
    Isa::ALL.iter().filter_map(|&isa| kernel_for(isa)).collect()
}

/// The ISA pinned by the `PBQP_DNN_FORCE_ISA` environment variable, if
/// set (read once per process).
///
/// # Panics
///
/// Panics (at first dispatch) if the variable names an unknown ISA or
/// one this host cannot execute — a forced fallback test must never
/// silently run a different kernel than it asked for.
pub fn forced() -> Option<Isa> {
    static FORCED: OnceLock<Option<Isa>> = OnceLock::new();
    *FORCED.get_or_init(|| {
        let raw = std::env::var("PBQP_DNN_FORCE_ISA").ok()?;
        if raw.trim().is_empty() {
            return None;
        }
        let isa = Isa::parse(&raw).unwrap_or_else(|| {
            panic!("PBQP_DNN_FORCE_ISA={raw:?}: unknown ISA (expected avx2, sse2 or scalar)")
        });
        assert!(
            features().supports(isa),
            "PBQP_DNN_FORCE_ISA={}: this host lacks the required CPU features ({:?})",
            isa,
            features(),
        );
        Some(isa)
    })
}

// 0 = no override, otherwise Isa discriminant + 1.
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Process-wide in-code equivalent of `PBQP_DNN_FORCE_ISA`, for tests
/// and benches that need to compare ISAs inside one process. Takes
/// precedence over the environment variable; `None` restores automatic
/// selection.
///
/// This is a global: callers that flip it concurrently with dispatched
/// work must serialize themselves (the repo's cross-ISA tests share a
/// mutex for exactly this reason).
///
/// # Panics
///
/// Panics if the host cannot execute `isa`.
pub fn set_override(isa: Option<Isa>) {
    if let Some(isa) = isa {
        assert!(
            features().supports(isa),
            "set_override({isa}): this host lacks the required CPU features",
        );
    }
    let code = match isa {
        None => 0,
        Some(Isa::Avx2) => 1,
        Some(Isa::Sse2) => 2,
        Some(Isa::Scalar) => 3,
    };
    OVERRIDE.store(code, Ordering::SeqCst);
}

/// The ISA [`active`] currently dispatches to: the [`set_override`]
/// pin, else the `PBQP_DNN_FORCE_ISA` pin, else the best the host
/// supports.
pub fn active_isa() -> Isa {
    match OVERRIDE.load(Ordering::SeqCst) {
        1 => Isa::Avx2,
        2 => Isa::Sse2,
        3 => Isa::Scalar,
        _ => forced().unwrap_or_else(|| features().best()),
    }
}

/// The microkernel every dispatched caller (packed f32 GEMM, quantized
/// GEMM, int8 pointwise ops) uses right now. See [`active_isa`] for the
/// resolution order.
pub fn active() -> &'static dyn Microkernel {
    kernel_for(active_isa()).expect("active_isa is always executable")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_is_always_available_and_best_is_ordered() {
        let f = CpuFeatures::detect();
        assert!(f.supports(Isa::Scalar));
        let best = f.best();
        assert!(f.supports(best));
        let kernels = available_kernels();
        assert!(!kernels.is_empty());
        assert_eq!(kernels[0].isa(), best);
        assert_eq!(kernels.last().unwrap().isa(), Isa::Scalar);
    }

    #[test]
    fn isa_names_round_trip() {
        for isa in Isa::ALL {
            assert_eq!(Isa::parse(isa.name()), Some(isa));
            assert_eq!(Isa::parse(&isa.name().to_ascii_uppercase()), Some(isa));
        }
        assert_eq!(Isa::parse("neon"), None);
    }

    #[test]
    fn override_changes_active_isa() {
        // Serialized with nothing: this test only flips between scalar
        // and auto, and asserts on active_isa() alone.
        set_override(Some(Isa::Scalar));
        assert_eq!(active_isa(), Isa::Scalar);
        assert_eq!(active().isa(), Isa::Scalar);
        set_override(None);
        assert_eq!(active_isa(), forced().unwrap_or_else(|| CpuFeatures::detect().best()));
    }

    #[test]
    fn pair_packing_zero_pads_depth_and_columns() {
        // 3×5 slab: odd depth and a ragged final panel.
        let b: Vec<i8> = (1..=15).map(|v| v as i8).collect();
        let mut dst = vec![99i8; packed_b_i8_bytes(5, 3)];
        pack_b_i8_pairs(&mut dst, &b, 5, 0, 3);
        // Panel 0, pair 0, column 0: rows 0 and 1 of column 0.
        assert_eq!(&dst[0..4], &[1, 6, 2, 7]);
        // Pair 1 (row 2 + padding).
        let pair1 = &dst[16..20];
        assert_eq!(pair1, &[11, 0, 12, 0]);
        // Columns 5..8 of the (only) panel are zero padding.
        assert_eq!(&dst[10..16], &[0; 6]);
    }
}
