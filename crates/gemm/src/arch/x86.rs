//! x86-64 SIMD microkernels (AVX2+FMA and SSE2).
//!
//! The only `unsafe` in the workspace lives here, and it is of exactly
//! one kind: calling `#[target_feature]` functions whose required CPU
//! features the dispatcher has already verified (construction of these
//! kernels is gated on [`super::CpuFeatures`], so the trait methods are
//! sound to call whenever the registry hands the kernel out), plus raw
//! loads/stores within bounds that are asserted or guaranteed by the
//! pack formats.
//!
//! int8 panels widen `i8 → i16` (`_mm256_cvtepi8_epi16` / compare-and-
//! unpack on SSE2) and reduce with `_mm{,256}_madd_epi16`: two k-steps
//! per column per instruction, exact for all `i8` inputs. The saturating
//! `_mm256_maddubs_epi16` (`u8 × i8`) would be one widening cheaper but
//! can saturate its intermediate `i16` sums and mis-handles `-128`, so
//! it cannot meet the bit-exactness contract on arbitrary codes.

#![allow(unsafe_code)]

use std::arch::x86_64::*;

use super::{Isa, Microkernel, F32_MR, F32_NR, I8_MR, I8_NR};

// ---------------------------------------------------------------- AVX2

/// 256-bit kernels; requires AVX2 and FMA.
pub(super) struct Avx2Kernel;

impl Microkernel for Avx2Kernel {
    fn isa(&self) -> Isa {
        Isa::Avx2
    }

    fn f32_panel(
        &self,
        a_panel: &[f32],
        b_panel: &[f32],
        c: &mut [f32],
        n: usize,
        pc: usize,
        r0: usize,
        rh: usize,
        j0: usize,
        jw: usize,
    ) {
        debug_assert!(a_panel.len() >= pc * F32_MR && b_panel.len() >= pc * F32_NR);
        // SAFETY: this kernel is only reachable through the registry,
        // which refuses to hand it out unless AVX2+FMA are present.
        unsafe { f32_panel_avx2(a_panel, b_panel, c, n, pc, r0, rh, j0, jw) }
    }

    fn i8_panel(
        &self,
        a_pairs: &[i32],
        pc: usize,
        b_panel: &[i8],
        c: &mut [i32],
        ldc: usize,
        row0: usize,
        rh: usize,
        j0: usize,
        jw: usize,
    ) {
        // SAFETY: dispatch-gated on AVX2 (see f32_panel).
        unsafe { i8_panel_avx2(a_pairs, pc, b_panel, c, ldc, row0, rh, j0, jw) }
    }

    fn i8_relu(&self, src: &[i8], zp: i8, dst: &mut [i8]) {
        assert!(dst.len() >= src.len(), "relu dst too small");
        // SAFETY: dispatch-gated on AVX2 (see f32_panel).
        unsafe { i8_relu_avx2(src, zp, dst) }
    }

    fn i8_minmax(&self, src: &[i8]) -> (i8, i8) {
        // SAFETY: dispatch-gated on AVX2 (see f32_panel).
        unsafe { i8_minmax_avx2(src) }
    }
}

#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn f32_panel_avx2(
    a_panel: &[f32],
    b_panel: &[f32],
    c: &mut [f32],
    n: usize,
    pc: usize,
    r0: usize,
    rh: usize,
    j0: usize,
    jw: usize,
) {
    let mut acc = [_mm256_setzero_ps(); F32_MR];
    let ap = a_panel.as_ptr();
    let bp = b_panel.as_ptr();
    for p in 0..pc {
        let b = _mm256_loadu_ps(bp.add(p * F32_NR));
        for (r, slot) in acc.iter_mut().enumerate() {
            let av = _mm256_set1_ps(*ap.add(p * F32_MR + r));
            *slot = _mm256_fmadd_ps(av, b, *slot);
        }
    }
    for r in 0..rh {
        let c_row = &mut c[(r0 + r) * n + j0..(r0 + r) * n + j0 + jw];
        if jw == F32_NR {
            let cur = _mm256_loadu_ps(c_row.as_ptr());
            _mm256_storeu_ps(c_row.as_mut_ptr(), _mm256_add_ps(cur, acc[r]));
        } else {
            let mut spill = [0.0f32; F32_NR];
            _mm256_storeu_ps(spill.as_mut_ptr(), acc[r]);
            for (cv, &av) in c_row.iter_mut().zip(spill.iter()) {
                *cv += av;
            }
        }
    }
}

#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn i8_panel_avx2(
    a_pairs: &[i32],
    pc: usize,
    b_panel: &[i8],
    c: &mut [i32],
    ldc: usize,
    row0: usize,
    rh: usize,
    j0: usize,
    jw: usize,
) {
    let pc2 = pc.div_ceil(2);
    debug_assert!(b_panel.len() >= pc2 * I8_NR * 2 && a_pairs.len() >= pc2 * I8_MR);
    let mut acc = [_mm256_setzero_si256(); I8_MR];
    let bp = b_panel.as_ptr();
    let ap = a_pairs.as_ptr();
    for p2 in 0..pc2 {
        // 16 bytes = the two k-steps of this pair for all 8 columns.
        let b16 = _mm_loadu_si128(bp.add(p2 * I8_NR * 2) as *const __m128i);
        let bw = _mm256_cvtepi8_epi16(b16);
        for (r, slot) in acc.iter_mut().take(rh).enumerate() {
            // One vpbroadcastd from the prebuilt pair block.
            let av = _mm256_set1_epi32(*ap.add(p2 * I8_MR + r));
            *slot = _mm256_add_epi32(*slot, _mm256_madd_epi16(av, bw));
        }
    }
    for r in 0..rh {
        let c_row = &mut c[(row0 + r) * ldc + j0..(row0 + r) * ldc + j0 + jw];
        if jw == I8_NR {
            let cur = _mm256_loadu_si256(c_row.as_ptr() as *const __m256i);
            _mm256_storeu_si256(c_row.as_mut_ptr() as *mut __m256i, _mm256_add_epi32(cur, acc[r]));
        } else {
            let mut spill = [0i32; I8_NR];
            _mm256_storeu_si256(spill.as_mut_ptr() as *mut __m256i, acc[r]);
            for (cv, &av) in c_row.iter_mut().zip(spill.iter()) {
                *cv += av;
            }
        }
    }
}

#[target_feature(enable = "avx2")]
unsafe fn i8_relu_avx2(src: &[i8], zp: i8, dst: &mut [i8]) {
    let zpv = _mm256_set1_epi8(zp);
    let n = src.len();
    let mut i = 0;
    while i + 32 <= n {
        let v = _mm256_loadu_si256(src.as_ptr().add(i) as *const __m256i);
        let m = _mm256_max_epi8(v, zpv);
        _mm256_storeu_si256(dst.as_mut_ptr().add(i) as *mut __m256i, m);
        i += 32;
    }
    for j in i..n {
        dst[j] = src[j].max(zp);
    }
}

#[target_feature(enable = "avx2")]
unsafe fn i8_minmax_avx2(src: &[i8]) -> (i8, i8) {
    let n = src.len();
    let (mut lo, mut hi) = (i8::MAX, i8::MIN);
    let mut i = 0;
    if n >= 32 {
        let mut vlo = _mm256_set1_epi8(i8::MAX);
        let mut vhi = _mm256_set1_epi8(i8::MIN);
        while i + 32 <= n {
            let v = _mm256_loadu_si256(src.as_ptr().add(i) as *const __m256i);
            vlo = _mm256_min_epi8(vlo, v);
            vhi = _mm256_max_epi8(vhi, v);
            i += 32;
        }
        let mut slo = [0i8; 32];
        let mut shi = [0i8; 32];
        _mm256_storeu_si256(slo.as_mut_ptr() as *mut __m256i, vlo);
        _mm256_storeu_si256(shi.as_mut_ptr() as *mut __m256i, vhi);
        for j in 0..32 {
            lo = lo.min(slo[j]);
            hi = hi.max(shi[j]);
        }
    }
    for &q in &src[i..] {
        lo = lo.min(q);
        hi = hi.max(q);
    }
    (lo, hi)
}

// ---------------------------------------------------------------- SSE2

/// 128-bit kernels; SSE2 is architecturally guaranteed on x86-64, so
/// this tier is always available there — the "degraded but still SIMD"
/// fallback the CI matrix pins.
pub(super) struct Sse2Kernel;

impl Microkernel for Sse2Kernel {
    fn isa(&self) -> Isa {
        Isa::Sse2
    }

    fn f32_panel(
        &self,
        a_panel: &[f32],
        b_panel: &[f32],
        c: &mut [f32],
        n: usize,
        pc: usize,
        r0: usize,
        rh: usize,
        j0: usize,
        jw: usize,
    ) {
        // SAFETY: SSE2 is part of the x86-64 baseline.
        unsafe { f32_panel_sse2(a_panel, b_panel, c, n, pc, r0, rh, j0, jw) }
    }

    fn i8_panel(
        &self,
        a_pairs: &[i32],
        pc: usize,
        b_panel: &[i8],
        c: &mut [i32],
        ldc: usize,
        row0: usize,
        rh: usize,
        j0: usize,
        jw: usize,
    ) {
        // SAFETY: SSE2 is part of the x86-64 baseline.
        unsafe { i8_panel_sse2(a_pairs, pc, b_panel, c, ldc, row0, rh, j0, jw) }
    }

    fn i8_relu(&self, src: &[i8], zp: i8, dst: &mut [i8]) {
        assert!(dst.len() >= src.len(), "relu dst too small");
        // SAFETY: SSE2 is part of the x86-64 baseline.
        unsafe { i8_relu_sse2(src, zp, dst) }
    }
}

#[target_feature(enable = "sse2")]
#[allow(clippy::too_many_arguments)]
unsafe fn f32_panel_sse2(
    a_panel: &[f32],
    b_panel: &[f32],
    c: &mut [f32],
    n: usize,
    pc: usize,
    r0: usize,
    rh: usize,
    j0: usize,
    jw: usize,
) {
    // Two 4-lane halves per row: mul then add, the exact rounding
    // sequence of the scalar kernel — bit-identical to it.
    let mut acc = [[_mm_setzero_ps(); 2]; F32_MR];
    let ap = a_panel.as_ptr();
    let bp = b_panel.as_ptr();
    for p in 0..pc {
        let b_lo = _mm_loadu_ps(bp.add(p * F32_NR));
        let b_hi = _mm_loadu_ps(bp.add(p * F32_NR + 4));
        for (r, slot) in acc.iter_mut().enumerate() {
            let av = _mm_set1_ps(*ap.add(p * F32_MR + r));
            slot[0] = _mm_add_ps(slot[0], _mm_mul_ps(av, b_lo));
            slot[1] = _mm_add_ps(slot[1], _mm_mul_ps(av, b_hi));
        }
    }
    for r in 0..rh {
        let c_row = &mut c[(r0 + r) * n + j0..(r0 + r) * n + j0 + jw];
        if jw == F32_NR {
            let cur_lo = _mm_loadu_ps(c_row.as_ptr());
            let cur_hi = _mm_loadu_ps(c_row.as_ptr().add(4));
            _mm_storeu_ps(c_row.as_mut_ptr(), _mm_add_ps(cur_lo, acc[r][0]));
            _mm_storeu_ps(c_row.as_mut_ptr().add(4), _mm_add_ps(cur_hi, acc[r][1]));
        } else {
            let mut spill = [0.0f32; F32_NR];
            _mm_storeu_ps(spill.as_mut_ptr(), acc[r][0]);
            _mm_storeu_ps(spill.as_mut_ptr().add(4), acc[r][1]);
            for (cv, &av) in c_row.iter_mut().zip(spill.iter()) {
                *cv += av;
            }
        }
    }
}

#[target_feature(enable = "sse2")]
#[allow(clippy::too_many_arguments)]
unsafe fn i8_panel_sse2(
    a_pairs: &[i32],
    pc: usize,
    b_panel: &[i8],
    c: &mut [i32],
    ldc: usize,
    row0: usize,
    rh: usize,
    j0: usize,
    jw: usize,
) {
    let pc2 = pc.div_ceil(2);
    debug_assert!(b_panel.len() >= pc2 * I8_NR * 2 && a_pairs.len() >= pc2 * I8_MR);
    // Columns 0..4 accumulate in the lo half, 4..8 in the hi half.
    let mut acc = [[_mm_setzero_si128(); 2]; I8_MR];
    let bp = b_panel.as_ptr();
    let ap = a_pairs.as_ptr();
    let zero = _mm_setzero_si128();
    for p2 in 0..pc2 {
        let v = _mm_loadu_si128(bp.add(p2 * I8_NR * 2) as *const __m128i);
        // Sign-extend 16 i8 to 2×8 i16 without SSE4.1: unpack against
        // the sign mask.
        let sign = _mm_cmpgt_epi8(zero, v);
        let w_lo = _mm_unpacklo_epi8(v, sign);
        let w_hi = _mm_unpackhi_epi8(v, sign);
        for (r, slot) in acc.iter_mut().take(rh).enumerate() {
            let av = _mm_set1_epi32(*ap.add(p2 * I8_MR + r));
            slot[0] = _mm_add_epi32(slot[0], _mm_madd_epi16(av, w_lo));
            slot[1] = _mm_add_epi32(slot[1], _mm_madd_epi16(av, w_hi));
        }
    }
    for r in 0..rh {
        let c_row = &mut c[(row0 + r) * ldc + j0..(row0 + r) * ldc + j0 + jw];
        if jw == I8_NR {
            let cur_lo = _mm_loadu_si128(c_row.as_ptr() as *const __m128i);
            let cur_hi = _mm_loadu_si128(c_row.as_ptr().add(4) as *const __m128i);
            _mm_storeu_si128(c_row.as_mut_ptr() as *mut __m128i, _mm_add_epi32(cur_lo, acc[r][0]));
            _mm_storeu_si128(
                c_row.as_mut_ptr().add(4) as *mut __m128i,
                _mm_add_epi32(cur_hi, acc[r][1]),
            );
        } else {
            let mut spill = [0i32; I8_NR];
            _mm_storeu_si128(spill.as_mut_ptr() as *mut __m128i, acc[r][0]);
            _mm_storeu_si128(spill.as_mut_ptr().add(4) as *mut __m128i, acc[r][1]);
            for (cv, &av) in c_row.iter_mut().zip(spill.iter()) {
                *cv += av;
            }
        }
    }
}

#[target_feature(enable = "sse2")]
unsafe fn i8_relu_sse2(src: &[i8], zp: i8, dst: &mut [i8]) {
    // SSE2 has no max_epi8; bias into u8 space, max_epu8, bias back.
    let bias = _mm_set1_epi8(i8::MIN);
    let zpv = _mm_xor_si128(_mm_set1_epi8(zp), bias);
    let n = src.len();
    let mut i = 0;
    while i + 16 <= n {
        let v = _mm_xor_si128(_mm_loadu_si128(src.as_ptr().add(i) as *const __m128i), bias);
        let m = _mm_xor_si128(_mm_max_epu8(v, zpv), bias);
        _mm_storeu_si128(dst.as_mut_ptr().add(i) as *mut __m128i, m);
        i += 16;
    }
    for j in i..n {
        dst[j] = src[j].max(zp);
    }
}
