//! Cache-blocked GEMM: the `i k j` loop nest tiled so that one tile of A,
//! B and C fits comfortably in L1/L2.

use crate::Trans;

const MB: usize = 64;
const NB: usize = 256;
const KB: usize = 128;

/// `C = op(A)·op(B) + β·C` with rectangular cache tiling.
#[allow(clippy::too_many_arguments)] // BLAS-shaped signature
pub(crate) fn gemm(
    ta: Trans,
    tb: Trans,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
) {
    // Scale C by beta once up front so tile passes can accumulate freely.
    if beta == 0.0 {
        c[..m * n].fill(0.0);
    } else if beta != 1.0 {
        for v in c[..m * n].iter_mut() {
            *v *= beta;
        }
    }

    for i0 in (0..m).step_by(MB) {
        let i1 = (i0 + MB).min(m);
        for p0 in (0..k).step_by(KB) {
            let p1 = (p0 + KB).min(k);
            for j0 in (0..n).step_by(NB) {
                let j1 = (j0 + NB).min(n);
                tile(ta, tb, m, n, k, a, b, c, i0, i1, p0, p1, j0, j1);
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
#[inline]
fn tile(
    ta: Trans,
    tb: Trans,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    i0: usize,
    i1: usize,
    p0: usize,
    p1: usize,
    j0: usize,
    j1: usize,
) {
    let _ = k;
    for i in i0..i1 {
        let c_row = &mut c[i * n + j0..i * n + j1];
        for p in p0..p1 {
            let av = match ta {
                Trans::N => a[i * k + p],
                Trans::T => a[p * m + i],
            };
            if av == 0.0 {
                continue;
            }
            match tb {
                Trans::N => {
                    let b_row = &b[p * n + j0..p * n + j1];
                    for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                        *cv += av * bv;
                    }
                }
                Trans::T => {
                    for (jj, cv) in c_row.iter_mut().enumerate() {
                        *cv += av * b[(j0 + jj) * k + p];
                    }
                }
            }
        }
    }
}
