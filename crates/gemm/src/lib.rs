//! Single-precision GEMM substrate.
//!
//! The paper's `im2` and `kn2` convolution families reduce convolution to
//! calls into a BLAS `SGEMM`; the authors use OpenBLAS. This crate is the
//! workspace's from-scratch replacement: a small family of row-major
//! `C = op(A)·op(B) + β·C` kernels with different blocking strategies, plus
//! a row-partitioned multithreaded driver.
//!
//! Three kernels are provided (see [`GemmKind`]):
//!
//! * **Naive** — textbook triple loop, the correctness reference.
//! * **Blocked** — cache-blocked `i k j` loop nest.
//! * **Packed** — panel-packing kernel with an unrolled 4×8 micro-kernel,
//!   the fastest for the matrix shapes produced by im2col.
//!
//! # Example
//!
//! ```
//! use pbqp_dnn_gemm::{Gemm, GemmKind, Trans};
//!
//! // C(2x2) = A(2x3) * B(3x2)
//! let a = [1., 2., 3., 4., 5., 6.];
//! let b = [7., 8., 9., 10., 11., 12.];
//! let mut c = [0.0f32; 4];
//! Gemm::new(GemmKind::Packed).run(Trans::N, Trans::N, 2, 2, 3, &a, &b, 0.0, &mut c);
//! assert_eq!(c, [58., 64., 139., 154.]);
//! ```

// `unsafe` is confined to `arch::x86` (std::arch intrinsics behind
// runtime feature detection); everything else keeps the workspace-wide
// no-unsafe discipline.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod arch;
mod blocked;
mod naive;
mod packed;
mod quant;

pub use quant::QuantGemm;

use arch::{Isa, Microkernel};
use std::fmt;

/// Which GEMM kernel to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum GemmKind {
    /// Textbook triple loop; reference implementation.
    Naive,
    /// Cache-blocked `i k j` loop nest.
    Blocked,
    /// Panel-packed kernel with a 4×8 micro-kernel.
    #[default]
    Packed,
}

impl GemmKind {
    /// All kernels, for sweeps and tests.
    pub const ALL: [GemmKind; 3] = [GemmKind::Naive, GemmKind::Blocked, GemmKind::Packed];
}

impl fmt::Display for GemmKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GemmKind::Naive => f.write_str("naive"),
            GemmKind::Blocked => f.write_str("blocked"),
            GemmKind::Packed => f.write_str("packed"),
        }
    }
}

/// Whether an operand is used as stored (`N`) or transposed (`T`).
///
/// Operands are row-major; `Trans::T` reinterprets a stored `k × m` matrix
/// as the logical `m × k` operand without materializing the transpose in
/// the naive/blocked kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Trans {
    /// Use the operand as stored.
    N,
    /// Use the transpose of the stored operand.
    T,
}

/// A configured GEMM: kernel choice plus thread count.
///
/// The multithreaded driver partitions rows of `C` across `threads` OS
/// threads; each thread runs the configured serial kernel on its slab.
///
/// # Example
///
/// ```
/// use pbqp_dnn_gemm::{Gemm, GemmKind, Trans};
///
/// let gemm = Gemm::new(GemmKind::Blocked).threads(2);
/// let a = vec![1.0f32; 8 * 16];
/// let b = vec![1.0f32; 16 * 4];
/// let mut c = vec![0.0f32; 8 * 4];
/// gemm.run(Trans::N, Trans::N, 8, 4, 16, &a, &b, 0.0, &mut c);
/// assert!(c.iter().all(|&x| x == 16.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gemm {
    kind: GemmKind,
    threads: usize,
    isa: Option<Isa>,
}

impl Default for Gemm {
    fn default() -> Self {
        Gemm::new(GemmKind::default())
    }
}

impl Gemm {
    /// Creates a single-threaded GEMM with the given kernel, dispatching
    /// its packed micro-kernel to the best ISA the host supports (see
    /// [`arch`]).
    pub fn new(kind: GemmKind) -> Gemm {
        Gemm { kind, threads: 1, isa: None }
    }

    /// Sets the number of worker threads (minimum 1).
    pub fn threads(mut self, threads: usize) -> Gemm {
        self.threads = threads.max(1);
        self
    }

    /// Pins the [`GemmKind::Packed`] micro-kernel to a specific ISA
    /// instead of the dispatched one — the explicit hook the
    /// differential tests and benches use to compare ISAs in one
    /// process. `None` restores automatic dispatch. The naive and
    /// blocked kinds are pure scalar loops and ignore this.
    ///
    /// # Panics
    ///
    /// `run`/`run_with_scratch` panic if the host cannot execute the
    /// pinned ISA.
    pub fn isa(mut self, isa: Option<Isa>) -> Gemm {
        self.isa = isa;
        self
    }

    fn microkernel(&self) -> &'static dyn Microkernel {
        match self.isa {
            None => arch::active(),
            Some(isa) => arch::kernel_for(isa)
                .unwrap_or_else(|| panic!("ISA {isa} is not executable on this host")),
        }
    }

    /// The configured kernel.
    pub fn kind(&self) -> GemmKind {
        self.kind
    }

    /// Computes `C = op(A)·op(B) + β·C`.
    ///
    /// `C` is `m × n` row-major. With `Trans::N`, `a` is `m × k` and `b` is
    /// `k × n`; with `Trans::T` the stored shapes are transposed
    /// (`k × m` / `n × k`).
    ///
    /// Allocates its packing/transpose workspace internally; steady-state
    /// callers that must stay off the heap use [`Gemm::run_with_scratch`]
    /// with a buffer of [`Gemm::scratch_elems`] elements instead.
    ///
    /// # Panics
    ///
    /// Panics if a slice is smaller than its operand shape requires.
    #[allow(clippy::too_many_arguments)] // BLAS-shaped signature
    pub fn run(
        &self,
        ta: Trans,
        tb: Trans,
        m: usize,
        n: usize,
        k: usize,
        a: &[f32],
        b: &[f32],
        beta: f32,
        c: &mut [f32],
    ) {
        let mut scratch = vec![0.0f32; self.scratch_elems(ta, tb, m, n, k)];
        self.run_with_scratch(ta, tb, m, n, k, a, b, beta, c, &mut scratch);
    }

    /// Workspace elements [`Gemm::run_with_scratch`] needs for these
    /// operand shapes: pack panels for the packed kernel (per worker in
    /// the multithreaded driver) plus any `Trans::T` materialization.
    ///
    /// # Example
    ///
    /// ```
    /// use pbqp_dnn_gemm::{Gemm, GemmKind, Trans};
    ///
    /// let gemm = Gemm::new(GemmKind::Packed);
    /// let (m, n, k) = (8, 8, 8);
    /// let mut scratch = vec![0.0f32; gemm.scratch_elems(Trans::N, Trans::N, m, n, k)];
    /// let a = vec![1.0f32; m * k];
    /// let b = vec![1.0f32; k * n];
    /// let mut c = vec![0.0f32; m * n];
    /// // The serving loop reuses `scratch` across calls: zero allocations.
    /// gemm.run_with_scratch(Trans::N, Trans::N, m, n, k, &a, &b, 0.0, &mut c, &mut scratch);
    /// assert!(c.iter().all(|&x| x == 8.0));
    /// ```
    pub fn scratch_elems(&self, ta: Trans, tb: Trans, m: usize, n: usize, k: usize) -> usize {
        if m == 0 || n == 0 {
            return 0;
        }
        let mt = self.threads > 1 && m >= 2 * self.threads;
        match self.kind {
            // The loop kernels consume T-form operands natively; only the
            // row-slab fan-out needs an N-form A.
            GemmKind::Naive | GemmKind::Blocked => {
                if mt && ta == Trans::T {
                    m * k
                } else {
                    0
                }
            }
            GemmKind::Packed => {
                let mut elems = 0;
                if ta == Trans::T {
                    elems += m * k;
                }
                if tb == Trans::T {
                    elems += k * n;
                }
                let workers = if mt { packed::mt_workers(m, self.threads) } else { 1 };
                elems + packed::b_pack_elems(n) + workers * packed::a_pack_elems()
            }
        }
    }

    /// [`Gemm::run`] with a caller-provided workspace of at least
    /// [`Gemm::scratch_elems`] elements — the zero-allocation path used
    /// by the steady-state serving engine. Scratch contents on entry are
    /// irrelevant; results are bit-identical to [`Gemm::run`].
    ///
    /// # Panics
    ///
    /// Panics if an operand slice or `scratch` is too small.
    #[allow(clippy::too_many_arguments)] // BLAS-shaped signature
    pub fn run_with_scratch(
        &self,
        ta: Trans,
        tb: Trans,
        m: usize,
        n: usize,
        k: usize,
        a: &[f32],
        b: &[f32],
        beta: f32,
        c: &mut [f32],
        scratch: &mut [f32],
    ) {
        assert!(a.len() >= m * k, "A too small: {} < {}", a.len(), m * k);
        assert!(b.len() >= k * n, "B too small: {} < {}", b.len(), k * n);
        assert!(c.len() >= m * n, "C too small: {} < {}", c.len(), m * n);
        let need = self.scratch_elems(ta, tb, m, n, k);
        assert!(scratch.len() >= need, "scratch too small: {} < {need}", scratch.len());
        if m == 0 || n == 0 {
            return;
        }

        if self.threads <= 1 || m < 2 * self.threads {
            return self.run_serial(ta, tb, m, n, k, a, b, beta, c, scratch);
        }

        // The parallel drivers slab rows of C, which requires an N-form A;
        // materialize the transpose once if needed.
        let mut rest = scratch;
        let a_n: &[f32] = match ta {
            Trans::N => &a[..m * k],
            Trans::T => {
                let (t, r) = std::mem::take(&mut rest).split_at_mut(m * k);
                transpose_into(a, k, m, t);
                rest = r;
                t
            }
        };

        if self.kind == GemmKind::Packed {
            // The packed kernel gets a dedicated driver that packs B once
            // and shares the panels read-only across workers, instead of
            // letting every row-slab worker re-pack all of B.
            let b_n: &[f32] = match tb {
                Trans::N => &b[..k * n],
                Trans::T => {
                    let (t, r) = std::mem::take(&mut rest).split_at_mut(k * n);
                    transpose_into(b, n, k, t);
                    rest = r;
                    t
                }
            };
            packed::gemm_nn_mt_ws(
                self.microkernel(),
                m,
                n,
                k,
                a_n,
                b_n,
                beta,
                c,
                self.threads,
                rest,
            );
            return;
        }

        let rows_per = m.div_ceil(self.threads);
        std::thread::scope(|scope| {
            let mut c_rest = &mut c[..m * n];
            let mut a_rest = a_n;
            let mut handles = Vec::new();
            while !c_rest.is_empty() {
                let rows = rows_per.min(c_rest.len() / n);
                let (c_slab, c_next) = c_rest.split_at_mut(rows * n);
                let (a_slab, a_next) = a_rest.split_at(rows * k);
                c_rest = c_next;
                a_rest = a_next;
                let this = *self;
                handles.push(scope.spawn(move || {
                    this.run_serial(Trans::N, tb, rows, n, k, a_slab, b, beta, c_slab, &mut []);
                }));
            }
            for h in handles {
                h.join().expect("gemm worker panicked");
            }
        });
    }

    #[allow(clippy::too_many_arguments)] // BLAS-shaped signature
    fn run_serial(
        &self,
        ta: Trans,
        tb: Trans,
        m: usize,
        n: usize,
        k: usize,
        a: &[f32],
        b: &[f32],
        beta: f32,
        c: &mut [f32],
        scratch: &mut [f32],
    ) {
        match self.kind {
            GemmKind::Naive => naive::gemm(ta, tb, m, n, k, a, b, beta, c),
            GemmKind::Blocked => blocked::gemm(ta, tb, m, n, k, a, b, beta, c),
            GemmKind::Packed => {
                // The packed micro-kernel consumes N-form operands only.
                let mut rest = scratch;
                let a_n: &[f32] = match ta {
                    Trans::N => a,
                    Trans::T => {
                        let (t, r) = std::mem::take(&mut rest).split_at_mut(m * k);
                        transpose_into(a, k, m, t);
                        rest = r;
                        t
                    }
                };
                let b_n: &[f32] = match tb {
                    Trans::N => b,
                    Trans::T => {
                        let (t, r) = std::mem::take(&mut rest).split_at_mut(k * n);
                        transpose_into(b, n, k, t);
                        rest = r;
                        t
                    }
                };
                let (a_pack, rest) = rest.split_at_mut(packed::a_pack_elems());
                let (b_pack, _) = rest.split_at_mut(packed::b_pack_elems(n));
                packed::gemm_nn_ws(self.microkernel(), m, n, k, a_n, b_n, beta, c, a_pack, b_pack);
            }
        }
    }
}

/// Materializes the transpose of a `rows × cols` row-major matrix.
pub fn transpose(src: &[f32], rows: usize, cols: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; rows * cols];
    transpose_into(src, rows, cols, &mut out);
    out
}

/// Writes the transpose of a `rows × cols` row-major matrix into `dst`
/// (allocation-free form of [`transpose`]).
///
/// # Panics
///
/// Panics if `dst` is shorter than `rows * cols`.
pub fn transpose_into(src: &[f32], rows: usize, cols: usize, dst: &mut [f32]) {
    for r in 0..rows {
        for cidx in 0..cols {
            dst[cidx * rows + r] = src[r * cols + cidx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(clippy::too_many_arguments)] // BLAS-shaped signature
    fn reference(
        ta: Trans,
        tb: Trans,
        m: usize,
        n: usize,
        k: usize,
        a: &[f32],
        b: &[f32],
        beta: f32,
        c0: &[f32],
    ) -> Vec<f32> {
        let mut c = c0.to_vec();
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f64;
                for p in 0..k {
                    let av = match ta {
                        Trans::N => a[i * k + p],
                        Trans::T => a[p * m + i],
                    };
                    let bv = match tb {
                        Trans::N => b[p * n + j],
                        Trans::T => b[j * k + p],
                    };
                    acc += f64::from(av) * f64::from(bv);
                }
                c[i * n + j] = (acc + f64::from(beta) * f64::from(c0[i * n + j])) as f32;
            }
        }
        c
    }

    fn fill(len: usize, seed: u64) -> Vec<f32> {
        let mut state = seed.max(1);
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 40) as f32 / (1u64 << 23) as f32) - 1.0
            })
            .collect()
    }

    fn check_all(m: usize, n: usize, k: usize) {
        let a = fill(m * k, 1);
        let b = fill(k * n, 2);
        let c0 = fill(m * n, 3);
        for kind in GemmKind::ALL {
            for threads in [1, 3] {
                for ta in [Trans::N, Trans::T] {
                    for tb in [Trans::N, Trans::T] {
                        for beta in [0.0f32, 1.0] {
                            let mut c = c0.clone();
                            Gemm::new(kind)
                                .threads(threads)
                                .run(ta, tb, m, n, k, &a, &b, beta, &mut c);
                            let want = reference(ta, tb, m, n, k, &a, &b, beta, &c0);
                            for (got, want) in c.iter().zip(&want) {
                                assert!(
                                    (got - want).abs() <= 1e-3,
                                    "{kind} t{threads} {ta:?}{tb:?} beta={beta}: {got} vs {want}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn small_shapes_match_reference() {
        check_all(1, 1, 1);
        check_all(2, 3, 4);
        check_all(4, 4, 4);
        check_all(5, 7, 3);
    }

    #[test]
    fn awkward_shapes_match_reference() {
        check_all(13, 17, 9);
        check_all(33, 5, 40);
        check_all(8, 64, 1);
        check_all(1, 31, 31);
    }

    #[test]
    fn medium_shape_matches_reference() {
        check_all(48, 52, 36);
    }

    #[test]
    fn empty_dimensions_are_noops() {
        let a: Vec<f32> = vec![];
        let b: Vec<f32> = vec![];
        let mut c: Vec<f32> = vec![];
        Gemm::default().run(Trans::N, Trans::N, 0, 0, 0, &a, &b, 0.0, &mut c);
        // k = 0 with nonzero m, n zeroes C (beta = 0).
        let mut c2 = vec![5.0f32; 4];
        Gemm::default().run(Trans::N, Trans::N, 2, 2, 0, &a, &b, 0.0, &mut c2);
        assert_eq!(c2, [0.0; 4]);
    }

    #[test]
    fn transpose_round_trips() {
        let m = fill(6 * 4, 9);
        let t = transpose(&m, 6, 4);
        let back = transpose(&t, 4, 6);
        assert_eq!(m, back);
    }

    #[test]
    fn threaded_packed_is_bit_identical_to_serial() {
        // The shared-panel driver must preserve the serial accumulation
        // order exactly, not just within tolerance.
        for (m, n, k) in [(8, 8, 8), (33, 17, 300), (130, 64, 40), (256, 9, 257)] {
            let a = fill(m * k, 4);
            let b = fill(k * n, 5);
            let c0 = fill(m * n, 6);
            for beta in [0.0f32, 0.5, 1.0] {
                let mut serial = c0.clone();
                Gemm::new(GemmKind::Packed).run(
                    Trans::N,
                    Trans::N,
                    m,
                    n,
                    k,
                    &a,
                    &b,
                    beta,
                    &mut serial,
                );
                for threads in [2, 3, 7] {
                    let mut par = c0.clone();
                    Gemm::new(GemmKind::Packed).threads(threads).run(
                        Trans::N,
                        Trans::N,
                        m,
                        n,
                        k,
                        &a,
                        &b,
                        beta,
                        &mut par,
                    );
                    assert_eq!(serial, par, "m={m} n={n} k={k} t={threads} beta={beta}");
                }
            }
        }
    }

    #[test]
    fn scratch_path_is_bit_identical_and_reusable() {
        let (m, n, k) = (33, 17, 40);
        let a = fill(m * k, 11);
        let b = fill(k * n, 12);
        let c0 = fill(m * n, 13);
        // One dirty scratch buffer reused across every configuration,
        // sized for the worst case encountered.
        let mut scratch: Vec<f32> = Vec::new();
        for kind in GemmKind::ALL {
            for threads in [1, 3] {
                for ta in [Trans::N, Trans::T] {
                    for tb in [Trans::N, Trans::T] {
                        let gemm = Gemm::new(kind).threads(threads);
                        let need = gemm.scratch_elems(ta, tb, m, n, k);
                        if scratch.len() < need {
                            scratch.resize(need, 0.0);
                        }
                        scratch.fill(f32::NAN); // contents must not matter
                        let mut plain = c0.clone();
                        gemm.run(ta, tb, m, n, k, &a, &b, 1.0, &mut plain);
                        let mut ws = c0.clone();
                        gemm.run_with_scratch(ta, tb, m, n, k, &a, &b, 1.0, &mut ws, &mut scratch);
                        assert_eq!(plain, ws, "{kind} t{threads} {ta:?}{tb:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn transpose_into_matches_transpose() {
        let src = fill(5 * 7, 21);
        let mut dst = vec![f32::NAN; 5 * 7];
        transpose_into(&src, 5, 7, &mut dst);
        assert_eq!(dst, transpose(&src, 5, 7));
    }

    #[test]
    fn beta_accumulates() {
        let a = [1.0f32, 0.0, 0.0, 1.0];
        let b = [2.0f32, 0.0, 0.0, 2.0];
        let mut c = [10.0f32, 0.0, 0.0, 10.0];
        Gemm::new(GemmKind::Naive).run(Trans::N, Trans::N, 2, 2, 2, &a, &b, 1.0, &mut c);
        assert_eq!(c, [12.0, 0.0, 0.0, 12.0]);
    }
}
