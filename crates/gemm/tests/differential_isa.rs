//! Differential kernel tests: every micro-kernel the host can execute
//! vs the naive reference, across randomized shapes, zero points, and
//! thread counts.
//!
//! The contract under test (see `pbqp_dnn_gemm::arch`):
//!
//! * **int8 is bit-exact on every ISA** — integer addition is
//!   associative, so any accumulation order gives the same words;
//! * **SSE2 f32 is bit-identical to scalar** — it reproduces the
//!   mul-then-add rounding sequence with the same k-order;
//! * **AVX2 f32 is ULP-close** — FMA skips the intermediate rounding,
//!   so it is *more* accurate, not identical; we bound it against an
//!   f64 reference.

use pbqp_dnn_gemm::arch::{self, Isa};
use pbqp_dnn_gemm::{Gemm, GemmKind, QuantGemm, Trans};

/// splitmix64: tiny deterministic PRNG, the repo-wide test idiom.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn i8s(&mut self, len: usize) -> Vec<i8> {
        (0..len).map(|_| self.next() as i8).collect()
    }

    fn f32s(&mut self, len: usize) -> Vec<f32> {
        (0..len).map(|_| (self.next() % 2000) as f32 / 1000.0 - 1.0).collect()
    }
}

fn naive_quant(m: usize, n: usize, k: usize, a: &[i8], a_zp: i32, b: &[i8], b_zp: i32) -> Vec<i32> {
    let mut c = vec![0i32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0i32;
            for p in 0..k {
                acc += (i32::from(a[i * k + p]) - a_zp) * (i32::from(b[p * n + j]) - b_zp);
            }
            c[i * n + j] = acc;
        }
    }
    c
}

fn naive_f64(m: usize, n: usize, k: usize, a: &[f32], b: &[f32]) -> Vec<f64> {
    let mut c = vec![0f64; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0f64;
            for p in 0..k {
                acc += f64::from(a[i * k + p]) * f64::from(b[p * n + j]);
            }
            c[i * n + j] = acc;
        }
    }
    c
}

/// Shapes chosen to hit every remainder path: odd k (pair-packing
/// tail), ragged n (partial column panel), m off the MR grid, and
/// degenerate tiny dims.
const SHAPES: &[(usize, usize, usize)] = &[
    (1, 1, 1),
    (4, 8, 16),
    (5, 9, 7),
    (13, 21, 77),
    (16, 24, 33),
    (3, 17, 129),
    (31, 7, 258),
    (64, 40, 300),
];

#[test]
fn int8_every_isa_matches_the_naive_reference_bit_for_bit() {
    for kernel in arch::available_kernels() {
        let isa = kernel.isa();
        let mut rng = Rng(0xD1FF_0001);
        for &(m, n, k) in SHAPES {
            for &(a_zp, b_zp) in &[(0, 0), (3, -9), (-127, 127), (127, -127)] {
                let a = rng.i8s(m * k);
                let b = rng.i8s(k * n);
                let want = naive_quant(m, n, k, &a, a_zp, &b, b_zp);
                for threads in [1, 4] {
                    let g = QuantGemm::new().threads(threads).isa(Some(isa));
                    let mut c = vec![0i32; m * n];
                    g.run(m, n, k, &a, a_zp, &b, b_zp, &mut c);
                    assert_eq!(c, want, "{isa} {m}x{n}x{k} zp=({a_zp},{b_zp}) t={threads}");
                }
            }
        }
    }
}

#[test]
fn int8_dirty_scratch_reuse_is_bit_identical_on_every_isa() {
    for kernel in arch::available_kernels() {
        let isa = kernel.isa();
        let mut rng = Rng(0xD1FF_0002);
        let g = QuantGemm::new().isa(Some(isa));
        // One scratch buffer sized for the largest shape, deliberately
        // poisoned between calls: contents on entry must not matter.
        let cap = SHAPES.iter().map(|&(m, n, k)| g.scratch_elems(m, n, k)).max().unwrap();
        let mut scratch = vec![0i32; cap];
        for &(m, n, k) in SHAPES {
            let a = rng.i8s(m * k);
            let b = rng.i8s(k * n);
            let want = naive_quant(m, n, k, &a, 5, &b, -3);
            scratch.fill(i32::MIN | 0x5a5a5a5a);
            let mut c = vec![i32::MAX; m * n];
            g.run_with_scratch(m, n, k, &a, 5, &b, -3, &mut c, &mut scratch);
            assert_eq!(c, want, "{isa} {m}x{n}x{k}");
        }
    }
}

#[test]
fn f32_every_isa_stays_within_float_tolerance_of_f64() {
    for kernel in arch::available_kernels() {
        let isa = kernel.isa();
        let mut rng = Rng(0xD1FF_0003);
        for &(m, n, k) in SHAPES {
            let a = rng.f32s(m * k);
            let b = rng.f32s(k * n);
            let want = naive_f64(m, n, k, &a, &b);
            let g = Gemm::new(GemmKind::Packed).isa(Some(isa));
            let mut c = vec![0.0f32; m * n];
            g.run(Trans::N, Trans::N, m, n, k, &a, &b, 0.0, &mut c);
            for (i, (&got, &exact)) in c.iter().zip(want.iter()).enumerate() {
                let err = (f64::from(got) - exact).abs();
                // Forward-error bound for k-term f32 accumulation.
                let tol = 1e-5 * (k as f64) * exact.abs().max(1.0);
                assert!(err <= tol, "{isa} {m}x{n}x{k} [{i}]: {got} vs {exact}");
            }
        }
    }
}

#[test]
fn f32_sse2_is_bit_identical_to_scalar() {
    if arch::kernel_for(Isa::Sse2).is_none() {
        return;
    }
    let mut rng = Rng(0xD1FF_0004);
    for &(m, n, k) in SHAPES {
        let a = rng.f32s(m * k);
        let b = rng.f32s(k * n);
        let mut c_scalar = vec![0.0f32; m * n];
        let mut c_sse2 = vec![0.0f32; m * n];
        Gemm::new(GemmKind::Packed).isa(Some(Isa::Scalar)).run(
            Trans::N,
            Trans::N,
            m,
            n,
            k,
            &a,
            &b,
            0.0,
            &mut c_scalar,
        );
        Gemm::new(GemmKind::Packed).isa(Some(Isa::Sse2)).run(
            Trans::N,
            Trans::N,
            m,
            n,
            k,
            &a,
            &b,
            0.0,
            &mut c_sse2,
        );
        // Same mul-then-add rounding in the same k-order: exact match.
        assert_eq!(
            c_scalar.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            c_sse2.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "{m}x{n}x{k}"
        );
    }
}

#[test]
fn f32_multithreaded_matches_serial_bit_for_bit_on_every_isa() {
    for kernel in arch::available_kernels() {
        let isa = kernel.isa();
        let mut rng = Rng(0xD1FF_0005);
        let (m, n, k) = (300, 40, 64);
        let a = rng.f32s(m * k);
        let b = rng.f32s(k * n);
        let mut c1 = vec![0.0f32; m * n];
        let mut c4 = vec![0.0f32; m * n];
        let g1 = Gemm::new(GemmKind::Packed).isa(Some(isa));
        let g4 = g1.threads(4);
        g1.run(Trans::N, Trans::N, m, n, k, &a, &b, 0.0, &mut c1);
        g4.run(Trans::N, Trans::N, m, n, k, &a, &b, 0.0, &mut c4);
        assert_eq!(
            c1.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            c4.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "{isa}"
        );
    }
}

#[test]
fn relu_and_minmax_match_scalar_on_every_isa() {
    let scalar = arch::kernel_for(Isa::Scalar).unwrap();
    let mut rng = Rng(0xD1FF_0006);
    // Lengths straddling the 16/32-byte vector widths and their tails.
    for len in [0, 1, 15, 16, 17, 31, 32, 33, 100, 1023] {
        let src = rng.i8s(len);
        for kernel in arch::available_kernels() {
            for zp in [-128i8, -5, 0, 7, 127] {
                let mut want = vec![0i8; len];
                let mut got = vec![0i8; len];
                scalar.i8_relu(&src, zp, &mut want);
                kernel.i8_relu(&src, zp, &mut got);
                assert_eq!(got, want, "relu {} len={len} zp={zp}", kernel.isa());
            }
            assert_eq!(kernel.i8_minmax(&src), scalar.i8_minmax(&src), "minmax len={len}");
        }
    }
}
