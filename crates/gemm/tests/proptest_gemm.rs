//! Property tests for the GEMM substrate: every kernel × transpose
//! combination agrees with a high-precision reference, and the algebraic
//! identities (transpose involution, beta-linearity) hold.

use proptest::prelude::*;

use pbqp_dnn_gemm::{transpose, Gemm, GemmKind, Trans};

fn reference(
    ta: Trans,
    tb: Trans,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c0: &[f32],
) -> Vec<f32> {
    let mut c = c0.to_vec();
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f64;
            for p in 0..k {
                let av = match ta {
                    Trans::N => a[i * k + p],
                    Trans::T => a[p * m + i],
                };
                let bv = match tb {
                    Trans::N => b[p * n + j],
                    Trans::T => b[j * k + p],
                };
                acc += f64::from(av) * f64::from(bv);
            }
            c[i * n + j] = (acc + f64::from(beta) * f64::from(c0[i * n + j])) as f32;
        }
    }
    c
}

fn mat(len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-2.0f32..2.0, len..=len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_kernels_match_reference(
        m in 1usize..24,
        n in 1usize..24,
        k in 1usize..24,
        kind in prop::sample::select(GemmKind::ALL.to_vec()),
        ta in prop::sample::select(vec![Trans::N, Trans::T]),
        tb in prop::sample::select(vec![Trans::N, Trans::T]),
        beta in prop::sample::select(vec![0.0f32, 1.0]),
        threads in 1usize..4,
        seed in 0u64..1000,
    ) {
        let gen = |len: usize, s: u64| -> Vec<f32> {
            let mut state = (seed + s) | 1;
            (0..len).map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 40) as f32 / (1u64 << 23) as f32) - 1.0
            }).collect()
        };
        let a = gen(m * k, 1);
        let b = gen(k * n, 2);
        let c0 = gen(m * n, 3);
        let mut c = c0.clone();
        Gemm::new(kind).threads(threads).run(ta, tb, m, n, k, &a, &b, beta, &mut c);
        let want = reference(ta, tb, m, n, k, &a, &b, beta, &c0);
        for (got, want) in c.iter().zip(&want) {
            prop_assert!((got - want).abs() < 1e-3 * (1.0 + want.abs()));
        }
    }

    #[test]
    fn transpose_is_an_involution(rows in 1usize..20, cols in 1usize..20, data in mat(400)) {
        let src = &data[..rows * cols];
        let back = transpose(&transpose(src, rows, cols), cols, rows);
        prop_assert_eq!(src.to_vec(), back);
    }

    /// C = A·B with beta=1 twice equals 2·(A·B) when C starts at zero.
    #[test]
    fn beta_one_accumulates_linearly(
        m in 1usize..10,
        n in 1usize..10,
        k in 1usize..10,
        data in mat(300),
    ) {
        let a = &data[..m * k];
        let b = &data[m * k..m * k + k * n];
        let mut once = vec![0.0f32; m * n];
        Gemm::new(GemmKind::Packed).run(Trans::N, Trans::N, m, n, k, a, b, 0.0, &mut once);
        let mut twice = vec![0.0f32; m * n];
        Gemm::new(GemmKind::Packed).run(Trans::N, Trans::N, m, n, k, a, b, 0.0, &mut twice);
        Gemm::new(GemmKind::Packed).run(Trans::N, Trans::N, m, n, k, a, b, 1.0, &mut twice);
        for (x, y) in once.iter().zip(&twice) {
            prop_assert!((2.0 * x - y).abs() < 1e-3 * (1.0 + y.abs()));
        }
    }
}
