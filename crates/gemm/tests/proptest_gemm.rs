//! Property tests for the GEMM substrate: every kernel × transpose
//! combination agrees with a high-precision reference, and the algebraic
//! identities (transpose involution, beta-linearity) hold.
//!
//! The build environment has no crates.io access, so instead of proptest
//! each test derives its random cases from a fixed-seed splitmix64
//! generator — deterministic, but covering the same input space.

use pbqp_dnn_gemm::{transpose, Gemm, GemmKind, Trans};
use pbqp_dnn_tensor::rng::SplitMix64;

fn mat(rng: &mut SplitMix64, len: usize) -> Vec<f32> {
    (0..len).map(|_| rng.f32(-2.0, 2.0)).collect()
}

#[allow(clippy::too_many_arguments)] // BLAS-shaped signature
fn reference(
    ta: Trans,
    tb: Trans,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c0: &[f32],
) -> Vec<f32> {
    let mut c = c0.to_vec();
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f64;
            for p in 0..k {
                let av = match ta {
                    Trans::N => a[i * k + p],
                    Trans::T => a[p * m + i],
                };
                let bv = match tb {
                    Trans::N => b[p * n + j],
                    Trans::T => b[j * k + p],
                };
                acc += f64::from(av) * f64::from(bv);
            }
            c[i * n + j] = (acc + f64::from(beta) * f64::from(c0[i * n + j])) as f32;
        }
    }
    c
}

#[test]
fn all_kernels_match_reference() {
    let mut rng = SplitMix64::new(0xC0FFEE);
    for case in 0..48 {
        let m = rng.usize(1, 24);
        let n = rng.usize(1, 24);
        let k = rng.usize(1, 24);
        let kind = GemmKind::ALL[rng.usize(0, GemmKind::ALL.len())];
        let ta = [Trans::N, Trans::T][rng.usize(0, 2)];
        let tb = [Trans::N, Trans::T][rng.usize(0, 2)];
        let beta = [0.0f32, 1.0][rng.usize(0, 2)];
        let threads = rng.usize(1, 4);
        let a = mat(&mut rng, m * k);
        let b = mat(&mut rng, k * n);
        let c0 = mat(&mut rng, m * n);
        let mut c = c0.clone();
        Gemm::new(kind).threads(threads).run(ta, tb, m, n, k, &a, &b, beta, &mut c);
        let want = reference(ta, tb, m, n, k, &a, &b, beta, &c0);
        for (got, want) in c.iter().zip(&want) {
            assert!(
                (got - want).abs() < 1e-3 * (1.0 + want.abs()),
                "case {case}: {kind} t{threads} {ta:?}{tb:?} beta={beta}: {got} vs {want}"
            );
        }
    }
}

#[test]
fn transpose_is_an_involution() {
    let mut rng = SplitMix64::new(0xDADA);
    for _ in 0..48 {
        let rows = rng.usize(1, 20);
        let cols = rng.usize(1, 20);
        let src = mat(&mut rng, rows * cols);
        let back = transpose(&transpose(&src, rows, cols), cols, rows);
        assert_eq!(src, back);
    }
}

/// C = A·B with beta=1 twice equals 2·(A·B) when C starts at zero.
#[test]
fn beta_one_accumulates_linearly() {
    let mut rng = SplitMix64::new(0xBEBA);
    for _ in 0..48 {
        let m = rng.usize(1, 10);
        let n = rng.usize(1, 10);
        let k = rng.usize(1, 10);
        let a = mat(&mut rng, m * k);
        let b = mat(&mut rng, k * n);
        let mut once = vec![0.0f32; m * n];
        Gemm::new(GemmKind::Packed).run(Trans::N, Trans::N, m, n, k, &a, &b, 0.0, &mut once);
        let mut twice = vec![0.0f32; m * n];
        Gemm::new(GemmKind::Packed).run(Trans::N, Trans::N, m, n, k, &a, &b, 0.0, &mut twice);
        Gemm::new(GemmKind::Packed).run(Trans::N, Trans::N, m, n, k, &a, &b, 1.0, &mut twice);
        for (x, y) in once.iter().zip(&twice) {
            assert!((2.0 * x - y).abs() < 1e-3 * (1.0 + y.abs()));
        }
    }
}
