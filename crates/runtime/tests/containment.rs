//! Executor-level fault containment: injected kernel panics and errors
//! are typed, never process-fatal, the buffer pool survives poisoning,
//! and the next un-injected request is bit-identical to the reference.
//!
//! Failpoints are process-global, so every test serializes on one guard
//! and disarms on entry; the facade-level sweep lives in the workspace
//! `tests/chaos.rs`.

use std::sync::{Mutex, MutexGuard};

use pbqp_dnn_cost::{AnalyticCost, MachineModel};
use pbqp_dnn_graph::{ConvScenario, DnnGraph, Layer, LayerKind};
use pbqp_dnn_primitives::registry::{full_library, mixed_precision_library, Registry};
use pbqp_dnn_runtime::{faults, Executor, Parallelism, RuntimeError, Schedule, Weights};
use pbqp_dnn_select::{Optimizer, Strategy};
use pbqp_dnn_tensor::{Layout, Tensor};

fn guard() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    let g = match LOCK.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    faults::disarm_all();
    g
}

/// Runs `f` with the default panic hook silenced: contained panics are
/// expected here, and their default-hook backtraces would drown the
/// test output. The hook is restored before returning.
fn quiet<R>(f: impl FnOnce() -> R) -> R {
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let r = f();
    drop(std::panic::take_hook());
    std::panic::set_hook(hook);
    r
}

/// Two parallel branches so wavefront mode genuinely fans out.
fn forked_net() -> DnnGraph {
    let mut g = DnnGraph::new();
    let data = g.add(Layer::new("data", LayerKind::Input { c: 4, h: 12, w: 12 }));
    let b1 =
        g.add(Layer::new("b1", LayerKind::Conv(ConvScenario::new(4, 12, 12, 1, 1, 6).with_pad(0))));
    let b3 = g.add(Layer::new("b3", LayerKind::Conv(ConvScenario::new(4, 12, 12, 1, 3, 6))));
    let cat = g.add(Layer::new("cat", LayerKind::Concat));
    let relu = g.add(Layer::new("relu", LayerKind::Relu));
    let out = g.add(Layer::new("out", LayerKind::Conv(ConvScenario::new(12, 12, 12, 1, 3, 5))));
    g.connect(data, b1).unwrap();
    g.connect(data, b3).unwrap();
    g.connect(b1, cat).unwrap();
    g.connect(b3, cat).unwrap();
    g.connect(cat, relu).unwrap();
    g.connect(relu, out).unwrap();
    g
}

struct Fixture {
    net: DnnGraph,
    reg: Registry,
    weights: Weights,
    plan: pbqp_dnn_select::ExecutionPlan,
    input: Tensor,
}

fn fixture() -> Fixture {
    let net = forked_net();
    let reg = Registry::new(full_library());
    let cost = AnalyticCost::new(MachineModel::intel_haswell_like(), 1);
    let plan = Optimizer::new(&reg, &cost).plan(&net, Strategy::Pbqp).unwrap();
    let weights = Weights::random(&net, 7);
    let input = Tensor::random(4, 12, 12, Layout::Chw, 8);
    Fixture { net, reg, weights, plan, input }
}

#[test]
fn injected_kernel_panic_is_contained_under_all_three_modes() {
    let _g = guard();
    let fx = fixture();
    let exec = Executor::new(&fx.net, &fx.plan, &fx.reg, &fx.weights);
    let baseline = exec.run(&fx.input, 1).unwrap();
    let batch: Vec<Tensor> = (0..4).map(|_| fx.input.clone()).collect();

    type Mode<'a> = (&'a str, Box<dyn Fn(&Executor) -> Result<(), RuntimeError> + 'a>);
    let modes: Vec<Mode> = vec![
        ("serial", Box::new(|e: &Executor| e.run(&fx.input, 1).map(|_| ()))),
        (
            "wavefront",
            Box::new(|e: &Executor| {
                e.run_with(&fx.input, Parallelism::serial().with_inter_op(4)).map(|_| ())
            }),
        ),
        (
            "batch",
            Box::new(|e: &Executor| {
                e.run_batch(&batch, Parallelism::serial().with_inter_op(4)).map(|_| ())
            }),
        ),
    ];
    for (mode, run) in modes {
        faults::arm(faults::KERNEL_DISPATCH, "every:panic(injected chaos)").unwrap();
        let err = quiet(|| run(&exec)).unwrap_err();
        match err {
            RuntimeError::KernelPanicked { node, kernel, message } => {
                assert!(!node.is_empty() && !kernel.is_empty(), "{mode}");
                assert!(message.contains("injected chaos"), "{mode}: {message}");
            }
            // Under fan-out a worker-level containment is also legal.
            RuntimeError::Panicked { message, .. } => {
                assert!(message.contains("injected chaos"), "{mode}: {message}")
            }
            other => panic!("{mode}: expected a contained panic, got {other}"),
        }
        faults::disarm_all();
        // The executor (and its buffer pool) must be fully serviceable,
        // bit-identical to the pre-fault baseline.
        let after = exec.run(&fx.input, 1).unwrap();
        assert_eq!(after.data(), baseline.data(), "{mode}: post-fault output diverged");
    }
}

#[test]
fn injected_dispatch_error_is_typed_with_attribution() {
    let _g = guard();
    let fx = fixture();
    let exec = Executor::new(&fx.net, &fx.plan, &fx.reg, &fx.weights);
    let baseline = exec.run(&fx.input, 1).unwrap();
    faults::arm(faults::KERNEL_DISPATCH, "nth(2):error(flaky kernel)").unwrap();
    let err = exec.run(&fx.input, 1).unwrap_err();
    match err {
        RuntimeError::KernelFailed { node, kernel, message } => {
            assert!(!node.is_empty() && !kernel.is_empty());
            assert_eq!(message, "flaky kernel");
        }
        other => panic!("expected KernelFailed, got {other}"),
    }
    faults::disarm_all();
    assert_eq!(exec.run(&fx.input, 1).unwrap().data(), baseline.data());
}

#[test]
fn poisoned_buffer_pool_recovers_instead_of_latching() {
    let _g = guard();
    let fx = fixture();
    let exec = Executor::new(&fx.net, &fx.plan, &fx.reg, &fx.weights);
    let baseline = exec.run(&fx.input, 1).unwrap();

    // The checkout failpoint fires while the pool lock is held, so the
    // first injected panic genuinely poisons the mutex.
    faults::arm(faults::BUFFER_CHECKOUT, "every:panic(poison the pool)").unwrap();
    for round in 0..2 {
        // Round 0 poisons; round 1 proves the poisoned lock is
        // recovered and the panic is still typed, not a latch.
        let err = quiet(|| exec.run(&fx.input, 1)).unwrap_err();
        match err {
            RuntimeError::Panicked { context, message } => {
                assert_eq!(context, "buffer checkout", "round {round}");
                assert!(message.contains("poison the pool"), "round {round}");
            }
            other => panic!("round {round}: expected contained checkout panic, got {other}"),
        }
    }
    faults::disarm_all();
    assert_eq!(exec.run(&fx.input, 1).unwrap().data(), baseline.data());
}

#[test]
fn quant_edge_injection_surfaces_on_mixed_precision_plans() {
    let _g = guard();
    let net = pbqp_dnn_graph::models::micro_mixed();
    let reg = Registry::new(mixed_precision_library());
    let cost = AnalyticCost::new(MachineModel::intel_haswell_like(), 1);
    let plan = Optimizer::new(&reg, &cost).plan(&net, Strategy::Pbqp).unwrap();
    assert!(plan.quant_edge_count() >= 2, "precondition: quant edges\n{plan}");
    let weights = Weights::random(&net, 17);
    let input = Tensor::random(16, 20, 20, Layout::Chw, 18);
    let exec = Executor::new(&net, &plan, &reg, &weights);
    let baseline = exec.run(&input, 1).unwrap();

    faults::arm(faults::QUANT_EDGE, "every:error(bad quant)").unwrap();
    let err = exec.run(&input, 1).unwrap_err();
    assert!(
        matches!(err, RuntimeError::Injected { site, .. } if site == faults::QUANT_EDGE),
        "expected injected quant-edge error, got {err}"
    );
    faults::disarm_all();
    assert_eq!(exec.run(&input, 1).unwrap().data(), baseline.data());
}

#[test]
fn schedule_compile_failpoint_is_contained_and_not_cached() {
    let _g = guard();
    let fx = fixture();
    faults::arm(faults::SCHEDULE_COMPILE, "every:panic(compile chaos)").unwrap();
    let err = match quiet(|| Schedule::compile(&fx.net, &fx.plan, &fx.reg, &fx.weights)) {
        Err(e) => e,
        Ok(_) => panic!("armed compile failpoint did not fire"),
    };
    match err {
        RuntimeError::Panicked { context, message } => {
            assert_eq!(context, "schedule compile");
            assert!(message.contains("compile chaos"));
        }
        other => panic!("expected contained compile panic, got {other}"),
    }
    // Through the executor the compile error must not be cached: once
    // disarmed, the same executor compiles and serves.
    faults::arm(faults::SCHEDULE_COMPILE, "every:error(compile refused)").unwrap();
    let exec = Executor::new(&fx.net, &fx.plan, &fx.reg, &fx.weights);
    let err = exec.run(&fx.input, 1).unwrap_err();
    assert!(matches!(err, RuntimeError::Injected { site, .. } if site == faults::SCHEDULE_COMPILE));
    faults::disarm_all();
    exec.run(&fx.input, 1).unwrap();
}

#[test]
fn shape_mismatched_batch_member_is_a_typed_error_before_execution() {
    let _g = guard();
    let fx = fixture();
    let exec = Executor::new(&fx.net, &fx.plan, &fx.reg, &fx.weights);
    let batch = vec![
        fx.input.clone(),
        Tensor::random(4, 10, 12, Layout::Chw, 9), // wrong dims
        fx.input.clone(),
    ];
    let err = exec.run_batch(&batch, Parallelism::serial()).unwrap_err();
    assert!(matches!(err, RuntimeError::BadInput(_)), "got {err}");
    // And the executor still serves.
    exec.run(&fx.input, 1).unwrap();
}
