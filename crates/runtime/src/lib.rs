//! Runtime execution of legalized primitive-selection plans.
//!
//! The paper maps PBQP solutions to code with a simple code generator that
//! emits calls into the primitive library (§5.2). This crate is the Rust
//! equivalent grown into a small execution engine. Three execution modes
//! share one compiled schedule (topological step order plus wavefront
//! levels, with every primitive/weight lookup resolved up front):
//!
//! * **serial** ([`Executor::run`]) — walks the graph in topological
//!   order, applies each edge's representation-transformation chain, and
//!   dispatches every node to its selected kernel: convolutions to their
//!   primitive, every other operator (pooling, activation, LRN,
//!   fully-connected, concat, add, softmax) to the op kernel the plan
//!   assigned — f32 or int8;
//! * **wavefront** ([`Executor::run_with`] with `inter_op > 1`) — runs
//!   the independent nodes of each DAG level (e.g. GoogleNet inception
//!   branches) concurrently on scoped threads;
//! * **batched** ([`Executor::run_batch`]) — amortizes one plan across a
//!   whole batch of inputs, partitioning items over worker threads.
//!
//! All modes are configured by [`Parallelism`] (inter-op × intra-op) and
//! produce **bit-identical** outputs to the serial reference: the engine
//! partitions work between threads but never changes a kernel's
//! per-element accumulation order.
//!
//! The schedule also compiles an *activation memory plan*: node output
//! shapes are inferred up front, liveness over the wavefront levels lets
//! dead activations donate their buffers to later nodes, and every
//! primitive runs out of a recycled bump-arena
//! [`Workspace`](pbqp_dnn_primitives::Workspace). Serve through
//! [`Executor::run_into`] / [`Executor::run_batch_into`] and — after one
//! warmup pass — the serial steady-state loop performs **zero heap
//! allocations** per request.
//!
//! [`reference_forward`] is an independent oracle (sum-of-single-channels
//! convolution, canonical layout throughout) used to verify that *any*
//! plan — whatever exotic layouts and primitives it selected — computes
//! the same network function.
//!
//! # Example: optimize, then serve a batch
//!
//! ```
//! use pbqp_dnn_cost::{AnalyticCost, MachineModel};
//! use pbqp_dnn_graph::{ConvScenario, DnnGraph, Layer, LayerKind};
//! use pbqp_dnn_primitives::registry::{full_library, Registry};
//! use pbqp_dnn_runtime::{reference_forward, Executor, Parallelism, Weights};
//! use pbqp_dnn_select::{Optimizer, Strategy};
//! use pbqp_dnn_tensor::{Layout, Tensor};
//!
//! let mut net = DnnGraph::new();
//! let data = net.add(Layer::new("data", LayerKind::Input { c: 3, h: 16, w: 16 }));
//! let conv = net.add(Layer::new(
//!     "conv",
//!     LayerKind::Conv(ConvScenario::new(3, 16, 16, 1, 3, 8)),
//! ));
//! net.connect(data, conv).unwrap();
//!
//! let registry = Registry::new(full_library());
//! let cost = AnalyticCost::new(MachineModel::intel_haswell_like(), 1);
//! let plan = Optimizer::new(&registry, &cost).plan(&net, Strategy::Pbqp).unwrap();
//!
//! let weights = Weights::random(&net, 42);
//! let executor = Executor::new(&net, &plan, &registry, &weights);
//!
//! // One request, checked against the independent oracle.
//! let input = Tensor::random(3, 16, 16, Layout::Chw, 7);
//! let out = executor.run(&input, 1).unwrap();
//! let oracle = reference_forward(&net, &weights, &input);
//! assert!(out.allclose(&oracle, 1e-3).unwrap());
//!
//! // A batch of eight, fanned over the available cores; item 0 is
//! // bit-identical to the single-request answer.
//! let batch: Vec<Tensor> =
//!     (0..8).map(|i| Tensor::random(3, 16, 16, Layout::Chw, 7 + i)).collect();
//! let outs = executor.run_batch(&batch, Parallelism::available()).unwrap();
//! assert_eq!(outs.len(), 8);
//! assert_eq!(outs[0].data(), out.data());
//!
//! // The steady-state serving loop: recycled output, pooled activation
//! // slots, workspace-backed primitives — zero heap allocations per
//! // pass once warmed (proven by `tests/steady_state_alloc.rs`).
//! let mut served = Tensor::empty();
//! for request in &batch {
//!     executor.run_into(request, &mut served, 1).unwrap();
//! }
//! assert_eq!(served.data(), outs[7].data());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod exec;
pub mod faults;
mod par;
pub mod sampler;
mod weights;

pub use exec::{
    reference_forward, BatchBuffers, ExecBuffers, Executor, RuntimeError, Schedule, StepMeta,
};
pub use par::Parallelism;
pub use weights::Weights;
