//! Runtime execution of legalized primitive-selection plans.
//!
//! The paper maps PBQP solutions to code with a simple code generator that
//! emits calls into the primitive library (§5.2). This crate is the Rust
//! equivalent: an interpreter that walks the DNN graph in topological
//! order, applies each edge's data-layout transformation chain, dispatches
//! every convolution to its selected primitive, and computes the non-conv
//! layers (pooling, activation, LRN, fully-connected, concat, softmax)
//! directly.
//!
//! [`reference_forward`] is an independent oracle (sum-of-single-channels
//! convolution, canonical layout throughout) used to verify that *any*
//! plan — whatever exotic layouts and primitives it selected — computes
//! the same network function.
//!
//! # Example
//!
//! ```
//! use pbqp_dnn_cost::{AnalyticCost, MachineModel};
//! use pbqp_dnn_graph::{ConvScenario, DnnGraph, Layer, LayerKind};
//! use pbqp_dnn_primitives::registry::{full_library, Registry};
//! use pbqp_dnn_runtime::{reference_forward, Executor, Weights};
//! use pbqp_dnn_select::{Optimizer, Strategy};
//! use pbqp_dnn_tensor::{Layout, Tensor};
//!
//! let mut net = DnnGraph::new();
//! let data = net.add(Layer::new("data", LayerKind::Input { c: 3, h: 16, w: 16 }));
//! let conv = net.add(Layer::new(
//!     "conv",
//!     LayerKind::Conv(ConvScenario::new(3, 16, 16, 1, 3, 8)),
//! ));
//! net.connect(data, conv).unwrap();
//!
//! let registry = Registry::new(full_library());
//! let cost = AnalyticCost::new(MachineModel::intel_haswell_like(), 1);
//! let plan = Optimizer::new(&registry, &cost).plan(&net, Strategy::Pbqp).unwrap();
//!
//! let weights = Weights::random(&net, 42);
//! let input = Tensor::random(3, 16, 16, Layout::Chw, 7);
//! let out = Executor::new(&net, &plan, &registry, &weights).run(&input, 1).unwrap();
//! let oracle = reference_forward(&net, &weights, &input);
//! assert!(out.allclose(&oracle, 1e-3).unwrap());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod exec;
mod ops;
mod weights;

pub use exec::{reference_forward, Executor, RuntimeError};
pub use weights::Weights;
