//! Deterministic fault injection for the serving stack.
//!
//! Production serving has to assume kernels can misbehave — a bad SIMD
//! path on an untested host, a numerical edge case, a corrupted artifact
//! stream. This module provides *failpoints* (the `fail-rs` shape):
//! named sites compiled into the hot paths that are **zero-cost while
//! disarmed** — one relaxed atomic load, no lock, no allocation — and,
//! when armed, inject a configured fault with a deterministic trigger.
//! The chaos suite (`tests/chaos.rs`) uses them to prove the
//! fault-containment layer: a panicking kernel never takes the process
//! down, errors are typed, and the engine serves bit-identical results
//! on the next clean request.
//!
//! # Sites
//!
//! Every registered site is listed in [`SITES`]:
//!
//! | site | where it fires |
//! |---|---|
//! | [`KERNEL_DISPATCH`] | per-step conv/op kernel dispatch |
//! | [`QUANT_EDGE`] | quantize/dequantize edge-chain application |
//! | [`BUFFER_CHECKOUT`] | executor buffer-pool checkout (inside the pool lock) |
//! | [`SCHEDULE_COMPILE`] | `Schedule::compile` entry |
//! | [`ARTIFACT_READ`] | the compiled-artifact load path (facade) |
//! | [`GATEWAY_FLUSH`] | serving-gateway batch flush, before the fused batch executes |
//! | [`AUTOTUNE_RESOLVE`] | background re-optimization solve (autotune), before the PBQP re-solve runs |
//!
//! # Spec syntax
//!
//! A site is armed with a `trigger:action` spec:
//!
//! * triggers — `every` (every evaluation), `nth(N)` (exactly the N-th
//!   evaluation, 1-based, once), `prob(P,SEED)` (seeded splitmix64 coin
//!   with probability `P` per evaluation — deterministic per process);
//! * actions — `panic` / `panic(msg)` (panics at the site, exercising
//!   the containment layer), `error` / `error(msg)` (the site surfaces a
//!   typed injected error), `delay(ms)` (sleeps, then continues),
//!   `short-read(n)` (read-path sites drop the last `n` bytes; other
//!   sites treat it as a no-op).
//!
//! The `PBQP_DNN_FAILPOINTS` environment variable arms sites at process
//! startup (first evaluation), e.g.:
//!
//! ```text
//! PBQP_DNN_FAILPOINTS="kernel.dispatch=nth(3):panic(injected);artifact.read=every:short-read(16)"
//! ```
//!
//! # Example
//!
//! ```
//! use pbqp_dnn_runtime::faults;
//!
//! // Nothing armed: evaluation is a single atomic load and never fires.
//! assert!(faults::hit(faults::KERNEL_DISPATCH).is_none());
//!
//! // Arm the kernel-dispatch site to error on its 2nd evaluation.
//! faults::arm(faults::KERNEL_DISPATCH, "nth(2):error(injected fault)").unwrap();
//! assert!(faults::hit(faults::KERNEL_DISPATCH).is_none()); // call 1
//! match faults::hit(faults::KERNEL_DISPATCH) {
//!     Some(faults::Injected::Error(msg)) => assert_eq!(msg, "injected fault"),
//!     other => panic!("expected injected error, got {other:?}"),
//! }
//! assert!(faults::hit(faults::KERNEL_DISPATCH).is_none()); // nth fires once
//! faults::disarm_all();
//! ```

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// Per-step conv/op kernel dispatch (the containment layer catches
/// panics here and surfaces `RuntimeError::KernelPanicked`).
pub const KERNEL_DISPATCH: &str = "kernel.dispatch";
/// Quantize/dequantize hops of edge legalization chains.
pub const QUANT_EDGE: &str = "edge.quant";
/// Executor buffer-pool checkout — evaluated while the pool lock is
/// held, so a `panic` action genuinely poisons the mutex and proves the
/// pool recovers.
pub const BUFFER_CHECKOUT: &str = "buffers.checkout";
/// `Schedule::compile` entry.
pub const SCHEDULE_COMPILE: &str = "schedule.compile";
/// The compiled-artifact load path (`CompiledModel::load` in the
/// facade) — the one site where `short-read(n)` truncates real bytes.
pub const ARTIFACT_READ: &str = "artifact.read";
/// The serving gateway's batch flush, evaluated on the worker thread
/// just before a coalesced batch executes — `delay(ms)` here models a
/// slow flush (the chaos suite proves it cannot stall the timer wheel
/// or breach backpressure bounds), `error`/`panic` model a flush that
/// fails after requests were admitted.
pub const GATEWAY_FLUSH: &str = "gateway.flush";
/// The autotuner's background re-solve, evaluated off the serving path
/// just before the PBQP re-optimization runs — `panic`/`error` here
/// model a solver blow-up on live-observed costs; the chaos suite proves
/// the failure is contained (serving continues on the old generation,
/// health reports it, the next trigger retries).
pub const AUTOTUNE_RESOLVE: &str = "autotune.resolve";

/// Every registered failpoint site, for exhaustive chaos sweeps.
pub const SITES: &[&str] = &[
    KERNEL_DISPATCH,
    QUANT_EDGE,
    BUFFER_CHECKOUT,
    SCHEDULE_COMPILE,
    ARTIFACT_READ,
    GATEWAY_FLUSH,
    AUTOTUNE_RESOLVE,
];

/// Sentinel: the env var has not been consulted yet.
const UNINIT: usize = usize::MAX;

/// Number of armed sites, or [`UNINIT`] before the first evaluation.
/// The disarmed fast path is exactly one relaxed load of this.
static ARMED: AtomicUsize = AtomicUsize::new(UNINIT);

/// What an armed site does when its trigger fires.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Panic at the site with this message (prefixed with the site name).
    Panic(String),
    /// Surface a typed injected error with this message.
    Error(String),
    /// Sleep this long at the site, then continue normally.
    Delay(Duration),
    /// Drop the last `n` bytes on read-path sites; a no-op elsewhere.
    ShortRead(usize),
}

/// When an armed site fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// Every evaluation.
    Every,
    /// Exactly the `n`-th evaluation (1-based), once.
    Nth(u64),
    /// A seeded splitmix64 coin per evaluation: deterministic for a
    /// given `(seed, evaluation index)` pair.
    Probability {
        /// Firing probability in `[0, 1]`.
        p: f64,
        /// The PRNG seed.
        seed: u64,
    },
}

/// What [`hit`] reports back to the site when a fault fires and control
/// returns (the `panic` action never returns, and `delay` is performed
/// inside [`hit`] itself).
#[derive(Debug, Clone, PartialEq)]
pub enum Injected {
    /// The site should surface a typed error with this message.
    Error(String),
    /// A read-path site should drop its last `n` bytes.
    ShortRead(usize),
}

/// A malformed failpoint spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(String);

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad failpoint spec: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

struct Site {
    trigger: Trigger,
    action: Action,
    /// Evaluations so far (drives `nth` and the probability stream).
    calls: u64,
    /// Times the trigger has fired.
    fired: u64,
}

fn registry() -> MutexGuard<'static, HashMap<String, Site>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, Site>>> = OnceLock::new();
    let lock = REGISTRY.get_or_init(|| Mutex::new(HashMap::new()));
    // A panic injected at a site must never wedge the fault subsystem
    // itself: recover the map on poison (its state is always coherent —
    // every mutation is a single-field update).
    match lock.lock() {
        Ok(g) => g,
        Err(poisoned) => {
            lock.clear_poison();
            poisoned.into_inner()
        }
    }
}

/// Consults `PBQP_DNN_FAILPOINTS` exactly once per process. Malformed
/// entries are reported on stderr and skipped — an operator typo must
/// degrade to "no injection", never crash serving.
fn init_from_env() {
    let mut armed = 0;
    if let Ok(spec) = std::env::var("PBQP_DNN_FAILPOINTS") {
        match parse_spec_list(&spec) {
            Ok(entries) => {
                let mut map = registry();
                for (site, trigger, action) in entries {
                    map.insert(site, Site { trigger, action, calls: 0, fired: 0 });
                }
                armed = map.len();
            }
            Err(e) => eprintln!("pbqp-dnn: ignoring PBQP_DNN_FAILPOINTS: {e}"),
        }
    }
    // Publish only after the registry is populated. `compare_exchange`
    // keeps a concurrent `arm()` (which also counts the map) from being
    // overwritten by a stale zero.
    let _ = ARMED.compare_exchange(UNINIT, armed, Ordering::Release, Ordering::Relaxed);
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Evaluates the failpoint `site`.
///
/// Disarmed (the steady state), this is **one relaxed atomic load** —
/// no lock, no allocation, no branch beyond the zero check — which is
/// what lets the sites live inside the zero-allocation serving loop.
///
/// Armed, the site's deterministic trigger decides whether the action
/// fires: `panic` panics here (the containment layer around the site is
/// what's under test), `delay` sleeps here and returns `None`, while
/// `error` and `short-read` are returned as [`Injected`] for the site
/// to surface in its own typed vocabulary.
pub fn hit(site: &str) -> Option<Injected> {
    let armed = ARMED.load(Ordering::Relaxed);
    if armed == 0 {
        return None;
    }
    if armed == UNINIT {
        init_from_env();
        if ARMED.load(Ordering::Relaxed) == 0 {
            return None;
        }
    }
    let action = {
        let mut map = registry();
        let s = map.get_mut(site)?;
        s.calls += 1;
        let fires = match s.trigger {
            Trigger::Every => true,
            Trigger::Nth(n) => s.calls == n,
            Trigger::Probability { p, seed } => {
                let draw = splitmix64(seed ^ s.calls) as f64 / u64::MAX as f64;
                draw < p
            }
        };
        if !fires {
            return None;
        }
        s.fired += 1;
        s.action.clone()
    };
    match action {
        Action::Panic(msg) => panic!("failpoint `{site}`: {msg}"),
        Action::Error(msg) => Some(Injected::Error(msg)),
        Action::Delay(d) => {
            std::thread::sleep(d);
            None
        }
        Action::ShortRead(n) => Some(Injected::ShortRead(n)),
    }
}

/// Arms `site` with a `trigger:action` spec (see the [module docs](self)
/// for the grammar). Re-arming a site resets its evaluation counter.
///
/// # Errors
///
/// [`SpecError`] when the spec does not parse; the site is left as it
/// was.
pub fn arm(site: &str, spec: &str) -> Result<(), SpecError> {
    let (trigger, action) = parse_spec(spec)?;
    arm_with(site, trigger, action);
    Ok(())
}

/// Arms `site` with an already-constructed trigger and action.
pub fn arm_with(site: &str, trigger: Trigger, action: Action) {
    // Make sure a later lazy env init cannot clobber the count we are
    // about to publish.
    if ARMED.load(Ordering::Relaxed) == UNINIT {
        init_from_env();
    }
    let mut map = registry();
    map.insert(site.to_owned(), Site { trigger, action, calls: 0, fired: 0 });
    ARMED.store(map.len(), Ordering::Release);
}

/// Arms every `site=trigger:action` entry of a `;`-separated list — the
/// same grammar `PBQP_DNN_FAILPOINTS` uses.
///
/// # Errors
///
/// [`SpecError`] if any entry is malformed; no entry is armed.
pub fn arm_list(list: &str) -> Result<(), SpecError> {
    let entries = parse_spec_list(list)?;
    if ARMED.load(Ordering::Relaxed) == UNINIT {
        init_from_env();
    }
    let mut map = registry();
    for (site, trigger, action) in entries {
        map.insert(site, Site { trigger, action, calls: 0, fired: 0 });
    }
    ARMED.store(map.len(), Ordering::Release);
    Ok(())
}

/// Disarms `site`. Returns whether it was armed.
pub fn disarm(site: &str) -> bool {
    if ARMED.load(Ordering::Relaxed) == UNINIT {
        init_from_env();
    }
    let mut map = registry();
    let was = map.remove(site).is_some();
    ARMED.store(map.len(), Ordering::Release);
    was
}

/// Disarms every site (including env-armed ones), restoring the
/// zero-cost steady state.
pub fn disarm_all() {
    if ARMED.load(Ordering::Relaxed) == UNINIT {
        init_from_env();
    }
    let mut map = registry();
    map.clear();
    ARMED.store(0, Ordering::Release);
}

/// The armed sites with their evaluation/fire counters:
/// `(site, calls, fired)`.
pub fn armed() -> Vec<(String, u64, u64)> {
    if ARMED.load(Ordering::Relaxed) == UNINIT {
        init_from_env();
    }
    let map = registry();
    let mut v: Vec<_> = map.iter().map(|(k, s)| (k.clone(), s.calls, s.fired)).collect();
    v.sort();
    v
}

/// Extracts the human-readable message from a caught panic payload —
/// shared by every containment site (`&str` and `String` payloads cover
/// `panic!`; anything else is opaque).
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

fn parse_spec_list(list: &str) -> Result<Vec<(String, Trigger, Action)>, SpecError> {
    let mut out = Vec::new();
    for entry in list.split(';') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (site, spec) = entry
            .split_once('=')
            .ok_or_else(|| SpecError(format!("`{entry}` is not `site=trigger:action`")))?;
        let (trigger, action) = parse_spec(spec.trim())?;
        out.push((site.trim().to_owned(), trigger, action));
    }
    Ok(out)
}

fn parse_spec(spec: &str) -> Result<(Trigger, Action), SpecError> {
    let (trigger, action) = spec
        .split_once(':')
        .ok_or_else(|| SpecError(format!("`{spec}` is not `trigger:action`")))?;
    Ok((parse_trigger(trigger.trim())?, parse_action(action.trim())?))
}

/// Splits `name(args)` into `(name, Some(args))`, or `(name, None)`
/// without parentheses.
fn split_call(s: &str) -> Result<(&str, Option<&str>), SpecError> {
    match s.split_once('(') {
        None => Ok((s, None)),
        Some((name, rest)) => {
            let args = rest
                .strip_suffix(')')
                .ok_or_else(|| SpecError(format!("unbalanced parentheses in `{s}`")))?;
            Ok((name.trim(), Some(args.trim())))
        }
    }
}

fn parse_trigger(s: &str) -> Result<Trigger, SpecError> {
    let (name, args) = split_call(s)?;
    match (name, args) {
        ("every", None) => Ok(Trigger::Every),
        ("nth", Some(n)) => {
            let n: u64 =
                n.parse().map_err(|_| SpecError(format!("nth wants an integer, got `{n}`")))?;
            if n == 0 {
                return Err(SpecError("nth is 1-based; nth(0) never fires".into()));
            }
            Ok(Trigger::Nth(n))
        }
        ("prob", Some(args)) => {
            let (p, seed) = args
                .split_once(',')
                .ok_or_else(|| SpecError(format!("prob wants `p,seed`, got `{args}`")))?;
            let p: f64 = p
                .trim()
                .parse()
                .map_err(|_| SpecError(format!("prob wants a float probability, got `{p}`")))?;
            if !(0.0..=1.0).contains(&p) {
                return Err(SpecError(format!("probability {p} outside [0, 1]")));
            }
            let seed: u64 = seed
                .trim()
                .parse()
                .map_err(|_| SpecError(format!("prob wants an integer seed, got `{seed}`")))?;
            Ok(Trigger::Probability { p, seed })
        }
        _ => Err(SpecError(format!("unknown trigger `{s}` (want every | nth(N) | prob(P,SEED))"))),
    }
}

fn parse_action(s: &str) -> Result<Action, SpecError> {
    let (name, args) = split_call(s)?;
    match (name, args) {
        ("panic", msg) => Ok(Action::Panic(msg.unwrap_or("injected panic").to_owned())),
        ("error", msg) => Ok(Action::Error(msg.unwrap_or("injected error").to_owned())),
        ("delay", Some(ms)) => {
            let ms: u64 = ms
                .parse()
                .map_err(|_| SpecError(format!("delay wants milliseconds, got `{ms}`")))?;
            Ok(Action::Delay(Duration::from_millis(ms)))
        }
        ("short-read", Some(n)) => {
            let n: usize = n
                .parse()
                .map_err(|_| SpecError(format!("short-read wants a byte count, got `{n}`")))?;
            Ok(Action::ShortRead(n))
        }
        _ => Err(SpecError(format!(
            "unknown action `{s}` (want panic[(msg)] | error[(msg)] | delay(ms) | short-read(n))"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is process-global; tests that arm sites serialize on
    /// this and clean up after themselves.
    fn guard() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        let g = match LOCK.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        disarm_all();
        g
    }

    #[test]
    fn disarmed_sites_never_fire() {
        let _g = guard();
        for site in SITES {
            assert!(hit(site).is_none());
        }
    }

    #[test]
    fn nth_trigger_fires_exactly_once() {
        let _g = guard();
        arm("test.nth", "nth(3):error(boom)").unwrap();
        assert!(hit("test.nth").is_none());
        assert!(hit("test.nth").is_none());
        assert_eq!(hit("test.nth"), Some(Injected::Error("boom".into())));
        for _ in 0..8 {
            assert!(hit("test.nth").is_none());
        }
        let counters = armed();
        assert_eq!(counters.len(), 1);
        assert_eq!((counters[0].1, counters[0].2), (11, 1));
        disarm_all();
    }

    #[test]
    fn every_trigger_fires_every_time_and_only_on_its_site() {
        let _g = guard();
        arm("test.every", "every:short-read(4)").unwrap();
        for _ in 0..3 {
            assert_eq!(hit("test.every"), Some(Injected::ShortRead(4)));
            assert!(hit("test.nth").is_none());
        }
        disarm_all();
    }

    #[test]
    fn probability_stream_is_deterministic_and_roughly_calibrated() {
        let _g = guard();
        let run = |seed: u64| -> Vec<bool> {
            arm_with(
                "test.prob",
                Trigger::Probability { p: 0.25, seed },
                Action::Error("p".into()),
            );
            let fired: Vec<bool> = (0..400).map(|_| hit("test.prob").is_some()).collect();
            disarm_all();
            fired
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b, "same seed, same stream");
        let c = run(8);
        assert_ne!(a, c, "different seed, different stream");
        let rate = a.iter().filter(|&&f| f).count() as f64 / a.len() as f64;
        assert!((0.15..0.35).contains(&rate), "rate {rate} far from 0.25");
    }

    #[test]
    fn panic_action_panics_at_the_site_and_disarm_restores_quiet() {
        let _g = guard();
        arm("test.panic", "every:panic(chaos)").unwrap();
        let err = std::panic::catch_unwind(|| hit("test.panic")).unwrap_err();
        assert!(panic_message(err).contains("chaos"));
        // The panic unwound while the registry lock was held by nobody —
        // but even if it had been, the registry recovers from poison.
        disarm("test.panic");
        assert!(hit("test.panic").is_none());
    }

    #[test]
    fn delay_action_sleeps_then_continues() {
        let _g = guard();
        arm("test.delay", "every:delay(5)").unwrap();
        let t = std::time::Instant::now();
        assert!(hit("test.delay").is_none());
        assert!(t.elapsed() >= Duration::from_millis(4));
        disarm_all();
    }

    #[test]
    fn spec_list_round_trips_the_env_grammar() {
        let _g = guard();
        arm_list(
            "kernel.dispatch=nth(2):panic(k); edge.quant=every:delay(1);\
             artifact.read=prob(0.5,9):short-read(16)",
        )
        .unwrap();
        assert_eq!(armed().len(), 3);
        disarm_all();
        assert!(armed().is_empty());
    }

    #[test]
    fn malformed_specs_are_typed_errors() {
        for bad in [
            "nope",
            "nth(0):panic",
            "nth(x):panic",
            "every:explode",
            "prob(1.5,1):error",
            "prob(0.5):error",
            "every:delay",
            "every:short-read(many)",
            "every:panic(unbalanced",
        ] {
            assert!(parse_spec(bad).is_err(), "`{bad}` should not parse");
        }
        assert!(parse_spec_list("site-without-equals").is_err());
        // Empty entries are tolerated (trailing semicolons).
        assert!(parse_spec_list("  ;; ").unwrap().is_empty());
    }
}
