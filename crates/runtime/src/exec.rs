use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use pbqp_dnn_graph::{DnnGraph, GraphError, LayerKind, NodeId};
use pbqp_dnn_primitives::registry::Registry;
use pbqp_dnn_primitives::{reference::sum2d_reference, PrimitiveError};
use pbqp_dnn_select::{AssignmentKind, ExecutionPlan};
use pbqp_dnn_tensor::transform::{apply_direct, DirectTransform};
use pbqp_dnn_tensor::{Layout, Tensor, TensorError};

use crate::ops;
use crate::weights::Weights;

/// Errors from plan execution.
#[derive(Debug)]
pub enum RuntimeError {
    /// The graph failed validation.
    Graph(GraphError),
    /// A selected primitive failed.
    Primitive(PrimitiveError),
    /// A layout transformation failed.
    Tensor(TensorError),
    /// The plan references a primitive the registry does not contain.
    UnknownPrimitive(String),
    /// A parameterized layer has no weights.
    MissingWeights(String),
    /// The supplied network input has the wrong shape or layout.
    BadInput(String),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Graph(e) => write!(f, "graph error: {e}"),
            RuntimeError::Primitive(e) => write!(f, "primitive error: {e}"),
            RuntimeError::Tensor(e) => write!(f, "tensor error: {e}"),
            RuntimeError::UnknownPrimitive(n) => write!(f, "unknown primitive `{n}`"),
            RuntimeError::MissingWeights(n) => write!(f, "missing weights for layer `{n}`"),
            RuntimeError::BadInput(d) => write!(f, "bad network input: {d}"),
        }
    }
}

impl Error for RuntimeError {}

impl From<GraphError> for RuntimeError {
    fn from(e: GraphError) -> Self {
        RuntimeError::Graph(e)
    }
}
impl From<PrimitiveError> for RuntimeError {
    fn from(e: PrimitiveError) -> Self {
        RuntimeError::Primitive(e)
    }
}
impl From<TensorError> for RuntimeError {
    fn from(e: TensorError) -> Self {
        RuntimeError::Tensor(e)
    }
}

/// Executes an [`ExecutionPlan`] on real tensors — the runtime counterpart
/// of the paper's generated code (§5.2).
pub struct Executor<'a> {
    graph: &'a DnnGraph,
    plan: &'a ExecutionPlan,
    registry: &'a Registry,
    weights: &'a Weights,
}

impl<'a> Executor<'a> {
    /// Binds a plan to its graph, registry and weights.
    pub fn new(
        graph: &'a DnnGraph,
        plan: &'a ExecutionPlan,
        registry: &'a Registry,
        weights: &'a Weights,
    ) -> Executor<'a> {
        Executor { graph, plan, registry, weights }
    }

    /// Runs one forward pass. `input` must be the canonical-CHW network
    /// input; the plan's input-conversion chain is applied automatically.
    /// Returns the output of the last layer in topological order.
    ///
    /// # Errors
    ///
    /// Propagates graph, primitive, transformation and weight errors.
    pub fn run(&self, input: &Tensor, threads: usize) -> Result<Tensor, RuntimeError> {
        if input.layout() != Layout::Chw {
            return Err(RuntimeError::BadInput(format!(
                "network inputs are canonical CHW, got {}",
                input.layout()
            )));
        }
        let order = self.graph.topo_order()?;
        // Edge chains keyed by (from, to).
        let chains: HashMap<(usize, usize), &[DirectTransform]> = self
            .plan
            .edges
            .iter()
            .map(|e| ((e.from.index(), e.to.index()), e.chain.as_slice()))
            .collect();
        let input_chains: HashMap<usize, &[DirectTransform]> = self
            .plan
            .input_conversion
            .iter()
            .map(|(n, c, _)| (n.index(), c.as_slice()))
            .collect();

        let mut values: Vec<Option<Tensor>> = vec![None; self.graph.len()];
        let mut last = None;
        for node in order {
            let layer = self.graph.layer(node);
            // Inputs, converted along each edge's legalization chain.
            let mut inputs = Vec::new();
            for &pred in self.graph.predecessors(node) {
                let mut t = values[pred.index()]
                    .as_ref()
                    .expect("topological order guarantees predecessors ran")
                    .clone();
                if let Some(chain) = chains.get(&(pred.index(), node.index())) {
                    for hop in *chain {
                        t = apply_direct(&t, hop.to)?;
                    }
                }
                inputs.push(t);
            }

            let out = match (&layer.kind, self.plan.assignment(node)) {
                (LayerKind::Conv(s), AssignmentKind::Conv { primitive, .. }) => {
                    let prim = self
                        .registry
                        .by_name(primitive)
                        .ok_or_else(|| RuntimeError::UnknownPrimitive(primitive.clone()))?;
                    let kernel = self
                        .weights
                        .conv_kernel(node)
                        .ok_or_else(|| RuntimeError::MissingWeights(layer.name.clone()))?;
                    prim.execute(&inputs[0], kernel, s, threads)?
                }
                (LayerKind::Input { c, h, w }, AssignmentKind::Dummy { layout }) => {
                    if input.dims() != (*c, *h, *w) {
                        return Err(RuntimeError::BadInput(format!(
                            "expected {:?}, got {:?}",
                            (c, h, w),
                            input.dims()
                        )));
                    }
                    let mut t = input.clone();
                    if let Some(chain) = input_chains.get(&node.index()) {
                        for hop in *chain {
                            t = apply_direct(&t, hop.to)?;
                        }
                    } else if t.layout() != *layout {
                        // Defensive: plans always carry the chain, but a
                        // hand-built plan may not.
                        t = t.to_layout(*layout);
                    }
                    t
                }
                (kind, AssignmentKind::Dummy { layout }) => {
                    self.run_dummy(node, kind, &inputs, *layout)?
                }
                (kind, AssignmentKind::Conv { .. }) => {
                    unreachable!("conv assignment on non-conv layer {kind}")
                }
            };
            values[node.index()] = Some(out);
            last = Some(node);
        }
        let last = last.expect("graph validated as non-empty");
        Ok(values[last.index()].take().expect("last node ran"))
    }

    fn run_dummy(
        &self,
        node: NodeId,
        kind: &LayerKind,
        inputs: &[Tensor],
        layout: Layout,
    ) -> Result<Tensor, RuntimeError> {
        let name = || self.graph.layer(node).name.clone();
        Ok(match kind {
            LayerKind::Relu => ops::relu(&inputs[0], layout),
            LayerKind::Pool { kind, k, stride, pad } => {
                ops::pool(&inputs[0], layout, *kind, *k, *stride, *pad)
            }
            LayerKind::Lrn => ops::lrn(&inputs[0], layout),
            LayerKind::Dropout => inputs[0].clone(),
            LayerKind::FullyConnected { out } => {
                let w = self
                    .weights
                    .fc_matrix(node)
                    .ok_or_else(|| RuntimeError::MissingWeights(name()))?;
                ops::fully_connected(&inputs[0], w, *out, layout)
            }
            LayerKind::Concat => {
                let refs: Vec<&Tensor> = inputs.iter().collect();
                ops::concat(&refs, layout)
            }
            LayerKind::Softmax => ops::softmax(&inputs[0], layout),
            LayerKind::Input { .. } | LayerKind::Conv(_) => {
                unreachable!("handled by run()")
            }
        })
    }
}

impl fmt::Debug for Executor<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Executor").field("nodes", &self.graph.len()).finish()
    }
}

/// Independent oracle: executes the network with the textbook reference
/// convolution and canonical CHW layout throughout. Any plan's output must
/// match this within floating-point tolerance.
pub fn reference_forward(graph: &DnnGraph, weights: &Weights, input: &Tensor) -> Tensor {
    let order = graph.topo_order().expect("valid graph");
    let mut values: Vec<Option<Tensor>> = vec![None; graph.len()];
    let mut last = None;
    for node in order {
        let inputs: Vec<Tensor> = graph
            .predecessors(node)
            .iter()
            .map(|p| values[p.index()].as_ref().expect("topo order").clone())
            .collect();
        let out = match &graph.layer(node).kind {
            LayerKind::Input { .. } => input.clone(),
            LayerKind::Conv(s) => {
                let k = weights.conv_kernel(node).expect("weights cover conv layers");
                sum2d_reference(&inputs[0], k, s)
            }
            LayerKind::Relu => ops::relu(&inputs[0], inputs[0].layout()),
            LayerKind::Pool { kind, k, stride, pad } => {
                ops::pool(&inputs[0], inputs[0].layout(), *kind, *k, *stride, *pad)
            }
            LayerKind::Lrn => ops::lrn(&inputs[0], inputs[0].layout()),
            LayerKind::Dropout => inputs[0].clone(),
            LayerKind::FullyConnected { out } => {
                let w = weights.fc_matrix(node).expect("weights cover fc layers");
                ops::fully_connected(&inputs[0], w, *out, Layout::Chw)
            }
            LayerKind::Concat => {
                let refs: Vec<&Tensor> = inputs.iter().collect();
                ops::concat(&refs, Layout::Chw)
            }
            LayerKind::Softmax => ops::softmax(&inputs[0], inputs[0].layout()),
        };
        values[node.index()] = Some(out);
        last = Some(node);
    }
    values[last.expect("non-empty").index()].take().expect("ran")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbqp_dnn_cost::{AnalyticCost, MachineModel};
    use pbqp_dnn_graph::{ConvScenario, Layer};
    use pbqp_dnn_primitives::registry::full_library;
    use pbqp_dnn_select::{Optimizer, Strategy};

    /// A miniature inception-style network exercising fan-out, concat,
    /// pooling and two conv sizes.
    fn mini_inception() -> DnnGraph {
        let mut g = DnnGraph::new();
        let data = g.add(Layer::new("data", LayerKind::Input { c: 4, h: 12, w: 12 }));
        let c1 = g.add(Layer::new("b1", LayerKind::Conv(ConvScenario::new(4, 12, 12, 1, 1, 6).with_pad(0))));
        let c3 = g.add(Layer::new("b3", LayerKind::Conv(ConvScenario::new(4, 12, 12, 1, 3, 6))));
        let cat = g.add(Layer::new("cat", LayerKind::Concat));
        let relu = g.add(Layer::new("relu", LayerKind::Relu));
        let c_out = g.add(Layer::new(
            "out",
            LayerKind::Conv(ConvScenario::new(12, 12, 12, 1, 3, 5)),
        ));
        g.connect(data, c1).unwrap();
        g.connect(data, c3).unwrap();
        g.connect(c1, cat).unwrap();
        g.connect(c3, cat).unwrap();
        g.connect(cat, relu).unwrap();
        g.connect(relu, c_out).unwrap();
        g
    }

    #[test]
    fn every_strategy_computes_the_same_function() {
        let net = mini_inception();
        let reg = Registry::new(full_library());
        let cost = AnalyticCost::new(MachineModel::intel_haswell_like(), 1);
        let opt = Optimizer::new(&reg, &cost);
        let weights = Weights::random(&net, 11);
        let input = Tensor::random(4, 12, 12, Layout::Chw, 12);
        let oracle = reference_forward(&net, &weights, &input);
        let mut strategies = vec![
            Strategy::Pbqp,
            Strategy::PbqpHeuristic,
            Strategy::Sum2d,
            Strategy::LocalOptimalChw,
            Strategy::CaffeLike,
            Strategy::VendorLike { vector_width: 8 },
            Strategy::VendorLike { vector_width: 4 },
        ];
        strategies.extend(Strategy::family_bars());
        for strategy in strategies {
            let plan = opt.plan(&net, strategy).unwrap();
            let out = Executor::new(&net, &plan, &reg, &weights).run(&input, 1).unwrap();
            let diff = out.max_abs_diff(&oracle).unwrap();
            assert!(diff < 1e-2, "{}: diff {diff}", strategy.label());
        }
    }

    #[test]
    fn multithreaded_execution_matches_single_threaded() {
        let net = mini_inception();
        let reg = Registry::new(full_library());
        let cost = AnalyticCost::new(MachineModel::arm_a57_like(), 4);
        let opt = Optimizer::new(&reg, &cost);
        let plan = opt.plan(&net, Strategy::Pbqp).unwrap();
        let weights = Weights::random(&net, 21);
        let input = Tensor::random(4, 12, 12, Layout::Chw, 22);
        let exec = Executor::new(&net, &plan, &reg, &weights);
        let one = exec.run(&input, 1).unwrap();
        let four = exec.run(&input, 4).unwrap();
        assert!(one.allclose(&four, 1e-4).unwrap());
    }

    #[test]
    fn wrong_input_layout_is_rejected() {
        let net = mini_inception();
        let reg = Registry::new(full_library());
        let cost = AnalyticCost::new(MachineModel::intel_haswell_like(), 1);
        let plan = Optimizer::new(&reg, &cost).plan(&net, Strategy::Sum2d).unwrap();
        let weights = Weights::random(&net, 1);
        let bad = Tensor::random(4, 12, 12, Layout::Hwc, 2);
        let err = Executor::new(&net, &plan, &reg, &weights).run(&bad, 1).unwrap_err();
        assert!(matches!(err, RuntimeError::BadInput(_)));
    }

    #[test]
    fn wrong_input_shape_is_rejected() {
        let net = mini_inception();
        let reg = Registry::new(full_library());
        let cost = AnalyticCost::new(MachineModel::intel_haswell_like(), 1);
        let plan = Optimizer::new(&reg, &cost).plan(&net, Strategy::Sum2d).unwrap();
        let weights = Weights::random(&net, 1);
        let bad = Tensor::random(4, 10, 12, Layout::Chw, 2);
        let err = Executor::new(&net, &plan, &reg, &weights).run(&bad, 1).unwrap_err();
        assert!(matches!(err, RuntimeError::BadInput(_)));
    }
}
