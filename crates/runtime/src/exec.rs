use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

use pbqp_dnn_graph::{ConvScenario, DnnGraph, GraphError, LayerKind, NodeId};
use pbqp_dnn_primitives::registry::Registry;
use pbqp_dnn_primitives::{
    ops, reference::sum2d_reference, ConvAlgorithm, OpInputs, OpKernel, OpSpec, PrimitiveError,
    Workspace,
};
use pbqp_dnn_select::{AssignmentKind, ExecutionPlan};
use pbqp_dnn_tensor::transform::{apply_repr_into, to_layout_into, ReprTransform};
use pbqp_dnn_tensor::{DType, KernelTensor, Layout, Repr, Tensor, TensorError};

use crate::faults;
use crate::sampler::{self, SamplerState};
use crate::weights::Weights;
use crate::Parallelism;

/// Executors recycle at most this many buffer sets; the pool vector is
/// pre-sized so returning a set never reallocates.
const BUFFER_POOL_CAP: usize = 64;

/// Errors from plan execution.
#[derive(Debug)]
pub enum RuntimeError {
    /// The graph failed validation.
    Graph(GraphError),
    /// A selected primitive failed.
    Primitive(PrimitiveError),
    /// A layout transformation failed.
    Tensor(TensorError),
    /// The plan references a primitive the registry does not contain.
    UnknownPrimitive(String),
    /// A parameterized layer has no weights.
    MissingWeights(String),
    /// The supplied network input has the wrong shape or layout.
    BadInput(String),
    /// The plan's assignment kinds disagree with the graph's layer kinds
    /// (e.g. a conv assignment on a pooling node) — the plan was built
    /// for a different graph or corrupted.
    PlanMismatch(String),
    /// A selected kernel panicked at dispatch. The unwind was contained
    /// at the step boundary: the process, the executor and its buffer
    /// pool all stay serviceable, and the (node, kernel) pair names the
    /// culprit so a serving layer can quarantine it.
    KernelPanicked {
        /// The graph node (layer name) whose step was executing.
        node: String,
        /// The selected primitive/op kernel that panicked.
        kernel: String,
        /// The panic payload, stringified.
        message: String,
    },
    /// A selected kernel reported a failure at dispatch (today only via
    /// fault injection — real kernels either succeed or panic). Carries
    /// the same (node, kernel) attribution as a contained panic.
    KernelFailed {
        /// The graph node (layer name) whose step was executing.
        node: String,
        /// The selected primitive/op kernel that failed.
        kernel: String,
        /// The failure description.
        message: String,
    },
    /// A fault-injection site surfaced its injected error (see
    /// [`crate::faults`]).
    Injected {
        /// The failpoint site that fired.
        site: &'static str,
        /// The injected error message.
        message: String,
    },
    /// A panic outside kernel dispatch (edge conversion, a worker
    /// thread, buffer checkout, schedule compile) was contained into a
    /// typed error instead of unwinding through the caller.
    Panicked {
        /// Where the panic was contained.
        context: String,
        /// The panic payload, stringified.
        message: String,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Graph(e) => write!(f, "graph error: {e}"),
            RuntimeError::Primitive(e) => write!(f, "primitive error: {e}"),
            RuntimeError::Tensor(e) => write!(f, "tensor error: {e}"),
            RuntimeError::UnknownPrimitive(n) => write!(f, "unknown primitive `{n}`"),
            RuntimeError::MissingWeights(n) => write!(f, "missing weights for layer `{n}`"),
            RuntimeError::BadInput(d) => write!(f, "bad network input: {d}"),
            RuntimeError::PlanMismatch(d) => write!(f, "plan does not fit graph: {d}"),
            RuntimeError::KernelPanicked { node, kernel, message } => {
                write!(f, "kernel `{kernel}` panicked on node `{node}` (contained): {message}")
            }
            RuntimeError::KernelFailed { node, kernel, message } => {
                write!(f, "kernel `{kernel}` failed on node `{node}`: {message}")
            }
            RuntimeError::Injected { site, message } => {
                write!(f, "injected fault at `{site}`: {message}")
            }
            RuntimeError::Panicked { context, message } => {
                write!(f, "panic contained in {context}: {message}")
            }
        }
    }
}

impl Error for RuntimeError {}

impl From<GraphError> for RuntimeError {
    fn from(e: GraphError) -> Self {
        RuntimeError::Graph(e)
    }
}
impl From<PrimitiveError> for RuntimeError {
    fn from(e: PrimitiveError) -> Self {
        RuntimeError::Primitive(e)
    }
}
impl From<TensorError> for RuntimeError {
    fn from(e: TensorError) -> Self {
        RuntimeError::Tensor(e)
    }
}

/// What one compiled step computes.
enum StepOp {
    /// A convolution dispatched to its selected primitive. The primitive
    /// and kernel are shared handles, so a compiled schedule is fully
    /// self-contained: it outlives the registry and weights it was built
    /// from (the lifetime-ergonomics fix behind the front-door `Engine`).
    Conv { prim: Arc<dyn ConvAlgorithm>, kernel: Arc<KernelTensor>, scenario: ConvScenario },
    /// The network input node: shape check plus the plan's conversion
    /// chain into the node's chosen layout. The chain's intermediate hops
    /// stage through conversion buffers `conv_base..`; the final hop
    /// lands in the node's pooled output buffer.
    Input {
        c: usize,
        h: usize,
        w: usize,
        layout: Layout,
        chain: Vec<ReprTransform>,
        conv_base: usize,
    },
    /// A non-conv operator dispatched to its selected op kernel — like
    /// conv steps, the kernel is a shared handle so the compiled schedule
    /// stays self-contained.
    Op { kernel: Arc<dyn OpKernel>, spec: OpSpec, fc_weights: Option<Arc<Vec<f32>>> },
}

/// One incoming edge of a step: where the predecessor's value lives and
/// how to legalize it into this node's input layout.
struct PredEdge {
    /// Pooled value-buffer index of the predecessor (holds the
    /// predecessor's *node* index until slot assignment remaps it).
    buf: usize,
    /// The edge's representation-conversion chain — layout hops and any
    /// quantize/dequantize at mixed-precision boundaries (empty = borrow
    /// directly).
    chain: Vec<ReprTransform>,
    /// First conversion-buffer index; the chain uses
    /// `conv_base .. conv_base + chain.len()`.
    conv_base: usize,
}

/// One node of the compiled schedule: resolved operator, incoming edges,
/// and the pooled buffer its output lands in.
struct Step {
    node: NodeId,
    /// The layer's name, carried for fault attribution: a contained
    /// kernel panic reports (node, kernel) so serving can quarantine.
    name: String,
    /// Incoming edges in predecessor order.
    preds: Vec<PredEdge>,
    op: StepOp,
    /// Pooled value buffer receiving this node's output.
    out_buf: usize,
    /// Output dims and representation, inferred at compile time (drives
    /// buffer sizing and lets ops like concat pre-shape their output).
    out_shape: (usize, usize, usize, Repr),
}

/// One step's identity for observers: the node it computes, the layer
/// name, and the kernel the plan selected for it. Returned by
/// [`Schedule::step_meta`], index-aligned with a live-profiler sampler's
/// per-step reservoirs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepMeta {
    /// The graph node this step computes.
    pub node: NodeId,
    /// The layer name (fault/observation attribution).
    pub name: String,
    /// The selected kernel's name (`"input"` for the input step, which
    /// runs no selectable kernel).
    pub kernel: String,
}

/// Per-worker execution state: the pooled activation buffers, conversion
/// staging tensors and primitive scratch workspace for one in-flight
/// forward pass. Created by [`Schedule::make_buffers`] (or recycled from
/// an executor's pool) — after the first run every buffer is at its
/// steady-state size and execution performs zero heap allocations.
///
/// Buffer sets are the *per-caller* half of the split execution state:
/// one immutable [`Schedule`] shared by every thread, one `ExecBuffers`
/// owned by each (the front door's `Session` owns exactly one).
pub struct ExecBuffers {
    /// Pooled value buffers, indexed by the schedule's slot assignment.
    values: Vec<Tensor>,
    /// Per-edge-hop conversion staging buffers.
    convs: Vec<Tensor>,
    /// Primitive scratch arenas, reset between steps.
    ws: Workspace,
    /// Extra per-worker workspaces for wavefront levels, grown to the
    /// fan-out width on first use and reused across levels and runs.
    wave_ws: Vec<Workspace>,
    /// Live-profiler recording state, attached by an autotuning engine
    /// ([`ExecBuffers::attach_sampler`]); `None` everywhere else, and in
    /// particular for per-item batch sets — the fused batch path shares
    /// its timing attribution problem with wavefront fan-out and is left
    /// unsampled.
    sampler: Option<SamplerState>,
}

impl ExecBuffers {
    /// Attaches a live-profiler recording state to this buffer set: the
    /// owning worker starts timestamping sampled step dispatches into
    /// `state`'s preallocated reservoirs and merging them into its shared
    /// [`crate::sampler::Sampler`] once per run. Replaces any previous
    /// state (a hot-swap attaches a fresh one so `(node, kernel)`
    /// attribution follows the new schedule).
    pub fn attach_sampler(&mut self, state: SamplerState) {
        self.sampler = Some(state);
    }

    /// Detaches the live-profiler state, returning the buffer set to
    /// plain unsampled execution.
    pub fn detach_sampler(&mut self) {
        self.sampler = None;
    }
}

/// Per-item buffer sets plus the shared fused-batch scratch for one
/// caller running dynamic batches through
/// [`Schedule::run_batch_fused_into`] — the buffer half of cross-request
/// coalescing.
///
/// Each batch item owns a full [`ExecBuffers`] (its activations stay
/// live independently across the level-major walk); fused conv steps
/// additionally carve their stacked patch matrices and wide-GEMM staging
/// from the one shared [`Workspace`]. Sets, workspace and the output
/// staging vector all grow to the high-watermark batch size once and are
/// reused afterwards, so a warmed serving loop batches without heap
/// allocations.
#[derive(Default)]
pub struct BatchBuffers {
    /// One buffer set per in-flight batch item.
    sets: Vec<ExecBuffers>,
    /// Shared scratch for fused (cross-item) primitive calls.
    ws: Workspace,
    /// Staging for per-item output tensors taken out of their pools
    /// while a fused step borrows every set immutably.
    staged: Vec<Tensor>,
}

impl BatchBuffers {
    /// An empty set; capacities settle on first use.
    pub fn new() -> BatchBuffers {
        BatchBuffers::default()
    }

    /// Grows to serve `batch` items of `schedule`: missing per-item
    /// buffer sets are materialized and the fused workspace is reserved
    /// to the peak fused-step requirement. Idempotent at or below the
    /// current watermark.
    pub fn ensure(&mut self, schedule: &Schedule, batch: usize) {
        if self.sets.len() < batch {
            self.sets.resize_with(batch, || schedule.make_buffers());
            self.ws.reserve(schedule.batch_ws_req(batch));
            self.staged.reserve(batch);
        }
    }
}

/// A plan compiled against its graph, registry and weights: topological
/// step order, wavefront levels, every per-run lookup (primitive
/// resolution, edge chains, weight references) hoisted out of the
/// execution loop, **and** an activation memory plan — liveness-reduced
/// output slots plus the peak primitive workspace — so steady-state
/// execution never allocates.
///
/// A schedule is **owned and immutable**: conv steps hold shared handles
/// to their primitives and kernels, so the schedule does not borrow the
/// registry or weights it was compiled from. One schedule (it is `Sync`)
/// serves any number of threads, each running out of its own
/// [`ExecBuffers`] — this split is what the front-door `Engine`/`Session`
/// API is built on, and what [`Executor`] uses internally.
///
/// # Example
///
/// ```
/// use pbqp_dnn_cost::{AnalyticCost, MachineModel};
/// use pbqp_dnn_graph::models;
/// use pbqp_dnn_primitives::registry::{full_library, Registry};
/// use pbqp_dnn_runtime::{Parallelism, Schedule, Weights};
/// use pbqp_dnn_select::{Optimizer, Strategy};
/// use pbqp_dnn_tensor::{Layout, Tensor};
///
/// let net = models::micro_alexnet();
/// let registry = Registry::new(full_library());
/// let cost = AnalyticCost::new(MachineModel::intel_haswell_like(), 1);
/// let plan = Optimizer::new(&registry, &cost).plan(&net, Strategy::Pbqp).unwrap();
/// let weights = Weights::random(&net, 1);
///
/// // Compile once; the schedule owns everything it needs.
/// let schedule = Schedule::compile(&net, &plan, &registry, &weights).unwrap();
/// drop(registry); // no borrows retained
///
/// let mut bufs = schedule.make_buffers();
/// let mut out = Tensor::empty();
/// let (c, h, w) = net.infer_shapes().unwrap()[0];
/// let input = Tensor::random(c, h, w, Layout::Chw, 7);
/// schedule.run_into(&input, &mut bufs, &mut out, Parallelism::serial()).unwrap();
/// assert_eq!(out.dims(), net.infer_shapes().unwrap().last().copied().unwrap());
/// ```
pub struct Schedule {
    /// Steps in topological order.
    steps: Vec<Step>,
    /// Wavefront levels: indices into `steps` whose nodes have no
    /// dependencies among each other — safe to run concurrently.
    levels: Vec<Vec<usize>>,
    /// Pooled value-buffer sizes (storage elements of the slot's dtype).
    /// Liveness analysis lets nodes whose lifetimes do not overlap share
    /// one buffer, so this is sized by peak activation memory, not by
    /// node count; slots are segregated by dtype so a recycled buffer
    /// never swaps its backing store between runs.
    buf_elems: Vec<(usize, DType)>,
    /// Conversion-buffer shapes, one per edge-chain hop.
    conv_shapes: Vec<(usize, usize, usize, Repr)>,
    /// Peak serial primitive scratch across all steps.
    ws_req: pbqp_dnn_primitives::WorkspaceReq,
    /// Pooled buffer holding the network output after a pass.
    last_buf: usize,
    /// The plan's output conversion for the terminal node (dequantization
    /// back to f32 when the sink chose a quantized representation);
    /// intermediate hops stage through `out_conv_base..`.
    out_chain: Vec<ReprTransform>,
    /// First conversion-buffer index of the output chain's staging.
    out_conv_base: usize,
    /// The network input dims, checked before a pass touches any buffer
    /// (`None` only for hand-built graphs without an input node).
    input_dims: Option<(usize, usize, usize)>,
}

impl Schedule {
    /// Compiles `plan` against its graph, registry and weights into a
    /// self-contained schedule: primitive and kernel lookups resolved to
    /// shared handles, legalization chains materialized per edge, and the
    /// activation memory plan (liveness-pooled slots, conversion staging
    /// shapes, peak primitive workspace) computed up front.
    ///
    /// Int8-assigned conv layers have their weights quantized here, once
    /// — the serving loop reads the cached image and never touches the
    /// f32 taps.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError`] for malformed graphs, plans referencing
    /// primitives the registry does not contain, or parameterized layers
    /// without weights. A panic during compilation (or the
    /// `schedule.compile` failpoint) is contained into a typed error —
    /// compiling never takes the process down.
    pub fn compile(
        graph: &DnnGraph,
        plan: &ExecutionPlan,
        registry: &Registry,
        weights: &Weights,
    ) -> Result<Schedule, RuntimeError> {
        match catch_unwind(AssertUnwindSafe(|| {
            if let Some(faults::Injected::Error(msg)) = faults::hit(faults::SCHEDULE_COMPILE) {
                return Err(RuntimeError::Injected {
                    site: faults::SCHEDULE_COMPILE,
                    message: msg,
                });
            }
            Schedule::compile_inner(graph, plan, registry, weights)
        })) {
            Ok(r) => r,
            Err(p) => Err(RuntimeError::Panicked {
                context: "schedule compile".to_owned(),
                message: faults::panic_message(p),
            }),
        }
    }

    fn compile_inner(
        graph: &DnnGraph,
        plan: &ExecutionPlan,
        registry: &Registry,
        weights: &Weights,
    ) -> Result<Schedule, RuntimeError> {
        let order = graph.topo_order()?;
        let chains: HashMap<(usize, usize), &[ReprTransform]> = plan
            .edges
            .iter()
            .map(|e| ((e.from.index(), e.to.index()), e.chain.as_slice()))
            .collect();
        let input_chains: HashMap<usize, &[ReprTransform]> =
            plan.input_conversion.iter().map(|(n, c, _)| (n.index(), c.as_slice())).collect();

        let mut steps = Vec::with_capacity(order.len());
        let mut level_of = vec![0usize; graph.len()];
        let mut levels: Vec<Vec<usize>> = Vec::new();
        // The graph's own shape inference (one source of truth for the
        // pool/FC/concat output rules) drives all buffer sizing.
        let shapes = graph.infer_shapes()?;
        let mut conv_shapes: Vec<(usize, usize, usize, Repr)> = Vec::new();
        let mut ws_req = pbqp_dnn_primitives::WorkspaceReq::ZERO;
        let mut input_dims = None;
        for (step_ix, &node) in order.iter().enumerate() {
            let layer = graph.layer(node);
            let preds: Vec<PredEdge> = graph
                .predecessors(node)
                .iter()
                .map(|p| {
                    let chain = chains.get(&(p.index(), node.index())).copied().unwrap_or(&[]);
                    let conv_base = conv_shapes.len();
                    let (pc, ph, pw) = shapes[p.index()];
                    for hop in chain {
                        conv_shapes.push((pc, ph, pw, hop.to()));
                    }
                    PredEdge { buf: p.index(), chain: chain.to_vec(), conv_base }
                })
                .collect();

            let (op, out_shape) = match (&layer.kind, plan.assignment(node)) {
                (LayerKind::Conv(s), AssignmentKind::Conv { primitive, .. }) => {
                    let prim = registry
                        .by_name(primitive)
                        .ok_or_else(|| RuntimeError::UnknownPrimitive(primitive.clone()))?;
                    let kernel = weights
                        .conv_kernel_shared(node)
                        .ok_or_else(|| RuntimeError::MissingWeights(layer.name.clone()))?;
                    ws_req = ws_req.max(prim.workspace_req(s));
                    if prim.descriptor().input_dtype == DType::I8 {
                        // Pre-quantize the weights at schedule-compile
                        // time: the serving loop reads the cached int8
                        // image and never touches the f32 taps.
                        let _ = kernel.quantized();
                    }
                    let repr = prim.descriptor().output_repr();
                    let op = StepOp::Conv { prim: Arc::clone(prim), kernel, scenario: *s };
                    (op, (s.m, s.out_h(), s.out_w(), repr))
                }
                (LayerKind::Input { c, h, w }, AssignmentKind::Source { repr }) => {
                    input_dims = Some((*c, *h, *w));
                    let chain = input_chains.get(&node.index()).copied().unwrap_or(&[]);
                    let conv_base = conv_shapes.len();
                    if chain.len() > 1 {
                        for hop in &chain[..chain.len() - 1] {
                            conv_shapes.push((*c, *h, *w, hop.to()));
                        }
                    }
                    let op = StepOp::Input {
                        c: *c,
                        h: *h,
                        w: *w,
                        layout: repr.layout,
                        chain: chain.to_vec(),
                        conv_base,
                    };
                    (op, (*c, *h, *w, *repr))
                }
                (kind, AssignmentKind::Op { kernel, .. }) => {
                    let op_kernel = registry
                        .op_by_name(kernel)
                        .ok_or_else(|| RuntimeError::UnknownPrimitive(kernel.clone()))?;
                    let pred_dims: Vec<(usize, usize, usize)> =
                        graph.predecessors(node).iter().map(|p| shapes[p.index()]).collect();
                    let spec = OpSpec::for_layer(kind, pred_dims, shapes[node.index()])
                        .ok_or_else(|| {
                            RuntimeError::PlanMismatch(format!(
                                "op assignment `{kernel}` on non-operator layer {kind}"
                            ))
                        })?;
                    let fc_weights = if let LayerKind::FullyConnected { .. } = kind {
                        Some(
                            weights
                                .fc_matrix_shared(node)
                                .ok_or_else(|| RuntimeError::MissingWeights(layer.name.clone()))?,
                        )
                    } else {
                        None
                    };
                    ws_req = ws_req.max(op_kernel.workspace_req(&spec));
                    let repr = op_kernel.descriptor().output_repr();
                    let dims = shapes[node.index()];
                    let op = StepOp::Op { kernel: Arc::clone(op_kernel), spec, fc_weights };
                    (op, (dims.0, dims.1, dims.2, repr))
                }
                (kind, assignment) => {
                    return Err(RuntimeError::PlanMismatch(format!(
                        "assignment {assignment:?} on layer {kind}"
                    )))
                }
            };
            let level = preds.iter().map(|pe| level_of[pe.buf] + 1).max().unwrap_or(0);
            level_of[node.index()] = level;
            if levels.len() <= level {
                levels.resize_with(level + 1, Vec::new);
            }
            levels[level].push(step_ix);
            steps.push(Step {
                node,
                name: layer.name.clone(),
                preds,
                op,
                out_buf: usize::MAX,
                out_shape,
            });
        }

        let last = *order.last().expect("graph validated as non-empty");
        let out_chain: &[ReprTransform] = plan
            .output_conversion
            .iter()
            .find(|(n, _, _)| *n == last)
            .map(|(_, c, _)| c.as_slice())
            .unwrap_or(&[]);
        let out_conv_base = conv_shapes.len();
        if out_chain.len() > 1 {
            let (c, h, w) = shapes[last.index()];
            for hop in &out_chain[..out_chain.len() - 1] {
                conv_shapes.push((c, h, w, hop.to()));
            }
        }

        // ---- Activation memory plan -------------------------------------
        // A value dies after the last wavefront *level* that reads it
        // (level granularity keeps slot reuse race-free under concurrent
        // level execution); the network output never dies. Dead slots go
        // to a free list and are re-issued best-fit.
        let mut last_use_level = level_of.clone();
        for step in &steps {
            for pe in &step.preds {
                let lvl = level_of[step.node.index()];
                last_use_level[pe.buf] = last_use_level[pe.buf].max(lvl);
            }
        }
        last_use_level[last.index()] = usize::MAX;

        let mut release_at: Vec<Vec<usize>> = vec![Vec::new(); levels.len()];
        for (node, &lul) in last_use_level.iter().enumerate() {
            if lul != usize::MAX && lul + 1 < levels.len() {
                release_at[lul + 1].push(node);
            }
        }

        let mut node_buf = vec![usize::MAX; graph.len()];
        let mut buf_elems: Vec<(usize, DType)> = Vec::new();
        let mut free: Vec<usize> = Vec::new();
        for (lv, level) in levels.iter().enumerate() {
            for &node in &release_at[lv] {
                free.push(node_buf[node]);
            }
            for &six in level {
                let node = steps[six].node.index();
                let (c, h, w, repr) = steps[six].out_shape;
                let elems = repr.layout.storage_len(c, h, w);
                // Best fit among free buffers of the SAME dtype (reusing
                // a slot across dtypes would swap its backing store every
                // run): smallest that already holds the value; otherwise
                // grow the largest; otherwise a new buffer.
                let same_dtype = |b: usize| buf_elems[b].1 == repr.dtype;
                let pick = free
                    .iter()
                    .enumerate()
                    .filter(|&(_, &b)| same_dtype(b) && buf_elems[b].0 >= elems)
                    .min_by_key(|&(_, &b)| buf_elems[b].0)
                    .map(|(i, _)| i)
                    .or_else(|| {
                        free.iter()
                            .enumerate()
                            .filter(|&(_, &b)| same_dtype(b))
                            .max_by_key(|&(_, &b)| buf_elems[b].0)
                            .map(|(i, _)| i)
                    });
                let buf = match pick {
                    Some(i) => free.swap_remove(i),
                    None => {
                        buf_elems.push((0, repr.dtype));
                        buf_elems.len() - 1
                    }
                };
                buf_elems[buf].0 = buf_elems[buf].0.max(elems);
                node_buf[node] = buf;
            }
        }
        for step in &mut steps {
            step.out_buf = node_buf[step.node.index()];
            for pe in &mut step.preds {
                pe.buf = node_buf[pe.buf];
            }
        }

        let last_buf = node_buf[last.index()];
        Ok(Schedule {
            steps,
            levels,
            buf_elems,
            conv_shapes,
            ws_req,
            last_buf,
            out_chain: out_chain.to_vec(),
            out_conv_base,
            input_dims,
        })
    }

    /// Runs one forward pass out of a caller-owned buffer set, writing
    /// the network output into `out` — the per-thread serving primitive
    /// the front door's `Session::infer` is built on. `input` must be the
    /// canonical-CHW network input; the plan's input-conversion chain is
    /// applied automatically and quantized sinks are dequantized back to
    /// f32 through the plan's output chain.
    ///
    /// With serial [`Parallelism`] a warmed `(bufs, out)` pair makes this
    /// call perform **zero heap allocations**; `inter_op > 1` walks the
    /// DAG in wavefront levels on scoped threads, bit-identical to
    /// serial.
    ///
    /// # Errors
    ///
    /// Propagates graph, primitive, transformation and input-shape
    /// errors.
    pub fn run_into(
        &self,
        input: &Tensor,
        bufs: &mut ExecBuffers,
        out: &mut Tensor,
        par: Parallelism,
    ) -> Result<(), RuntimeError> {
        self.check_input(input)?;
        if par.inter_op > 1 {
            self.execute_wavefront(input, par, bufs)?;
        } else {
            self.execute_serial(input, par.intra_op, bufs)?;
        }
        if sampler::active() {
            // Merge this run's local reservoirs into the shared sampler;
            // a contended merge is deferred, never blocking the request.
            if let Some(state) = bufs.sampler.as_mut() {
                state.flush();
            }
        }
        self.finish_output(bufs, out)
    }

    /// Peak fused-batch workspace across the schedule's batch-fusing
    /// conv steps for `batch` simultaneous items (the shared-scratch
    /// half of [`BatchBuffers`]; per-item steps use each set's own
    /// workspace).
    pub fn batch_ws_req(&self, batch: usize) -> pbqp_dnn_primitives::WorkspaceReq {
        let mut req = pbqp_dnn_primitives::WorkspaceReq::ZERO;
        for step in &self.steps {
            if let StepOp::Conv { prim, scenario, .. } = &step.op {
                if prim.fuses_batch() {
                    req = req.max(prim.batch_workspace_req(scenario, batch));
                }
            }
        }
        req
    }

    /// Runs a whole batch of independent inputs through the schedule
    /// **level-major**, fusing compatible conv steps across items: where
    /// the selected primitive supports it (the im2col/im2row GEMM
    /// family), all items' patch matrices stack into one wide GEMM call,
    /// amortizing kernel re-layouts and packed panels over the batch —
    /// the mechanism that makes dynamic request coalescing beat
    /// per-request serving on throughput. Every other step (ops, layout
    /// conversions, non-fusing primitives) runs per item in input order.
    ///
    /// `outs[i]` receives item `i`'s output via its recycled storage.
    /// Results are **bit-identical** per item to [`Schedule::run_into`]:
    /// fusing only widens a GEMM's independent dimension and never
    /// reorders any element's accumulation.
    ///
    /// Panics at kernel dispatch (real or injected) are contained
    /// exactly like the serial path's, with the same (node, kernel)
    /// attribution.
    ///
    /// # Errors
    ///
    /// Validates every input up front (one malformed member fails the
    /// batch before anything executes) and propagates the first
    /// execution error.
    pub fn run_batch_fused_into(
        &self,
        inputs: &[Tensor],
        bufs: &mut BatchBuffers,
        outs: &mut [Tensor],
        intra_op: usize,
    ) -> Result<(), RuntimeError> {
        for input in inputs {
            self.check_input(input)?;
        }
        if outs.len() != inputs.len() {
            return Err(RuntimeError::BadInput(format!(
                "batch of {} inputs but {} output slots",
                inputs.len(),
                outs.len()
            )));
        }
        bufs.ensure(self, inputs.len());
        for (six, step) in self.steps.iter().enumerate() {
            self.eval_batch_step(six, step, inputs, bufs, intra_op)?;
        }
        for (set, out) in bufs.sets.iter_mut().zip(outs.iter_mut()) {
            self.finish_output(set, out)?;
        }
        Ok(())
    }

    /// Evaluates one step for every batch item: through the fused
    /// batched primitive entry point when the step's primitive supports
    /// it and the batch is real, per item otherwise.
    fn eval_batch_step(
        &self,
        six: usize,
        step: &Step,
        inputs: &[Tensor],
        bufs: &mut BatchBuffers,
        intra_op: usize,
    ) -> Result<(), RuntimeError> {
        let batch = inputs.len();
        let fuse = batch > 1 && matches!(&step.op, StepOp::Conv { prim, .. } if prim.fuses_batch());
        if !fuse {
            for (i, input) in inputs.iter().enumerate() {
                self.eval_into(six, step, &mut bufs.sets[i], input, intra_op)?;
            }
            return Ok(());
        }
        let StepOp::Conv { prim, kernel, scenario } = &step.op else { unreachable!() };
        for (i, input) in inputs.iter().enumerate() {
            let set = &mut bufs.sets[i];
            self.run_conversions(step, &set.values, &mut set.convs, input)?;
        }
        // Take every item's output slot out of its pool so all sets can
        // then be borrowed immutably as the fused call's inputs
        // (liveness guarantees no live predecessor shares the slot).
        let BatchBuffers { sets, ws, staged } = bufs;
        staged.clear();
        for set in sets[..batch].iter_mut() {
            staged.push(std::mem::replace(&mut set.values[step.out_buf], Tensor::empty()));
        }
        let sets_ro: &[ExecBuffers] = &sets[..batch];
        let pe = &step.preds[0];
        let resolve = |i: usize| -> &Tensor {
            match pe.chain.len() {
                0 => &sets_ro[i].values[pe.buf],
                l => &sets_ro[i].convs[pe.conv_base + l - 1],
            }
        };
        ws.reset();
        let contained = catch_unwind(AssertUnwindSafe(|| -> Result<(), RuntimeError> {
            if let Some(faults::Injected::Error(msg)) = faults::hit(faults::KERNEL_DISPATCH) {
                return Err(RuntimeError::KernelFailed {
                    node: step.name.clone(),
                    kernel: prim.descriptor().name.clone(),
                    message: msg,
                });
            }
            prim.execute_batch_into(batch, &resolve, kernel, scenario, intra_op, ws, staged)?;
            Ok(())
        }));
        // Commit every slot back before surfacing errors so the pools
        // stay intact.
        for (set, out) in bufs.sets[..batch].iter_mut().zip(bufs.staged.drain(..)) {
            set.values[step.out_buf] = out;
        }
        match contained {
            Ok(r) => r,
            Err(p) => Err(RuntimeError::KernelPanicked {
                node: step.name.clone(),
                kernel: prim.descriptor().name.clone(),
                message: faults::panic_message(p),
            }),
        }
    }

    /// Validates a network input — canonical CHW layout, the compiled
    /// input dims — *before* a pass touches any buffer, so a malformed
    /// request (e.g. one bad member of a batch) is a typed
    /// [`RuntimeError::BadInput`] with no partial execution.
    pub fn check_input(&self, input: &Tensor) -> Result<(), RuntimeError> {
        if input.layout() != Layout::Chw {
            return Err(RuntimeError::BadInput(format!(
                "network inputs are canonical CHW, got {}",
                input.layout()
            )));
        }
        if let Some(dims) = self.input_dims {
            if input.dims() != dims {
                return Err(RuntimeError::BadInput(format!(
                    "expected input dims {dims:?}, got {:?}",
                    input.dims()
                )));
            }
        }
        Ok(())
    }

    /// Number of pooled activation slots in the memory plan. Liveness
    /// analysis lets non-overlapping values share slots, so this is
    /// bounded by peak activation working set, not node count.
    pub fn activation_slots(&self) -> usize {
        self.buf_elems.len()
    }

    /// Number of wavefront levels (the DAG's critical-path length).
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// Number of steps — the reservoir count a live-profiler
    /// [`crate::sampler::Sampler`] for this schedule must be sized to.
    pub fn step_count(&self) -> usize {
        self.steps.len()
    }

    /// Per-step metadata, index-aligned with the sampler's reservoir
    /// slots: which node each step computes and the kernel the plan
    /// selected for it. This is the map from raw step timings back to
    /// the `(node, kernel)` pairs an observed-cost table is keyed by.
    pub fn step_meta(&self) -> Vec<StepMeta> {
        self.steps
            .iter()
            .map(|step| {
                let kernel = match &step.op {
                    StepOp::Conv { prim, .. } => prim.descriptor().name.clone(),
                    StepOp::Op { kernel, .. } => kernel.descriptor().name.clone(),
                    // The input step runs no selectable kernel; its
                    // timings exist but map to no plan decision.
                    StepOp::Input { .. } => String::from("input"),
                };
                StepMeta { node: step.node, name: step.name.clone(), kernel }
            })
            .collect()
    }

    /// Delivers the network output into `out`: a plain recycled copy when
    /// the terminal value is already f32, otherwise the plan's output
    /// conversion chain (dequantization), staged through the dedicated
    /// conversion buffers — allocation-free once warmed, like every
    /// other chain.
    fn finish_output(&self, bufs: &mut ExecBuffers, out: &mut Tensor) -> Result<(), RuntimeError> {
        let src = &bufs.values[self.last_buf];
        match self.out_chain.len() {
            0 => out.assign_from(src),
            1 => apply_hop(src, self.out_chain[0], out)?,
            l => {
                let convs = &mut bufs.convs;
                for (j, hop) in self.out_chain[..l - 1].iter().enumerate() {
                    let (done, rest) = convs.split_at_mut(self.out_conv_base + j);
                    let s: &Tensor = if j == 0 { src } else { &done[self.out_conv_base + j - 1] };
                    apply_hop(s, *hop, &mut rest[0])?;
                }
                apply_hop(&convs[self.out_conv_base + l - 2], self.out_chain[l - 1], out)?;
            }
        }
        Ok(())
    }

    /// Materializes one worker's buffer set, pre-sized so the first run
    /// settles every capacity and later runs never allocate.
    pub fn make_buffers(&self) -> ExecBuffers {
        let values = self
            .buf_elems
            .iter()
            .map(|&(elems, dtype)| {
                let mut t = Tensor::empty_dtype(dtype);
                t.reserve_storage(elems);
                t
            })
            .collect();
        let convs = self
            .conv_shapes
            .iter()
            .map(|&(c, h, w, repr)| {
                let mut t = Tensor::empty_dtype(repr.dtype);
                t.reserve_storage(repr.layout.storage_len(c, h, w));
                t
            })
            .collect();
        ExecBuffers {
            values,
            convs,
            ws: Workspace::with_req(self.ws_req),
            wave_ws: Vec::new(),
            sampler: None,
        }
    }

    /// Runs a step's edge legalization chains (and the input node's
    /// intermediate hops) into the conversion buffers.
    fn run_conversions(
        &self,
        step: &Step,
        values: &[Tensor],
        convs: &mut [Tensor],
        input: &Tensor,
    ) -> Result<(), RuntimeError> {
        for pe in &step.preds {
            for (j, hop) in pe.chain.iter().enumerate() {
                let (done, rest) = convs.split_at_mut(pe.conv_base + j);
                let src: &Tensor =
                    if j == 0 { &values[pe.buf] } else { &done[pe.conv_base + j - 1] };
                apply_hop(src, *hop, &mut rest[0])?;
            }
        }
        if let StepOp::Input { chain, conv_base, .. } = &step.op {
            if chain.len() > 1 {
                for (j, hop) in chain[..chain.len() - 1].iter().enumerate() {
                    let (done, rest) = convs.split_at_mut(conv_base + j);
                    let src: &Tensor = if j == 0 { input } else { &done[conv_base + j - 1] };
                    apply_hop(src, *hop, &mut rest[0])?;
                }
            }
        }
        Ok(())
    }

    /// Computes one step into `out`, reading already-converted inputs.
    /// Conversion buffers must be current (see
    /// [`Schedule::run_conversions`]).
    #[allow(clippy::too_many_arguments)]
    fn dispatch_into(
        &self,
        step: &Step,
        values: &[Tensor],
        convs: &[Tensor],
        input: &Tensor,
        intra_op: usize,
        ws: &mut Workspace,
        out: &mut Tensor,
    ) -> Result<(), RuntimeError> {
        // The common case — an empty chain — borrows the stored
        // activation; only real conversions read the staging buffers.
        let resolve = |pe: &PredEdge| -> &Tensor {
            match pe.chain.len() {
                0 => &values[pe.buf],
                l => &convs[pe.conv_base + l - 1],
            }
        };
        match &step.op {
            StepOp::Conv { prim, kernel, scenario } => {
                ws.reset();
                // The containment boundary of the tentpole: a panicking
                // kernel (real or injected at `kernel.dispatch`) unwinds
                // no further than its own step. The success path adds no
                // allocation — `catch_unwind` only costs on unwind, and
                // the disarmed failpoint is one atomic load — so the
                // zero-allocation steady state is untouched.
                let contained = catch_unwind(AssertUnwindSafe(|| -> Result<(), RuntimeError> {
                    if let Some(faults::Injected::Error(msg)) = faults::hit(faults::KERNEL_DISPATCH)
                    {
                        return Err(RuntimeError::KernelFailed {
                            node: step.name.clone(),
                            kernel: prim.descriptor().name.clone(),
                            message: msg,
                        });
                    }
                    prim.execute_into(
                        resolve(&step.preds[0]),
                        kernel,
                        scenario,
                        intra_op,
                        ws,
                        out,
                    )?;
                    Ok(())
                }));
                match contained {
                    Ok(r) => r?,
                    Err(p) => {
                        return Err(RuntimeError::KernelPanicked {
                            node: step.name.clone(),
                            kernel: prim.descriptor().name.clone(),
                            message: faults::panic_message(p),
                        })
                    }
                }
            }
            StepOp::Input { c, h, w, layout, chain, conv_base } => {
                if input.dims() != (*c, *h, *w) {
                    return Err(RuntimeError::BadInput(format!(
                        "expected {:?}, got {:?}",
                        (c, h, w),
                        input.dims()
                    )));
                }
                match chain.len() {
                    0 => {
                        if input.layout() == *layout {
                            out.assign_from(input);
                        } else {
                            // Defensive: plans always carry the chain,
                            // but a hand-built plan may not.
                            to_layout_into(input, *layout, out);
                        }
                    }
                    1 => apply_hop(input, chain[0], out)?,
                    l => apply_hop(&convs[conv_base + l - 2], chain[l - 1], out)?,
                }
            }
            StepOp::Op { kernel, spec, fc_weights } => {
                // Operands resolve straight out of the pooled slots (or
                // conversion staging) through a stack closure — no
                // per-call operand vector, so the zero-allocation
                // steady state holds for n-ary ops too.
                let get = |i: usize| resolve(&step.preds[i]);
                ws.reset();
                let contained = catch_unwind(AssertUnwindSafe(|| -> Result<(), RuntimeError> {
                    if let Some(faults::Injected::Error(msg)) = faults::hit(faults::KERNEL_DISPATCH)
                    {
                        return Err(RuntimeError::KernelFailed {
                            node: step.name.clone(),
                            kernel: kernel.descriptor().name.clone(),
                            message: msg,
                        });
                    }
                    let operands = OpInputs::Resolver(step.preds.len(), &get);
                    kernel.execute_into(
                        operands,
                        fc_weights.as_ref().map(|w| w.as_slice()),
                        spec,
                        ws,
                        out,
                    )?;
                    Ok(())
                }));
                match contained {
                    Ok(r) => r?,
                    Err(p) => {
                        return Err(RuntimeError::KernelPanicked {
                            node: step.name.clone(),
                            kernel: kernel.descriptor().name.clone(),
                            message: faults::panic_message(p),
                        })
                    }
                }
            }
        }
        Ok(())
    }

    /// Evaluates one step entirely: conversions, then computation into
    /// the step's pooled output buffer. `six` is the step's index in
    /// `self.steps` — the live profiler's reservoir slot.
    fn eval_into(
        &self,
        six: usize,
        step: &Step,
        bufs: &mut ExecBuffers,
        input: &Tensor,
        intra_op: usize,
    ) -> Result<(), RuntimeError> {
        self.run_conversions(step, &bufs.values, &mut bufs.convs, input)?;
        // Take the output buffer out of the pool so the remaining slots
        // can be borrowed immutably as inputs (liveness guarantees no
        // live predecessor shares this slot). `Tensor::empty` is free.
        let mut out = std::mem::replace(&mut bufs.values[step.out_buf], Tensor::empty());
        // The live-profiler gate: with no sampling engine in the process
        // this is a single relaxed atomic load; armed, the rate gate
        // decides whether this evaluation gets timestamped.
        let sampling = if sampler::active() {
            bufs.sampler.as_mut().and_then(SamplerState::begin)
        } else {
            None
        };
        let result = self.dispatch_into(
            step,
            &bufs.values,
            &bufs.convs,
            input,
            intra_op,
            &mut bufs.ws,
            &mut out,
        );
        if let Some(started) = sampling {
            // Only successful dispatches feed the observed-cost table.
            if result.is_ok() {
                if let Some(state) = bufs.sampler.as_mut() {
                    state.record(six, started);
                }
            }
        }
        bufs.values[step.out_buf] = out;
        result
    }

    /// Runs every step in topological order on the calling thread. The
    /// network output is left in `bufs.values[self.last_buf]`.
    fn execute_serial(
        &self,
        input: &Tensor,
        intra_op: usize,
        bufs: &mut ExecBuffers,
    ) -> Result<(), RuntimeError> {
        for (six, step) in self.steps.iter().enumerate() {
            self.eval_into(six, step, bufs, input, intra_op)?;
        }
        Ok(())
    }

    /// Walks the DAG level by level, running each level's independent
    /// nodes concurrently on up to `par.inter_op` scoped threads.
    fn execute_wavefront(
        &self,
        input: &Tensor,
        par: Parallelism,
        bufs: &mut ExecBuffers,
    ) -> Result<(), RuntimeError> {
        for level in &self.levels {
            if level.len() <= 1 || par.inter_op <= 1 {
                for &six in level {
                    self.eval_into(six, &self.steps[six], bufs, input, par.intra_op)?;
                }
                continue;
            }
            // Stage all conversions serially (they are cheap and write
            // per-step-distinct buffers), then take every output tensor
            // out of the pool and fan the level out. Level-granular
            // liveness guarantees no worker's output slot aliases any
            // buffer read concurrently.
            for &six in level {
                self.run_conversions(&self.steps[six], &bufs.values, &mut bufs.convs, input)?;
            }
            let mut outs: Vec<(usize, Tensor)> = level
                .iter()
                .map(|&six| {
                    let buf = self.steps[six].out_buf;
                    (six, std::mem::replace(&mut bufs.values[buf], Tensor::empty()))
                })
                .collect();
            let per = level.len().div_ceil(par.inter_op);
            let n_chunks = level.len().div_ceil(per);
            if bufs.wave_ws.len() < n_chunks {
                // Grown once to the fan-out width; each worker's arenas
                // then settle during its first level and are reused
                // across levels and runs.
                bufs.wave_ws.resize_with(n_chunks, Workspace::new);
            }
            let values = &bufs.values;
            let convs = &bufs.convs;
            let results: Vec<Result<(), RuntimeError>> = std::thread::scope(|scope| {
                let handles: Vec<_> = outs
                    .chunks_mut(per)
                    .zip(bufs.wave_ws.iter_mut())
                    .map(|(chunk, ws)| {
                        scope.spawn(move || {
                            for (six, out) in chunk {
                                self.dispatch_into(
                                    &self.steps[*six],
                                    values,
                                    convs,
                                    input,
                                    par.intra_op,
                                    ws,
                                    out,
                                )?;
                            }
                            Ok(())
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| {
                        // Kernel panics are already contained inside
                        // dispatch; this maps anything that still
                        // escapes a worker into a typed error instead
                        // of aborting the process.
                        h.join().unwrap_or_else(|p| {
                            Err(RuntimeError::Panicked {
                                context: "wavefront worker".to_owned(),
                                message: faults::panic_message(p),
                            })
                        })
                    })
                    .collect()
            });
            // Commit every buffer back before surfacing errors so the
            // pool stays intact.
            for (six, out) in outs {
                bufs.values[self.steps[six].out_buf] = out;
            }
            for result in results {
                result?;
            }
        }
        Ok(())
    }
}

/// Executes an [`ExecutionPlan`] on real tensors — the runtime counterpart
/// of the paper's generated code (§5.2), grown into a parallel batched
/// engine with allocation-free steady-state serving (see
/// [`Executor::run_into`] and [`Executor::run_batch`]).
pub struct Executor<'a> {
    graph: &'a DnnGraph,
    plan: &'a ExecutionPlan,
    registry: &'a Registry,
    weights: &'a Weights,
    /// Memoized compiled schedule: every execution mode shares one
    /// compilation per executor. (The schedule is owned — it holds shared
    /// handles to primitives and kernels, not borrows of the executor.)
    schedule: OnceLock<Schedule>,
    /// Recycled per-worker buffer sets: activation slots, conversion
    /// staging and primitive workspaces. Checked out per run, returned
    /// afterwards — the steady-state serving loop allocates nothing.
    buffers: Mutex<Vec<ExecBuffers>>,
}

impl<'a> Executor<'a> {
    /// Binds a plan to its graph, registry and weights.
    pub fn new(
        graph: &'a DnnGraph,
        plan: &'a ExecutionPlan,
        registry: &'a Registry,
        weights: &'a Weights,
    ) -> Executor<'a> {
        Executor {
            graph,
            plan,
            registry,
            weights,
            schedule: OnceLock::new(),
            buffers: Mutex::new(Vec::with_capacity(BUFFER_POOL_CAP)),
        }
    }

    /// The compiled schedule, built on first use. Compilation errors
    /// (unknown primitive, missing weights, malformed graph) are not
    /// cached — they surface on every call.
    fn schedule(&self) -> Result<&Schedule, RuntimeError> {
        if let Some(s) = self.schedule.get() {
            return Ok(s);
        }
        let compiled = Schedule::compile(self.graph, self.plan, self.registry, self.weights)?;
        Ok(self.schedule.get_or_init(|| compiled))
    }

    /// Locks the recycled-buffer pool, recovering from poison: a panic
    /// while the pool was locked discards the recycled sets (they
    /// rebuild from the schedule on demand) and clears the poison latch,
    /// so one bad request can never wedge the executor forever — the old
    /// `.expect("buffer pool poisoned")` latch turned a single
    /// mid-flight panic into a permanently dead engine.
    fn pool(&self) -> MutexGuard<'_, Vec<ExecBuffers>> {
        match self.buffers.lock() {
            Ok(g) => g,
            Err(poisoned) => {
                self.buffers.clear_poison();
                let mut g = poisoned.into_inner();
                g.clear();
                g
            }
        }
    }

    /// Checks a buffer set out of the pool (building one on first use),
    /// runs `f`, and returns the set for the next run — unless the run
    /// contained a panic, in which case the set is discarded (a
    /// panicking kernel may have left buffers mid-mutation) and the next
    /// run rebuilds a fresh one from the schedule.
    fn with_buffers<R>(
        &self,
        schedule: &Schedule,
        f: impl FnOnce(&mut ExecBuffers) -> Result<R, RuntimeError>,
    ) -> Result<R, RuntimeError> {
        // The checkout failpoint is evaluated *while the pool lock is
        // held*: an injected panic here genuinely poisons the mutex,
        // which is exactly the failure `pool()` must recover from.
        let recycled = match catch_unwind(AssertUnwindSafe(|| {
            let mut pool = self.pool();
            match faults::hit(faults::BUFFER_CHECKOUT) {
                Some(faults::Injected::Error(msg)) => {
                    Err(RuntimeError::Injected { site: faults::BUFFER_CHECKOUT, message: msg })
                }
                _ => Ok(pool.pop()),
            }
        })) {
            Ok(Ok(r)) => r,
            Ok(Err(e)) => return Err(e),
            Err(p) => {
                return Err(RuntimeError::Panicked {
                    context: "buffer checkout".to_owned(),
                    message: faults::panic_message(p),
                })
            }
        };
        let mut bufs = recycled.unwrap_or_else(|| schedule.make_buffers());
        let result = match catch_unwind(AssertUnwindSafe(|| f(&mut bufs))) {
            Ok(r) => r,
            Err(p) => {
                drop(bufs);
                return Err(RuntimeError::Panicked {
                    context: "forward pass".to_owned(),
                    message: faults::panic_message(p),
                });
            }
        };
        let discard = matches!(
            result,
            Err(RuntimeError::KernelPanicked { .. }) | Err(RuntimeError::Panicked { .. })
        );
        if !discard {
            let mut pool = self.pool();
            if pool.len() < BUFFER_POOL_CAP {
                pool.push(bufs);
            }
        }
        result
    }

    /// Runs one forward pass. `input` must be the canonical-CHW network
    /// input; the plan's input-conversion chain is applied automatically.
    /// Returns the output of the last layer in topological order.
    ///
    /// `threads` is the intra-op worker count handed to each primitive;
    /// the graph itself is walked serially. Use [`Executor::run_with`]
    /// for inter-op (wavefront) parallelism, [`Executor::run_batch`] for
    /// whole-batch amortization, and [`Executor::run_into`] for the
    /// allocation-free serving loop.
    ///
    /// # Errors
    ///
    /// Propagates graph, primitive, transformation and weight errors.
    pub fn run(&self, input: &Tensor, threads: usize) -> Result<Tensor, RuntimeError> {
        self.run_with(input, Parallelism::serial().with_intra_op(threads))
    }

    /// [`Executor::run`] writing into a caller-recycled output tensor —
    /// the steady-state serving API. After one warmup run (which settles
    /// pooled buffer and workspace capacities), serial calls perform
    /// **zero heap allocations**: activations live in liveness-pooled
    /// slots, primitive scratch in bump arenas, and the output lands in
    /// `out`'s existing storage.
    ///
    /// # Errors
    ///
    /// Propagates graph, primitive, transformation and weight errors.
    pub fn run_into(
        &self,
        input: &Tensor,
        out: &mut Tensor,
        threads: usize,
    ) -> Result<(), RuntimeError> {
        self.run_with_into(input, out, Parallelism::serial().with_intra_op(threads))
    }

    /// Runs one forward pass under an explicit [`Parallelism`] mapping.
    ///
    /// With `inter_op > 1` the executor walks the plan's DAG in wavefront
    /// levels and runs independent nodes (e.g. the branches of an
    /// inception module) concurrently on scoped threads. Outputs are
    /// bit-identical to [`Parallelism::serial`]: scheduling never changes
    /// any kernel's per-element accumulation order.
    ///
    /// # Errors
    ///
    /// Propagates graph, primitive, transformation and weight errors.
    pub fn run_with(&self, input: &Tensor, par: Parallelism) -> Result<Tensor, RuntimeError> {
        let mut out = Tensor::empty();
        self.run_with_into(input, &mut out, par)?;
        Ok(out)
    }

    /// [`Executor::run_with`] writing into a caller-recycled output
    /// tensor (see [`Executor::run_into`] for the zero-allocation
    /// contract of the serial configuration).
    ///
    /// # Errors
    ///
    /// Propagates graph, primitive, transformation and weight errors.
    pub fn run_with_into(
        &self,
        input: &Tensor,
        out: &mut Tensor,
        par: Parallelism,
    ) -> Result<(), RuntimeError> {
        let schedule = self.schedule()?;
        self.with_buffers(schedule, |bufs| schedule.run_into(input, bufs, out, par))
    }

    /// Runs one plan over a whole batch of inputs, amortizing schedule
    /// compilation across all of them and partitioning items over
    /// `par.inter_op` worker threads (each item itself executes with
    /// `par.intra_op` primitive threads).
    ///
    /// Outputs are returned in input order and are bit-identical to
    /// calling [`Executor::run`] per item: batch items never share
    /// accumulators, so the partitioning cannot change any result.
    ///
    /// # Errors
    ///
    /// Returns the first (in input order) item's error, if any.
    pub fn run_batch(
        &self,
        inputs: &[Tensor],
        par: Parallelism,
    ) -> Result<Vec<Tensor>, RuntimeError> {
        let mut outs = Vec::new();
        self.run_batch_into(inputs, &mut outs, par)?;
        Ok(outs)
    }

    /// [`Executor::run_batch`] writing into caller-recycled output
    /// tensors: `outs` is resized to `inputs.len()` and each slot's
    /// storage is reused. With serial [`Parallelism`] a warmed engine
    /// serves the whole batch without heap allocations.
    ///
    /// # Errors
    ///
    /// Returns the first (in input order) item's error, if any.
    pub fn run_batch_into(
        &self,
        inputs: &[Tensor],
        outs: &mut Vec<Tensor>,
        par: Parallelism,
    ) -> Result<(), RuntimeError> {
        let schedule = self.schedule()?;
        // Validate the whole batch up front: one shape-mismatched
        // member is a typed error before any item executes.
        for input in inputs {
            schedule.check_input(input)?;
        }
        if outs.len() != inputs.len() {
            outs.resize_with(inputs.len(), Tensor::empty);
        }
        if inputs.is_empty() {
            return Ok(());
        }
        let workers = par.inter_op.min(inputs.len());
        if workers <= 1 {
            return self.with_buffers(schedule, |bufs| {
                for (input, out) in inputs.iter().zip(outs.iter_mut()) {
                    schedule.execute_serial(input, par.intra_op, bufs)?;
                    schedule.finish_output(bufs, out)?;
                }
                Ok(())
            });
        }
        let per = inputs.len().div_ceil(workers);
        let results: Vec<Result<(), RuntimeError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = inputs
                .chunks(per)
                .zip(outs.chunks_mut(per))
                .map(|(in_chunk, out_chunk)| {
                    scope.spawn(move || {
                        self.with_buffers(schedule, |bufs| {
                            for (input, out) in in_chunk.iter().zip(out_chunk.iter_mut()) {
                                schedule.execute_serial(input, par.intra_op, bufs)?;
                                schedule.finish_output(bufs, out)?;
                            }
                            Ok(())
                        })
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|p| {
                        Err(RuntimeError::Panicked {
                            context: "batch worker".to_owned(),
                            message: faults::panic_message(p),
                        })
                    })
                })
                .collect()
        });
        results.into_iter().collect()
    }
}

impl fmt::Debug for Executor<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Executor").field("nodes", &self.graph.len()).finish()
    }
}

/// Applies one representation-transformation hop under the containment
/// contract: quantize/dequantize hops evaluate the `edge.quant`
/// failpoint, and a panicking conversion is contained into a typed
/// error instead of unwinding through the executor. The success path is
/// one disarmed-failpoint atomic load plus the conversion itself — no
/// allocation.
fn apply_hop(src: &Tensor, hop: ReprTransform, dst: &mut Tensor) -> Result<(), RuntimeError> {
    match catch_unwind(AssertUnwindSafe(|| -> Result<(), RuntimeError> {
        if matches!(hop, ReprTransform::Quantize(_) | ReprTransform::Dequantize(_)) {
            if let Some(faults::Injected::Error(msg)) = faults::hit(faults::QUANT_EDGE) {
                return Err(RuntimeError::Injected { site: faults::QUANT_EDGE, message: msg });
            }
        }
        apply_repr_into(src, hop, dst)?;
        Ok(())
    })) {
        Ok(r) => r,
        Err(p) => Err(RuntimeError::Panicked {
            context: "edge conversion".to_owned(),
            message: faults::panic_message(p),
        }),
    }
}

/// Independent oracle: executes the network with the textbook reference
/// convolution and canonical CHW layout throughout. Any plan's output must
/// match this within floating-point tolerance.
pub fn reference_forward(graph: &DnnGraph, weights: &Weights, input: &Tensor) -> Tensor {
    let order = graph.topo_order().expect("valid graph");
    let mut values: Vec<Option<Tensor>> = vec![None; graph.len()];
    let mut last = None;
    for node in order {
        // Borrow predecessor activations in place — cloning whole
        // tensors per node made the oracle quadratic in activation bytes.
        let inputs: Vec<&Tensor> = graph
            .predecessors(node)
            .iter()
            .map(|p| values[p.index()].as_ref().expect("topo order"))
            .collect();
        let out = match &graph.layer(node).kind {
            LayerKind::Input { .. } => input.clone(),
            LayerKind::Conv(s) => {
                let k = weights.conv_kernel(node).expect("weights cover conv layers");
                sum2d_reference(inputs[0], k, s)
            }
            LayerKind::Relu => ops::relu(inputs[0], inputs[0].layout()),
            LayerKind::Pool { kind, k, stride, pad } => {
                ops::pool(inputs[0], inputs[0].layout(), *kind, *k, *stride, *pad)
            }
            LayerKind::Lrn => ops::lrn(inputs[0], inputs[0].layout()),
            LayerKind::Dropout => inputs[0].clone(),
            LayerKind::FullyConnected { out } => {
                let w = weights.fc_matrix(node).expect("weights cover fc layers");
                ops::fully_connected(inputs[0], w, *out, Layout::Chw)
            }
            LayerKind::Concat => ops::concat(&inputs, Layout::Chw),
            LayerKind::Add => ops::add(&inputs, inputs[0].layout()),
            LayerKind::Softmax => ops::softmax(inputs[0], inputs[0].layout()),
        };
        drop(inputs);
        values[node.index()] = Some(out);
        last = Some(node);
    }
    values[last.expect("non-empty").index()].take().expect("ran")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbqp_dnn_cost::{AnalyticCost, MachineModel};
    use pbqp_dnn_graph::{ConvScenario, Layer};
    use pbqp_dnn_primitives::registry::full_library;
    use pbqp_dnn_select::{Optimizer, Strategy};

    /// A miniature inception-style network exercising fan-out, concat,
    /// pooling and two conv sizes.
    fn mini_inception() -> DnnGraph {
        let mut g = DnnGraph::new();
        let data = g.add(Layer::new("data", LayerKind::Input { c: 4, h: 12, w: 12 }));
        let c1 = g.add(Layer::new(
            "b1",
            LayerKind::Conv(ConvScenario::new(4, 12, 12, 1, 1, 6).with_pad(0)),
        ));
        let c3 = g.add(Layer::new("b3", LayerKind::Conv(ConvScenario::new(4, 12, 12, 1, 3, 6))));
        let cat = g.add(Layer::new("cat", LayerKind::Concat));
        let relu = g.add(Layer::new("relu", LayerKind::Relu));
        let c_out =
            g.add(Layer::new("out", LayerKind::Conv(ConvScenario::new(12, 12, 12, 1, 3, 5))));
        g.connect(data, c1).unwrap();
        g.connect(data, c3).unwrap();
        g.connect(c1, cat).unwrap();
        g.connect(c3, cat).unwrap();
        g.connect(cat, relu).unwrap();
        g.connect(relu, c_out).unwrap();
        g
    }

    #[test]
    fn every_strategy_computes_the_same_function() {
        let net = mini_inception();
        let reg = Registry::new(full_library());
        let cost = AnalyticCost::new(MachineModel::intel_haswell_like(), 1);
        let opt = Optimizer::new(&reg, &cost);
        let weights = Weights::random(&net, 11);
        let input = Tensor::random(4, 12, 12, Layout::Chw, 12);
        let oracle = reference_forward(&net, &weights, &input);
        let mut strategies = vec![
            Strategy::Pbqp,
            Strategy::PbqpHeuristic,
            Strategy::Sum2d,
            Strategy::LocalOptimalChw,
            Strategy::CaffeLike,
            Strategy::VendorLike { vector_width: 8 },
            Strategy::VendorLike { vector_width: 4 },
        ];
        strategies.extend(Strategy::family_bars());
        for strategy in strategies {
            let plan = opt.plan(&net, strategy).unwrap();
            let out = Executor::new(&net, &plan, &reg, &weights).run(&input, 1).unwrap();
            let diff = out.max_abs_diff(&oracle).unwrap();
            assert!(diff < 1e-2, "{}: diff {diff}", strategy.label());
        }
    }

    #[test]
    fn multithreaded_execution_matches_single_threaded() {
        let net = mini_inception();
        let reg = Registry::new(full_library());
        let cost = AnalyticCost::new(MachineModel::arm_a57_like(), 4);
        let opt = Optimizer::new(&reg, &cost);
        let plan = opt.plan(&net, Strategy::Pbqp).unwrap();
        let weights = Weights::random(&net, 21);
        let input = Tensor::random(4, 12, 12, Layout::Chw, 22);
        let exec = Executor::new(&net, &plan, &reg, &weights);
        let one = exec.run(&input, 1).unwrap();
        let four = exec.run(&input, 4).unwrap();
        assert!(one.allclose(&four, 1e-4).unwrap());
    }

    #[test]
    fn wavefront_execution_is_bit_identical_to_serial() {
        let net = mini_inception();
        let reg = Registry::new(full_library());
        let cost = AnalyticCost::new(MachineModel::intel_haswell_like(), 1);
        let opt = Optimizer::new(&reg, &cost);
        let weights = Weights::random(&net, 31);
        let input = Tensor::random(4, 12, 12, Layout::Chw, 32);
        for strategy in [Strategy::Pbqp, Strategy::VendorLike { vector_width: 8 }] {
            let plan = opt.plan(&net, strategy).unwrap();
            let exec = Executor::new(&net, &plan, &reg, &weights);
            let serial = exec.run_with(&input, Parallelism::serial()).unwrap();
            let wave = exec.run_with(&input, Parallelism::serial().with_inter_op(4)).unwrap();
            assert_eq!(serial.data(), wave.data(), "{}", strategy.label());
            assert_eq!(serial.layout(), wave.layout());
        }
    }

    #[test]
    fn run_batch_is_bit_identical_to_serial_runs_in_input_order() {
        let net = mini_inception();
        let reg = Registry::new(full_library());
        let cost = AnalyticCost::new(MachineModel::intel_haswell_like(), 1);
        let opt = Optimizer::new(&reg, &cost);
        let plan = opt.plan(&net, Strategy::Pbqp).unwrap();
        let weights = Weights::random(&net, 41);
        let exec = Executor::new(&net, &plan, &reg, &weights);
        let inputs: Vec<Tensor> =
            (0..9).map(|i| Tensor::random(4, 12, 12, Layout::Chw, 100 + i)).collect();
        for par in [
            Parallelism::serial(),
            Parallelism::serial().with_inter_op(3),
            Parallelism::serial().with_inter_op(16),
        ] {
            let batch = exec.run_batch(&inputs, par).unwrap();
            assert_eq!(batch.len(), inputs.len());
            for (input, out) in inputs.iter().zip(&batch) {
                let one = exec.run(input, 1).unwrap();
                assert_eq!(one.data(), out.data(), "{par}");
            }
        }
    }

    #[test]
    fn fused_batch_run_is_bit_identical_to_serial_across_models() {
        use pbqp_dnn_graph::models;
        let reg = Registry::new(full_library());
        let cost = AnalyticCost::new(MachineModel::intel_haswell_like(), 1);
        let opt = Optimizer::new(&reg, &cost);
        for (net, seed) in [
            (mini_inception(), 71),
            (models::micro_mixed(), 72),
            (models::micro_alexnet(), 73),
            (models::micro_resnet(), 74),
        ] {
            let plan = opt.plan(&net, Strategy::Pbqp).unwrap();
            let weights = Weights::random(&net, seed);
            let schedule = Schedule::compile(&net, &plan, &reg, &weights).unwrap();
            let (c, h, w) = net.infer_shapes().unwrap()[0];
            let mut bufs = BatchBuffers::new();
            // Varying batch sizes across rounds: the buffer sets and the
            // fused workspace grow to the watermark and recycle.
            for (round, batch) in [4usize, 1, 7, 3].into_iter().enumerate() {
                let inputs: Vec<Tensor> = (0..batch)
                    .map(|i| {
                        Tensor::random(c, h, w, Layout::Chw, seed * 100 + (round * 10 + i) as u64)
                    })
                    .collect();
                let mut outs = vec![Tensor::empty(); batch];
                schedule.run_batch_fused_into(&inputs, &mut bufs, &mut outs, 1).unwrap();
                let mut solo_bufs = schedule.make_buffers();
                let mut solo = Tensor::empty();
                for (input, out) in inputs.iter().zip(&outs) {
                    schedule
                        .run_into(input, &mut solo_bufs, &mut solo, Parallelism::serial())
                        .unwrap();
                    assert_eq!(
                        solo.data(),
                        out.data(),
                        "fused batch diverged from serial (round {round}, batch {batch})"
                    );
                    assert_eq!(solo.layout(), out.layout());
                }
            }
        }
    }

    #[test]
    fn fused_batch_run_rejects_mismatched_outs_and_bad_members() {
        let net = mini_inception();
        let reg = Registry::new(full_library());
        let cost = AnalyticCost::new(MachineModel::intel_haswell_like(), 1);
        let plan = Optimizer::new(&reg, &cost).plan(&net, Strategy::Pbqp).unwrap();
        let weights = Weights::random(&net, 81);
        let schedule = Schedule::compile(&net, &plan, &reg, &weights).unwrap();
        let mut bufs = BatchBuffers::new();
        let good = Tensor::random(4, 12, 12, Layout::Chw, 1);
        let bad = Tensor::random(4, 9, 9, Layout::Chw, 2);
        let mut outs = vec![Tensor::empty(); 2];
        let err = schedule
            .run_batch_fused_into(&[good.clone(), bad], &mut bufs, &mut outs, 1)
            .unwrap_err();
        assert!(matches!(err, RuntimeError::BadInput(_)), "{err}");
        let err = schedule.run_batch_fused_into(&[good], &mut bufs, &mut outs, 1).unwrap_err();
        assert!(matches!(err, RuntimeError::BadInput(_)), "{err}");
    }

    #[test]
    fn run_into_matches_run_across_repeated_recycled_calls() {
        let net = mini_inception();
        let reg = Registry::new(full_library());
        let cost = AnalyticCost::new(MachineModel::intel_haswell_like(), 1);
        let opt = Optimizer::new(&reg, &cost);
        let weights = Weights::random(&net, 51);
        let exec_strategies = [Strategy::Pbqp, Strategy::CaffeLike];
        for strategy in exec_strategies {
            let plan = opt.plan(&net, strategy).unwrap();
            let exec = Executor::new(&net, &plan, &reg, &weights);
            let mut out = Tensor::empty();
            for seed in 0..4 {
                let input = Tensor::random(4, 12, 12, Layout::Chw, 200 + seed);
                let fresh = exec.run(&input, 1).unwrap();
                exec.run_into(&input, &mut out, 1).unwrap();
                assert_eq!(out.data(), fresh.data(), "{} seed {seed}", strategy.label());
                assert_eq!(out.layout(), fresh.layout());
            }
        }
    }

    #[test]
    fn run_batch_into_recycles_outputs() {
        let net = mini_inception();
        let reg = Registry::new(full_library());
        let cost = AnalyticCost::new(MachineModel::intel_haswell_like(), 1);
        let opt = Optimizer::new(&reg, &cost);
        let plan = opt.plan(&net, Strategy::Pbqp).unwrap();
        let weights = Weights::random(&net, 61);
        let exec = Executor::new(&net, &plan, &reg, &weights);
        let mut outs = Vec::new();
        for round in 0..3 {
            let inputs: Vec<Tensor> =
                (0..5).map(|i| Tensor::random(4, 12, 12, Layout::Chw, round * 10 + i)).collect();
            exec.run_batch_into(&inputs, &mut outs, Parallelism::serial()).unwrap();
            assert_eq!(outs.len(), inputs.len());
            for (input, out) in inputs.iter().zip(&outs) {
                let one = exec.run(input, 1).unwrap();
                assert_eq!(one.data(), out.data(), "round {round}");
            }
        }
    }

    #[test]
    fn mixed_precision_plan_executes_end_to_end() {
        use pbqp_dnn_primitives::registry::mixed_precision_library;
        // The big strided conv tips to int8 under the mixed-precision
        // registry while the pointwise tail stays f32.
        let net = pbqp_dnn_graph::models::micro_mixed();
        let reg = Registry::new(mixed_precision_library());
        let cost = AnalyticCost::new(MachineModel::intel_haswell_like(), 1);
        let opt = Optimizer::new(&reg, &cost);
        let plan = opt.plan(&net, pbqp_dnn_select::Strategy::Pbqp).unwrap();
        assert!(plan.is_mixed_precision(), "expected a mixed plan:\n{plan}");
        assert!(plan.quant_edge_count() >= 2, "expected quant/dequant edges:\n{plan}");

        let weights = Weights::random(&net, 81);
        let input = Tensor::random(16, 20, 20, Layout::Chw, 82);
        let oracle = reference_forward(&net, &weights, &input);
        let exec = Executor::new(&net, &plan, &reg, &weights);
        let out = exec.run(&input, 1).unwrap();
        // Int8 error budget: per-tap half-steps across the 16·5·5 = 400
        // taps of the quantized layer, diluted through the f32 tail.
        let maxabs = oracle.data().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let diff = out.max_abs_diff(&oracle).unwrap();
        assert!(diff < 0.05 * maxabs + 0.05, "diff {diff} vs maxabs {maxabs}");

        // Recycled serving and wavefront modes are bit-identical to the
        // plain run on the same plan.
        let mut recycled = Tensor::empty();
        exec.run_into(&input, &mut recycled, 1).unwrap();
        assert_eq!(recycled.data(), out.data());
        let wave = exec.run_with(&input, Parallelism::serial().with_inter_op(4)).unwrap();
        assert_eq!(wave.data(), out.data());
        let four = exec.run(&input, 4).unwrap();
        assert_eq!(four.data(), out.data(), "int8 GEMM threading must stay bit-exact");
    }

    #[test]
    fn int8_terminal_layer_still_delivers_f32_output() {
        use pbqp_dnn_primitives::registry::mixed_precision_library;
        // A network ending in the int8-friendly conv: the executor must
        // apply the plan's output dequantization so callers always get
        // f32, exactly as before mixed precision existed.
        let mut g = DnnGraph::new();
        let data = g.add(Layer::new("data", LayerKind::Input { c: 16, h: 20, w: 20 }));
        let conv = g.add(Layer::new(
            "conv",
            LayerKind::Conv(ConvScenario::new(16, 20, 20, 2, 5, 32).with_pad(0)),
        ));
        g.connect(data, conv).unwrap();
        let reg = Registry::new(mixed_precision_library());
        let cost = AnalyticCost::new(MachineModel::intel_haswell_like(), 1);
        let plan = Optimizer::new(&reg, &cost).plan(&g, pbqp_dnn_select::Strategy::Pbqp).unwrap();
        assert!(!plan.output_conversion.is_empty(), "precondition: int8 sink\n{plan}");
        let weights = Weights::random(&g, 91);
        let input = Tensor::random(16, 20, 20, Layout::Chw, 92);
        let exec = Executor::new(&g, &plan, &reg, &weights);
        let out = exec.run(&input, 1).unwrap();
        assert_eq!(out.dtype(), pbqp_dnn_tensor::DType::F32);
        let oracle = reference_forward(&g, &weights, &input);
        let maxabs = oracle.data().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let diff = out.max_abs_diff(&oracle).unwrap();
        assert!(diff < 0.05 * maxabs + 0.05, "diff {diff} vs maxabs {maxabs}");
        // Recycled serving path agrees bit-for-bit.
        let mut recycled = Tensor::empty();
        exec.run_into(&input, &mut recycled, 1).unwrap();
        assert_eq!(recycled.data(), out.data());
        // Batch path too.
        let batch = exec.run_batch(std::slice::from_ref(&input), Parallelism::serial()).unwrap();
        assert_eq!(batch[0].data(), out.data());
    }

    #[test]
    fn activation_slots_are_fewer_than_nodes() {
        // Liveness must let the linear micro-AlexNet chain reuse output
        // slots instead of holding one live buffer per node.
        let net = pbqp_dnn_graph::models::micro_alexnet();
        let reg = Registry::new(full_library());
        let cost = AnalyticCost::new(MachineModel::intel_haswell_like(), 1);
        let opt = Optimizer::new(&reg, &cost);
        let plan = opt.plan(&net, Strategy::Pbqp).unwrap();
        let weights = Weights::random(&net, 71);
        let exec = Executor::new(&net, &plan, &reg, &weights);
        let schedule = exec.schedule().unwrap();
        assert!(
            schedule.buf_elems.len() < net.len(),
            "{} slots for {} nodes",
            schedule.buf_elems.len(),
            net.len()
        );
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let net = mini_inception();
        let reg = Registry::new(full_library());
        let cost = AnalyticCost::new(MachineModel::intel_haswell_like(), 1);
        let opt = Optimizer::new(&reg, &cost);
        let plan = opt.plan(&net, Strategy::Sum2d).unwrap();
        let weights = Weights::random(&net, 1);
        let exec = Executor::new(&net, &plan, &reg, &weights);
        assert!(exec.run_batch(&[], Parallelism::available()).unwrap().is_empty());
    }

    #[test]
    fn wrong_input_layout_is_rejected() {
        let net = mini_inception();
        let reg = Registry::new(full_library());
        let cost = AnalyticCost::new(MachineModel::intel_haswell_like(), 1);
        let plan = Optimizer::new(&reg, &cost).plan(&net, Strategy::Sum2d).unwrap();
        let weights = Weights::random(&net, 1);
        let bad = Tensor::random(4, 12, 12, Layout::Hwc, 2);
        let err = Executor::new(&net, &plan, &reg, &weights).run(&bad, 1).unwrap_err();
        assert!(matches!(err, RuntimeError::BadInput(_)));
        let err = Executor::new(&net, &plan, &reg, &weights)
            .run_batch(&[bad], Parallelism::serial())
            .unwrap_err();
        assert!(matches!(err, RuntimeError::BadInput(_)));
    }

    #[test]
    fn wrong_input_shape_is_rejected() {
        let net = mini_inception();
        let reg = Registry::new(full_library());
        let cost = AnalyticCost::new(MachineModel::intel_haswell_like(), 1);
        let plan = Optimizer::new(&reg, &cost).plan(&net, Strategy::Sum2d).unwrap();
        let weights = Weights::random(&net, 1);
        let bad = Tensor::random(4, 10, 12, Layout::Chw, 2);
        let err = Executor::new(&net, &plan, &reg, &weights).run(&bad, 1).unwrap_err();
        assert!(matches!(err, RuntimeError::BadInput(_)));
    }
}
