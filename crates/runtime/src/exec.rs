use std::borrow::Cow;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::OnceLock;

use pbqp_dnn_graph::{DnnGraph, GraphError, LayerKind, NodeId};
use pbqp_dnn_primitives::registry::Registry;
use pbqp_dnn_primitives::{reference::sum2d_reference, ConvAlgorithm, PrimitiveError};
use pbqp_dnn_select::{AssignmentKind, ExecutionPlan};
use pbqp_dnn_tensor::transform::{apply_direct, DirectTransform};
use pbqp_dnn_tensor::{KernelTensor, Layout, Tensor, TensorError};

use crate::ops;
use crate::weights::Weights;
use crate::Parallelism;

/// Errors from plan execution.
#[derive(Debug)]
pub enum RuntimeError {
    /// The graph failed validation.
    Graph(GraphError),
    /// A selected primitive failed.
    Primitive(PrimitiveError),
    /// A layout transformation failed.
    Tensor(TensorError),
    /// The plan references a primitive the registry does not contain.
    UnknownPrimitive(String),
    /// A parameterized layer has no weights.
    MissingWeights(String),
    /// The supplied network input has the wrong shape or layout.
    BadInput(String),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Graph(e) => write!(f, "graph error: {e}"),
            RuntimeError::Primitive(e) => write!(f, "primitive error: {e}"),
            RuntimeError::Tensor(e) => write!(f, "tensor error: {e}"),
            RuntimeError::UnknownPrimitive(n) => write!(f, "unknown primitive `{n}`"),
            RuntimeError::MissingWeights(n) => write!(f, "missing weights for layer `{n}`"),
            RuntimeError::BadInput(d) => write!(f, "bad network input: {d}"),
        }
    }
}

impl Error for RuntimeError {}

impl From<GraphError> for RuntimeError {
    fn from(e: GraphError) -> Self {
        RuntimeError::Graph(e)
    }
}
impl From<PrimitiveError> for RuntimeError {
    fn from(e: PrimitiveError) -> Self {
        RuntimeError::Primitive(e)
    }
}
impl From<TensorError> for RuntimeError {
    fn from(e: TensorError) -> Self {
        RuntimeError::Tensor(e)
    }
}

/// What one compiled step computes.
enum StepOp<'a> {
    /// A convolution dispatched to its selected primitive.
    Conv {
        prim: &'a dyn ConvAlgorithm,
        kernel: &'a KernelTensor,
        scenario: &'a pbqp_dnn_graph::ConvScenario,
    },
    /// The network input node: shape check plus the plan's conversion
    /// chain into the node's chosen layout.
    Input { c: usize, h: usize, w: usize, layout: Layout, chain: &'a [DirectTransform] },
    /// A non-conv layer computed directly in its assigned layout.
    Dummy { kind: &'a LayerKind, layout: Layout, fc_weights: Option<&'a [f32]> },
}

/// One node of the compiled schedule: resolved operator plus the
/// legalization chains of its incoming edges.
struct Step<'a> {
    node: NodeId,
    /// `(predecessor node index, edge chain)` in predecessor order.
    preds: Vec<(usize, &'a [DirectTransform])>,
    op: StepOp<'a>,
}

/// A plan compiled against its graph, registry and weights: topological
/// step order, wavefront levels, and every per-run lookup (primitive
/// resolution, edge chains, weight references) hoisted out of the
/// execution loop. Built once per [`Executor`] run family and shared by
/// every batch item and wavefront worker.
struct Schedule<'a> {
    /// Steps in topological order. `Step::node` indexes the value slots.
    steps: Vec<Step<'a>>,
    /// Wavefront levels: indices into `steps` whose nodes have no
    /// dependencies among each other — safe to run concurrently.
    levels: Vec<Vec<usize>>,
    /// Dense value-slot count (`graph.len()`).
    slots: usize,
    /// The node whose value is the network output.
    last: NodeId,
}

impl<'a> Schedule<'a> {
    fn compile(ex: &Executor<'a>) -> Result<Schedule<'a>, RuntimeError> {
        let order = ex.graph.topo_order()?;
        let chains: HashMap<(usize, usize), &[DirectTransform]> = ex
            .plan
            .edges
            .iter()
            .map(|e| ((e.from.index(), e.to.index()), e.chain.as_slice()))
            .collect();
        let input_chains: HashMap<usize, &[DirectTransform]> =
            ex.plan.input_conversion.iter().map(|(n, c, _)| (n.index(), c.as_slice())).collect();

        let mut steps = Vec::with_capacity(order.len());
        let mut level_of = vec![0usize; ex.graph.len()];
        let mut levels: Vec<Vec<usize>> = Vec::new();
        for (step_ix, &node) in order.iter().enumerate() {
            let layer = ex.graph.layer(node);
            let preds: Vec<(usize, &[DirectTransform])> = ex
                .graph
                .predecessors(node)
                .iter()
                .map(|p| {
                    let chain = chains.get(&(p.index(), node.index())).copied().unwrap_or(&[]);
                    (p.index(), chain)
                })
                .collect();

            let op = match (&layer.kind, ex.plan.assignment(node)) {
                (LayerKind::Conv(s), AssignmentKind::Conv { primitive, .. }) => {
                    let prim = ex
                        .registry
                        .by_name(primitive)
                        .ok_or_else(|| RuntimeError::UnknownPrimitive(primitive.clone()))?;
                    let kernel = ex
                        .weights
                        .conv_kernel(node)
                        .ok_or_else(|| RuntimeError::MissingWeights(layer.name.clone()))?;
                    StepOp::Conv { prim: prim.as_ref(), kernel, scenario: s }
                }
                (LayerKind::Input { c, h, w }, AssignmentKind::Dummy { layout }) => {
                    let chain = input_chains.get(&node.index()).copied().unwrap_or(&[]);
                    StepOp::Input { c: *c, h: *h, w: *w, layout: *layout, chain }
                }
                (kind, AssignmentKind::Dummy { layout }) => {
                    let fc_weights = if let LayerKind::FullyConnected { .. } = kind {
                        Some(
                            ex.weights
                                .fc_matrix(node)
                                .ok_or_else(|| RuntimeError::MissingWeights(layer.name.clone()))?,
                        )
                    } else {
                        None
                    };
                    StepOp::Dummy { kind, layout: *layout, fc_weights }
                }
                (kind, AssignmentKind::Conv { .. }) => {
                    unreachable!("conv assignment on non-conv layer {kind}")
                }
            };

            let level = preds.iter().map(|&(p, _)| level_of[p] + 1).max().unwrap_or(0);
            level_of[node.index()] = level;
            if levels.len() <= level {
                levels.resize_with(level + 1, Vec::new);
            }
            levels[level].push(step_ix);
            steps.push(Step { node, preds, op });
        }

        let last = *order.last().expect("graph validated as non-empty");
        Ok(Schedule { steps, levels, slots: ex.graph.len(), last })
    }

    /// Evaluates one step against the already-computed `values`.
    fn eval(
        &self,
        step: &Step<'a>,
        values: &[Option<Tensor>],
        input: &Tensor,
        intra_op: usize,
    ) -> Result<Tensor, RuntimeError> {
        // Inputs, converted along each edge's legalization chain. The
        // common case — an empty chain — borrows the stored activation
        // instead of copying it; only real conversions materialize.
        let mut inputs: Vec<Cow<'_, Tensor>> = Vec::with_capacity(step.preds.len());
        for &(pred, chain) in &step.preds {
            let stored = values[pred].as_ref().expect("scheduling guarantees predecessors ran");
            match chain.split_first() {
                None => inputs.push(Cow::Borrowed(stored)),
                Some((first, rest)) => {
                    let mut t = apply_direct(stored, first.to)?;
                    for hop in rest {
                        t = apply_direct(&t, hop.to)?;
                    }
                    inputs.push(Cow::Owned(t));
                }
            }
        }

        Ok(match &step.op {
            StepOp::Conv { prim, kernel, scenario } => {
                prim.execute(&inputs[0], kernel, scenario, intra_op)?
            }
            StepOp::Input { c, h, w, layout, chain } => {
                if input.dims() != (*c, *h, *w) {
                    return Err(RuntimeError::BadInput(format!(
                        "expected {:?}, got {:?}",
                        (c, h, w),
                        input.dims()
                    )));
                }
                let mut t = input.clone();
                if chain.is_empty() {
                    if t.layout() != *layout {
                        // Defensive: plans always carry the chain, but a
                        // hand-built plan may not.
                        t = t.to_layout(*layout);
                    }
                } else {
                    for hop in *chain {
                        t = apply_direct(&t, hop.to)?;
                    }
                }
                t
            }
            StepOp::Dummy { kind, layout, fc_weights } => match kind {
                LayerKind::Relu => ops::relu(&inputs[0], *layout),
                LayerKind::Pool { kind, k, stride, pad } => {
                    ops::pool(&inputs[0], *layout, *kind, *k, *stride, *pad)
                }
                LayerKind::Lrn => ops::lrn(&inputs[0], *layout),
                LayerKind::Dropout => inputs.swap_remove(0).into_owned(),
                LayerKind::FullyConnected { out } => {
                    let w = fc_weights.expect("resolved at compile time");
                    ops::fully_connected(&inputs[0], w, *out, *layout)
                }
                LayerKind::Concat => {
                    let refs: Vec<&Tensor> = inputs.iter().map(|c| c.as_ref()).collect();
                    ops::concat(&refs, *layout)
                }
                LayerKind::Softmax => ops::softmax(&inputs[0], *layout),
                LayerKind::Input { .. } | LayerKind::Conv(_) => {
                    unreachable!("compiled as StepOp::Input / StepOp::Conv")
                }
            },
        })
    }

    /// Runs every step in topological order on the calling thread.
    fn execute_serial(&self, input: &Tensor, intra_op: usize) -> Result<Tensor, RuntimeError> {
        let mut values: Vec<Option<Tensor>> = (0..self.slots).map(|_| None).collect();
        for step in &self.steps {
            values[step.node.index()] = Some(self.eval(step, &values, input, intra_op)?);
        }
        Ok(values[self.last.index()].take().expect("last node ran"))
    }

    /// Walks the DAG level by level, running each level's independent
    /// nodes concurrently on up to `par.inter_op` scoped threads.
    fn execute_wavefront(&self, input: &Tensor, par: Parallelism) -> Result<Tensor, RuntimeError> {
        let mut values: Vec<Option<Tensor>> = (0..self.slots).map(|_| None).collect();
        for level in &self.levels {
            if level.len() <= 1 || par.inter_op <= 1 {
                for &six in level {
                    let step = &self.steps[six];
                    values[step.node.index()] =
                        Some(self.eval(step, &values, input, par.intra_op)?);
                }
                continue;
            }
            // Fan the level out; commit results only after every worker
            // joined, so `values` stays immutable while shared.
            let per = level.len().div_ceil(par.inter_op);
            let computed: Vec<Vec<(usize, Result<Tensor, RuntimeError>)>> =
                std::thread::scope(|scope| {
                    let values = &values;
                    let handles: Vec<_> = level
                        .chunks(per)
                        .map(|chunk| {
                            scope.spawn(move || {
                                chunk
                                    .iter()
                                    .map(|&six| {
                                        let step = &self.steps[six];
                                        (
                                            step.node.index(),
                                            self.eval(step, values, input, par.intra_op),
                                        )
                                    })
                                    .collect()
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("wavefront worker panicked"))
                        .collect()
                });
            for (slot, result) in computed.into_iter().flatten() {
                values[slot] = Some(result?);
            }
        }
        Ok(values[self.last.index()].take().expect("last node ran"))
    }
}

/// Executes an [`ExecutionPlan`] on real tensors — the runtime counterpart
/// of the paper's generated code (§5.2), grown into a parallel batched
/// engine (see [`Executor::run_with`] and [`Executor::run_batch`]).
pub struct Executor<'a> {
    graph: &'a DnnGraph,
    plan: &'a ExecutionPlan,
    registry: &'a Registry,
    weights: &'a Weights,
    /// Memoized compiled schedule: every execution mode shares one
    /// compilation per executor. (`Schedule` borrows only the `'a`-lived
    /// inputs above, not the executor itself.)
    schedule: OnceLock<Schedule<'a>>,
}

impl<'a> Executor<'a> {
    /// Binds a plan to its graph, registry and weights.
    pub fn new(
        graph: &'a DnnGraph,
        plan: &'a ExecutionPlan,
        registry: &'a Registry,
        weights: &'a Weights,
    ) -> Executor<'a> {
        Executor { graph, plan, registry, weights, schedule: OnceLock::new() }
    }

    /// The compiled schedule, built on first use. Compilation errors
    /// (unknown primitive, missing weights, malformed graph) are not
    /// cached — they surface on every call.
    fn schedule(&self) -> Result<&Schedule<'a>, RuntimeError> {
        if let Some(s) = self.schedule.get() {
            return Ok(s);
        }
        let compiled = Schedule::compile(self)?;
        Ok(self.schedule.get_or_init(|| compiled))
    }

    fn check_input(input: &Tensor) -> Result<(), RuntimeError> {
        if input.layout() != Layout::Chw {
            return Err(RuntimeError::BadInput(format!(
                "network inputs are canonical CHW, got {}",
                input.layout()
            )));
        }
        Ok(())
    }

    /// Runs one forward pass. `input` must be the canonical-CHW network
    /// input; the plan's input-conversion chain is applied automatically.
    /// Returns the output of the last layer in topological order.
    ///
    /// `threads` is the intra-op worker count handed to each primitive;
    /// the graph itself is walked serially. Use [`Executor::run_with`]
    /// for inter-op (wavefront) parallelism and [`Executor::run_batch`]
    /// for whole-batch amortization.
    ///
    /// # Errors
    ///
    /// Propagates graph, primitive, transformation and weight errors.
    pub fn run(&self, input: &Tensor, threads: usize) -> Result<Tensor, RuntimeError> {
        self.run_with(input, Parallelism::serial().with_intra_op(threads))
    }

    /// Runs one forward pass under an explicit [`Parallelism`] mapping.
    ///
    /// With `inter_op > 1` the executor walks the plan's DAG in wavefront
    /// levels and runs independent nodes (e.g. the branches of an
    /// inception module) concurrently on scoped threads. Outputs are
    /// bit-identical to [`Parallelism::serial`]: scheduling never changes
    /// any kernel's per-element accumulation order.
    ///
    /// # Errors
    ///
    /// Propagates graph, primitive, transformation and weight errors.
    pub fn run_with(&self, input: &Tensor, par: Parallelism) -> Result<Tensor, RuntimeError> {
        Self::check_input(input)?;
        let schedule = self.schedule()?;
        if par.inter_op > 1 {
            schedule.execute_wavefront(input, par)
        } else {
            schedule.execute_serial(input, par.intra_op)
        }
    }

    /// Runs one plan over a whole batch of inputs, amortizing schedule
    /// compilation across all of them and partitioning items over
    /// `par.inter_op` worker threads (each item itself executes with
    /// `par.intra_op` primitive threads).
    ///
    /// Outputs are returned in input order and are bit-identical to
    /// calling [`Executor::run`] per item: batch items never share
    /// accumulators, so the partitioning cannot change any result.
    ///
    /// # Errors
    ///
    /// Returns the first (in input order) item's error, if any.
    pub fn run_batch(
        &self,
        inputs: &[Tensor],
        par: Parallelism,
    ) -> Result<Vec<Tensor>, RuntimeError> {
        for input in inputs {
            Self::check_input(input)?;
        }
        if inputs.is_empty() {
            return Ok(Vec::new());
        }
        let schedule = self.schedule()?;
        let workers = par.inter_op.min(inputs.len());
        if workers <= 1 {
            return inputs
                .iter()
                .map(|input| schedule.execute_serial(input, par.intra_op))
                .collect();
        }
        let per = inputs.len().div_ceil(workers);
        let results: Vec<Vec<Result<Tensor, RuntimeError>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = inputs
                .chunks(per)
                .map(|chunk| {
                    scope.spawn(move || {
                        chunk
                            .iter()
                            .map(|input| schedule.execute_serial(input, par.intra_op))
                            .collect()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("batch worker panicked")).collect()
        });
        results.into_iter().flatten().collect()
    }
}

impl fmt::Debug for Executor<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Executor").field("nodes", &self.graph.len()).finish()
    }
}

/// Independent oracle: executes the network with the textbook reference
/// convolution and canonical CHW layout throughout. Any plan's output must
/// match this within floating-point tolerance.
pub fn reference_forward(graph: &DnnGraph, weights: &Weights, input: &Tensor) -> Tensor {
    let order = graph.topo_order().expect("valid graph");
    let mut values: Vec<Option<Tensor>> = vec![None; graph.len()];
    let mut last = None;
    for node in order {
        let inputs: Vec<Tensor> = graph
            .predecessors(node)
            .iter()
            .map(|p| values[p.index()].as_ref().expect("topo order").clone())
            .collect();
        let out = match &graph.layer(node).kind {
            LayerKind::Input { .. } => input.clone(),
            LayerKind::Conv(s) => {
                let k = weights.conv_kernel(node).expect("weights cover conv layers");
                sum2d_reference(&inputs[0], k, s)
            }
            LayerKind::Relu => ops::relu(&inputs[0], inputs[0].layout()),
            LayerKind::Pool { kind, k, stride, pad } => {
                ops::pool(&inputs[0], inputs[0].layout(), *kind, *k, *stride, *pad)
            }
            LayerKind::Lrn => ops::lrn(&inputs[0], inputs[0].layout()),
            LayerKind::Dropout => inputs[0].clone(),
            LayerKind::FullyConnected { out } => {
                let w = weights.fc_matrix(node).expect("weights cover fc layers");
                ops::fully_connected(&inputs[0], w, *out, Layout::Chw)
            }
            LayerKind::Concat => {
                let refs: Vec<&Tensor> = inputs.iter().collect();
                ops::concat(&refs, Layout::Chw)
            }
            LayerKind::Softmax => ops::softmax(&inputs[0], inputs[0].layout()),
        };
        values[node.index()] = Some(out);
        last = Some(node);
    }
    values[last.expect("non-empty").index()].take().expect("ran")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbqp_dnn_cost::{AnalyticCost, MachineModel};
    use pbqp_dnn_graph::{ConvScenario, Layer};
    use pbqp_dnn_primitives::registry::full_library;
    use pbqp_dnn_select::{Optimizer, Strategy};

    /// A miniature inception-style network exercising fan-out, concat,
    /// pooling and two conv sizes.
    fn mini_inception() -> DnnGraph {
        let mut g = DnnGraph::new();
        let data = g.add(Layer::new("data", LayerKind::Input { c: 4, h: 12, w: 12 }));
        let c1 = g.add(Layer::new(
            "b1",
            LayerKind::Conv(ConvScenario::new(4, 12, 12, 1, 1, 6).with_pad(0)),
        ));
        let c3 = g.add(Layer::new("b3", LayerKind::Conv(ConvScenario::new(4, 12, 12, 1, 3, 6))));
        let cat = g.add(Layer::new("cat", LayerKind::Concat));
        let relu = g.add(Layer::new("relu", LayerKind::Relu));
        let c_out =
            g.add(Layer::new("out", LayerKind::Conv(ConvScenario::new(12, 12, 12, 1, 3, 5))));
        g.connect(data, c1).unwrap();
        g.connect(data, c3).unwrap();
        g.connect(c1, cat).unwrap();
        g.connect(c3, cat).unwrap();
        g.connect(cat, relu).unwrap();
        g.connect(relu, c_out).unwrap();
        g
    }

    #[test]
    fn every_strategy_computes_the_same_function() {
        let net = mini_inception();
        let reg = Registry::new(full_library());
        let cost = AnalyticCost::new(MachineModel::intel_haswell_like(), 1);
        let opt = Optimizer::new(&reg, &cost);
        let weights = Weights::random(&net, 11);
        let input = Tensor::random(4, 12, 12, Layout::Chw, 12);
        let oracle = reference_forward(&net, &weights, &input);
        let mut strategies = vec![
            Strategy::Pbqp,
            Strategy::PbqpHeuristic,
            Strategy::Sum2d,
            Strategy::LocalOptimalChw,
            Strategy::CaffeLike,
            Strategy::VendorLike { vector_width: 8 },
            Strategy::VendorLike { vector_width: 4 },
        ];
        strategies.extend(Strategy::family_bars());
        for strategy in strategies {
            let plan = opt.plan(&net, strategy).unwrap();
            let out = Executor::new(&net, &plan, &reg, &weights).run(&input, 1).unwrap();
            let diff = out.max_abs_diff(&oracle).unwrap();
            assert!(diff < 1e-2, "{}: diff {diff}", strategy.label());
        }
    }

    #[test]
    fn multithreaded_execution_matches_single_threaded() {
        let net = mini_inception();
        let reg = Registry::new(full_library());
        let cost = AnalyticCost::new(MachineModel::arm_a57_like(), 4);
        let opt = Optimizer::new(&reg, &cost);
        let plan = opt.plan(&net, Strategy::Pbqp).unwrap();
        let weights = Weights::random(&net, 21);
        let input = Tensor::random(4, 12, 12, Layout::Chw, 22);
        let exec = Executor::new(&net, &plan, &reg, &weights);
        let one = exec.run(&input, 1).unwrap();
        let four = exec.run(&input, 4).unwrap();
        assert!(one.allclose(&four, 1e-4).unwrap());
    }

    #[test]
    fn wavefront_execution_is_bit_identical_to_serial() {
        let net = mini_inception();
        let reg = Registry::new(full_library());
        let cost = AnalyticCost::new(MachineModel::intel_haswell_like(), 1);
        let opt = Optimizer::new(&reg, &cost);
        let weights = Weights::random(&net, 31);
        let input = Tensor::random(4, 12, 12, Layout::Chw, 32);
        for strategy in [Strategy::Pbqp, Strategy::VendorLike { vector_width: 8 }] {
            let plan = opt.plan(&net, strategy).unwrap();
            let exec = Executor::new(&net, &plan, &reg, &weights);
            let serial = exec.run_with(&input, Parallelism::serial()).unwrap();
            let wave = exec.run_with(&input, Parallelism::serial().with_inter_op(4)).unwrap();
            assert_eq!(serial.data(), wave.data(), "{}", strategy.label());
            assert_eq!(serial.layout(), wave.layout());
        }
    }

    #[test]
    fn run_batch_is_bit_identical_to_serial_runs_in_input_order() {
        let net = mini_inception();
        let reg = Registry::new(full_library());
        let cost = AnalyticCost::new(MachineModel::intel_haswell_like(), 1);
        let opt = Optimizer::new(&reg, &cost);
        let plan = opt.plan(&net, Strategy::Pbqp).unwrap();
        let weights = Weights::random(&net, 41);
        let exec = Executor::new(&net, &plan, &reg, &weights);
        let inputs: Vec<Tensor> =
            (0..9).map(|i| Tensor::random(4, 12, 12, Layout::Chw, 100 + i)).collect();
        for par in [
            Parallelism::serial(),
            Parallelism::serial().with_inter_op(3),
            Parallelism::serial().with_inter_op(16),
        ] {
            let batch = exec.run_batch(&inputs, par).unwrap();
            assert_eq!(batch.len(), inputs.len());
            for (input, out) in inputs.iter().zip(&batch) {
                let one = exec.run(input, 1).unwrap();
                assert_eq!(one.data(), out.data(), "{par}");
            }
        }
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let net = mini_inception();
        let reg = Registry::new(full_library());
        let cost = AnalyticCost::new(MachineModel::intel_haswell_like(), 1);
        let opt = Optimizer::new(&reg, &cost);
        let plan = opt.plan(&net, Strategy::Sum2d).unwrap();
        let weights = Weights::random(&net, 1);
        let exec = Executor::new(&net, &plan, &reg, &weights);
        assert!(exec.run_batch(&[], Parallelism::available()).unwrap().is_empty());
    }

    #[test]
    fn wrong_input_layout_is_rejected() {
        let net = mini_inception();
        let reg = Registry::new(full_library());
        let cost = AnalyticCost::new(MachineModel::intel_haswell_like(), 1);
        let plan = Optimizer::new(&reg, &cost).plan(&net, Strategy::Sum2d).unwrap();
        let weights = Weights::random(&net, 1);
        let bad = Tensor::random(4, 12, 12, Layout::Hwc, 2);
        let err = Executor::new(&net, &plan, &reg, &weights).run(&bad, 1).unwrap_err();
        assert!(matches!(err, RuntimeError::BadInput(_)));
        let err = Executor::new(&net, &plan, &reg, &weights)
            .run_batch(&[bad], Parallelism::serial())
            .unwrap_err();
        assert!(matches!(err, RuntimeError::BadInput(_)));
    }

    #[test]
    fn wrong_input_shape_is_rejected() {
        let net = mini_inception();
        let reg = Registry::new(full_library());
        let cost = AnalyticCost::new(MachineModel::intel_haswell_like(), 1);
        let plan = Optimizer::new(&reg, &cost).plan(&net, Strategy::Sum2d).unwrap();
        let weights = Weights::random(&net, 1);
        let bad = Tensor::random(4, 10, 12, Layout::Chw, 2);
        let err = Executor::new(&net, &plan, &reg, &weights).run(&bad, 1).unwrap_err();
        assert!(matches!(err, RuntimeError::BadInput(_)));
    }
}
