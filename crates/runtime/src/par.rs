//! Thread-mapping configuration for the execution engine.

use std::fmt;

/// How the executor maps work onto OS threads.
///
/// Two orthogonal axes, multiplied when both are set:
///
/// * **inter-op** — how many independent units run concurrently: DAG
///   nodes within one wavefront level ([`crate::Executor::run_with`]) or
///   batch items ([`crate::Executor::run_batch`]);
/// * **intra-op** — how many worker threads a single primitive may use
///   internally (GEMM row slabs, output-channel chunks, Winograd tiles).
///
/// [`Parallelism::serial`] — the default — pins both to 1 and is the
/// bit-exact reference: every parallel configuration is required (and
/// tested) to produce bit-identical outputs to it, because the engine
/// only ever partitions work between threads, never changes a kernel's
/// per-element accumulation order.
///
/// # Example
///
/// ```
/// use pbqp_dnn_runtime::Parallelism;
///
/// let par = Parallelism::serial().with_inter_op(4).with_intra_op(2);
/// assert_eq!((par.inter_op, par.intra_op), (4, 2));
/// assert_eq!(Parallelism::default(), Parallelism::serial());
/// assert!(Parallelism::available().inter_op >= 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Parallelism {
    /// Independent DAG nodes / batch items executed concurrently (≥ 1).
    pub inter_op: usize,
    /// Worker threads inside one primitive (≥ 1).
    pub intra_op: usize,
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::serial()
    }
}

impl Parallelism {
    /// Single-threaded everywhere: the bit-exact reference configuration.
    pub fn serial() -> Parallelism {
        Parallelism { inter_op: 1, intra_op: 1 }
    }

    /// Inter-op parallelism across all available cores, serial inside
    /// each primitive — the preferred configuration for branchy graphs
    /// and batched serving.
    pub fn available() -> Parallelism {
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Parallelism { inter_op: cores, intra_op: 1 }
    }

    /// Replaces the inter-op width (clamped to ≥ 1).
    pub fn with_inter_op(mut self, inter_op: usize) -> Parallelism {
        self.inter_op = inter_op.max(1);
        self
    }

    /// Replaces the intra-op width (clamped to ≥ 1).
    pub fn with_intra_op(mut self, intra_op: usize) -> Parallelism {
        self.intra_op = intra_op.max(1);
        self
    }
}

impl fmt::Display for Parallelism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "inter-op {} × intra-op {}", self.inter_op, self.intra_op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_clamp_to_one() {
        let p = Parallelism::serial().with_inter_op(0).with_intra_op(0);
        assert_eq!(p, Parallelism::serial());
        assert_eq!(p.to_string(), "inter-op 1 × intra-op 1");
    }
}
