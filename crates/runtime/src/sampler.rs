//! Live step-latency sampling for online re-optimization.
//!
//! The paper's methodology prices primitives from *measured* per-node
//! costs, but a measured-cost compile is orders of magnitude slower than
//! an artifact load — so a serving host ships an analytic (possibly
//! mis-modeled) plan and corrects it *online*: this module timestamps a
//! configurable fraction of per-step kernel dispatches into preallocated
//! per-worker reservoirs, and a background re-optimizer folds the
//! summaries into an observed-cost table (see `pbqp_dnn_autotune`).
//!
//! The discipline mirrors [`crate::faults`]:
//!
//! * **disabled** (no engine sampling anywhere in the process), the step
//!   path pays exactly **one relaxed atomic load** — [`active`];
//! * **armed**, a sampled step pays two `Instant` reads and a handful of
//!   plain arithmetic writes into reservoirs preallocated at attach
//!   time, so the zero-allocation steady state is preserved (enforced by
//!   `tests/steady_state_alloc.rs`);
//! * reservoirs are **per worker** ([`SamplerState`] lives inside a
//!   worker's `ExecBuffers`) and are merged into the shared [`Sampler`]
//!   once per run through a `try_lock` — a contended merge is deferred
//!   to the next run, never blocking the serving path.
//!
//! Sampling never changes results: the serial/wavefront/batch bit-identity
//! contracts are timing-blind, and only successful dispatches are
//! recorded.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Shared per-step ring capacity: the p50 basis keeps the most recent
/// `RING` samples per step.
const RING: usize = 64;
/// Per-worker local reservoir capacity per step between flushes. A flush
/// happens once per run and a step is sampled at most once per run, so
/// the ring only wraps when merges are repeatedly deferred; the count
/// stays honest either way.
const LOCAL: usize = 8;
/// EMA smoothing factor: the guarded mixing step that keeps the
/// profile→re-solve→swap loop a *damped* fixed-point iteration instead
/// of oscillating between plans.
const EMA_ALPHA: f64 = 0.2;

/// Number of live [`Sampler`]s in the process. The disabled fast path on
/// every step is one relaxed load of this.
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

/// Whether any engine in the process is sampling. One relaxed atomic
/// load — the entire disabled-sampler overhead on the step path.
#[inline]
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed) != 0
}

/// One step's merged latency summary — what the background re-optimizer
/// folds into the observed-cost table.
#[derive(Debug, Clone, PartialEq)]
pub struct StepSummary {
    /// Samples recorded for this step (cumulative).
    pub count: u64,
    /// Exponentially-smoothed step latency in µs.
    pub ema_us: f64,
    /// Median of the most recent samples (up to the ring capacity).
    pub p50_us: f64,
}

/// Shared per-step accumulator.
struct Slot {
    count: u64,
    ema_us: f64,
    ring: [f32; RING],
    ring_len: u16,
    ring_pos: u16,
}

impl Slot {
    fn new() -> Slot {
        Slot { count: 0, ema_us: 0.0, ring: [0.0; RING], ring_len: 0, ring_pos: 0 }
    }

    fn push(&mut self, us: f64) {
        self.ema_us =
            if self.count == 0 { us } else { EMA_ALPHA * us + (1.0 - EMA_ALPHA) * self.ema_us };
        self.count += 1;
        self.ring[self.ring_pos as usize] = us as f32;
        self.ring_pos = (self.ring_pos + 1) % RING as u16;
        self.ring_len = (self.ring_len + 1).min(RING as u16);
    }
}

/// The shared half of a live profiler: one per engine *per serving
/// generation* (a hot-swap changes which kernel each step runs, so a
/// fresh sampler keeps `(node, kernel)` attribution exact). Sessions
/// attach per-worker [`SamplerState`]s created by [`Sampler::state`];
/// the background thread reads [`Sampler::snapshot`].
pub struct Sampler {
    rate: u32,
    slots: Mutex<Vec<Slot>>,
    total: AtomicU64,
}

impl Sampler {
    /// A sampler for a schedule of `steps` steps, recording every
    /// `rate`-th step evaluation (clamped to at least 1). Registers the
    /// process-wide [`active`] gate for its lifetime.
    pub fn new(steps: usize, rate: u32) -> Arc<Sampler> {
        ACTIVE.fetch_add(1, Ordering::Relaxed);
        Arc::new(Sampler {
            rate: rate.max(1),
            slots: Mutex::new((0..steps).map(|_| Slot::new()).collect()),
            total: AtomicU64::new(0),
        })
    }

    /// A per-worker recording state with all reservoirs preallocated —
    /// attaching it to a worker's buffers adds nothing to the
    /// steady-state allocation count.
    pub fn state(self: &Arc<Sampler>) -> SamplerState {
        let steps = self.slots.lock().unwrap_or_else(|e| e.into_inner()).len();
        SamplerState {
            shared: Arc::clone(self),
            tick: 0,
            counts: vec![0; steps],
            rings: vec![0.0; steps * LOCAL],
            ring_lens: vec![0; steps],
        }
    }

    /// Merged per-step summaries, index-aligned with the schedule's
    /// steps. Allocates — background/observer use only.
    pub fn snapshot(&self) -> Vec<StepSummary> {
        let slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        slots
            .iter()
            .map(|s| {
                let mut recent: Vec<f32> = s.ring[..s.ring_len as usize].to_vec();
                recent.sort_by(f32::total_cmp);
                let p50 = if recent.is_empty() { 0.0 } else { recent[recent.len() / 2] as f64 };
                StepSummary { count: s.count, ema_us: s.ema_us, p50_us: p50 }
            })
            .collect()
    }

    /// Samples merged into the shared accumulator so far.
    pub fn total_samples(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// The configured sampling rate (every `rate`-th step evaluation).
    pub fn rate(&self) -> u32 {
        self.rate
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        ACTIVE.fetch_sub(1, Ordering::Relaxed);
    }
}

/// One worker's recording state: the rate-gate counter plus fixed-size
/// local reservoirs, preallocated by [`Sampler::state`]. Lives inside
/// the worker's `ExecBuffers`; recording and flushing never allocate.
pub struct SamplerState {
    shared: Arc<Sampler>,
    tick: u32,
    /// Per-step sample counts since the last flush.
    counts: Vec<u32>,
    /// Per-step sample values (µs), `LOCAL` slots per step, flattened.
    rings: Vec<f32>,
    /// Per-step occupancy of `rings` (wraps at `LOCAL`; `counts` stays
    /// honest when a deferred flush lets a ring wrap).
    ring_lens: Vec<u8>,
}

impl SamplerState {
    /// The rate gate: advances the tick and starts a timestamp when this
    /// evaluation is sampled.
    #[inline]
    pub(crate) fn begin(&mut self) -> Option<Instant> {
        self.tick = self.tick.wrapping_add(1);
        self.tick.is_multiple_of(self.shared.rate).then(Instant::now)
    }

    /// Records one sampled step latency into the local reservoir.
    pub(crate) fn record(&mut self, step: usize, started: Instant) {
        if step >= self.counts.len() {
            return; // stale state raced a swap; drop the sample
        }
        let us = started.elapsed().as_secs_f64() * 1e6;
        let len = self.ring_lens[step] as usize;
        self.rings[step * LOCAL + len % LOCAL] = us as f32;
        self.ring_lens[step] = (len + 1).min(LOCAL) as u8;
        self.counts[step] = self.counts[step].saturating_add(1);
    }

    /// Merges the local reservoirs into the shared accumulator. Uses
    /// `try_lock`: if the background thread (or another worker) holds the
    /// lock, the merge is deferred to the next run — the serving path
    /// never blocks on sampling.
    pub(crate) fn flush(&mut self) {
        let Ok(mut slots) = self.shared.slots.try_lock() else { return };
        let mut merged = 0u64;
        for (step, &count) in self.counts.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let slot = &mut slots[step];
            let len = self.ring_lens[step] as usize;
            for i in 0..len {
                slot.push(self.rings[step * LOCAL + i] as f64);
            }
            // Samples a wrapped ring dropped still count.
            slot.count += count as u64 - len as u64;
            merged += count as u64;
        }
        drop(slots);
        if merged > 0 {
            self.shared.total.fetch_add(merged, Ordering::Relaxed);
            self.counts.iter_mut().for_each(|c| *c = 0);
            self.ring_lens.iter_mut().for_each(|l| *l = 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn gate_tracks_live_samplers() {
        let before = active();
        let s = Sampler::new(4, 1);
        assert!(active());
        drop(s);
        // Other tests in this binary may hold samplers; only assert the
        // delta restored.
        assert_eq!(active(), before);
    }

    #[test]
    fn rate_gates_and_summaries_merge() {
        let sampler = Sampler::new(3, 2);
        let mut state = sampler.state();
        let mut recorded = 0;
        for _ in 0..10 {
            if let Some(t0) = state.begin() {
                state.record(1, t0);
                recorded += 1;
            }
        }
        assert_eq!(recorded, 5, "rate 2 samples every other tick");
        state.flush();
        assert_eq!(sampler.total_samples(), 5);
        let snap = sampler.snapshot();
        assert_eq!(snap[0].count, 0);
        assert_eq!(snap[1].count, 5);
        assert!(snap[1].ema_us >= 0.0 && snap[1].p50_us >= 0.0);
        assert_eq!(snap[2].count, 0);
    }

    #[test]
    fn deferred_flush_keeps_counts_honest() {
        let sampler = Sampler::new(1, 1);
        let mut state = sampler.state();
        // Hold the shared lock so flushes defer, and overfill the local
        // ring: the wrap drops sample *values*, never counts.
        for _ in 0..3 {
            for _ in 0..LOCAL + 4 {
                let t0 = state.begin().unwrap();
                state.record(0, t0);
            }
            let held = sampler.slots.lock().unwrap();
            state.flush(); // deferred
            drop(held);
        }
        state.flush();
        assert_eq!(sampler.total_samples(), 3 * (LOCAL as u64 + 4));
        let snap = sampler.snapshot();
        assert_eq!(snap[0].count, 3 * (LOCAL as u64 + 4));
    }

    #[test]
    fn ema_is_damped_toward_recent_samples() {
        let mut slot = Slot::new();
        for _ in 0..50 {
            slot.push(100.0);
        }
        assert!((slot.ema_us - 100.0).abs() < 1e-6);
        slot.push(200.0);
        let after = slot.ema_us;
        assert!(after > 100.0 && after < 140.0, "one outlier moves the EMA by at most α: {after}");
    }

    #[test]
    fn stale_state_from_before_a_swap_drops_out_of_range_steps() {
        let sampler = Sampler::new(2, 1);
        let mut state = sampler.state();
        let t0 = Instant::now() - Duration::from_micros(5);
        state.record(7, t0);
        state.flush();
        assert_eq!(sampler.total_samples(), 0);
    }
}
