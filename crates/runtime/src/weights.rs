use std::collections::HashMap;

use pbqp_dnn_graph::{DnnGraph, LayerKind, NodeId};
use pbqp_dnn_tensor::KernelTensor;

/// Trained parameters for a network: convolution kernels and
/// fully-connected weight matrices (bias-free, like the paper's
/// convolution-focused formulation).
///
/// Convolution kernels honour each scenario's sparsity ratio, so the §8
/// sparse primitives see genuinely sparse weights.
#[derive(Debug, Clone)]
pub struct Weights {
    conv: HashMap<usize, KernelTensor>,
    fc: HashMap<usize, Vec<f32>>,
}

impl Weights {
    /// Deterministic pseudo-random weights for every parameterized layer.
    pub fn random(graph: &DnnGraph, seed: u64) -> Weights {
        let shapes = graph.infer_shapes().expect("valid graph");
        let mut conv = HashMap::new();
        let mut fc = HashMap::new();
        for node in graph.node_ids() {
            match &graph.layer(node).kind {
                LayerKind::Conv(s) => {
                    let mut k = KernelTensor::random(
                        s.m,
                        s.c,
                        s.k,
                        s.k,
                        seed ^ (node.index() as u64).wrapping_mul(0x9e3779b97f4a7c15),
                    );
                    if s.sparsity_pm > 0 {
                        k.sparsify(s.sparsity(), seed ^ 0x5EED);
                    }
                    conv.insert(node.index(), k);
                }
                LayerKind::FullyConnected { out } => {
                    let (c, h, w) = shapes[graph.predecessors(node)[0].index()];
                    let len = out * c * h * w;
                    let mut state =
                        (seed ^ (node.index() as u64).wrapping_mul(0x2545f4914f6cdd1d)).max(1);
                    // Scale down so deep stacks of FC layers stay in range.
                    let scale = 1.0 / (c * h * w) as f32;
                    let data: Vec<f32> = (0..len)
                        .map(|_| {
                            state = state
                                .wrapping_mul(6364136223846793005)
                                .wrapping_add(1442695040888963407);
                            (((state >> 40) as f32 / (1u64 << 23) as f32) - 1.0) * scale
                        })
                        .collect();
                    fc.insert(node.index(), data);
                }
                _ => {}
            }
        }
        Weights { conv, fc }
    }

    /// Kernel of the conv layer at `node`.
    pub fn conv_kernel(&self, node: NodeId) -> Option<&KernelTensor> {
        self.conv.get(&node.index())
    }

    /// Mutable kernel access (e.g. to sparsify after construction).
    pub fn conv_kernel_mut(&mut self, node: NodeId) -> Option<&mut KernelTensor> {
        self.conv.get_mut(&node.index())
    }

    /// Row-major `out × (c·h·w)` weight matrix of the FC layer at `node`.
    pub fn fc_matrix(&self, node: NodeId) -> Option<&[f32]> {
        self.fc.get(&node.index()).map(Vec::as_slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbqp_dnn_graph::models;

    #[test]
    fn alexnet_weights_cover_all_parameterized_layers() {
        let net = models::alexnet();
        let w = Weights::random(&net, 1);
        for node in net.conv_nodes() {
            assert!(w.conv_kernel(node).is_some());
        }
        assert!(w.fc_matrix(net.find("fc6").unwrap()).is_some());
        assert!(w.fc_matrix(net.find("fc8").unwrap()).is_some());
        assert!(w.conv_kernel(net.find("relu1").unwrap()).is_none());
    }

    #[test]
    fn weights_are_deterministic_per_seed() {
        let net = models::alexnet();
        let a = Weights::random(&net, 9);
        let b = Weights::random(&net, 9);
        let c = Weights::random(&net, 10);
        let conv1 = net.find("conv1").unwrap();
        assert_eq!(a.conv_kernel(conv1), b.conv_kernel(conv1));
        assert_ne!(a.conv_kernel(conv1), c.conv_kernel(conv1));
    }
}
