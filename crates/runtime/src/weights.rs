use std::collections::HashMap;
use std::sync::Arc;

use pbqp_dnn_graph::{DnnGraph, LayerKind, NodeId};
use pbqp_dnn_tensor::wire::{self, WireError, WireReader};
use pbqp_dnn_tensor::{KernelTensor, QuantizedKernel};

/// Trained parameters for a network: convolution kernels and
/// fully-connected weight matrices (bias-free, like the paper's
/// convolution-focused formulation).
///
/// Parameters are stored behind [`Arc`]s, so cloning a `Weights` (or
/// sharing it between a compiled model and its serving engine) is a
/// handful of reference-count bumps, not a copy of the taps.
///
/// Convolution kernels honour each scenario's sparsity ratio, so the §8
/// sparse primitives see genuinely sparse weights.
#[derive(Debug, Clone, Default)]
pub struct Weights {
    conv: HashMap<usize, Arc<KernelTensor>>,
    fc: HashMap<usize, Arc<Vec<f32>>>,
}

impl Weights {
    /// Deterministic pseudo-random weights for every parameterized layer.
    pub fn random(graph: &DnnGraph, seed: u64) -> Weights {
        let shapes = graph.infer_shapes().expect("valid graph");
        let mut conv = HashMap::new();
        let mut fc = HashMap::new();
        for node in graph.node_ids() {
            match &graph.layer(node).kind {
                LayerKind::Conv(s) => {
                    let mut k = KernelTensor::random(
                        s.m,
                        s.c,
                        s.k,
                        s.k,
                        seed ^ (node.index() as u64).wrapping_mul(0x9e3779b97f4a7c15),
                    );
                    if s.sparsity_pm > 0 {
                        k.sparsify(s.sparsity(), seed ^ 0x5EED);
                    }
                    conv.insert(node.index(), Arc::new(k));
                }
                LayerKind::FullyConnected { out } => {
                    let (c, h, w) = shapes[graph.predecessors(node)[0].index()];
                    let len = out * c * h * w;
                    let mut state =
                        (seed ^ (node.index() as u64).wrapping_mul(0x2545f4914f6cdd1d)).max(1);
                    // Scale down so deep stacks of FC layers stay in range.
                    let scale = 1.0 / (c * h * w) as f32;
                    let data: Vec<f32> = (0..len)
                        .map(|_| {
                            state = state
                                .wrapping_mul(6364136223846793005)
                                .wrapping_add(1442695040888963407);
                            (((state >> 40) as f32 / (1u64 << 23) as f32) - 1.0) * scale
                        })
                        .collect();
                    fc.insert(node.index(), Arc::new(data));
                }
                _ => {}
            }
        }
        Weights { conv, fc }
    }

    /// Kernel of the conv layer at `node`.
    pub fn conv_kernel(&self, node: NodeId) -> Option<&KernelTensor> {
        self.conv.get(&node.index()).map(Arc::as_ref)
    }

    /// Shared handle to the conv kernel at `node` (the compiled schedule
    /// keeps one per conv step so it can outlive this `Weights`).
    pub fn conv_kernel_shared(&self, node: NodeId) -> Option<Arc<KernelTensor>> {
        self.conv.get(&node.index()).map(Arc::clone)
    }

    /// Mutable kernel access (e.g. to sparsify after construction).
    /// Copy-on-write: a kernel shared with a compiled schedule is cloned
    /// before mutation, so existing schedules keep their taps.
    pub fn conv_kernel_mut(&mut self, node: NodeId) -> Option<&mut KernelTensor> {
        self.conv.get_mut(&node.index()).map(Arc::make_mut)
    }

    /// Row-major `out × (c·h·w)` weight matrix of the FC layer at `node`.
    pub fn fc_matrix(&self, node: NodeId) -> Option<&[f32]> {
        self.fc.get(&node.index()).map(|m| m.as_slice())
    }

    /// Shared handle to the FC matrix at `node`.
    pub fn fc_matrix_shared(&self, node: NodeId) -> Option<Arc<Vec<f32>>> {
        self.fc.get(&node.index()).map(Arc::clone)
    }

    /// Encodes every parameter — and any cached int8 weight image — into
    /// the stable wire format (see [`pbqp_dnn_tensor::wire`]). Entries
    /// are written in ascending node order so identical weights always
    /// produce identical bytes.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let mut conv_nodes: Vec<&usize> = self.conv.keys().collect();
        conv_nodes.sort();
        wire::put_usize(out, conv_nodes.len());
        for &node in conv_nodes {
            let kernel = &self.conv[&node];
            let (m, c, kh, kw) = kernel.dims();
            wire::put_usize(out, node);
            for dim in [m, c, kh, kw] {
                wire::put_usize(out, dim);
            }
            wire::put_f32s(out, kernel.data());
            // Ship the pre-quantized image when one exists, so the
            // serving host never rescans the f32 taps for int8 layers.
            match kernel.has_quantized() {
                false => wire::put_u8(out, 0),
                true => {
                    let q = kernel.quantized();
                    wire::put_u8(out, 1);
                    wire::put_i8s(out, &q.data);
                    wire::put_f32(out, q.scale);
                    wire::put_i32s(out, &q.filter_sums);
                }
            }
        }
        let mut fc_nodes: Vec<&usize> = self.fc.keys().collect();
        fc_nodes.sort();
        wire::put_usize(out, fc_nodes.len());
        for &node in fc_nodes {
            wire::put_usize(out, node);
            wire::put_f32s(out, &self.fc[&node]);
        }
    }

    /// Decodes weights written by [`Weights::encode_into`], restoring any
    /// shipped int8 weight images into the kernels' quantization caches.
    ///
    /// # Errors
    ///
    /// [`WireError`] on truncation or images that disagree with their
    /// kernel's dimensions.
    pub fn decode_from(r: &mut WireReader<'_>) -> Result<Weights, WireError> {
        let mut conv = HashMap::new();
        let n_conv = r.len_prefix(1)?;
        for _ in 0..n_conv {
            let node = r.usize()?;
            let (m, c, kh, kw) = (r.usize()?, r.usize()?, r.usize()?, r.usize()?);
            let data = r.f32s()?;
            let kernel = KernelTensor::from_vec(m, c, kh, kw, data)
                .map_err(|e| WireError::Corrupt(e.to_string()))?;
            match r.u8()? {
                0 => {}
                1 => {
                    let image =
                        QuantizedKernel { data: r.i8s()?, scale: r.f32()?, filter_sums: r.i32s()? };
                    kernel
                        .restore_quantized(image)
                        .map_err(|e| WireError::Corrupt(e.to_string()))?;
                }
                tag => return Err(WireError::Corrupt(format!("quantized-image tag {tag}"))),
            }
            conv.insert(node, Arc::new(kernel));
        }
        let mut fc = HashMap::new();
        let n_fc = r.len_prefix(1)?;
        for _ in 0..n_fc {
            let node = r.usize()?;
            fc.insert(node, Arc::new(r.f32s()?));
        }
        Ok(Weights { conv, fc })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbqp_dnn_graph::models;

    #[test]
    fn alexnet_weights_cover_all_parameterized_layers() {
        let net = models::alexnet();
        let w = Weights::random(&net, 1);
        for node in net.conv_nodes() {
            assert!(w.conv_kernel(node).is_some());
        }
        assert!(w.fc_matrix(net.find("fc6").unwrap()).is_some());
        assert!(w.fc_matrix(net.find("fc8").unwrap()).is_some());
        assert!(w.conv_kernel(net.find("relu1").unwrap()).is_none());
    }

    #[test]
    fn weights_are_deterministic_per_seed() {
        let net = models::alexnet();
        let a = Weights::random(&net, 9);
        let b = Weights::random(&net, 9);
        let c = Weights::random(&net, 10);
        let conv1 = net.find("conv1").unwrap();
        assert_eq!(a.conv_kernel(conv1), b.conv_kernel(conv1));
        assert_ne!(a.conv_kernel(conv1), c.conv_kernel(conv1));
    }

    #[test]
    fn mutation_does_not_disturb_shared_handles() {
        let net = models::micro_alexnet();
        let mut w = Weights::random(&net, 3);
        let conv1 = net.conv_nodes()[0];
        let shared = w.conv_kernel_shared(conv1).unwrap();
        let before = shared.data().to_vec();
        w.conv_kernel_mut(conv1).unwrap().set(0, 0, 0, 0, 1234.5);
        assert_eq!(shared.data(), before.as_slice(), "COW must preserve the shared kernel");
        assert_eq!(w.conv_kernel(conv1).unwrap().at(0, 0, 0, 0), 1234.5);
    }

    #[test]
    fn wire_round_trip_preserves_taps_and_quantized_images() {
        let net = models::micro_mixed();
        let w = Weights::random(&net, 0xC0FFEE);
        let conv = net.conv_nodes()[0];
        // Materialize an int8 image on one kernel, as schedule
        // compilation does for int8-assigned layers.
        let q_before = w.conv_kernel(conv).unwrap().quantized().clone();

        let mut buf = Vec::new();
        w.encode_into(&mut buf);
        let mut r = WireReader::new(&buf);
        let back = Weights::decode_from(&mut r).unwrap();
        assert!(r.is_empty());

        for node in net.conv_nodes() {
            assert_eq!(back.conv_kernel(node), w.conv_kernel(node));
        }
        let restored = back.conv_kernel(conv).unwrap();
        assert!(restored.has_quantized(), "shipped image must be restored");
        assert_eq!(*restored.quantized(), q_before);

        // Truncations fail cleanly.
        for cut in [0, 1, buf.len() / 2, buf.len() - 1] {
            let mut r = WireReader::new(&buf[..cut]);
            assert!(Weights::decode_from(&mut r).is_err(), "prefix {cut}");
        }
    }
}
