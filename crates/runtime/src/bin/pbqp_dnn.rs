//! `pbqp-dnn` — command-line front end to the optimizer.
//!
//! ```text
//! pbqp_dnn plan     --model alexnet --machine intel --threads 4 [--strategy pbqp]
//! pbqp_dnn profile  --model vgg-e   --machine arm   [--out table.txt]
//! pbqp_dnn compare  --model googlenet --machine arm --threads 4
//! pbqp_dnn run      --model alexnet --machine intel --threads 2
//! ```
//!
//! `plan` prints the per-layer `{L_in, P, L_out}` selection; `profile`
//! emits the shippable text cost table (§4: "produce these cost tables
//! before deployment, and ship them with the trained model"); `compare`
//! evaluates every strategy; `run` executes the optimized plan on random
//! data and verifies it against the reference implementation.

use std::error::Error;
use std::process::ExitCode;

use pbqp_dnn_cost::{AnalyticCost, MachineModel};
use pbqp_dnn_graph::models::{self, VggVariant};
use pbqp_dnn_graph::DnnGraph;
use pbqp_dnn_primitives::registry::{full_library, Registry};
use pbqp_dnn_runtime::{reference_forward, Executor, Weights};
use pbqp_dnn_select::{Optimizer, Strategy};
use pbqp_dnn_tensor::{Layout, Tensor};

fn usage() -> String {
    "usage: pbqp_dnn <plan|profile|compare|run> --model <alexnet|vgg-a..vgg-e|googlenet> \
     [--machine <intel|arm>] [--threads N] [--strategy <pbqp|heuristic|sum2d|local-opt|caffe|vendor>] [--out FILE]"
        .to_owned()
}

struct Args {
    command: String,
    model: String,
    machine: String,
    threads: usize,
    strategy: String,
    out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().ok_or_else(usage)?;
    let mut args = Args {
        command,
        model: "alexnet".into(),
        machine: "intel".into(),
        threads: 1,
        strategy: "pbqp".into(),
        out: None,
    };
    while let Some(flag) = argv.next() {
        let mut value = || argv.next().ok_or_else(|| format!("missing value for {flag}"));
        match flag.as_str() {
            "--model" => args.model = value()?,
            "--machine" => args.machine = value()?,
            "--threads" => {
                args.threads = value()?.parse().map_err(|e| format!("--threads: {e}"))?
            }
            "--strategy" => args.strategy = value()?,
            "--out" => args.out = Some(value()?),
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    Ok(args)
}

fn model_by_name(name: &str) -> Result<DnnGraph, String> {
    Ok(match name.to_ascii_lowercase().as_str() {
        "alexnet" => models::alexnet(),
        "vgg-a" => models::vgg(VggVariant::A),
        "vgg-b" => models::vgg(VggVariant::B),
        "vgg-c" => models::vgg(VggVariant::C),
        "vgg-d" => models::vgg(VggVariant::D),
        "vgg-e" => models::vgg(VggVariant::E),
        "googlenet" => models::googlenet(),
        other => return Err(format!("unknown model `{other}`")),
    })
}

fn machine_by_name(name: &str) -> Result<MachineModel, String> {
    Ok(match name.to_ascii_lowercase().as_str() {
        "intel" | "haswell" | "x86" => MachineModel::intel_haswell_like(),
        "arm" | "a57" | "aarch64" => MachineModel::arm_a57_like(),
        other => return Err(format!("unknown machine `{other}`")),
    })
}

fn strategy_by_name(name: &str, machine: &MachineModel) -> Result<Strategy, String> {
    Ok(match name.to_ascii_lowercase().as_str() {
        "pbqp" => Strategy::Pbqp,
        "heuristic" => Strategy::PbqpHeuristic,
        "sum2d" => Strategy::Sum2d,
        "local-opt" | "local-optimal" => Strategy::LocalOptimalChw,
        "caffe" => Strategy::CaffeLike,
        "vendor" => Strategy::VendorLike { vector_width: machine.vector_width },
        other => return Err(format!("unknown strategy `{other}`")),
    })
}

fn run() -> Result<(), Box<dyn Error>> {
    let args = parse_args()?;
    let net = model_by_name(&args.model)?;
    let machine = machine_by_name(&args.machine)?;
    let strategy = strategy_by_name(&args.strategy, &machine)?;
    let registry = Registry::new(full_library());
    let cost = AnalyticCost::new(machine.clone(), args.threads);
    let optimizer = Optimizer::new(&registry, &cost);

    match args.command.as_str() {
        "plan" => {
            let plan = optimizer.plan(&net, strategy)?;
            print!("{plan}");
            println!(
                "optimal: {:?}; solve time: {:.2} ms; machine: {machine}",
                plan.optimal,
                plan.solve_time_us / 1000.0
            );
        }
        "profile" => {
            let table = optimizer.cost_table(&net);
            let text = table.to_text();
            match args.out {
                Some(path) => {
                    std::fs::write(&path, &text)?;
                    println!(
                        "wrote cost table for {} ({} layers, {} bytes) to {path}",
                        args.model,
                        table.layers().len(),
                        text.len()
                    );
                }
                None => print!("{text}"),
            }
        }
        "compare" => {
            let mut lineup = vec![
                Strategy::Sum2d,
                Strategy::LocalOptimalChw,
                Strategy::CaffeLike,
                Strategy::VendorLike { vector_width: machine.vector_width },
                Strategy::PbqpHeuristic,
                Strategy::Pbqp,
            ];
            lineup.splice(1..1, Strategy::family_bars());
            let baseline = optimizer.plan(&net, Strategy::Sum2d)?.predicted_us;
            println!("{:24} {:>12} {:>9}", "strategy", "predicted ms", "speedup");
            for s in lineup {
                let p = optimizer.plan(&net, s)?;
                println!(
                    "{:24} {:>12.2} {:>8.2}x",
                    s.label(),
                    p.predicted_us / 1000.0,
                    baseline / p.predicted_us
                );
            }
        }
        "run" => {
            let plan = optimizer.plan(&net, strategy)?;
            let weights = Weights::random(&net, 0x5EED);
            let (c, h, w) = net.infer_shapes()?[0];
            let input = Tensor::random(c, h, w, Layout::Chw, 0xDA7A);
            let start = std::time::Instant::now();
            let out = Executor::new(&net, &plan, &registry, &weights).run(&input, args.threads)?;
            let wall = start.elapsed().as_secs_f64() * 1000.0;
            let oracle = reference_forward(&net, &weights, &input);
            let diff = out.max_abs_diff(&oracle)?;
            println!(
                "executed {} [{}] in {wall:.1} ms on this host (predicted {:.1} ms on {}); \
                 max |Δ| vs reference = {diff:.2e}",
                args.model,
                strategy.label(),
                plan.predicted_us / 1000.0,
                machine.name
            );
            if diff > 1e-2 {
                return Err("plan output diverged from the reference".into());
            }
        }
        other => return Err(format!("unknown command `{other}`\n{}", usage()).into()),
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
