//! Pointwise (1×1) convolution specializations.
//!
//! GoogleNet and VGG-C contain many `K = 1` layers, where convolution
//! degenerates to a single matrix product between the kernel and the
//! unmodified image matrix — no Toeplitz construction, no shifting. These
//! primitives are zero-copy on both operands.

use pbqp_dnn_gemm::{Gemm, GemmKind, Trans};
use pbqp_dnn_graph::ConvScenario;
use pbqp_dnn_tensor::{KernelTensor, Layout, Tensor};

use crate::algorithm::check_args;
use crate::{ConvAlgorithm, Family, PrimitiveDescriptor, PrimitiveError, Workspace, WorkspaceReq};

/// Implementation strategy of a [`PointwiseConv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PointwiseVariant {
    /// `kernel(M×C) · image(C×HW)` on planar CHW, packed GEMM.
    GemmChw,
    /// `image(HW×C) · kernel(M×C)ᵀ` on interleaved HWC, packed GEMM.
    GemmHwc,
    /// Plain loop nest on CHW (no GEMM call overhead).
    LoopChw,
}

/// One pointwise primitive (direct family; `K = 1`, `δ = 1` only).
pub(crate) struct PointwiseConv {
    desc: PrimitiveDescriptor,
    variant: PointwiseVariant,
}

impl PointwiseConv {
    pub(crate) fn new(name: &str, variant: PointwiseVariant) -> PointwiseConv {
        let (lin, lout) = match variant {
            PointwiseVariant::GemmChw | PointwiseVariant::LoopChw => (Layout::Chw, Layout::Chw),
            PointwiseVariant::GemmHwc => (Layout::Hwc, Layout::Hwc),
        };
        let hint = match variant {
            PointwiseVariant::GemmChw | PointwiseVariant::GemmHwc => {
                crate::AlgoHint::Gemm { efficiency: 0.78, calls: 1 }
            }
            PointwiseVariant::LoopChw => crate::AlgoHint::Loops { quality: 0.35 },
        };
        PointwiseConv {
            desc: PrimitiveDescriptor::new(name, Family::Direct, lin, lout).with_hint(hint),
            variant,
        }
    }
}

impl ConvAlgorithm for PointwiseConv {
    fn descriptor(&self) -> &PrimitiveDescriptor {
        &self.desc
    }

    fn supports(&self, s: &ConvScenario) -> bool {
        s.k == 1 && s.stride == 1 && s.pad == 0
    }

    fn workspace_elems(&self, _s: &ConvScenario) -> usize {
        0
    }

    fn workspace_req(&self, s: &ConvScenario) -> WorkspaceReq {
        let hw = s.h * s.w;
        let gemm = Gemm::new(GemmKind::Packed);
        WorkspaceReq::f32s(match self.variant {
            PointwiseVariant::GemmChw => gemm.scratch_elems(Trans::N, Trans::N, s.m, hw, s.c),
            PointwiseVariant::GemmHwc => gemm.scratch_elems(Trans::N, Trans::T, hw, s.m, s.c),
            PointwiseVariant::LoopChw => 0,
        })
    }

    fn execute_into(
        &self,
        input: &Tensor,
        kernel: &KernelTensor,
        s: &ConvScenario,
        threads: usize,
        ws: &mut Workspace,
        out: &mut Tensor,
    ) -> Result<(), PrimitiveError> {
        check_args(&self.desc, self.supports(s), input, kernel, s)?;
        let hw = s.h * s.w;
        let gemm = Gemm::new(GemmKind::Packed).threads(threads);
        out.reuse_as(s.m, s.h, s.w, self.desc.output_layout);
        let mark = ws.reals.mark();
        match self.variant {
            PointwiseVariant::GemmChw => {
                let [gbuf] = ws.reals.take([gemm.scratch_elems(Trans::N, Trans::N, s.m, hw, s.c)]);
                // Kernel storage for K=1 is exactly M × C.
                gemm.run_with_scratch(
                    Trans::N,
                    Trans::N,
                    s.m,
                    hw,
                    s.c,
                    kernel.data(),
                    input.data(),
                    0.0,
                    out.data_mut(),
                    gbuf,
                );
            }
            PointwiseVariant::GemmHwc => {
                let [gbuf] = ws.reals.take([gemm.scratch_elems(Trans::N, Trans::T, hw, s.m, s.c)]);
                gemm.run_with_scratch(
                    Trans::N,
                    Trans::T,
                    hw,
                    s.m,
                    s.c,
                    input.data(),
                    kernel.data(),
                    0.0,
                    out.data_mut(),
                    gbuf,
                );
            }
            PointwiseVariant::LoopChw => {
                let src = input.data();
                let data = out.data_mut();
                for m in 0..s.m {
                    let dst = &mut data[m * hw..(m + 1) * hw];
                    dst.fill(0.0);
                    for c in 0..s.c {
                        let kv = kernel.at(m, c, 0, 0);
                        let plane = &src[c * hw..(c + 1) * hw];
                        for (d, &v) in dst.iter_mut().zip(plane) {
                            *d += kv * v;
                        }
                    }
                }
            }
        }
        ws.reals.release(mark);
        Ok(())
    }
}

/// All pointwise primitives for the registry.
pub(crate) fn all() -> Vec<Box<dyn ConvAlgorithm>> {
    vec![
        Box::new(PointwiseConv::new("pointwise_gemm_chw", PointwiseVariant::GemmChw))
            as Box<dyn ConvAlgorithm>,
        Box::new(PointwiseConv::new("pointwise_gemm_hwc", PointwiseVariant::GemmHwc)),
        Box::new(PointwiseConv::new("pointwise_loop_chw", PointwiseVariant::LoopChw)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::sum2d_reference;

    #[test]
    fn pointwise_matches_reference() {
        let s = ConvScenario::new(7, 9, 8, 1, 1, 5).with_pad(0);
        for prim in all() {
            assert!(prim.supports(&s));
            let lin = prim.descriptor().input_layout;
            let input = Tensor::random(s.c, s.h, s.w, Layout::Chw, 3).to_layout(lin);
            let kernel = KernelTensor::random(s.m, s.c, 1, 1, 4);
            let got = prim.execute(&input, &kernel, &s, 2).unwrap();
            let want = sum2d_reference(&input, &kernel, &s);
            assert!(got.allclose(&want, 1e-4).unwrap(), "{}", prim.descriptor().name);
        }
    }

    #[test]
    fn larger_kernels_are_rejected() {
        let s = ConvScenario::new(4, 8, 8, 1, 3, 4);
        for prim in all() {
            assert!(!prim.supports(&s), "{}", prim.descriptor().name);
        }
    }
}
