//! f32 implementations of the non-convolution operators, plus the
//! layout-generic [`OpKernel`] wrappers the registry exposes as candidate
//! sets.
//!
//! The computational routines operate through the tensor's logical
//! accessors, so one implementation serves every layout — the registry
//! registers one kernel per `(class, layout)` pair so each candidate is a
//! concrete `{R_in, P, R_out}` triple the optimizer can price and the
//! legalizer can connect with DT chains. Every routine has an `_into`
//! form writing into a recycled output tensor — the zero-allocation path
//! the executor's pooled buffers use; the allocating forms are thin
//! wrappers kept for the reference oracle.

use pbqp_dnn_graph::{OpClass, PoolKind};
use pbqp_dnn_tensor::{Layout, Tensor};

use crate::op::{check_op_args, OpDescriptor, OpInputs, OpKernel, OpSpec};
use crate::{PrimitiveError, Workspace};

/// Rectified linear unit.
pub fn relu(input: &Tensor, layout: Layout) -> Tensor {
    let mut out = Tensor::empty();
    relu_into(input, layout, &mut out);
    out
}

/// [`relu`] into a recycled tensor.
pub fn relu_into(input: &Tensor, layout: Layout, out: &mut Tensor) {
    debug_assert_eq!(input.layout(), layout);
    out.assign_from(input);
    for v in out.data_mut() {
        *v = v.max(0.0);
    }
}

/// Spatial max/average pooling with Caffe's ceil output convention.
pub fn pool(
    input: &Tensor,
    layout: Layout,
    kind: PoolKind,
    k: usize,
    stride: usize,
    pad: usize,
) -> Tensor {
    let mut out = Tensor::empty();
    pool_into(input, layout, kind, k, stride, pad, &mut out);
    out
}

/// [`pool`] into a recycled tensor.
#[allow(clippy::too_many_arguments)]
pub fn pool_into(
    input: &Tensor,
    layout: Layout,
    kind: PoolKind,
    k: usize,
    stride: usize,
    pad: usize,
    out: &mut Tensor,
) {
    let (c, h, w) = input.dims();
    let oh = (h + 2 * pad - k).div_ceil(stride) + 1;
    let ow = (w + 2 * pad - k).div_ceil(stride) + 1;
    out.reuse_as(c, oh, ow, layout);
    out.data_mut().fill(0.0);
    for ci in 0..c {
        for y in 0..oh {
            for x in 0..ow {
                let mut best = f32::NEG_INFINITY;
                let mut sum = 0.0f32;
                let mut count = 0usize;
                for i in 0..k {
                    for j in 0..k {
                        let iy = (y * stride + i) as isize - pad as isize;
                        let ix = (x * stride + j) as isize - pad as isize;
                        if iy < 0 || ix < 0 || iy >= h as isize || ix >= w as isize {
                            continue;
                        }
                        let v = input.at(ci, iy as usize, ix as usize);
                        best = best.max(v);
                        sum += v;
                        count += 1;
                    }
                }
                let v = match kind {
                    PoolKind::Max => {
                        if count == 0 {
                            0.0
                        } else {
                            best
                        }
                    }
                    PoolKind::Avg => {
                        if count == 0 {
                            0.0
                        } else {
                            sum / count as f32
                        }
                    }
                };
                out.set(ci, y, x, v);
            }
        }
    }
}

/// Local response normalization across channels (AlexNet/GoogleNet
/// parameters: size 5, α = 1e-4, β = 0.75, k = 1).
pub fn lrn(input: &Tensor, layout: Layout) -> Tensor {
    let mut out = Tensor::empty();
    lrn_into(input, layout, &mut out);
    out
}

/// [`lrn`] into a recycled tensor.
pub fn lrn_into(input: &Tensor, layout: Layout, out: &mut Tensor) {
    const SIZE: usize = 5;
    const ALPHA: f32 = 1e-4;
    const BETA: f32 = 0.75;
    const K: f32 = 1.0;
    let (c, h, w) = input.dims();
    out.reuse_as(c, h, w, layout);
    out.data_mut().fill(0.0);
    let half = SIZE / 2;
    for y in 0..h {
        for x in 0..w {
            for ci in 0..c {
                let lo = ci.saturating_sub(half);
                let hi = (ci + half).min(c - 1);
                let mut energy = 0.0f32;
                for cj in lo..=hi {
                    let v = input.at(cj, y, x);
                    energy += v * v;
                }
                let denom = (K + ALPHA / SIZE as f32 * energy).powf(BETA);
                out.set(ci, y, x, input.at(ci, y, x) / denom);
            }
        }
    }
}

/// Fully-connected layer: flattens logically in `(c, h, w)` order and
/// multiplies by the row-major `out × (c·h·w)` weight matrix.
pub fn fully_connected(input: &Tensor, weights: &[f32], out_n: usize, layout: Layout) -> Tensor {
    let mut out = Tensor::empty();
    fully_connected_into(input, weights, out_n, layout, &mut out);
    out
}

/// [`fully_connected`] into a recycled tensor.
pub fn fully_connected_into(
    input: &Tensor,
    weights: &[f32],
    out_n: usize,
    layout: Layout,
    out: &mut Tensor,
) {
    let (c, h, w) = input.dims();
    let in_len = c * h * w;
    debug_assert_eq!(weights.len(), out_n * in_len);
    out.reuse_as(out_n, 1, 1, layout);
    out.data_mut().fill(0.0);
    for o in 0..out_n {
        let row = &weights[o * in_len..(o + 1) * in_len];
        let mut acc = 0.0f32;
        let mut ix = 0;
        for ci in 0..c {
            for y in 0..h {
                for x in 0..w {
                    acc += input.at(ci, y, x) * row[ix];
                    ix += 1;
                }
            }
        }
        out.set(o, 0, 0, acc);
    }
}

/// Channel concatenation of several same-spatial-size tensors.
pub fn concat(inputs: &[&Tensor], layout: Layout) -> Tensor {
    let (_, h, w) = inputs[0].dims();
    let c_total: usize = inputs.iter().map(|t| t.channels()).sum();
    let mut out = Tensor::empty();
    out.reuse_as(c_total, h, w, layout);
    out.data_mut().fill(0.0);
    let mut c_base = 0;
    for t in inputs {
        concat_part_into(t, c_base, &mut out);
        c_base += t.channels();
    }
    out
}

/// Copies one concat operand into channels `[c_base, c_base + t.c)` of a
/// pre-shaped output — the kernels stream operands through this without
/// collecting a reference vector.
pub fn concat_part_into(t: &Tensor, c_base: usize, out: &mut Tensor) {
    let (c, h, w) = t.dims();
    debug_assert_eq!((out.height(), out.width()), (h, w), "concat inputs must agree spatially");
    for ci in 0..c {
        for y in 0..h {
            for x in 0..w {
                out.set(c_base + ci, y, x, t.at(ci, y, x));
            }
        }
    }
}

/// Elementwise sum of several same-shape tensors (the residual merge).
pub fn add(inputs: &[&Tensor], layout: Layout) -> Tensor {
    let mut out = Tensor::empty();
    add_into(inputs, layout, &mut out);
    out
}

/// [`add`] into a recycled tensor. All operands share one layout and
/// shape, so their storage orders agree element for element (blocked
/// padding lanes are zero on both sides), and the sum runs storage-wise.
pub fn add_into(inputs: &[&Tensor], layout: Layout, out: &mut Tensor) {
    debug_assert!(!inputs.is_empty());
    debug_assert!(inputs.iter().all(|t| t.layout() == layout && t.dims() == inputs[0].dims()));
    add_operands_into(OpInputs::Slice(inputs), out);
}

/// The shared elementwise-sum accumulation behind [`add_into`] and the
/// f32 add kernel: seed from operand 0, accumulate the rest storage-wise.
fn add_operands_into(inputs: OpInputs<'_>, out: &mut Tensor) {
    out.assign_from(inputs.at(0));
    let acc = out.data_mut();
    for i in 1..inputs.len() {
        for (a, &v) in acc.iter_mut().zip(inputs.at(i).data()) {
            *a += v;
        }
    }
}

/// Numerically-stable softmax over the flattened tensor.
pub fn softmax(input: &Tensor, layout: Layout) -> Tensor {
    let mut out = Tensor::empty();
    softmax_into(input, layout, &mut out);
    out
}

/// [`softmax`] into a recycled tensor.
pub fn softmax_into(input: &Tensor, layout: Layout, out: &mut Tensor) {
    let (c, h, w) = input.dims();
    out.reuse_as(c, h, w, layout);
    out.data_mut().fill(0.0);
    let mut max = f32::NEG_INFINITY;
    for ci in 0..c {
        for y in 0..h {
            for x in 0..w {
                max = max.max(input.at(ci, y, x));
            }
        }
    }
    let mut total = 0.0f32;
    for ci in 0..c {
        for y in 0..h {
            for x in 0..w {
                total += (input.at(ci, y, x) - max).exp();
            }
        }
    }
    for ci in 0..c {
        for y in 0..h {
            for x in 0..w {
                out.set(ci, y, x, (input.at(ci, y, x) - max).exp() / total);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Layout-generic f32 kernels.
// ---------------------------------------------------------------------

/// One f32 op kernel: a `(class, layout)` instantiation of the generic
/// logical-accessor implementations above.
pub(crate) struct GenericF32Op {
    desc: OpDescriptor,
}

impl GenericF32Op {
    pub(crate) fn new(class: OpClass, layout: Layout) -> GenericF32Op {
        let name = format!("{}_{}", class.name(), layout.name().to_ascii_lowercase());
        GenericF32Op { desc: OpDescriptor::new(name, class, layout) }
    }
}

impl OpKernel for GenericF32Op {
    fn descriptor(&self) -> &OpDescriptor {
        &self.desc
    }

    fn execute_into(
        &self,
        inputs: OpInputs<'_>,
        aux: Option<&[f32]>,
        spec: &OpSpec,
        _ws: &mut Workspace,
        out: &mut Tensor,
    ) -> Result<(), PrimitiveError> {
        check_op_args(&self.desc, self.supports(spec), &inputs, spec)?;
        let layout = self.desc.output_layout;
        match self.desc.class {
            OpClass::Relu => relu_into(inputs.at(0), layout, out),
            OpClass::MaxPool | OpClass::AvgPool => {
                let kind =
                    if self.desc.class == OpClass::MaxPool { PoolKind::Max } else { PoolKind::Avg };
                let (k, stride, pad) = spec.window;
                pool_into(inputs.at(0), layout, kind, k, stride, pad, out);
            }
            OpClass::Lrn => lrn_into(inputs.at(0), layout, out),
            OpClass::Dropout => out.assign_from(inputs.at(0)),
            OpClass::FullyConnected => {
                let weights = aux.ok_or_else(|| PrimitiveError::UnsupportedOp {
                    kernel: self.desc.name.clone(),
                    detail: "fully-connected kernel needs aux weights".into(),
                })?;
                let (out_n, _, _) = spec.out;
                fully_connected_into(inputs.at(0), weights, out_n, layout, out);
            }
            OpClass::Concat => {
                let (c, h, w) = spec.out;
                out.reuse_as(c, h, w, layout);
                out.data_mut().fill(0.0);
                let mut c_base = 0;
                for i in 0..inputs.len() {
                    let t = inputs.at(i);
                    concat_part_into(t, c_base, out);
                    c_base += t.channels();
                }
            }
            OpClass::Add => add_operands_into(inputs, out),
            OpClass::Softmax => softmax_into(inputs.at(0), layout, out),
        }
        Ok(())
    }
}

/// The full f32 op-kernel inventory: one kernel per `(class, layout)`
/// pair — the same candidate space the paper's dummy nodes offered (any
/// layout), now as concrete priced candidates.
pub(crate) fn all_f32() -> Vec<Box<dyn OpKernel>> {
    let mut out: Vec<Box<dyn OpKernel>> = Vec::new();
    for class in OpClass::ALL {
        for layout in Layout::ALL {
            out.push(Box::new(GenericF32Op::new(class, layout)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives_in_any_layout() {
        for &layout in &[Layout::Chw, Layout::Hwc, Layout::Chw4] {
            let t = Tensor::from_fn(3, 2, 2, layout, |c, h, w| (c + h + w) as f32 - 2.0);
            let r = relu(&t, layout);
            for c in 0..3 {
                for h in 0..2 {
                    for w in 0..2 {
                        assert_eq!(r.at(c, h, w), ((c + h + w) as f32 - 2.0).max(0.0));
                    }
                }
            }
        }
    }

    #[test]
    fn max_pool_matches_hand_computation() {
        // 1x4x4 ramp, 2x2/2 max pool -> corners of each quadrant.
        let t = Tensor::from_fn(1, 4, 4, Layout::Chw, |_, h, w| (h * 4 + w) as f32);
        let p = pool(&t, Layout::Chw, PoolKind::Max, 2, 2, 0);
        assert_eq!(p.dims(), (1, 2, 2));
        assert_eq!(p.at(0, 0, 0), 5.0);
        assert_eq!(p.at(0, 1, 1), 15.0);
    }

    #[test]
    fn avg_pool_divides_by_the_actual_window() {
        let t = Tensor::from_fn(1, 2, 2, Layout::Chw, |_, _, _| 4.0);
        // 3x3/1 pad 1: corner windows see 4 valid elements.
        let p = pool(&t, Layout::Chw, PoolKind::Avg, 3, 1, 1);
        assert_eq!(p.at(0, 0, 0), 4.0);
    }

    #[test]
    fn softmax_sums_to_one() {
        let t = Tensor::random(10, 1, 1, Layout::Chw, 3);
        let s = softmax(&t, Layout::Chw);
        let total: f32 = (0..10).map(|c| s.at(c, 0, 0)).sum();
        assert!((total - 1.0).abs() < 1e-5);
    }

    #[test]
    fn concat_stacks_channels() {
        let a = Tensor::from_fn(1, 2, 2, Layout::Chw, |_, _, _| 1.0);
        let b = Tensor::from_fn(2, 2, 2, Layout::Hwc, |_, _, _| 2.0);
        let cat = concat(&[&a, &b], Layout::Chw);
        assert_eq!(cat.dims(), (3, 2, 2));
        assert_eq!(cat.at(0, 0, 0), 1.0);
        assert_eq!(cat.at(2, 1, 1), 2.0);
    }

    #[test]
    fn add_sums_elementwise_in_any_layout() {
        for &layout in &[Layout::Chw, Layout::Hwc, Layout::Chw4] {
            let a = Tensor::from_fn(3, 2, 2, layout, |c, h, w| (c + h + w) as f32);
            let b = Tensor::from_fn(3, 2, 2, layout, |c, _, _| c as f32);
            let s = add(&[&a, &b], layout);
            for c in 0..3 {
                for h in 0..2 {
                    for w in 0..2 {
                        assert_eq!(s.at(c, h, w), (2 * c + h + w) as f32, "{layout}");
                    }
                }
            }
        }
    }

    #[test]
    fn fc_computes_a_dot_product() {
        let t = Tensor::from_fn(2, 1, 2, Layout::Chw, |c, _, w| (c * 2 + w) as f32);
        // weights: one output neuron, all ones -> sum of inputs = 0+1+2+3.
        let out = fully_connected(&t, &[1.0; 4], 1, Layout::Chw);
        assert_eq!(out.at(0, 0, 0), 6.0);
    }

    #[test]
    fn lrn_preserves_shape_and_shrinks_magnitudes() {
        let t = Tensor::random(8, 3, 3, Layout::Chw, 5);
        let n = lrn(&t, Layout::Chw);
        assert_eq!(n.dims(), t.dims());
        for c in 0..8 {
            assert!(n.at(c, 1, 1).abs() <= t.at(c, 1, 1).abs() + 1e-6);
        }
    }

    #[test]
    fn into_variants_overwrite_dirty_recycled_tensors() {
        let input = Tensor::random(4, 5, 5, Layout::Chw, 7);
        let mut dirty = Tensor::empty();
        dirty.reuse_as(9, 9, 9, Layout::Hwc);
        dirty.data_mut().fill(f32::NAN);
        relu_into(&input, Layout::Chw, &mut dirty);
        assert_eq!(dirty.data(), relu(&input, Layout::Chw).data());
        dirty.data_mut().fill(f32::NAN);
        // Shape mismatch on entry is fine — reuse_as re-shapes.
        pool_into(&input, Layout::Chw, PoolKind::Max, 2, 2, 0, &mut dirty);
        assert_eq!(dirty.data(), pool(&input, Layout::Chw, PoolKind::Max, 2, 2, 0).data());
        softmax_into(&input, Layout::Chw, &mut dirty);
        assert_eq!(dirty.data(), softmax(&input, Layout::Chw).data());
        lrn_into(&input, Layout::Chw, &mut dirty);
        assert_eq!(dirty.data(), lrn(&input, Layout::Chw).data());
        let other = Tensor::random(4, 5, 5, Layout::Chw, 8);
        add_into(&[&input, &other], Layout::Chw, &mut dirty);
        assert_eq!(dirty.data(), add(&[&input, &other], Layout::Chw).data());
    }

    #[test]
    fn generic_kernels_cover_every_class_and_layout() {
        use pbqp_dnn_graph::LayerKind;
        let kernels = all_f32();
        assert_eq!(kernels.len(), OpClass::ALL.len() * Layout::ALL.len());
        // A kernel executes its class: spot-check relu via the trait.
        let relu_hwc = kernels
            .iter()
            .find(|k| {
                k.descriptor().class == OpClass::Relu && k.descriptor().input_layout == Layout::Hwc
            })
            .unwrap();
        let spec = OpSpec::for_layer(&LayerKind::Relu, vec![(2, 3, 3)], (2, 3, 3)).unwrap();
        let t = Tensor::from_fn(2, 3, 3, Layout::Hwc, |c, h, w| (c + h + w) as f32 - 3.0);
        let operands = [&t];
        let got = relu_hwc.execute(OpInputs::Slice(&operands), None, &spec).unwrap();
        assert_eq!(got.data(), relu(&t, Layout::Hwc).data());
        // Wrong-layout operands are rejected, not silently misread.
        let bad = Tensor::random(2, 3, 3, Layout::Chw, 1);
        let operands = [&bad];
        let err = relu_hwc.execute(OpInputs::Slice(&operands), None, &spec).unwrap_err();
        assert!(matches!(err, PrimitiveError::WrongInputLayout { .. }));
    }
}
