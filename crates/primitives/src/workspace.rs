//! Primitive scratch workspaces — the memory half of the paper's
//! time/memory trade-off, made explicit.
//!
//! Every [`ConvAlgorithm`](crate::ConvAlgorithm) reports its scratch
//! footprint as a [`WorkspaceReq`] and executes out of a caller-owned
//! [`Workspace`]: a set of typed bump arenas ([`Arena`]) sized once —
//! at schedule-compile time, or grown during the first warmup run — so
//! the steady-state serving loop never allocates.
//!
//! # Example
//!
//! ```
//! use pbqp_dnn_graph::ConvScenario;
//! use pbqp_dnn_primitives::registry::full_library;
//! use pbqp_dnn_primitives::Workspace;
//! use pbqp_dnn_tensor::{KernelTensor, Layout, Tensor};
//!
//! let lib = full_library();
//! let prim = lib.iter().find(|p| p.descriptor().name == "im2col_packed_nn").unwrap();
//! let s = ConvScenario::new(3, 8, 8, 1, 3, 4);
//!
//! // Size the workspace once from the primitive's declared requirement…
//! let mut ws = Workspace::with_req(prim.workspace_req(&s));
//! let input = Tensor::random(3, 8, 8, Layout::Chw, 1);
//! let kernel = KernelTensor::random(4, 3, 3, 3, 2);
//! let mut out = Tensor::empty();
//!
//! // …then run as often as needed: after the first call neither the
//! // workspace nor the recycled output tensor touches the heap.
//! for _ in 0..3 {
//!     ws.reset();
//!     prim.execute_into(&input, &kernel, &s, 1, &mut ws, &mut out).unwrap();
//! }
//! assert_eq!(out.dims(), (4, 8, 8));
//! ```

use pbqp_dnn_fft::Complex;
pub use pbqp_dnn_tensor::pool::Arena;

/// Exact scratch requirement of one [`execute_into`] call at `threads
/// == 1`, in elements per arena.
///
/// Requirements compose with [`WorkspaceReq::max`] (slots reused across
/// sequential calls — how a schedule sizes one shared workspace) or
/// [`WorkspaceReq::plus`] (simultaneously live regions).
///
/// [`execute_into`]: crate::ConvAlgorithm::execute_into
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkspaceReq {
    /// `f32` elements carved from [`Workspace::reals`].
    pub f32_elems: usize,
    /// [`Complex`] elements carved from [`Workspace::complexes`].
    pub complex_elems: usize,
    /// `usize` elements carved from [`Workspace::indices`].
    pub index_elems: usize,
    /// `i8` elements carved from [`Workspace::quants`] (quantized patch
    /// matrices and repacked int8 operands).
    pub i8_elems: usize,
    /// `i32` elements carved from [`Workspace::accums`] (int8-GEMM
    /// accumulators and correction sums).
    pub i32_elems: usize,
}

impl WorkspaceReq {
    /// No scratch at all.
    pub const ZERO: WorkspaceReq =
        WorkspaceReq { f32_elems: 0, complex_elems: 0, index_elems: 0, i8_elems: 0, i32_elems: 0 };

    /// A requirement of `elems` f32 elements only.
    pub fn f32s(elems: usize) -> WorkspaceReq {
        WorkspaceReq { f32_elems: elems, ..WorkspaceReq::ZERO }
    }

    /// A requirement of `elems` complex elements only.
    pub fn complexes(elems: usize) -> WorkspaceReq {
        WorkspaceReq { complex_elems: elems, ..WorkspaceReq::ZERO }
    }

    /// A requirement of `i8s` quantized plus `i32s` accumulator elements
    /// (the int8 execution path's shape).
    pub fn quantized(i8s: usize, i32s: usize) -> WorkspaceReq {
        WorkspaceReq { i8_elems: i8s, i32_elems: i32s, ..WorkspaceReq::ZERO }
    }

    /// Element-wise maximum: a workspace satisfying the result satisfies
    /// both inputs *sequentially* (with a reset in between).
    pub fn max(self, other: WorkspaceReq) -> WorkspaceReq {
        WorkspaceReq {
            f32_elems: self.f32_elems.max(other.f32_elems),
            complex_elems: self.complex_elems.max(other.complex_elems),
            index_elems: self.index_elems.max(other.index_elems),
            i8_elems: self.i8_elems.max(other.i8_elems),
            i32_elems: self.i32_elems.max(other.i32_elems),
        }
    }

    /// Element-wise sum: both regions live at the same time.
    pub fn plus(self, other: WorkspaceReq) -> WorkspaceReq {
        WorkspaceReq {
            f32_elems: self.f32_elems + other.f32_elems,
            complex_elems: self.complex_elems + other.complex_elems,
            index_elems: self.index_elems + other.index_elems,
            i8_elems: self.i8_elems + other.i8_elems,
            i32_elems: self.i32_elems + other.i32_elems,
        }
    }
}

/// Caller-owned scratch for primitive execution: one bump arena per
/// element type a primitive may need. Fields are public so a kernel can
/// carve from several arenas while earlier carves are still borrowed
/// (each arena borrows independently).
///
/// The executor resets the workspace between schedule steps; capacity is
/// retained, so one workspace sized to the peak step serves the whole
/// network.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Scratch for patch matrices, transformed kernels, GEMM panels, …
    pub reals: Arena<f32>,
    /// Scratch for FFT frequency-domain buffers.
    pub complexes: Arena<Complex>,
    /// Scratch for CSR index structures (sparse primitives).
    pub indices: Arena<usize>,
    /// Scratch for quantized (`i8`) patch matrices and operands.
    pub quants: Arena<i8>,
    /// Scratch for int8-GEMM `i32` accumulators.
    pub accums: Arena<i32>,
}

impl Workspace {
    /// An empty workspace; arenas grow on first use.
    pub fn new() -> Workspace {
        Workspace::default()
    }

    /// A workspace pre-sized to `req`.
    pub fn with_req(req: WorkspaceReq) -> Workspace {
        let mut ws = Workspace::new();
        ws.reserve(req);
        ws
    }

    /// Grows every arena to satisfy `req` without further allocation.
    pub fn reserve(&mut self, req: WorkspaceReq) {
        self.reals.reserve(req.f32_elems);
        self.complexes.reserve(req.complex_elems);
        self.indices.reserve(req.index_elems);
        self.quants.reserve(req.i8_elems);
        self.accums.reserve(req.i32_elems);
    }

    /// Rewinds all arenas; capacity is retained.
    pub fn reset(&mut self) {
        self.reals.reset();
        self.complexes.reset();
        self.indices.reset();
        self.quants.reset();
        self.accums.reset();
    }

    /// Carves zero-filled `f32` slices (see [`Arena::take`]).
    pub fn take_f32<const N: usize>(&mut self, lens: [usize; N]) -> [&mut [f32]; N] {
        self.reals.take(lens)
    }

    /// Carves zero-filled [`Complex`] slices (see [`Arena::take`]).
    pub fn take_complex<const N: usize>(&mut self, lens: [usize; N]) -> [&mut [Complex]; N] {
        self.complexes.take(lens)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn req_algebra() {
        let a = WorkspaceReq::f32s(10);
        let b =
            WorkspaceReq { f32_elems: 4, complex_elems: 8, index_elems: 2, ..WorkspaceReq::ZERO };
        assert_eq!(
            a.max(b),
            WorkspaceReq { f32_elems: 10, complex_elems: 8, index_elems: 2, ..WorkspaceReq::ZERO }
        );
        assert_eq!(
            a.plus(b),
            WorkspaceReq { f32_elems: 14, complex_elems: 8, index_elems: 2, ..WorkspaceReq::ZERO }
        );
        assert_eq!(WorkspaceReq::ZERO.max(a), a);
        assert_eq!(WorkspaceReq::complexes(3).complex_elems, 3);
        let q = WorkspaceReq::quantized(6, 9);
        assert_eq!((q.i8_elems, q.i32_elems), (6, 9));
        assert_eq!(q.plus(q).i8_elems, 12);
        assert_eq!(q.max(WorkspaceReq::quantized(2, 20)).i32_elems, 20);
    }

    #[test]
    fn workspace_reserve_presizes_all_arenas() {
        let mut ws = Workspace::with_req(WorkspaceReq {
            f32_elems: 5,
            complex_elems: 6,
            index_elems: 7,
            i8_elems: 8,
            i32_elems: 9,
        });
        assert!(ws.reals.capacity() >= 5);
        assert!(ws.complexes.capacity() >= 6);
        assert!(ws.indices.capacity() >= 7);
        assert!(ws.quants.capacity() >= 8);
        assert!(ws.accums.capacity() >= 9);
        // Simultaneous carving from different arenas borrows independently.
        let [f] = ws.reals.take([5]);
        let [i] = ws.indices.take([7]);
        f[0] = 1.0;
        i[0] = 1;
        ws.reset();
        assert_eq!(ws.reals.in_use(), 0);
    }
}
