use std::fmt;

use pbqp_dnn_tensor::{DType, Layout, Repr};

/// The six primitive families of §4, plus the sparse §8 extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Family {
    /// Textbook sum-of-single-channels baseline (`SUM2D` in the paper).
    Sum2d,
    /// Direct six-deep loop nests.
    Direct,
    /// im2col / im2row Toeplitz GEMM convolution.
    Im2,
    /// Low-memory kn2row / kn2col accumulating GEMM convolution.
    Kn2,
    /// Winograd minimal-filtering convolution.
    Winograd,
    /// FFT convolution.
    Fft,
    /// Sparse-kernel GEMM convolution (§8 future-work extension).
    Sparse,
}

impl Family {
    /// All families in display order.
    pub const ALL: [Family; 7] = [
        Family::Sum2d,
        Family::Direct,
        Family::Im2,
        Family::Kn2,
        Family::Winograd,
        Family::Fft,
        Family::Sparse,
    ];

    /// Display name used in benchmark tables/figures.
    pub fn name(self) -> &'static str {
        match self {
            Family::Sum2d => "sum2d",
            Family::Direct => "direct",
            Family::Im2 => "im2",
            Family::Kn2 => "kn2",
            Family::Winograd => "winograd",
            Family::Fft => "fft",
            Family::Sparse => "sparse",
        }
    }
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Algorithmic shape of a primitive, consumed by the analytic cost model.
///
/// These are properties of the algorithm itself (multiplication-count
/// ratios, GEMM efficiency class, loop-nest locality quality), not of any
/// particular machine; the cost model combines them with a
/// machine model to estimate execution time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AlgoHint {
    /// Textbook loop nest with no particular optimization (sum2d).
    Plain,
    /// Direct loop nest; `quality` is the fraction of scalar peak the loop
    /// order/tiling typically sustains (relative locality quality).
    Loops {
        /// Fraction of scalar peak sustained (0..1).
        quality: f64,
    },
    /// GEMM-backed routine; `efficiency` is the GEMM kernel's fraction of
    /// vector peak (naive / blocked / packed), `calls` the number of GEMM
    /// invocations per layer (1 for im2, `K²` for accumulating kn2).
    Gemm {
        /// Fraction of vector peak the GEMM kernel sustains.
        efficiency: f64,
        /// GEMM calls per layer execution (call overhead matters for kn2).
        calls: usize,
    },
    /// Winograd `F(m, r)` (or its 2-D square form).
    Winograd {
        /// Outputs per tile.
        m: usize,
        /// Kernel radix.
        r: usize,
        /// Whether the full 2-D transform is used.
        two_d: bool,
    },
    /// FFT convolution.
    Fft {
        /// Whether a full 2-D transform is used.
        two_d: bool,
        /// Exact-length (Bluestein) transforms instead of padded radix-2.
        bluestein: bool,
    },
    /// Sparse CSR routine: work scales with kernel density.
    Sparse,
}

/// Static description of a primitive: the paper's `{L_in, P, L_out}` triple
/// plus family and vectorization metadata used by the cost model.
///
/// # Example
///
/// ```
/// use pbqp_dnn_primitives::{Family, PrimitiveDescriptor};
/// use pbqp_dnn_tensor::Layout;
///
/// let d = PrimitiveDescriptor::new("im2row_packed_nn", Family::Im2, Layout::Hwc, Layout::Hwc)
///     .with_vector_factor(1);
/// assert_eq!(d.family, Family::Im2);
/// assert_eq!(d.input_layout, Layout::Hwc);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PrimitiveDescriptor {
    /// Unique routine name, e.g. `"wino2d_f43_vf8"`.
    pub name: String,
    /// Algorithm family.
    pub family: Family,
    /// Layout consumed (`L_in`).
    pub input_layout: Layout,
    /// Layout produced (`L_out`).
    pub output_layout: Layout,
    /// Element type consumed (`f32` for the classic library; `i8` for the
    /// quantized primitives).
    pub input_dtype: DType,
    /// Element type produced.
    pub output_dtype: DType,
    /// SIMD-style lane count the variant is written for (1, 4 or 8).
    pub vector_factor: u8,
    /// Provenance tag: which "library" the routine belongs to (§8 envisions
    /// mixing routines from several libraries).
    pub library: &'static str,
    /// Algorithmic shape for the analytic cost model.
    pub hint: AlgoHint,
}

impl PrimitiveDescriptor {
    /// Creates a descriptor with vector factor 1 and the default library
    /// tag.
    pub fn new(
        name: impl Into<String>,
        family: Family,
        input_layout: Layout,
        output_layout: Layout,
    ) -> PrimitiveDescriptor {
        PrimitiveDescriptor {
            name: name.into(),
            family,
            input_layout,
            output_layout,
            input_dtype: DType::F32,
            output_dtype: DType::F32,
            vector_factor: 1,
            library: "pbqp-dnn",
            hint: AlgoHint::Plain,
        }
    }

    /// Sets the input and output element types (defaults are `f32`).
    pub fn with_dtypes(mut self, input: DType, output: DType) -> PrimitiveDescriptor {
        self.input_dtype = input;
        self.output_dtype = output;
        self
    }

    /// The representation consumed: `{L_in, dtype_in}`.
    pub fn input_repr(&self) -> Repr {
        Repr { layout: self.input_layout, dtype: self.input_dtype }
    }

    /// The representation produced: `{L_out, dtype_out}`.
    pub fn output_repr(&self) -> Repr {
        Repr { layout: self.output_layout, dtype: self.output_dtype }
    }

    /// Sets the vector factor.
    pub fn with_vector_factor(mut self, vf: u8) -> PrimitiveDescriptor {
        self.vector_factor = vf;
        self
    }

    /// Sets the algorithmic hint for the analytic cost model.
    pub fn with_hint(mut self, hint: AlgoHint) -> PrimitiveDescriptor {
        self.hint = hint;
        self
    }

    /// Sets the provenance library tag.
    pub fn with_library(mut self, library: &'static str) -> PrimitiveDescriptor {
        self.library = library;
        self
    }
}

impl fmt::Display for PrimitiveDescriptor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{{{}, {}, {}}} ({})",
            self.input_repr(),
            self.name,
            self.output_repr(),
            self.family
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shows_the_triple() {
        let d = PrimitiveDescriptor::new("direct_mchw", Family::Direct, Layout::Chw, Layout::Chw);
        assert_eq!(d.to_string(), "{CHW, direct_mchw, CHW} (direct)");
    }

    #[test]
    fn families_have_unique_names() {
        let mut names: Vec<_> = Family::ALL.iter().map(|f| f.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Family::ALL.len());
    }
}
