//! Sparse-kernel convolution primitives — the paper's §8 future-work
//! extension: "given some convolution routines which leverage sparsity in
//! the kernel … our approach can be used to decide whether a dense or a
//! sparse implementation will be faster for any given convolutional layer".
//!
//! Two routines are provided, mirroring the dense im2 and kn2 shapes but
//! with the kernel operand held in CSR form so zero weights cost nothing:
//! work scales with `1 − sparsity`.

use pbqp_dnn_graph::ConvScenario;
use pbqp_dnn_tensor::{KernelTensor, Layout, Tensor};

use crate::algorithm::check_args;
use crate::util::padded_at;
use crate::{ConvAlgorithm, Family, PrimitiveDescriptor, PrimitiveError, Workspace, WorkspaceReq};

/// Compressed sparse row matrix over `f32`. The execute path builds the
/// same structure into workspace-carved slices via [`fill_csr`]; this
/// owning form remains as the readable reference (and for tests).
#[cfg(test)]
#[derive(Debug, Clone, Default)]
pub(crate) struct Csr {
    rows: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f32>,
}

#[cfg(test)]
impl Csr {
    /// Builds CSR from a dense row-major `rows × cols` matrix, dropping
    /// exact zeros.
    pub(crate) fn from_dense(dense: &[f32], rows: usize, cols: usize) -> Csr {
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for r in 0..rows {
            for c in 0..cols {
                let v = dense[r * cols + c];
                if v != 0.0 {
                    col_idx.push(c);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        Csr { rows, row_ptr, col_idx, values }
    }

    /// Number of stored non-zeros.
    #[cfg(test)]
    pub(crate) fn nnz(&self) -> usize {
        self.values.len()
    }

    /// `C(rows × n) = self · B(cols × n) + C`, with `B` dense row-major.
    pub(crate) fn spmm_add(&self, b: &[f32], n: usize, c: &mut [f32]) {
        spmm_add_csr(self.rows, &self.row_ptr, &self.col_idx, &self.values, b, n, c);
    }
}

/// Builds CSR structure from a dense row-major `rows × cols` matrix into
/// caller-carved slices (`row_ptr` holds `rows + 1` entries; `col_idx` /
/// `values` hold up to `rows · cols`), dropping exact zeros. Returns the
/// non-zero count actually stored — the workspace-backed counterpart of
/// [`Csr::from_dense`].
fn fill_csr(
    dense: &[f32],
    rows: usize,
    cols: usize,
    row_ptr: &mut [usize],
    col_idx: &mut [usize],
    values: &mut [f32],
) -> usize {
    let mut nnz = 0;
    row_ptr[0] = 0;
    for r in 0..rows {
        for c in 0..cols {
            let v = dense[r * cols + c];
            if v != 0.0 {
                col_idx[nnz] = c;
                values[nnz] = v;
                nnz += 1;
            }
        }
        row_ptr[r + 1] = nnz;
    }
    nnz
}

/// Slice-based sparse × dense kernel shared by [`Csr::spmm_add`] and the
/// workspace execute path.
fn spmm_add_csr(
    rows: usize,
    row_ptr: &[usize],
    col_idx: &[usize],
    values: &[f32],
    b: &[f32],
    n: usize,
    c: &mut [f32],
) {
    for r in 0..rows {
        let lo = row_ptr[r];
        let hi = row_ptr[r + 1];
        let c_row = &mut c[r * n..(r + 1) * n];
        for e in lo..hi {
            let v = values[e];
            let b_row = &b[col_idx[e] * n..col_idx[e] * n + n];
            for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                *cv += v * bv;
            }
        }
    }
}

/// Builds the `(C·K²) × cols` im2col patch matrix of one image into a
/// (possibly wider) row-major buffer: rows have `row_stride` columns and
/// this image's block starts at `col0` — shared by the single-item
/// execute (`row_stride == cols`, `col0 == 0`) and the fused batch path,
/// which stacks several images' patch matrices side by side.
fn build_patch_cols(
    input: &Tensor,
    s: &ConvScenario,
    b: &mut [f32],
    row_stride: usize,
    col0: usize,
) {
    let (oh, ow) = (s.out_h(), s.out_w());
    for c in 0..s.c {
        for i in 0..s.k {
            for j in 0..s.k {
                let r = (c * s.k + i) * s.k + j;
                let base = r * row_stride + col0;
                for y in 0..oh {
                    let iy = (y * s.stride + i) as isize - s.pad as isize;
                    for x in 0..ow {
                        let ix = (x * s.stride + j) as isize - s.pad as isize;
                        b[base + y * ow + x] = padded_at(input, c, iy, ix);
                    }
                }
            }
        }
    }
}

/// Which dense family the sparse routine mirrors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SparseVariant {
    /// CSR kernel × im2col patch matrix.
    Im2col,
    /// kn2row shift-add with a CSR tap-plane per kernel position.
    Kn2row,
}

/// One sparse-kernel primitive.
pub(crate) struct SparseConv {
    desc: PrimitiveDescriptor,
    variant: SparseVariant,
}

impl SparseConv {
    pub(crate) fn new(name: &str, variant: SparseVariant) -> SparseConv {
        SparseConv {
            desc: PrimitiveDescriptor::new(name, Family::Sparse, Layout::Chw, Layout::Chw)
                .with_hint(crate::AlgoHint::Sparse),
            variant,
        }
    }
}

impl ConvAlgorithm for SparseConv {
    fn descriptor(&self) -> &PrimitiveDescriptor {
        &self.desc
    }

    fn supports(&self, s: &ConvScenario) -> bool {
        match self.variant {
            SparseVariant::Im2col => true,
            SparseVariant::Kn2row => s.stride == 1,
        }
    }

    fn workspace_elems(&self, s: &ConvScenario) -> usize {
        match self.variant {
            SparseVariant::Im2col => s.c * s.k * s.k * s.out_h() * s.out_w(),
            SparseVariant::Kn2row => s.m * s.h * s.w,
        }
    }

    fn workspace_req(&self, s: &ConvScenario) -> WorkspaceReq {
        match self.variant {
            SparseVariant::Im2col => {
                let ckk = s.c * s.k * s.k;
                WorkspaceReq {
                    f32_elems: ckk * s.out_h() * s.out_w() + s.m * ckk,
                    index_elems: (s.m + 1) + s.m * ckk,
                    ..WorkspaceReq::ZERO
                }
            }
            SparseVariant::Kn2row => WorkspaceReq {
                f32_elems: s.m * s.h * s.w + 2 * s.m * s.c,
                index_elems: (s.m + 1) + s.m * s.c,
                ..WorkspaceReq::ZERO
            },
        }
    }

    fn execute_into(
        &self,
        input: &Tensor,
        kernel: &KernelTensor,
        s: &ConvScenario,
        _threads: usize,
        ws: &mut Workspace,
        out: &mut Tensor,
    ) -> Result<(), PrimitiveError> {
        check_args(&self.desc, self.supports(s), input, kernel, s)?;
        let (oh, ow) = (s.out_h(), s.out_w());
        out.reuse_as(s.m, oh, ow, Layout::Chw);
        // Both variants accumulate into the output.
        out.data_mut().fill(0.0);
        let fmark = ws.reals.mark();
        let imark = ws.indices.mark();
        match self.variant {
            SparseVariant::Im2col => {
                let ckk = s.c * s.k * s.k;
                let [b, values] = ws.reals.take([ckk * oh * ow, s.m * ckk]);
                let [row_ptr, col_idx] = ws.indices.take([s.m + 1, s.m * ckk]);
                // Kernel storage order is exactly M × (C·K²).
                fill_csr(kernel.data(), s.m, ckk, row_ptr, col_idx, values);
                let cols = oh * ow;
                build_patch_cols(input, s, b, cols, 0);
                spmm_add_csr(s.m, row_ptr, col_idx, values, b, cols, out.data_mut());
            }
            SparseVariant::Kn2row => {
                let [product, plane, values] =
                    ws.reals.take([s.m * s.h * s.w, s.m * s.c, s.m * s.c]);
                let [row_ptr, col_idx] = ws.indices.take([s.m + 1, s.m * s.c]);
                for i in 0..s.k {
                    for j in 0..s.k {
                        for m in 0..s.m {
                            for c in 0..s.c {
                                plane[m * s.c + c] = kernel.at(m, c, i, j);
                            }
                        }
                        fill_csr(plane, s.m, s.c, row_ptr, col_idx, values);
                        product.fill(0.0);
                        spmm_add_csr(
                            s.m,
                            row_ptr,
                            col_idx,
                            values,
                            input.data(),
                            s.h * s.w,
                            product,
                        );
                        // Shift-add into the output (same scheme as kn2row).
                        let data = out.data_mut();
                        for m in 0..s.m {
                            for y in 0..oh {
                                let ys = y as isize + i as isize - s.pad as isize;
                                if ys < 0 || ys >= s.h as isize {
                                    continue;
                                }
                                for x in 0..ow {
                                    let xs = x as isize + j as isize - s.pad as isize;
                                    if xs >= 0 && xs < s.w as isize {
                                        data[m * oh * ow + y * ow + x] += product
                                            [m * s.h * s.w + ys as usize * s.w + xs as usize];
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        ws.reals.release(fmark);
        ws.indices.release(imark);
        Ok(())
    }

    fn fuses_batch(&self) -> bool {
        self.variant == SparseVariant::Im2col
    }

    fn batch_workspace_req(&self, s: &ConvScenario, batch: usize) -> WorkspaceReq {
        if !self.fuses_batch() || batch <= 1 {
            return self.workspace_req(s);
        }
        let ckk = s.c * s.k * s.k;
        let p = s.out_h() * s.out_w();
        WorkspaceReq {
            f32_elems: ckk * p * batch + s.m * ckk + s.m * p * batch,
            index_elems: (s.m + 1) + s.m * ckk,
            ..WorkspaceReq::ZERO
        }
    }

    /// Fused batch path for the im2col variant: the CSR structure is
    /// built **once per batch** instead of once per item (the dense
    /// kernel scan is pure per-call overhead), and all items' patch
    /// matrices stack into one wide sparse × dense multiply. Per-item
    /// results are bit-identical to [`SparseConv::execute_into`]: the
    /// per-element accumulation order over stored non-zeros does not
    /// depend on which columns sit beside an item's block.
    fn execute_batch_into<'a>(
        &self,
        batch: usize,
        input_of: &dyn Fn(usize) -> &'a Tensor,
        kernel: &KernelTensor,
        s: &ConvScenario,
        threads: usize,
        ws: &mut Workspace,
        outs: &mut [Tensor],
    ) -> Result<(), PrimitiveError> {
        crate::algorithm::check_batch_outs(&self.desc, batch, outs)?;
        if !self.fuses_batch() || batch <= 1 {
            for (i, out) in outs.iter_mut().enumerate() {
                ws.reset();
                self.execute_into(input_of(i), kernel, s, threads, ws, out)?;
            }
            return Ok(());
        }
        for i in 0..batch {
            check_args(&self.desc, self.supports(s), input_of(i), kernel, s)?;
        }
        let (oh, ow) = (s.out_h(), s.out_w());
        let p = oh * ow;
        let ckk = s.c * s.k * s.k;
        for out in outs.iter_mut() {
            out.reuse_as(s.m, oh, ow, Layout::Chw);
        }
        let fmark = ws.reals.mark();
        let imark = ws.indices.mark();
        let [b, values, c] = ws.reals.take([ckk * p * batch, s.m * ckk, s.m * p * batch]);
        let [row_ptr, col_idx] = ws.indices.take([s.m + 1, s.m * ckk]);
        fill_csr(kernel.data(), s.m, ckk, row_ptr, col_idx, values);
        let cols = p * batch;
        for i in 0..batch {
            build_patch_cols(input_of(i), s, b, cols, i * p);
        }
        // Arena carves are zero-filled, so the accumulate-into contract
        // holds for the staging output exactly as for a fresh tensor.
        spmm_add_csr(s.m, row_ptr, col_idx, values, b, cols, c);
        for (i, out) in outs.iter_mut().enumerate() {
            let data = out.data_mut();
            for m in 0..s.m {
                data[m * p..(m + 1) * p]
                    .copy_from_slice(&c[m * cols + i * p..m * cols + (i + 1) * p]);
            }
        }
        ws.reals.release(fmark);
        ws.indices.release(imark);
        Ok(())
    }
}

/// All sparse-family primitives for the registry.
pub(crate) fn all() -> Vec<Box<dyn ConvAlgorithm>> {
    vec![
        Box::new(SparseConv::new("sparse_im2col_csr", SparseVariant::Im2col))
            as Box<dyn ConvAlgorithm>,
        Box::new(SparseConv::new("sparse_kn2row_csr", SparseVariant::Kn2row)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::sum2d_reference;

    #[test]
    fn sparse_primitives_match_reference_on_sparse_kernels() {
        for prim in all() {
            for pm in [0u16, 500, 900] {
                let s = ConvScenario::new(4, 9, 9, 1, 3, 5).with_sparsity_pm(pm);
                let input = Tensor::random(s.c, s.h, s.w, Layout::Chw, 7);
                let mut kernel = KernelTensor::random(s.m, s.c, s.k, s.k, 8);
                kernel.sparsify(s.sparsity(), 9);
                let got = prim.execute(&input, &kernel, &s, 1).unwrap();
                let want = sum2d_reference(&input, &kernel, &s);
                let diff = got.max_abs_diff(&want).unwrap();
                assert!(diff < 1e-3, "{} pm={pm}: diff {diff}", prim.descriptor().name);
            }
        }
    }

    #[test]
    fn csr_drops_zeros() {
        let dense = [1.0f32, 0.0, 0.0, 2.0, 0.0, 0.0];
        let csr = Csr::from_dense(&dense, 2, 3);
        assert_eq!(csr.nnz(), 2);
        let b = [1.0f32, 1.0, 1.0, 1.0, 1.0, 1.0]; // 3 x 2
        let mut c = [0.0f32; 4];
        csr.spmm_add(&b, 2, &mut c);
        assert_eq!(c, [1.0, 1.0, 2.0, 2.0]);
    }

    #[test]
    fn fused_batch_is_bit_identical_to_per_item_execution() {
        let batch = 5usize;
        let scenarios = [
            ConvScenario::new(4, 9, 9, 1, 3, 5).with_sparsity_pm(700),
            ConvScenario::new(2, 11, 11, 2, 3, 3).with_pad(0).with_sparsity_pm(500),
            ConvScenario::new(3, 8, 8, 1, 1, 6).with_sparsity_pm(900),
        ];
        for prim in all() {
            for (si, s) in scenarios.iter().enumerate() {
                if !prim.supports(s) {
                    continue;
                }
                let mut kernel = KernelTensor::random(s.m, s.c, s.k, s.k, 40 + si as u64);
                kernel.sparsify(s.sparsity(), 41 + si as u64);
                let inputs: Vec<Tensor> = (0..batch)
                    .map(|i| Tensor::random(s.c, s.h, s.w, Layout::Chw, 100 + (si * 10 + i) as u64))
                    .collect();
                let mut ws = Workspace::new();
                let mut outs: Vec<Tensor> = (0..batch).map(|_| Tensor::empty()).collect();
                prim.execute_batch_into(batch, &|i| &inputs[i], &kernel, s, 1, &mut ws, &mut outs)
                    .unwrap();
                for (i, out) in outs.iter().enumerate() {
                    let solo = prim.execute(&inputs[i], &kernel, s, 1).unwrap();
                    assert_eq!(
                        solo.data(),
                        out.data(),
                        "{} scenario #{si} item {i}: fused batch diverged from solo run",
                        prim.descriptor().name
                    );
                }
            }
        }
    }

    #[test]
    fn strided_im2col_still_works() {
        let s = ConvScenario::new(2, 11, 11, 2, 3, 3).with_pad(0);
        let prim = SparseConv::new("x", SparseVariant::Im2col);
        let input = Tensor::random(s.c, s.h, s.w, Layout::Chw, 17);
        let kernel = KernelTensor::random(s.m, s.c, s.k, s.k, 18);
        let got = prim.execute(&input, &kernel, &s, 1).unwrap();
        let want = sum2d_reference(&input, &kernel, &s);
        assert!(got.allclose(&want, 1e-3).unwrap());
    }
}
