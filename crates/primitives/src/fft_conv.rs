//! The FFT convolution family (§4): convolution via the convolution
//! theorem. The paper's variants compute 2-D convolution as a **sum of 1-D
//! FFT row convolutions**, which needs far less space than a full 2-D FFT;
//! a 2-D variant is included to expose that trade-off to the optimizer.
//!
//! Row variants batch all pointwise products for one input channel in the
//! frequency domain and run a single inverse transform per `(m, row)`.
//! All variants require unit stride.

use std::sync::{Arc, Mutex};

use pbqp_dnn_fft::{Bluestein, Complex, Fft};
use pbqp_dnn_graph::ConvScenario;
use pbqp_dnn_tensor::{KernelTensor, Layout, Tensor};

use crate::algorithm::check_args;
use crate::util::par_chunks_mut;
use crate::{ConvAlgorithm, Family, PrimitiveDescriptor, PrimitiveError, Workspace, WorkspaceReq};

/// Transform backend / decomposition of an [`FftConv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FftVariant {
    /// Row decomposition, power-of-two padded radix-2 transforms.
    RowRadix2,
    /// Row decomposition, exact-length Bluestein transforms.
    RowBluestein,
    /// Full 2-D FFT convolution (high memory, fewest transforms).
    TwoD,
    /// Row decomposition over interleaved HWC tensors.
    RowRadix2Hwc,
}

/// One member of the fft family.
pub(crate) struct FftConv {
    desc: PrimitiveDescriptor,
    variant: FftVariant,
    /// Transform plans (twiddle/chirp tables) memoized by length:
    /// building them per call would be a hidden steady-state allocation.
    plans: Mutex<Vec<(usize, Arc<RowPlan>)>>,
}

impl FftConv {
    pub(crate) fn new(name: &str, variant: FftVariant) -> FftConv {
        let (lin, lout) = match variant {
            FftVariant::RowRadix2Hwc => (Layout::Hwc, Layout::Hwc),
            _ => (Layout::Chw, Layout::Chw),
        };
        let hint = crate::AlgoHint::Fft {
            two_d: variant == FftVariant::TwoD,
            bluestein: variant == FftVariant::RowBluestein,
        };
        FftConv {
            desc: PrimitiveDescriptor::new(name, Family::Fft, lin, lout).with_hint(hint),
            variant,
            plans: Mutex::new(Vec::new()),
        }
    }

    /// Transform length for this variant on scenario `s`.
    fn plan_len(&self, s: &ConvScenario) -> usize {
        match self.variant {
            FftVariant::RowBluestein => s.w + s.k - 1,
            FftVariant::TwoD => (s.h + s.k - 1).max(s.w + s.k - 1).next_power_of_two(),
            _ => (s.w + s.k - 1).next_power_of_two(),
        }
    }

    /// Chirp work-buffer length (Bluestein only; see
    /// [`Bluestein::work_len`]).
    fn work_len_for(&self, n: usize) -> usize {
        match self.variant {
            FftVariant::RowBluestein => (2 * n - 1).next_power_of_two(),
            _ => 0,
        }
    }

    /// The memoized plan of length `len` (built on first use; an `Arc`
    /// clone — no allocation — afterwards).
    fn plan_for(&self, len: usize) -> Arc<RowPlan> {
        let mut plans = self.plans.lock().expect("plan cache poisoned");
        if let Some((_, plan)) = plans.iter().find(|(l, _)| *l == len) {
            return Arc::clone(plan);
        }
        let plan = Arc::new(match self.variant {
            FftVariant::RowBluestein => RowPlan::Bluestein(Bluestein::new(len)),
            _ => RowPlan::Radix2(Fft::new(len)),
        });
        plans.push((len, Arc::clone(&plan)));
        plan
    }
}

/// Abstraction over the two 1-D transform plans.
enum RowPlan {
    Radix2(Fft),
    Bluestein(Bluestein),
}

impl RowPlan {
    fn len(&self) -> usize {
        match self {
            RowPlan::Radix2(p) => p.len(),
            RowPlan::Bluestein(p) => p.len(),
        }
    }
    /// Scratch elements the transforms need (Bluestein's chirp work
    /// buffer; the radix-2 transform is fully in-place).
    fn work_len(&self) -> usize {
        match self {
            RowPlan::Radix2(_) => 0,
            RowPlan::Bluestein(p) => p.work_len(),
        }
    }
    fn forward(&self, buf: &mut [Complex], work: &mut [Complex]) {
        match self {
            RowPlan::Radix2(p) => p.forward(buf),
            RowPlan::Bluestein(p) => p.forward_with(buf, work),
        }
    }
    fn inverse(&self, buf: &mut [Complex], work: &mut [Complex]) {
        match self {
            RowPlan::Radix2(p) => p.inverse(buf),
            RowPlan::Bluestein(p) => p.inverse_with(buf, work),
        }
    }
}

impl ConvAlgorithm for FftConv {
    fn descriptor(&self) -> &PrimitiveDescriptor {
        &self.desc
    }

    fn supports(&self, s: &ConvScenario) -> bool {
        s.stride == 1
    }

    fn workspace_elems(&self, s: &ConvScenario) -> usize {
        match self.variant {
            FftVariant::TwoD => {
                let n = (s.h + s.k - 1).max(s.w + s.k - 1).next_power_of_two();
                // Complex counts as two f32 elements.
                2 * n * n * (s.c + s.m + 1)
            }
            _ => {
                let n = match self.variant {
                    FftVariant::RowBluestein => s.w + s.k - 1,
                    _ => (s.w + s.k - 1).next_power_of_two(),
                };
                2 * n * (s.m * s.out_h() + s.h + s.m * s.k)
            }
        }
    }

    fn workspace_req(&self, s: &ConvScenario) -> WorkspaceReq {
        let n = self.plan_len(s);
        let work = self.work_len_for(n);
        match self.variant {
            FftVariant::TwoD => WorkspaceReq::complexes(s.m * n * n + 2 * n * n + n + work),
            _ => WorkspaceReq::complexes((s.m * s.out_h() + s.h + s.m * s.k + 1) * n + work),
        }
    }

    fn execute_into(
        &self,
        input: &Tensor,
        kernel: &KernelTensor,
        s: &ConvScenario,
        threads: usize,
        ws: &mut Workspace,
        out: &mut Tensor,
    ) -> Result<(), PrimitiveError> {
        check_args(&self.desc, self.supports(s), input, kernel, s)?;
        let plan = self.plan_for(self.plan_len(s));
        out.reuse_as(s.m, s.out_h(), s.out_w(), self.desc.output_layout);
        // Extraction skips positions below the pad offset; a recycled
        // buffer holds stale values there.
        out.data_mut().fill(0.0);
        match self.variant {
            FftVariant::RowRadix2 | FftVariant::RowBluestein | FftVariant::RowRadix2Hwc => {
                let hwc = self.variant == FftVariant::RowRadix2Hwc;
                row_fft_conv(input, kernel, s, &plan, hwc, threads, ws, out);
            }
            FftVariant::TwoD => fft_2d_conv(input, kernel, s, &plan, ws, out),
        }
        Ok(())
    }
}

/// Row-decomposed FFT convolution: per input channel, transform its rows
/// and the reversed kernel rows once, accumulate pointwise products into
/// per-`(m, output-row)` frequency accumulators, then inverse-transform.
#[allow(clippy::too_many_arguments)]
fn row_fft_conv(
    input: &Tensor,
    kernel: &KernelTensor,
    s: &ConvScenario,
    plan: &RowPlan,
    hwc: bool,
    threads: usize,
    ws: &mut Workspace,
    out: &mut Tensor,
) {
    let n = plan.len();
    let (oh, ow) = (s.out_h(), s.out_w());
    let mark = ws.complexes.mark();
    let [acc, row_fft, ker_fft, ibuf, work] =
        ws.complexes.take([s.m * oh * n, s.h * n, s.m * s.k * n, n, plan.work_len()]);

    for c in 0..s.c {
        // Transform this channel's image rows.
        for y in 0..s.h {
            let buf = &mut row_fft[y * n..(y + 1) * n];
            buf.fill(Complex::ZERO);
            for (x, slot) in buf.iter_mut().enumerate().take(s.w) {
                *slot = Complex::new(input.at(c, y, x), 0.0);
            }
            plan.forward(buf, work);
        }
        // Transform this channel's reversed kernel rows.
        for m in 0..s.m {
            for i in 0..s.k {
                let buf = &mut ker_fft[(m * s.k + i) * n..(m * s.k + i + 1) * n];
                buf.fill(Complex::ZERO);
                for (j, slot) in buf.iter_mut().enumerate().take(s.k) {
                    *slot = Complex::new(kernel.at(m, c, i, s.k - 1 - j), 0.0);
                }
                plan.forward(buf, work);
            }
        }
        // Frequency-domain accumulation.
        for m in 0..s.m {
            for i in 0..s.k {
                let krow = &ker_fft[(m * s.k + i) * n..(m * s.k + i + 1) * n];
                for y in 0..oh {
                    let iy = (y + i) as isize - s.pad as isize;
                    if iy < 0 || iy >= s.h as isize {
                        continue;
                    }
                    let srow = &row_fft[iy as usize * n..(iy as usize + 1) * n];
                    let arow = &mut acc[(m * oh + y) * n..(m * oh + y + 1) * n];
                    for ((a, &sv), &kv) in arow.iter_mut().zip(srow).zip(krow) {
                        *a = *a + sv * kv;
                    }
                }
            }
        }
    }

    // Inverse transforms and extraction. Linear-convolution index
    // `x + k − 1 − pad` holds the correlation output at `x` (see the fft
    // crate's `correlate_1d`).
    if hwc {
        let data = out.data_mut();
        for m in 0..s.m {
            for y in 0..oh {
                ibuf.copy_from_slice(&acc[(m * oh + y) * n..(m * oh + y + 1) * n]);
                plan.inverse(ibuf, work);
                for x in 0..ow {
                    let t = x + s.k - 1;
                    if t >= s.pad {
                        data[(y * ow + x) * s.m + m] = ibuf[t - s.pad].re;
                    }
                }
            }
        }
    } else if threads.max(1) <= 1 {
        // Steady-state path: the hoisted workspace row buffer, no spawn.
        let data = out.data_mut();
        for (m, plane) in data.chunks_mut(oh * ow).enumerate() {
            for y in 0..oh {
                ibuf.copy_from_slice(&acc[(m * oh + y) * n..(m * oh + y + 1) * n]);
                plan.inverse(ibuf, work);
                for x in 0..ow {
                    let t = x + s.k - 1;
                    if t >= s.pad {
                        plane[y * ow + x] = ibuf[t - s.pad].re;
                    }
                }
            }
        }
    } else {
        let acc = &*acc;
        par_chunks_mut(out.data_mut(), oh * ow, threads, |m, plane| {
            // Hoisted out of the per-row loop: one buffer per worker chunk.
            let mut buf = vec![Complex::ZERO; n];
            let mut wk = vec![Complex::ZERO; plan.work_len()];
            for y in 0..oh {
                buf.copy_from_slice(&acc[(m * oh + y) * n..(m * oh + y + 1) * n]);
                plan.inverse(&mut buf, &mut wk);
                for x in 0..ow {
                    let t = x + s.k - 1;
                    if t >= s.pad {
                        plane[y * ow + x] = buf[t - s.pad].re;
                    }
                }
            }
        });
    }
    ws.complexes.release(mark);
}

/// Full 2-D FFT convolution: one forward 2-D transform per input channel
/// and per kernel plane, frequency-domain accumulation, one inverse 2-D
/// transform per output channel.
fn fft_2d_conv(
    input: &Tensor,
    kernel: &KernelTensor,
    s: &ConvScenario,
    plan: &RowPlan,
    ws: &mut Workspace,
    out: &mut Tensor,
) {
    let n = plan.len();
    let (oh, ow) = (s.out_h(), s.out_w());
    let mark = ws.complexes.mark();
    let [acc, sig, ker, col, work] =
        ws.complexes.take([s.m * n * n, n * n, n * n, n, plan.work_len()]);

    for c in 0..s.c {
        // 2-D FFT of the channel image.
        sig.fill(Complex::ZERO);
        for y in 0..s.h {
            for x in 0..s.w {
                sig[y * n + x] = Complex::new(input.at(c, y, x), 0.0);
            }
        }
        fft_2d(plan, sig, col, work, n, false);
        for m in 0..s.m {
            // 2-D FFT of the (reversed) kernel plane.
            ker.fill(Complex::ZERO);
            for i in 0..s.k {
                for j in 0..s.k {
                    ker[i * n + j] = Complex::new(kernel.at(m, c, s.k - 1 - i, s.k - 1 - j), 0.0);
                }
            }
            fft_2d(plan, ker, col, work, n, false);
            let arow = &mut acc[m * n * n..(m + 1) * n * n];
            for ((a, &sv), &kv) in arow.iter_mut().zip(&*sig).zip(&*ker) {
                *a = *a + sv * kv;
            }
        }
    }

    for m in 0..s.m {
        let slab = &mut acc[m * n * n..(m + 1) * n * n];
        fft_2d(plan, slab, col, work, n, true);
        for y in 0..oh {
            let ty = y + s.k - 1;
            if ty < s.pad {
                continue;
            }
            for x in 0..ow {
                let tx = x + s.k - 1;
                if tx < s.pad {
                    continue;
                }
                out.set(m, y, x, slab[(ty - s.pad) * n + (tx - s.pad)].re);
            }
        }
    }
    ws.complexes.release(mark);
}

/// In-place 2-D transform of an `n × n` complex grid (rows then columns),
/// using a caller-provided column buffer (hoisted out of the per-grid
/// loops for the zero-allocation steady state).
fn fft_2d(
    plan: &RowPlan,
    grid: &mut [Complex],
    col: &mut [Complex],
    work: &mut [Complex],
    n: usize,
    inverse: bool,
) {
    for y in 0..n {
        let row = &mut grid[y * n..(y + 1) * n];
        if inverse {
            plan.inverse(row, work);
        } else {
            plan.forward(row, work);
        }
    }
    for x in 0..n {
        for y in 0..n {
            col[y] = grid[y * n + x];
        }
        if inverse {
            plan.inverse(col, work);
        } else {
            plan.forward(col, work);
        }
        for y in 0..n {
            grid[y * n + x] = col[y];
        }
    }
}

/// All fft-family primitives for the registry.
pub(crate) fn all() -> Vec<Box<dyn ConvAlgorithm>> {
    vec![
        Box::new(FftConv::new("fft_row_radix2", FftVariant::RowRadix2)) as Box<dyn ConvAlgorithm>,
        Box::new(FftConv::new("fft_row_bluestein", FftVariant::RowBluestein)),
        Box::new(FftConv::new("fft_2d_radix2", FftVariant::TwoD)),
        Box::new(FftConv::new("fft_row_radix2_hwc", FftVariant::RowRadix2Hwc)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::sum2d_reference;

    fn scenarios() -> Vec<ConvScenario> {
        vec![
            ConvScenario::new(3, 8, 9, 1, 3, 4),
            ConvScenario::new(2, 9, 7, 1, 5, 3),
            ConvScenario::new(4, 6, 6, 1, 1, 5).with_pad(0),
            ConvScenario::new(2, 12, 10, 1, 3, 6).with_pad(0),
        ]
    }

    #[test]
    fn every_fft_variant_matches_the_reference() {
        for prim in all() {
            for s in scenarios() {
                let lin = prim.descriptor().input_layout;
                let input = Tensor::random(s.c, s.h, s.w, Layout::Chw, 81).to_layout(lin);
                let kernel = KernelTensor::random(s.m, s.c, s.k, s.k, 82);
                let got = prim.execute(&input, &kernel, &s, 1).unwrap();
                assert_eq!(got.layout(), prim.descriptor().output_layout);
                let want = sum2d_reference(&input, &kernel, &s);
                let diff = got.max_abs_diff(&want).unwrap();
                assert!(diff < 5e-3, "{} on {s}: diff {diff}", prim.descriptor().name);
            }
        }
    }

    #[test]
    fn strided_scenarios_are_rejected() {
        let s = ConvScenario::new(3, 8, 8, 2, 3, 4);
        for prim in all() {
            assert!(!prim.supports(&s), "{}", prim.descriptor().name);
        }
    }

    #[test]
    fn two_d_variant_needs_more_workspace_than_row_variants() {
        let s = ConvScenario::new(16, 32, 32, 1, 5, 16);
        let row = FftConv::new("r", FftVariant::RowRadix2);
        let twod = FftConv::new("t", FftVariant::TwoD);
        assert!(twod.workspace_elems(&s) > row.workspace_elems(&s));
    }

    #[test]
    fn threads_do_not_change_results() {
        let s = ConvScenario::new(3, 10, 10, 1, 3, 4);
        let prim = FftConv::new("r", FftVariant::RowRadix2);
        let input = Tensor::random(s.c, s.h, s.w, Layout::Chw, 91);
        let kernel = KernelTensor::random(s.m, s.c, s.k, s.k, 92);
        let one = prim.execute(&input, &kernel, &s, 1).unwrap();
        let four = prim.execute(&input, &kernel, &s, 4).unwrap();
        assert!(one.allclose(&four, 1e-5).unwrap());
    }
}
