//! The FFT convolution family (§4): convolution via the convolution
//! theorem. The paper's variants compute 2-D convolution as a **sum of 1-D
//! FFT row convolutions**, which needs far less space than a full 2-D FFT;
//! a 2-D variant is included to expose that trade-off to the optimizer.
//!
//! Row variants batch all pointwise products for one input channel in the
//! frequency domain and run a single inverse transform per `(m, row)`.
//! All variants require unit stride.

use pbqp_dnn_fft::{Bluestein, Complex, Fft};
use pbqp_dnn_graph::ConvScenario;
use pbqp_dnn_tensor::{KernelTensor, Layout, Tensor};

use crate::algorithm::check_args;
use crate::util::par_chunks_mut;
use crate::{ConvAlgorithm, Family, PrimitiveDescriptor, PrimitiveError};

/// Transform backend / decomposition of an [`FftConv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FftVariant {
    /// Row decomposition, power-of-two padded radix-2 transforms.
    RowRadix2,
    /// Row decomposition, exact-length Bluestein transforms.
    RowBluestein,
    /// Full 2-D FFT convolution (high memory, fewest transforms).
    TwoD,
    /// Row decomposition over interleaved HWC tensors.
    RowRadix2Hwc,
}

/// One member of the fft family.
pub(crate) struct FftConv {
    desc: PrimitiveDescriptor,
    variant: FftVariant,
}

impl FftConv {
    pub(crate) fn new(name: &str, variant: FftVariant) -> FftConv {
        let (lin, lout) = match variant {
            FftVariant::RowRadix2Hwc => (Layout::Hwc, Layout::Hwc),
            _ => (Layout::Chw, Layout::Chw),
        };
        let hint = crate::AlgoHint::Fft {
            two_d: variant == FftVariant::TwoD,
            bluestein: variant == FftVariant::RowBluestein,
        };
        FftConv {
            desc: PrimitiveDescriptor::new(name, Family::Fft, lin, lout).with_hint(hint),
            variant,
        }
    }
}

/// Abstraction over the two 1-D transform plans.
enum RowPlan {
    Radix2(Fft),
    Bluestein(Bluestein),
}

impl RowPlan {
    fn len(&self) -> usize {
        match self {
            RowPlan::Radix2(p) => p.len(),
            RowPlan::Bluestein(p) => p.len(),
        }
    }
    fn forward(&self, buf: &mut [Complex]) {
        match self {
            RowPlan::Radix2(p) => p.forward(buf),
            RowPlan::Bluestein(p) => p.forward(buf),
        }
    }
    fn inverse(&self, buf: &mut [Complex]) {
        match self {
            RowPlan::Radix2(p) => p.inverse(buf),
            RowPlan::Bluestein(p) => p.inverse(buf),
        }
    }
}

impl ConvAlgorithm for FftConv {
    fn descriptor(&self) -> &PrimitiveDescriptor {
        &self.desc
    }

    fn supports(&self, s: &ConvScenario) -> bool {
        s.stride == 1
    }

    fn workspace_elems(&self, s: &ConvScenario) -> usize {
        match self.variant {
            FftVariant::TwoD => {
                let n = (s.h + s.k - 1).max(s.w + s.k - 1).next_power_of_two();
                // Complex counts as two f32 elements.
                2 * n * n * (s.c + s.m + 1)
            }
            _ => {
                let n = match self.variant {
                    FftVariant::RowBluestein => s.w + s.k - 1,
                    _ => (s.w + s.k - 1).next_power_of_two(),
                };
                2 * n * (s.m * s.out_h() + s.h + s.m * s.k)
            }
        }
    }

    fn execute(
        &self,
        input: &Tensor,
        kernel: &KernelTensor,
        s: &ConvScenario,
        threads: usize,
    ) -> Result<Tensor, PrimitiveError> {
        check_args(&self.desc, self.supports(s), input, kernel, s)?;
        let out = match self.variant {
            FftVariant::RowRadix2 | FftVariant::RowBluestein | FftVariant::RowRadix2Hwc => {
                let plan = match self.variant {
                    FftVariant::RowBluestein => RowPlan::Bluestein(Bluestein::new(s.w + s.k - 1)),
                    _ => RowPlan::Radix2(Fft::new((s.w + s.k - 1).next_power_of_two())),
                };
                let hwc = self.variant == FftVariant::RowRadix2Hwc;
                row_fft_conv(input, kernel, s, &plan, hwc, threads)
            }
            FftVariant::TwoD => fft_2d_conv(input, kernel, s),
        };
        Ok(out)
    }
}

/// Row-decomposed FFT convolution: per input channel, transform its rows
/// and the reversed kernel rows once, accumulate pointwise products into
/// per-`(m, output-row)` frequency accumulators, then inverse-transform.
fn row_fft_conv(
    input: &Tensor,
    kernel: &KernelTensor,
    s: &ConvScenario,
    plan: &RowPlan,
    hwc: bool,
    threads: usize,
) -> Tensor {
    let n = plan.len();
    let (oh, ow) = (s.out_h(), s.out_w());
    let mut acc = vec![Complex::ZERO; s.m * oh * n];

    let mut row_fft = vec![Complex::ZERO; s.h * n];
    let mut ker_fft = vec![Complex::ZERO; s.m * s.k * n];
    for c in 0..s.c {
        // Transform this channel's image rows.
        for y in 0..s.h {
            let buf = &mut row_fft[y * n..(y + 1) * n];
            buf.fill(Complex::ZERO);
            for (x, slot) in buf.iter_mut().enumerate().take(s.w) {
                *slot = Complex::new(input.at(c, y, x), 0.0);
            }
            plan.forward(buf);
        }
        // Transform this channel's reversed kernel rows.
        for m in 0..s.m {
            for i in 0..s.k {
                let buf = &mut ker_fft[(m * s.k + i) * n..(m * s.k + i + 1) * n];
                buf.fill(Complex::ZERO);
                for (j, slot) in buf.iter_mut().enumerate().take(s.k) {
                    *slot = Complex::new(kernel.at(m, c, i, s.k - 1 - j), 0.0);
                }
                plan.forward(buf);
            }
        }
        // Frequency-domain accumulation.
        for m in 0..s.m {
            for i in 0..s.k {
                let krow = &ker_fft[(m * s.k + i) * n..(m * s.k + i + 1) * n];
                for y in 0..oh {
                    let iy = (y + i) as isize - s.pad as isize;
                    if iy < 0 || iy >= s.h as isize {
                        continue;
                    }
                    let srow = &row_fft[iy as usize * n..(iy as usize + 1) * n];
                    let arow = &mut acc[(m * oh + y) * n..(m * oh + y + 1) * n];
                    for ((a, &sv), &kv) in arow.iter_mut().zip(srow).zip(krow) {
                        *a = *a + sv * kv;
                    }
                }
            }
        }
    }

    // Inverse transforms and extraction. Linear-convolution index
    // `x + k − 1 − pad` holds the correlation output at `x` (see the fft
    // crate's `correlate_1d`).
    let layout = if hwc { Layout::Hwc } else { Layout::Chw };
    let mut out = Tensor::zeros(s.m, oh, ow, layout);
    if hwc {
        let data = out.data_mut();
        let mut buf = vec![Complex::ZERO; n];
        for m in 0..s.m {
            for y in 0..oh {
                buf.copy_from_slice(&acc[(m * oh + y) * n..(m * oh + y + 1) * n]);
                plan.inverse(&mut buf);
                for x in 0..ow {
                    let t = x + s.k - 1;
                    if t >= s.pad {
                        data[(y * ow + x) * s.m + m] = buf[t - s.pad].re;
                    }
                }
            }
        }
    } else {
        let acc = &acc;
        par_chunks_mut(out.data_mut(), oh * ow, threads, |m, plane| {
            let mut buf = vec![Complex::ZERO; n];
            for y in 0..oh {
                buf.copy_from_slice(&acc[(m * oh + y) * n..(m * oh + y + 1) * n]);
                plan.inverse(&mut buf);
                for x in 0..ow {
                    let t = x + s.k - 1;
                    if t >= s.pad {
                        plane[y * ow + x] = buf[t - s.pad].re;
                    }
                }
            }
        });
    }
    out
}

/// Full 2-D FFT convolution: one forward 2-D transform per input channel
/// and per kernel plane, frequency-domain accumulation, one inverse 2-D
/// transform per output channel.
fn fft_2d_conv(input: &Tensor, kernel: &KernelTensor, s: &ConvScenario) -> Tensor {
    let n = (s.h + s.k - 1).max(s.w + s.k - 1).next_power_of_two();
    let plan = Fft::new(n);
    let (oh, ow) = (s.out_h(), s.out_w());
    let mut acc = vec![Complex::ZERO; s.m * n * n];
    let mut sig = vec![Complex::ZERO; n * n];
    let mut ker = vec![Complex::ZERO; n * n];

    for c in 0..s.c {
        // 2-D FFT of the channel image.
        sig.fill(Complex::ZERO);
        for y in 0..s.h {
            for x in 0..s.w {
                sig[y * n + x] = Complex::new(input.at(c, y, x), 0.0);
            }
        }
        fft_2d(&plan, &mut sig, n, false);
        for m in 0..s.m {
            // 2-D FFT of the (reversed) kernel plane.
            ker.fill(Complex::ZERO);
            for i in 0..s.k {
                for j in 0..s.k {
                    ker[i * n + j] = Complex::new(kernel.at(m, c, s.k - 1 - i, s.k - 1 - j), 0.0);
                }
            }
            fft_2d(&plan, &mut ker, n, false);
            let arow = &mut acc[m * n * n..(m + 1) * n * n];
            for ((a, &sv), &kv) in arow.iter_mut().zip(&sig).zip(&ker) {
                *a = *a + sv * kv;
            }
        }
    }

    let mut out = Tensor::zeros(s.m, oh, ow, Layout::Chw);
    for m in 0..s.m {
        let slab = &mut acc[m * n * n..(m + 1) * n * n];
        fft_2d(&plan, slab, n, true);
        for y in 0..oh {
            let ty = y + s.k - 1;
            if ty < s.pad {
                continue;
            }
            for x in 0..ow {
                let tx = x + s.k - 1;
                if tx < s.pad {
                    continue;
                }
                out.set(m, y, x, slab[(ty - s.pad) * n + (tx - s.pad)].re);
            }
        }
    }
    out
}

/// In-place 2-D transform of an `n × n` complex grid (rows then columns).
fn fft_2d(plan: &Fft, grid: &mut [Complex], n: usize, inverse: bool) {
    let mut col = vec![Complex::ZERO; n];
    for y in 0..n {
        let row = &mut grid[y * n..(y + 1) * n];
        if inverse {
            plan.inverse(row);
        } else {
            plan.forward(row);
        }
    }
    for x in 0..n {
        for y in 0..n {
            col[y] = grid[y * n + x];
        }
        if inverse {
            plan.inverse(&mut col);
        } else {
            plan.forward(&mut col);
        }
        for y in 0..n {
            grid[y * n + x] = col[y];
        }
    }
}

/// All fft-family primitives for the registry.
pub(crate) fn all() -> Vec<Box<dyn ConvAlgorithm>> {
    vec![
        Box::new(FftConv::new("fft_row_radix2", FftVariant::RowRadix2)) as Box<dyn ConvAlgorithm>,
        Box::new(FftConv::new("fft_row_bluestein", FftVariant::RowBluestein)),
        Box::new(FftConv::new("fft_2d_radix2", FftVariant::TwoD)),
        Box::new(FftConv::new("fft_row_radix2_hwc", FftVariant::RowRadix2Hwc)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::sum2d_reference;

    fn scenarios() -> Vec<ConvScenario> {
        vec![
            ConvScenario::new(3, 8, 9, 1, 3, 4),
            ConvScenario::new(2, 9, 7, 1, 5, 3),
            ConvScenario::new(4, 6, 6, 1, 1, 5).with_pad(0),
            ConvScenario::new(2, 12, 10, 1, 3, 6).with_pad(0),
        ]
    }

    #[test]
    fn every_fft_variant_matches_the_reference() {
        for prim in all() {
            for s in scenarios() {
                let lin = prim.descriptor().input_layout;
                let input = Tensor::random(s.c, s.h, s.w, Layout::Chw, 81).to_layout(lin);
                let kernel = KernelTensor::random(s.m, s.c, s.k, s.k, 82);
                let got = prim.execute(&input, &kernel, &s, 1).unwrap();
                assert_eq!(got.layout(), prim.descriptor().output_layout);
                let want = sum2d_reference(&input, &kernel, &s);
                let diff = got.max_abs_diff(&want).unwrap();
                assert!(diff < 5e-3, "{} on {s}: diff {diff}", prim.descriptor().name);
            }
        }
    }

    #[test]
    fn strided_scenarios_are_rejected() {
        let s = ConvScenario::new(3, 8, 8, 2, 3, 4);
        for prim in all() {
            assert!(!prim.supports(&s), "{}", prim.descriptor().name);
        }
    }

    #[test]
    fn two_d_variant_needs_more_workspace_than_row_variants() {
        let s = ConvScenario::new(16, 32, 32, 1, 5, 16);
        let row = FftConv::new("r", FftVariant::RowRadix2);
        let twod = FftConv::new("t", FftVariant::TwoD);
        assert!(twod.workspace_elems(&s) > row.workspace_elems(&s));
    }

    #[test]
    fn threads_do_not_change_results() {
        let s = ConvScenario::new(3, 10, 10, 1, 3, 4);
        let prim = FftConv::new("r", FftVariant::RowRadix2);
        let input = Tensor::random(s.c, s.h, s.w, Layout::Chw, 91);
        let kernel = KernelTensor::random(s.m, s.c, s.k, s.k, 92);
        let one = prim.execute(&input, &kernel, &s, 1).unwrap();
        let four = prim.execute(&input, &kernel, &s, 4).unwrap();
        assert!(one.allclose(&four, 1e-5).unwrap());
    }
}
