//! Quantized (int8) non-convolution operator kernels — the other half of
//! the mixed-precision selection space.
//!
//! With these registered, a quantized activation chain no longer has to
//! leave the int8 domain at every ReLU or pooling layer: the optimizer
//! can keep whole islands (conv → relu → pool → conv) quantized with
//! **zero** interior quantize/dequantize edges, paying conversion only at
//! the island boundary.
//!
//! The kernels operate directly on quantized codes:
//!
//! * **relu** — `max(q, zp)`: dequantization is monotone and the zero
//!   point encodes real `0.0`, so the result is *exactly* the quantized
//!   image of the f32 ReLU (error 0 beyond the input's own quantization).
//! * **max pool** — windowed `max` over codes (same monotonicity
//!   argument; exact).
//! * **avg pool** — mean of `(q − zp)` per window, rounded once: at most
//!   half a step from the real mean.
//! * **concat** — operands carry distinct dynamic ranges, so codes are
//!   re-encoded into a joint output range covering every operand.
//! * **add** — real sums are accumulated exactly in f32 (carved from the
//!   workspace), then requantized dynamically: at most half an output
//!   step from the f32 sum.

use pbqp_dnn_gemm::arch;
use pbqp_dnn_graph::OpClass;
use pbqp_dnn_tensor::{DType, Layout, QuantParams, Repr, Tensor};

use crate::op::{check_op_args, OpDescriptor, OpInputs, OpKernel, OpSpec};
use crate::{PrimitiveError, Workspace, WorkspaceReq};

fn qdesc(class: OpClass, layout: Layout) -> OpDescriptor {
    let name = format!("qint8_{}_{}", class.name(), layout.name().to_ascii_lowercase());
    OpDescriptor::new(name, class, layout)
        .with_dtypes(DType::I8, DType::I8)
        .with_library("pbqp-dnn-int8")
}

/// Int8 ReLU: `max(q, zp)` per code, parameters passed through.
pub(crate) struct QuantRelu {
    desc: OpDescriptor,
}

impl QuantRelu {
    pub(crate) fn new(layout: Layout) -> QuantRelu {
        QuantRelu { desc: qdesc(OpClass::Relu, layout) }
    }
}

impl OpKernel for QuantRelu {
    fn descriptor(&self) -> &OpDescriptor {
        &self.desc
    }

    fn execute_into(
        &self,
        inputs: OpInputs<'_>,
        _aux: Option<&[f32]>,
        spec: &OpSpec,
        _ws: &mut Workspace,
        out: &mut Tensor,
    ) -> Result<(), PrimitiveError> {
        check_op_args(&self.desc, self.supports(spec), &inputs, spec)?;
        let input = inputs.at(0);
        let params = input.qparams();
        let zp = params.zero_point.clamp(-127, 127) as i8;
        let (c, h, w) = input.dims();
        out.reuse_as_dtype(c, h, w, self.desc.output_layout, DType::I8);
        out.set_qparams(params);
        // `max(q, zp)` is exact on every ISA, so the dispatched SIMD
        // kernel is bit-identical to the scalar loop.
        arch::active().i8_relu(input.data_i8(), zp, out.data_i8_mut());
        Ok(())
    }
}

/// Int8 max/average pooling over quantized codes.
pub(crate) struct QuantPool {
    desc: OpDescriptor,
    avg: bool,
}

impl QuantPool {
    pub(crate) fn new(class: OpClass, layout: Layout) -> QuantPool {
        debug_assert!(matches!(class, OpClass::MaxPool | OpClass::AvgPool));
        QuantPool { desc: qdesc(class, layout), avg: class == OpClass::AvgPool }
    }
}

impl OpKernel for QuantPool {
    fn descriptor(&self) -> &OpDescriptor {
        &self.desc
    }

    fn execute_into(
        &self,
        inputs: OpInputs<'_>,
        _aux: Option<&[f32]>,
        spec: &OpSpec,
        _ws: &mut Workspace,
        out: &mut Tensor,
    ) -> Result<(), PrimitiveError> {
        check_op_args(&self.desc, self.supports(spec), &inputs, spec)?;
        let input = inputs.at(0);
        let params = input.qparams();
        let zp = params.zero_point;
        let (k, stride, pad) = spec.window;
        let dims = input.dims();
        let (c, h, w) = dims;
        let layout = self.desc.output_layout;
        let oh = (h + 2 * pad - k).div_ceil(stride) + 1;
        let ow = (w + 2 * pad - k).div_ceil(stride) + 1;
        let src = input.data_i8();
        out.reuse_as_dtype(c, oh, ow, layout, DType::I8);
        out.set_qparams(params);
        let out_dims = (c, oh, ow);
        let data = out.data_i8_mut();
        for ci in 0..c {
            for y in 0..oh {
                for x in 0..ow {
                    let mut best = i8::MIN;
                    let mut sum = 0i32;
                    let mut count = 0usize;
                    for i in 0..k {
                        for j in 0..k {
                            let iy = (y * stride + i) as isize - pad as isize;
                            let ix = (x * stride + j) as isize - pad as isize;
                            if iy < 0 || ix < 0 || iy >= h as isize || ix >= w as isize {
                                continue;
                            }
                            let q = src[input.layout().offset(dims, ci, iy as usize, ix as usize)];
                            best = best.max(q);
                            sum += i32::from(q) - zp;
                            count += 1;
                        }
                    }
                    let q = if count == 0 {
                        // Empty window is real 0.0, same as the f32 op.
                        zp.clamp(-127, 127) as i8
                    } else if self.avg {
                        // One rounding of the exact code mean: at most
                        // half a step from the real window mean.
                        let mean = sum as f32 / count as f32;
                        (mean.round() as i32 + zp).clamp(-127, 127) as i8
                    } else {
                        best
                    };
                    data[layout.offset(out_dims, ci, y, x)] = q;
                }
            }
        }
        Ok(())
    }
}

/// Int8 channel concatenation: re-encodes every operand into a joint
/// output range (operands carry distinct dynamic quantization ranges).
pub(crate) struct QuantConcat {
    desc: OpDescriptor,
}

impl QuantConcat {
    pub(crate) fn new(layout: Layout) -> QuantConcat {
        QuantConcat { desc: qdesc(OpClass::Concat, layout) }
    }
}

impl OpKernel for QuantConcat {
    fn descriptor(&self) -> &OpDescriptor {
        &self.desc
    }

    fn execute_into(
        &self,
        inputs: OpInputs<'_>,
        _aux: Option<&[f32]>,
        spec: &OpSpec,
        _ws: &mut Workspace,
        out: &mut Tensor,
    ) -> Result<(), PrimitiveError> {
        check_op_args(&self.desc, self.supports(spec), &inputs, spec)?;
        // Joint range: the real min/max over all operands (linear in the
        // codes, so the per-operand code extrema suffice).
        let mut lo = 0.0f32;
        let mut hi = 0.0f32;
        for i in 0..inputs.len() {
            let t = inputs.at(i);
            if t.data_i8().is_empty() {
                continue;
            }
            let p = t.qparams();
            // Exact extrema (a `min`/`max` reduction over codes), so the
            // SIMD scan cannot change the joint range.
            let (qmin, qmax) = arch::active().i8_minmax(t.data_i8());
            lo = lo.min(p.dequantize(qmin));
            hi = hi.max(p.dequantize(qmax));
        }
        let params = QuantParams::from_range(lo, hi);
        let (c, oh, ow) = spec.out;
        let layout = self.desc.output_layout;
        out.reuse_as_dtype(c, oh, ow, layout, DType::I8);
        out.set_qparams(params);
        let out_dims = (c, oh, ow);
        let data = out.data_i8_mut();
        let mut c_base = 0;
        for i in 0..inputs.len() {
            let t = inputs.at(i);
            let p = t.qparams();
            let dims = t.dims();
            let (tc, th, tw) = dims;
            let src = t.data_i8();
            for ci in 0..tc {
                for y in 0..th {
                    for x in 0..tw {
                        let q = src[t.layout().offset(dims, ci, y, x)];
                        data[layout.offset(out_dims, c_base + ci, y, x)] =
                            params.quantize(p.dequantize(q));
                    }
                }
            }
            c_base += tc;
        }
        Ok(())
    }
}

/// Int8 elementwise add: exact f32 sums staged in workspace scratch, then
/// one dynamic requantization — the same dynamic-range discipline the
/// int8 convolutions use for their accumulators.
pub(crate) struct QuantAdd {
    desc: OpDescriptor,
}

impl QuantAdd {
    pub(crate) fn new(layout: Layout) -> QuantAdd {
        QuantAdd { desc: qdesc(OpClass::Add, layout) }
    }
}

impl OpKernel for QuantAdd {
    fn descriptor(&self) -> &OpDescriptor {
        &self.desc
    }

    fn workspace_req(&self, spec: &OpSpec) -> WorkspaceReq {
        // Non-blocked layouts only (see `Repr::I8_LAYOUTS`), so storage
        // length equals the logical element count.
        WorkspaceReq::f32s(spec.out_elems())
    }

    fn execute_into(
        &self,
        inputs: OpInputs<'_>,
        _aux: Option<&[f32]>,
        spec: &OpSpec,
        ws: &mut Workspace,
        out: &mut Tensor,
    ) -> Result<(), PrimitiveError> {
        check_op_args(&self.desc, self.supports(spec), &inputs, spec)?;
        let elems = spec.out_elems();
        let mark = ws.reals.mark();
        let [sums] = ws.reals.take([elems]);
        // Operands share layout and dims, so storage orders agree
        // element for element; sum the dequantized codes exactly.
        let mut lo = 0.0f32;
        let mut hi = 0.0f32;
        for i in 0..inputs.len() {
            let t = inputs.at(i);
            let p = t.qparams();
            for (acc, &q) in sums.iter_mut().zip(t.data_i8()) {
                *acc += p.dequantize(q);
            }
        }
        for &v in sums.iter() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        let params = QuantParams::from_range(lo, hi);
        let (c, h, w) = spec.out;
        out.reuse_as_dtype(c, h, w, self.desc.output_layout, DType::I8);
        out.set_qparams(params);
        for (d, &v) in out.data_i8_mut().iter_mut().zip(sums.iter()) {
            *d = params.quantize(v);
        }
        ws.reals.release(mark);
        Ok(())
    }
}

/// All quantized op kernels: relu / max pool / avg pool / concat / add at
/// every quantized layout.
pub(crate) fn all() -> Vec<Box<dyn OpKernel>> {
    let mut out: Vec<Box<dyn OpKernel>> = Vec::new();
    for layout in Repr::I8_LAYOUTS {
        out.push(Box::new(QuantRelu::new(layout)));
        out.push(Box::new(QuantPool::new(OpClass::MaxPool, layout)));
        out.push(Box::new(QuantPool::new(OpClass::AvgPool, layout)));
        out.push(Box::new(QuantConcat::new(layout)));
        out.push(Box::new(QuantAdd::new(layout)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;
    use pbqp_dnn_graph::{LayerKind, PoolKind};
    use pbqp_dnn_tensor::transform::{dequantize_into, quantize_dynamic_into};

    fn quantized(c: usize, h: usize, w: usize, layout: Layout, seed: u64) -> (Tensor, Tensor) {
        let f = Tensor::random(c, h, w, layout, seed);
        let mut q = Tensor::empty_dtype(DType::I8);
        quantize_dynamic_into(&f, &mut q);
        // The f32 reference sees exactly what the int8 kernel sees: the
        // dequantized codes (input quantization error is not the op's).
        let mut back = Tensor::empty();
        dequantize_into(&q, &mut back);
        (back, q)
    }

    #[test]
    fn int8_relu_is_exact_on_the_grid() {
        for layout in Repr::I8_LAYOUTS {
            let (f, q) = quantized(3, 5, 4, layout, 11);
            let spec = OpSpec::for_layer(&LayerKind::Relu, vec![(3, 5, 4)], (3, 5, 4)).unwrap();
            let operands = [&q];
            let got =
                QuantRelu::new(layout).execute(OpInputs::Slice(&operands), None, &spec).unwrap();
            let mut back = Tensor::empty();
            dequantize_into(&got, &mut back);
            let want = ops::relu(&f, layout);
            assert_eq!(back.max_abs_diff(&want).unwrap(), 0.0, "{layout}");
        }
    }

    #[test]
    fn int8_pools_track_the_f32_reference() {
        for layout in Repr::I8_LAYOUTS {
            for (class, kind) in
                [(OpClass::MaxPool, PoolKind::Max), (OpClass::AvgPool, PoolKind::Avg)]
            {
                let (f, q) = quantized(2, 7, 7, layout, 23);
                let kind_layer = LayerKind::Pool { kind, k: 3, stride: 2, pad: 1 };
                let spec = OpSpec::for_layer(&kind_layer, vec![(2, 7, 7)], (2, 4, 4)).unwrap();
                let operands = [&q];
                let got = QuantPool::new(class, layout)
                    .execute(OpInputs::Slice(&operands), None, &spec)
                    .unwrap();
                let mut back = Tensor::empty();
                dequantize_into(&got, &mut back);
                let want = ops::pool(&f, layout, kind, 3, 2, 1);
                let diff = back.max_abs_diff(&want).unwrap();
                let tol =
                    if class == OpClass::MaxPool { 0.0 } else { got.qparams().scale / 2.0 + 1e-6 };
                assert!(diff <= tol, "{class} {layout}: {diff} > {tol}");
            }
        }
    }

    #[test]
    fn int8_concat_and_add_requantize_within_half_a_step() {
        for layout in Repr::I8_LAYOUTS {
            let (fa, qa) = quantized(2, 4, 4, layout, 31);
            let (fb, qb) = quantized(3, 4, 4, layout, 32);
            let spec = OpSpec::for_layer(&LayerKind::Concat, vec![(2, 4, 4), (3, 4, 4)], (5, 4, 4))
                .unwrap();
            let operands = [&qa, &qb];
            let got =
                QuantConcat::new(layout).execute(OpInputs::Slice(&operands), None, &spec).unwrap();
            let mut back = Tensor::empty();
            dequantize_into(&got, &mut back);
            let want = ops::concat(&[&fa, &fb], layout);
            let diff = back.max_abs_diff(&want).unwrap();
            assert!(diff <= got.qparams().scale / 2.0 + 1e-6, "concat {layout}: {diff}");

            let (fc_, qc) = quantized(2, 4, 4, layout, 33);
            let spec =
                OpSpec::for_layer(&LayerKind::Add, vec![(2, 4, 4), (2, 4, 4)], (2, 4, 4)).unwrap();
            let operands = [&qa, &qc];
            let got =
                QuantAdd::new(layout).execute(OpInputs::Slice(&operands), None, &spec).unwrap();
            let mut back = Tensor::empty();
            dequantize_into(&got, &mut back);
            let want = ops::add(&[&fa, &fc_], layout);
            let diff = back.max_abs_diff(&want).unwrap();
            assert!(diff <= got.qparams().scale / 2.0 + 1e-6, "add {layout}: {diff}");
        }
    }

    #[test]
    fn scratch_reuse_is_exact_and_capacity_stable() {
        let spec =
            OpSpec::for_layer(&LayerKind::Add, vec![(3, 6, 6), (3, 6, 6)], (3, 6, 6)).unwrap();
        let (_, qa) = quantized(3, 6, 6, Layout::Chw, 41);
        let (_, qb) = quantized(3, 6, 6, Layout::Chw, 42);
        let kernel = QuantAdd::new(Layout::Chw);
        let operands = [&qa, &qb];
        let fresh = kernel.execute(OpInputs::Slice(&operands), None, &spec).unwrap();
        let mut ws = Workspace::with_req(kernel.workspace_req(&spec));
        let mut out = Tensor::empty_dtype(DType::I8);
        for round in 0..3 {
            ws.reset();
            kernel
                .execute_into(OpInputs::Slice(&operands), None, &spec, &mut ws, &mut out)
                .unwrap();
            assert_eq!(out.data_i8(), fresh.data_i8(), "round {round}");
            assert_eq!(out.qparams(), fresh.qparams());
        }
        let req = kernel.workspace_req(&spec);
        assert!(
            ws.reals.capacity() <= req.f32_elems,
            "workspace_req under-reports: {} used, {} declared",
            ws.reals.capacity(),
            req.f32_elems
        );
    }

    #[test]
    fn rejects_f32_operands() {
        let spec = OpSpec::for_layer(&LayerKind::Relu, vec![(2, 3, 3)], (2, 3, 3)).unwrap();
        let f = Tensor::random(2, 3, 3, Layout::Chw, 51);
        let operands = [&f];
        let err = QuantRelu::new(Layout::Chw)
            .execute(OpInputs::Slice(&operands), None, &spec)
            .unwrap_err();
        assert!(matches!(err, PrimitiveError::WrongInputDType { .. }));
    }
}
