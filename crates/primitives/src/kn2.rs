//! The `kn2` convolution family: low-memory GEMM convolution without a
//! Toeplitz matrix (Vasudevan et al., §4).
//!
//! A `K × K` convolution is computed as the sum of `K²` pointwise (1×1)
//! convolutions, each a GEMM between one kernel tap-plane and the *input*
//! image matrix, accumulated into the output at the tap's spatial offset
//! ("shift-add").
//!
//! * **accumulating** variants run `K²` small GEMMs reusing one
//!   `M × H·W` product buffer — the low-memory form the paper highlights;
//! * **single-GEMM** variants stack all tap-planes into one
//!   `(K²·M) × C` operand, trading memory for one large GEMM call.
//!
//! kn2 cannot implement strided convolution efficiently (Table 1); these
//! primitives support `δ = 1` only.

use pbqp_dnn_gemm::{Gemm, GemmKind, Trans};
use pbqp_dnn_graph::ConvScenario;
use pbqp_dnn_tensor::{KernelTensor, Layout, Tensor};

use crate::algorithm::check_args;
use crate::{ConvAlgorithm, Family, PrimitiveDescriptor, PrimitiveError, Workspace, WorkspaceReq};

/// Patch-matrix orientation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Kn2Shape {
    /// kn2row: planar CHW input as a `C × (H·W)` matrix; CHW output.
    Row,
    /// kn2col: interleaved HWC input as a `(H·W) × C` matrix; HWC output.
    Col,
}

/// GEMM granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Kn2Mode {
    /// `K²` GEMMs reusing one product buffer (low memory).
    Accumulating,
    /// One stacked GEMM producing all `K²` products at once.
    SingleGemm,
}

/// One member of the kn2 family.
pub(crate) struct Kn2Conv {
    desc: PrimitiveDescriptor,
    shape: Kn2Shape,
    mode: Kn2Mode,
    gemm: GemmKind,
}

impl Kn2Conv {
    pub(crate) fn new(name: &str, shape: Kn2Shape, mode: Kn2Mode, gemm: GemmKind) -> Kn2Conv {
        let (lin, lout) = match shape {
            Kn2Shape::Row => (Layout::Chw, Layout::Chw),
            Kn2Shape::Col => (Layout::Hwc, Layout::Hwc),
        };
        let efficiency = match gemm {
            GemmKind::Naive => 0.08,
            GemmKind::Blocked => 0.35,
            GemmKind::Packed => 0.72,
        };
        // Accumulating kn2 pays one GEMM call per kernel tap; the count is
        // scenario-dependent, so record a representative 3x3 tap count.
        let calls = match mode {
            Kn2Mode::Accumulating => 9,
            Kn2Mode::SingleGemm => 1,
        };
        Kn2Conv {
            desc: PrimitiveDescriptor::new(name, Family::Kn2, lin, lout)
                .with_hint(crate::AlgoHint::Gemm { efficiency, calls }),
            shape,
            mode,
            gemm,
        }
    }

    /// One kernel tap-plane as an `M × C` matrix, written into `a`.
    fn tap_plane(
        &self,
        kernel: &KernelTensor,
        s: &ConvScenario,
        i: usize,
        j: usize,
        a: &mut [f32],
    ) {
        for m in 0..s.m {
            for c in 0..s.c {
                a[m * s.c + c] = kernel.at(m, c, i, j);
            }
        }
    }

    /// `(a_elems, product_elems, view_elems)` scratch partition.
    fn scratch_parts(&self, s: &ConvScenario) -> (usize, usize, usize) {
        let (h, w, kk) = (s.h, s.w, s.k * s.k);
        match (self.shape, self.mode) {
            (_, Kn2Mode::Accumulating) => (s.m * s.c, s.m * h * w, 0),
            (Kn2Shape::Row, Kn2Mode::SingleGemm) => (kk * s.m * s.c, kk * s.m * h * w, 0),
            (Kn2Shape::Col, Kn2Mode::SingleGemm) => (s.c * kk * s.m, h * w * kk * s.m, h * w * s.m),
        }
    }

    /// GEMM packing scratch for the calls one execute makes.
    fn gemm_scratch(&self, s: &ConvScenario, gemm: &Gemm) -> usize {
        let (h, w, kk) = (s.h, s.w, s.k * s.k);
        match (self.shape, self.mode) {
            (Kn2Shape::Row, Kn2Mode::Accumulating) => {
                gemm.scratch_elems(Trans::N, Trans::N, s.m, h * w, s.c)
            }
            (Kn2Shape::Row, Kn2Mode::SingleGemm) => {
                gemm.scratch_elems(Trans::N, Trans::N, kk * s.m, h * w, s.c)
            }
            (Kn2Shape::Col, Kn2Mode::Accumulating) => {
                gemm.scratch_elems(Trans::N, Trans::T, h * w, s.m, s.c)
            }
            (Kn2Shape::Col, Kn2Mode::SingleGemm) => {
                gemm.scratch_elems(Trans::N, Trans::N, h * w, kk * s.m, s.c)
            }
        }
    }
}

/// Accumulates a full-image `M × (H·W)` product into the CHW output at the
/// spatial offset of tap `(i, j)`.
#[allow(clippy::too_many_arguments)]
fn shift_add_chw(
    out: &mut Tensor,
    product: &[f32],
    s: &ConvScenario,
    oh: usize,
    ow: usize,
    i: usize,
    j: usize,
) {
    let (h, w) = (s.h, s.w);
    let data = out.data_mut();
    for m in 0..s.m {
        let src_plane = &product[m * h * w..(m + 1) * h * w];
        let dst_plane = &mut data[m * oh * ow..(m + 1) * oh * ow];
        for y in 0..oh {
            let ys = y as isize + i as isize - s.pad as isize;
            if ys < 0 || ys >= h as isize {
                continue;
            }
            let src_row = &src_plane[ys as usize * w..(ys as usize + 1) * w];
            let dst_row = &mut dst_plane[y * ow..(y + 1) * ow];
            let off = j as isize - s.pad as isize;
            for (x, dst) in dst_row.iter_mut().enumerate() {
                let xs = x as isize + off;
                if xs >= 0 && xs < w as isize {
                    *dst += src_row[xs as usize];
                }
            }
        }
    }
}

/// Accumulates a full-image `(H·W) × M` product into the HWC output at the
/// spatial offset of tap `(i, j)`.
fn shift_add_hwc(
    out: &mut Tensor,
    product: &[f32],
    s: &ConvScenario,
    oh: usize,
    ow: usize,
    i: usize,
    j: usize,
) {
    let (h, w, m) = (s.h, s.w, s.m);
    let data = out.data_mut();
    for y in 0..oh {
        let ys = y as isize + i as isize - s.pad as isize;
        if ys < 0 || ys >= h as isize {
            continue;
        }
        for x in 0..ow {
            let xs = x as isize + j as isize - s.pad as isize;
            if xs < 0 || xs >= w as isize {
                continue;
            }
            let src = &product[(ys as usize * w + xs as usize) * m..][..m];
            let dst = &mut data[(y * ow + x) * m..][..m];
            for (d, &v) in dst.iter_mut().zip(src) {
                *d += v;
            }
        }
    }
}

impl ConvAlgorithm for Kn2Conv {
    fn descriptor(&self) -> &PrimitiveDescriptor {
        &self.desc
    }

    fn supports(&self, s: &ConvScenario) -> bool {
        s.stride == 1
    }

    fn workspace_elems(&self, s: &ConvScenario) -> usize {
        match self.mode {
            Kn2Mode::Accumulating => s.m * s.h * s.w + s.m * s.c,
            Kn2Mode::SingleGemm => s.k * s.k * s.m * (s.h * s.w + s.c),
        }
    }

    fn workspace_req(&self, s: &ConvScenario) -> WorkspaceReq {
        let (a, product, view) = self.scratch_parts(s);
        WorkspaceReq::f32s(a + product + view + self.gemm_scratch(s, &Gemm::new(self.gemm)))
    }

    fn execute_into(
        &self,
        input: &Tensor,
        kernel: &KernelTensor,
        s: &ConvScenario,
        threads: usize,
        ws: &mut Workspace,
        out: &mut Tensor,
    ) -> Result<(), PrimitiveError> {
        check_args(&self.desc, self.supports(s), input, kernel, s)?;
        let (oh, ow) = (s.out_h(), s.out_w());
        let (h, w) = (s.h, s.w);
        let gemm = Gemm::new(self.gemm).threads(threads);
        out.reuse_as(s.m, oh, ow, self.desc.output_layout);
        // Shift-add accumulates into the output.
        out.data_mut().fill(0.0);
        let mark = ws.reals.mark();
        let (a_elems, product_elems, view_elems) = self.scratch_parts(s);
        let [a, product, view, gbuf] =
            ws.reals.take([a_elems, product_elems, view_elems, self.gemm_scratch(s, &gemm)]);

        match (self.shape, self.mode) {
            (Kn2Shape::Row, Kn2Mode::Accumulating) => {
                for i in 0..s.k {
                    for j in 0..s.k {
                        self.tap_plane(kernel, s, i, j, a);
                        gemm.run_with_scratch(
                            Trans::N,
                            Trans::N,
                            s.m,
                            h * w,
                            s.c,
                            a,
                            input.data(),
                            0.0,
                            product,
                            gbuf,
                        );
                        shift_add_chw(out, product, s, oh, ow, i, j);
                    }
                }
            }
            (Kn2Shape::Row, Kn2Mode::SingleGemm) => {
                // Stack all tap planes: (K²·M) × C.
                let kk = s.k * s.k;
                for i in 0..s.k {
                    for j in 0..s.k {
                        let t = i * s.k + j;
                        for m in 0..s.m {
                            for c in 0..s.c {
                                a[((t * s.m) + m) * s.c + c] = kernel.at(m, c, i, j);
                            }
                        }
                    }
                }
                gemm.run_with_scratch(
                    Trans::N,
                    Trans::N,
                    kk * s.m,
                    h * w,
                    s.c,
                    a,
                    input.data(),
                    0.0,
                    product,
                    gbuf,
                );
                for i in 0..s.k {
                    for j in 0..s.k {
                        let t = i * s.k + j;
                        let slab = &product[t * s.m * h * w..(t + 1) * s.m * h * w];
                        shift_add_chw(out, slab, s, oh, ow, i, j);
                    }
                }
            }
            (Kn2Shape::Col, Kn2Mode::Accumulating) => {
                for i in 0..s.k {
                    for j in 0..s.k {
                        self.tap_plane(kernel, s, i, j, a);
                        // (H·W × C) · (M × C)ᵀ = H·W × M.
                        gemm.run_with_scratch(
                            Trans::N,
                            Trans::T,
                            h * w,
                            s.m,
                            s.c,
                            input.data(),
                            a,
                            0.0,
                            product,
                            gbuf,
                        );
                        shift_add_hwc(out, product, s, oh, ow, i, j);
                    }
                }
            }
            (Kn2Shape::Col, Kn2Mode::SingleGemm) => {
                let kk = s.k * s.k;
                // All taps side by side: C × (K²·M) operand.
                for c in 0..s.c {
                    for i in 0..s.k {
                        for j in 0..s.k {
                            let t = i * s.k + j;
                            for m in 0..s.m {
                                a[c * kk * s.m + t * s.m + m] = kernel.at(m, c, i, j);
                            }
                        }
                    }
                }
                gemm.run_with_scratch(
                    Trans::N,
                    Trans::N,
                    h * w,
                    kk * s.m,
                    s.c,
                    input.data(),
                    a,
                    0.0,
                    product,
                    gbuf,
                );
                // Gather per tap into a contiguous H·W × M view for the
                // shared shift-add.
                for t in 0..kk {
                    for p in 0..h * w {
                        view[p * s.m..(p + 1) * s.m]
                            .copy_from_slice(&product[p * kk * s.m + t * s.m..][..s.m]);
                    }
                    shift_add_hwc(out, view, s, oh, ow, t / s.k, t % s.k);
                }
            }
        }
        ws.reals.release(mark);
        Ok(())
    }
}

/// All kn2-family primitives for the registry.
pub(crate) fn all() -> Vec<Box<dyn ConvAlgorithm>> {
    use Kn2Mode::*;
    use Kn2Shape::*;
    vec![
        Box::new(Kn2Conv::new("kn2row_naive", Row, Accumulating, GemmKind::Naive))
            as Box<dyn ConvAlgorithm>,
        Box::new(Kn2Conv::new("kn2row_blocked", Row, Accumulating, GemmKind::Blocked)),
        Box::new(Kn2Conv::new("kn2row_packed", Row, Accumulating, GemmKind::Packed)),
        Box::new(Kn2Conv::new("kn2row_single_packed", Row, SingleGemm, GemmKind::Packed)),
        Box::new(Kn2Conv::new("kn2col_blocked", Col, Accumulating, GemmKind::Blocked)),
        Box::new(Kn2Conv::new("kn2col_packed", Col, Accumulating, GemmKind::Packed)),
        Box::new(Kn2Conv::new("kn2col_single_packed", Col, SingleGemm, GemmKind::Packed)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::sum2d_reference;

    fn scenarios() -> Vec<ConvScenario> {
        vec![
            ConvScenario::new(3, 8, 9, 1, 3, 4),
            ConvScenario::new(5, 7, 7, 1, 5, 3),
            ConvScenario::new(7, 6, 6, 1, 1, 5).with_pad(0),
            ConvScenario::new(2, 10, 12, 1, 3, 6).with_pad(0),
        ]
    }

    #[test]
    fn every_kn2_variant_matches_the_reference() {
        for prim in all() {
            for s in scenarios() {
                let lin = prim.descriptor().input_layout;
                let input = Tensor::random(s.c, s.h, s.w, Layout::Chw, 41).to_layout(lin);
                let kernel = KernelTensor::random(s.m, s.c, s.k, s.k, 42);
                let got = prim.execute(&input, &kernel, &s, 1).unwrap();
                assert_eq!(got.layout(), prim.descriptor().output_layout);
                let want = sum2d_reference(&input, &kernel, &s);
                let diff = got.max_abs_diff(&want).unwrap();
                assert!(diff < 2e-3, "{} on {s}: diff {diff}", prim.descriptor().name);
            }
        }
    }

    #[test]
    fn strided_scenarios_are_rejected() {
        let s = ConvScenario::new(3, 8, 8, 2, 3, 4);
        for prim in all() {
            assert!(!prim.supports(&s), "{}", prim.descriptor().name);
        }
    }

    #[test]
    fn accumulating_mode_uses_less_workspace() {
        let s = ConvScenario::new(64, 56, 56, 1, 3, 64);
        let acc = Kn2Conv::new("a", Kn2Shape::Row, Kn2Mode::Accumulating, GemmKind::Packed);
        let single = Kn2Conv::new("s", Kn2Shape::Row, Kn2Mode::SingleGemm, GemmKind::Packed);
        assert!(acc.workspace_elems(&s) * 4 < single.workspace_elems(&s));
    }

    #[test]
    fn threads_do_not_change_results() {
        let s = ConvScenario::new(6, 9, 9, 1, 3, 8);
        for prim in all() {
            let lin = prim.descriptor().input_layout;
            let input = Tensor::random(s.c, s.h, s.w, Layout::Chw, 51).to_layout(lin);
            let kernel = KernelTensor::random(s.m, s.c, s.k, s.k, 52);
            let one = prim.execute(&input, &kernel, &s, 1).unwrap();
            let four = prim.execute(&input, &kernel, &s, 4).unwrap();
            assert!(one.allclose(&four, 1e-4).unwrap(), "{}", prim.descriptor().name);
        }
    }
}
