//! Quantized (int8) convolution primitives — the precision axis of the
//! selection space.
//!
//! These routines consume `i8` activations (affine per-tensor
//! quantization), multiply against the kernel's cached symmetric int8
//! image ([`pbqp_dnn_tensor::QuantizedKernel`], built once at
//! schedule-compile time), accumulate in `i32`, and requantize the result
//! dynamically to `i8` output. To the optimizer they are ordinary
//! candidates: `{CHW·i8, P, CHW·i8}` triples whose boundary with f32
//! layers is paid for by quantize/dequantize DT edges, exactly as layout
//! disagreements are paid for by layout transforms (§3.1).
//!
//! Two algorithm shapes mirror the f32 library:
//!
//! * **im2col** — int8 Toeplitz patch matrix plus one [`QuantGemm`] call;
//! * **direct** — six-deep loop nest with `i32` accumulators, in planar
//!   and interleaved variants.
//!
//! All scratch (patch matrix, accumulators, GEMM correction sums) is
//! carved from the [`Workspace`]'s `i8`/`i32` arenas, so the zero-alloc
//! steady-state contract of the f32 primitives carries over unchanged.

use pbqp_dnn_gemm::QuantGemm;
use pbqp_dnn_graph::ConvScenario;
use pbqp_dnn_tensor::{DType, KernelTensor, Layout, QuantParams, Tensor};

use crate::algorithm::check_args;
use crate::{
    AlgoHint, ConvAlgorithm, Family, PrimitiveDescriptor, PrimitiveError, Workspace, WorkspaceReq,
};

/// Requantizes an `i32` accumulator tensor (`real = acc · eff_scale`) to
/// symmetric per-tensor `i8`, returning the output parameters.
///
/// The range is calibrated from the accumulator itself, so the whole int8
/// layer is self-contained and deterministic: same inputs, same codes.
fn requantize_params(acc: &[i32], eff_scale: f32) -> (QuantParams, f32) {
    let maxabs = acc.iter().fold(0i32, |m, &v| m.max(v.abs()));
    if maxabs == 0 {
        return (QuantParams { scale: eff_scale.max(f32::MIN_POSITIVE), zero_point: 0 }, 0.0);
    }
    let scale = maxabs as f32 * eff_scale / 127.0;
    let factor = 127.0 / maxabs as f32;
    (QuantParams { scale, zero_point: 0 }, factor)
}

/// Quantized im2col convolution: `{CHW·i8, qint8_im2col_chw, CHW·i8}`.
///
/// Builds the `(C·K²) × (OH·OW)` patch matrix in `i8` (zero padding is
/// the input's zero point, i.e. real `0.0`), multiplies the cached int8
/// kernel image against it with [`QuantGemm`] (the activation zero point
/// folds out via the GEMM's correction sums), and requantizes the `i32`
/// result dynamically.
pub(crate) struct QuantIm2col {
    desc: PrimitiveDescriptor,
}

impl QuantIm2col {
    pub(crate) fn new() -> QuantIm2col {
        QuantIm2col {
            desc: PrimitiveDescriptor::new(
                "qint8_im2col_chw",
                Family::Im2,
                Layout::Chw,
                Layout::Chw,
            )
            .with_dtypes(DType::I8, DType::I8)
            .with_library("pbqp-dnn-int8")
            .with_hint(AlgoHint::Gemm { efficiency: 0.65, calls: 1 }),
        }
    }

    /// `(patch_i8, acc_i32, gemm_i32)` scratch partition.
    fn scratch_parts(s: &ConvScenario) -> (usize, usize, usize) {
        let (oh, ow) = (s.out_h(), s.out_w());
        let ckk = s.c * s.k * s.k;
        let gemm = QuantGemm::new();
        (ckk * oh * ow, s.m * oh * ow, gemm.scratch_elems(s.m, oh * ow, ckk))
    }
}

impl ConvAlgorithm for QuantIm2col {
    fn descriptor(&self) -> &PrimitiveDescriptor {
        &self.desc
    }

    fn supports(&self, _scenario: &ConvScenario) -> bool {
        true
    }

    fn workspace_elems(&self, s: &ConvScenario) -> usize {
        // In f32-equivalent elements (4 bytes each): the i8 patch matrix
        // counts a quarter, the i32 accumulators count full.
        let (patch, acc, gemm) = Self::scratch_parts(s);
        patch.div_ceil(4) + acc + gemm
    }

    fn workspace_req(&self, s: &ConvScenario) -> WorkspaceReq {
        let (patch, acc, gemm) = Self::scratch_parts(s);
        WorkspaceReq::quantized(patch, acc + gemm)
    }

    fn execute_into(
        &self,
        input: &Tensor,
        kernel: &KernelTensor,
        s: &ConvScenario,
        threads: usize,
        ws: &mut Workspace,
        out: &mut Tensor,
    ) -> Result<(), PrimitiveError> {
        check_args(&self.desc, true, input, kernel, s)?;
        let (oh, ow) = (s.out_h(), s.out_w());
        let ckk = s.c * s.k * s.k;
        let qk = kernel.quantized();
        let in_params = input.qparams();
        let zp = in_params.zero_point as i8;

        let (patch_elems, acc_elems, gemm_elems) = Self::scratch_parts(s);
        let q_mark = ws.quants.mark();
        let a_mark = ws.accums.mark();
        let [patch] = ws.quants.take([patch_elems]);
        let [acc, gemm_scratch] = ws.accums.take([acc_elems, gemm_elems]);

        // Patch matrix in im2col order: row (c, i, j), column (y, x).
        // Out-of-image taps are the zero point — real 0.0 — so the GEMM's
        // zero-point correction cancels them exactly.
        let src = input.data_i8();
        let (h, w) = (s.h, s.w);
        let cols = oh * ow;
        for c in 0..s.c {
            let plane = &src[c * h * w..(c + 1) * h * w];
            for i in 0..s.k {
                for j in 0..s.k {
                    let r = (c * s.k + i) * s.k + j;
                    let row = &mut patch[r * cols..(r + 1) * cols];
                    for y in 0..oh {
                        let iy = (y * s.stride + i) as isize - s.pad as isize;
                        let in_row = (iy >= 0 && iy < h as isize)
                            .then(|| &plane[iy as usize * w..(iy as usize + 1) * w]);
                        for x in 0..ow {
                            let ix = (x * s.stride + j) as isize - s.pad as isize;
                            row[y * ow + x] = match (&in_row, ix >= 0 && ix < w as isize) {
                                (Some(r), true) => r[ix as usize],
                                _ => zp,
                            };
                        }
                    }
                }
            }
        }

        // Raw product; the activation zero point folds out afterwards via
        // the kernel's schedule-time filter sums — C = W·(P − zp) =
        // W·P − zp·Σ(W row) — so no per-run rescan of the weight matrix.
        QuantGemm::new().threads(threads).run_with_scratch(
            s.m,
            cols,
            ckk,
            &qk.data,
            0,
            patch,
            0,
            acc,
            gemm_scratch,
        );
        if in_params.zero_point != 0 {
            for (mi, plane) in acc.chunks_mut(cols).enumerate() {
                let corr = in_params.zero_point * qk.filter_sums[mi];
                for v in plane {
                    *v -= corr;
                }
            }
        }

        // Dynamic requantization: real = acc · (s_in · s_w).
        let (params, factor) = requantize_params(acc, in_params.scale * qk.scale);
        out.reuse_as_dtype(s.m, oh, ow, Layout::Chw, DType::I8);
        out.set_qparams(params);
        for (slot, &v) in out.data_i8_mut().iter_mut().zip(acc.iter()) {
            *slot = (v as f32 * factor).round().clamp(-127.0, 127.0) as i8;
        }

        ws.quants.release(q_mark);
        ws.accums.release(a_mark);
        Ok(())
    }
}

/// Loop order of a [`QuantDirect`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum QuantDirectLayout {
    /// Planar `M, Y, X, C, K, K` nest over CHW·i8.
    Chw,
    /// Interleaved `Y, X, K, K, C, M`-flavoured nest over HWC·i8.
    Hwc,
}

/// Quantized direct convolution: a six-deep loop nest with `i32`
/// accumulators, no patch materialization — the low-memory int8 option.
pub(crate) struct QuantDirect {
    desc: PrimitiveDescriptor,
}

impl QuantDirect {
    pub(crate) fn new(layout: QuantDirectLayout) -> QuantDirect {
        let (name, l) = match layout {
            QuantDirectLayout::Chw => ("qint8_direct_chw", Layout::Chw),
            QuantDirectLayout::Hwc => ("qint8_direct_hwc", Layout::Hwc),
        };
        QuantDirect {
            desc: PrimitiveDescriptor::new(name, Family::Direct, l, l)
                .with_dtypes(DType::I8, DType::I8)
                .with_library("pbqp-dnn-int8")
                .with_hint(AlgoHint::Loops { quality: 0.33 }),
        }
    }
}

impl ConvAlgorithm for QuantDirect {
    fn descriptor(&self) -> &PrimitiveDescriptor {
        &self.desc
    }

    fn supports(&self, _scenario: &ConvScenario) -> bool {
        true
    }

    fn workspace_elems(&self, s: &ConvScenario) -> usize {
        s.m * s.out_h() * s.out_w()
    }

    fn workspace_req(&self, s: &ConvScenario) -> WorkspaceReq {
        WorkspaceReq::quantized(0, s.m * s.out_h() * s.out_w())
    }

    fn execute_into(
        &self,
        input: &Tensor,
        kernel: &KernelTensor,
        s: &ConvScenario,
        _threads: usize,
        ws: &mut Workspace,
        out: &mut Tensor,
    ) -> Result<(), PrimitiveError> {
        check_args(&self.desc, true, input, kernel, s)?;
        let (oh, ow) = (s.out_h(), s.out_w());
        let qk = kernel.quantized();
        let in_params = input.qparams();
        let zp = in_params.zero_point;
        let src = input.data_i8();
        let dims = input.dims();
        let layout = input.layout();
        let ckk = s.c * s.k * s.k;

        let mark = ws.accums.mark();
        let [acc] = ws.accums.take([s.m * oh * ow]);
        // Accumulate (q − zp) · w directly; taps outside the image are the
        // zero point and contribute nothing, so they are simply skipped.
        for m in 0..s.m {
            let w_taps = &qk.data[m * ckk..(m + 1) * ckk];
            let plane = &mut acc[m * oh * ow..(m + 1) * oh * ow];
            for y in 0..oh {
                for x in 0..ow {
                    let mut sum = 0i32;
                    for c in 0..s.c {
                        for i in 0..s.k {
                            let iy = (y * s.stride + i) as isize - s.pad as isize;
                            if iy < 0 || iy >= s.h as isize {
                                continue;
                            }
                            for j in 0..s.k {
                                let ix = (x * s.stride + j) as isize - s.pad as isize;
                                if ix < 0 || ix >= s.w as isize {
                                    continue;
                                }
                                let q = i32::from(
                                    src[layout.offset(dims, c, iy as usize, ix as usize)],
                                );
                                let wq = i32::from(w_taps[(c * s.k + i) * s.k + j]);
                                sum += (q - zp) * wq;
                            }
                        }
                    }
                    plane[y * ow + x] = sum;
                }
            }
        }

        let (params, factor) = requantize_params(acc, in_params.scale * qk.scale);
        let out_layout = self.desc.output_layout;
        out.reuse_as_dtype(s.m, oh, ow, out_layout, DType::I8);
        out.set_qparams(params);
        let out_dims = (s.m, oh, ow);
        let data = out.data_i8_mut();
        for m in 0..s.m {
            for y in 0..oh {
                for x in 0..ow {
                    let q = (acc[(m * oh + y) * ow + x] as f32 * factor)
                        .round()
                        .clamp(-127.0, 127.0) as i8;
                    data[out_layout.offset(out_dims, m, y, x)] = q;
                }
            }
        }
        ws.accums.release(mark);
        Ok(())
    }
}

/// All quantized primitives for the registry extension.
pub(crate) fn all() -> Vec<Box<dyn ConvAlgorithm>> {
    vec![
        Box::new(QuantIm2col::new()),
        Box::new(QuantDirect::new(QuantDirectLayout::Chw)),
        Box::new(QuantDirect::new(QuantDirectLayout::Hwc)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::sum2d_reference;
    use pbqp_dnn_tensor::transform::quantize_dynamic_into;

    fn scenarios() -> Vec<ConvScenario> {
        vec![
            ConvScenario::new(3, 8, 9, 1, 3, 4),
            ConvScenario::new(5, 9, 7, 2, 3, 3),
            ConvScenario::new(2, 12, 12, 4, 5, 6).with_pad(0),
            ConvScenario::new(7, 6, 6, 1, 1, 5).with_pad(0),
            ConvScenario::new(4, 11, 11, 1, 5, 3),
        ]
    }

    /// Quantized input for a scenario, plus the f32 original.
    fn quantized_input(s: &ConvScenario, layout: Layout, seed: u64) -> (Tensor, Tensor) {
        let f = Tensor::random(s.c, s.h, s.w, layout, seed);
        let mut q = Tensor::empty_dtype(DType::I8);
        quantize_dynamic_into(&f, &mut q);
        (f, q)
    }

    #[test]
    fn quantized_primitives_track_the_f32_reference() {
        for prim in all() {
            for s in scenarios() {
                let lin = prim.descriptor().input_layout;
                let (f, q) = quantized_input(&s, lin, 21);
                let kernel = KernelTensor::random(s.m, s.c, s.k, s.k, 22);
                let got = prim.execute(&q, &kernel, &s, 1).unwrap();
                assert_eq!(got.dtype(), DType::I8, "{}", prim.descriptor().name);
                assert_eq!(got.layout(), prim.descriptor().output_layout);
                let want = sum2d_reference(&f, &kernel, &s);
                let diff = got.max_abs_diff(&want).unwrap();
                // Error budget: input and weight quantization each add
                // ~scale/2 per tap, requantization another half step.
                let taps = (s.c * s.k * s.k) as f32;
                let tol = taps * (q.qparams().scale + kernel.quantized().scale) * 0.5
                    + got.qparams().scale;
                assert!(diff <= tol, "{} on {s}: diff {diff} > tol {tol}", prim.descriptor().name);
            }
        }
    }

    #[test]
    fn im2col_and_direct_agree_exactly() {
        // Both compute identical i32 accumulators, so after identical
        // requantization the codes must match bit for bit.
        let s = ConvScenario::new(4, 10, 10, 1, 3, 5);
        let (_, q) = quantized_input(&s, Layout::Chw, 31);
        let kernel = KernelTensor::random(s.m, s.c, s.k, s.k, 32);
        let a = QuantIm2col::new().execute(&q, &kernel, &s, 1).unwrap();
        let b = QuantDirect::new(QuantDirectLayout::Chw).execute(&q, &kernel, &s, 1).unwrap();
        assert_eq!(a.data_i8(), b.data_i8());
        assert_eq!(a.qparams(), b.qparams());
    }

    #[test]
    fn threads_do_not_change_results() {
        let s = ConvScenario::new(6, 13, 13, 1, 3, 8);
        for prim in all() {
            let (_, q) = quantized_input(&s, prim.descriptor().input_layout, 41);
            let kernel = KernelTensor::random(s.m, s.c, s.k, s.k, 42);
            let one = prim.execute(&q, &kernel, &s, 1).unwrap();
            let four = prim.execute(&q, &kernel, &s, 4).unwrap();
            assert_eq!(one.data_i8(), four.data_i8(), "{}", prim.descriptor().name);
        }
    }

    #[test]
    fn scratch_reuse_is_exact_and_capacity_stable() {
        let s = ConvScenario::new(5, 9, 9, 1, 3, 7);
        for prim in all() {
            let (_, q) = quantized_input(&s, prim.descriptor().input_layout, 51);
            let kernel = KernelTensor::random(s.m, s.c, s.k, s.k, 52);
            let fresh = prim.execute(&q, &kernel, &s, 1).unwrap();
            let mut ws = Workspace::with_req(prim.workspace_req(&s));
            let mut out = Tensor::empty_dtype(DType::I8);
            for round in 0..3 {
                ws.reset();
                prim.execute_into(&q, &kernel, &s, 1, &mut ws, &mut out).unwrap();
                assert_eq!(out.data_i8(), fresh.data_i8(), "round {round}");
            }
            // The declared requirement covers the serial path exactly: no
            // arena may have grown past its pre-sized capacity.
            let req = prim.workspace_req(&s);
            assert!(
                ws.quants.capacity() <= req.i8_elems.max(1)
                    && ws.accums.capacity() <= req.i32_elems,
                "{}: workspace_req under-reports ({} i8 / {} i32 used, {} / {} declared)",
                prim.descriptor().name,
                ws.quants.capacity(),
                ws.accums.capacity(),
                req.i8_elems,
                req.i32_elems,
            );
        }
    }

    #[test]
    fn rejects_f32_input() {
        let s = ConvScenario::new(2, 5, 5, 1, 3, 2);
        let f = Tensor::random(s.c, s.h, s.w, Layout::Chw, 61);
        let kernel = KernelTensor::random(s.m, s.c, s.k, s.k, 62);
        let err = QuantIm2col::new().execute(&f, &kernel, &s, 1).unwrap_err();
        assert!(matches!(err, PrimitiveError::WrongInputDType { .. }));
    }
}
