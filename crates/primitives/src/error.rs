use std::error::Error;
use std::fmt;

use pbqp_dnn_graph::ConvScenario;
use pbqp_dnn_tensor::{DType, Layout, TensorError};

/// Errors raised when executing a convolution primitive.
#[derive(Debug, Clone, PartialEq)]
pub enum PrimitiveError {
    /// The primitive does not support the scenario (wrong kernel size,
    /// stride, …). Callers should consult `supports` first.
    UnsupportedScenario {
        /// Primitive name.
        primitive: String,
        /// The offending scenario.
        scenario: ConvScenario,
    },
    /// Input tensor layout differs from the primitive's declared `L_in`.
    WrongInputLayout {
        /// Primitive name.
        primitive: String,
        /// Layout the primitive consumes.
        expected: Layout,
        /// Layout that was supplied.
        found: Layout,
    },
    /// Input tensor element type differs from the primitive's declared
    /// input dtype (e.g. an f32 tensor handed to an int8 kernel).
    WrongInputDType {
        /// Primitive name.
        primitive: String,
        /// Element type the primitive consumes.
        expected: DType,
        /// Element type that was supplied.
        found: DType,
    },
    /// An op kernel cannot implement the requested operator instance
    /// (class mismatch, missing fully-connected weights, …).
    UnsupportedOp {
        /// Kernel name.
        kernel: String,
        /// Human-readable description of the problem.
        detail: String,
    },
    /// Input or kernel dimensions disagree with the scenario.
    ShapeMismatch {
        /// Primitive name.
        primitive: String,
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// An underlying tensor operation failed.
    Tensor(TensorError),
}

impl fmt::Display for PrimitiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrimitiveError::UnsupportedScenario { primitive, scenario } => {
                write!(f, "primitive `{primitive}` does not support scenario {scenario}")
            }
            PrimitiveError::WrongInputLayout { primitive, expected, found } => {
                write!(f, "primitive `{primitive}` consumes {expected}, input is {found}")
            }
            PrimitiveError::WrongInputDType { primitive, expected, found } => {
                write!(f, "primitive `{primitive}` consumes {expected} storage, input is {found}")
            }
            PrimitiveError::UnsupportedOp { kernel, detail } => {
                write!(f, "op kernel `{kernel}`: {detail}")
            }
            PrimitiveError::ShapeMismatch { primitive, detail } => {
                write!(f, "primitive `{primitive}`: {detail}")
            }
            PrimitiveError::Tensor(e) => write!(f, "tensor error: {e}"),
        }
    }
}

impl Error for PrimitiveError {}

impl From<TensorError> for PrimitiveError {
    fn from(e: TensorError) -> Self {
        PrimitiveError::Tensor(e)
    }
}
