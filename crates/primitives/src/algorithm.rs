use pbqp_dnn_graph::ConvScenario;
use pbqp_dnn_tensor::{KernelTensor, Tensor};

use crate::{PrimitiveDescriptor, PrimitiveError, Workspace, WorkspaceReq};

/// A DNN convolution primitive: one concrete routine with fixed input and
/// output layouts.
///
/// Implementations are stateless and thread-safe; weight repacking (e.g.
/// Winograd kernel transforms) happens inside the execute path. The
/// optimizer never executes primitives directly — it works from profiled
/// or modelled costs — but the runtime does, and every implementation is
/// checked against the sum2d reference in tests.
///
/// Execution comes in two forms: [`ConvAlgorithm::execute_into`] (the
/// required method) is the steady-state path — all scratch is carved
/// from a caller [`Workspace`] and the output lands in a recycled
/// tensor, so a warmed serving loop performs zero heap allocations;
/// [`ConvAlgorithm::execute`] is the provided allocating convenience
/// wrapper around it.
pub trait ConvAlgorithm: Send + Sync {
    /// Static description: name, family, `{L_in, P, L_out}`, vector factor.
    fn descriptor(&self) -> &PrimitiveDescriptor;

    /// Whether this primitive can implement the scenario (kernel radix,
    /// stride, channel constraints, …).
    fn supports(&self, scenario: &ConvScenario) -> bool;

    /// Additional workspace the primitive allocates, in `f32` elements.
    /// Used by the cost model's memory-pressure term (Table 1's "Memory"
    /// column).
    fn workspace_elems(&self, scenario: &ConvScenario) -> usize;

    /// Exact scratch [`ConvAlgorithm::execute_into`] carves for this
    /// scenario at `threads == 1`, per arena.
    ///
    /// A [`Workspace`] pre-sized to this requirement makes the serial
    /// execute path allocation-free from the first call. Intra-op
    /// parallel execution may need more (per-worker panels); the arenas
    /// grow once on the warmup run and stay allocation-free afterwards.
    fn workspace_req(&self, scenario: &ConvScenario) -> WorkspaceReq {
        let _ = scenario;
        WorkspaceReq::ZERO
    }

    /// Runs the convolution.
    ///
    /// `input` must be in `descriptor().input_layout` with dimensions
    /// `(scenario.c, scenario.h, scenario.w)`; the kernel is always in
    /// canonical `M × C × Kh × Kw` order. The output is produced in
    /// `descriptor().output_layout` with dimensions
    /// `(scenario.m, scenario.out_h(), scenario.out_w())`.
    ///
    /// # Errors
    ///
    /// Returns [`PrimitiveError::UnsupportedScenario`] when `supports` is
    /// false, [`PrimitiveError::WrongInputLayout`] /
    /// [`PrimitiveError::ShapeMismatch`] on inconsistent arguments.
    fn execute(
        &self,
        input: &Tensor,
        kernel: &KernelTensor,
        scenario: &ConvScenario,
        threads: usize,
    ) -> Result<Tensor, PrimitiveError> {
        let mut ws = Workspace::new();
        let mut out = Tensor::empty();
        self.execute_into(input, kernel, scenario, threads, &mut ws, &mut out)?;
        Ok(out)
    }

    /// Runs the convolution out of a caller workspace into a recycled
    /// output tensor — the zero-allocation steady-state path.
    ///
    /// All transient buffers are carved from `ws` (which the caller
    /// resets between calls; arenas grow at most once per watermark) and
    /// `out` is re-shaped in place via [`Tensor::reuse_as`]. Results are
    /// bit-identical to [`ConvAlgorithm::execute`].
    ///
    /// # Errors
    ///
    /// Same contract as [`ConvAlgorithm::execute`].
    fn execute_into(
        &self,
        input: &Tensor,
        kernel: &KernelTensor,
        scenario: &ConvScenario,
        threads: usize,
        ws: &mut Workspace,
        out: &mut Tensor,
    ) -> Result<(), PrimitiveError>;

    /// Whether [`ConvAlgorithm::execute_batch_into`] fuses a whole batch
    /// into wider kernel calls — amortizing per-call kernel re-layouts
    /// and GEMM packing across items — instead of looping them. The
    /// runtime only routes a step through the batched entry point when
    /// this is `true`; everything else batches at the schedule level.
    fn fuses_batch(&self) -> bool {
        false
    }

    /// Exact scratch one [`ConvAlgorithm::execute_batch_into`] call over
    /// `batch` items carves, per arena. Defaults to the single-item
    /// requirement: the provided per-item loop reuses the same scratch
    /// for every item.
    fn batch_workspace_req(&self, scenario: &ConvScenario, batch: usize) -> WorkspaceReq {
        let _ = batch;
        self.workspace_req(scenario)
    }

    /// Runs the convolution over `batch` independent inputs of the same
    /// scenario — the cross-request coalescing entry point the serving
    /// gateway's dynamic batches execute through.
    ///
    /// `input_of(i)` resolves the `i`-th input (a resolver rather than a
    /// slice, so a caller holding each item in its own buffer set can
    /// batch without assembling — and allocating — an operand vector);
    /// `outs[i]` is re-shaped in place via [`Tensor::reuse_as`] and
    /// receives the `i`-th output. `outs` must hold exactly `batch`
    /// tensors.
    ///
    /// The provided default loops [`ConvAlgorithm::execute_into`] per
    /// item (resetting `ws` between items). Overrides fuse the batch
    /// into wider kernel calls; every item's result must stay
    /// **bit-identical** to what `execute_into` produces for it alone.
    ///
    /// # Errors
    ///
    /// Same contract as [`ConvAlgorithm::execute_into`], checked per
    /// item; [`PrimitiveError::ShapeMismatch`] when `outs.len() !=
    /// batch`.
    #[allow(clippy::too_many_arguments)]
    fn execute_batch_into<'a>(
        &self,
        batch: usize,
        input_of: &dyn Fn(usize) -> &'a Tensor,
        kernel: &KernelTensor,
        scenario: &ConvScenario,
        threads: usize,
        ws: &mut Workspace,
        outs: &mut [Tensor],
    ) -> Result<(), PrimitiveError> {
        check_batch_outs(self.descriptor(), batch, outs)?;
        for (i, out) in outs.iter_mut().enumerate() {
            ws.reset();
            self.execute_into(input_of(i), kernel, scenario, threads, ws, out)?;
        }
        Ok(())
    }
}

/// Validates the `outs.len() == batch` contract of
/// [`ConvAlgorithm::execute_batch_into`].
pub(crate) fn check_batch_outs(
    desc: &PrimitiveDescriptor,
    batch: usize,
    outs: &[Tensor],
) -> Result<(), PrimitiveError> {
    if outs.len() != batch {
        return Err(PrimitiveError::ShapeMismatch {
            primitive: desc.name.clone(),
            detail: format!("batch of {batch} inputs but {} output slots", outs.len()),
        });
    }
    Ok(())
}

/// Validates the common preconditions shared by every primitive.
pub(crate) fn check_args(
    desc: &PrimitiveDescriptor,
    supported: bool,
    input: &Tensor,
    kernel: &KernelTensor,
    s: &ConvScenario,
) -> Result<(), PrimitiveError> {
    if !supported {
        return Err(PrimitiveError::UnsupportedScenario {
            primitive: desc.name.clone(),
            scenario: *s,
        });
    }
    if input.layout() != desc.input_layout {
        return Err(PrimitiveError::WrongInputLayout {
            primitive: desc.name.clone(),
            expected: desc.input_layout,
            found: input.layout(),
        });
    }
    if input.dtype() != desc.input_dtype {
        return Err(PrimitiveError::WrongInputDType {
            primitive: desc.name.clone(),
            expected: desc.input_dtype,
            found: input.dtype(),
        });
    }
    if input.dims() != (s.c, s.h, s.w) {
        return Err(PrimitiveError::ShapeMismatch {
            primitive: desc.name.clone(),
            detail: format!(
                "input dims {:?} != scenario ({}, {}, {})",
                input.dims(),
                s.c,
                s.h,
                s.w
            ),
        });
    }
    if kernel.dims() != (s.m, s.c, s.k, s.k) {
        return Err(PrimitiveError::ShapeMismatch {
            primitive: desc.name.clone(),
            detail: format!(
                "kernel dims {:?} != scenario ({}, {}, {}, {})",
                kernel.dims(),
                s.m,
                s.c,
                s.k,
                s.k
            ),
        });
    }
    Ok(())
}
