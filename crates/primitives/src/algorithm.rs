use pbqp_dnn_graph::ConvScenario;
use pbqp_dnn_tensor::{KernelTensor, Tensor};

use crate::{PrimitiveDescriptor, PrimitiveError};

/// A DNN convolution primitive: one concrete routine with fixed input and
/// output layouts.
///
/// Implementations are stateless and thread-safe; weight repacking (e.g.
/// Winograd kernel transforms) happens inside [`ConvAlgorithm::execute`].
/// The optimizer never calls `execute` directly — it works from profiled
/// or modelled costs — but the runtime does, and every implementation is
/// checked against the sum2d reference in tests.
pub trait ConvAlgorithm: Send + Sync {
    /// Static description: name, family, `{L_in, P, L_out}`, vector factor.
    fn descriptor(&self) -> &PrimitiveDescriptor;

    /// Whether this primitive can implement the scenario (kernel radix,
    /// stride, channel constraints, …).
    fn supports(&self, scenario: &ConvScenario) -> bool;

    /// Additional workspace the primitive allocates, in `f32` elements.
    /// Used by the cost model's memory-pressure term (Table 1's "Memory"
    /// column).
    fn workspace_elems(&self, scenario: &ConvScenario) -> usize;

    /// Runs the convolution.
    ///
    /// `input` must be in `descriptor().input_layout` with dimensions
    /// `(scenario.c, scenario.h, scenario.w)`; the kernel is always in
    /// canonical `M × C × Kh × Kw` order. The output is produced in
    /// `descriptor().output_layout` with dimensions
    /// `(scenario.m, scenario.out_h(), scenario.out_w())`.
    ///
    /// # Errors
    ///
    /// Returns [`PrimitiveError::UnsupportedScenario`] when `supports` is
    /// false, [`PrimitiveError::WrongInputLayout`] /
    /// [`PrimitiveError::ShapeMismatch`] on inconsistent arguments.
    fn execute(
        &self,
        input: &Tensor,
        kernel: &KernelTensor,
        scenario: &ConvScenario,
        threads: usize,
    ) -> Result<Tensor, PrimitiveError>;
}

/// Validates the common preconditions shared by every primitive.
pub(crate) fn check_args(
    desc: &PrimitiveDescriptor,
    supported: bool,
    input: &Tensor,
    kernel: &KernelTensor,
    s: &ConvScenario,
) -> Result<(), PrimitiveError> {
    if !supported {
        return Err(PrimitiveError::UnsupportedScenario {
            primitive: desc.name.clone(),
            scenario: *s,
        });
    }
    if input.layout() != desc.input_layout {
        return Err(PrimitiveError::WrongInputLayout {
            primitive: desc.name.clone(),
            expected: desc.input_layout,
            found: input.layout(),
        });
    }
    if input.dims() != (s.c, s.h, s.w) {
        return Err(PrimitiveError::ShapeMismatch {
            primitive: desc.name.clone(),
            detail: format!(
                "input dims {:?} != scenario ({}, {}, {})",
                input.dims(),
                s.c,
                s.h,
                s.w
            ),
        });
    }
    if kernel.dims() != (s.m, s.c, s.k, s.k) {
        return Err(PrimitiveError::ShapeMismatch {
            primitive: desc.name.clone(),
            detail: format!(
                "kernel dims {:?} != scenario ({}, {}, {}, {})",
                kernel.dims(),
                s.m,
                s.c,
                s.k,
                s.k
            ),
        });
    }
    Ok(())
}
