//! The primitive registry: assembles the full convolution library the
//! optimizer selects from.
//!
//! The paper's evaluation uses "a library of more than 70 DNN primitives"
//! spanning six families of convolution algorithm (§1, §3.1). This module
//! reproduces that inventory; [`full_library`] is the single source of
//! truth consumed by the cost model, the selector and the runtime.

use std::collections::HashMap;
use std::sync::Arc;

use pbqp_dnn_graph::{ConvScenario, OpClass};
use pbqp_dnn_tensor::DType;

use crate::{
    direct, fft_conv, im2, kn2, ops, pointwise, qops, quantized, reference, sparse, winograd,
    ConvAlgorithm, Family, OpKernel, OpSpec,
};

/// Builds the complete f32 primitive library (70+ routines).
pub fn full_library() -> Vec<Arc<dyn ConvAlgorithm>> {
    let mut prims: Vec<Box<dyn ConvAlgorithm>> = Vec::new();
    prims.push(Box::new(reference::Sum2d::new()));
    prims.extend(direct::all());
    prims.extend(im2::all());
    prims.extend(kn2::all());
    prims.extend(pointwise::all());
    prims.extend(winograd::all());
    prims.extend(fft_conv::all());
    prims.extend(sparse::all());
    prims.into_iter().map(Arc::from).collect()
}

/// [`full_library`] plus the int8 quantized primitives: the
/// mixed-precision selection space. Int8 candidates only enter the PBQP
/// instance when the caller opts into this library, so f32-only
/// deployments are byte-for-byte unaffected. A [`Registry`] built over
/// this library also registers the int8 **op** kernels (relu, pooling,
/// concat, add), so quantized islands can span non-conv layers.
pub fn mixed_precision_library() -> Vec<Arc<dyn ConvAlgorithm>> {
    let mut prims = full_library();
    prims.extend(quantized::all().into_iter().map(Arc::from));
    prims
}

/// The f32 op-kernel inventory: one kernel per `(class, layout)` pair —
/// the candidate sets behind every non-conv selection node.
pub fn op_library() -> Vec<Arc<dyn OpKernel>> {
    ops::all_f32().into_iter().map(Arc::from).collect()
}

/// [`op_library`] plus the int8 op kernels (relu / max pool / avg pool /
/// concat / add at the quantized layouts).
pub fn mixed_precision_op_library() -> Vec<Arc<dyn OpKernel>> {
    let mut kernels = op_library();
    kernels.extend(qops::all().into_iter().map(Arc::from));
    kernels
}

/// A name-indexed view over a primitive library: the convolution
/// algorithms plus the per-class [`OpKernel`] candidate sets every other
/// layer kind selects from.
///
/// [`Registry::new`] derives the op inventory from the conv library's
/// precision span — f32 op kernels always, int8 op kernels exactly when
/// the conv library carries int8 candidates (i.e. it was built from
/// [`mixed_precision_library`]) — so the operator selection space always
/// matches the convolution selection space. Use
/// [`Registry::with_op_kernels`] to override explicitly.
///
/// # Example
///
/// ```
/// use pbqp_dnn_primitives::registry::{full_library, Registry};
///
/// let reg = Registry::new(full_library());
/// assert!(reg.by_name("sum2d").is_some());
/// assert!(reg.len() >= 70);
/// assert!(reg.op_by_name("relu_chw").is_some());
/// ```
#[derive(Clone)]
pub struct Registry {
    prims: Vec<Arc<dyn ConvAlgorithm>>,
    by_name: HashMap<String, usize>,
    ops: Vec<Arc<dyn OpKernel>>,
    ops_by_name: HashMap<String, usize>,
}

impl Registry {
    /// Indexes a library by primitive name and registers the matching op
    /// kernels (see the type docs for the precision-span rule).
    ///
    /// # Panics
    ///
    /// Panics if two primitives (or two op kernels) share a name.
    pub fn new(prims: Vec<Arc<dyn ConvAlgorithm>>) -> Registry {
        let int8 = prims.iter().any(|p| p.descriptor().input_dtype == DType::I8);
        let ops = if int8 { mixed_precision_op_library() } else { op_library() };
        Registry::with_op_kernels(prims, ops)
    }

    /// Builds a registry with an explicit op-kernel inventory (tests and
    /// ensembles; [`Registry::new`] derives it from the conv library).
    ///
    /// # Panics
    ///
    /// Panics if two primitives (or two op kernels) share a name.
    pub fn with_op_kernels(
        prims: Vec<Arc<dyn ConvAlgorithm>>,
        ops: Vec<Arc<dyn OpKernel>>,
    ) -> Registry {
        let mut by_name = HashMap::new();
        for (ix, p) in prims.iter().enumerate() {
            let prev = by_name.insert(p.descriptor().name.clone(), ix);
            assert!(prev.is_none(), "duplicate primitive name {}", p.descriptor().name);
        }
        let mut ops_by_name = HashMap::new();
        for (ix, k) in ops.iter().enumerate() {
            let prev = ops_by_name.insert(k.descriptor().name.clone(), ix);
            assert!(prev.is_none(), "duplicate op kernel name {}", k.descriptor().name);
        }
        Registry { prims, by_name, ops, ops_by_name }
    }

    /// The full library in registry order.
    pub fn primitives(&self) -> &[Arc<dyn ConvAlgorithm>] {
        &self.prims
    }

    /// Number of primitives.
    pub fn len(&self) -> usize {
        self.prims.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.prims.is_empty()
    }

    /// Looks up a primitive by name.
    pub fn by_name(&self, name: &str) -> Option<&Arc<dyn ConvAlgorithm>> {
        self.by_name.get(name).map(|&ix| &self.prims[ix])
    }

    /// All primitives that can implement `scenario`, in registry order.
    pub fn candidates(&self, scenario: &ConvScenario) -> Vec<&Arc<dyn ConvAlgorithm>> {
        self.prims.iter().filter(|p| p.supports(scenario)).collect()
    }

    /// All primitives of one family.
    pub fn family(&self, family: Family) -> Vec<&Arc<dyn ConvAlgorithm>> {
        self.prims.iter().filter(|p| p.descriptor().family == family).collect()
    }

    /// The full op-kernel inventory in registry order.
    pub fn op_kernels(&self) -> &[Arc<dyn OpKernel>] {
        &self.ops
    }

    /// Looks up an op kernel by name.
    pub fn op_by_name(&self, name: &str) -> Option<&Arc<dyn OpKernel>> {
        self.ops_by_name.get(name).map(|&ix| &self.ops[ix])
    }

    /// All op kernels of `class` that can implement `spec`, in registry
    /// order — the candidate set of one non-conv selection node.
    pub fn op_candidates(&self, class: OpClass, spec: &OpSpec) -> Vec<&Arc<dyn OpKernel>> {
        self.ops.iter().filter(|k| k.descriptor().class == class && k.supports(spec)).collect()
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry").field("len", &self.prims.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbqp_dnn_tensor::Layout;

    #[test]
    fn library_has_more_than_70_primitives() {
        let lib = full_library();
        assert!(lib.len() >= 70, "only {} primitives", lib.len());
    }

    #[test]
    fn all_names_are_unique() {
        let _ = Registry::new(full_library()); // panics on duplicates
    }

    #[test]
    fn six_dense_families_are_represented() {
        let reg = Registry::new(full_library());
        for family in [
            Family::Sum2d,
            Family::Direct,
            Family::Im2,
            Family::Kn2,
            Family::Winograd,
            Family::Fft,
            Family::Sparse,
        ] {
            assert!(!reg.family(family).is_empty(), "family {family} missing");
        }
    }

    #[test]
    fn layout_diversity_spans_the_primary_layouts() {
        let reg = Registry::new(full_library());
        for layout in [Layout::Chw, Layout::Hwc, Layout::Hcw] {
            assert!(
                reg.primitives().iter().any(|p| p.descriptor().input_layout == layout),
                "no primitive consumes {layout}"
            );
        }
        // Blocked layouts appear too (vectorized direct kernels).
        assert!(reg.primitives().iter().any(|p| p.descriptor().input_layout == Layout::Chw4));
        assert!(reg.primitives().iter().any(|p| p.descriptor().input_layout == Layout::Chw8));
    }

    #[test]
    fn every_scenario_has_candidates_and_sum2d_is_universal() {
        let reg = Registry::new(full_library());
        let scenarios = [
            ConvScenario::new(3, 227, 227, 4, 11, 96).with_pad(0), // AlexNet conv1
            ConvScenario::new(96, 27, 27, 1, 5, 256),              // AlexNet conv2 (k=5)
            ConvScenario::new(256, 13, 13, 1, 3, 384),             // AlexNet conv3
            ConvScenario::new(192, 28, 28, 1, 1, 64),              // GoogleNet 1x1
        ];
        for s in scenarios {
            let cands = reg.candidates(&s);
            assert!(cands.len() >= 20, "{s}: only {} candidates", cands.len());
            assert!(cands.iter().any(|p| p.descriptor().name == "sum2d"));
        }
        // Strided conv1 excludes winograd/kn2/fft.
        let strided = ConvScenario::new(3, 227, 227, 4, 11, 96).with_pad(0);
        for p in reg.candidates(&strided) {
            assert!(
                !matches!(p.descriptor().family, Family::Winograd | Family::Kn2 | Family::Fft),
                "{} should not support strided conv",
                p.descriptor().name
            );
        }
    }

    #[test]
    fn mixed_precision_library_extends_f32_with_int8_candidates() {
        use pbqp_dnn_tensor::DType;
        let f32_only = full_library();
        let mixed = Registry::new(mixed_precision_library());
        assert!(mixed.len() > f32_only.len());
        assert!(f32_only.iter().all(|p| p.descriptor().input_dtype == DType::F32));
        let int8: Vec<_> =
            mixed.primitives().iter().filter(|p| p.descriptor().input_dtype == DType::I8).collect();
        assert_eq!(int8.len(), 3);
        for p in int8 {
            assert_eq!(p.descriptor().output_dtype, DType::I8);
            // Int8 candidates join the usual scenario enumeration.
            let s = ConvScenario::new(96, 27, 27, 1, 5, 256);
            assert!(p.supports(&s));
        }
        assert!(mixed.by_name("qint8_im2col_chw").is_some());
    }

    #[test]
    fn op_candidate_sets_span_layouts_and_precisions() {
        use pbqp_dnn_graph::LayerKind;
        let f32_reg = Registry::new(full_library());
        let mixed = Registry::new(mixed_precision_library());
        let spec = OpSpec::for_layer(&LayerKind::Relu, vec![(4, 8, 8)], (4, 8, 8)).unwrap();
        // f32 registries offer every layout (the old dummy space) and
        // nothing quantized.
        let f32_relu = f32_reg.op_candidates(OpClass::Relu, &spec);
        assert_eq!(f32_relu.len(), pbqp_dnn_tensor::Layout::ALL.len());
        assert!(f32_relu.iter().all(|k| k.descriptor().input_dtype == DType::F32));
        // The mixed registry adds int8 candidates for the activation ops…
        let mixed_relu = mixed.op_candidates(OpClass::Relu, &spec);
        assert_eq!(
            mixed_relu.len(),
            pbqp_dnn_tensor::Layout::ALL.len() + pbqp_dnn_tensor::Repr::I8_LAYOUTS.len()
        );
        assert!(mixed.op_by_name("qint8_relu_chw").is_some());
        assert!(mixed.op_by_name("qint8_maxpool_hwc").is_some());
        assert!(mixed.op_by_name("qint8_add_chw").is_some());
        // …but the f32-only parameterized classes stay single-precision.
        let fc_spec =
            OpSpec::for_layer(&LayerKind::FullyConnected { out: 10 }, vec![(4, 8, 8)], (10, 1, 1))
                .unwrap();
        let fc = mixed.op_candidates(OpClass::FullyConnected, &fc_spec);
        assert!(fc.iter().all(|k| k.descriptor().input_dtype == DType::F32));
        // Every class has at least the f32 candidates.
        for class in OpClass::ALL {
            assert!(
                !mixed.op_kernels().iter().all(|k| k.descriptor().class != class),
                "class {class} has no kernels"
            );
        }
    }

    #[test]
    fn winograd_candidates_match_kernel_radix() {
        let reg = Registry::new(full_library());
        let k3 = ConvScenario::new(64, 56, 56, 1, 3, 64);
        let k5 = ConvScenario::new(48, 28, 28, 1, 5, 64);
        let wino_k3 = reg
            .candidates(&k3)
            .into_iter()
            .filter(|p| p.descriptor().family == Family::Winograd)
            .count();
        let wino_k5 = reg
            .candidates(&k5)
            .into_iter()
            .filter(|p| p.descriptor().family == Family::Winograd)
            .count();
        assert!(wino_k3 >= 12, "k=3 winograd variants: {wino_k3}");
        assert!(wino_k5 >= 3, "k=5 winograd variants: {wino_k5}");
    }
}
