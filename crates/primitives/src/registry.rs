//! The primitive registry: assembles the full convolution library the
//! optimizer selects from.
//!
//! The paper's evaluation uses "a library of more than 70 DNN primitives"
//! spanning six families of convolution algorithm (§1, §3.1). This module
//! reproduces that inventory; [`full_library`] is the single source of
//! truth consumed by the cost model, the selector and the runtime.

use std::collections::HashMap;
use std::sync::Arc;

use pbqp_dnn_graph::ConvScenario;

use crate::{
    direct, fft_conv, im2, kn2, pointwise, quantized, reference, sparse, winograd, ConvAlgorithm,
    Family,
};

/// Builds the complete f32 primitive library (70+ routines).
pub fn full_library() -> Vec<Arc<dyn ConvAlgorithm>> {
    let mut prims: Vec<Box<dyn ConvAlgorithm>> = Vec::new();
    prims.push(Box::new(reference::Sum2d::new()));
    prims.extend(direct::all());
    prims.extend(im2::all());
    prims.extend(kn2::all());
    prims.extend(pointwise::all());
    prims.extend(winograd::all());
    prims.extend(fft_conv::all());
    prims.extend(sparse::all());
    prims.into_iter().map(Arc::from).collect()
}

/// [`full_library`] plus the int8 quantized primitives: the
/// mixed-precision selection space. Int8 candidates only enter the PBQP
/// instance when the caller opts into this library, so f32-only
/// deployments are byte-for-byte unaffected.
pub fn mixed_precision_library() -> Vec<Arc<dyn ConvAlgorithm>> {
    let mut prims = full_library();
    prims.extend(quantized::all().into_iter().map(Arc::from));
    prims
}

/// A name-indexed view over a primitive library.
///
/// # Example
///
/// ```
/// use pbqp_dnn_primitives::registry::{full_library, Registry};
///
/// let reg = Registry::new(full_library());
/// assert!(reg.by_name("sum2d").is_some());
/// assert!(reg.len() >= 70);
/// ```
#[derive(Clone)]
pub struct Registry {
    prims: Vec<Arc<dyn ConvAlgorithm>>,
    by_name: HashMap<String, usize>,
}

impl Registry {
    /// Indexes a library by primitive name.
    ///
    /// # Panics
    ///
    /// Panics if two primitives share a name.
    pub fn new(prims: Vec<Arc<dyn ConvAlgorithm>>) -> Registry {
        let mut by_name = HashMap::new();
        for (ix, p) in prims.iter().enumerate() {
            let prev = by_name.insert(p.descriptor().name.clone(), ix);
            assert!(prev.is_none(), "duplicate primitive name {}", p.descriptor().name);
        }
        Registry { prims, by_name }
    }

    /// The full library in registry order.
    pub fn primitives(&self) -> &[Arc<dyn ConvAlgorithm>] {
        &self.prims
    }

    /// Number of primitives.
    pub fn len(&self) -> usize {
        self.prims.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.prims.is_empty()
    }

    /// Looks up a primitive by name.
    pub fn by_name(&self, name: &str) -> Option<&Arc<dyn ConvAlgorithm>> {
        self.by_name.get(name).map(|&ix| &self.prims[ix])
    }

    /// All primitives that can implement `scenario`, in registry order.
    pub fn candidates(&self, scenario: &ConvScenario) -> Vec<&Arc<dyn ConvAlgorithm>> {
        self.prims.iter().filter(|p| p.supports(scenario)).collect()
    }

    /// All primitives of one family.
    pub fn family(&self, family: Family) -> Vec<&Arc<dyn ConvAlgorithm>> {
        self.prims.iter().filter(|p| p.descriptor().family == family).collect()
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry").field("len", &self.prims.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbqp_dnn_tensor::Layout;

    #[test]
    fn library_has_more_than_70_primitives() {
        let lib = full_library();
        assert!(lib.len() >= 70, "only {} primitives", lib.len());
    }

    #[test]
    fn all_names_are_unique() {
        let _ = Registry::new(full_library()); // panics on duplicates
    }

    #[test]
    fn six_dense_families_are_represented() {
        let reg = Registry::new(full_library());
        for family in [
            Family::Sum2d,
            Family::Direct,
            Family::Im2,
            Family::Kn2,
            Family::Winograd,
            Family::Fft,
            Family::Sparse,
        ] {
            assert!(!reg.family(family).is_empty(), "family {family} missing");
        }
    }

    #[test]
    fn layout_diversity_spans_the_primary_layouts() {
        let reg = Registry::new(full_library());
        for layout in [Layout::Chw, Layout::Hwc, Layout::Hcw] {
            assert!(
                reg.primitives().iter().any(|p| p.descriptor().input_layout == layout),
                "no primitive consumes {layout}"
            );
        }
        // Blocked layouts appear too (vectorized direct kernels).
        assert!(reg.primitives().iter().any(|p| p.descriptor().input_layout == Layout::Chw4));
        assert!(reg.primitives().iter().any(|p| p.descriptor().input_layout == Layout::Chw8));
    }

    #[test]
    fn every_scenario_has_candidates_and_sum2d_is_universal() {
        let reg = Registry::new(full_library());
        let scenarios = [
            ConvScenario::new(3, 227, 227, 4, 11, 96).with_pad(0), // AlexNet conv1
            ConvScenario::new(96, 27, 27, 1, 5, 256),              // AlexNet conv2 (k=5)
            ConvScenario::new(256, 13, 13, 1, 3, 384),             // AlexNet conv3
            ConvScenario::new(192, 28, 28, 1, 1, 64),              // GoogleNet 1x1
        ];
        for s in scenarios {
            let cands = reg.candidates(&s);
            assert!(cands.len() >= 20, "{s}: only {} candidates", cands.len());
            assert!(cands.iter().any(|p| p.descriptor().name == "sum2d"));
        }
        // Strided conv1 excludes winograd/kn2/fft.
        let strided = ConvScenario::new(3, 227, 227, 4, 11, 96).with_pad(0);
        for p in reg.candidates(&strided) {
            assert!(
                !matches!(p.descriptor().family, Family::Winograd | Family::Kn2 | Family::Fft),
                "{} should not support strided conv",
                p.descriptor().name
            );
        }
    }

    #[test]
    fn mixed_precision_library_extends_f32_with_int8_candidates() {
        use pbqp_dnn_tensor::DType;
        let f32_only = full_library();
        let mixed = Registry::new(mixed_precision_library());
        assert!(mixed.len() > f32_only.len());
        assert!(f32_only.iter().all(|p| p.descriptor().input_dtype == DType::F32));
        let int8: Vec<_> =
            mixed.primitives().iter().filter(|p| p.descriptor().input_dtype == DType::I8).collect();
        assert_eq!(int8.len(), 3);
        for p in int8 {
            assert_eq!(p.descriptor().output_dtype, DType::I8);
            // Int8 candidates join the usual scenario enumeration.
            let s = ConvScenario::new(96, 27, 27, 1, 5, 256);
            assert!(p.supports(&s));
        }
        assert!(mixed.by_name("qint8_im2col_chw").is_some());
    }

    #[test]
    fn winograd_candidates_match_kernel_radix() {
        let reg = Registry::new(full_library());
        let k3 = ConvScenario::new(64, 56, 56, 1, 3, 64);
        let k5 = ConvScenario::new(48, 28, 28, 1, 5, 64);
        let wino_k3 = reg
            .candidates(&k3)
            .into_iter()
            .filter(|p| p.descriptor().family == Family::Winograd)
            .count();
        let wino_k5 = reg
            .candidates(&k5)
            .into_iter()
            .filter(|p| p.descriptor().family == Family::Winograd)
            .count();
        assert!(wino_k3 >= 12, "k=3 winograd variants: {wino_k3}");
        assert!(wino_k5 >= 3, "k=5 winograd variants: {wino_k5}");
    }
}
