//! Shared helpers for the primitive implementations.

use pbqp_dnn_tensor::pool::Arena;
use pbqp_dnn_tensor::Tensor;

/// Zero-padded read of logical element `(c, y, x)` where `y`/`x` are
/// *padded-space* coordinates minus `pad` (i.e. may be negative-as-wrapped).
/// Callers pass `iy = oh*stride + i` and the pad separately.
#[inline]
pub(crate) fn padded_at(input: &Tensor, c: usize, iy: isize, ix: isize) -> f32 {
    let (_, h, w) = input.dims();
    if iy < 0 || ix < 0 || iy >= h as isize || ix >= w as isize {
        0.0
    } else {
        input.at(c, iy as usize, ix as usize)
    }
}

/// Copies one padded input row `[x0 .. x0+len)` of channel `c`, row `iy`
/// (already stride-adjusted, may be out of range) into `dst`, zero-filling
/// outside the image.
pub(crate) fn gather_row(input: &Tensor, c: usize, iy: isize, x0: isize, dst: &mut [f32]) {
    let (_, h, w) = input.dims();
    if iy < 0 || iy >= h as isize {
        dst.fill(0.0);
        return;
    }
    let iy = iy as usize;
    for (o, slot) in dst.iter_mut().enumerate() {
        let x = x0 + o as isize;
        *slot = if x < 0 || x >= w as isize { 0.0 } else { input.at(c, iy, x as usize) };
    }
}

/// Splits `0..m` into at most `threads` contiguous chunks and runs `f` on
/// each chunk in its own scoped thread (serially when `threads <= 1`).
#[allow(dead_code)] // kept for primitives that parallelize over index ranges
pub(crate) fn par_ranges<F>(m: usize, threads: usize, f: F)
where
    F: Fn(std::ops::Range<usize>) + Sync,
{
    let threads = threads.max(1).min(m.max(1));
    if threads <= 1 || m == 0 {
        f(0..m);
        return;
    }
    let per = m.div_ceil(threads);
    std::thread::scope(|scope| {
        let f = &f;
        let mut start = 0;
        while start < m {
            let end = (start + per).min(m);
            scope.spawn(move || f(start..end));
            start = end;
        }
    });
}

/// Splits a mutable slice into `chunks` of `chunk_len` and runs `f(i, chunk)`
/// on each in parallel. Used to parallelize over output channels when the
/// output layout stores channels contiguously (planar layouts).
pub(crate) fn par_chunks_mut<F>(data: &mut [f32], chunk_len: usize, threads: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    assert!(chunk_len > 0 && data.len().is_multiple_of(chunk_len));
    let threads = threads.max(1);
    if threads <= 1 {
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(i, chunk);
        }
        return;
    }
    let n_chunks = data.len() / chunk_len;
    let per = n_chunks.div_ceil(threads);
    std::thread::scope(|scope| {
        let f = &f;
        for (t, slab) in data.chunks_mut(per * chunk_len).enumerate() {
            scope.spawn(move || {
                for (i, chunk) in slab.chunks_mut(chunk_len).enumerate() {
                    f(t * per + i, chunk);
                }
            });
        }
    });
}

/// [`par_chunks_mut`] for kernels that need per-worker scratch: `f(i,
/// chunk, scratch)` receives a zero-filled scratch slice of
/// `scratch_len` elements. Serially (`threads <= 1`) the scratch is
/// carved from `arena` — no allocation after warmup; in parallel each
/// spawned worker owns a fresh local buffer (spawning already allocates).
pub(crate) fn par_chunks_scratch<T, F>(
    data: &mut [f32],
    chunk_len: usize,
    threads: usize,
    scratch_len: usize,
    arena: &mut Arena<T>,
    f: F,
) where
    T: Copy + Default + Send,
    F: Fn(usize, &mut [f32], &mut [T]) + Sync,
{
    assert!(chunk_len > 0 && data.len().is_multiple_of(chunk_len));
    let threads = threads.max(1);
    if threads <= 1 {
        let mark = arena.mark();
        let [scratch] = arena.take([scratch_len]);
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            scratch.fill(T::default());
            f(i, chunk, scratch);
        }
        arena.release(mark);
        return;
    }
    let n_chunks = data.len() / chunk_len;
    let per = n_chunks.div_ceil(threads);
    std::thread::scope(|scope| {
        let f = &f;
        for (t, slab) in data.chunks_mut(per * chunk_len).enumerate() {
            scope.spawn(move || {
                let mut scratch = vec![T::default(); scratch_len];
                for (i, chunk) in slab.chunks_mut(chunk_len).enumerate() {
                    scratch.fill(T::default());
                    f(t * per + i, chunk, &mut scratch);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbqp_dnn_tensor::Layout;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn padded_at_zero_fills_outside() {
        let t = Tensor::from_fn(1, 2, 2, Layout::Chw, |_, h, w| (h * 2 + w + 1) as f32);
        assert_eq!(padded_at(&t, 0, -1, 0), 0.0);
        assert_eq!(padded_at(&t, 0, 0, -1), 0.0);
        assert_eq!(padded_at(&t, 0, 2, 0), 0.0);
        assert_eq!(padded_at(&t, 0, 1, 1), 4.0);
    }

    #[test]
    fn gather_row_handles_borders() {
        let t = Tensor::from_fn(1, 1, 4, Layout::Chw, |_, _, w| w as f32 + 1.0);
        let mut buf = [9.0f32; 6];
        gather_row(&t, 0, 0, -1, &mut buf);
        assert_eq!(buf, [0.0, 1.0, 2.0, 3.0, 4.0, 0.0]);
        gather_row(&t, 0, 5, 0, &mut buf);
        assert_eq!(buf, [0.0; 6]);
    }

    #[test]
    fn par_ranges_covers_everything_once() {
        let count = AtomicUsize::new(0);
        par_ranges(17, 4, |r| {
            count.fetch_add(r.len(), Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 17);
        // Serial fallback.
        let count2 = AtomicUsize::new(0);
        par_ranges(3, 1, |r| {
            count2.fetch_add(r.len(), Ordering::SeqCst);
        });
        assert_eq!(count2.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn par_chunks_scratch_zeroes_between_chunks() {
        for threads in [1, 3] {
            let mut arena: Arena<f32> = Arena::new();
            let mut data = vec![0.0f32; 9];
            par_chunks_scratch(&mut data, 3, threads, 2, &mut arena, |i, chunk, scratch| {
                assert!(scratch.iter().all(|&v| v == 0.0), "stale scratch at chunk {i}");
                scratch[0] = 1.0 + i as f32;
                for v in chunk {
                    *v = scratch[0];
                }
            });
            assert_eq!(data, [1., 1., 1., 2., 2., 2., 3., 3., 3.]);
            assert_eq!(arena.in_use(), 0, "serial scratch must be released");
        }
    }

    #[test]
    fn par_chunks_mut_writes_disjointly() {
        let mut data = vec![0.0f32; 12];
        par_chunks_mut(&mut data, 3, 3, |i, chunk| {
            for v in chunk {
                *v = i as f32;
            }
        });
        assert_eq!(data, [0., 0., 0., 1., 1., 1., 2., 2., 2., 3., 3., 3.]);
    }
}
