//! The DNN convolution primitive library: 70+ routines in six algorithm
//! families, each a `{L_in, P, L_out}` triple (§3, §4 of the paper).
//!
//! Families:
//!
//! * [`sum2d`](crate::Family::Sum2d) — the textbook sum-of-single-channels
//!   loop nest, the paper's common speedup baseline;
//! * [`direct`](crate::Family::Direct) — six-deep loop nests with different
//!   orders, tilings, unrollings and channel-blocked vectorized variants;
//! * [`im2`](crate::Family::Im2) — im2col/im2row Toeplitz-matrix GEMM
//!   convolution;
//! * [`kn2`](crate::Family::Kn2) — the low-memory kn2row/kn2col accumulating
//!   GEMM family (Vasudevan et al.);
//! * [`winograd`](crate::Family::Winograd) — Winograd `F(2,3)`, `F(4,3)`,
//!   `F(6,3)`, `F(2,5)` in 1-D and 2-D forms with tile-batched variants;
//! * [`fft`](crate::Family::Fft) — FFT convolution computed as a sum of
//!   1-D row convolutions, plus a full 2-D variant;
//! * plus sparse extensions (§8): CSR kernels for im2col and kn2row.
//!
//! Every primitive implements [`ConvAlgorithm`]; the full library is built
//! by [`registry::full_library`], and each implementation is validated in
//! tests against [`reference::sum2d_reference`].
//!
//! Non-convolution operators are first-class too: every ReLU, pooling,
//! concat, add, LRN, fully-connected and softmax layer selects among
//! [`OpKernel`] candidates — f32 kernels at every layout plus int8
//! kernels for the activation-memory ops — with the same
//! `{R_in, P, R_out}` descriptor shape and exact workspace contracts as
//! the convolutions (see the [`ops`] module and [`registry::op_library`]).
//!
//! # Example
//!
//! ```
//! use pbqp_dnn_primitives::registry;
//!
//! let lib = registry::full_library();
//! assert!(lib.len() >= 70, "paper evaluates a library of 70+ primitives");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod algorithm;
mod descriptor;
mod direct;
mod error;
mod fft_conv;
mod im2;
mod kn2;
mod op;
pub mod ops;
mod pointwise;
mod qops;
mod quantized;
pub mod reference;
pub mod registry;
mod sparse;
mod util;
mod winograd;
mod workspace;

pub use algorithm::ConvAlgorithm;
pub use descriptor::{AlgoHint, Family, PrimitiveDescriptor};
pub use error::PrimitiveError;
pub use op::{OpDescriptor, OpInputs, OpKernel, OpSpec};
pub use workspace::{Workspace, WorkspaceReq};
