//! The `im2` convolution family: im2col/im2row Toeplitz-matrix construction
//! followed by a single GEMM call (§4; Jia's im2col approach).
//!
//! Variants differ in:
//! * patch-matrix orientation — **im2col** (patches as columns, planar CHW
//!   input, CHW output) vs **im2row** (patches as rows, interleaved HWC
//!   input, HWC output);
//! * the GEMM kernel used (naive / blocked / packed);
//! * whether the kernel operand is handed to GEMM transposed (`tn`/`nt` —
//!   the "A Bᵀ" variants visible in Figure 4 of the paper);
//! * fused output-layout transposition (`*_xout` variants);
//! * strip-mining, which bounds the Toeplitz workspace to a few image rows.

use pbqp_dnn_gemm::{transpose_into, Gemm, GemmKind, Trans};
use pbqp_dnn_graph::ConvScenario;
use pbqp_dnn_tensor::{KernelTensor, Layout, Tensor};

use crate::algorithm::check_args;
use crate::util::padded_at;
use crate::{ConvAlgorithm, Family, PrimitiveDescriptor, PrimitiveError, Workspace, WorkspaceReq};

/// Which matrix layout the Toeplitz construction produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Im2Shape {
    /// `(C·K²) × (OH·OW)` patch columns; CHW in, CHW out.
    Col,
    /// `(OH·OW) × (K²·C)` patch rows; HWC in, HWC out.
    Row,
    /// Like `Col` but the GEMM result is transposed into HWC output.
    ColToHwc,
    /// Like `Row` but the GEMM result is transposed into CHW output.
    RowToChw,
    /// Like `Col` but gathers from an HCW input.
    ColFromHcw,
    /// `Col` strip-mined over 8 output rows at a time.
    ColStrip8,
    /// `Row` strip-mined over 8 output rows at a time.
    RowStrip8,
}

/// One member of the im2 family.
pub(crate) struct Im2Conv {
    desc: PrimitiveDescriptor,
    shape: Im2Shape,
    gemm: GemmKind,
    /// Hand the kernel operand to GEMM transposed.
    kernel_transposed: bool,
}

impl Im2Conv {
    pub(crate) fn new(
        name: &str,
        shape: Im2Shape,
        gemm: GemmKind,
        kernel_transposed: bool,
    ) -> Im2Conv {
        use Im2Shape::*;
        let (lin, lout) = match shape {
            Col | ColStrip8 => (Layout::Chw, Layout::Chw),
            Row | RowStrip8 => (Layout::Hwc, Layout::Hwc),
            ColToHwc => (Layout::Chw, Layout::Hwc),
            RowToChw => (Layout::Hwc, Layout::Chw),
            ColFromHcw => (Layout::Hcw, Layout::Chw),
        };
        let efficiency = match gemm {
            GemmKind::Naive => 0.08,
            GemmKind::Blocked => 0.35,
            GemmKind::Packed => 0.75,
        } * if kernel_transposed { 1.02 } else { 1.0 };
        let calls = match shape {
            Im2Shape::ColStrip8 | Im2Shape::RowStrip8 => 8,
            _ => 1,
        };
        Im2Conv {
            desc: PrimitiveDescriptor::new(name, Family::Im2, lin, lout)
                .with_hint(crate::AlgoHint::Gemm { efficiency, calls }),
            shape,
            gemm,
            kernel_transposed,
        }
    }

    /// Builds the `(C·K²) × cols` patch matrix for output rows
    /// `[y0, y1)` (im2col order: patch element `(c, i, j)` is the row)
    /// into workspace-carved `b`.
    fn build_col(&self, input: &Tensor, s: &ConvScenario, y0: usize, y1: usize, b: &mut [f32]) {
        let cols = (y1 - y0) * s.out_w();
        self.build_col_at(input, s, y0, y1, b, cols, 0);
    }

    /// [`Im2Conv::build_col`] writing into a sub-block of a wider patch
    /// matrix: rows have `row_stride` columns and this item's block
    /// starts at column `col0` — how a fused batch stacks `B` items'
    /// patch matrices side by side for one wide GEMM.
    #[allow(clippy::too_many_arguments)]
    fn build_col_at(
        &self,
        input: &Tensor,
        s: &ConvScenario,
        y0: usize,
        y1: usize,
        b: &mut [f32],
        row_stride: usize,
        col0: usize,
    ) {
        let ow = s.out_w();
        for c in 0..s.c {
            for i in 0..s.k {
                for j in 0..s.k {
                    let r = (c * s.k + i) * s.k + j;
                    let base = r * row_stride + col0;
                    for y in y0..y1 {
                        let iy = (y * s.stride + i) as isize - s.pad as isize;
                        for x in 0..ow {
                            let ix = (x * s.stride + j) as isize - s.pad as isize;
                            b[base + (y - y0) * ow + x] = padded_at(input, c, iy, ix);
                        }
                    }
                }
            }
        }
    }

    /// Builds the `rows × (K²·C)` patch matrix for output rows `[y0, y1)`
    /// (im2row order: patch element `(i, j, c)` is the column, so HWC
    /// inputs stream contiguously) into workspace-carved `b`.
    fn build_row(&self, input: &Tensor, s: &ConvScenario, y0: usize, y1: usize, b: &mut [f32]) {
        let ow = s.out_w();
        let kkc = s.k * s.k * s.c;
        for y in y0..y1 {
            for x in 0..ow {
                let r = (y - y0) * ow + x;
                let dst = &mut b[r * kkc..(r + 1) * kkc];
                let mut o = 0;
                for i in 0..s.k {
                    let iy = (y * s.stride + i) as isize - s.pad as isize;
                    for j in 0..s.k {
                        let ix = (x * s.stride + j) as isize - s.pad as isize;
                        for c in 0..s.c {
                            dst[o] = padded_at(input, c, iy, ix);
                            o += 1;
                        }
                    }
                }
            }
        }
    }

    /// Kernel as an `M × (K²·C)` row-major matrix in `(i, j, c)` column
    /// order (the order [`Im2Conv::build_row`] produces), written into
    /// workspace-carved `a`.
    fn kernel_kkc(&self, kernel: &KernelTensor, s: &ConvScenario, a: &mut [f32]) {
        let kkc = s.k * s.k * s.c;
        for m in 0..s.m {
            let dst = &mut a[m * kkc..(m + 1) * kkc];
            let mut o = 0;
            for i in 0..s.k {
                for j in 0..s.k {
                    for c in 0..s.c {
                        dst[o] = kernel.at(m, c, i, j);
                        o += 1;
                    }
                }
            }
        }
    }

    /// `(b_elems, a_elems, c_elems)` scratch partition of one execute
    /// call: Toeplitz matrix, kernel re-layout/transpose, staging output.
    fn scratch_parts(&self, s: &ConvScenario) -> (usize, usize, usize) {
        let (oh, ow) = (s.out_h(), s.out_w());
        let ckk = s.c * s.k * s.k;
        match self.shape {
            Im2Shape::Col | Im2Shape::ColFromHcw => {
                (ckk * oh * ow, if self.kernel_transposed { s.m * ckk } else { 0 }, 0)
            }
            Im2Shape::ColToHwc => (ckk * oh * ow, 0, s.m * oh * ow),
            Im2Shape::Row | Im2Shape::RowToChw => {
                let a = s.m * ckk + if self.kernel_transposed { 0 } else { s.m * ckk };
                let c = if self.shape == Im2Shape::RowToChw { oh * ow * s.m } else { 0 };
                (oh * ow * ckk, a, c)
            }
            Im2Shape::ColStrip8 => (ckk * 8 * ow, 0, s.m * 8 * ow),
            Im2Shape::RowStrip8 => (8 * ow * ckk, s.m * ckk, 0),
        }
    }

    /// `(b_elems, a_elems, c_elems)` scratch partition of one **fused**
    /// batched execute over `batch` items: the stacked Toeplitz matrix,
    /// the (once-per-batch) kernel re-layout, and the wide GEMM staging
    /// output that is scattered back into per-item tensors.
    fn batch_scratch_parts(&self, s: &ConvScenario, batch: usize) -> (usize, usize, usize) {
        let p = s.out_h() * s.out_w();
        let ckk = s.c * s.k * s.k;
        match self.shape {
            Im2Shape::Col | Im2Shape::ColFromHcw | Im2Shape::ColToHwc => (
                ckk * p * batch,
                if self.kernel_transposed { s.m * ckk } else { 0 },
                s.m * p * batch,
            ),
            Im2Shape::Row | Im2Shape::RowToChw => {
                let a = s.m * ckk * if self.kernel_transposed { 1 } else { 2 };
                (p * batch * ckk, a, p * batch * s.m)
            }
            // Strip-mined variants keep their bounded workspace and loop
            // per item instead of fusing.
            Im2Shape::ColStrip8 | Im2Shape::RowStrip8 => self.scratch_parts(s),
        }
    }

    /// GEMM packing scratch of the one wide call a fused batch makes.
    fn batch_gemm_scratch(&self, s: &ConvScenario, gemm: &Gemm, batch: usize) -> usize {
        let p = s.out_h() * s.out_w();
        let ckk = s.c * s.k * s.k;
        let kt = self.kernel_transposed;
        match self.shape {
            Im2Shape::Col | Im2Shape::ColFromHcw | Im2Shape::ColToHwc => {
                let ta = if kt { Trans::T } else { Trans::N };
                gemm.scratch_elems(ta, Trans::N, s.m, p * batch, ckk)
            }
            Im2Shape::Row | Im2Shape::RowToChw => {
                let tb = if kt { Trans::T } else { Trans::N };
                gemm.scratch_elems(Trans::N, tb, p * batch, s.m, ckk)
            }
            Im2Shape::ColStrip8 | Im2Shape::RowStrip8 => self.gemm_scratch(s, gemm),
        }
    }

    /// Worst-case GEMM packing scratch across the calls one execute makes.
    fn gemm_scratch(&self, s: &ConvScenario, gemm: &Gemm) -> usize {
        let (oh, ow) = (s.out_h(), s.out_w());
        let ckk = s.c * s.k * s.k;
        let kt = self.kernel_transposed;
        match self.shape {
            Im2Shape::Col | Im2Shape::ColFromHcw => {
                let ta = if kt { Trans::T } else { Trans::N };
                gemm.scratch_elems(ta, Trans::N, s.m, oh * ow, ckk)
            }
            Im2Shape::ColToHwc => gemm.scratch_elems(Trans::N, Trans::N, s.m, oh * ow, ckk),
            Im2Shape::Row | Im2Shape::RowToChw => {
                let tb = if kt { Trans::T } else { Trans::N };
                gemm.scratch_elems(Trans::N, tb, oh * ow, s.m, ckk)
            }
            Im2Shape::ColStrip8 => gemm.scratch_elems(Trans::N, Trans::N, s.m, 8 * ow, ckk),
            Im2Shape::RowStrip8 => gemm.scratch_elems(Trans::N, Trans::T, 8 * ow, s.m, ckk),
        }
    }
}

impl ConvAlgorithm for Im2Conv {
    fn descriptor(&self) -> &PrimitiveDescriptor {
        &self.desc
    }

    fn supports(&self, _scenario: &ConvScenario) -> bool {
        true
    }

    fn workspace_elems(&self, s: &ConvScenario) -> usize {
        let ckk = s.c * s.k * s.k;
        match self.shape {
            Im2Shape::ColStrip8 | Im2Shape::RowStrip8 => ckk * 8 * s.out_w(),
            _ => ckk * s.out_h() * s.out_w(),
        }
    }

    fn workspace_req(&self, s: &ConvScenario) -> WorkspaceReq {
        let (b, a, c) = self.scratch_parts(s);
        let gemm = Gemm::new(self.gemm);
        WorkspaceReq::f32s(b + a + c + self.gemm_scratch(s, &gemm))
    }

    fn execute_into(
        &self,
        input: &Tensor,
        kernel: &KernelTensor,
        s: &ConvScenario,
        threads: usize,
        ws: &mut Workspace,
        out: &mut Tensor,
    ) -> Result<(), PrimitiveError> {
        check_args(&self.desc, true, input, kernel, s)?;
        let (oh, ow) = (s.out_h(), s.out_w());
        let ckk = s.c * s.k * s.k;
        let gemm = Gemm::new(self.gemm).threads(threads);
        out.reuse_as(s.m, oh, ow, self.desc.output_layout);

        let mark = ws.reals.mark();
        let (b_elems, a_elems, c_elems) = self.scratch_parts(s);
        let [b, a, c, gbuf] =
            ws.reals.take([b_elems, a_elems, c_elems, self.gemm_scratch(s, &gemm)]);

        match self.shape {
            Im2Shape::Col | Im2Shape::ColFromHcw => {
                self.build_col(input, s, 0, oh, b);
                // A is the kernel as M × (C·K²), exactly its storage order.
                if self.kernel_transposed {
                    transpose_into(kernel.data(), s.m, ckk, a);
                    gemm.run_with_scratch(
                        Trans::T,
                        Trans::N,
                        s.m,
                        oh * ow,
                        ckk,
                        a,
                        b,
                        0.0,
                        out.data_mut(),
                        gbuf,
                    );
                } else {
                    gemm.run_with_scratch(
                        Trans::N,
                        Trans::N,
                        s.m,
                        oh * ow,
                        ckk,
                        kernel.data(),
                        b,
                        0.0,
                        out.data_mut(),
                        gbuf,
                    );
                }
            }
            Im2Shape::ColToHwc => {
                self.build_col(input, s, 0, oh, b);
                gemm.run_with_scratch(
                    Trans::N,
                    Trans::N,
                    s.m,
                    oh * ow,
                    ckk,
                    kernel.data(),
                    b,
                    0.0,
                    c,
                    gbuf,
                );
                let data = out.data_mut();
                for m in 0..s.m {
                    for p in 0..oh * ow {
                        data[p * s.m + m] = c[m * oh * ow + p];
                    }
                }
            }
            Im2Shape::Row | Im2Shape::RowToChw => {
                self.build_row(input, s, 0, oh, b);
                // `a` holds the (i, j, c)-ordered kernel matrix, and — for
                // the untransposed form — its materialized transpose after.
                let (akkc, at) = a.split_at_mut(s.m * ckk);
                self.kernel_kkc(kernel, s, akkc);
                let dst = if self.shape == Im2Shape::Row { out.data_mut() } else { &mut *c };
                if self.kernel_transposed {
                    // B (rows×kkc) · Aᵀ, handing the kernel matrix to GEMM
                    // transposed — the "A Bᵀ" selection seen in Figure 4.
                    gemm.run_with_scratch(
                        Trans::N,
                        Trans::T,
                        oh * ow,
                        s.m,
                        ckk,
                        b,
                        akkc,
                        0.0,
                        dst,
                        gbuf,
                    );
                } else {
                    transpose_into(akkc, s.m, ckk, at);
                    gemm.run_with_scratch(
                        Trans::N,
                        Trans::N,
                        oh * ow,
                        s.m,
                        ckk,
                        b,
                        at,
                        0.0,
                        dst,
                        gbuf,
                    );
                }
                if self.shape == Im2Shape::RowToChw {
                    let data = out.data_mut();
                    for p in 0..oh * ow {
                        for m in 0..s.m {
                            data[m * oh * ow + p] = c[p * s.m + m];
                        }
                    }
                }
            }
            Im2Shape::ColStrip8 => {
                for y0 in (0..oh).step_by(8) {
                    let y1 = (y0 + 8).min(oh);
                    self.build_col(input, s, y0, y1, b);
                    let cols = (y1 - y0) * ow;
                    gemm.run_with_scratch(
                        Trans::N,
                        Trans::N,
                        s.m,
                        cols,
                        ckk,
                        kernel.data(),
                        b,
                        0.0,
                        c,
                        gbuf,
                    );
                    let data = out.data_mut();
                    for m in 0..s.m {
                        data[m * oh * ow + y0 * ow..m * oh * ow + y1 * ow]
                            .copy_from_slice(&c[m * cols..(m + 1) * cols]);
                    }
                }
            }
            Im2Shape::RowStrip8 => {
                self.kernel_kkc(kernel, s, a);
                for y0 in (0..oh).step_by(8) {
                    let y1 = (y0 + 8).min(oh);
                    self.build_row(input, s, y0, y1, b);
                    let rows = (y1 - y0) * ow;
                    let dst = &mut out.data_mut()[y0 * ow * s.m..y1 * ow * s.m];
                    gemm.run_with_scratch(Trans::N, Trans::T, rows, s.m, ckk, b, a, 0.0, dst, gbuf);
                }
            }
        }
        ws.reals.release(mark);
        Ok(())
    }

    fn fuses_batch(&self) -> bool {
        !matches!(self.shape, Im2Shape::ColStrip8 | Im2Shape::RowStrip8)
    }

    fn batch_workspace_req(&self, s: &ConvScenario, batch: usize) -> WorkspaceReq {
        if !self.fuses_batch() || batch <= 1 {
            return self.workspace_req(s);
        }
        let (b, a, c) = self.batch_scratch_parts(s, batch);
        let gemm = Gemm::new(self.gemm);
        WorkspaceReq::f32s(b + a + c + self.batch_gemm_scratch(s, &gemm, batch))
    }

    /// The fused batch path: all `batch` items' Toeplitz matrices are
    /// stacked into one wide patch matrix (columns for the im2col
    /// shapes, rows for im2row) and multiplied against the kernel in a
    /// **single GEMM** — the kernel re-layout/transpose happens once per
    /// batch instead of once per item, and the GEMM's packed panels are
    /// amortized over every item. Each item's slice of the wide result
    /// is bit-identical to its single-item [`Im2Conv::execute_into`]
    /// output: stacking only widens the GEMM's independent dimension and
    /// never reorders any element's k-accumulation.
    fn execute_batch_into<'a>(
        &self,
        batch: usize,
        input_of: &dyn Fn(usize) -> &'a Tensor,
        kernel: &KernelTensor,
        s: &ConvScenario,
        threads: usize,
        ws: &mut Workspace,
        outs: &mut [Tensor],
    ) -> Result<(), PrimitiveError> {
        crate::algorithm::check_batch_outs(&self.desc, batch, outs)?;
        if !self.fuses_batch() || batch <= 1 {
            for (i, out) in outs.iter_mut().enumerate() {
                ws.reset();
                self.execute_into(input_of(i), kernel, s, threads, ws, out)?;
            }
            return Ok(());
        }
        for i in 0..batch {
            check_args(&self.desc, true, input_of(i), kernel, s)?;
        }
        let (oh, ow) = (s.out_h(), s.out_w());
        let p = oh * ow;
        let ckk = s.c * s.k * s.k;
        let gemm = Gemm::new(self.gemm).threads(threads);
        for out in outs.iter_mut() {
            out.reuse_as(s.m, oh, ow, self.desc.output_layout);
        }

        let mark = ws.reals.mark();
        let (b_elems, a_elems, c_elems) = self.batch_scratch_parts(s, batch);
        let [b, a, c, gbuf] =
            ws.reals.take([b_elems, a_elems, c_elems, self.batch_gemm_scratch(s, &gemm, batch)]);

        match self.shape {
            Im2Shape::Col | Im2Shape::ColFromHcw | Im2Shape::ColToHwc => {
                // Items side by side: one (C·K²) × (B·OH·OW) matrix.
                let n = p * batch;
                for i in 0..batch {
                    self.build_col_at(input_of(i), s, 0, oh, b, n, i * p);
                }
                if self.kernel_transposed {
                    transpose_into(kernel.data(), s.m, ckk, a);
                    gemm.run_with_scratch(Trans::T, Trans::N, s.m, n, ckk, a, b, 0.0, c, gbuf);
                } else {
                    gemm.run_with_scratch(
                        Trans::N,
                        Trans::N,
                        s.m,
                        n,
                        ckk,
                        kernel.data(),
                        b,
                        0.0,
                        c,
                        gbuf,
                    );
                }
                for (i, out) in outs.iter_mut().enumerate() {
                    let data = out.data_mut();
                    if self.shape == Im2Shape::ColToHwc {
                        for m in 0..s.m {
                            let row = &c[m * n + i * p..m * n + (i + 1) * p];
                            for (pp, &v) in row.iter().enumerate() {
                                data[pp * s.m + m] = v;
                            }
                        }
                    } else {
                        for m in 0..s.m {
                            data[m * p..(m + 1) * p]
                                .copy_from_slice(&c[m * n + i * p..m * n + (i + 1) * p]);
                        }
                    }
                }
            }
            Im2Shape::Row | Im2Shape::RowToChw => {
                // Items stacked vertically: one (B·OH·OW) × (K²·C)
                // matrix — contiguous per item, so the single-item
                // builder writes each block in place.
                let rows = p * batch;
                for i in 0..batch {
                    self.build_row(input_of(i), s, 0, oh, &mut b[i * p * ckk..(i + 1) * p * ckk]);
                }
                let (akkc, at) = a.split_at_mut(s.m * ckk);
                self.kernel_kkc(kernel, s, akkc);
                if self.kernel_transposed {
                    gemm.run_with_scratch(
                        Trans::N,
                        Trans::T,
                        rows,
                        s.m,
                        ckk,
                        b,
                        akkc,
                        0.0,
                        c,
                        gbuf,
                    );
                } else {
                    transpose_into(akkc, s.m, ckk, at);
                    gemm.run_with_scratch(Trans::N, Trans::N, rows, s.m, ckk, b, at, 0.0, c, gbuf);
                }
                for (i, out) in outs.iter_mut().enumerate() {
                    let data = out.data_mut();
                    let blk = &c[i * p * s.m..(i + 1) * p * s.m];
                    if self.shape == Im2Shape::Row {
                        data.copy_from_slice(blk);
                    } else {
                        for pp in 0..p {
                            for m in 0..s.m {
                                data[m * p + pp] = blk[pp * s.m + m];
                            }
                        }
                    }
                }
            }
            Im2Shape::ColStrip8 | Im2Shape::RowStrip8 => unreachable!("strip variants do not fuse"),
        }
        ws.reals.release(mark);
        Ok(())
    }
}

/// All im2-family primitives for the registry.
pub(crate) fn all() -> Vec<Box<dyn ConvAlgorithm>> {
    use GemmKind::*;
    use Im2Shape::*;
    let mut prims: Vec<Box<dyn ConvAlgorithm>> = Vec::new();
    for (gk, gname) in [(Naive, "naive"), (Blocked, "blocked"), (Packed, "packed")] {
        for (kt, tname) in [(false, "nn"), (true, "kt")] {
            prims.push(Box::new(Im2Conv::new(&format!("im2col_{gname}_{tname}"), Col, gk, kt)));
            prims.push(Box::new(Im2Conv::new(&format!("im2row_{gname}_{tname}"), Row, gk, kt)));
        }
    }
    prims.push(Box::new(Im2Conv::new("im2col_packed_hwc_out", ColToHwc, Packed, false)));
    prims.push(Box::new(Im2Conv::new("im2row_packed_chw_out", RowToChw, Packed, false)));
    prims.push(Box::new(Im2Conv::new("im2col_packed_hcw_in", ColFromHcw, Packed, false)));
    prims.push(Box::new(Im2Conv::new("im2col_strip8_packed", ColStrip8, Packed, false)));
    prims.push(Box::new(Im2Conv::new("im2row_strip8_packed", RowStrip8, Packed, true)));
    prims
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::sum2d_reference;

    fn scenarios() -> Vec<ConvScenario> {
        vec![
            ConvScenario::new(3, 8, 9, 1, 3, 4),
            ConvScenario::new(5, 9, 7, 2, 3, 3),
            ConvScenario::new(2, 12, 12, 4, 5, 6).with_pad(0),
            ConvScenario::new(7, 6, 6, 1, 1, 5).with_pad(0),
            ConvScenario::new(4, 17, 11, 1, 5, 3),
        ]
    }

    #[test]
    fn every_im2_variant_matches_the_reference() {
        for prim in all() {
            for s in scenarios() {
                let lin = prim.descriptor().input_layout;
                let input = Tensor::random(s.c, s.h, s.w, Layout::Chw, 21).to_layout(lin);
                let kernel = KernelTensor::random(s.m, s.c, s.k, s.k, 22);
                let got = prim.execute(&input, &kernel, &s, 1).unwrap();
                assert_eq!(got.layout(), prim.descriptor().output_layout);
                let want = sum2d_reference(&input, &kernel, &s);
                let diff = got.max_abs_diff(&want).unwrap();
                assert!(diff < 2e-3, "{} on {s}: diff {diff}", prim.descriptor().name);
            }
        }
    }

    #[test]
    fn threads_do_not_change_results() {
        let s = ConvScenario::new(6, 13, 13, 1, 3, 8);
        for prim in all() {
            let lin = prim.descriptor().input_layout;
            let input = Tensor::random(s.c, s.h, s.w, Layout::Chw, 31).to_layout(lin);
            let kernel = KernelTensor::random(s.m, s.c, s.k, s.k, 32);
            let one = prim.execute(&input, &kernel, &s, 1).unwrap();
            let four = prim.execute(&input, &kernel, &s, 4).unwrap();
            let diff = one.max_abs_diff(&four).unwrap();
            assert!(diff < 1e-4, "{}: diff {diff}", prim.descriptor().name);
        }
    }

    #[test]
    fn workspace_reflects_strip_mining() {
        let s = ConvScenario::new(16, 64, 64, 1, 3, 16);
        let full = Im2Conv::new("x", Im2Shape::Col, GemmKind::Packed, false);
        let strip = Im2Conv::new("y", Im2Shape::ColStrip8, GemmKind::Packed, false);
        assert!(strip.workspace_elems(&s) * 4 < full.workspace_elems(&s));
    }

    #[test]
    fn family_size() {
        assert_eq!(all().len(), 17);
    }

    #[test]
    fn fused_batch_is_bit_identical_to_per_item_execution() {
        for prim in all() {
            for s in scenarios() {
                let lin = prim.descriptor().input_layout;
                let inputs: Vec<Tensor> = (0..5)
                    .map(|i| Tensor::random(s.c, s.h, s.w, Layout::Chw, 100 + i).to_layout(lin))
                    .collect();
                let kernel = KernelTensor::random(s.m, s.c, s.k, s.k, 23);
                let mut ws = Workspace::with_req(prim.batch_workspace_req(&s, inputs.len()));
                let mut outs: Vec<Tensor> = (0..inputs.len()).map(|_| Tensor::empty()).collect();
                let get = |i: usize| &inputs[i];
                prim.execute_batch_into(inputs.len(), &get, &kernel, &s, 1, &mut ws, &mut outs)
                    .unwrap();
                for (input, out) in inputs.iter().zip(&outs) {
                    let solo = prim.execute(input, &kernel, &s, 1).unwrap();
                    assert_eq!(
                        solo.data(),
                        out.data(),
                        "{} on {s}: fused batch diverged from per-item bits",
                        prim.descriptor().name
                    );
                }
            }
        }
    }

    #[test]
    fn batch_outs_len_mismatch_is_a_typed_error() {
        let prim = Im2Conv::new("x", Im2Shape::Col, GemmKind::Packed, false);
        let s = ConvScenario::new(3, 8, 9, 1, 3, 4);
        let input = Tensor::random(s.c, s.h, s.w, Layout::Chw, 1);
        let kernel = KernelTensor::random(s.m, s.c, s.k, s.k, 2);
        let mut ws = Workspace::new();
        let mut outs = vec![Tensor::empty(); 2];
        let get = |_: usize| &input;
        let err = prim.execute_batch_into(3, &get, &kernel, &s, 1, &mut ws, &mut outs).unwrap_err();
        assert!(matches!(err, PrimitiveError::ShapeMismatch { .. }));
    }
}
