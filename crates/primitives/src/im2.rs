//! The `im2` convolution family: im2col/im2row Toeplitz-matrix construction
//! followed by a single GEMM call (§4; Jia's im2col approach).
//!
//! Variants differ in:
//! * patch-matrix orientation — **im2col** (patches as columns, planar CHW
//!   input, CHW output) vs **im2row** (patches as rows, interleaved HWC
//!   input, HWC output);
//! * the GEMM kernel used (naive / blocked / packed);
//! * whether the kernel operand is handed to GEMM transposed (`tn`/`nt` —
//!   the "A Bᵀ" variants visible in Figure 4 of the paper);
//! * fused output-layout transposition (`*_xout` variants);
//! * strip-mining, which bounds the Toeplitz workspace to a few image rows.

use pbqp_dnn_gemm::{transpose, Gemm, GemmKind, Trans};
use pbqp_dnn_graph::ConvScenario;
use pbqp_dnn_tensor::{KernelTensor, Layout, Tensor};

use crate::algorithm::check_args;
use crate::util::padded_at;
use crate::{ConvAlgorithm, Family, PrimitiveDescriptor, PrimitiveError};

/// Which matrix layout the Toeplitz construction produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Im2Shape {
    /// `(C·K²) × (OH·OW)` patch columns; CHW in, CHW out.
    Col,
    /// `(OH·OW) × (K²·C)` patch rows; HWC in, HWC out.
    Row,
    /// Like `Col` but the GEMM result is transposed into HWC output.
    ColToHwc,
    /// Like `Row` but the GEMM result is transposed into CHW output.
    RowToChw,
    /// Like `Col` but gathers from an HCW input.
    ColFromHcw,
    /// `Col` strip-mined over 8 output rows at a time.
    ColStrip8,
    /// `Row` strip-mined over 8 output rows at a time.
    RowStrip8,
}

/// One member of the im2 family.
pub(crate) struct Im2Conv {
    desc: PrimitiveDescriptor,
    shape: Im2Shape,
    gemm: GemmKind,
    /// Hand the kernel operand to GEMM transposed.
    kernel_transposed: bool,
}

impl Im2Conv {
    pub(crate) fn new(
        name: &str,
        shape: Im2Shape,
        gemm: GemmKind,
        kernel_transposed: bool,
    ) -> Im2Conv {
        use Im2Shape::*;
        let (lin, lout) = match shape {
            Col | ColStrip8 => (Layout::Chw, Layout::Chw),
            Row | RowStrip8 => (Layout::Hwc, Layout::Hwc),
            ColToHwc => (Layout::Chw, Layout::Hwc),
            RowToChw => (Layout::Hwc, Layout::Chw),
            ColFromHcw => (Layout::Hcw, Layout::Chw),
        };
        let efficiency = match gemm {
            GemmKind::Naive => 0.08,
            GemmKind::Blocked => 0.35,
            GemmKind::Packed => 0.75,
        } * if kernel_transposed { 1.02 } else { 1.0 };
        let calls = match shape {
            Im2Shape::ColStrip8 | Im2Shape::RowStrip8 => 8,
            _ => 1,
        };
        Im2Conv {
            desc: PrimitiveDescriptor::new(name, Family::Im2, lin, lout)
                .with_hint(crate::AlgoHint::Gemm { efficiency, calls }),
            shape,
            gemm,
            kernel_transposed,
        }
    }

    /// Builds the `(C·K²) × cols` patch matrix for output rows
    /// `[y0, y1)` (im2col order: patch element `(c, i, j)` is the row).
    fn build_col(&self, input: &Tensor, s: &ConvScenario, y0: usize, y1: usize) -> Vec<f32> {
        let ow = s.out_w();
        let cols = (y1 - y0) * ow;
        let ckk = s.c * s.k * s.k;
        let mut b = vec![0.0f32; ckk * cols];
        for c in 0..s.c {
            for i in 0..s.k {
                for j in 0..s.k {
                    let r = (c * s.k + i) * s.k + j;
                    let row = &mut b[r * cols..(r + 1) * cols];
                    for y in y0..y1 {
                        let iy = (y * s.stride + i) as isize - s.pad as isize;
                        for x in 0..ow {
                            let ix = (x * s.stride + j) as isize - s.pad as isize;
                            row[(y - y0) * ow + x] = padded_at(input, c, iy, ix);
                        }
                    }
                }
            }
        }
        b
    }

    /// Builds the `rows × (K²·C)` patch matrix for output rows `[y0, y1)`
    /// (im2row order: patch element `(i, j, c)` is the column, so HWC
    /// inputs stream contiguously).
    fn build_row(&self, input: &Tensor, s: &ConvScenario, y0: usize, y1: usize) -> Vec<f32> {
        let ow = s.out_w();
        let kkc = s.k * s.k * s.c;
        let rows = (y1 - y0) * ow;
        let mut b = vec![0.0f32; rows * kkc];
        for y in y0..y1 {
            for x in 0..ow {
                let r = (y - y0) * ow + x;
                let dst = &mut b[r * kkc..(r + 1) * kkc];
                let mut o = 0;
                for i in 0..s.k {
                    let iy = (y * s.stride + i) as isize - s.pad as isize;
                    for j in 0..s.k {
                        let ix = (x * s.stride + j) as isize - s.pad as isize;
                        for c in 0..s.c {
                            dst[o] = padded_at(input, c, iy, ix);
                            o += 1;
                        }
                    }
                }
            }
        }
        b
    }

    /// Kernel as an `M × (K²·C)` row-major matrix in `(i, j, c)` column
    /// order (the order [`Im2Conv::build_row`] produces).
    fn kernel_kkc(&self, kernel: &KernelTensor, s: &ConvScenario) -> Vec<f32> {
        let kkc = s.k * s.k * s.c;
        let mut a = vec![0.0f32; s.m * kkc];
        for m in 0..s.m {
            let dst = &mut a[m * kkc..(m + 1) * kkc];
            let mut o = 0;
            for i in 0..s.k {
                for j in 0..s.k {
                    for c in 0..s.c {
                        dst[o] = kernel.at(m, c, i, j);
                        o += 1;
                    }
                }
            }
        }
        a
    }
}

impl ConvAlgorithm for Im2Conv {
    fn descriptor(&self) -> &PrimitiveDescriptor {
        &self.desc
    }

    fn supports(&self, _scenario: &ConvScenario) -> bool {
        true
    }

    fn workspace_elems(&self, s: &ConvScenario) -> usize {
        let ckk = s.c * s.k * s.k;
        match self.shape {
            Im2Shape::ColStrip8 | Im2Shape::RowStrip8 => ckk * 8 * s.out_w(),
            _ => ckk * s.out_h() * s.out_w(),
        }
    }

    fn execute(
        &self,
        input: &Tensor,
        kernel: &KernelTensor,
        s: &ConvScenario,
        threads: usize,
    ) -> Result<Tensor, PrimitiveError> {
        check_args(&self.desc, true, input, kernel, s)?;
        let (oh, ow) = (s.out_h(), s.out_w());
        let ckk = s.c * s.k * s.k;
        let gemm = Gemm::new(self.gemm).threads(threads);

        let out = match self.shape {
            Im2Shape::Col | Im2Shape::ColFromHcw => {
                let b = self.build_col(input, s, 0, oh);
                let mut out = Tensor::zeros(s.m, oh, ow, Layout::Chw);
                // A is the kernel as M × (C·K²), exactly its storage order.
                if self.kernel_transposed {
                    let at = transpose(kernel.data(), s.m, ckk);
                    gemm.run(Trans::T, Trans::N, s.m, oh * ow, ckk, &at, &b, 0.0, out.data_mut());
                } else {
                    gemm.run(
                        Trans::N,
                        Trans::N,
                        s.m,
                        oh * ow,
                        ckk,
                        kernel.data(),
                        &b,
                        0.0,
                        out.data_mut(),
                    );
                }
                out
            }
            Im2Shape::ColToHwc => {
                let b = self.build_col(input, s, 0, oh);
                let mut c = vec![0.0f32; s.m * oh * ow];
                gemm.run(Trans::N, Trans::N, s.m, oh * ow, ckk, kernel.data(), &b, 0.0, &mut c);
                let mut out = Tensor::zeros(s.m, oh, ow, Layout::Hwc);
                let data = out.data_mut();
                for m in 0..s.m {
                    for p in 0..oh * ow {
                        data[p * s.m + m] = c[m * oh * ow + p];
                    }
                }
                out
            }
            Im2Shape::Row | Im2Shape::RowToChw => {
                let b = self.build_row(input, s, 0, oh);
                let a = self.kernel_kkc(kernel, s);
                let mut c = vec![0.0f32; oh * ow * s.m];
                if self.kernel_transposed {
                    // B (rows×kkc) · Aᵀ, handing the kernel matrix to GEMM
                    // transposed — the "A Bᵀ" selection seen in Figure 4.
                    gemm.run(Trans::N, Trans::T, oh * ow, s.m, ckk, &b, &a, 0.0, &mut c);
                } else {
                    let at = transpose(&a, s.m, ckk);
                    gemm.run(Trans::N, Trans::N, oh * ow, s.m, ckk, &b, &at, 0.0, &mut c);
                }
                if self.shape == Im2Shape::Row {
                    Tensor::from_vec(s.m, oh, ow, Layout::Hwc, c)?
                } else {
                    let mut out = Tensor::zeros(s.m, oh, ow, Layout::Chw);
                    let data = out.data_mut();
                    for p in 0..oh * ow {
                        for m in 0..s.m {
                            data[m * oh * ow + p] = c[p * s.m + m];
                        }
                    }
                    out
                }
            }
            Im2Shape::ColStrip8 => {
                let mut out = Tensor::zeros(s.m, oh, ow, Layout::Chw);
                for y0 in (0..oh).step_by(8) {
                    let y1 = (y0 + 8).min(oh);
                    let b = self.build_col(input, s, y0, y1);
                    let cols = (y1 - y0) * ow;
                    let mut c = vec![0.0f32; s.m * cols];
                    gemm.run(Trans::N, Trans::N, s.m, cols, ckk, kernel.data(), &b, 0.0, &mut c);
                    let data = out.data_mut();
                    for m in 0..s.m {
                        data[m * oh * ow + y0 * ow..m * oh * ow + y1 * ow]
                            .copy_from_slice(&c[m * cols..(m + 1) * cols]);
                    }
                }
                out
            }
            Im2Shape::RowStrip8 => {
                let a = self.kernel_kkc(kernel, s);
                let mut out = Tensor::zeros(s.m, oh, ow, Layout::Hwc);
                for y0 in (0..oh).step_by(8) {
                    let y1 = (y0 + 8).min(oh);
                    let b = self.build_row(input, s, y0, y1);
                    let rows = (y1 - y0) * ow;
                    let dst = &mut out.data_mut()[y0 * ow * s.m..y1 * ow * s.m];
                    gemm.run(Trans::N, Trans::T, rows, s.m, ckk, &b, &a, 0.0, dst);
                }
                out
            }
        };
        Ok(out)
    }
}

/// All im2-family primitives for the registry.
pub(crate) fn all() -> Vec<Box<dyn ConvAlgorithm>> {
    use GemmKind::*;
    use Im2Shape::*;
    let mut prims: Vec<Box<dyn ConvAlgorithm>> = Vec::new();
    for (gk, gname) in [(Naive, "naive"), (Blocked, "blocked"), (Packed, "packed")] {
        for (kt, tname) in [(false, "nn"), (true, "kt")] {
            prims.push(Box::new(Im2Conv::new(&format!("im2col_{gname}_{tname}"), Col, gk, kt)));
            prims.push(Box::new(Im2Conv::new(&format!("im2row_{gname}_{tname}"), Row, gk, kt)));
        }
    }
    prims.push(Box::new(Im2Conv::new("im2col_packed_hwc_out", ColToHwc, Packed, false)));
    prims.push(Box::new(Im2Conv::new("im2row_packed_chw_out", RowToChw, Packed, false)));
    prims.push(Box::new(Im2Conv::new("im2col_packed_hcw_in", ColFromHcw, Packed, false)));
    prims.push(Box::new(Im2Conv::new("im2col_strip8_packed", ColStrip8, Packed, false)));
    prims.push(Box::new(Im2Conv::new("im2row_strip8_packed", RowStrip8, Packed, true)));
    prims
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::sum2d_reference;

    fn scenarios() -> Vec<ConvScenario> {
        vec![
            ConvScenario::new(3, 8, 9, 1, 3, 4),
            ConvScenario::new(5, 9, 7, 2, 3, 3),
            ConvScenario::new(2, 12, 12, 4, 5, 6).with_pad(0),
            ConvScenario::new(7, 6, 6, 1, 1, 5).with_pad(0),
            ConvScenario::new(4, 17, 11, 1, 5, 3),
        ]
    }

    #[test]
    fn every_im2_variant_matches_the_reference() {
        for prim in all() {
            for s in scenarios() {
                let lin = prim.descriptor().input_layout;
                let input = Tensor::random(s.c, s.h, s.w, Layout::Chw, 21).to_layout(lin);
                let kernel = KernelTensor::random(s.m, s.c, s.k, s.k, 22);
                let got = prim.execute(&input, &kernel, &s, 1).unwrap();
                assert_eq!(got.layout(), prim.descriptor().output_layout);
                let want = sum2d_reference(&input, &kernel, &s);
                let diff = got.max_abs_diff(&want).unwrap();
                assert!(diff < 2e-3, "{} on {s}: diff {diff}", prim.descriptor().name);
            }
        }
    }

    #[test]
    fn threads_do_not_change_results() {
        let s = ConvScenario::new(6, 13, 13, 1, 3, 8);
        for prim in all() {
            let lin = prim.descriptor().input_layout;
            let input = Tensor::random(s.c, s.h, s.w, Layout::Chw, 31).to_layout(lin);
            let kernel = KernelTensor::random(s.m, s.c, s.k, s.k, 32);
            let one = prim.execute(&input, &kernel, &s, 1).unwrap();
            let four = prim.execute(&input, &kernel, &s, 4).unwrap();
            let diff = one.max_abs_diff(&four).unwrap();
            assert!(diff < 1e-4, "{}: diff {diff}", prim.descriptor().name);
        }
    }

    #[test]
    fn workspace_reflects_strip_mining() {
        let s = ConvScenario::new(16, 64, 64, 1, 3, 16);
        let full = Im2Conv::new("x", Im2Shape::Col, GemmKind::Packed, false);
        let strip = Im2Conv::new("y", Im2Shape::ColStrip8, GemmKind::Packed, false);
        assert!(strip.workspace_elems(&s) * 4 < full.workspace_elems(&s));
    }

    #[test]
    fn family_size() {
        assert_eq!(all().len(), 17);
    }
}
