//! The non-convolution operator kernel API — [`ConvAlgorithm`]'s sibling
//! for every other layer kind.
//!
//! The paper models non-conv layers as zero-cost dummy nodes that accept
//! any layout (§5.2). This module retires that shape: every operator is
//! implemented by concrete [`OpKernel`]s, each a `{R_in, P, R_out}`
//! triple over the full representation (layout × dtype) space, so a ReLU
//! or a pooling layer is selected by the PBQP solver exactly like a
//! convolution — and an int8 island can span conv → relu → pool → conv
//! without interior quantize/dequantize edges.
//!
//! Like the conv primitives, op kernels have exact scratch contracts:
//! [`OpKernel::workspace_req`] declares what [`OpKernel::execute_into`]
//! carves from the caller's [`Workspace`], keeping the zero-allocation
//! steady state intact.
//!
//! [`ConvAlgorithm`]: crate::ConvAlgorithm

use std::fmt;

use pbqp_dnn_graph::{LayerKind, OpClass, PoolKind};
use pbqp_dnn_tensor::{DType, Layout, Repr, Tensor};

use crate::{PrimitiveError, Workspace, WorkspaceReq};

/// One operator instance: the [`OpClass`] plus the geometry an
/// [`OpKernel`] needs to execute and a cost source needs to price — the
/// non-conv analogue of [`pbqp_dnn_graph::ConvScenario`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpSpec {
    /// The operator class.
    pub class: OpClass,
    /// Per-operand input dimensions `(c, h, w)`, in predecessor order.
    pub inputs: Vec<(usize, usize, usize)>,
    /// Output dimensions `(c, h, w)`.
    pub out: (usize, usize, usize),
    /// Pooling window `(k, stride, pad)`; `(1, 1, 0)` for non-pool ops.
    pub window: (usize, usize, usize),
}

impl OpSpec {
    /// Builds the spec for a non-conv layer given its operand and output
    /// dimensions. Returns `None` for [`LayerKind::Input`] and
    /// [`LayerKind::Conv`], which are not operator nodes.
    pub fn for_layer(
        kind: &LayerKind,
        inputs: Vec<(usize, usize, usize)>,
        out: (usize, usize, usize),
    ) -> Option<OpSpec> {
        let (class, window) = match kind {
            LayerKind::Input { .. } | LayerKind::Conv(_) => return None,
            LayerKind::Pool { kind: PoolKind::Max, k, stride, pad } => {
                (OpClass::MaxPool, (*k, *stride, *pad))
            }
            LayerKind::Pool { kind: PoolKind::Avg, k, stride, pad } => {
                (OpClass::AvgPool, (*k, *stride, *pad))
            }
            LayerKind::Relu => (OpClass::Relu, (1, 1, 0)),
            LayerKind::Lrn => (OpClass::Lrn, (1, 1, 0)),
            LayerKind::Dropout => (OpClass::Dropout, (1, 1, 0)),
            LayerKind::FullyConnected { .. } => (OpClass::FullyConnected, (1, 1, 0)),
            LayerKind::Concat => (OpClass::Concat, (1, 1, 0)),
            LayerKind::Add => (OpClass::Add, (1, 1, 0)),
            LayerKind::Softmax => (OpClass::Softmax, (1, 1, 0)),
        };
        Some(OpSpec { class, inputs, out, window })
    }

    /// Total logical input elements across all operands.
    pub fn in_elems(&self) -> usize {
        self.inputs.iter().map(|&(c, h, w)| c * h * w).sum()
    }

    /// Logical output elements.
    pub fn out_elems(&self) -> usize {
        let (c, h, w) = self.out;
        c * h * w
    }
}

impl fmt::Display for OpSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (c, h, w) = self.out;
        write!(f, "{} -> {c}x{h}x{w}", self.class)?;
        if self.class == OpClass::MaxPool || self.class == OpClass::AvgPool {
            let (k, s, p) = self.window;
            write!(f, " ({k}x{k}/{s} p{p})")?;
        }
        Ok(())
    }
}

/// Static description of an op kernel: the `{R_in, P, R_out}` triple over
/// representations, mirroring
/// [`PrimitiveDescriptor`](crate::PrimitiveDescriptor) for convolutions.
#[derive(Debug, Clone, PartialEq)]
pub struct OpDescriptor {
    /// Unique kernel name, e.g. `"relu_hwc"` or `"qint8_maxpool_chw"`.
    pub name: String,
    /// The operator class the kernel implements.
    pub class: OpClass,
    /// Layout consumed on every operand.
    pub input_layout: Layout,
    /// Layout produced.
    pub output_layout: Layout,
    /// Element type consumed.
    pub input_dtype: DType,
    /// Element type produced.
    pub output_dtype: DType,
    /// Provenance tag (which "library" the routine belongs to).
    pub library: &'static str,
}

impl OpDescriptor {
    /// Creates an f32 descriptor operating in-place in one layout.
    pub fn new(name: impl Into<String>, class: OpClass, layout: Layout) -> OpDescriptor {
        OpDescriptor {
            name: name.into(),
            class,
            input_layout: layout,
            output_layout: layout,
            input_dtype: DType::F32,
            output_dtype: DType::F32,
            library: "pbqp-dnn",
        }
    }

    /// Sets the input and output element types (defaults are `f32`).
    pub fn with_dtypes(mut self, input: DType, output: DType) -> OpDescriptor {
        self.input_dtype = input;
        self.output_dtype = output;
        self
    }

    /// Sets the provenance library tag.
    pub fn with_library(mut self, library: &'static str) -> OpDescriptor {
        self.library = library;
        self
    }

    /// The representation consumed: `{L_in, dtype_in}`.
    pub fn input_repr(&self) -> Repr {
        Repr { layout: self.input_layout, dtype: self.input_dtype }
    }

    /// The representation produced: `{L_out, dtype_out}`.
    pub fn output_repr(&self) -> Repr {
        Repr { layout: self.output_layout, dtype: self.output_dtype }
    }
}

impl fmt::Display for OpDescriptor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{{{}, {}, {}}} ({})",
            self.input_repr(),
            self.name,
            self.output_repr(),
            self.class
        )
    }
}

/// The operands of one op-kernel execution, without forcing the caller to
/// materialize a `Vec<&Tensor>`: the executor resolves operands out of
/// pooled activation slots through a stack closure, keeping the
/// steady-state serving loop allocation-free; plain callers wrap a slice.
#[derive(Clone, Copy)]
pub enum OpInputs<'a> {
    /// Operands as a plain slice.
    Slice(&'a [&'a Tensor]),
    /// `(operand count, resolver)` — operands resolved through a callback.
    Resolver(usize, &'a (dyn Fn(usize) -> &'a Tensor + 'a)),
}

impl<'a> OpInputs<'a> {
    /// Number of operands.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        match self {
            OpInputs::Slice(s) => s.len(),
            OpInputs::Resolver(n, _) => *n,
        }
    }

    /// The `i`-th operand.
    pub fn at(&self, i: usize) -> &'a Tensor {
        match self {
            OpInputs::Slice(s) => s[i],
            OpInputs::Resolver(_, get) => get(i),
        }
    }
}

impl<'a> From<&'a [&'a Tensor]> for OpInputs<'a> {
    fn from(s: &'a [&'a Tensor]) -> Self {
        OpInputs::Slice(s)
    }
}

/// A non-convolution operator kernel: one concrete routine with fixed
/// input and output representations, selected per node by the optimizer
/// exactly like a [`ConvAlgorithm`](crate::ConvAlgorithm) is for convs.
///
/// Implementations are stateless and thread-safe. Parameterized operators
/// (fully-connected) receive their weight matrix through `aux`; every
/// other class ignores it.
///
/// # Example
///
/// ```
/// use pbqp_dnn_graph::{LayerKind, OpClass};
/// use pbqp_dnn_primitives::registry::{full_library, Registry};
/// use pbqp_dnn_primitives::{OpInputs, OpSpec, Workspace};
/// use pbqp_dnn_tensor::{Layout, Repr, Tensor};
///
/// let reg = Registry::new(full_library());
/// // Candidate sets are per operator class; each candidate is a
/// // {R_in, P, R_out} triple like a convolution primitive.
/// let spec = OpSpec::for_layer(&LayerKind::Relu, vec![(2, 4, 4)], (2, 4, 4)).unwrap();
/// let relu = reg
///     .op_candidates(OpClass::Relu, &spec)
///     .into_iter()
///     .find(|k| k.descriptor().input_repr() == Repr::f32(Layout::Chw))
///     .unwrap();
///
/// let input = Tensor::from_fn(2, 4, 4, Layout::Chw, |c, h, w| (c + h + w) as f32 - 3.0);
/// let operands = [&input];
/// let mut ws = Workspace::with_req(relu.workspace_req(&spec));
/// let mut out = Tensor::empty();
/// relu.execute_into(OpInputs::Slice(&operands), None, &spec, &mut ws, &mut out).unwrap();
/// assert_eq!(out.at(0, 0, 0), 0.0); // negatives clamped
/// ```
pub trait OpKernel: Send + Sync {
    /// Static description: name, class, `{R_in, P, R_out}`.
    fn descriptor(&self) -> &OpDescriptor;

    /// Whether this kernel can implement the spec (class match plus any
    /// geometry constraints).
    fn supports(&self, spec: &OpSpec) -> bool {
        spec.class == self.descriptor().class
    }

    /// Exact scratch [`OpKernel::execute_into`] carves for this spec, per
    /// arena — the same contract conv primitives give via
    /// [`ConvAlgorithm::workspace_req`](crate::ConvAlgorithm::workspace_req).
    fn workspace_req(&self, spec: &OpSpec) -> WorkspaceReq {
        let _ = spec;
        WorkspaceReq::ZERO
    }

    /// Runs the operator out of a caller workspace into a recycled output
    /// tensor — the zero-allocation steady-state path.
    ///
    /// Every operand must be in `descriptor().input_repr()` with the
    /// dimensions `spec.inputs` declares; the output is produced in
    /// `descriptor().output_repr()` with dimensions `spec.out`. `aux`
    /// carries the fully-connected weight matrix and is `None` for every
    /// other class.
    ///
    /// # Errors
    ///
    /// Returns [`PrimitiveError::UnsupportedOp`] when `supports` is
    /// false or a parameterized op is missing its `aux` weights,
    /// [`PrimitiveError::WrongInputLayout`] /
    /// [`PrimitiveError::WrongInputDType`] /
    /// [`PrimitiveError::ShapeMismatch`] on inconsistent operands.
    fn execute_into(
        &self,
        inputs: OpInputs<'_>,
        aux: Option<&[f32]>,
        spec: &OpSpec,
        ws: &mut Workspace,
        out: &mut Tensor,
    ) -> Result<(), PrimitiveError>;

    /// Allocating convenience wrapper around [`OpKernel::execute_into`].
    ///
    /// # Errors
    ///
    /// Same contract as [`OpKernel::execute_into`].
    fn execute(
        &self,
        inputs: OpInputs<'_>,
        aux: Option<&[f32]>,
        spec: &OpSpec,
    ) -> Result<Tensor, PrimitiveError> {
        let mut ws = Workspace::new();
        let mut out = Tensor::empty_dtype(self.descriptor().output_dtype);
        self.execute_into(inputs, aux, spec, &mut ws, &mut out)?;
        Ok(out)
    }
}

/// Validates the common preconditions shared by every op kernel.
pub(crate) fn check_op_args(
    desc: &OpDescriptor,
    supported: bool,
    inputs: &OpInputs<'_>,
    spec: &OpSpec,
) -> Result<(), PrimitiveError> {
    if !supported {
        return Err(PrimitiveError::UnsupportedOp {
            kernel: desc.name.clone(),
            detail: format!("spec {spec} unsupported"),
        });
    }
    if inputs.len() != spec.inputs.len() {
        return Err(PrimitiveError::ShapeMismatch {
            primitive: desc.name.clone(),
            detail: format!(
                "{} operands supplied, spec declares {}",
                inputs.len(),
                spec.inputs.len()
            ),
        });
    }
    for i in 0..inputs.len() {
        let t = inputs.at(i);
        if t.layout() != desc.input_layout {
            return Err(PrimitiveError::WrongInputLayout {
                primitive: desc.name.clone(),
                expected: desc.input_layout,
                found: t.layout(),
            });
        }
        if t.dtype() != desc.input_dtype {
            return Err(PrimitiveError::WrongInputDType {
                primitive: desc.name.clone(),
                expected: desc.input_dtype,
                found: t.dtype(),
            });
        }
        if t.dims() != spec.inputs[i] {
            return Err(PrimitiveError::ShapeMismatch {
                primitive: desc.name.clone(),
                detail: format!("operand {i} dims {:?} != spec {:?}", t.dims(), spec.inputs[i]),
            });
        }
    }
    Ok(())
}
