//! The sum-of-single-channels reference convolution (`SUM2D`).
//!
//! This is the paper's common baseline: the textbook loop nest with order
//! `M × C × H × W × K × K`, summing one single-channel 2-D convolution per
//! input channel. It doubles as the correctness oracle every other
//! primitive is validated against.

use pbqp_dnn_graph::ConvScenario;
use pbqp_dnn_tensor::{KernelTensor, Layout, Tensor};

use crate::algorithm::check_args;
use crate::util::{padded_at, par_chunks_mut};
use crate::{ConvAlgorithm, Family, PrimitiveDescriptor, PrimitiveError, Workspace};

/// Layout-agnostic reference convolution producing CHW output.
///
/// Reads through logical accessors, so `input` may be in any layout. Slow
/// by design; used as the oracle in tests and by the runtime's verifier.
pub fn sum2d_reference(input: &Tensor, kernel: &KernelTensor, s: &ConvScenario) -> Tensor {
    let (oh, ow) = (s.out_h(), s.out_w());
    let mut out = Tensor::zeros(s.m, oh, ow, Layout::Chw);
    for m in 0..s.m {
        for c in 0..s.c {
            for y in 0..oh {
                for x in 0..ow {
                    let mut acc = out.at(m, y, x);
                    for i in 0..s.k {
                        for j in 0..s.k {
                            let iy = (y * s.stride + i) as isize - s.pad as isize;
                            let ix = (x * s.stride + j) as isize - s.pad as isize;
                            acc += padded_at(input, c, iy, ix) * kernel.at(m, c, i, j);
                        }
                    }
                    out.set(m, y, x, acc);
                }
            }
        }
    }
    out
}

/// The `SUM2D` primitive: `{CHW, sum2d, CHW}`.
#[derive(Debug)]
pub struct Sum2d {
    desc: PrimitiveDescriptor,
}

impl Sum2d {
    /// Creates the baseline primitive.
    pub fn new() -> Sum2d {
        Sum2d { desc: PrimitiveDescriptor::new("sum2d", Family::Sum2d, Layout::Chw, Layout::Chw) }
    }
}

impl Default for Sum2d {
    fn default() -> Self {
        Sum2d::new()
    }
}

impl ConvAlgorithm for Sum2d {
    fn descriptor(&self) -> &PrimitiveDescriptor {
        &self.desc
    }

    fn supports(&self, _scenario: &ConvScenario) -> bool {
        true
    }

    fn workspace_elems(&self, _scenario: &ConvScenario) -> usize {
        0
    }

    fn execute_into(
        &self,
        input: &Tensor,
        kernel: &KernelTensor,
        s: &ConvScenario,
        threads: usize,
        _ws: &mut Workspace,
        out: &mut Tensor,
    ) -> Result<(), PrimitiveError> {
        check_args(&self.desc, true, input, kernel, s)?;
        let (oh, ow) = (s.out_h(), s.out_w());
        out.reuse_as(s.m, oh, ow, Layout::Chw);
        // The loop nest accumulates into the output in place.
        out.data_mut().fill(0.0);
        let plane = oh * ow;
        par_chunks_mut(out.data_mut(), plane, threads, |m, out_plane| {
            for c in 0..s.c {
                for y in 0..oh {
                    for x in 0..ow {
                        let mut acc = out_plane[y * ow + x];
                        for i in 0..s.k {
                            for j in 0..s.k {
                                let iy = (y * s.stride + i) as isize - s.pad as isize;
                                let ix = (x * s.stride + j) as isize - s.pad as isize;
                                acc += padded_at(input, c, iy, ix) * kernel.at(m, c, i, j);
                            }
                        }
                        out_plane[y * ow + x] = acc;
                    }
                }
            }
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_matches_reference_and_threads_agree() {
        let s = ConvScenario::new(3, 9, 8, 1, 3, 4);
        let input = Tensor::random(s.c, s.h, s.w, Layout::Chw, 1);
        let kernel = KernelTensor::random(s.m, s.c, s.k, s.k, 2);
        let prim = Sum2d::new();
        let single = prim.execute(&input, &kernel, &s, 1).unwrap();
        let multi = prim.execute(&input, &kernel, &s, 3).unwrap();
        let oracle = sum2d_reference(&input, &kernel, &s);
        assert!(single.allclose(&oracle, 1e-5).unwrap());
        assert_eq!(single.data(), multi.data());
    }

    #[test]
    fn strided_padded_scenarios() {
        for s in [
            ConvScenario::new(2, 11, 11, 4, 11, 3).with_pad(0),
            ConvScenario::new(4, 13, 13, 2, 5, 2),
            ConvScenario::new(1, 6, 6, 1, 1, 2).with_pad(0),
        ] {
            let input = Tensor::random(s.c, s.h, s.w, Layout::Chw, 7);
            let kernel = KernelTensor::random(s.m, s.c, s.k, s.k, 8);
            let got = Sum2d::new().execute(&input, &kernel, &s, 2).unwrap();
            let want = sum2d_reference(&input, &kernel, &s);
            assert!(got.allclose(&want, 1e-5).unwrap(), "{s}");
        }
    }

    #[test]
    fn rejects_wrong_layout() {
        let s = ConvScenario::new(2, 4, 4, 1, 3, 2);
        let input = Tensor::zeros(2, 4, 4, Layout::Hwc);
        let kernel = KernelTensor::zeros(2, 2, 3, 3);
        let err = Sum2d::new().execute(&input, &kernel, &s, 1).unwrap_err();
        assert!(matches!(err, PrimitiveError::WrongInputLayout { .. }));
    }

    #[test]
    fn rejects_wrong_kernel_shape() {
        let s = ConvScenario::new(2, 4, 4, 1, 3, 2);
        let input = Tensor::zeros(2, 4, 4, Layout::Chw);
        let kernel = KernelTensor::zeros(2, 2, 5, 5);
        let err = Sum2d::new().execute(&input, &kernel, &s, 1).unwrap_err();
        assert!(matches!(err, PrimitiveError::ShapeMismatch { .. }));
    }
}
