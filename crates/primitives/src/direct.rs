//! The direct-loop convolution family: six-deep loop nests with different
//! orders, tilings, unrollings and channel-blocked vectorized variants
//! (§4 of the paper).

use pbqp_dnn_graph::ConvScenario;
use pbqp_dnn_tensor::{KernelTensor, Layout, Tensor};

use crate::algorithm::check_args;
use crate::util::{padded_at, par_chunks_mut, par_chunks_scratch};
use crate::{ConvAlgorithm, Family, PrimitiveDescriptor, PrimitiveError, Workspace, WorkspaceReq};

/// Loop-nest flavour of a [`DirectConv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DirectVariant {
    /// `M, H, W, C, K, K` over planar CHW (output-pixel stationary).
    Mhwckk,
    /// `C, M, H, W, K, K` over planar CHW (input-channel stationary).
    Cmhwkk,
    /// `M, H, W, K, K, C` over interleaved HWC (channel-innermost).
    MhwkkcHwc,
    /// `H, W, K, K, C, M` over HWC with a per-pixel M accumulator.
    HwkkcmHwc,
    /// `M, H, C, W, K, K` over HCW.
    MhcwHcw,
    /// `Mhwckk` with square spatial tiling of the given width.
    Tiled(usize),
    /// `Mhwckk` with the `kw` loop unrolled by 4.
    Unroll4,
    /// Channel-blocked CHWc4 kernel, 4 output lanes per iteration.
    Blocked4,
    /// Channel-blocked CHWc8 kernel, 8 output lanes per iteration.
    Blocked8,
    /// Strided-only specialization with hoisted base offsets.
    Strided,
    /// Reads CHW, fuses the layout transform by writing HWC directly.
    FusedChwHwc,
    /// `W, H, C, M` loop nest over WHC.
    WhcNest,
    /// HWC with an 8-wide channel-chunked inner accumulator.
    HwcVec8,
}

/// One member of the direct-loop family.
pub(crate) struct DirectConv {
    desc: PrimitiveDescriptor,
    variant: DirectVariant,
}

impl DirectConv {
    pub(crate) fn new(name: &str, variant: DirectVariant) -> DirectConv {
        use DirectVariant::*;
        let (lin, lout, vf) = match variant {
            Mhwckk | Cmhwkk | Tiled(_) | Unroll4 | Strided => (Layout::Chw, Layout::Chw, 1),
            MhwkkcHwc | HwkkcmHwc => (Layout::Hwc, Layout::Hwc, 1),
            MhcwHcw => (Layout::Hcw, Layout::Hcw, 1),
            Blocked4 => (Layout::Chw4, Layout::Chw4, 4),
            Blocked8 => (Layout::Chw8, Layout::Chw8, 8),
            FusedChwHwc => (Layout::Chw, Layout::Hwc, 1),
            WhcNest => (Layout::Whc, Layout::Whc, 1),
            HwcVec8 => (Layout::Hwc, Layout::Hwc, 8),
        };
        let quality = match variant {
            Mhwckk => 0.30,
            Cmhwkk => 0.27,
            MhwkkcHwc => 0.32,
            HwkkcmHwc => 0.28,
            MhcwHcw => 0.26,
            Tiled(8) => 0.34,
            Tiled(16) => 0.36,
            Tiled(_) => 0.34,
            Unroll4 => 0.33,
            // Blocked variants run on vector lanes; quality is per-lane.
            Blocked4 | Blocked8 => 0.40,
            Strided => 0.42,
            FusedChwHwc => 0.29,
            WhcNest => 0.24,
            HwcVec8 => 0.35,
        };
        DirectConv {
            desc: PrimitiveDescriptor::new(name, Family::Direct, lin, lout)
                .with_vector_factor(vf)
                .with_hint(crate::AlgoHint::Loops { quality }),
            variant,
        }
    }
}

impl ConvAlgorithm for DirectConv {
    fn descriptor(&self) -> &PrimitiveDescriptor {
        &self.desc
    }

    fn supports(&self, s: &ConvScenario) -> bool {
        match self.variant {
            DirectVariant::Strided => s.stride > 1,
            _ => true,
        }
    }

    fn workspace_elems(&self, s: &ConvScenario) -> usize {
        match self.variant {
            DirectVariant::HwkkcmHwc => s.m,
            DirectVariant::HwcVec8 => 8,
            _ => 0,
        }
    }

    fn workspace_req(&self, s: &ConvScenario) -> WorkspaceReq {
        match self.variant {
            DirectVariant::HwkkcmHwc => WorkspaceReq::f32s(s.m),
            DirectVariant::Blocked4 => WorkspaceReq::f32s(4),
            DirectVariant::Blocked8 => WorkspaceReq::f32s(8),
            _ => WorkspaceReq::ZERO,
        }
    }

    fn execute_into(
        &self,
        input: &Tensor,
        kernel: &KernelTensor,
        s: &ConvScenario,
        threads: usize,
        ws: &mut Workspace,
        out: &mut Tensor,
    ) -> Result<(), PrimitiveError> {
        check_args(&self.desc, self.supports(s), input, kernel, s)?;
        out.reuse_as(s.m, s.out_h(), s.out_w(), self.desc.output_layout);
        // Several loop orders accumulate into the output in place.
        out.data_mut().fill(0.0);
        match self.variant {
            DirectVariant::Mhwckk => mhwckk(input, kernel, s, threads, out),
            DirectVariant::Cmhwkk => cmhwkk(input, kernel, s, threads, out),
            DirectVariant::MhwkkcHwc => mhwkkc_hwc(input, kernel, s, out),
            DirectVariant::HwkkcmHwc => hwkkcm_hwc(input, kernel, s, ws, out),
            DirectVariant::MhcwHcw => mhcw_hcw(input, kernel, s, out),
            DirectVariant::Tiled(t) => tiled(input, kernel, s, threads, t, out),
            DirectVariant::Unroll4 => unroll4(input, kernel, s, threads, out),
            DirectVariant::Blocked4 | DirectVariant::Blocked8 => {
                blocked(input, kernel, s, threads, ws, out)
            }
            DirectVariant::Strided => strided(input, kernel, s, threads, out),
            DirectVariant::FusedChwHwc => fused_chw_hwc(input, kernel, s, out),
            DirectVariant::WhcNest => whc_nest(input, kernel, s, out),
            DirectVariant::HwcVec8 => hwc_vec8(input, kernel, s, out),
        }
        Ok(())
    }
}

fn mhwckk(
    input: &Tensor,
    kernel: &KernelTensor,
    s: &ConvScenario,
    threads: usize,
    out: &mut Tensor,
) {
    let (oh, ow) = (s.out_h(), s.out_w());
    par_chunks_mut(out.data_mut(), oh * ow, threads, |m, plane| {
        for y in 0..oh {
            for x in 0..ow {
                let mut acc = 0.0f32;
                for c in 0..s.c {
                    for i in 0..s.k {
                        let iy = (y * s.stride + i) as isize - s.pad as isize;
                        for j in 0..s.k {
                            let ix = (x * s.stride + j) as isize - s.pad as isize;
                            acc += padded_at(input, c, iy, ix) * kernel.at(m, c, i, j);
                        }
                    }
                }
                plane[y * ow + x] = acc;
            }
        }
    });
}

fn cmhwkk(
    input: &Tensor,
    kernel: &KernelTensor,
    s: &ConvScenario,
    threads: usize,
    out: &mut Tensor,
) {
    let (oh, ow) = (s.out_h(), s.out_w());
    // Input-channel stationary: each worker owns a range of output planes
    // and walks channels outermost within it, maximizing kernel-row reuse.
    par_chunks_mut(out.data_mut(), oh * ow, threads, |m, plane| {
        for c in 0..s.c {
            for y in 0..oh {
                for x in 0..ow {
                    let mut acc = plane[y * ow + x];
                    for i in 0..s.k {
                        let iy = (y * s.stride + i) as isize - s.pad as isize;
                        for j in 0..s.k {
                            let ix = (x * s.stride + j) as isize - s.pad as isize;
                            acc += padded_at(input, c, iy, ix) * kernel.at(m, c, i, j);
                        }
                    }
                    plane[y * ow + x] = acc;
                }
            }
        }
    });
}

fn mhwkkc_hwc(input: &Tensor, kernel: &KernelTensor, s: &ConvScenario, out: &mut Tensor) {
    let (oh, ow) = (s.out_h(), s.out_w());
    let (_, h, w) = input.dims();
    let src = input.data();
    for m in 0..s.m {
        for y in 0..oh {
            for x in 0..ow {
                let mut acc = 0.0f32;
                for i in 0..s.k {
                    let iy = (y * s.stride + i) as isize - s.pad as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    for j in 0..s.k {
                        let ix = (x * s.stride + j) as isize - s.pad as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        // Contiguous channel run in HWC.
                        let base = (iy as usize * w + ix as usize) * s.c;
                        let pix = &src[base..base + s.c];
                        for (c, &v) in pix.iter().enumerate() {
                            acc += v * kernel.at(m, c, i, j);
                        }
                    }
                }
                out.set(m, y, x, acc);
            }
        }
    }
}

fn hwkkcm_hwc(
    input: &Tensor,
    kernel: &KernelTensor,
    s: &ConvScenario,
    ws: &mut Workspace,
    out: &mut Tensor,
) {
    let (oh, ow) = (s.out_h(), s.out_w());
    let (_, h, w) = input.dims();
    let src = input.data();
    let mark = ws.reals.mark();
    let [acc] = ws.reals.take([s.m]);
    for y in 0..oh {
        for x in 0..ow {
            acc.fill(0.0);
            for i in 0..s.k {
                let iy = (y * s.stride + i) as isize - s.pad as isize;
                if iy < 0 || iy >= h as isize {
                    continue;
                }
                for j in 0..s.k {
                    let ix = (x * s.stride + j) as isize - s.pad as isize;
                    if ix < 0 || ix >= w as isize {
                        continue;
                    }
                    let base = (iy as usize * w + ix as usize) * s.c;
                    for c in 0..s.c {
                        let v = src[base + c];
                        for (m, slot) in acc.iter_mut().enumerate() {
                            *slot += v * kernel.at(m, c, i, j);
                        }
                    }
                }
            }
            for (m, &v) in acc.iter().enumerate() {
                out.set(m, y, x, v);
            }
        }
    }
    ws.reals.release(mark);
}

fn mhcw_hcw(input: &Tensor, kernel: &KernelTensor, s: &ConvScenario, out: &mut Tensor) {
    let (oh, ow) = (s.out_h(), s.out_w());
    for m in 0..s.m {
        for y in 0..oh {
            for c in 0..s.c {
                for x in 0..ow {
                    let mut acc = out.at(m, y, x);
                    for i in 0..s.k {
                        let iy = (y * s.stride + i) as isize - s.pad as isize;
                        for j in 0..s.k {
                            let ix = (x * s.stride + j) as isize - s.pad as isize;
                            acc += padded_at(input, c, iy, ix) * kernel.at(m, c, i, j);
                        }
                    }
                    out.set(m, y, x, acc);
                }
            }
        }
    }
}

fn tiled(
    input: &Tensor,
    kernel: &KernelTensor,
    s: &ConvScenario,
    threads: usize,
    tile: usize,
    out: &mut Tensor,
) {
    let (oh, ow) = (s.out_h(), s.out_w());
    par_chunks_mut(out.data_mut(), oh * ow, threads, |m, plane| {
        for y0 in (0..oh).step_by(tile) {
            for x0 in (0..ow).step_by(tile) {
                let y1 = (y0 + tile).min(oh);
                let x1 = (x0 + tile).min(ow);
                for c in 0..s.c {
                    for y in y0..y1 {
                        for x in x0..x1 {
                            let mut acc = plane[y * ow + x];
                            for i in 0..s.k {
                                let iy = (y * s.stride + i) as isize - s.pad as isize;
                                for j in 0..s.k {
                                    let ix = (x * s.stride + j) as isize - s.pad as isize;
                                    acc += padded_at(input, c, iy, ix) * kernel.at(m, c, i, j);
                                }
                            }
                            plane[y * ow + x] = acc;
                        }
                    }
                }
            }
        }
    });
}

fn unroll4(
    input: &Tensor,
    kernel: &KernelTensor,
    s: &ConvScenario,
    threads: usize,
    out: &mut Tensor,
) {
    let (oh, ow) = (s.out_h(), s.out_w());
    let k4 = s.k / 4 * 4;
    par_chunks_mut(out.data_mut(), oh * ow, threads, |m, plane| {
        for y in 0..oh {
            for x in 0..ow {
                let mut a0 = 0.0f32;
                let mut a1 = 0.0f32;
                let mut a2 = 0.0f32;
                let mut a3 = 0.0f32;
                for c in 0..s.c {
                    for i in 0..s.k {
                        let iy = (y * s.stride + i) as isize - s.pad as isize;
                        let mut j = 0;
                        while j < k4 {
                            let ix = (x * s.stride + j) as isize - s.pad as isize;
                            a0 += padded_at(input, c, iy, ix) * kernel.at(m, c, i, j);
                            a1 += padded_at(input, c, iy, ix + 1) * kernel.at(m, c, i, j + 1);
                            a2 += padded_at(input, c, iy, ix + 2) * kernel.at(m, c, i, j + 2);
                            a3 += padded_at(input, c, iy, ix + 3) * kernel.at(m, c, i, j + 3);
                            j += 4;
                        }
                        while j < s.k {
                            let ix = (x * s.stride + j) as isize - s.pad as isize;
                            a0 += padded_at(input, c, iy, ix) * kernel.at(m, c, i, j);
                            j += 1;
                        }
                    }
                }
                plane[y * ow + x] = ((a0 + a1) + a2) + a3;
            }
        }
    });
}

fn blocked(
    input: &Tensor,
    kernel: &KernelTensor,
    s: &ConvScenario,
    threads: usize,
    ws: &mut Workspace,
    out: &mut Tensor,
) {
    let b = out.layout().channel_block();
    let (oh, ow) = (s.out_h(), s.out_w());
    let blocks = s.m.div_ceil(b);
    let block_len = oh * ow * b;
    let arena = &mut ws.reals;
    par_chunks_scratch(
        out.data_mut(),
        block_len,
        threads.min(blocks),
        b,
        arena,
        |ob, slab, acc| {
            let lanes = b.min(s.m - ob * b);
            for y in 0..oh {
                for x in 0..ow {
                    acc.fill(0.0);
                    for c in 0..s.c {
                        for i in 0..s.k {
                            let iy = (y * s.stride + i) as isize - s.pad as isize;
                            for j in 0..s.k {
                                let ix = (x * s.stride + j) as isize - s.pad as isize;
                                let v = padded_at(input, c, iy, ix);
                                for (lane, slot) in acc.iter_mut().enumerate().take(lanes) {
                                    *slot += v * kernel.at(ob * b + lane, c, i, j);
                                }
                            }
                        }
                    }
                    let base = (y * ow + x) * b;
                    slab[base..base + b].copy_from_slice(acc);
                }
            }
        },
    );
}

fn strided(
    input: &Tensor,
    kernel: &KernelTensor,
    s: &ConvScenario,
    threads: usize,
    out: &mut Tensor,
) {
    let (oh, ow) = (s.out_h(), s.out_w());
    let (_, h, w) = input.dims();
    let src = input.data();
    // Strided specialization: interior region needs no bounds checks, so it
    // is split from the border. With δ > 1 the interior dominates.
    let y_lo = s.pad.div_ceil(s.stride);
    let y_hi = if h + s.pad >= s.k { ((h + s.pad - s.k) / s.stride + 1).min(oh) } else { 0 };
    let x_lo = s.pad.div_ceil(s.stride);
    let x_hi = if w + s.pad >= s.k { ((w + s.pad - s.k) / s.stride + 1).min(ow) } else { 0 };
    par_chunks_mut(out.data_mut(), oh * ow, threads, |m, plane| {
        for y in 0..oh {
            for x in 0..ow {
                let interior = y >= y_lo && y < y_hi && x >= x_lo && x < x_hi;
                let mut acc = 0.0f32;
                if interior {
                    let iy0 = y * s.stride - s.pad;
                    let ix0 = x * s.stride - s.pad;
                    for c in 0..s.c {
                        let cbase = c * h * w;
                        for i in 0..s.k {
                            let row = cbase + (iy0 + i) * w + ix0;
                            let krow = &kernel.data()
                                [kernel.offset(m, c, i, 0)..kernel.offset(m, c, i, 0) + s.k];
                            let irow = &src[row..row + s.k];
                            for (iv, kv) in irow.iter().zip(krow) {
                                acc += iv * kv;
                            }
                        }
                    }
                } else {
                    for c in 0..s.c {
                        for i in 0..s.k {
                            let iy = (y * s.stride + i) as isize - s.pad as isize;
                            for j in 0..s.k {
                                let ix = (x * s.stride + j) as isize - s.pad as isize;
                                acc += padded_at(input, c, iy, ix) * kernel.at(m, c, i, j);
                            }
                        }
                    }
                }
                plane[y * ow + x] = acc;
            }
        }
    });
}

fn fused_chw_hwc(input: &Tensor, kernel: &KernelTensor, s: &ConvScenario, out: &mut Tensor) {
    let (oh, ow) = (s.out_h(), s.out_w());
    let data = out.data_mut();
    for y in 0..oh {
        for x in 0..ow {
            let base = (y * ow + x) * s.m;
            for m in 0..s.m {
                let mut acc = 0.0f32;
                for c in 0..s.c {
                    for i in 0..s.k {
                        let iy = (y * s.stride + i) as isize - s.pad as isize;
                        for j in 0..s.k {
                            let ix = (x * s.stride + j) as isize - s.pad as isize;
                            acc += padded_at(input, c, iy, ix) * kernel.at(m, c, i, j);
                        }
                    }
                }
                data[base + m] = acc;
            }
        }
    }
}

fn whc_nest(input: &Tensor, kernel: &KernelTensor, s: &ConvScenario, out: &mut Tensor) {
    let (oh, ow) = (s.out_h(), s.out_w());
    for x in 0..ow {
        for y in 0..oh {
            for m in 0..s.m {
                let mut acc = 0.0f32;
                for c in 0..s.c {
                    for i in 0..s.k {
                        let iy = (y * s.stride + i) as isize - s.pad as isize;
                        for j in 0..s.k {
                            let ix = (x * s.stride + j) as isize - s.pad as isize;
                            acc += padded_at(input, c, iy, ix) * kernel.at(m, c, i, j);
                        }
                    }
                }
                out.set(m, y, x, acc);
            }
        }
    }
}

fn hwc_vec8(input: &Tensor, kernel: &KernelTensor, s: &ConvScenario, out: &mut Tensor) {
    let (oh, ow) = (s.out_h(), s.out_w());
    let (_, h, w) = input.dims();
    let src = input.data();
    let c8 = s.c / 8 * 8;
    for m in 0..s.m {
        for y in 0..oh {
            for x in 0..ow {
                let mut lanes = [0.0f32; 8];
                let mut tail = 0.0f32;
                for i in 0..s.k {
                    let iy = (y * s.stride + i) as isize - s.pad as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    for j in 0..s.k {
                        let ix = (x * s.stride + j) as isize - s.pad as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        let base = (iy as usize * w + ix as usize) * s.c;
                        let mut c = 0;
                        while c < c8 {
                            for lane in 0..8 {
                                lanes[lane] += src[base + c + lane] * kernel.at(m, c + lane, i, j);
                            }
                            c += 8;
                        }
                        while c < s.c {
                            tail += src[base + c] * kernel.at(m, c, i, j);
                            c += 1;
                        }
                    }
                }
                out.set(m, y, x, lanes.iter().sum::<f32>() + tail);
            }
        }
    }
}

/// All direct-family primitives for the registry.
pub(crate) fn all() -> Vec<Box<dyn ConvAlgorithm>> {
    use DirectVariant::*;
    let mk = |name: &str, v: DirectVariant| -> Box<dyn ConvAlgorithm> {
        Box::new(DirectConv::new(name, v))
    };
    vec![
        mk("direct_mhwckk", Mhwckk),
        mk("direct_cmhwkk", Cmhwkk),
        mk("direct_mhwkkc_hwc", MhwkkcHwc),
        mk("direct_hwkkcm_hwc", HwkkcmHwc),
        mk("direct_mhcw_hcw", MhcwHcw),
        mk("direct_tile8", Tiled(8)),
        mk("direct_tile16", Tiled(16)),
        mk("direct_tile32", Tiled(32)),
        mk("direct_unroll4", Unroll4),
        mk("direct_chw4_vf4", Blocked4),
        mk("direct_chw8_vf8", Blocked8),
        mk("direct_strided", Strided),
        mk("direct_fused_chw_hwc", FusedChwHwc),
        mk("direct_whc", WhcNest),
        mk("direct_hwc_vec8", HwcVec8),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::sum2d_reference;

    fn scenarios() -> Vec<ConvScenario> {
        vec![
            ConvScenario::new(3, 8, 9, 1, 3, 4),
            ConvScenario::new(5, 7, 7, 2, 3, 3),
            ConvScenario::new(2, 12, 12, 4, 5, 6).with_pad(0),
            ConvScenario::new(9, 6, 6, 1, 1, 5).with_pad(0),
            ConvScenario::new(10, 9, 8, 1, 5, 7),
        ]
    }

    #[test]
    fn every_direct_variant_matches_the_reference() {
        for prim in all() {
            for s in scenarios() {
                if !prim.supports(&s) {
                    continue;
                }
                let lin = prim.descriptor().input_layout;
                let input = Tensor::random(s.c, s.h, s.w, Layout::Chw, 11).to_layout(lin);
                let kernel = KernelTensor::random(s.m, s.c, s.k, s.k, 12);
                let got = prim.execute(&input, &kernel, &s, 1).unwrap();
                assert_eq!(got.layout(), prim.descriptor().output_layout);
                assert_eq!(got.dims(), (s.m, s.out_h(), s.out_w()));
                let want = sum2d_reference(&input, &kernel, &s);
                let diff = got.max_abs_diff(&want).unwrap();
                assert!(diff < 1e-3, "{} on {s}: diff {diff}", prim.descriptor().name);
            }
        }
    }

    #[test]
    fn multithreaded_execution_matches_single() {
        for prim in all() {
            let s = ConvScenario::new(4, 10, 10, 1, 3, 6);
            if !prim.supports(&s) {
                continue;
            }
            let lin = prim.descriptor().input_layout;
            let input = Tensor::random(s.c, s.h, s.w, Layout::Chw, 5).to_layout(lin);
            let kernel = KernelTensor::random(s.m, s.c, s.k, s.k, 6);
            let one = prim.execute(&input, &kernel, &s, 1).unwrap();
            let four = prim.execute(&input, &kernel, &s, 4).unwrap();
            assert!(
                one.allclose(&four, 1e-6).unwrap(),
                "{} diverges under threads",
                prim.descriptor().name
            );
        }
    }

    #[test]
    fn strided_variant_rejects_unit_stride() {
        let s = ConvScenario::new(2, 6, 6, 1, 3, 2);
        let prim = DirectConv::new("direct_strided", DirectVariant::Strided);
        assert!(!prim.supports(&s));
        let input = Tensor::zeros(2, 6, 6, Layout::Chw);
        let kernel = KernelTensor::zeros(2, 2, 3, 3);
        assert!(matches!(
            prim.execute(&input, &kernel, &s, 1),
            Err(PrimitiveError::UnsupportedScenario { .. })
        ));
    }

    #[test]
    fn family_has_distinct_names_and_layout_diversity() {
        let prims = all();
        let mut names: Vec<_> = prims.iter().map(|p| p.descriptor().name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), prims.len());
        let layouts: std::collections::HashSet<_> =
            prims.iter().map(|p| p.descriptor().input_layout).collect();
        assert!(layouts.len() >= 4, "direct family should span several layouts");
    }
}
