//! Every primitive's workspace execute path must be bit-identical to its
//! allocating path, safe to re-run out of a dirty recycled workspace and
//! output tensor, and honest about its declared scratch requirement —
//! the three properties the zero-allocation serving engine relies on.

use pbqp_dnn_graph::ConvScenario;
use pbqp_dnn_primitives::registry::full_library;
use pbqp_dnn_primitives::Workspace;
use pbqp_dnn_tensor::{KernelTensor, Layout, Tensor};

fn scenarios() -> Vec<ConvScenario> {
    vec![
        // Unit stride, k = 3 (Winograd f23/f43/f63 territory).
        ConvScenario::new(3, 9, 10, 1, 3, 4),
        // Unit stride, k = 5 (f25, larger taps).
        ConvScenario::new(2, 8, 8, 1, 5, 3),
        // Pointwise.
        ConvScenario::new(5, 6, 7, 1, 1, 4).with_pad(0),
        // Strided (direct/im2/sum2d only).
        ConvScenario::new(4, 11, 11, 2, 3, 3),
    ]
}

#[test]
fn scratch_path_matches_allocating_path_and_req_is_exact() {
    for prim in full_library() {
        // One dirty workspace and output per primitive, reused across
        // scenarios and repetitions — exactly the serving-engine pattern.
        let mut ws = Workspace::new();
        let mut out = Tensor::empty();
        for s in scenarios() {
            if !prim.supports(&s) {
                continue;
            }
            let name = &prim.descriptor().name;
            let input = Tensor::random(s.c, s.h, s.w, Layout::Chw, 0xA11C)
                .to_layout(prim.descriptor().input_layout);
            let kernel = KernelTensor::random(s.m, s.c, s.k, s.k, 0xB22D);
            let reference = prim.execute(&input, &kernel, &s, 1).unwrap();

            ws.reserve(prim.workspace_req(&s));
            let caps = (ws.reals.capacity(), ws.complexes.capacity(), ws.indices.capacity());
            for rep in 0..2 {
                ws.reset();
                prim.execute_into(&input, &kernel, &s, 1, &mut ws, &mut out).unwrap();
                assert_eq!(out.layout(), reference.layout(), "{name} on {s}");
                assert_eq!(out.dims(), reference.dims(), "{name} on {s}");
                assert_eq!(
                    out.data(),
                    reference.data(),
                    "{name} on {s} rep {rep}: scratch path diverged"
                );
            }
            assert_eq!(
                (ws.reals.capacity(), ws.complexes.capacity(), ws.indices.capacity()),
                caps,
                "{name} on {s}: workspace_req under-reports its serial scratch use"
            );
        }
    }
}

#[test]
fn threaded_scratch_path_matches_threaded_allocating_path() {
    let s = ConvScenario::new(6, 12, 12, 1, 3, 8);
    for prim in full_library() {
        if !prim.supports(&s) {
            continue;
        }
        let input = Tensor::random(s.c, s.h, s.w, Layout::Chw, 0xC33E)
            .to_layout(prim.descriptor().input_layout);
        let kernel = KernelTensor::random(s.m, s.c, s.k, s.k, 0xD44F);
        let reference = prim.execute(&input, &kernel, &s, 4).unwrap();
        let mut ws = Workspace::new();
        let mut out = Tensor::empty();
        prim.execute_into(&input, &kernel, &s, 4, &mut ws, &mut out).unwrap();
        assert_eq!(out.data(), reference.data(), "{}", prim.descriptor().name);
    }
}
