//! FFT substrate for the `fft` convolution family.
//!
//! The paper's FFT primitives compute 2-D convolution as a sum of 1-D FFT
//! convolutions (less memory than a full 2-D FFT at the cost of more
//! operations). This crate supplies the 1-D machinery: an iterative
//! radix-2 Cooley–Tukey transform, a Bluestein chirp-z wrapper for
//! arbitrary lengths, and a real cross-correlation helper used directly by
//! the convolution primitives.
//!
//! # Example
//!
//! ```
//! use pbqp_dnn_fft::{correlate_1d, Fft};
//!
//! // "Same" correlation of a 5-sample signal with a 3-tap kernel.
//! let out = correlate_1d(&[1., 2., 3., 4., 5.], &[1., 0., -1.], 1);
//! for (got, want) in out.iter().zip(&[-2., -2., -2., -2., 4.]) {
//!     assert!((got - want).abs() < 1e-5);
//! }
//!
//! let fft = Fft::new(8);
//! assert_eq!(fft.len(), 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bluestein;
mod complex;
mod radix2;

pub use bluestein::Bluestein;
pub use complex::Complex;
pub use radix2::Fft;

/// Real 1-D cross-correlation via FFT, with zero padding `pad` on both ends
/// and unit stride: `out[x] = Σ_j signal[x + j - pad] · kernel[j]`.
///
/// The output has length `signal.len() + 2·pad − kernel.len() + 1`. This is
/// the inner routine of the fft convolution family: a DNN "convolution" is a
/// correlation, which we realize as FFT convolution with the reversed
/// kernel.
///
/// # Panics
///
/// Panics if `kernel` is empty or longer than the padded signal.
pub fn correlate_1d(signal: &[f32], kernel: &[f32], pad: usize) -> Vec<f32> {
    let w = signal.len();
    let k = kernel.len();
    assert!(k > 0, "kernel must be non-empty");
    assert!(w + 2 * pad >= k, "kernel longer than padded signal");
    let out_len = w + 2 * pad - k + 1;

    // Linear convolution length and transform size.
    let conv_len = w + k - 1;
    let n = conv_len.next_power_of_two();
    let fft = Fft::new(n);

    let mut sig = vec![Complex::ZERO; n];
    for (dst, &s) in sig.iter_mut().zip(signal) {
        *dst = Complex::new(s, 0.0);
    }
    // Correlation = convolution with the reversed kernel.
    let mut ker = vec![Complex::ZERO; n];
    for (j, &kv) in kernel.iter().rev().enumerate() {
        ker[j] = Complex::new(kv, 0.0);
    }

    fft.forward(&mut sig);
    fft.forward(&mut ker);
    for (s, kv) in sig.iter_mut().zip(&ker) {
        *s = *s * *kv;
    }
    fft.inverse(&mut sig);

    // Linear convolution index `t` corresponds to correlation offset
    // `t - (k - 1)`; with left padding `pad` the first output reads offset
    // `-pad`, i.e. convolution index `k - 1 - pad`.
    let mut out = vec![0.0f32; out_len];
    for (x, dst) in out.iter_mut().enumerate() {
        let t = x + k - 1;
        if t >= pad {
            let idx = t - pad;
            if idx < conv_len {
                *dst = sig[idx].re;
            }
        }
    }
    out
}

/// Naive direct cross-correlation, the correctness reference for
/// [`correlate_1d`].
pub fn correlate_1d_direct(signal: &[f32], kernel: &[f32], pad: usize) -> Vec<f32> {
    let w = signal.len();
    let k = kernel.len();
    assert!(k > 0 && w + 2 * pad >= k);
    let out_len = w + 2 * pad - k + 1;
    let mut out = vec![0.0f32; out_len];
    for (x, dst) in out.iter_mut().enumerate() {
        let mut acc = 0.0f32;
        for (j, &kv) in kernel.iter().enumerate() {
            let pos = x + j;
            if pos >= pad && pos - pad < w {
                acc += signal[pos - pad] * kv;
            }
        }
        *dst = acc;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo(len: usize, seed: u64) -> Vec<f32> {
        let mut state = seed.max(1);
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 40) as f32 / (1u64 << 23) as f32) - 1.0
            })
            .collect()
    }

    #[test]
    fn fft_correlation_matches_direct() {
        for (w, k, pad) in [(5, 3, 1), (16, 3, 1), (11, 5, 2), (32, 11, 0), (7, 7, 3), (1, 1, 0)] {
            let sig = pseudo(w, 1);
            let ker = pseudo(k, 2);
            let fast = correlate_1d(&sig, &ker, pad);
            let slow = correlate_1d_direct(&sig, &ker, pad);
            assert_eq!(fast.len(), slow.len(), "w={w} k={k} pad={pad}");
            for (f, s) in fast.iter().zip(&slow) {
                assert!((f - s).abs() < 1e-4, "w={w} k={k} pad={pad}: {f} vs {s}");
            }
        }
    }

    #[test]
    fn doc_example_values() {
        let out = correlate_1d_direct(&[1., 2., 3., 4., 5.], &[1., 0., -1.], 1);
        assert_eq!(out, vec![-2., -2., -2., -2., 4.]);
    }

    #[test]
    #[should_panic(expected = "kernel longer")]
    fn oversized_kernel_panics() {
        let _ = correlate_1d(&[1.0], &[1.0, 2.0, 3.0], 0);
    }
}
