use crate::radix2::Fft;
use crate::Complex;

/// Arbitrary-length DFT via Bluestein's chirp-z algorithm.
///
/// Re-expresses a length-`n` DFT as a circular convolution of chirp-
/// modulated sequences, evaluated with a radix-2 FFT of length
/// `≥ 2n − 1`. Planned once; reusable across calls.
///
/// # Example
///
/// ```
/// use pbqp_dnn_fft::{Bluestein, Complex};
///
/// let plan = Bluestein::new(6); // not a power of two
/// let mut buf: Vec<Complex> = (0..6).map(|i| Complex::new(i as f32, 0.0)).collect();
/// let sum: f32 = buf.iter().map(|z| z.re).sum();
/// plan.forward(&mut buf);
/// assert!((buf[0].re - sum).abs() < 1e-4); // DC bin equals the sum
/// ```
#[derive(Debug, Clone)]
pub struct Bluestein {
    n: usize,
    inner: Fft,
    /// Chirp `e^{-iπ k² / n}` for k in 0..n.
    chirp: Vec<Complex>,
    /// FFT of the zero-padded conjugate-chirp filter.
    filter_fd: Vec<Complex>,
}

impl Bluestein {
    /// Plans a transform of any positive length `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Bluestein {
        assert!(n > 0, "transform length must be positive");
        let m = (2 * n - 1).next_power_of_two();
        let inner = Fft::new(m);
        let chirp: Vec<Complex> = (0..n)
            .map(|k| {
                // k² mod 2n keeps the angle argument small and exact.
                let e = (k * k) % (2 * n);
                Complex::cis(-std::f32::consts::PI * e as f32 / n as f32)
            })
            .collect();
        let mut filter = vec![Complex::ZERO; m];
        for k in 0..n {
            let v = chirp[k].conj();
            filter[k] = v;
            if k != 0 {
                filter[m - k] = v;
            }
        }
        inner.forward(&mut filter);
        Bluestein { n, inner, chirp, filter_fd: filter }
    }

    /// The planned transform length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the planned length is zero (never true; `len`/`is_empty`
    /// symmetry).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Scratch elements [`Bluestein::forward_with`] /
    /// [`Bluestein::inverse_with`] need (the inner radix-2 length).
    pub fn work_len(&self) -> usize {
        self.inner.len()
    }

    /// In-place forward DFT of length [`Bluestein::len`].
    ///
    /// Allocates its chirp work buffer internally; allocation-free
    /// callers use [`Bluestein::forward_with`].
    ///
    /// # Panics
    ///
    /// Panics if `buf.len() != self.len()`.
    pub fn forward(&self, buf: &mut [Complex]) {
        let mut work = vec![Complex::ZERO; self.work_len()];
        self.forward_with(buf, &mut work);
    }

    /// [`Bluestein::forward`] with a caller-provided work buffer of at
    /// least [`Bluestein::work_len`] elements (contents irrelevant).
    ///
    /// # Panics
    ///
    /// Panics if `buf.len() != self.len()` or `work` is too short.
    pub fn forward_with(&self, buf: &mut [Complex], work: &mut [Complex]) {
        self.transform_with(buf, work);
    }

    /// In-place inverse DFT (normalized by `1/n`).
    ///
    /// Allocates its chirp work buffer internally; allocation-free
    /// callers use [`Bluestein::inverse_with`].
    ///
    /// # Panics
    ///
    /// Panics if `buf.len() != self.len()`.
    pub fn inverse(&self, buf: &mut [Complex]) {
        let mut work = vec![Complex::ZERO; self.work_len()];
        self.inverse_with(buf, &mut work);
    }

    /// [`Bluestein::inverse`] with a caller-provided work buffer of at
    /// least [`Bluestein::work_len`] elements (contents irrelevant).
    ///
    /// # Panics
    ///
    /// Panics if `buf.len() != self.len()` or `work` is too short.
    pub fn inverse_with(&self, buf: &mut [Complex], work: &mut [Complex]) {
        // DFT⁻¹(x) = conj(DFT(conj(x))) / n.
        for v in buf.iter_mut() {
            *v = v.conj();
        }
        self.transform_with(buf, work);
        let s = 1.0 / self.n as f32;
        for v in buf.iter_mut() {
            *v = v.conj().scale(s);
        }
    }

    fn transform_with(&self, buf: &mut [Complex], work: &mut [Complex]) {
        assert_eq!(buf.len(), self.n, "buffer length != planned length");
        let m = self.inner.len();
        let work = &mut work[..m];
        work[self.n..].fill(Complex::ZERO);
        for k in 0..self.n {
            work[k] = buf[k] * self.chirp[k];
        }
        self.inner.forward(work);
        for (w, f) in work.iter_mut().zip(&self.filter_fd) {
            *w = *w * *f;
        }
        self.inner.inverse(work);
        for k in 0..self.n {
            buf[k] = work[k] * self.chirp[k];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::radix2::dft_reference;

    fn pseudo(len: usize, seed: u64) -> Vec<Complex> {
        let mut state = seed.max(1);
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 40) as f32 / (1u64 << 23) as f32) - 1.0
        };
        (0..len).map(|_| Complex::new(next(), next())).collect()
    }

    #[test]
    fn matches_naive_dft_for_awkward_lengths() {
        for n in [1usize, 3, 5, 6, 7, 12, 30, 97] {
            let input = pseudo(n, n as u64 + 1);
            let mut buf = input.clone();
            Bluestein::new(n).forward(&mut buf);
            let want = dft_reference(&input, false);
            for (i, (g, w)) in buf.iter().zip(&want).enumerate() {
                assert!(
                    (g.re - w.re).abs() < 2e-3 && (g.im - w.im).abs() < 2e-3,
                    "n={n} bin={i}: {g:?} vs {w:?}"
                );
            }
        }
    }

    #[test]
    fn inverse_round_trips() {
        for n in [3usize, 11, 20, 63] {
            let input = pseudo(n, 77);
            let plan = Bluestein::new(n);
            let mut buf = input.clone();
            plan.forward(&mut buf);
            plan.inverse(&mut buf);
            for (g, w) in buf.iter().zip(&input) {
                assert!((g.re - w.re).abs() < 1e-3 && (g.im - w.im).abs() < 1e-3, "n={n}");
            }
        }
    }

    #[test]
    fn agrees_with_radix2_on_powers_of_two() {
        let n = 16;
        let input = pseudo(n, 9);
        let mut a = input.clone();
        let mut b = input;
        Bluestein::new(n).forward(&mut a);
        Fft::new(n).forward(&mut b);
        for (x, y) in a.iter().zip(&b) {
            assert!((x.re - y.re).abs() < 1e-3 && (x.im - y.im).abs() < 1e-3);
        }
    }
}
