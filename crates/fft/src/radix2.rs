use crate::Complex;

/// A planned radix-2 FFT of a fixed power-of-two length.
///
/// Twiddle factors and the bit-reversal permutation are precomputed once, so
/// repeated transforms of the same length (one per image row in the fft
/// convolution family) avoid per-call trigonometry.
///
/// # Example
///
/// ```
/// use pbqp_dnn_fft::{Complex, Fft};
///
/// let fft = Fft::new(4);
/// let mut buf = [Complex::ONE; 4];
/// fft.forward(&mut buf);
/// assert!((buf[0].re - 4.0).abs() < 1e-6); // DC bin
/// assert!(buf[1].norm_sqr() < 1e-10);
/// ```
#[derive(Debug, Clone)]
pub struct Fft {
    n: usize,
    // Twiddles for each butterfly stage, concatenated: stage with half-size
    // `h` contributes `h` factors e^{-iπ j / h}.
    twiddles: Vec<Complex>,
    bitrev: Vec<u32>,
}

impl Fft {
    /// Plans a transform of length `n`.
    ///
    /// # Panics
    ///
    /// Panics unless `n` is a power of two (use [`crate::Bluestein`] for
    /// arbitrary lengths).
    pub fn new(n: usize) -> Fft {
        assert!(n.is_power_of_two(), "radix-2 FFT needs a power-of-two length, got {n}");
        let mut twiddles = Vec::new();
        let mut h = 1;
        while h < n {
            for j in 0..h {
                let theta = -std::f32::consts::PI * j as f32 / h as f32;
                twiddles.push(Complex::cis(theta));
            }
            h *= 2;
        }
        let bits = n.trailing_zeros();
        let bitrev = (0..n as u32)
            .map(|i| if bits == 0 { 0 } else { i.reverse_bits() >> (32 - bits) })
            .collect();
        Fft { n, twiddles, bitrev }
    }

    /// The planned transform length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the planned length is zero (never true; present for
    /// `len`/`is_empty` API symmetry).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// In-place forward DFT.
    ///
    /// # Panics
    ///
    /// Panics if `buf.len()` differs from the planned length.
    pub fn forward(&self, buf: &mut [Complex]) {
        self.transform(buf, false);
    }

    /// In-place inverse DFT, including the `1/n` normalization.
    ///
    /// # Panics
    ///
    /// Panics if `buf.len()` differs from the planned length.
    pub fn inverse(&self, buf: &mut [Complex]) {
        self.transform(buf, true);
        let s = 1.0 / self.n as f32;
        for v in buf.iter_mut() {
            *v = v.scale(s);
        }
    }

    fn transform(&self, buf: &mut [Complex], inverse: bool) {
        assert_eq!(buf.len(), self.n, "buffer length != planned FFT length");
        let n = self.n;
        // Bit-reversal permutation.
        for i in 0..n {
            let j = self.bitrev[i] as usize;
            if i < j {
                buf.swap(i, j);
            }
        }
        // Iterative butterflies.
        let mut h = 1;
        let mut tw_base = 0;
        while h < n {
            for start in (0..n).step_by(2 * h) {
                for j in 0..h {
                    let mut w = self.twiddles[tw_base + j];
                    if inverse {
                        w = w.conj();
                    }
                    let u = buf[start + j];
                    let v = buf[start + j + h] * w;
                    buf[start + j] = u + v;
                    buf[start + j + h] = u - v;
                }
            }
            tw_base += h;
            h *= 2;
        }
    }
}

/// Naive O(n²) DFT used as the correctness reference in tests.
#[cfg(test)]
pub(crate) fn dft_reference(input: &[Complex], inverse: bool) -> Vec<Complex> {
    let n = input.len();
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut out = vec![Complex::ZERO; n];
    for (k, dst) in out.iter_mut().enumerate() {
        let mut acc = Complex::ZERO;
        for (t, &x) in input.iter().enumerate() {
            let theta = sign * 2.0 * std::f32::consts::PI * (k * t % n) as f32 / n as f32;
            acc = acc + x * Complex::cis(theta);
        }
        *dst = if inverse { acc.scale(1.0 / n as f32) } else { acc };
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo(len: usize, seed: u64) -> Vec<Complex> {
        let mut state = seed.max(1);
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 40) as f32 / (1u64 << 23) as f32) - 1.0
        };
        (0..len).map(|_| Complex::new(next(), next())).collect()
    }

    #[test]
    fn matches_naive_dft() {
        for n in [1usize, 2, 4, 8, 32, 128] {
            let input = pseudo(n, n as u64);
            let mut buf = input.clone();
            Fft::new(n).forward(&mut buf);
            let want = dft_reference(&input, false);
            for (g, w) in buf.iter().zip(&want) {
                assert!((g.re - w.re).abs() < 1e-3 && (g.im - w.im).abs() < 1e-3, "n={n}");
            }
        }
    }

    #[test]
    fn inverse_round_trips() {
        for n in [2usize, 16, 64, 256] {
            let input = pseudo(n, 3);
            let fft = Fft::new(n);
            let mut buf = input.clone();
            fft.forward(&mut buf);
            fft.inverse(&mut buf);
            for (g, w) in buf.iter().zip(&input) {
                assert!((g.re - w.re).abs() < 1e-4 && (g.im - w.im).abs() < 1e-4, "n={n}");
            }
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let n = 64;
        let input = pseudo(n, 5);
        let time_energy: f32 = input.iter().map(|z| z.norm_sqr()).sum();
        let mut buf = input;
        Fft::new(n).forward(&mut buf);
        let freq_energy: f32 = buf.iter().map(|z| z.norm_sqr()).sum::<f32>() / n as f32;
        assert!((time_energy - freq_energy).abs() / time_energy < 1e-4);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_rejected() {
        let _ = Fft::new(12);
    }
}
