use std::ops::{Add, Mul, Neg, Sub};

/// A single-precision complex number.
///
/// Small on purpose: only the operations the FFT kernels need.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f32,
    /// Imaginary part.
    pub im: f32,
}

impl Complex {
    /// The additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// Creates `re + im·i`.
    pub fn new(re: f32, im: f32) -> Complex {
        Complex { re, im }
    }

    /// `e^{iθ}` — the unit phasor with angle `theta` radians.
    pub fn cis(theta: f32) -> Complex {
        Complex { re: theta.cos(), im: theta.sin() }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Complex {
        Complex { re: self.re, im: -self.im }
    }

    /// Squared magnitude `re² + im²`.
    pub fn norm_sqr(self) -> f32 {
        self.re * self.re + self.im * self.im
    }

    /// Scales both parts by a real factor.
    pub fn scale(self, s: f32) -> Complex {
        Complex { re: self.re * s, im: self.im * s }
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex { re: self.re + rhs.re, im: self.im + rhs.im }
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex { re: self.re - rhs.re, im: self.im - rhs.im }
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex { re: self.re * rhs.re - self.im * rhs.im, im: self.re * rhs.im + self.im * rhs.re }
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex { re: -self.re, im: -self.im }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_identities() {
        let z = Complex::new(3.0, -4.0);
        assert_eq!(z + Complex::ZERO, z);
        assert_eq!(z * Complex::ONE, z);
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.conj().conj(), z);
        assert_eq!((z - z), Complex::ZERO);
        assert_eq!((-z) + z, Complex::ZERO);
    }

    #[test]
    fn cis_lies_on_unit_circle() {
        for i in 0..16 {
            let theta = i as f32 * 0.5;
            let z = Complex::cis(theta);
            assert!((z.norm_sqr() - 1.0).abs() < 1e-6);
        }
        let i = Complex::cis(std::f32::consts::FRAC_PI_2);
        assert!((i.re).abs() < 1e-6 && (i.im - 1.0).abs() < 1e-6);
    }

    #[test]
    fn multiplication_matches_manual_expansion() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        let p = a * b;
        assert_eq!(p, Complex::new(5.0, 5.0));
    }
}
