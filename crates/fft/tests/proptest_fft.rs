//! Property tests for the FFT substrate: inverse round trips, linearity,
//! agreement between the radix-2 and Bluestein paths, and correlation
//! equivalence with the direct implementation.

use proptest::prelude::*;

use pbqp_dnn_fft::{correlate_1d, correlate_1d_direct, Bluestein, Complex, Fft};

fn signal(len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-3.0f32..3.0, len..=len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn radix2_inverse_round_trips(pow in 1u32..9, data in signal(512)) {
        let n = 1usize << pow;
        let fft = Fft::new(n);
        let mut buf: Vec<Complex> =
            data[..n].iter().map(|&x| Complex::new(x, 0.0)).collect();
        let orig = buf.clone();
        fft.forward(&mut buf);
        fft.inverse(&mut buf);
        for (a, b) in buf.iter().zip(&orig) {
            prop_assert!((a.re - b.re).abs() < 1e-3 && (a.im - b.im).abs() < 1e-3);
        }
    }

    #[test]
    fn bluestein_inverse_round_trips(n in 1usize..80, data in signal(80)) {
        let plan = Bluestein::new(n);
        let mut buf: Vec<Complex> =
            data[..n].iter().map(|&x| Complex::new(x, 0.0)).collect();
        let orig = buf.clone();
        plan.forward(&mut buf);
        plan.inverse(&mut buf);
        for (a, b) in buf.iter().zip(&orig) {
            prop_assert!((a.re - b.re).abs() < 2e-3 && (a.im - b.im).abs() < 2e-3);
        }
    }

    /// The DFT is linear: F(x + y) = F(x) + F(y).
    #[test]
    fn fft_is_linear(pow in 1u32..8, xs in signal(256), ys in signal(256)) {
        let n = 1usize << pow;
        let fft = Fft::new(n);
        let mut x: Vec<Complex> = xs[..n].iter().map(|&v| Complex::new(v, 0.0)).collect();
        let mut y: Vec<Complex> = ys[..n].iter().map(|&v| Complex::new(v, 0.0)).collect();
        let mut sum: Vec<Complex> =
            x.iter().zip(&y).map(|(a, b)| *a + *b).collect();
        fft.forward(&mut x);
        fft.forward(&mut y);
        fft.forward(&mut sum);
        for ((a, b), s) in x.iter().zip(&y).zip(&sum) {
            let lin = *a + *b;
            prop_assert!((lin.re - s.re).abs() < 1e-2 && (lin.im - s.im).abs() < 1e-2);
        }
    }

    /// FFT correlation equals the direct correlation for every shape.
    #[test]
    fn correlation_matches_direct(
        w in 1usize..48,
        k in 1usize..9,
        pad in 0usize..4,
        data in signal(64),
    ) {
        prop_assume!(w + 2 * pad >= k);
        let sig = &data[..w];
        let ker = &data[w..(w + k).min(64)];
        prop_assume!(ker.len() == k);
        let fast = correlate_1d(sig, ker, pad);
        let slow = correlate_1d_direct(sig, ker, pad);
        prop_assert_eq!(fast.len(), slow.len());
        for (f, s) in fast.iter().zip(&slow) {
            prop_assert!((f - s).abs() < 1e-3 * (1.0 + s.abs()));
        }
    }
}
