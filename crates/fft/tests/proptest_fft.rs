//! Property tests for the FFT substrate: inverse round trips, linearity,
//! agreement between the radix-2 and Bluestein paths, and correlation
//! equivalence with the direct implementation.
//!
//! The build environment has no crates.io access, so instead of proptest
//! each test derives its random cases from a fixed-seed splitmix64
//! generator — deterministic, but covering the same input space.

use pbqp_dnn_fft::{correlate_1d, correlate_1d_direct, Bluestein, Complex, Fft};
use pbqp_dnn_tensor::rng::SplitMix64;

fn signal(rng: &mut SplitMix64, len: usize) -> Vec<f32> {
    (0..len).map(|_| rng.f32(-3.0, 3.0)).collect()
}

#[test]
fn radix2_inverse_round_trips() {
    let mut rng = SplitMix64::new(10);
    for _ in 0..64 {
        let n = 1usize << rng.usize(1, 9);
        let data = signal(&mut rng, n);
        let fft = Fft::new(n);
        let mut buf: Vec<Complex> = data.iter().map(|&x| Complex::new(x, 0.0)).collect();
        let orig = buf.clone();
        fft.forward(&mut buf);
        fft.inverse(&mut buf);
        for (a, b) in buf.iter().zip(&orig) {
            assert!((a.re - b.re).abs() < 1e-3 && (a.im - b.im).abs() < 1e-3);
        }
    }
}

#[test]
fn bluestein_inverse_round_trips() {
    let mut rng = SplitMix64::new(11);
    for _ in 0..64 {
        let n = rng.usize(1, 80);
        let data = signal(&mut rng, n);
        let plan = Bluestein::new(n);
        let mut buf: Vec<Complex> = data.iter().map(|&x| Complex::new(x, 0.0)).collect();
        let orig = buf.clone();
        plan.forward(&mut buf);
        plan.inverse(&mut buf);
        for (a, b) in buf.iter().zip(&orig) {
            assert!((a.re - b.re).abs() < 2e-3 && (a.im - b.im).abs() < 2e-3);
        }
    }
}

/// The DFT is linear: F(x + y) = F(x) + F(y).
#[test]
fn fft_is_linear() {
    let mut rng = SplitMix64::new(12);
    for _ in 0..64 {
        let n = 1usize << rng.usize(1, 8);
        let xs = signal(&mut rng, n);
        let ys = signal(&mut rng, n);
        let fft = Fft::new(n);
        let mut x: Vec<Complex> = xs.iter().map(|&v| Complex::new(v, 0.0)).collect();
        let mut y: Vec<Complex> = ys.iter().map(|&v| Complex::new(v, 0.0)).collect();
        let mut sum: Vec<Complex> = x.iter().zip(&y).map(|(a, b)| *a + *b).collect();
        fft.forward(&mut x);
        fft.forward(&mut y);
        fft.forward(&mut sum);
        for ((a, b), s) in x.iter().zip(&y).zip(&sum) {
            let lin = *a + *b;
            assert!((lin.re - s.re).abs() < 1e-2 && (lin.im - s.im).abs() < 1e-2);
        }
    }
}

/// FFT correlation equals the direct correlation for every shape.
#[test]
fn correlation_matches_direct() {
    let mut rng = SplitMix64::new(13);
    let mut cases = 0;
    while cases < 64 {
        let w = rng.usize(1, 48);
        let k = rng.usize(1, 9);
        let pad = rng.usize(0, 4);
        if w + 2 * pad < k {
            continue;
        }
        cases += 1;
        let sig = signal(&mut rng, w);
        let ker = signal(&mut rng, k);
        let fast = correlate_1d(&sig, &ker, pad);
        let slow = correlate_1d_direct(&sig, &ker, pad);
        assert_eq!(fast.len(), slow.len());
        for (f, s) in fast.iter().zip(&slow) {
            assert!((f - s).abs() < 1e-3 * (1.0 + s.abs()));
        }
    }
}
