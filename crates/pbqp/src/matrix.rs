use std::fmt;

/// A dense edge-cost matrix: `cost(i, j)` is the cost of selecting option
/// `i` at the edge's source node and option `j` at its target node.
///
/// Costs are `f64` and may be `f64::INFINITY` to encode illegal pairings
/// (e.g. no data-layout transformation chain exists between two layouts).
///
/// # Example
///
/// ```
/// use pbqp_solver::CostMatrix;
///
/// let m = CostMatrix::from_rows(&[vec![0.0, 1.0], vec![2.0, 3.0]]);
/// assert_eq!(m.at(1, 0), 2.0);
/// assert_eq!(m.transposed().at(0, 1), 2.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct CostMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl CostMatrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> CostMatrix {
        CostMatrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have unequal lengths or the matrix is empty.
    pub fn from_rows(rows: &[Vec<f64>]) -> CostMatrix {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix needs at least one column");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        CostMatrix { rows: rows.len(), cols, data }
    }

    /// Creates a matrix from a generator function.
    pub fn from_fn<F>(rows: usize, cols: usize, mut f: F) -> CostMatrix
    where
        F: FnMut(usize, usize) -> f64,
    {
        let mut m = CostMatrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m.set(i, j, f(i, j));
            }
        }
        m
    }

    /// Number of rows (source-node options).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (target-node options).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Cost of the pair `(i, j)`.
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.cols + j]
    }

    /// Sets the cost of the pair `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.cols + j] = v;
    }

    /// Adds `v` to entry `(i, j)`.
    #[inline]
    pub fn add_at(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.cols + j] += v;
    }

    /// Element-wise sum with another matrix of identical shape.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &CostMatrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += *b;
        }
    }

    /// The transposed matrix.
    pub fn transposed(&self) -> CostMatrix {
        CostMatrix::from_fn(self.cols, self.rows, |i, j| self.at(j, i))
    }

    /// Whether every entry is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.data.iter().all(|&v| v == 0.0)
    }

    /// Minimum entry of row `i`.
    pub fn row_min(&self, i: usize) -> f64 {
        (0..self.cols).map(|j| self.at(i, j)).fold(f64::INFINITY, f64::min)
    }

    /// Minimum entry of column `j`.
    pub fn col_min(&self, j: usize) -> f64 {
        (0..self.rows).map(|i| self.at(i, j)).fold(f64::INFINITY, f64::min)
    }

    /// Minimum entry of the whole matrix.
    pub fn min(&self) -> f64 {
        self.data.iter().copied().fold(f64::INFINITY, f64::min)
    }
}

impl fmt::Debug for CostMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "CostMatrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  ")?;
            for j in 0..self.cols {
                write!(f, "{:8.2} ", self.at(i, j))?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = CostMatrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!((m.rows(), m.cols()), (2, 3));
        assert_eq!(m.at(0, 2), 3.0);
        assert_eq!(m.at(1, 0), 4.0);
        assert_eq!(m.row_min(1), 4.0);
        assert_eq!(m.col_min(2), 3.0);
        assert_eq!(m.min(), 1.0);
    }

    #[test]
    fn transpose_is_involutive() {
        let m = CostMatrix::from_fn(3, 4, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.transposed().transposed(), m);
        assert_eq!(m.transposed().at(3, 2), m.at(2, 3));
    }

    #[test]
    fn add_assign_sums_elementwise() {
        let mut a = CostMatrix::from_rows(&[vec![1.0, 2.0]]);
        let b = CostMatrix::from_rows(&[vec![10.0, 20.0]]);
        a.add_assign(&b);
        assert_eq!(a.at(0, 1), 22.0);
    }

    #[test]
    fn zero_detection() {
        assert!(CostMatrix::zeros(2, 2).is_zero());
        let mut m = CostMatrix::zeros(2, 2);
        m.set(1, 1, 0.5);
        assert!(!m.is_zero());
    }

    #[test]
    fn infinite_entries_are_legal() {
        let m = CostMatrix::from_rows(&[vec![f64::INFINITY, 1.0]]);
        assert_eq!(m.row_min(0), 1.0);
        assert_eq!(m.col_min(0), f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = CostMatrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
