use std::collections::HashMap;

use crate::{CostMatrix, PbqpError, PbqpGraph, PbqpNodeId};

/// A complete assignment for a PBQP instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Option index chosen for each node, indexed by node id.
    pub selections: Vec<usize>,
    /// Total cost of the assignment (node costs plus edge costs),
    /// recomputed on the original instance.
    pub total_cost: f64,
    /// Whether the solver proved this assignment optimal. `false` only when
    /// the irreducible core exceeded the solver's exact-search budget and
    /// the RN heuristic supplied the answer.
    pub optimal: bool,
    /// Reduction statistics.
    pub stats: SolveStats,
}

impl Solution {
    /// The option chosen for `node`.
    pub fn selection(&self, node: PbqpNodeId) -> usize {
        self.selections[node.index()]
    }
}

/// Counters describing how a solve proceeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SolveStats {
    /// Degree-0 eliminations.
    pub r0: usize,
    /// Degree-1 (RI) eliminations.
    pub r1: usize,
    /// Degree-2 (RII) eliminations.
    pub r2: usize,
    /// Nodes left in the irreducible core.
    pub core_nodes: usize,
    /// Branch-and-bound search steps taken.
    pub bb_steps: u64,
}

/// The PBQP solver. See the crate docs for the algorithm outline.
///
/// # Example
///
/// ```
/// use pbqp_solver::{PbqpGraph, Solver};
///
/// let mut g = PbqpGraph::new();
/// let n = g.add_node(vec![3.0, 1.0, 2.0]);
/// let s = Solver::new().solve(&g).unwrap();
/// assert_eq!(s.selection(n), 1);
/// assert_eq!(s.total_cost, 1.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Solver {
    heuristic_only: bool,
    bb_step_budget: u64,
    bb_core_budget: usize,
}

impl Default for Solver {
    fn default() -> Self {
        Solver::new()
    }
}

impl Solver {
    /// Creates a solver with the default exact-search budgets.
    pub fn new() -> Solver {
        Solver { heuristic_only: false, bb_step_budget: 20_000_000, bb_core_budget: 128 }
    }

    /// Disables branch and bound; the irreducible core is solved with the
    /// RN local-minimum heuristic only. Solutions are marked non-optimal
    /// whenever a core exists. Used by the solver-ablation benchmark.
    pub fn heuristic_only(mut self, yes: bool) -> Solver {
        self.heuristic_only = yes;
        self
    }

    /// Caps branch-and-bound search steps before falling back to the
    /// incumbent heuristic solution.
    pub fn bb_step_budget(mut self, steps: u64) -> Solver {
        self.bb_step_budget = steps;
        self
    }

    /// Solves the instance.
    ///
    /// # Errors
    ///
    /// Returns [`PbqpError::Infeasible`] when every complete assignment has
    /// infinite cost (e.g. two adjacent nodes with no legal layout chain).
    pub fn solve(&self, g: &PbqpGraph) -> Result<Solution, PbqpError> {
        if g.num_nodes() == 0 {
            return Ok(Solution {
                selections: Vec::new(),
                total_cost: 0.0,
                optimal: true,
                stats: SolveStats::default(),
            });
        }

        let mut st = State::new(g);
        let mut stats = SolveStats::default();
        st.normalize_all();
        st.reduce(&mut stats);

        let core: Vec<usize> = (0..st.costs.len()).filter(|&u| st.alive[u]).collect();
        stats.core_nodes = core.len();

        let mut selections = vec![usize::MAX; g.num_nodes()];
        let mut proved_optimal = true;
        if !core.is_empty() {
            let (core_sel, exact) = self.solve_core(&st, &core, &mut stats);
            proved_optimal = exact;
            for (&u, &s) in core.iter().zip(&core_sel) {
                selections[u] = s;
            }
        }

        // Back-propagate eliminated nodes in reverse elimination order.
        for record in st.trail.iter().rev() {
            match record {
                Reduction::R0 { node, choice } => selections[*node] = *choice,
                Reduction::RI { node, neighbor, best } => {
                    selections[*node] = best[selections[*neighbor]];
                }
                Reduction::RII { node, v, w, best, w_options } => {
                    selections[*node] = best[selections[*v] * w_options + selections[*w]];
                }
            }
        }

        let total_cost = g.assignment_cost(&selections);
        if !total_cost.is_finite() {
            return Err(PbqpError::Infeasible);
        }
        Ok(Solution { selections, total_cost, optimal: proved_optimal, stats })
    }

    /// Exhaustively enumerates every assignment. Exponential; intended for
    /// cross-checking the reduction-based solver on small instances and for
    /// the solver-ablation benchmark.
    ///
    /// # Errors
    ///
    /// Returns [`PbqpError::Infeasible`] when no finite assignment exists.
    pub fn solve_exhaustive(&self, g: &PbqpGraph) -> Result<Solution, PbqpError> {
        let n = g.num_nodes();
        let mut current = vec![0usize; n];
        let mut best: Option<(f64, Vec<usize>)> = None;
        loop {
            let cost = g.assignment_cost(&current);
            if cost.is_finite() && best.as_ref().is_none_or(|(b, _)| cost < *b) {
                best = Some((cost, current.clone()));
            }
            // Odometer increment over the option space.
            let mut ix = 0;
            loop {
                if ix == n {
                    let (total_cost, selections) = best.ok_or(PbqpError::Infeasible)?;
                    return Ok(Solution {
                        selections,
                        total_cost,
                        optimal: true,
                        stats: SolveStats::default(),
                    });
                }
                current[ix] += 1;
                if current[ix] < g.node_costs(PbqpNodeId(ix)).len() {
                    break;
                }
                current[ix] = 0;
                ix += 1;
            }
        }
    }

    /// Solves the irreducible core: RN-greedy incumbent, then exact branch
    /// and bound unless disabled or over budget. Returns the selection (in
    /// `core` order) and whether it is proved optimal.
    fn solve_core(&self, st: &State, core: &[usize], stats: &mut SolveStats) -> (Vec<usize>, bool) {
        // Order: highest degree first (classic RN order).
        let mut order: Vec<usize> = (0..core.len()).collect();
        order.sort_by_key(|&ci| std::cmp::Reverse(st.adj[core[ci]].len()));

        let incumbent = self.rn_greedy(st, core, &order);
        let incumbent_cost = self.core_cost(st, core, &incumbent);

        if self.heuristic_only || core.len() > self.bb_core_budget {
            return (incumbent, false);
        }

        let mut best = incumbent;
        let mut best_cost = incumbent_cost;
        let mut steps = 0u64;
        let mut sel = vec![usize::MAX; core.len()];
        let complete =
            self.branch(st, core, &order, 0, 0.0, &mut sel, &mut best, &mut best_cost, &mut steps);
        stats.bb_steps = steps;
        (best, complete)
    }

    /// RN heuristic: assign nodes in `order`, each to its locally cheapest
    /// option given already-assigned neighbours (optimistic minima toward
    /// unassigned ones).
    fn rn_greedy(&self, st: &State, core: &[usize], order: &[usize]) -> Vec<usize> {
        let pos: HashMap<usize, usize> = core.iter().enumerate().map(|(ci, &u)| (u, ci)).collect();
        let mut sel = vec![usize::MAX; core.len()];
        for &ci in order {
            let u = core[ci];
            let opts = st.costs[u].len();
            let mut best_opt = 0;
            let mut best_val = f64::INFINITY;
            for i in 0..opts {
                let mut v = st.costs[u][i];
                for (&nb, m) in &st.adj[u] {
                    let Some(&nci) = pos.get(&nb) else { continue };
                    if sel[nci] != usize::MAX {
                        v += m.at(i, sel[nci]);
                    } else {
                        v += m.row_min(i);
                    }
                }
                if v < best_val {
                    best_val = v;
                    best_opt = i;
                }
            }
            sel[ci] = best_opt;
        }
        sel
    }

    fn core_cost(&self, st: &State, core: &[usize], sel: &[usize]) -> f64 {
        let pos: HashMap<usize, usize> = core.iter().enumerate().map(|(ci, &u)| (u, ci)).collect();
        let mut total = 0.0;
        for (ci, &u) in core.iter().enumerate() {
            total += st.costs[u][sel[ci]];
            for (&nb, m) in &st.adj[u] {
                if nb > u {
                    total += m.at(sel[ci], sel[pos[&nb]]);
                }
            }
        }
        total
    }

    /// Depth-first branch and bound. Returns `true` when the search ran to
    /// completion (result provably optimal).
    #[allow(clippy::too_many_arguments)]
    fn branch(
        &self,
        st: &State,
        core: &[usize],
        order: &[usize],
        depth: usize,
        acc: f64,
        sel: &mut [usize],
        best: &mut Vec<usize>,
        best_cost: &mut f64,
        steps: &mut u64,
    ) -> bool {
        *steps += 1;
        if *steps > self.bb_step_budget {
            return false;
        }
        if depth == order.len() {
            if acc < *best_cost {
                *best_cost = acc;
                best.copy_from_slice(sel);
            }
            return true;
        }

        let pos: HashMap<usize, usize> = core.iter().enumerate().map(|(ci, &u)| (u, ci)).collect();
        let ci = order[depth];
        let u = core[ci];
        let opts = st.costs[u].len();

        // Conditioned cost of each option: node cost + edges to assigned.
        let mut cond: Vec<(f64, usize)> = (0..opts)
            .map(|i| {
                let mut v = st.costs[u][i];
                for (&nb, m) in &st.adj[u] {
                    let Some(&nci) = pos.get(&nb) else { continue };
                    if sel[nci] != usize::MAX {
                        v += m.at(i, sel[nci]);
                    }
                }
                (v, i)
            })
            .collect();
        cond.sort_by(|a, b| a.0.total_cmp(&b.0));

        let mut complete = true;
        for (v, i) in cond {
            if !v.is_finite() {
                break; // sorted: everything after is infinite too
            }
            let next_acc = acc + v;
            // Optimistic bound: every unassigned node takes its cheapest
            // conditioned option; unassigned-unassigned edges take their
            // matrix minimum (counted once, from the lower-indexed side).
            sel[ci] = i;
            let mut bound = next_acc;
            for &cj in &order[depth + 1..] {
                let nu = core[cj];
                let mut node_best = f64::INFINITY;
                for oi in 0..st.costs[nu].len() {
                    let mut nv = st.costs[nu][oi];
                    for (&nb, m) in &st.adj[nu] {
                        let Some(&nci) = pos.get(&nb) else { continue };
                        if sel[nci] != usize::MAX {
                            nv += m.at(oi, sel[nci]);
                        }
                    }
                    node_best = node_best.min(nv);
                }
                bound += node_best;
            }
            if bound < *best_cost {
                complete &=
                    self.branch(st, core, order, depth + 1, next_acc, sel, best, best_cost, steps);
            }
            sel[ci] = usize::MAX;
            if *steps > self.bb_step_budget {
                return false;
            }
        }
        complete
    }
}

/// Back-propagation record for one eliminated node.
#[allow(clippy::upper_case_acronyms)] // RI/RII are the literature's names
enum Reduction {
    R0 { node: usize, choice: usize },
    RI { node: usize, neighbor: usize, best: Vec<usize> },
    RII { node: usize, v: usize, w: usize, best: Vec<usize>, w_options: usize },
}

/// Mutable solver state: cost vectors, adjacency with per-node oriented
/// matrices (rows index the owning node's options), and the reduction
/// trail.
struct State {
    costs: Vec<Vec<f64>>,
    /// adj[u][v] = matrix with rows = u's options, cols = v's options.
    adj: Vec<HashMap<usize, CostMatrix>>,
    alive: Vec<bool>,
    trail: Vec<Reduction>,
}

impl State {
    fn new(g: &PbqpGraph) -> State {
        let n = g.num_nodes();
        let mut adj: Vec<HashMap<usize, CostMatrix>> = vec![HashMap::new(); n];
        for (&(u, v), m) in &g.edges {
            adj[u].insert(v, m.clone());
            adj[v].insert(u, m.transposed());
        }
        State { costs: g.costs.clone(), adj, alive: vec![true; n], trail: Vec::new() }
    }

    /// Pushes independent row/column minima of every edge into node costs
    /// and deletes edges that become all-zero.
    fn normalize_all(&mut self) {
        let pairs: Vec<(usize, usize)> = (0..self.adj.len())
            .flat_map(|u| {
                self.adj[u]
                    .keys()
                    .filter(move |&&v| v > u)
                    .map(move |&v| (u, v))
                    .collect::<Vec<_>>()
            })
            .collect();
        for (u, v) in pairs {
            self.normalize_edge(u, v);
        }
    }

    /// Normalizes the edge `(u, v)`; removes it if its matrix becomes zero.
    fn normalize_edge(&mut self, u: usize, v: usize) {
        let Some(mut m) = self.adj[u].remove(&v) else { return };
        self.adj[v].remove(&u);

        // Row pass: minima into u's costs.
        for i in 0..m.rows() {
            let rm = m.row_min(i);
            if rm == f64::INFINITY {
                // Option i at u is illegal whatever v picks.
                self.costs[u][i] = f64::INFINITY;
                for j in 0..m.cols() {
                    m.set(i, j, 0.0);
                }
            } else if rm != 0.0 {
                self.costs[u][i] += rm;
                for j in 0..m.cols() {
                    let cur = m.at(i, j);
                    m.set(i, j, if cur == f64::INFINITY { cur } else { cur - rm });
                }
            }
        }
        // Column pass: minima into v's costs.
        for j in 0..m.cols() {
            let cm = m.col_min(j);
            if cm == f64::INFINITY {
                self.costs[v][j] = f64::INFINITY;
                for i in 0..m.rows() {
                    m.set(i, j, 0.0);
                }
            } else if cm != 0.0 {
                self.costs[v][j] += cm;
                for i in 0..m.rows() {
                    let cur = m.at(i, j);
                    m.set(i, j, if cur == f64::INFINITY { cur } else { cur - cm });
                }
            }
        }

        if !m.is_zero() {
            self.adj[v].insert(u, m.transposed());
            self.adj[u].insert(v, m);
        }
    }

    /// Runs R0/RI/RII to a fixed point.
    fn reduce(&mut self, stats: &mut SolveStats) {
        loop {
            // Lowest-degree reducible node first.
            let mut candidate: Option<(usize, usize)> = None; // (degree, node)
            for u in 0..self.costs.len() {
                if !self.alive[u] {
                    continue;
                }
                let d = self.adj[u].len();
                if d <= 2 && candidate.is_none_or(|(cd, _)| d < cd) {
                    candidate = Some((d, u));
                    if d == 0 {
                        break;
                    }
                }
            }
            let Some((degree, u)) = candidate else { return };
            match degree {
                0 => self.reduce_r0(u, stats),
                1 => self.reduce_r1(u, stats),
                2 => self.reduce_r2(u, stats),
                _ => unreachable!(),
            }
        }
    }

    fn reduce_r0(&mut self, u: usize, stats: &mut SolveStats) {
        let choice = argmin(&self.costs[u]);
        self.trail.push(Reduction::R0 { node: u, choice });
        self.alive[u] = false;
        stats.r0 += 1;
    }

    fn reduce_r1(&mut self, u: usize, stats: &mut SolveStats) {
        let (&v, _) = self.adj[u].iter().next().expect("degree 1");
        let m = self.adj[u].remove(&v).expect("edge present");
        self.adj[v].remove(&u);

        let v_opts = self.costs[v].len();
        let mut best = vec![0usize; v_opts];
        #[allow(clippy::needless_range_loop)] // j also indexes the matrix column
        for j in 0..v_opts {
            let mut bi = 0;
            let mut bv = f64::INFINITY;
            for i in 0..self.costs[u].len() {
                let val = self.costs[u][i] + m.at(i, j);
                if val < bv {
                    bv = val;
                    bi = i;
                }
            }
            // All-infinite column: option j at v is infeasible.
            self.costs[v][j] += if bv.is_finite() { bv } else { f64::INFINITY };
            best[j] = bi;
        }
        self.trail.push(Reduction::RI { node: u, neighbor: v, best });
        self.alive[u] = false;
        stats.r1 += 1;
    }

    fn reduce_r2(&mut self, u: usize, stats: &mut SolveStats) {
        let mut it = self.adj[u].keys().copied();
        let v = it.next().expect("degree 2");
        let w = it.next().expect("degree 2");
        drop(it);
        let muv = self.adj[u].remove(&v).expect("edge");
        let muw = self.adj[u].remove(&w).expect("edge");
        self.adj[v].remove(&u);
        self.adj[w].remove(&u);

        let v_opts = self.costs[v].len();
        let w_opts = self.costs[w].len();
        let mut delta = CostMatrix::zeros(v_opts, w_opts);
        let mut best = vec![0usize; v_opts * w_opts];
        for j in 0..v_opts {
            for l in 0..w_opts {
                let mut bi = 0;
                let mut bv = f64::INFINITY;
                for i in 0..self.costs[u].len() {
                    let val = self.costs[u][i] + muv.at(i, j) + muw.at(i, l);
                    if val < bv {
                        bv = val;
                        bi = i;
                    }
                }
                delta.set(j, l, if bv.is_finite() { bv } else { f64::INFINITY });
                best[j * w_opts + l] = bi;
            }
        }

        // Merge the induced edge into any existing (v, w) edge.
        match self.adj[v].get_mut(&w) {
            Some(existing) => {
                existing.add_assign(&delta);
                let updated = existing.clone();
                self.adj[w].insert(v, updated.transposed());
            }
            None => {
                self.adj[v].insert(w, delta.clone());
                self.adj[w].insert(v, delta.transposed());
            }
        }
        self.normalize_edge(v.min(w), v.max(w));

        self.trail.push(Reduction::RII { node: u, v, w, best, w_options: w_opts });
        self.alive[u] = false;
        stats.r2 += 1;
    }
}

fn argmin(xs: &[f64]) -> usize {
    let mut bi = 0;
    let mut bv = f64::INFINITY;
    for (i, &v) in xs.iter().enumerate() {
        if v < bv {
            bv = v;
            bi = i;
        }
    }
    bi
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 2a of the paper: three layers, node costs only.
    fn figure2_nodes() -> (PbqpGraph, [PbqpNodeId; 3]) {
        let mut g = PbqpGraph::new();
        let c1 = g.add_node(vec![8.0, 6.0, 10.0]);
        let c2 = g.add_node(vec![17.0, 19.0, 14.0]);
        let c3 = g.add_node(vec![20.0, 17.0, 22.0]);
        (g, [c1, c2, c3])
    }

    #[test]
    fn figure2a_node_costs_only() {
        let (g, [c1, c2, c3]) = figure2_nodes();
        let s = Solver::new().solve(&g).unwrap();
        assert!(s.optimal);
        // Paper: selections B, C, B with total cost 37.
        assert_eq!(s.selection(c1), 1);
        assert_eq!(s.selection(c2), 2);
        assert_eq!(s.selection(c3), 1);
        assert_eq!(s.total_cost, 37.0);
    }

    #[test]
    fn figure2b_with_edge_costs() {
        let (mut g, [c1, c2, c3]) = figure2_nodes();
        g.add_edge(
            c1,
            c2,
            CostMatrix::from_rows(&[vec![0.0, 2.0, 4.0], vec![4.0, 0.0, 5.0], vec![2.0, 1.0, 0.0]]),
        )
        .unwrap();
        g.add_edge(
            c2,
            c3,
            CostMatrix::from_rows(&[vec![0.0, 3.0, 5.0], vec![6.0, 0.0, 5.0], vec![1.0, 5.0, 0.0]]),
        )
        .unwrap();
        let s = Solver::new().solve(&g).unwrap();
        let brute = Solver::new().solve_exhaustive(&g).unwrap();
        assert!(s.optimal);
        assert_eq!(s.total_cost, brute.total_cost);
        // The data-layout costs change the optimum away from the pure
        // node-cost selection (B, C, B) of Figure 2a.
        assert_eq!(g.assignment_cost(&[1, 2, 1]), 37.0 + 5.0 + 5.0);
        assert!(s.total_cost < 47.0);
    }

    #[test]
    fn single_node_and_empty_graph() {
        let g = PbqpGraph::new();
        let s = Solver::new().solve(&g).unwrap();
        assert_eq!(s.total_cost, 0.0);
        assert!(s.optimal);

        let mut g = PbqpGraph::new();
        let n = g.add_node(vec![4.0, 2.0, 9.0]);
        let s = Solver::new().solve(&g).unwrap();
        assert_eq!(s.selection(n), 1);
        assert_eq!(s.stats.r0, 1);
    }

    #[test]
    fn infinite_pairs_force_detours() {
        // Two nodes, the cheap-cheap pairing is illegal.
        let mut g = PbqpGraph::new();
        let a = g.add_node(vec![1.0, 10.0]);
        let b = g.add_node(vec![1.0, 10.0]);
        g.add_edge(a, b, CostMatrix::from_rows(&[vec![f64::INFINITY, 0.0], vec![0.0, 0.0]]))
            .unwrap();
        let s = Solver::new().solve(&g).unwrap();
        assert!(s.optimal);
        assert_eq!(s.total_cost, 11.0);
    }

    #[test]
    fn fully_infeasible_instance_errors() {
        let mut g = PbqpGraph::new();
        let a = g.add_node(vec![1.0]);
        let b = g.add_node(vec![1.0]);
        g.add_edge(a, b, CostMatrix::from_rows(&[vec![f64::INFINITY]])).unwrap();
        assert_eq!(Solver::new().solve(&g), Err(PbqpError::Infeasible));
        assert_eq!(Solver::new().solve_exhaustive(&g), Err(PbqpError::Infeasible));
    }

    #[test]
    fn diamond_dag_requires_rn_or_bb_and_is_exact() {
        // A diamond: s fans out to a, b which join at t. Degrees: s:2 a:2
        // b:2 t:2 — RII applies, possibly leaving a multi-edge core.
        let mut g = PbqpGraph::new();
        let s = g.add_node(vec![0.0, 5.0]);
        let a = g.add_node(vec![1.0, 1.0]);
        let b = g.add_node(vec![2.0, 0.0]);
        let t = g.add_node(vec![0.0, 0.0]);
        let cheap_same = CostMatrix::from_rows(&[vec![0.0, 3.0], vec![3.0, 0.0]]);
        g.add_edge(s, a, cheap_same.clone()).unwrap();
        g.add_edge(s, b, cheap_same.clone()).unwrap();
        g.add_edge(a, t, cheap_same.clone()).unwrap();
        g.add_edge(b, t, cheap_same).unwrap();
        let fast = Solver::new().solve(&g).unwrap();
        let brute = Solver::new().solve_exhaustive(&g).unwrap();
        assert!(fast.optimal);
        assert_eq!(fast.total_cost, brute.total_cost);
    }

    #[test]
    fn random_instances_match_exhaustive() {
        // Deterministic pseudo-random graphs of varying topology.
        let mut state = 12345u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for trial in 0..40 {
            let n = 2 + next() % 5;
            let mut g = PbqpGraph::new();
            let ids: Vec<PbqpNodeId> = (0..n)
                .map(|_| {
                    let opts = 1 + next() % 4;
                    g.add_node((0..opts).map(|_| (next() % 50) as f64).collect())
                })
                .collect();
            for i in 0..n {
                for j in (i + 1)..n {
                    if next() % 100 < 55 {
                        let rows = g.node_costs(ids[i]).len();
                        let cols = g.node_costs(ids[j]).len();
                        let m = CostMatrix::from_fn(rows, cols, |_, _| {
                            let v = next() % 30;
                            if v == 0 {
                                f64::INFINITY
                            } else {
                                v as f64
                            }
                        });
                        g.add_edge(ids[i], ids[j], m).unwrap();
                    }
                }
            }
            let fast = Solver::new().solve(&g);
            let brute = Solver::new().solve_exhaustive(&g);
            match (fast, brute) {
                (Ok(f), Ok(b)) => {
                    assert!(f.optimal, "trial {trial} not proved optimal");
                    assert_eq!(f.total_cost, b.total_cost, "trial {trial}");
                }
                (Err(PbqpError::Infeasible), Err(PbqpError::Infeasible)) => {}
                (f, b) => panic!("trial {trial}: divergent outcomes {f:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn heuristic_only_reports_non_optimal_on_cores() {
        // A 4-clique can't be fully reduced by R0–RII.
        let mut g = PbqpGraph::new();
        let ids: Vec<_> = (0..4).map(|i| g.add_node(vec![i as f64, 2.0])).collect();
        let m = CostMatrix::from_rows(&[vec![0.0, 2.0], vec![2.0, 0.0]]);
        for i in 0..4 {
            for j in (i + 1)..4 {
                g.add_edge(ids[i], ids[j], m.clone()).unwrap();
            }
        }
        let h = Solver::new().heuristic_only(true).solve(&g).unwrap();
        assert!(!h.optimal);
        assert!(h.stats.core_nodes > 0);
        let exact = Solver::new().solve(&g).unwrap();
        assert!(exact.optimal);
        assert!(exact.total_cost <= h.total_cost);
    }

    #[test]
    fn long_chain_reduces_without_core() {
        // A 50-node path: RI/RII must dissolve it entirely.
        let mut g = PbqpGraph::new();
        let ids: Vec<_> = (0..50).map(|i| g.add_node(vec![(i % 3) as f64, 1.0, 2.0])).collect();
        let m = CostMatrix::from_fn(3, 3, |i, j| if i == j { 0.0 } else { 1.5 });
        for pair in ids.windows(2) {
            g.add_edge(pair[0], pair[1], m.clone()).unwrap();
        }
        let s = Solver::new().solve(&g).unwrap();
        assert!(s.optimal);
        assert_eq!(s.stats.core_nodes, 0);
        assert!(s.stats.r1 + s.stats.r2 + s.stats.r0 == 50);
    }
}
