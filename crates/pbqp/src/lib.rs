//! A Partitioned Boolean Quadratic Programming (PBQP) solver.
//!
//! PBQP is the assignment problem at the heart of the paper: every graph
//! node has a vector of selection costs, every edge a matrix of pair costs
//! indexed by the selections of its endpoints, and a solution picks one
//! selection per node minimizing the total. The problem is NP-hard; this
//! solver follows the Scholz/Eckstein/Hames line used by the paper:
//!
//! 1. **normalization** — independent row/column components of edge
//!    matrices are folded into node cost vectors; all-zero matrices delete
//!    their edge;
//! 2. **R0/RI/RII reductions** — degree-0, -1 and -2 nodes are eliminated
//!    exactly, recording back-propagation functions;
//! 3. the irreducible core is solved **exactly by branch and bound**
//!    (with the RN local-minimum heuristic supplying the incumbent), or
//!    heuristically when the core exceeds a configurable budget.
//!
//! The returned [`Solution`] reports whether it is provably optimal —
//! mirroring §5.4 of the paper, where the solver reported optimality for
//! every evaluated network.
//!
//! # Example
//!
//! ```
//! use pbqp_solver::{CostMatrix, PbqpGraph, Solver};
//!
//! let mut g = PbqpGraph::new();
//! let a = g.add_node(vec![8.0, 6.0, 10.0]);
//! let b = g.add_node(vec![17.0, 19.0, 14.0]);
//! g.add_edge(a, b, CostMatrix::from_rows(&[
//!     vec![0.0, 2.0, 4.0],
//!     vec![4.0, 0.0, 5.0],
//!     vec![2.0, 1.0, 0.0],
//! ])).unwrap();
//! let solution = Solver::new().solve(&g).unwrap();
//! assert!(solution.optimal);
//! // Selection C for both nodes: 10 + 14 plus edge cost M[C][C] = 0.
//! // Cheaper than the node-wise optima B (6) and C (14), which pay edge 5.
//! assert_eq!(solution.total_cost, 24.0);
//! assert_eq!(solution.selection(a), 2);
//! assert_eq!(solution.selection(b), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod graph;
mod matrix;
mod solve;

pub use graph::{PbqpError, PbqpGraph, PbqpNodeId};
pub use matrix::CostMatrix;
pub use solve::{Solution, SolveStats, Solver};
