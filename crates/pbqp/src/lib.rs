//! A Partitioned Boolean Quadratic Programming (PBQP) solver.
//!
//! PBQP is the assignment problem at the heart of the paper: every graph
//! node has a vector of selection costs, every edge a matrix of pair costs
//! indexed by the selections of its endpoints, and a solution picks one
//! selection per node minimizing the total. The problem is NP-hard; this
//! solver follows the Scholz/Eckstein/Hames line used by the paper:
//!
//! 1. **normalization** — independent row/column components of edge
//!    matrices are folded into node cost vectors; all-zero matrices delete
//!    their edge;
//! 2. **R0/RI/RII reductions** — degree-0, -1 and -2 nodes are eliminated
//!    exactly, recording back-propagation functions;
//! 3. the irreducible core is solved **exactly by branch and bound**
//!    (with the RN local-minimum heuristic supplying the incumbent), or
//!    heuristically when the core exceeds a configurable budget.
//!
//! The returned [`Solution`] reports whether it is provably optimal —
//! mirroring §5.4 of the paper, where the solver reported optimality for
//! every evaluated network.
//!
//! # Example
//!
//! ```
//! use pbqp_solver::{CostMatrix, PbqpGraph, Solver};
//!
//! let mut g = PbqpGraph::new();
//! let a = g.add_node(vec![8.0, 6.0, 10.0]);
//! let b = g.add_node(vec![17.0, 19.0, 14.0]);
//! g.add_edge(a, b, CostMatrix::from_rows(&[
//!     vec![0.0, 2.0, 4.0],
//!     vec![4.0, 0.0, 5.0],
//!     vec![2.0, 1.0, 0.0],
//! ])).unwrap();
//! let solution = Solver::new().solve(&g).unwrap();
//! assert!(solution.optimal);
//! // Selection C for both nodes: 10 + 14 plus edge cost M[C][C] = 0.
//! // Cheaper than the node-wise optima B (6) and C (14), which pay edge 5.
//! assert_eq!(solution.total_cost, 24.0);
//! assert_eq!(solution.selection(a), 2);
//! assert_eq!(solution.selection(b), 2);
//! ```
//!
//! # Example: heuristic-only solving and solver statistics
//!
//! The RN heuristic alone reproduces the paper's ablation (§5.5's
//! "PBQP (RN heuristic)" bars): it never beats the exact back-end, and
//! the [`SolveStats`] report how much reduction work each mode did. In a
//! serving system the solver runs once per (model, machine) pair and its
//! result is memoized — see `PlanCache` in `pbqp-dnn-select` — so the
//! exact back-end's extra milliseconds amortize to nothing.
//!
//! ```
//! use pbqp_solver::{CostMatrix, PbqpGraph, Solver};
//!
//! // A triangle of nodes, where greedy local choices are misleading.
//! let mut g = PbqpGraph::new();
//! let n: Vec<_> = (0..3).map(|i| g.add_node(vec![1.0 + i as f64, 2.0])).collect();
//! for (a, b) in [(0, 1), (1, 2), (0, 2)] {
//!     g.add_edge(n[a], n[b], CostMatrix::from_rows(&[
//!         vec![4.0, 0.0],
//!         vec![0.0, 4.0],
//!     ])).unwrap();
//! }
//!
//! let exact = Solver::new().solve(&g).unwrap();
//! let heuristic = Solver::new().heuristic_only(true).solve(&g).unwrap();
//! assert!(exact.optimal);
//! assert!(exact.total_cost <= heuristic.total_cost);
//! // Degree-2 reductions handled the triangle exactly; the stats say so.
//! assert!(exact.stats.r0 + exact.stats.r1 + exact.stats.r2 > 0 || exact.stats.core_nodes > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod graph;
mod matrix;
mod solve;

pub use graph::{PbqpError, PbqpGraph, PbqpNodeId};
pub use matrix::CostMatrix;
pub use solve::{Solution, SolveStats, Solver};
