use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use crate::CostMatrix;

/// Identifier of a PBQP node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PbqpNodeId(pub(crate) usize);

impl PbqpNodeId {
    /// Dense 0-based index of the node.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for PbqpNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Errors from PBQP instance construction or solving.
#[derive(Debug, Clone, PartialEq)]
pub enum PbqpError {
    /// Edge endpoint is not a node of the graph.
    UnknownNode(usize),
    /// Edge matrix shape does not match the endpoints' option counts.
    MatrixShape {
        /// Expected (rows, cols).
        expected: (usize, usize),
        /// Supplied (rows, cols).
        found: (usize, usize),
    },
    /// A node has an empty cost vector.
    EmptyCosts(usize),
    /// Self-loops are not part of the PBQP model.
    SelfLoop(usize),
    /// Every complete assignment has infinite cost.
    Infeasible,
}

impl fmt::Display for PbqpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PbqpError::UnknownNode(ix) => write!(f, "unknown PBQP node {ix}"),
            PbqpError::MatrixShape { expected, found } => {
                write!(f, "edge matrix is {found:?}, endpoints require {expected:?}")
            }
            PbqpError::EmptyCosts(ix) => write!(f, "node {ix} has no selection options"),
            PbqpError::SelfLoop(ix) => write!(f, "self loop on node {ix}"),
            PbqpError::Infeasible => f.write_str("every assignment has infinite cost"),
        }
    }
}

impl Error for PbqpError {}

/// A PBQP instance: nodes with selection-cost vectors and edges with
/// pair-cost matrices.
///
/// Parallel edges between the same node pair are merged by matrix
/// addition, which is exactly the PBQP semantics of multiple cost
/// contributions on one edge.
///
/// # Example
///
/// ```
/// use pbqp_solver::{CostMatrix, PbqpGraph};
///
/// let mut g = PbqpGraph::new();
/// let a = g.add_node(vec![1.0, 2.0]);
/// let b = g.add_node(vec![3.0]);
/// g.add_edge(a, b, CostMatrix::from_rows(&[vec![0.0], vec![1.0]])).unwrap();
/// assert_eq!(g.num_nodes(), 2);
/// assert_eq!(g.num_edges(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PbqpGraph {
    pub(crate) costs: Vec<Vec<f64>>,
    /// Keyed by `(lo, hi)` node index; matrix rows index `lo`'s options.
    pub(crate) edges: BTreeMap<(usize, usize), CostMatrix>,
}

impl PbqpGraph {
    /// Creates an empty instance.
    pub fn new() -> PbqpGraph {
        PbqpGraph::default()
    }

    /// Adds a node with the given selection costs and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `costs` is empty — a node must have at least one option.
    pub fn add_node(&mut self, costs: Vec<f64>) -> PbqpNodeId {
        assert!(!costs.is_empty(), "node must have at least one selection");
        let id = PbqpNodeId(self.costs.len());
        self.costs.push(costs);
        id
    }

    /// Adds an edge with cost matrix `m`, where `m[i][j]` is the cost of
    /// picking option `i` at `from` together with option `j` at `to`.
    /// Adding a second edge between the same pair sums the matrices.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown endpoints, self loops, or a matrix
    /// whose shape does not match the endpoints' option counts.
    pub fn add_edge(
        &mut self,
        from: PbqpNodeId,
        to: PbqpNodeId,
        m: CostMatrix,
    ) -> Result<(), PbqpError> {
        if from.0 >= self.costs.len() {
            return Err(PbqpError::UnknownNode(from.0));
        }
        if to.0 >= self.costs.len() {
            return Err(PbqpError::UnknownNode(to.0));
        }
        if from == to {
            return Err(PbqpError::SelfLoop(from.0));
        }
        let expected = (self.costs[from.0].len(), self.costs[to.0].len());
        if (m.rows(), m.cols()) != expected {
            return Err(PbqpError::MatrixShape { expected, found: (m.rows(), m.cols()) });
        }
        let (key, oriented) =
            if from.0 < to.0 { ((from.0, to.0), m) } else { ((to.0, from.0), m.transposed()) };
        match self.edges.get_mut(&key) {
            Some(existing) => existing.add_assign(&oriented),
            None => {
                self.edges.insert(key, oriented);
            }
        }
        Ok(())
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.costs.len()
    }

    /// Number of (merged) edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The cost vector of a node.
    pub fn node_costs(&self, id: PbqpNodeId) -> &[f64] {
        &self.costs[id.0]
    }

    /// Total cost of a complete assignment (`selection[i]` is the option
    /// picked for node `i`), including all edge costs.
    ///
    /// # Panics
    ///
    /// Panics if `selection` has the wrong length or an option index is
    /// out of range.
    pub fn assignment_cost(&self, selection: &[usize]) -> f64 {
        assert_eq!(selection.len(), self.costs.len(), "selection length mismatch");
        let mut total = 0.0;
        for (ix, &sel) in selection.iter().enumerate() {
            total += self.costs[ix][sel];
        }
        for (&(u, v), m) in &self.edges {
            total += m.at(selection[u], selection[v]);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_edges_merge_by_addition() {
        let mut g = PbqpGraph::new();
        let a = g.add_node(vec![0.0, 0.0]);
        let b = g.add_node(vec![0.0, 0.0]);
        let m = CostMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        g.add_edge(a, b, m.clone()).unwrap();
        // Reversed orientation: transposed before merging.
        g.add_edge(b, a, m).unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.assignment_cost(&[0, 1]), 2.0 + 3.0);
        assert_eq!(g.assignment_cost(&[1, 0]), 3.0 + 2.0);
    }

    #[test]
    fn shape_validation() {
        let mut g = PbqpGraph::new();
        let a = g.add_node(vec![0.0, 0.0]);
        let b = g.add_node(vec![0.0, 0.0, 0.0]);
        let bad = CostMatrix::zeros(3, 2);
        assert!(matches!(g.add_edge(a, b, bad), Err(PbqpError::MatrixShape { .. })));
        assert!(g.add_edge(a, b, CostMatrix::zeros(2, 3)).is_ok());
    }

    #[test]
    fn self_loops_rejected() {
        let mut g = PbqpGraph::new();
        let a = g.add_node(vec![0.0]);
        assert_eq!(g.add_edge(a, a, CostMatrix::zeros(1, 1)), Err(PbqpError::SelfLoop(0)));
    }

    #[test]
    fn assignment_cost_includes_nodes_and_edges() {
        let mut g = PbqpGraph::new();
        let a = g.add_node(vec![5.0, 1.0]);
        let b = g.add_node(vec![2.0, 7.0]);
        g.add_edge(a, b, CostMatrix::from_rows(&[vec![0.0, 10.0], vec![20.0, 0.0]])).unwrap();
        assert_eq!(g.assignment_cost(&[0, 0]), 5.0 + 2.0);
        assert_eq!(g.assignment_cost(&[1, 0]), 1.0 + 2.0 + 20.0);
    }
}
