use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::{ConvScenario, Layer, LayerKind};

/// Identifier of a node in a [`DnnGraph`].
///
/// Stable for the life of the graph; also usable as a dense index via
/// [`NodeId::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// Dense index of this node (0-based insertion order).
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Errors raised by graph construction and shape inference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge endpoint does not exist.
    UnknownNode(usize),
    /// The graph contains a cycle, so no topological order exists.
    Cyclic,
    /// A node that needs exactly one input has zero or several.
    ArityMismatch {
        /// Offending node name.
        node: String,
        /// Number of predecessors found.
        found: usize,
    },
    /// A conv scenario's `(c, h, w)` disagrees with its producer's shape.
    ShapeMismatch {
        /// Offending node name.
        node: String,
        /// Shape the node expected.
        expected: (usize, usize, usize),
        /// Shape the producer supplies.
        found: (usize, usize, usize),
    },
    /// Concat inputs disagree on spatial dimensions.
    ConcatMismatch {
        /// Offending node name.
        node: String,
    },
    /// Add inputs disagree on their full shape (residual merges require
    /// exact shape agreement).
    AddMismatch {
        /// Offending node name.
        node: String,
    },
    /// A pool layer's window parameters are degenerate: `k == 0`,
    /// `stride == 0`, or `pad >= k` (a window that never covers any
    /// input). Rejected at [`DnnGraph::try_add`] time, the same treatment
    /// [`crate::ConvScenario::new`] gives conv parameters.
    InvalidPool {
        /// Offending node name.
        node: String,
        /// Window radix.
        k: usize,
        /// Stride.
        stride: usize,
        /// Zero padding.
        pad: usize,
    },
    /// Two layers share a name; names must be unique for reporting.
    DuplicateName(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownNode(ix) => write!(f, "unknown node id {ix}"),
            GraphError::Cyclic => f.write_str("graph is cyclic"),
            GraphError::ArityMismatch { node, found } => {
                write!(f, "layer `{node}` needs exactly one input, found {found}")
            }
            GraphError::ShapeMismatch { node, expected, found } => {
                write!(f, "layer `{node}` expects input {expected:?}, producer supplies {found:?}")
            }
            GraphError::ConcatMismatch { node } => {
                write!(f, "concat `{node}` inputs disagree on spatial dimensions")
            }
            GraphError::AddMismatch { node } => {
                write!(f, "add `{node}` inputs disagree on shape")
            }
            GraphError::InvalidPool { node, k, stride, pad } => {
                write!(
                    f,
                    "pool `{node}` has degenerate window parameters \
                     (k = {k}, stride = {stride}, pad = {pad}): \
                     k and stride must be >= 1 and pad < k"
                )
            }
            GraphError::DuplicateName(name) => write!(f, "duplicate layer name `{name}`"),
        }
    }
}

impl Error for GraphError {}

/// A directed acyclic graph of DNN layers.
///
/// Nodes are added with [`DnnGraph::add`] and wired with
/// [`DnnGraph::connect`]; layer data flows along directed edges in
/// topological order (§2 of the paper).
///
/// # Example
///
/// ```
/// use pbqp_dnn_graph::{ConvScenario, DnnGraph, Layer, LayerKind};
///
/// let mut g = DnnGraph::new();
/// let input = g.add(Layer::new("data", LayerKind::Input { c: 3, h: 32, w: 32 }));
/// let conv = g.add(Layer::new(
///     "conv1",
///     LayerKind::Conv(ConvScenario::new(3, 32, 32, 1, 3, 16)),
/// ));
/// g.connect(input, conv).unwrap();
/// assert_eq!(g.topo_order().unwrap(), vec![input, conv]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DnnGraph {
    layers: Vec<Layer>,
    succs: Vec<Vec<NodeId>>,
    preds: Vec<Vec<NodeId>>,
}

impl DnnGraph {
    /// Creates an empty graph.
    pub fn new() -> DnnGraph {
        DnnGraph::default()
    }

    /// Adds a layer and returns its id.
    ///
    /// # Panics
    ///
    /// Panics on degenerate pool parameters (see [`DnnGraph::try_add`] for
    /// the fallible form) — the same treatment [`ConvScenario::new`] gives
    /// conv parameters, so malformed windows never survive construction.
    pub fn add(&mut self, layer: Layer) -> NodeId {
        match self.try_add(layer) {
            Ok(id) => id,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`DnnGraph::add`]: validates the layer's
    /// parameters before admitting it.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidPool`] for a pool layer with `k == 0`,
    /// `stride == 0` or `pad >= k` — parameters the pooling output
    /// formulas would underflow or divide by zero on.
    pub fn try_add(&mut self, layer: Layer) -> Result<NodeId, GraphError> {
        if let LayerKind::Pool { k, stride, pad, .. } = layer.kind {
            if k == 0 || stride == 0 || pad >= k {
                return Err(GraphError::InvalidPool { node: layer.name, k, stride, pad });
            }
        }
        let id = NodeId(self.layers.len());
        self.layers.push(layer);
        self.succs.push(Vec::new());
        self.preds.push(Vec::new());
        Ok(id)
    }

    /// Adds a directed edge `from → to`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownNode`] if either endpoint is not in the
    /// graph.
    pub fn connect(&mut self, from: NodeId, to: NodeId) -> Result<(), GraphError> {
        for id in [from, to] {
            if id.0 >= self.layers.len() {
                return Err(GraphError::UnknownNode(id.0));
            }
        }
        self.succs[from.0].push(to);
        self.preds[to.0].push(from);
        Ok(())
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the graph has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// The layer stored at `id`.
    pub fn layer(&self, id: NodeId) -> &Layer {
        &self.layers[id.0]
    }

    /// All node ids in insertion order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.layers.len()).map(NodeId)
    }

    /// Direct successors of `id`.
    pub fn successors(&self, id: NodeId) -> &[NodeId] {
        &self.succs[id.0]
    }

    /// Direct predecessors of `id`.
    pub fn predecessors(&self, id: NodeId) -> &[NodeId] {
        &self.preds[id.0]
    }

    /// All edges as `(from, to)` pairs.
    pub fn edges(&self) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::new();
        for (ix, succs) in self.succs.iter().enumerate() {
            for &to in succs {
                out.push((NodeId(ix), to));
            }
        }
        out
    }

    /// Ids of all convolution nodes, in insertion order.
    pub fn conv_nodes(&self) -> Vec<NodeId> {
        self.node_ids().filter(|&id| matches!(self.layer(id).kind, LayerKind::Conv(_))).collect()
    }

    /// Convolution scenarios keyed by node, in insertion order.
    pub fn conv_scenarios(&self) -> Vec<(NodeId, ConvScenario)> {
        self.conv_nodes()
            .into_iter()
            .map(|id| (id, *self.layer(id).kind.scenario().expect("conv node")))
            .collect()
    }

    /// Kahn topological order.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Cyclic`] if the graph has a cycle.
    pub fn topo_order(&self) -> Result<Vec<NodeId>, GraphError> {
        let mut indeg: Vec<usize> = self.preds.iter().map(Vec::len).collect();
        let mut queue: Vec<NodeId> = self.node_ids().filter(|id| indeg[id.0] == 0).collect();
        let mut order = Vec::with_capacity(self.len());
        let mut head = 0;
        while head < queue.len() {
            let id = queue[head];
            head += 1;
            order.push(id);
            for &s in &self.succs[id.0] {
                indeg[s.0] -= 1;
                if indeg[s.0] == 0 {
                    queue.push(s);
                }
            }
        }
        if order.len() == self.len() {
            Ok(order)
        } else {
            Err(GraphError::Cyclic)
        }
    }

    /// Infers the output shape `(c, h, w)` of every node and validates the
    /// wiring (arity, conv scenario consistency, concat compatibility).
    ///
    /// # Errors
    ///
    /// Returns the first structural or shape error found.
    pub fn infer_shapes(&self) -> Result<Vec<(usize, usize, usize)>, GraphError> {
        let mut names = HashMap::new();
        for layer in &self.layers {
            if names.insert(layer.name.as_str(), ()).is_some() {
                return Err(GraphError::DuplicateName(layer.name.clone()));
            }
        }

        let order = self.topo_order()?;
        let mut shapes = vec![(0usize, 0usize, 0usize); self.len()];
        for id in order {
            let layer = &self.layers[id.0];
            let preds = &self.preds[id.0];
            let single =
                |found: usize| GraphError::ArityMismatch { node: layer.name.clone(), found };
            shapes[id.0] = match &layer.kind {
                LayerKind::Input { c, h, w } => {
                    if !preds.is_empty() {
                        return Err(single(preds.len()));
                    }
                    (*c, *h, *w)
                }
                LayerKind::Conv(s) => {
                    if preds.len() != 1 {
                        return Err(single(preds.len()));
                    }
                    let got = shapes[preds[0].0];
                    if got != (s.c, s.h, s.w) {
                        return Err(GraphError::ShapeMismatch {
                            node: layer.name.clone(),
                            expected: (s.c, s.h, s.w),
                            found: got,
                        });
                    }
                    (s.m, s.out_h(), s.out_w())
                }
                LayerKind::Pool { k, stride, pad, .. } => {
                    if preds.len() != 1 {
                        return Err(single(preds.len()));
                    }
                    let (c, h, w) = shapes[preds[0].0];
                    // Caffe's ceil convention for pooling output dims.
                    let oh = (h + 2 * pad - k).div_ceil(*stride) + 1;
                    let ow = (w + 2 * pad - k).div_ceil(*stride) + 1;
                    (c, oh, ow)
                }
                LayerKind::Relu | LayerKind::Lrn | LayerKind::Dropout | LayerKind::Softmax => {
                    if preds.len() != 1 {
                        return Err(single(preds.len()));
                    }
                    shapes[preds[0].0]
                }
                LayerKind::FullyConnected { out } => {
                    if preds.len() != 1 {
                        return Err(single(preds.len()));
                    }
                    (*out, 1, 1)
                }
                LayerKind::Concat => {
                    if preds.is_empty() {
                        return Err(single(0));
                    }
                    let (_, h0, w0) = shapes[preds[0].0];
                    let mut c_sum = 0;
                    for p in preds {
                        let (c, h, w) = shapes[p.0];
                        if (h, w) != (h0, w0) {
                            return Err(GraphError::ConcatMismatch { node: layer.name.clone() });
                        }
                        c_sum += c;
                    }
                    (c_sum, h0, w0)
                }
                LayerKind::Add => {
                    // A residual merge needs at least two operands, and
                    // elementwise addition requires exact shape agreement.
                    if preds.len() < 2 {
                        return Err(single(preds.len()));
                    }
                    let first = shapes[preds[0].0];
                    for p in &preds[1..] {
                        if shapes[p.0] != first {
                            return Err(GraphError::AddMismatch { node: layer.name.clone() });
                        }
                    }
                    first
                }
            };
        }
        Ok(shapes)
    }

    /// Total convolution FLOPs of the network (the dominant cost, §2.1).
    pub fn conv_flops(&self) -> usize {
        self.conv_scenarios().iter().map(|(_, s)| s.flops()).sum()
    }

    /// Looks up a node by layer name.
    pub fn find(&self, name: &str) -> Option<NodeId> {
        self.node_ids().find(|&id| self.layer(id).name == name)
    }

    /// The [`NodeId`] at dense index `index`, if the graph has one —
    /// the safe inverse of [`NodeId::index`] used when rehydrating
    /// serialized plans against their graph.
    pub fn node_id(&self, index: usize) -> Option<NodeId> {
        (index < self.layers.len()).then_some(NodeId(index))
    }

    /// A structural fingerprint of the graph: a 64-bit FNV-1a hash over
    /// every layer (name and kind, including full conv scenarios) and every
    /// edge, in insertion order.
    ///
    /// Two graphs with the same fingerprint describe the same network, so
    /// the fingerprint keys plan caches: repeated requests for a known
    /// (graph, strategy, cost source) triple can skip the PBQP solve.
    ///
    /// # Example
    ///
    /// ```
    /// use pbqp_dnn_graph::{DnnGraph, Layer, LayerKind};
    ///
    /// let mut a = DnnGraph::new();
    /// a.add(Layer::new("data", LayerKind::Input { c: 3, h: 8, w: 8 }));
    /// let mut b = a.clone();
    /// assert_eq!(a.fingerprint(), b.fingerprint());
    /// b.add(Layer::new("relu", LayerKind::Relu));
    /// assert_ne!(a.fingerprint(), b.fingerprint());
    /// ```
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = Fnv1a::default();
        self.layers.len().hash(&mut h);
        for layer in &self.layers {
            layer.name.hash(&mut h);
            layer.kind.hash(&mut h);
        }
        for (from, to) in self.edges() {
            from.index().hash(&mut h);
            to.index().hash(&mut h);
        }
        h.finish()
    }
}

/// 64-bit FNV-1a: a tiny, stable, dependency-free hasher behind the
/// workspace's structural fingerprints (the std `DefaultHasher` is
/// explicitly not stable across releases, so it cannot key anything that
/// should be reproducible).
///
/// # Example
///
/// ```
/// use std::hash::Hasher;
///
/// let mut h = pbqp_dnn_graph::Fnv1a::default();
/// h.write(b"conv1");
/// let fp = h.finish();
/// let mut h2 = pbqp_dnn_graph::Fnv1a::default();
/// h2.write(b"conv1");
/// assert_eq!(fp, h2.finish());
/// ```
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(0xcbf29ce484222325)
    }
}

impl std::hash::Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PoolKind;

    fn linear_graph() -> (DnnGraph, NodeId, NodeId, NodeId) {
        let mut g = DnnGraph::new();
        let input = g.add(Layer::new("data", LayerKind::Input { c: 3, h: 8, w: 8 }));
        let conv = g.add(Layer::new("conv1", LayerKind::Conv(ConvScenario::new(3, 8, 8, 1, 3, 4))));
        let relu = g.add(Layer::new("relu1", LayerKind::Relu));
        g.connect(input, conv).unwrap();
        g.connect(conv, relu).unwrap();
        (g, input, conv, relu)
    }

    #[test]
    fn topo_order_respects_edges() {
        let (g, input, conv, relu) = linear_graph();
        assert_eq!(g.topo_order().unwrap(), vec![input, conv, relu]);
        assert_eq!(g.predecessors(conv), &[input]);
        assert_eq!(g.successors(conv), &[relu]);
        assert_eq!(g.edges().len(), 2);
    }

    #[test]
    fn cycles_are_detected() {
        let (mut g, input, _, relu) = linear_graph();
        g.connect(relu, input).unwrap();
        assert_eq!(g.topo_order(), Err(GraphError::Cyclic));
    }

    #[test]
    fn shapes_flow_through_pool_and_fc() {
        let mut g = DnnGraph::new();
        let input = g.add(Layer::new("data", LayerKind::Input { c: 4, h: 9, w: 9 }));
        let pool = g.add(Layer::new(
            "pool",
            LayerKind::Pool { kind: PoolKind::Max, k: 3, stride: 2, pad: 0 },
        ));
        let fc = g.add(Layer::new("fc", LayerKind::FullyConnected { out: 10 }));
        g.connect(input, pool).unwrap();
        g.connect(pool, fc).unwrap();
        let shapes = g.infer_shapes().unwrap();
        assert_eq!(shapes[pool.index()], (4, 4, 4));
        assert_eq!(shapes[fc.index()], (10, 1, 1));
    }

    #[test]
    fn pool_uses_ceil_convention() {
        // AlexNet pool1: 55 -> ceil((55-3)/2)+1 = 27.
        let mut g = DnnGraph::new();
        let input = g.add(Layer::new("data", LayerKind::Input { c: 96, h: 55, w: 55 }));
        let pool = g.add(Layer::new(
            "pool1",
            LayerKind::Pool { kind: PoolKind::Max, k: 3, stride: 2, pad: 0 },
        ));
        g.connect(input, pool).unwrap();
        assert_eq!(g.infer_shapes().unwrap()[pool.index()], (96, 27, 27));
    }

    #[test]
    fn conv_shape_mismatch_is_reported() {
        let mut g = DnnGraph::new();
        let input = g.add(Layer::new("data", LayerKind::Input { c: 3, h: 8, w: 8 }));
        let conv = g.add(Layer::new("bad", LayerKind::Conv(ConvScenario::new(5, 8, 8, 1, 3, 4))));
        g.connect(input, conv).unwrap();
        assert!(matches!(g.infer_shapes(), Err(GraphError::ShapeMismatch { .. })));
    }

    #[test]
    fn concat_sums_channels_and_checks_spatial_dims() {
        let mut g = DnnGraph::new();
        let a = g.add(Layer::new("a", LayerKind::Input { c: 2, h: 4, w: 4 }));
        let b = g.add(Layer::new("b", LayerKind::Input { c: 3, h: 4, w: 4 }));
        let cat = g.add(Layer::new("cat", LayerKind::Concat));
        g.connect(a, cat).unwrap();
        g.connect(b, cat).unwrap();
        assert_eq!(g.infer_shapes().unwrap()[cat.index()], (5, 4, 4));
    }

    #[test]
    fn add_requires_exact_shape_agreement() {
        let mut g = DnnGraph::new();
        let a = g.add(Layer::new("a", LayerKind::Input { c: 2, h: 4, w: 4 }));
        let b = g.add(Layer::new("b", LayerKind::Input { c: 2, h: 4, w: 4 }));
        let add = g.add(Layer::new("sum", LayerKind::Add));
        g.connect(a, add).unwrap();
        g.connect(b, add).unwrap();
        assert_eq!(g.infer_shapes().unwrap()[add.index()], (2, 4, 4));

        // A channel mismatch is rejected with the typed error.
        let mut bad = DnnGraph::new();
        let a = bad.add(Layer::new("a", LayerKind::Input { c: 2, h: 4, w: 4 }));
        let b = bad.add(Layer::new("b", LayerKind::Input { c: 3, h: 4, w: 4 }));
        let add = bad.add(Layer::new("sum", LayerKind::Add));
        bad.connect(a, add).unwrap();
        bad.connect(b, add).unwrap();
        assert_eq!(bad.infer_shapes(), Err(GraphError::AddMismatch { node: "sum".into() }));

        // A single-operand add is an arity error, not a silent identity.
        let mut unary = DnnGraph::new();
        let a = unary.add(Layer::new("a", LayerKind::Input { c: 2, h: 4, w: 4 }));
        let add = unary.add(Layer::new("sum", LayerKind::Add));
        unary.connect(a, add).unwrap();
        assert!(matches!(unary.infer_shapes(), Err(GraphError::ArityMismatch { .. })));
    }

    #[test]
    fn degenerate_pool_windows_are_rejected_at_add_time() {
        let pool = |k, stride, pad| {
            Layer::new("p", LayerKind::Pool { kind: PoolKind::Max, k, stride, pad })
        };
        for (k, stride, pad) in [(0usize, 2usize, 0usize), (3, 0, 0), (3, 2, 3), (2, 1, 5)] {
            let mut g = DnnGraph::new();
            let err = g.try_add(pool(k, stride, pad)).unwrap_err();
            assert_eq!(
                err,
                GraphError::InvalidPool { node: "p".into(), k, stride, pad },
                "k={k} stride={stride} pad={pad}"
            );
            assert!(g.is_empty(), "rejected layers must not be admitted");
        }
        // Valid windows (including pad = k - 1) are accepted.
        let mut g = DnnGraph::new();
        assert!(g.try_add(pool(3, 2, 2)).is_ok());
        assert!(g.try_add(Layer::new("q", LayerKind::Relu)).is_ok());
    }

    #[test]
    #[should_panic(expected = "degenerate window parameters")]
    fn infallible_add_panics_on_degenerate_pool() {
        let mut g = DnnGraph::new();
        g.add(Layer::new("p", LayerKind::Pool { kind: PoolKind::Avg, k: 0, stride: 1, pad: 0 }));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut g = DnnGraph::new();
        g.add(Layer::new("x", LayerKind::Input { c: 1, h: 1, w: 1 }));
        g.add(Layer::new("x", LayerKind::Input { c: 1, h: 1, w: 1 }));
        assert_eq!(g.infer_shapes(), Err(GraphError::DuplicateName("x".into())));
    }

    #[test]
    fn find_by_name() {
        let (g, _, conv, _) = linear_graph();
        assert_eq!(g.find("conv1"), Some(conv));
        assert_eq!(g.find("nope"), None);
    }

    #[test]
    fn fingerprint_is_stable_and_distinguishes_structure() {
        let (g, _, _, _) = linear_graph();
        let (h, _, _, _) = linear_graph();
        assert_eq!(g.fingerprint(), h.fingerprint());

        // Same layers, different wiring.
        let mut rewired = DnnGraph::new();
        let input = rewired.add(Layer::new("data", LayerKind::Input { c: 3, h: 8, w: 8 }));
        let conv =
            rewired.add(Layer::new("conv1", LayerKind::Conv(ConvScenario::new(3, 8, 8, 1, 3, 4))));
        let relu = rewired.add(Layer::new("relu1", LayerKind::Relu));
        rewired.connect(input, relu).unwrap();
        rewired.connect(relu, conv).unwrap();
        assert_ne!(g.fingerprint(), rewired.fingerprint());

        // A changed scenario parameter changes the fingerprint.
        let mut scaled = DnnGraph::new();
        let input = scaled.add(Layer::new("data", LayerKind::Input { c: 3, h: 8, w: 8 }));
        let conv =
            scaled.add(Layer::new("conv1", LayerKind::Conv(ConvScenario::new(3, 8, 8, 1, 3, 5))));
        let relu = scaled.add(Layer::new("relu1", LayerKind::Relu));
        scaled.connect(input, conv).unwrap();
        scaled.connect(conv, relu).unwrap();
        assert_ne!(g.fingerprint(), scaled.fingerprint());
    }
}
