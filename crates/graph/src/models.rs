//! Reconstruction of the evaluation networks from their publications:
//! AlexNet (Krizhevsky et al.), the VGG family (Simonyan & Zisserman,
//! configurations A–E) and GoogleNet (Szegedy et al.).
//!
//! These follow the public BVLC Caffe deploy definitions (the ones the
//! paper benchmarks): AlexNet takes 3×227×227 input; VGG and GoogleNet
//! take 3×224×224.

use crate::{ConvScenario, DnnGraph, Layer, LayerKind, NodeId, PoolKind};

/// VGG configuration letter (Simonyan & Zisserman, Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VggVariant {
    /// 11 weight layers (8 conv).
    A,
    /// 13 weight layers (10 conv).
    B,
    /// 16 weight layers with 1×1 convolutions (13 conv).
    C,
    /// 16 weight layers, all 3×3 (13 conv).
    D,
    /// 19 weight layers (16 conv).
    E,
}

impl VggVariant {
    /// All variants in publication order.
    pub const ALL: [VggVariant; 5] =
        [VggVariant::A, VggVariant::B, VggVariant::C, VggVariant::D, VggVariant::E];

    /// Configuration name, e.g. `"VGG-E"`.
    pub fn name(self) -> &'static str {
        match self {
            VggVariant::A => "VGG-A",
            VggVariant::B => "VGG-B",
            VggVariant::C => "VGG-C",
            VggVariant::D => "VGG-D",
            VggVariant::E => "VGG-E",
        }
    }

    /// Per-block conv specs: `(out_channels, kernel_radix)` per conv.
    fn blocks(self) -> Vec<Vec<(usize, usize)>> {
        let c = |m: usize| (m, 3);
        match self {
            VggVariant::A => vec![
                vec![c(64)],
                vec![c(128)],
                vec![c(256), c(256)],
                vec![c(512), c(512)],
                vec![c(512), c(512)],
            ],
            VggVariant::B => vec![
                vec![c(64), c(64)],
                vec![c(128), c(128)],
                vec![c(256), c(256)],
                vec![c(512), c(512)],
                vec![c(512), c(512)],
            ],
            VggVariant::C => vec![
                vec![c(64), c(64)],
                vec![c(128), c(128)],
                vec![c(256), c(256), (256, 1)],
                vec![c(512), c(512), (512, 1)],
                vec![c(512), c(512), (512, 1)],
            ],
            VggVariant::D => vec![
                vec![c(64), c(64)],
                vec![c(128), c(128)],
                vec![c(256), c(256), c(256)],
                vec![c(512), c(512), c(512)],
                vec![c(512), c(512), c(512)],
            ],
            VggVariant::E => vec![
                vec![c(64), c(64)],
                vec![c(128), c(128)],
                vec![c(256), c(256), c(256), c(256)],
                vec![c(512), c(512), c(512), c(512)],
                vec![c(512), c(512), c(512), c(512)],
            ],
        }
    }
}

/// Builder state threading the "current" node and shape through a chain.
struct Chain<'g> {
    g: &'g mut DnnGraph,
    tip: NodeId,
    shape: (usize, usize, usize),
}

impl<'g> Chain<'g> {
    fn conv(&mut self, name: &str, m: usize, k: usize, stride: usize, pad: usize) -> NodeId {
        let (c, h, w) = self.shape;
        let s = ConvScenario { c, h, w, stride, k, m, pad, sparsity_pm: 0, batch: 1 };
        let id = self.g.add(Layer::new(name, LayerKind::Conv(s)));
        self.g.connect(self.tip, id).expect("valid ids");
        self.tip = id;
        self.shape = (m, s.out_h(), s.out_w());
        id
    }

    fn relu(&mut self, name: &str) {
        self.unary(name, LayerKind::Relu);
    }

    fn lrn(&mut self, name: &str) {
        self.unary(name, LayerKind::Lrn);
    }

    fn dropout(&mut self, name: &str) {
        self.unary(name, LayerKind::Dropout);
    }

    fn unary(&mut self, name: &str, kind: LayerKind) {
        let id = self.g.add(Layer::new(name, kind));
        self.g.connect(self.tip, id).expect("valid ids");
        self.tip = id;
    }

    fn pool(&mut self, name: &str, kind: PoolKind, k: usize, stride: usize, pad: usize) {
        let id = self.g.add(Layer::new(name, LayerKind::Pool { kind, k, stride, pad }));
        self.g.connect(self.tip, id).expect("valid ids");
        self.tip = id;
        let (c, h, w) = self.shape;
        self.shape =
            (c, (h + 2 * pad - k).div_ceil(stride) + 1, (w + 2 * pad - k).div_ceil(stride) + 1);
    }

    fn fc(&mut self, name: &str, out: usize) {
        let id = self.g.add(Layer::new(name, LayerKind::FullyConnected { out }));
        self.g.connect(self.tip, id).expect("valid ids");
        self.tip = id;
        self.shape = (out, 1, 1);
    }
}

/// AlexNet as published via the BVLC Caffe model zoo (5 conv layers,
/// 3×227×227 input).
pub fn alexnet() -> DnnGraph {
    let mut g = DnnGraph::new();
    let input = g.add(Layer::new("data", LayerKind::Input { c: 3, h: 227, w: 227 }));
    let mut ch = Chain { g: &mut g, tip: input, shape: (3, 227, 227) };
    ch.conv("conv1", 96, 11, 4, 0);
    ch.relu("relu1");
    ch.lrn("norm1");
    ch.pool("pool1", PoolKind::Max, 3, 2, 0);
    ch.conv("conv2", 256, 5, 1, 2);
    ch.relu("relu2");
    ch.lrn("norm2");
    ch.pool("pool2", PoolKind::Max, 3, 2, 0);
    ch.conv("conv3", 384, 3, 1, 1);
    ch.relu("relu3");
    ch.conv("conv4", 384, 3, 1, 1);
    ch.relu("relu4");
    ch.conv("conv5", 256, 3, 1, 1);
    ch.relu("relu5");
    ch.pool("pool5", PoolKind::Max, 3, 2, 0);
    ch.fc("fc6", 4096);
    ch.relu("relu6");
    ch.dropout("drop6");
    ch.fc("fc7", 4096);
    ch.relu("relu7");
    ch.dropout("drop7");
    ch.fc("fc8", 1000);
    ch.unary("prob", LayerKind::Softmax);
    g
}

/// One VGG configuration (3×224×224 input, 2×2/2 max pools after each
/// block, three fully-connected layers).
pub fn vgg(variant: VggVariant) -> DnnGraph {
    let mut g = DnnGraph::new();
    let input = g.add(Layer::new("data", LayerKind::Input { c: 3, h: 224, w: 224 }));
    let mut ch = Chain { g: &mut g, tip: input, shape: (3, 224, 224) };
    for (bi, block) in variant.blocks().into_iter().enumerate() {
        for (ci, (m, k)) in block.into_iter().enumerate() {
            let name = format!("conv{}_{}", bi + 1, ci + 1);
            // 3×3 convs pad 1; 1×1 convs pad 0. Both preserve H×W.
            ch.conv(&name, m, k, 1, (k - 1) / 2);
            ch.relu(&format!("relu{}_{}", bi + 1, ci + 1));
        }
        ch.pool(&format!("pool{}", bi + 1), PoolKind::Max, 2, 2, 0);
    }
    ch.fc("fc6", 4096);
    ch.relu("relu6");
    ch.dropout("drop6");
    ch.fc("fc7", 4096);
    ch.relu("relu7");
    ch.dropout("drop7");
    ch.fc("fc8", 1000);
    ch.unary("prob", LayerKind::Softmax);
    g
}

/// Parameters of one inception module: `(#1×1, #3×3 reduce, #3×3,
/// #5×5 reduce, #5×5, pool proj)`.
type InceptionSpec = (usize, usize, usize, usize, usize, usize);

/// Appends an inception module (Figure 3 of the paper) and returns the
/// concat node.
fn inception(
    g: &mut DnnGraph,
    from: NodeId,
    shape: (usize, usize, usize),
    prefix: &str,
    spec: InceptionSpec,
) -> (NodeId, (usize, usize, usize)) {
    let (c, h, w) = shape;
    let (n1, r3, n3, r5, n5, pp) = spec;
    let conv = |g: &mut DnnGraph, from: NodeId, name: String, cin: usize, m: usize, k: usize| {
        let s = ConvScenario {
            c: cin,
            h,
            w,
            stride: 1,
            k,
            m,
            pad: (k - 1) / 2,
            sparsity_pm: 0,
            batch: 1,
        };
        let conv_id = g.add(Layer::new(name.clone(), LayerKind::Conv(s)));
        g.connect(from, conv_id).expect("valid ids");
        let relu_id = g.add(Layer::new(format!("{name}_relu"), LayerKind::Relu));
        g.connect(conv_id, relu_id).expect("valid ids");
        relu_id
    };

    // Branch 1: 1×1.
    let b1 = conv(g, from, format!("{prefix}/1x1"), c, n1, 1);
    // Branch 2: 1×1 reduce then 3×3.
    let b2r = conv(g, from, format!("{prefix}/3x3_reduce"), c, r3, 1);
    let b2 = conv(g, b2r, format!("{prefix}/3x3"), r3, n3, 3);
    // Branch 3: 1×1 reduce then 5×5.
    let b3r = conv(g, from, format!("{prefix}/5x5_reduce"), c, r5, 1);
    let b3 = conv(g, b3r, format!("{prefix}/5x5"), r5, n5, 5);
    // Branch 4: 3×3/1 max pool then 1×1 projection.
    let pool = g.add(Layer::new(
        format!("{prefix}/pool"),
        LayerKind::Pool { kind: PoolKind::Max, k: 3, stride: 1, pad: 1 },
    ));
    g.connect(from, pool).expect("valid ids");
    let b4 = conv(g, pool, format!("{prefix}/pool_proj"), c, pp, 1);

    let cat = g.add(Layer::new(format!("{prefix}/output"), LayerKind::Concat));
    for b in [b1, b2, b3, b4] {
        g.connect(b, cat).expect("valid ids");
    }
    (cat, (n1 + n3 + n5 + pp, h, w))
}

/// GoogleNet (inception v1) as published: 57 convolution layers across a
/// stem and nine inception modules.
pub fn googlenet() -> DnnGraph {
    let mut g = DnnGraph::new();
    let input = g.add(Layer::new("data", LayerKind::Input { c: 3, h: 224, w: 224 }));
    let mut ch = Chain { g: &mut g, tip: input, shape: (3, 224, 224) };
    ch.conv("conv1/7x7_s2", 64, 7, 2, 3);
    ch.relu("conv1/relu");
    ch.pool("pool1/3x3_s2", PoolKind::Max, 3, 2, 0);
    ch.lrn("pool1/norm1");
    ch.conv("conv2/3x3_reduce", 64, 1, 1, 0);
    ch.relu("conv2/relu_reduce");
    ch.conv("conv2/3x3", 192, 3, 1, 1);
    ch.relu("conv2/relu");
    ch.lrn("conv2/norm2");
    ch.pool("pool2/3x3_s2", PoolKind::Max, 3, 2, 0);
    let (mut tip, mut shape) = (ch.tip, ch.shape);

    let specs: [(&str, InceptionSpec); 9] = [
        ("inception_3a", (64, 96, 128, 16, 32, 32)),
        ("inception_3b", (128, 128, 192, 32, 96, 64)),
        ("inception_4a", (192, 96, 208, 16, 48, 64)),
        ("inception_4b", (160, 112, 224, 24, 64, 64)),
        ("inception_4c", (128, 128, 256, 24, 64, 64)),
        ("inception_4d", (112, 144, 288, 32, 64, 64)),
        ("inception_4e", (256, 160, 320, 32, 128, 128)),
        ("inception_5a", (256, 160, 320, 32, 128, 128)),
        ("inception_5b", (384, 192, 384, 48, 128, 128)),
    ];
    for (i, (prefix, spec)) in specs.iter().enumerate() {
        (tip, shape) = inception(&mut g, tip, shape, prefix, *spec);
        // Grid-reduction pools after 3b and 4e.
        if i == 1 || i == 6 {
            let mut ch = Chain { g: &mut g, tip, shape };
            ch.pool(&format!("pool{}/3x3_s2", i + 2), PoolKind::Max, 3, 2, 0);
            (tip, shape) = (ch.tip, ch.shape);
        }
    }

    let mut ch = Chain { g: &mut g, tip, shape };
    ch.pool("pool5/7x7_s1", PoolKind::Avg, 7, 1, 0);
    ch.dropout("pool5/drop");
    ch.fc("loss3/classifier", 1000);
    ch.unary("prob", LayerKind::Softmax);
    g
}

/// Every model evaluated in the paper's §5, with its display name.
pub fn evaluation_models() -> Vec<(&'static str, DnnGraph)> {
    vec![
        ("AlexNet", alexnet()),
        ("VGG-B", vgg(VggVariant::B)),
        ("VGG-C", vgg(VggVariant::C)),
        ("VGG-E", vgg(VggVariant::E)),
        ("GoogleNet", googlenet()),
    ]
}

/// AlexNet's structure at roughly 1/4 scale: strided K11 head, K5 middle,
/// K3 tail, LRN and pooling in between. Small enough for tests and
/// benchmarks that execute on real tensors, while still exercising every
/// layer kind of the full network.
pub fn micro_alexnet() -> DnnGraph {
    let mut g = DnnGraph::new();
    let mut prev = g.add(Layer::new("data", LayerKind::Input { c: 3, h: 57, w: 57 }));
    let tack = |g: &mut DnnGraph, layer: Layer, prev: &mut NodeId| {
        let id = g.add(layer);
        g.connect(*prev, id).unwrap();
        *prev = id;
    };
    tack(
        &mut g,
        Layer::new("conv1", LayerKind::Conv(ConvScenario::new(3, 57, 57, 4, 11, 12).with_pad(0))),
        &mut prev,
    );
    tack(&mut g, Layer::new("relu1", LayerKind::Relu), &mut prev);
    tack(&mut g, Layer::new("norm1", LayerKind::Lrn), &mut prev);
    tack(
        &mut g,
        Layer::new("pool1", LayerKind::Pool { kind: PoolKind::Max, k: 3, stride: 2, pad: 0 }),
        &mut prev,
    );
    tack(
        &mut g,
        Layer::new("conv2", LayerKind::Conv(ConvScenario::new(12, 6, 6, 1, 5, 24))),
        &mut prev,
    );
    tack(&mut g, Layer::new("relu2", LayerKind::Relu), &mut prev);
    tack(
        &mut g,
        Layer::new("conv3", LayerKind::Conv(ConvScenario::new(24, 6, 6, 1, 3, 16))),
        &mut prev,
    );
    tack(&mut g, Layer::new("fc", LayerKind::FullyConnected { out: 10 }), &mut prev);
    tack(&mut g, Layer::new("prob", LayerKind::Softmax), &mut prev);
    g
}

/// A miniature mixed-precision serving chain: one big strided 5×5
/// convolution (GEMM-bound, no Winograd/FFT candidates because of the
/// stride — the layer shape that tips to int8 under a mixed-precision
/// registry) feeding a heavily pruned 3×3 tail whose sparse f32 CSR
/// routines (§8) have no quantized counterpart and win outright. One
/// solve splits the network: the dense strided head stays quantized —
/// with the ReLU joining the island via its int8 kernel, so the interior
/// of the island has no quantize/dequantize edges — while the sparse
/// tail stays f32. The canonical fixture shared by the mixed-precision
/// tests, example and benchmark.
pub fn micro_mixed() -> DnnGraph {
    let mut g = DnnGraph::new();
    let data = g.add(Layer::new("data", LayerKind::Input { c: 16, h: 20, w: 20 }));
    let big = g.add(Layer::new(
        "conv_big",
        LayerKind::Conv(ConvScenario::new(16, 20, 20, 2, 5, 32).with_pad(0)),
    ));
    let relu = g.add(Layer::new("relu", LayerKind::Relu));
    let small = g.add(Layer::new(
        "conv_small",
        LayerKind::Conv(ConvScenario::new(32, 8, 8, 1, 3, 32).with_sparsity_pm(950)),
    ));
    g.connect(data, big).unwrap();
    g.connect(big, relu).unwrap();
    g.connect(relu, small).unwrap();
    g
}

/// A miniature residual network: a strided int8-friendly stem
/// (conv → relu → pool → conv, no LRN in between — the chain an int8
/// island can span end to end once non-conv operators are first-class
/// selection nodes), followed by a residual block whose skip edge meets
/// the body in an elementwise [`LayerKind::Add`] merge, and a small
/// classifier head.
///
/// Both stem convolutions are strided 5×5 layers (no Winograd/FFT/kn2
/// candidates), the shape that tips to int8 under a mixed-precision
/// registry — so on the ARM machine model the optimal plan keeps the
/// whole stem quantized with **zero** interior quantize/dequantize edges.
pub fn micro_resnet() -> DnnGraph {
    let mut g = DnnGraph::new();
    let data = g.add(Layer::new("data", LayerKind::Input { c: 16, h: 48, w: 48 }));
    let conv1 = g.add(Layer::new(
        "conv1",
        LayerKind::Conv(ConvScenario::new(16, 48, 48, 2, 5, 32).with_pad(0)),
    ));
    let relu1 = g.add(Layer::new("relu1", LayerKind::Relu));
    let pool1 = g
        .add(Layer::new("pool1", LayerKind::Pool { kind: PoolKind::Max, k: 3, stride: 2, pad: 0 }));
    let conv2 = g.add(Layer::new(
        "conv2",
        LayerKind::Conv(ConvScenario::new(32, 11, 11, 2, 5, 48).with_pad(2)),
    ));
    let relu2 = g.add(Layer::new("relu2", LayerKind::Relu));
    // Residual block: body conv vs identity skip, merged elementwise.
    let conv3 = g.add(Layer::new("conv3", LayerKind::Conv(ConvScenario::new(48, 6, 6, 1, 3, 48))));
    let add = g.add(Layer::new("res_add", LayerKind::Add));
    let relu3 = g.add(Layer::new("relu3", LayerKind::Relu));
    let fc = g.add(Layer::new("fc", LayerKind::FullyConnected { out: 10 }));
    let prob = g.add(Layer::new("prob", LayerKind::Softmax));
    for (a, b) in [
        (data, conv1),
        (conv1, relu1),
        (relu1, pool1),
        (pool1, conv2),
        (conv2, relu2),
        (relu2, conv3),
        (conv3, add),
        (relu2, add), // identity skip
        (add, relu3),
        (relu3, fc),
        (fc, prob),
    ] {
        g.connect(a, b).unwrap();
    }
    g
}

/// A GoogleNet-style inception module at miniature scale: fan-out into
/// 1×1 / 3×3 / 5×5 / pool-proj branches joined by concat — the branching
/// shape that gives a wavefront scheduler independent nodes to run
/// concurrently.
pub fn micro_inception() -> DnnGraph {
    let mut g = DnnGraph::new();
    let data = g.add(Layer::new("data", LayerKind::Input { c: 8, h: 14, w: 14 }));
    let conv = |c, k, m| LayerKind::Conv(ConvScenario::new(c, 14, 14, 1, k, m));
    let b1 = g.add(Layer::new("1x1", conv(8, 1, 4)));
    let b2r = g.add(Layer::new("3x3_reduce", conv(8, 1, 4)));
    let b2 = g.add(Layer::new("3x3", conv(4, 3, 6)));
    let b3r = g.add(Layer::new("5x5_reduce", conv(8, 1, 2)));
    let b3 = g.add(Layer::new("5x5", conv(2, 5, 4)));
    let pool =
        g.add(Layer::new("pool", LayerKind::Pool { kind: PoolKind::Max, k: 3, stride: 1, pad: 1 }));
    let b4 = g.add(Layer::new("pool_proj", conv(8, 1, 2)));
    let cat = g.add(Layer::new("concat", LayerKind::Concat));
    let out = g.add(Layer::new("out", conv(16, 3, 8)));
    for (a, b) in [
        (data, b1),
        (data, b2r),
        (b2r, b2),
        (data, b3r),
        (b3r, b3),
        (data, pool),
        (pool, b4),
        (b1, cat),
        (b2, cat),
        (b3, cat),
        (b4, cat),
        (cat, out),
    ] {
        g.connect(a, b).unwrap();
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alexnet_shapes_match_publication() {
        let net = alexnet();
        let shapes = net.infer_shapes().unwrap();
        let at = |name: &str| shapes[net.find(name).unwrap().index()];
        assert_eq!(at("conv1"), (96, 55, 55));
        assert_eq!(at("pool1"), (96, 27, 27));
        assert_eq!(at("conv2"), (256, 27, 27));
        assert_eq!(at("pool2"), (256, 13, 13));
        assert_eq!(at("conv3"), (384, 13, 13));
        assert_eq!(at("conv5"), (256, 13, 13));
        assert_eq!(at("pool5"), (256, 6, 6));
        assert_eq!(at("fc8"), (1000, 1, 1));
        assert_eq!(net.conv_nodes().len(), 5);
    }

    #[test]
    fn vgg_conv_counts_match_publication() {
        let counts = [
            (VggVariant::A, 8),
            (VggVariant::B, 10),
            (VggVariant::C, 13),
            (VggVariant::D, 13),
            (VggVariant::E, 16),
        ];
        for (v, n) in counts {
            let net = vgg(v);
            net.infer_shapes().unwrap_or_else(|e| panic!("{}: {e}", v.name()));
            assert_eq!(net.conv_nodes().len(), n, "{}", v.name());
        }
    }

    #[test]
    fn vgg_c_contains_pointwise_convs() {
        let net = vgg(VggVariant::C);
        let pointwise = net.conv_scenarios().iter().filter(|(_, s)| s.is_pointwise()).count();
        assert_eq!(pointwise, 3);
        // VGG-D is the same depth but all 3×3.
        let d = vgg(VggVariant::D);
        assert_eq!(d.conv_scenarios().iter().filter(|(_, s)| s.is_pointwise()).count(), 0);
    }

    #[test]
    fn vgg_final_feature_map_is_7x7() {
        let net = vgg(VggVariant::E);
        let shapes = net.infer_shapes().unwrap();
        assert_eq!(shapes[net.find("pool5").unwrap().index()], (512, 7, 7));
    }

    #[test]
    fn googlenet_structure_matches_publication() {
        let net = googlenet();
        let shapes = net.infer_shapes().unwrap();
        let at = |name: &str| shapes[net.find(name).unwrap().index()];
        assert_eq!(net.conv_nodes().len(), 57);
        assert_eq!(at("conv1/7x7_s2"), (64, 112, 112));
        assert_eq!(at("conv2/3x3"), (192, 56, 56));
        assert_eq!(at("inception_3a/output"), (256, 28, 28));
        assert_eq!(at("inception_3b/output"), (480, 28, 28));
        assert_eq!(at("inception_4a/output"), (512, 14, 14));
        assert_eq!(at("inception_4e/output"), (832, 14, 14));
        assert_eq!(at("inception_5b/output"), (1024, 7, 7));
        assert_eq!(at("pool5/7x7_s1"), (1024, 1, 1));
        assert_eq!(at("loss3/classifier"), (1000, 1, 1));
    }

    #[test]
    fn googlenet_has_dag_fanout() {
        let net = googlenet();
        // The inception input fans out to 4 branches (1x1, two reduces, pool).
        let pool2 = net.find("pool2/3x3_s2").unwrap();
        assert_eq!(net.successors(pool2).len(), 4);
        let cat = net.find("inception_3a/output").unwrap();
        assert_eq!(net.predecessors(cat).len(), 4);
    }

    #[test]
    fn vgg_flops_dwarf_alexnet() {
        // VGG-E performs roughly 20x the convolution work of AlexNet, which
        // is why winograd dominates there (§5.8).
        let vgg_flops = vgg(VggVariant::E).conv_flops();
        let alex_flops = alexnet().conv_flops();
        assert!(vgg_flops > 15 * alex_flops, "{vgg_flops} vs {alex_flops}");
    }

    #[test]
    fn micro_resnet_validates_and_has_a_residual_merge() {
        let net = micro_resnet();
        let shapes = net.infer_shapes().unwrap();
        let at = |name: &str| shapes[net.find(name).unwrap().index()];
        assert_eq!(at("conv1"), (32, 22, 22));
        assert_eq!(at("pool1"), (32, 11, 11));
        assert_eq!(at("conv2"), (48, 6, 6));
        assert_eq!(at("res_add"), (48, 6, 6));
        assert_eq!(at("fc"), (10, 1, 1));
        let add = net.find("res_add").unwrap();
        assert_eq!(net.predecessors(add).len(), 2, "residual merge has body + skip");
        // The int8-island chain exists: conv1 → relu1 → pool1 → conv2 with
        // no LRN or other f32-only layer in between.
        let chain = ["conv1", "relu1", "pool1", "conv2"];
        for pair in chain.windows(2) {
            let from = net.find(pair[0]).unwrap();
            let to = net.find(pair[1]).unwrap();
            assert!(net.successors(from).contains(&to), "{} -> {}", pair[0], pair[1]);
        }
    }

    #[test]
    fn evaluation_models_all_validate() {
        for (name, net) in evaluation_models() {
            net.infer_shapes().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(net.conv_flops() > 0, "{name}");
        }
    }
}
