//! DNN graph intermediate representation and the published model zoo.
//!
//! A DNN is a directed acyclic graph of layers (§2 of the paper). The
//! primitive-selection problem assigns an implementation to **every**
//! layer: convolutions select among the primitive library, every other
//! operator selects among its per-class kernel candidates over the full
//! representation (layout × dtype) space — see
//! [`LayerKind::selection_class`]. (The paper models non-conv layers as
//! zero-cost dummies, §5.2; this repo generalizes them to first-class
//! selection nodes so int8 islands can span activation layers.)
//!
//! The [`models`] module reconstructs the evaluation networks from their
//! publications: AlexNet, the VGG family (A, B, C, D, E) and GoogleNet's
//! inception architecture.
//!
//! # Example
//!
//! ```
//! use pbqp_dnn_graph::models;
//!
//! let net = models::alexnet();
//! assert_eq!(net.conv_nodes().len(), 5);
//! let shapes = net.infer_shapes().unwrap();
//! // conv1 of AlexNet produces 96 feature maps of 55x55.
//! let conv1 = net.conv_nodes()[0];
//! assert_eq!(shapes[conv1.index()], (96, 55, 55));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod graph;
mod layer;
pub mod models;
mod scenario;

pub use graph::{DnnGraph, Fnv1a, GraphError, NodeId};
pub use layer::{Layer, LayerKind, OpClass, PoolKind, SelectionClass};
pub use scenario::ConvScenario;
