use std::fmt;

use crate::ConvScenario;

/// Pooling operator flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PoolKind {
    /// Maximum over the window.
    Max,
    /// Arithmetic mean over the window.
    Avg,
}

/// The operator class of a non-convolution selection node.
///
/// Every non-conv layer kind maps to exactly one class; the primitive
/// registry keeps a per-class candidate set of `OpKernel`s (f32 at every
/// layout, plus int8 variants where they exist), so the PBQP instance can
/// price non-conv layers over the full `Repr` space instead of treating
/// them as zero-cost f32 dummies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpClass {
    /// Rectified linear activation.
    Relu,
    /// Spatial max pooling.
    MaxPool,
    /// Spatial average pooling.
    AvgPool,
    /// Local response normalization.
    Lrn,
    /// Inference-time identity.
    Dropout,
    /// Fully-connected layer.
    FullyConnected,
    /// Channel-wise concatenation.
    Concat,
    /// Elementwise residual merge.
    Add,
    /// Softmax over the flattened input.
    Softmax,
}

impl OpClass {
    /// All classes in a stable display order.
    pub const ALL: [OpClass; 9] = [
        OpClass::Relu,
        OpClass::MaxPool,
        OpClass::AvgPool,
        OpClass::Lrn,
        OpClass::Dropout,
        OpClass::FullyConnected,
        OpClass::Concat,
        OpClass::Add,
        OpClass::Softmax,
    ];

    /// Short lowercase name used in kernel registry names.
    pub fn name(self) -> &'static str {
        match self {
            OpClass::Relu => "relu",
            OpClass::MaxPool => "maxpool",
            OpClass::AvgPool => "avgpool",
            OpClass::Lrn => "lrn",
            OpClass::Dropout => "dropout",
            OpClass::FullyConnected => "fc",
            OpClass::Concat => "concat",
            OpClass::Add => "add",
            OpClass::Softmax => "softmax",
        }
    }

    /// Whether the class carries cost-model terms. The activation-memory
    /// ops — ReLU, pooling, concat and add — have candidates in more than
    /// one precision, so their relative costs steer the solver's
    /// f32-vs-int8 choice. The parameterized f32-only layers (LRN, FC,
    /// softmax, dropout) have no alternative to weigh against: every
    /// candidate would carry the same constant, which can never change an
    /// argmin, so both cost sources price them at zero and predicted
    /// times stay comparable with the paper's conv-centric model.
    pub fn is_costed(self) -> bool {
        matches!(
            self,
            OpClass::Relu | OpClass::MaxPool | OpClass::AvgPool | OpClass::Concat | OpClass::Add
        )
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The candidate space of one graph node — what kind of PBQP decision it
/// is (§3.2, generalized beyond the paper's conv-only decision nodes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SelectionClass {
    /// A convolution: candidates are the registry's `ConvAlgorithm`
    /// primitives supporting the scenario.
    Conv(ConvScenario),
    /// A graph source: the decision is the representation the canonical
    /// f32 network input is delivered in.
    Source,
    /// A non-conv operator: candidates are the registry's per-class
    /// `OpKernel`s (f32 at every layout ∪ int8 where kernels exist).
    Op(OpClass),
}

/// The operator a DNN graph node performs.
///
/// Every kind is a first-class PBQP selection node: convolutions select
/// among the primitive library, every other operator selects among its
/// [`OpClass`] kernel candidates over the full `Repr` (layout × dtype)
/// space — see [`LayerKind::selection_class`]. The non-conv kinds carry
/// enough shape information for whole-network shape inference and
/// execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// Network input producing a `c × h × w` tensor.
    Input {
        /// Channels.
        c: usize,
        /// Height.
        h: usize,
        /// Width.
        w: usize,
    },
    /// A convolution layer with its full scenario.
    Conv(ConvScenario),
    /// Spatial pooling. Output dims use Caffe's ceil convention.
    Pool {
        /// Max or average.
        kind: PoolKind,
        /// Window radix.
        k: usize,
        /// Stride.
        stride: usize,
        /// Zero padding.
        pad: usize,
    },
    /// Rectified linear activation (shape-preserving).
    Relu,
    /// Local response normalization (shape-preserving).
    Lrn,
    /// Dropout (identity at inference time).
    Dropout,
    /// Fully-connected layer flattening its input to `out` values.
    FullyConnected {
        /// Output neuron count.
        out: usize,
    },
    /// Channel-wise concatenation of all predecessors.
    Concat,
    /// Elementwise addition of all predecessors (residual merge); all
    /// operand shapes must agree exactly.
    Add,
    /// Softmax over the flattened input (shape-preserving).
    Softmax,
}

impl LayerKind {
    /// The candidate space this node selects over.
    pub fn selection_class(&self) -> SelectionClass {
        match self {
            LayerKind::Input { .. } => SelectionClass::Source,
            LayerKind::Conv(s) => SelectionClass::Conv(*s),
            LayerKind::Pool { kind: PoolKind::Max, .. } => SelectionClass::Op(OpClass::MaxPool),
            LayerKind::Pool { kind: PoolKind::Avg, .. } => SelectionClass::Op(OpClass::AvgPool),
            LayerKind::Relu => SelectionClass::Op(OpClass::Relu),
            LayerKind::Lrn => SelectionClass::Op(OpClass::Lrn),
            LayerKind::Dropout => SelectionClass::Op(OpClass::Dropout),
            LayerKind::FullyConnected { .. } => SelectionClass::Op(OpClass::FullyConnected),
            LayerKind::Concat => SelectionClass::Op(OpClass::Concat),
            LayerKind::Add => SelectionClass::Op(OpClass::Add),
            LayerKind::Softmax => SelectionClass::Op(OpClass::Softmax),
        }
    }

    /// The convolution scenario, if this is a conv node.
    pub fn scenario(&self) -> Option<&ConvScenario> {
        match self {
            LayerKind::Conv(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for LayerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayerKind::Input { c, h, w } => write!(f, "input {c}x{h}x{w}"),
            LayerKind::Conv(s) => write!(f, "conv {s}"),
            LayerKind::Pool { kind: PoolKind::Max, k, stride, .. } => {
                write!(f, "maxpool {k}x{k}/{stride}")
            }
            LayerKind::Pool { kind: PoolKind::Avg, k, stride, .. } => {
                write!(f, "avgpool {k}x{k}/{stride}")
            }
            LayerKind::Relu => f.write_str("relu"),
            LayerKind::Lrn => f.write_str("lrn"),
            LayerKind::Dropout => f.write_str("dropout"),
            LayerKind::FullyConnected { out } => write!(f, "fc {out}"),
            LayerKind::Concat => f.write_str("concat"),
            LayerKind::Add => f.write_str("add"),
            LayerKind::Softmax => f.write_str("softmax"),
        }
    }
}

/// A named node of a [`crate::DnnGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layer {
    /// Human-readable unique name, e.g. `"conv2"` or `"inception_3a/5x5"`.
    pub name: String,
    /// What the layer computes.
    pub kind: LayerKind,
}

impl Layer {
    /// Creates a named layer.
    pub fn new(name: impl Into<String>, kind: LayerKind) -> Layer {
        Layer { name: name.into(), kind }
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name, self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_classes_cover_every_kind() {
        let conv = LayerKind::Conv(ConvScenario::new(3, 8, 8, 1, 3, 4));
        assert!(matches!(conv.selection_class(), SelectionClass::Conv(_)));
        assert!(conv.scenario().is_some());
        assert_eq!(LayerKind::Input { c: 1, h: 1, w: 1 }.selection_class(), SelectionClass::Source);
        assert_eq!(LayerKind::Relu.selection_class(), SelectionClass::Op(OpClass::Relu));
        assert_eq!(
            LayerKind::Pool { kind: PoolKind::Max, k: 2, stride: 2, pad: 0 }.selection_class(),
            SelectionClass::Op(OpClass::MaxPool)
        );
        assert_eq!(
            LayerKind::Pool { kind: PoolKind::Avg, k: 2, stride: 2, pad: 0 }.selection_class(),
            SelectionClass::Op(OpClass::AvgPool)
        );
        assert_eq!(LayerKind::Add.selection_class(), SelectionClass::Op(OpClass::Add));
        assert!(LayerKind::Relu.scenario().is_none());
    }

    #[test]
    fn costed_classes_are_the_multi_precision_ones() {
        for class in OpClass::ALL {
            let expect = matches!(
                class,
                OpClass::Relu
                    | OpClass::MaxPool
                    | OpClass::AvgPool
                    | OpClass::Concat
                    | OpClass::Add
            );
            assert_eq!(class.is_costed(), expect, "{class}");
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            LayerKind::Pool { kind: PoolKind::Max, k: 3, stride: 2, pad: 0 }.to_string(),
            "maxpool 3x3/2"
        );
        assert_eq!(LayerKind::FullyConnected { out: 1000 }.to_string(), "fc 1000");
        assert_eq!(LayerKind::Add.to_string(), "add");
        let l = Layer::new("relu1", LayerKind::Relu);
        assert_eq!(l.to_string(), "relu1 (relu)");
    }
}
