use std::fmt;

use crate::ConvScenario;

/// Pooling operator flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PoolKind {
    /// Maximum over the window.
    Max,
    /// Arithmetic mean over the window.
    Avg,
}

/// The operator a DNN graph node performs.
///
/// Only [`LayerKind::Conv`] participates in primitive selection; every other
/// kind is modelled as a dummy node accepting any layout at zero cost
/// (§5.2 of the paper). The non-conv kinds still carry enough shape
/// information for whole-network shape inference and execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// Network input producing a `c × h × w` tensor.
    Input {
        /// Channels.
        c: usize,
        /// Height.
        h: usize,
        /// Width.
        w: usize,
    },
    /// A convolution layer with its full scenario.
    Conv(ConvScenario),
    /// Spatial pooling. Output dims use Caffe's ceil convention.
    Pool {
        /// Max or average.
        kind: PoolKind,
        /// Window radix.
        k: usize,
        /// Stride.
        stride: usize,
        /// Zero padding.
        pad: usize,
    },
    /// Rectified linear activation (shape-preserving).
    Relu,
    /// Local response normalization (shape-preserving).
    Lrn,
    /// Dropout (identity at inference time).
    Dropout,
    /// Fully-connected layer flattening its input to `out` values.
    FullyConnected {
        /// Output neuron count.
        out: usize,
    },
    /// Channel-wise concatenation of all predecessors.
    Concat,
    /// Softmax over the flattened input (shape-preserving).
    Softmax,
}

impl LayerKind {
    /// Whether this node is a convolution (a PBQP decision node).
    pub fn is_conv(&self) -> bool {
        matches!(self, LayerKind::Conv(_))
    }

    /// The convolution scenario, if this is a conv node.
    pub fn scenario(&self) -> Option<&ConvScenario> {
        match self {
            LayerKind::Conv(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for LayerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayerKind::Input { c, h, w } => write!(f, "input {c}x{h}x{w}"),
            LayerKind::Conv(s) => write!(f, "conv {s}"),
            LayerKind::Pool { kind: PoolKind::Max, k, stride, .. } => {
                write!(f, "maxpool {k}x{k}/{stride}")
            }
            LayerKind::Pool { kind: PoolKind::Avg, k, stride, .. } => {
                write!(f, "avgpool {k}x{k}/{stride}")
            }
            LayerKind::Relu => f.write_str("relu"),
            LayerKind::Lrn => f.write_str("lrn"),
            LayerKind::Dropout => f.write_str("dropout"),
            LayerKind::FullyConnected { out } => write!(f, "fc {out}"),
            LayerKind::Concat => f.write_str("concat"),
            LayerKind::Softmax => f.write_str("softmax"),
        }
    }
}

/// A named node of a [`crate::DnnGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layer {
    /// Human-readable unique name, e.g. `"conv2"` or `"inception_3a/5x5"`.
    pub name: String,
    /// What the layer computes.
    pub kind: LayerKind,
}

impl Layer {
    /// Creates a named layer.
    pub fn new(name: impl Into<String>, kind: LayerKind) -> Layer {
        Layer { name: name.into(), kind }
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name, self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_detection() {
        let conv = LayerKind::Conv(ConvScenario::new(3, 8, 8, 1, 3, 4));
        assert!(conv.is_conv());
        assert!(conv.scenario().is_some());
        assert!(!LayerKind::Relu.is_conv());
        assert!(LayerKind::Relu.scenario().is_none());
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            LayerKind::Pool { kind: PoolKind::Max, k: 3, stride: 2, pad: 0 }.to_string(),
            "maxpool 3x3/2"
        );
        assert_eq!(LayerKind::FullyConnected { out: 1000 }.to_string(), "fc 1000");
        let l = Layer::new("relu1", LayerKind::Relu);
        assert_eq!(l.to_string(), "relu1 (relu)");
    }
}
