use std::fmt;

/// A convolutional scenario: the paper's 6-tuple `{C, H, W, δ, K, M}`
/// extended with the explicit zero padding the published models use, and
/// with the §8 extension parameters (kernel sparsity, minibatch size).
///
/// `C` input feature maps of `H × W` are convolved (strictly:
/// cross-correlated) with `M` filters of `C × K × K` taps at stride `δ`,
/// producing `M` output maps of `out_h × out_w`.
///
/// # Example
///
/// ```
/// use pbqp_dnn_graph::ConvScenario;
///
/// // AlexNet conv1: 3x227x227 input, 96 11x11 filters at stride 4.
/// let s = ConvScenario::new(3, 227, 227, 4, 11, 96).with_pad(0);
/// assert_eq!((s.out_h(), s.out_w()), (55, 55));
/// assert_eq!(s.flops(), 2 * 96 * 55 * 55 * 3 * 11 * 11);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConvScenario {
    /// Number of input feature maps `C`.
    pub c: usize,
    /// Input feature-map height `H`.
    pub h: usize,
    /// Input feature-map width `W`.
    pub w: usize,
    /// Convolution stride `δ` (applied to both spatial dimensions).
    pub stride: usize,
    /// Filter radix `K` (filters are `K × K`).
    pub k: usize,
    /// Number of output feature maps `M`.
    pub m: usize,
    /// Zero padding applied to each spatial border.
    pub pad: usize,
    /// Kernel sparsity in per-mille (0 = dense, 900 = 90 % zeros); the
    /// paper's §8 sparsity extension.
    pub sparsity_pm: u16,
    /// Minibatch size; the formulation itself is latency-oriented and uses
    /// 1 (§3), but §8's minibatch extension is expressible.
    pub batch: usize,
}

impl ConvScenario {
    /// Creates a dense, batch-1 scenario with "same"-style default padding
    /// `(k − 1) / 2`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` (the default-padding formula `(k − 1) / 2`
    /// would underflow, and a 0×0 filter is meaningless) or if
    /// `stride == 0` (the output-size formulas divide by the stride).
    pub fn new(c: usize, h: usize, w: usize, stride: usize, k: usize, m: usize) -> ConvScenario {
        assert!(k >= 1, "ConvScenario requires a kernel radix k >= 1, got k = 0");
        assert!(stride >= 1, "ConvScenario requires stride >= 1, got stride = 0");
        ConvScenario { c, h, w, stride, k, m, pad: (k - 1) / 2, sparsity_pm: 0, batch: 1 }
    }

    /// Replaces the padding.
    pub fn with_pad(mut self, pad: usize) -> ConvScenario {
        self.pad = pad;
        self
    }

    /// Sets the kernel sparsity ratio in per-mille (clamped to 1000).
    pub fn with_sparsity_pm(mut self, pm: u16) -> ConvScenario {
        self.sparsity_pm = pm.min(1000);
        self
    }

    /// Sets the minibatch size (minimum 1).
    pub fn with_batch(mut self, batch: usize) -> ConvScenario {
        self.batch = batch.max(1);
        self
    }

    /// Output feature-map height (floor convention, as in Caffe).
    pub fn out_h(&self) -> usize {
        (self.h + 2 * self.pad - self.k) / self.stride + 1
    }

    /// Output feature-map width.
    pub fn out_w(&self) -> usize {
        (self.w + 2 * self.pad - self.k) / self.stride + 1
    }

    /// Kernel sparsity as a ratio in `[0, 1]`.
    pub fn sparsity(&self) -> f64 {
        f64::from(self.sparsity_pm) / 1000.0
    }

    /// Number of input tensor elements (`C·H·W`, one batch element).
    pub fn input_len(&self) -> usize {
        self.c * self.h * self.w
    }

    /// Number of output tensor elements (`M·out_h·out_w`, one batch
    /// element).
    pub fn output_len(&self) -> usize {
        self.m * self.out_h() * self.out_w()
    }

    /// Number of kernel weights (`M·C·K²`).
    pub fn kernel_len(&self) -> usize {
        self.m * self.c * self.k * self.k
    }

    /// Multiply–accumulate count ×2 for one forward pass of one batch
    /// element: the `O(H·W·C·K²·M)` of §2.1, evaluated on output pixels.
    pub fn flops(&self) -> usize {
        2 * self.batch * self.m * self.out_h() * self.out_w() * self.c * self.k * self.k
    }

    /// Whether the spatial convolution is pointwise (`K = 1`).
    pub fn is_pointwise(&self) -> bool {
        self.k == 1
    }

    /// Whether the convolution is strided (`δ > 1`).
    pub fn is_strided(&self) -> bool {
        self.stride > 1
    }
}

impl fmt::Display for ConvScenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "C{}xH{}xW{} K{} s{} p{} M{}",
            self.c, self.h, self.w, self.k, self.stride, self.pad, self.m
        )?;
        if self.sparsity_pm > 0 {
            write!(f, " sp{}", self.sparsity_pm)?;
        }
        if self.batch > 1 {
            write!(f, " N{}", self.batch)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alexnet_conv1_dimensions() {
        let s = ConvScenario::new(3, 227, 227, 4, 11, 96).with_pad(0);
        assert_eq!(s.out_h(), 55);
        assert_eq!(s.out_w(), 55);
        assert!(s.is_strided());
        assert!(!s.is_pointwise());
    }

    #[test]
    fn same_padding_preserves_spatial_dims_for_odd_k() {
        for k in [1usize, 3, 5, 7, 11] {
            let s = ConvScenario::new(8, 28, 28, 1, k, 16);
            assert_eq!((s.out_h(), s.out_w()), (28, 28), "k={k}");
        }
    }

    #[test]
    fn flops_counts_macs_twice() {
        let s = ConvScenario::new(2, 4, 4, 1, 3, 5);
        // 5 filters * 4*4 outputs * 2 channels * 9 taps * 2
        assert_eq!(s.flops(), 2 * 5 * 16 * 2 * 9);
    }

    #[test]
    fn sparsity_is_clamped_and_scaled() {
        let s = ConvScenario::new(1, 8, 8, 1, 3, 1).with_sparsity_pm(1500);
        assert_eq!(s.sparsity_pm, 1000);
        assert_eq!(s.sparsity(), 1.0);
    }

    #[test]
    #[should_panic(expected = "kernel radix k >= 1")]
    fn zero_kernel_radix_is_rejected() {
        let _ = ConvScenario::new(3, 8, 8, 1, 0, 4);
    }

    #[test]
    #[should_panic(expected = "stride >= 1")]
    fn zero_stride_is_rejected() {
        let _ = ConvScenario::new(3, 8, 8, 0, 3, 4);
    }

    #[test]
    fn display_is_compact() {
        let s = ConvScenario::new(3, 227, 227, 4, 11, 96).with_pad(0);
        assert_eq!(s.to_string(), "C3xH227xW227 K11 s4 p0 M96");
    }
}
