use std::fmt;

use pbqp_dnn_graph::NodeId;
use pbqp_dnn_tensor::transform::ReprTransform;
use pbqp_dnn_tensor::{DType, Layout, Repr};
use pbqp_solver::SolveStats;

use crate::Strategy;

/// What a plan assigns to one graph node.
///
/// Every node carries a concrete selection: convolutions a primitive, all
/// other operators an op kernel, and graph sources the representation the
/// canonical network input is delivered in. (The paper's zero-cost
/// layout-only "dummy" assignment is gone — non-conv nodes are priced
/// `Repr`-typed decisions like everything else.)
#[derive(Debug, Clone, PartialEq)]
pub enum AssignmentKind {
    /// A convolution layer instantiated with a concrete primitive.
    Conv {
        /// Primitive name (resolvable via the registry).
        primitive: String,
        /// The primitive's `R_in` (layout × dtype).
        input_repr: Repr,
        /// The primitive's `R_out`.
        output_repr: Repr,
        /// Modelled/profiled execution cost in µs.
        cost_us: f64,
    },
    /// A non-conv operator instantiated with a concrete op kernel.
    Op {
        /// Op kernel name (resolvable via the registry).
        kernel: String,
        /// The kernel's `R_in`, required on every incoming edge.
        input_repr: Repr,
        /// The kernel's `R_out`.
        output_repr: Repr,
        /// Modelled/profiled execution cost in µs (zero for the
        /// single-precision classes both cost sources treat as free).
        cost_us: f64,
    },
    /// A network input delivering the canonical-CHW f32 input in a chosen
    /// representation.
    Source {
        /// The representation the input is delivered in.
        repr: Repr,
    },
}

impl AssignmentKind {
    /// The representation this node produces on its output edges.
    pub fn output_repr(&self) -> Repr {
        match self {
            AssignmentKind::Conv { output_repr, .. } => *output_repr,
            AssignmentKind::Op { output_repr, .. } => *output_repr,
            AssignmentKind::Source { repr } => *repr,
        }
    }

    /// The representation this node requires on its input edges.
    pub fn input_repr(&self) -> Repr {
        match self {
            AssignmentKind::Conv { input_repr, .. } => *input_repr,
            AssignmentKind::Op { input_repr, .. } => *input_repr,
            AssignmentKind::Source { repr } => *repr,
        }
    }

    /// The layout this node produces on its output edges.
    pub fn output_layout(&self) -> Layout {
        self.output_repr().layout
    }

    /// The layout this node requires on its input edges.
    pub fn input_layout(&self) -> Layout {
        self.input_repr().layout
    }

    /// The node's own execution cost in µs (zero for sources).
    pub fn cost_us(&self) -> f64 {
        match self {
            AssignmentKind::Conv { cost_us, .. } | AssignmentKind::Op { cost_us, .. } => *cost_us,
            AssignmentKind::Source { .. } => 0.0,
        }
    }
}

/// One node's assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeAssignment {
    /// The graph node.
    pub node: NodeId,
    /// What was assigned.
    pub kind: AssignmentKind,
}

/// The legalization of one graph edge: the DT chain inserted between the
/// producer's output layout and the consumer's input layout (§3's
/// legalization phase).
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeLegalization {
    /// Producer node.
    pub from: NodeId,
    /// Consumer node.
    pub to: NodeId,
    /// Direct transformation routines to apply, in order (empty when the
    /// representations already agree). Alongside layout conversions these
    /// may be quantize/dequantize hops at mixed-precision boundaries.
    pub chain: Vec<ReprTransform>,
    /// Total modelled cost of the chain in µs.
    pub cost_us: f64,
}

/// A complete, legalized instantiation of a DNN: the output of the
/// optimizer and the input of the runtime.
#[derive(Debug, Clone)]
pub struct ExecutionPlan {
    /// The strategy that produced this plan.
    pub strategy: Strategy,
    /// Per-node assignments, indexed by node insertion order.
    pub assignments: Vec<NodeAssignment>,
    /// Per-edge legalizations (same order as `DnnGraph::edges`).
    pub edges: Vec<EdgeLegalization>,
    /// Conversion chain applied to the raw network input (which arrives in
    /// canonical CHW f32) before the input node's chosen layout, with its
    /// cost.
    pub input_conversion: Vec<(NodeId, Vec<ReprTransform>, f64)>,
    /// Dequantization chain applied after each sink node whose chosen
    /// representation is not f32, with its cost. Network outputs are
    /// delivered in f32 (in the sink's layout), mirroring the canonical
    /// input contract — so the solver pays for leaving the quantized
    /// domain even at the network boundary and an int8 terminal layer is
    /// never "free".
    pub output_conversion: Vec<(NodeId, Vec<ReprTransform>, f64)>,
    /// Predicted whole-network latency in µs (conv costs + op costs + DT
    /// chain costs + boundary conversions), times any framework overhead
    /// factor.
    pub predicted_us: f64,
    /// Whether the PBQP solver proved the selection optimal (`None` for
    /// non-PBQP strategies).
    pub optimal: Option<bool>,
    /// Solver statistics (PBQP strategies only).
    pub solve_stats: Option<SolveStats>,
    /// Wall-clock time spent solving, in µs (PBQP strategies only).
    pub solve_time_us: f64,
}

impl ExecutionPlan {
    /// The assignment for `node`.
    pub fn assignment(&self, node: NodeId) -> &AssignmentKind {
        &self.assignments[node.index()].kind
    }

    /// Names of the primitives selected for conv nodes, in node order.
    pub fn selected_primitives(&self) -> Vec<(NodeId, &str)> {
        self.assignments
            .iter()
            .filter_map(|a| match &a.kind {
                AssignmentKind::Conv { primitive, .. } => Some((a.node, primitive.as_str())),
                _ => None,
            })
            .collect()
    }

    /// Names of the op kernels selected for non-conv operator nodes, in
    /// node order.
    pub fn selected_op_kernels(&self) -> Vec<(NodeId, &str)> {
        self.assignments
            .iter()
            .filter_map(|a| match &a.kind {
                AssignmentKind::Op { kernel, .. } => Some((a.node, kernel.as_str())),
                _ => None,
            })
            .collect()
    }

    /// Total µs spent in DT chains (edge legalizations plus boundary
    /// conversions) — the quantity the paper shows can erase a locally
    /// optimal selection's advantage (§5.8).
    pub fn transform_us(&self) -> f64 {
        self.edges.iter().map(|e| e.cost_us).sum::<f64>()
            + self.input_conversion.iter().map(|(_, _, c)| c).sum::<f64>()
            + self.output_conversion.iter().map(|(_, _, c)| c).sum::<f64>()
    }

    /// Total µs spent in convolution primitives.
    pub fn conv_us(&self) -> f64 {
        self.assignments
            .iter()
            .filter_map(|a| match &a.kind {
                AssignmentKind::Conv { cost_us, .. } => Some(*cost_us),
                _ => None,
            })
            .sum()
    }

    /// Total µs spent in non-conv operator kernels.
    pub fn op_us(&self) -> f64 {
        self.assignments
            .iter()
            .filter_map(|a| match &a.kind {
                AssignmentKind::Op { cost_us, .. } => Some(*cost_us),
                _ => None,
            })
            .sum()
    }

    /// Number of layout transformations inserted by legalization.
    pub fn transform_count(&self) -> usize {
        self.edges.iter().map(|e| e.chain.len()).sum::<usize>()
            + self.input_conversion.iter().map(|(_, c, _)| c.len()).sum::<usize>()
            + self.output_conversion.iter().map(|(_, c, _)| c.len()).sum::<usize>()
    }

    /// Conv nodes assigned an int8 primitive.
    pub fn int8_layers(&self) -> Vec<NodeId> {
        self.assignments
            .iter()
            .filter(|a| {
                matches!(&a.kind, AssignmentKind::Conv { input_repr, .. }
                    if input_repr.dtype == DType::I8)
            })
            .map(|a| a.node)
            .collect()
    }

    /// Non-conv operator nodes assigned an int8 kernel — the nodes an
    /// int8 island crosses without leaving the quantized domain.
    pub fn int8_op_nodes(&self) -> Vec<NodeId> {
        self.assignments
            .iter()
            .filter(|a| {
                matches!(&a.kind, AssignmentKind::Op { input_repr, .. }
                    if input_repr.dtype == DType::I8)
            })
            .map(|a| a.node)
            .collect()
    }

    /// Whether the plan genuinely mixes precisions: at least one int8 and
    /// at least one f32 convolution selection.
    pub fn is_mixed_precision(&self) -> bool {
        let int8 = self.int8_layers().len();
        let convs = self.selected_primitives().len();
        int8 > 0 && int8 < convs
    }

    /// Number of quantize/dequantize hops inserted by legalization.
    pub fn quant_edge_count(&self) -> usize {
        let quantish = |c: &[ReprTransform]| {
            c.iter()
                .filter(|t| matches!(t, ReprTransform::Quantize(_) | ReprTransform::Dequantize(_)))
                .count()
        };
        self.edges.iter().map(|e| quantish(&e.chain)).sum::<usize>()
            + self.input_conversion.iter().map(|(_, c, _)| quantish(c)).sum::<usize>()
            + self.output_conversion.iter().map(|(_, c, _)| quantish(c)).sum::<usize>()
    }
}

impl fmt::Display for ExecutionPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "plan [{}]: {:.1} µs predicted ({:.1} µs conv, {:.1} µs ops, {:.1} µs in {} transforms)",
            self.strategy.label(),
            self.predicted_us,
            self.conv_us(),
            self.op_us(),
            self.transform_us(),
            self.transform_count(),
        )?;
        for a in &self.assignments {
            match &a.kind {
                AssignmentKind::Conv { primitive, input_repr, output_repr, cost_us } => writeln!(
                    f,
                    "  {}: {{{input_repr}, {primitive}, {output_repr}}} {cost_us:.1} µs",
                    a.node
                )?,
                // Keep the listing compact: only op selections that left
                // the default f32 domain are interesting to read.
                AssignmentKind::Op { kernel, input_repr, output_repr, cost_us }
                    if input_repr.dtype != DType::F32 || output_repr.dtype != DType::F32 =>
                {
                    writeln!(
                        f,
                        "  {}: {{{input_repr}, {kernel}, {output_repr}}} {cost_us:.1} µs",
                        a.node
                    )?
                }
                _ => {}
            }
        }
        Ok(())
    }
}
