use std::fmt;

use pbqp_dnn_graph::NodeId;
use pbqp_dnn_tensor::transform::DirectTransform;
use pbqp_dnn_tensor::Layout;
use pbqp_solver::SolveStats;

use crate::Strategy;

/// What a plan assigns to one graph node.
#[derive(Debug, Clone, PartialEq)]
pub enum AssignmentKind {
    /// A convolution layer instantiated with a concrete primitive.
    Conv {
        /// Primitive name (resolvable via the registry).
        primitive: String,
        /// The primitive's `L_in`.
        input_layout: Layout,
        /// The primitive's `L_out`.
        output_layout: Layout,
        /// Modelled/profiled execution cost in µs.
        cost_us: f64,
    },
    /// A non-conv layer passing data through in a chosen layout (§5.2's
    /// zero-cost dummy nodes).
    Dummy {
        /// The layout the layer operates in.
        layout: Layout,
    },
}

impl AssignmentKind {
    /// The layout this node produces on its output edges.
    pub fn output_layout(&self) -> Layout {
        match self {
            AssignmentKind::Conv { output_layout, .. } => *output_layout,
            AssignmentKind::Dummy { layout } => *layout,
        }
    }

    /// The layout this node requires on its input edges.
    pub fn input_layout(&self) -> Layout {
        match self {
            AssignmentKind::Conv { input_layout, .. } => *input_layout,
            AssignmentKind::Dummy { layout } => *layout,
        }
    }
}

/// One node's assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeAssignment {
    /// The graph node.
    pub node: NodeId,
    /// What was assigned.
    pub kind: AssignmentKind,
}

/// The legalization of one graph edge: the DT chain inserted between the
/// producer's output layout and the consumer's input layout (§3's
/// legalization phase).
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeLegalization {
    /// Producer node.
    pub from: NodeId,
    /// Consumer node.
    pub to: NodeId,
    /// Direct transformation routines to apply, in order (empty when the
    /// layouts already agree).
    pub chain: Vec<DirectTransform>,
    /// Total modelled cost of the chain in µs.
    pub cost_us: f64,
}

/// A complete, legalized instantiation of a DNN: the output of the
/// optimizer and the input of the runtime.
#[derive(Debug, Clone)]
pub struct ExecutionPlan {
    /// The strategy that produced this plan.
    pub strategy: Strategy,
    /// Per-node assignments, indexed by node insertion order.
    pub assignments: Vec<NodeAssignment>,
    /// Per-edge legalizations (same order as `DnnGraph::edges`).
    pub edges: Vec<EdgeLegalization>,
    /// Conversion chain applied to the raw network input (which arrives in
    /// canonical CHW) before the input node's chosen layout, with its cost.
    pub input_conversion: Vec<(NodeId, Vec<DirectTransform>, f64)>,
    /// Predicted whole-network latency in µs (conv costs + DT chain costs
    /// + input conversion), times any framework overhead factor.
    pub predicted_us: f64,
    /// Whether the PBQP solver proved the selection optimal (`None` for
    /// non-PBQP strategies).
    pub optimal: Option<bool>,
    /// Solver statistics (PBQP strategies only).
    pub solve_stats: Option<SolveStats>,
    /// Wall-clock time spent solving, in µs (PBQP strategies only).
    pub solve_time_us: f64,
}

impl ExecutionPlan {
    /// The assignment for `node`.
    pub fn assignment(&self, node: NodeId) -> &AssignmentKind {
        &self.assignments[node.index()].kind
    }

    /// Names of the primitives selected for conv nodes, in node order.
    pub fn selected_primitives(&self) -> Vec<(NodeId, &str)> {
        self.assignments
            .iter()
            .filter_map(|a| match &a.kind {
                AssignmentKind::Conv { primitive, .. } => Some((a.node, primitive.as_str())),
                AssignmentKind::Dummy { .. } => None,
            })
            .collect()
    }

    /// Total µs spent in DT chains (edge legalizations plus input
    /// conversion) — the quantity the paper shows can erase a locally
    /// optimal selection's advantage (§5.8).
    pub fn transform_us(&self) -> f64 {
        self.edges.iter().map(|e| e.cost_us).sum::<f64>()
            + self.input_conversion.iter().map(|(_, _, c)| c).sum::<f64>()
    }

    /// Total µs spent in convolution primitives.
    pub fn conv_us(&self) -> f64 {
        self.assignments
            .iter()
            .filter_map(|a| match &a.kind {
                AssignmentKind::Conv { cost_us, .. } => Some(*cost_us),
                AssignmentKind::Dummy { .. } => None,
            })
            .sum()
    }

    /// Number of layout transformations inserted by legalization.
    pub fn transform_count(&self) -> usize {
        self.edges.iter().map(|e| e.chain.len()).sum::<usize>()
            + self.input_conversion.iter().map(|(_, c, _)| c.len()).sum::<usize>()
    }
}

impl fmt::Display for ExecutionPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "plan [{}]: {:.1} µs predicted ({:.1} µs conv, {:.1} µs in {} transforms)",
            self.strategy.label(),
            self.predicted_us,
            self.conv_us(),
            self.transform_us(),
            self.transform_count(),
        )?;
        for a in &self.assignments {
            if let AssignmentKind::Conv { primitive, input_layout, output_layout, cost_us } =
                &a.kind
            {
                writeln!(
                    f,
                    "  {}: {{{input_layout}, {primitive}, {output_layout}}} {cost_us:.1} µs",
                    a.node
                )?;
            }
        }
        Ok(())
    }
}
